(* reactdb_cli — run ReactDB workloads under configurable deployments.

   The virtualization story of §3.3 as a command line: the workload fixes
   the application (reactor types, procedures, generators); the deployment
   comes from a config file or from named-strategy flags, with no change to
   application code.

   Examples:
     reactdb_cli run -w tpcc -s 4 --workers 8 --strategy shared-nothing
     reactdb_cli run -w smallbank --workers 4 --config deploy.cfg --certify
     reactdb_cli run -w ycsb --theta 0.99 --workers 4
     reactdb_cli show-config deploy.cfg abc,def,ghi
     reactdb_cli list *)

open Cmdliner
module DB = Reactdb.Database
module W = Workloads

type workload = Tpcc | Smallbank | Ycsb | Exchange

let workload_conv =
  let parse = function
    | "tpcc" -> Ok Tpcc
    | "smallbank" -> Ok Smallbank
    | "ycsb" -> Ok Ycsb
    | "exchange" -> Ok Exchange
    | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
  in
  let print ppf w =
    Fmt.string ppf
      (match w with
      | Tpcc -> "tpcc"
      | Smallbank -> "smallbank"
      | Ycsb -> "ycsb"
      | Exchange -> "exchange")
  in
  Arg.conv (parse, print)

(* Build (decl, reactor names, generator) for a workload at a scale. *)
let build_workload workload ~scale ~theta =
  match workload with
  | Tpcc ->
    let sizes = W.Tpcc.default_sizes in
    let decl = W.Tpcc.decl ~warehouses:scale ~sizes () in
    let params = W.Tpcc.params ~sizes scale in
    let seq = ref 0 in
    let gen w rng = W.Tpcc.gen_mix rng params ~home:(1 + (w mod scale)) ~seq in
    (decl, W.Tpcc.warehouses scale, gen)
  | Smallbank ->
    let n = Stdlib.max 2 (scale * 8) in
    let decl = W.Smallbank.decl ~customers:n () in
    let gen _w rng = W.Smallbank.gen_standard rng ~n in
    (decl, W.Smallbank.customers n, gen)
  | Ycsb ->
    let n = Stdlib.max 10 (scale * 1000) in
    let decl = W.Ycsb.decl ~keys:n () in
    let params = W.Ycsb.params ~theta n in
    let containers = Stdlib.max 1 scale in
    let container_of k =
      int_of_string (String.sub k 1 (String.length k - 1)) * containers / n
    in
    let gen _w rng = W.Ycsb.gen_multi_update rng params ~container_of in
    (decl, W.Ycsb.keys n, gen)
  | Exchange ->
    let providers = Stdlib.max 2 (scale * 4) in
    let decl = W.Exchange.decl ~providers ~orders_per_provider:500 () in
    let seq = ref 0 in
    let gen _w rng =
      W.Exchange.gen_auth_pay rng ~strategy:`Procedure_par
        ~n_providers:providers ~window:100 ~sim_cost:50. ~seq
    in
    (decl, "exchange" :: W.Exchange.providers providers, gen)

let deployment_of ~config_file ~strategy ~executors ~mpl reactors =
  match config_file with
  | Some path -> Reactdb.Config.Spec.build (Reactdb.Config.Spec.of_file path) reactors
  | None -> (
    match strategy with
    | "shared-nothing" ->
      Reactdb.Config.Spec.build
        (Reactdb.Config.Spec.of_string
           (Printf.sprintf "strategy shared-nothing\nmpl %d\ngroups auto %d\n"
              mpl executors))
        reactors
    | "shared-everything" ->
      Reactdb.Config.shared_everything ~executors ~affinity:true ~mpl reactors
    | "shared-everything-no-affinity" ->
      Reactdb.Config.shared_everything ~executors ~affinity:false ~mpl reactors
    | s -> failwith (Printf.sprintf "unknown strategy %S" s))

let chaos_of_spec = function
  | None -> Chaos.none
  | Some s -> (
    match Chaos.of_string s with Ok c -> c | Error m -> failwith m)

let run_cmd workload scale theta workers strategy executors mpl config_file
    duration_ms certify profile_name wal_path durable trace trace_json
    deadline_ms mailbox_cap chaos_spec =
  let profile =
    match profile_name with
    | "default" | "xeon" -> Reactdb.Profile.default
    | "opteron" -> Reactdb.Profile.opteron
    | s -> failwith (Printf.sprintf "unknown profile %S" s)
  in
  let decl, reactors, gen = build_workload workload ~scale ~theta in
  let executors = if executors = 0 then scale else executors in
  let config = deployment_of ~config_file ~strategy ~executors ~mpl reactors in
  let db = Harness.build ~profile decl config in
  let chaos = chaos_of_spec chaos_spec in
  if Chaos.is_active chaos then DB.attach_chaos db chaos;
  DB.set_mailbox_cap db mailbox_cap;
  if durable && wal_path = None then
    failwith "--durable requires --wal FILE";
  let log =
    match wal_path with
    | None -> None
    | Some path ->
      let log = Wal.to_file path in
      DB.attach_wal ~durable db log;
      Some log
  in
  if certify then DB.enable_history db;
  let collector =
    if trace || trace_json <> None then begin
      let c =
        Obs.Collector.create ~clock:Obs.Virtual
          ~containers:(Reactdb.Config.n_containers config)
          ()
      in
      DB.attach_obs db c;
      Some c
    end
    else None
  in
  Printf.printf
    "reactors=%d containers=%d executors=%d mpl=%d workers=%d profile=%s\n%!"
    (List.length reactors)
    (Reactdb.Config.n_containers config)
    (Reactdb.Config.total_executors config)
    config.Reactdb.Config.mpl workers profile_name;
  let spec =
    Harness.spec ~epochs:10
      ~epoch_us:(duration_ms *. 100.) (* 10 epochs over the duration *)
      ~warmup_epochs:2
      ?deadline_us:(Option.map (fun ms -> ms *. 1000.) deadline_ms)
      ~n_workers:workers gen
  in
  let r = Harness.run_load db spec in
  if Chaos.is_active chaos then
    Printf.printf "chaos           %12s (%d injections / %d probes)\n"
      (Chaos.to_string chaos) (Chaos.injections chaos) (Chaos.probes chaos);
  Printf.printf "throughput      %12.1f txn/s (±%.1f)\n" r.Harness.throughput
    r.Harness.throughput_std;
  Printf.printf "latency         %12.1f µs (±%.1f)\n" r.Harness.avg_latency
    r.Harness.latency_std;
  Printf.printf "committed       %12d\n" r.Harness.committed;
  Printf.printf "aborted         %12d (%.2f%%)\n" r.Harness.aborted
    (100. *. r.Harness.abort_rate);
  List.iter
    (fun (reason, n) -> Printf.printf "  %-14s %12d\n" reason n)
    r.Harness.aborts_by_reason;
  Printf.printf "utilization     %s\n"
    (String.concat " "
       (Array.to_list
          (Array.map (fun u -> Printf.sprintf "%.0f%%" (100. *. u))
             r.Harness.utilizations)));
  Printf.printf "retries         %12d\n" r.Harness.retries;
  (match collector with
  | None -> ()
  | Some c ->
    let report = Obs.Report.summarize c in
    if trace then begin
      print_newline ();
      print_string (Obs.Report.to_table report)
    end;
    match trace_json with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Obs.Json.to_string ~pretty:true (Obs.Report.to_json report));
      output_char oc '\n';
      close_out oc;
      Printf.printf "trace report    %12s\n" path);
  (match log with
  | None -> ()
  | Some log ->
    Printf.printf "log entries     %12d%s\n" (Wal.length log)
      (if durable then
         Printf.sprintf "  (durable, %d group-commit flushes)"
           r.Harness.log_flushes
       else "  (logging only; durability off)");
    Wal.close log);
  if certify then begin
    let entries =
      List.map
        (fun h ->
          { Histories.Certify.c_txn = h.DB.h_txn; c_tid = h.DB.h_tid;
            c_reads = h.DB.h_reads; c_writes = h.DB.h_writes })
        (DB.history db)
    in
    match Histories.Certify.check entries with
    | Ok _ ->
      Printf.printf "history         serializable (%d transactions)\n"
        (List.length entries)
    | Error m -> Printf.printf "history         VIOLATION: %s\n" m
  end

(* Real-parallel backend: one OCaml 5 domain per container, wall-clock
   time. Overload knobs (--deadline-ms, --mailbox-cap, --chaos) apply per
   run; the closed-loop load harness retries transient aborts with seeded
   exponential backoff. With --replicas N the run redo-logs to an
   in-memory WAL and a background shipper keeps N log-shipping replicas
   current (DESIGN.md §12); --failover-at-ms T additionally runs a
   promotion drill T ms into the run — final-ship the durable log,
   promote the freshest replica through the recovery-equivalence oracle
   and bump the shipping generation — while the primary keeps serving. *)
let run_parallel_cmd workload scale theta workers domains duration_ms retries
    deadline_ms mailbox_cap chaos_spec router steal replicas failover_at_ms =
  let decl, reactors, gen = build_workload workload ~scale ~theta in
  let groups = Array.make domains [] in
  List.iteri
    (fun i r -> groups.(i mod domains) <- r :: groups.(i mod domains))
    reactors;
  let groups = Array.to_list (Array.map List.rev groups) in
  let config =
    match router with
    | Reactdb.Config.Affinity -> Reactdb.Config.shared_nothing groups
    | (Reactdb.Config.Round_robin | Reactdb.Config.Cost) as router ->
      (* same placement; only the ingress policy differs *)
      let placement = Hashtbl.create 256 in
      List.iteri
        (fun ci names -> List.iter (fun nm -> Hashtbl.add placement nm ci) names)
        groups;
      Reactdb.Config.custom
        ~executors_per_container:(Array.make (List.length groups) 1)
        ~router
        ~placement:(Hashtbl.find placement) ()
  in
  let chaos = chaos_of_spec chaos_spec in
  let wal = if replicas > 0 then Some (Wal.in_memory ()) else None in
  let db = Runtime.Db.start ~chaos ?mailbox_cap ~steal ?wal decl config in
  Printf.printf "reactors=%d domains=%d workers=%d router=%s%s%s%s%s\n%!"
    (List.length reactors) (Runtime.Db.n_domains db) workers
    (match router with
    | Reactdb.Config.Round_robin -> "round-robin"
    | Reactdb.Config.Affinity -> "affinity"
    | Reactdb.Config.Cost -> "cost")
    (if steal then " steal" else "")
    (match deadline_ms with
    | Some d -> Printf.sprintf " deadline=%.1fms" d
    | None -> "")
    (match mailbox_cap with
    | Some c -> Printf.sprintf " mailbox-cap=%d" c
    | None -> "")
    (if Chaos.is_active chaos then " chaos=" ^ Chaos.to_string chaos else "");
  let measure_s = duration_ms /. 1000. in
  let spec =
    Runtime.Db.Load.spec
      ~warmup_s:(Float.min 0.5 (measure_s /. 4.))
      ~measure_s ~max_retries:retries
      ?deadline_us:(Option.map (fun ms -> ms *. 1000.) deadline_ms)
      ~n_workers:workers gen
  in
  (* Replication: the shipper runs on its own domain, ticking every 5 ms.
     Only closed (durable) epochs are ever shipped — the runtime's
     group-commit flusher appends whole epochs to the WAL, so the highest
     epoch present is the shippable bound. *)
  let repl =
    match wal with
    | None -> None
    | Some w ->
      let prim_gen = ref 0 in
      let rs = List.init replicas (fun i -> Replica.create ~id:i decl) in
      let sh =
        Replica.Shipper.create ~chaos
          ~entries:(fun () -> Wal.entries w)
          ~durable_epoch:(fun () ->
            Replica.durable_epoch_of_entries (Wal.entries w))
          ~gen:(fun () -> !prim_gen)
          rs
      in
      Some (prim_gen, rs, sh)
  in
  let stop_ship = Atomic.make false in
  let promotion = ref None in
  let drill_pause_us = ref 0. in
  let ship_dom =
    match repl with
    | None -> None
    | Some (prim_gen, rs, sh) ->
      Some
        (Domain.spawn (fun () ->
             let t0 = Unix.gettimeofday () in
             let drilled = ref false in
             while not (Atomic.get stop_ship) do
               Unix.sleepf 0.005;
               Replica.Shipper.round sh;
               match failover_at_ms with
               | Some t
                 when (not !drilled)
                      && (Unix.gettimeofday () -. t0) *. 1000. >= t -> (
                 drilled := true;
                 let d0 = Unix.gettimeofday () in
                 Replica.Shipper.final_ship sh;
                 match Replica.freshest rs with
                 | None -> ()
                 | Some fr ->
                   let g = !prim_gen + 1 in
                   (match Replica.promote ~gen:g fr with
                   | Ok p ->
                     (* the whole deployment moves to the new generation,
                        so shipping resumes under the promoted stamp *)
                     prim_gen := g;
                     promotion := Some (Ok p)
                   | Error e -> promotion := Some (Error e));
                   drill_pause_us := (Unix.gettimeofday () -. d0) *. 1e6)
               | _ -> ()
             done))
  in
  let r = Runtime.Db.Load.run db spec in
  Atomic.set stop_ship true;
  (match ship_dom with Some d -> Domain.join d | None -> ());
  Runtime.Db.shutdown db;
  Printf.printf "throughput      %12.1f txn/s\n" r.Runtime.Db.Load.throughput;
  Printf.printf "latency         %12.1f µs (p50 %.1f, p95 %.1f, p99 %.1f)\n"
    r.Runtime.Db.Load.mean_latency_us r.Runtime.Db.Load.p50_us
    r.Runtime.Db.Load.p95_us r.Runtime.Db.Load.p99_us;
  Printf.printf "committed       %12d\n" r.Runtime.Db.Load.committed;
  Printf.printf "aborted         %12d (%.2f%%)\n" r.Runtime.Db.Load.aborted
    (100. *. r.Runtime.Db.Load.abort_rate);
  List.iter
    (fun (reason, n) -> Printf.printf "  %-14s %12d\n" reason n)
    r.Runtime.Db.Load.aborts_by_reason;
  Printf.printf "retries         %12d\n" r.Runtime.Db.Load.retries;
  if steal || router = Reactdb.Config.Cost then begin
    let stats = Runtime.Db.sched_stats db in
    Printf.printf "steals          %12d\n" (Runtime.Db.n_steals db);
    Printf.printf "cost-routed     %12d\n"
      (Array.fold_left (fun a s -> a + s.Runtime.Db.ss_routed_by_cost) 0 stats)
  end;
  if Chaos.is_active chaos then
    Printf.printf "chaos           %12s (%d injections / %d probes)\n"
      (Chaos.to_string chaos) (Chaos.injections chaos) (Chaos.probes chaos);
  (match repl with
  | None -> ()
  | Some (_, rs, sh) ->
    (* post-run catch-up: the primary is quiesced, so one chaos-free ship
       drains the remaining durable suffix before the lag report *)
    Replica.Shipper.final_ship sh;
    Printf.printf "replication     %12d replicas  %d rounds  %d dropped  %d delayed\n"
      (List.length rs)
      (Replica.Shipper.rounds sh)
      (Replica.Shipper.dropped sh)
      (Replica.Shipper.delayed sh);
    List.iter2
      (fun rp (rid, behind, bytes) ->
        Printf.printf
          "  replica %-6d watermark %-8d %d epochs / %d bytes behind  \
           (%d batches, %d torn, %d refused, %d ro served)\n"
          rid (Replica.watermark rp) behind bytes (Replica.n_batches rp)
          (Replica.n_torn rp) (Replica.n_refused rp) (Replica.ro_served rp))
      rs (Replica.Shipper.lag sh);
    match !promotion with
    | Some (Ok p) ->
      Printf.printf
        "failover drill  promoted replica %d at epoch %d (generation %d, %d \
         log entries, pause %.1f ms)\n"
        p.Replica.pm_replica p.Replica.pm_epoch p.Replica.pm_gen
        p.Replica.pm_entries (!drill_pause_us /. 1000.)
    | Some (Error e) -> Printf.printf "failover drill  REFUSED: %s\n" e
    | None -> ());
  if Runtime.Db.n_fatal db > 0 then begin
    Printf.eprintf "FATAL: %d internal errors (first: %s)\n"
      (Runtime.Db.n_fatal db)
      (match Runtime.Db.fatal_messages db with m :: _ -> m | [] -> "?");
    exit 1
  end

(* Interactive SQL shell over a loaded workload: every statement runs as
   one ACID transaction on the chosen reactor. *)
let sql_cmd workload scale theta strategy executors mpl config_file reactor =
  let decl, reactors, _gen = build_workload workload ~scale ~theta in
  (* Expose the generic "sql" procedure on every reactor type. *)
  let decl = { decl with Reactor.types = List.map Sql.Proc.with_sql decl.Reactor.types } in
  let executors = if executors = 0 then scale else executors in
  let config = deployment_of ~config_file ~strategy ~executors ~mpl reactors in
  let db = Harness.build decl config in
  let current = ref (match reactor with Some r -> r | None -> List.hd reactors) in
  Printf.printf
    "ReactDB SQL shell — statements run as transactions on reactor %s.\n\
     Commands: \\r NAME (switch reactor), \\l (list reactors), \\q (quit).\n"
    !current;
  let rec loop () =
    Printf.printf "%s> %!" !current;
    match try Some (input_line stdin) with End_of_file -> None with
    | None -> print_newline ()
    | Some "" -> loop ()
    | Some "\\q" -> ()
    | Some "\\l" ->
      List.iter print_endline reactors;
      loop ()
    | Some line when String.length line > 3 && String.sub line 0 3 = "\\r " ->
      let r = String.trim (String.sub line 3 (String.length line - 3)) in
      if List.mem r reactors then current := r
      else Printf.printf "unknown reactor %S\n" r;
      loop ()
    | Some stmt ->
      let eng = DB.engine db in
      Sim.Engine.spawn eng (fun () ->
          match
            DB.exec_txn db ~reactor:!current ~proc:"sql"
              ~args:[ Util.Value.Str stmt ]
          with
          | { result = Ok (Util.Value.Str rendered); latency; _ } ->
            Printf.printf "%s(%.1f µs)\n" rendered latency
          | { result = Ok v; latency; _ } ->
            Printf.printf "%s\n(%.1f µs)\n" (Util.Value.to_string v) latency
          | { result = Error m; _ } -> Printf.printf "ABORTED: %s\n" m);
      (try ignore (Sim.Engine.run eng) with
      | Sql.Parser.Parse_error m -> Printf.printf "parse error: %s\n" m
      | Sql.Run.Sql_error m -> Printf.printf "error: %s\n" m
      | Invalid_argument m -> Printf.printf "error: %s\n" m);
      loop ()
  in
  loop ()

let show_config_cmd path reactors =
  let reactors = String.split_on_char ',' reactors in
  let cfg = Reactdb.Config.Spec.build (Reactdb.Config.Spec.of_file path) reactors in
  Printf.printf "containers: %d\nexecutors:  %s\nmpl:        %d\nrouter:     %s\n"
    (Reactdb.Config.n_containers cfg)
    (String.concat " "
       (Array.to_list (Array.map string_of_int cfg.Reactdb.Config.executors_per_container)))
    cfg.Reactdb.Config.mpl
    (match cfg.Reactdb.Config.router with
    | Reactdb.Config.Round_robin -> "round-robin"
    | Reactdb.Config.Affinity -> "affinity"
    | Reactdb.Config.Cost -> "cost");
  List.iter
    (fun r -> Printf.printf "  %-12s -> container %d\n" r (cfg.Reactdb.Config.placement r))
    reactors

let list_cmd () =
  print_endline "workloads: tpcc smallbank ycsb exchange";
  print_endline
    "strategies: shared-nothing shared-everything shared-everything-no-affinity";
  print_endline "profiles: default (xeon) | opteron"

(* --- cmdliner plumbing --- *)

let workload_arg =
  Arg.(
    required
    & opt (some workload_conv) None
    & info [ "w"; "workload" ] ~docv:"WORKLOAD" ~doc:"Workload to run.")

let scale_arg =
  Arg.(value & opt int 4 & info [ "s"; "scale" ] ~doc:"Scale factor.")

let theta_arg =
  Arg.(value & opt float 0.5 & info [ "theta" ] ~doc:"YCSB zipfian constant.")

let workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~doc:"Closed-loop client workers.")

let strategy_arg =
  Arg.(
    value & opt string "shared-nothing"
    & info [ "strategy" ] ~doc:"Deployment strategy (ignored with --config).")

let executors_arg =
  Arg.(
    value & opt int 0
    & info [ "executors" ] ~doc:"Transaction executors (0 = scale factor).")

let mpl_arg =
  Arg.(value & opt int 8 & info [ "mpl" ] ~doc:"Multiprogramming level per executor.")

let config_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "config" ] ~doc:"Deployment configuration file.")

let duration_arg =
  Arg.(
    value & opt float 100.
    & info [ "duration" ] ~doc:"Measured virtual duration in ms.")

let certify_arg =
  Arg.(
    value & flag
    & info [ "certify" ]
        ~doc:"Record the execution history and certify serializability.")

let profile_arg =
  Arg.(value & opt string "default" & info [ "profile" ] ~doc:"Hardware profile.")

let wal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal" ] ~docv:"FILE" ~doc:"Redo-log committed transactions to $(docv).")

let durable_arg =
  Arg.(
    value & flag
    & info [ "durable" ]
        ~doc:
          "Epoch group commit: release transaction results only after their \
           epoch's log entries are flushed (requires --wal).")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Attach the transaction-lifecycle tracer and print the phase \
           breakdown and abort taxonomy after the run (virtual-clock \
           microseconds).")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Attach the transaction-lifecycle tracer and write the versioned \
           JSON report to $(docv) (see EXPERIMENTS.md for the schema).")

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-transaction latency budget in milliseconds; expired attempts \
           abort with the non-transient timeout cause (locks released, 2PC \
           participants rolled back).")

let mailbox_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "mailbox-cap" ] ~docv:"N"
        ~doc:
          "Bound each container's admission queue at $(docv) messages; \
           roots arriving at a full queue are shed with the overloaded \
           abort cause instead of queuing.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"SEED:KIND"
        ~doc:
          "Attach a seeded fault injector, e.g. 7:prepare-stall or \
           3:flush-stall:0.1:5000 (kinds: delivery-delay, domain-stall, \
           prepare-stall, flush-stall, kill-primary, drop-shipment, \
           delay-shipment; optional :P hit probability and :DELAY_US \
           scale).")

let run_term =
  Term.(
    const run_cmd $ workload_arg $ scale_arg $ theta_arg $ workers_arg
    $ strategy_arg $ executors_arg $ mpl_arg $ config_arg $ duration_arg
    $ certify_arg $ profile_arg $ wal_arg $ durable_arg $ trace_arg
    $ trace_json_arg $ deadline_arg $ mailbox_cap_arg $ chaos_arg)

let run_info = Cmd.info "run" ~doc:"Run a workload under a deployment."

let domains_arg =
  Arg.(
    value & opt int 2
    & info [ "domains" ] ~doc:"Containers (= OCaml domains) to spawn.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ]
        ~doc:"Max in-loop resubmissions of transient aborts (with backoff).")

let wall_duration_arg =
  Arg.(
    value & opt float 500.
    & info [ "duration" ] ~doc:"Measured wall-clock duration in ms.")

let router_arg =
  let parse = function
    | "affinity" -> Ok Reactdb.Config.Affinity
    | "round-robin" -> Ok Reactdb.Config.Round_robin
    | "cost" -> Ok Reactdb.Config.Cost
    | s -> Error (`Msg (Printf.sprintf "unknown router %S" s))
  in
  let print ppf r =
    Fmt.string ppf
      (match r with
      | Reactdb.Config.Affinity -> "affinity"
      | Reactdb.Config.Round_robin -> "round-robin"
      | Reactdb.Config.Cost -> "cost")
  in
  let router_conv = Arg.conv (parse, print) in
  Arg.(
    value
    & opt router_conv Reactdb.Config.Affinity
    & info [ "router" ] ~docv:"POLICY"
        ~doc:
          "Ingress routing policy: $(b,affinity) (home domain), \
           $(b,round-robin) (distribute, pay a forwarding hop), or \
           $(b,cost) (cost-model estimate blended with live load signals \
           picks the least-loaded admissible domain; single-container \
           commits re-pin to the owner).")

let steal_arg =
  Arg.(
    value & flag
    & info [ "steal" ]
        ~doc:
          "Enable work stealing: idle domains take half the waiting root \
           jobs from the deepest peer mailbox (internal traffic is never \
           stolen; commits re-pin to the owning domain).")

let replicas_arg =
  Arg.(
    value & opt int 0
    & info [ "replicas" ] ~docv:"N"
        ~doc:
          "Attach $(docv) log-shipping replicas (DESIGN.md §12): the run \
           redo-logs to an in-memory WAL and a background shipper keeps \
           each replica's durable epoch watermark current; per-replica \
           lag and promotion counters print after the run.")

let failover_at_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "failover-at-ms" ] ~docv:"T"
        ~doc:
          "Failover drill (requires --replicas): $(docv) ms into the run, \
           final-ship the durable log, promote the freshest replica \
           through the recovery-equivalence oracle and bump the shipping \
           generation. The primary keeps serving — this drills the \
           promotion path and measures its pause without ending the run.")

let run_parallel_term =
  Term.(
    const run_parallel_cmd $ workload_arg $ scale_arg $ theta_arg
    $ workers_arg $ domains_arg $ wall_duration_arg $ retries_arg
    $ deadline_arg $ mailbox_cap_arg $ chaos_arg $ router_arg $ steal_arg
    $ replicas_arg $ failover_at_arg)

let run_parallel_info =
  Cmd.info "run-parallel"
    ~doc:
      "Run a workload on the real-parallel backend (one domain per \
       container, wall-clock time)."

let show_config_term =
  Term.(
    const show_config_cmd
    $ Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG")
    $ Arg.(required & pos 1 (some string) None & info [] ~docv:"REACTORS"))

let show_config_info =
  Cmd.info "show-config" ~doc:"Parse a config file against a reactor list."

let reactor_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "reactor" ] ~doc:"Reactor the shell starts on.")

let sql_term =
  Term.(
    const sql_cmd $ workload_arg $ scale_arg $ theta_arg $ strategy_arg
    $ executors_arg $ mpl_arg $ config_arg $ reactor_arg)

let sql_info =
  Cmd.info "sql" ~doc:"Interactive SQL shell over a loaded workload."

let list_term = Term.(const list_cmd $ const ())
let list_info = Cmd.info "list" ~doc:"List workloads, strategies and profiles."

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "reactdb_cli" ~version:"1.0.0"
             ~doc:"ReactDB: a predictable, virtualized actor database system.")
          [
            Cmd.v run_info run_term;
            Cmd.v run_parallel_info run_parallel_term;
            Cmd.v sql_info sql_term;
            Cmd.v show_config_info show_config_term;
            Cmd.v list_info list_term;
          ]))
