(* Unit tests for schemas, records, tables and catalogs. *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sch =
  Storage.Schema.make ~name:"t"
    ~columns:[ ("a", Value.TInt); ("b", Value.TStr); ("c", Value.TFloat) ]
    ~key:[ "a"; "b" ]

let test_schema_make () =
  check_int "arity" 3 (Storage.Schema.arity sch);
  check_int "col index" 1 (Storage.Schema.column_index sch "b");
  Alcotest.check_raises "unknown col" Not_found (fun () ->
      ignore (Storage.Schema.column_index sch "zzz"));
  check_bool "dup col rejected" true
    (try
       ignore
         (Storage.Schema.make ~name:"x"
            ~columns:[ ("a", Value.TInt); ("a", Value.TStr) ]
            ~key:[ "a" ]);
       false
     with Invalid_argument _ -> true);
  check_bool "empty key rejected" true
    (try
       ignore (Storage.Schema.make ~name:"x" ~columns:[ ("a", Value.TInt) ] ~key:[]);
       false
     with Invalid_argument _ -> true);
  check_bool "unknown key col rejected" true
    (try
       ignore
         (Storage.Schema.make ~name:"x" ~columns:[ ("a", Value.TInt) ] ~key:[ "b" ]);
       false
     with Invalid_argument _ -> true)

let test_schema_validate () =
  Storage.Schema.validate sch [| Value.Int 1; Value.Str "x"; Value.Float 2. |];
  Storage.Schema.validate sch [| Value.Int 1; Value.Str "x"; Value.Null |];
  let bad f = try f (); false with Invalid_argument _ -> true in
  check_bool "arity" true
    (bad (fun () -> Storage.Schema.validate sch [| Value.Int 1 |]));
  check_bool "type" true
    (bad (fun () ->
         Storage.Schema.validate sch [| Value.Str "no"; Value.Str "x"; Value.Null |]));
  check_bool "null key" true
    (bad (fun () ->
         Storage.Schema.validate sch [| Value.Null; Value.Str "x"; Value.Null |]))

let test_key_extraction () =
  let k =
    Storage.Schema.key_of_tuple sch [| Value.Int 7; Value.Str "q"; Value.Null |]
  in
  check_bool "key" true (k = [| Value.Int 7; Value.Str "q" |])

let test_record_tid () =
  let t = Storage.Record.tid_make ~epoch:3 ~seq:17 in
  check_int "epoch" 3 (Storage.Record.tid_epoch t);
  check_int "seq" 17 (Storage.Record.tid_seq t);
  let nt = Storage.Record.next_tid ~epoch:3 [ t; Storage.Record.tid_make ~epoch:2 ~seq:99 ] in
  check_bool "next > observed" true (nt > t);
  check_int "same epoch bumps seq" 18 (Storage.Record.tid_seq nt);
  let nt2 = Storage.Record.next_tid ~epoch:5 [ t ] in
  check_int "later epoch restarts seq" 1 (Storage.Record.tid_seq nt2);
  check_int "later epoch kept" 5 (Storage.Record.tid_epoch nt2)

let test_record_lock () =
  let r = Storage.Record.fresh ~absent:false [| Value.Int 1 |] in
  check_bool "fresh unlocked" false (Storage.Record.is_locked r);
  check_bool "lock" true (Storage.Record.try_lock r ~txn:7);
  check_bool "reentrant" true (Storage.Record.try_lock r ~txn:7);
  check_bool "other denied" false (Storage.Record.try_lock r ~txn:8);
  Storage.Record.unlock r ~txn:8;
  check_bool "wrong owner unlock is noop" true (Storage.Record.is_locked r);
  Storage.Record.unlock r ~txn:7;
  check_bool "unlocked" false (Storage.Record.is_locked r)

let test_record_rid_unique () =
  let a = Storage.Record.fresh ~absent:false [||] in
  let b = Storage.Record.fresh ~absent:false [||] in
  check_bool "rids distinct" true (a.Storage.Record.rid <> b.Storage.Record.rid)

let test_table_basic () =
  let tbl = Storage.Table.create sch in
  let row i = [| Value.Int i; Value.Str "k"; Value.Float (float_of_int i) |] in
  for i = 1 to 10 do
    ignore (Storage.Table.insert tbl (Storage.Record.fresh ~absent:false (row i)))
  done;
  check_int "size" 10 (Storage.Table.size tbl);
  (match Storage.Table.find tbl [| Value.Int 5; Value.Str "k" |] with
  | Some r -> check_bool "found row" true (Value.equal r.Storage.Record.data.(2) (Value.Float 5.))
  | None -> Alcotest.fail "missing");
  let n = ref 0 in
  Storage.Table.range tbl ~f:(fun _ -> incr n; true);
  check_int "range all" 10 !n;
  ignore (Storage.Table.remove tbl [| Value.Int 5; Value.Str "k" |]);
  check_int "removed" 9 (Storage.Table.size tbl)

let test_table_validates_on_insert () =
  let tbl = Storage.Table.create sch in
  check_bool "bad tuple rejected" true
    (try
       ignore
         (Storage.Table.insert tbl (Storage.Record.fresh ~absent:false [| Value.Int 1 |]));
       false
     with Invalid_argument _ -> true)

let test_prefix_bounds () =
  let tbl = Storage.Table.create sch in
  let row i s = [| Value.Int i; Value.Str s; Value.Null |] in
  List.iter
    (fun (i, s) ->
      ignore (Storage.Table.insert tbl (Storage.Record.fresh ~absent:false (row i s))))
    [ (1, "a"); (1, "b"); (2, "a"); (2, "b"); (3, "a") ];
  let lo, hi = Storage.Table.key_prefix_bounds [| Value.Int 2 |] in
  let seen = ref [] in
  Storage.Table.range tbl ~lo ~hi ~f:(fun r ->
      seen := Value.to_str r.Storage.Record.data.(1) :: !seen;
      true);
  Alcotest.(check (list string)) "prefix scan" [ "a"; "b" ] (List.rev !seen)

(* sec_key_of builds keys through a flat column-extraction plan precomputed
   at Table.create; it must match the old map+append construction (indexed
   columns, then the primary key) for multi-column secondaries. *)
let test_sec_key_plan () =
  let tbl =
    Storage.Table.create
      ~secondaries:[ ("by_cb", [ "c"; "b" ]); ("by_c", [ "c" ]) ]
      sch
  in
  let old_construction s data =
    Array.append
      (Array.map (fun i -> data.(i)) s.Storage.Table.sec_cols)
      (Storage.Schema.key_of_tuple sch data)
  in
  let rng = Rng.create 99 in
  List.iter
    (fun name ->
      let s = Storage.Table.secondary tbl name in
      for _ = 1 to 50 do
        let data =
          [| Value.Int (Rng.int rng 1000); Value.Str (Rng.alphastring rng 3);
             Value.Float (Rng.float rng 10.) |]
        in
        let got = Storage.Table.sec_key_of tbl s data in
        let want = old_construction s data in
        check_bool "plan = map+append" true (got = want);
        check_bool "Key.compare agrees" true
          (Storage.Table.Key.compare got want = 0)
      done)
    [ "by_cb"; "by_c" ];
  (* Secondary maintenance end-to-end: update moving a row within by_c. *)
  let row = [| Value.Int 1; Value.Str "r"; Value.Float 5. |] in
  let rcd = Storage.Record.fresh ~absent:false row in
  ignore (Storage.Table.insert tbl rcd);
  let seen lo hi =
    let acc = ref [] in
    Storage.Table.scan_secondary tbl ~index:"by_c"
      ~lo:[| Value.Float lo |] ~hi:[| Value.Float hi; Value.Str "\xff" |]
      ~f:(fun r ->
        acc := r.Storage.Record.data :: !acc;
        true);
    !acc
  in
  check_int "indexed under 5." 1 (List.length (seen 5. 5.));
  Storage.Table.update_data tbl rcd [| Value.Int 1; Value.Str "r"; Value.Float 7. |];
  check_int "moved out of 5." 0 (List.length (seen 5. 5.));
  check_int "moved into 7." 1 (List.length (seen 7. 7.))

(* The same-constructor fast paths in Key.compare must order exactly like
   the generic Value.compare loop. *)
let prop_key_compare_fastpath =
  let gen_value =
    QCheck.Gen.(
      frequency
        [ (3, map (fun i -> Value.Int i) (int_range (-50) 50));
          (2, map (fun s -> Value.Str s) (string_size ~gen:printable (int_bound 4)));
          (1, map (fun b -> Value.Bool b) bool);
          (1, map (fun f -> Value.Float (float_of_int f)) (int_range (-9) 9));
          (1, return Value.Null) ])
  in
  let gen_key = QCheck.Gen.(list_size (int_bound 4) gen_value) in
  QCheck.Test.make ~name:"Key.compare = generic lexicographic reference"
    ~count:500
    (QCheck.make QCheck.Gen.(pair gen_key gen_key))
    (fun (a, b) ->
      let a = Array.of_list a and b = Array.of_list b in
      let reference x y =
        let la = Array.length x and lb = Array.length y in
        let n = Stdlib.min la lb in
        let rec go i =
          if i = n then Stdlib.compare la lb
          else
            let c = Value.compare x.(i) y.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0
      in
      let sign c = Stdlib.compare c 0 in
      sign (Storage.Table.Key.compare a b) = sign (reference a b))

let test_catalog () =
  let c = Storage.Catalog.create () in
  let t = Storage.Catalog.create_table c sch in
  check_bool "mem" true (Storage.Catalog.mem c "t");
  check_bool "same table" true (Storage.Catalog.table c "t" == t);
  check_bool "dup rejected" true
    (try
       ignore (Storage.Catalog.create_table c sch);
       false
     with Invalid_argument _ -> true);
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Storage.Catalog.table c "nope"));
  ignore (Storage.Table.insert t (Storage.Record.fresh ~absent:false
    [| Value.Int 1; Value.Str "x"; Value.Null |]));
  check_int "total records" 1 (Storage.Catalog.total_records c)

let suite =
  ( "storage",
    [
      Alcotest.test_case "schema make" `Quick test_schema_make;
      Alcotest.test_case "schema validate" `Quick test_schema_validate;
      Alcotest.test_case "key extraction" `Quick test_key_extraction;
      Alcotest.test_case "tid packing" `Quick test_record_tid;
      Alcotest.test_case "record locks" `Quick test_record_lock;
      Alcotest.test_case "rid uniqueness" `Quick test_record_rid_unique;
      Alcotest.test_case "table basics" `Quick test_table_basic;
      Alcotest.test_case "table validates" `Quick test_table_validates_on_insert;
      Alcotest.test_case "prefix bounds" `Quick test_prefix_bounds;
      Alcotest.test_case "secondary key plan" `Quick test_sec_key_plan;
      Alcotest.test_case "catalog" `Quick test_catalog;
      QCheck_alcotest.to_alcotest prop_key_compare_fastpath;
    ] )
