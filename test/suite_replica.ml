(* Log-shipping replication (DESIGN.md §12): batch wire format, the
   watermark invariant under torn and faulty shipments, replica reads at
   the frozen watermark epoch, generation fencing, promotion through the
   recovery-equivalence oracle, and the queue-wait autoscaler signal that
   rides along in this layer. *)

open Util
module DB = Reactdb.Database
module AS = Runtime.Autoscaler
module SB = Workloads.Smallbank
module Wl = Workloads.Wl

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

(* A committed-write entry against the Testlib bank: replace acct0's
   single balance row on [reactor]. *)
let put ~txn ~epoch ~seq ~reactor bal =
  {
    Wal.le_txn = txn;
    le_tid = Storage.Record.tid_make ~epoch ~seq;
    le_writes =
      [
        Wal.Put
          {
            reactor;
            table = "acct";
            row = [| Value.Int 0; Value.Float bal |];
          };
      ];
  }

let balance_of r name =
  match
    List.find_opt (fun (nm, _, _) -> nm = name)
      (Faultsim.snapshot (Replica.catalogs r))
  with
  | Some (_, _, [ row ]) -> Value.to_float row.(1)
  | _ -> Alcotest.fail ("expected exactly one acct row on " ^ name)

(* --- batch wire format --- *)

let test_batch_roundtrip () =
  let entries =
    [
      put ~txn:1 ~epoch:1 ~seq:1 ~reactor:"acct0" 150.;
      put ~txn:2 ~epoch:2 ~seq:1 ~reactor:"acct1" 50.;
    ]
  in
  let s = Replica.Batch.encode ~gen:3 ~from_epoch:1 ~to_epoch:2 entries in
  (match Replica.Batch.decode s with
  | Replica.Batch.Complete d ->
    check_int "gen" 3 d.Replica.Batch.b_gen;
    check_int "from" 1 d.Replica.Batch.b_from;
    check_int "to" 2 d.Replica.Batch.b_to;
    check_int "entries" 2 (List.length d.Replica.Batch.b_entries);
    check_int "txn ids preserved" 2
      (List.nth d.Replica.Batch.b_entries 1).Wal.le_txn
  | _ -> Alcotest.fail "complete batch did not decode Complete");
  check_bool "size positive" true (Replica.Batch.size entries > 0);
  (* an empty range still ships (and decodes) — epochs with no commits
     advance the watermark too *)
  (match
     Replica.Batch.decode
       (Replica.Batch.encode ~gen:0 ~from_epoch:5 ~to_epoch:7 [])
   with
  | Replica.Batch.Complete d ->
    check_int "empty from" 5 d.Replica.Batch.b_from;
    check_int "empty to" 7 d.Replica.Batch.b_to;
    check_int "empty entries" 0 (List.length d.Replica.Batch.b_entries)
  | _ -> Alcotest.fail "empty batch did not decode Complete");
  match Replica.Batch.decode "not a batch at all" with
  | Replica.Batch.Garbage _ -> ()
  | _ -> Alcotest.fail "garbage decoded as a batch"

(* --- the watermark invariant: apply, duplicates, gaps, generations --- *)

let test_apply_refusals () =
  let decl = Testlib.bank_decl 2 in
  let r = Replica.create ~id:0 decl in
  check_int "fresh watermark" 0 (Replica.watermark r);
  let b12 =
    Replica.Batch.encode ~gen:0 ~from_epoch:1 ~to_epoch:2
      [
        put ~txn:1 ~epoch:1 ~seq:1 ~reactor:"acct0" 150.;
        put ~txn:2 ~epoch:2 ~seq:1 ~reactor:"acct1" 50.;
      ]
  in
  (match Replica.apply r b12 with
  | Replica.Applied { from_epoch = 1; to_epoch = 2; fresh = 2 } -> ()
  | _ -> Alcotest.fail "first batch not applied");
  check_int "watermark advanced" 2 (Replica.watermark r);
  check_float "row applied" 150. (balance_of r "acct0");
  (* idempotent re-delivery: everything at or below the watermark skips *)
  (match Replica.apply r b12 with
  | Replica.Applied { fresh = 0; _ } -> ()
  | _ -> Alcotest.fail "duplicate batch not skipped");
  check_int "watermark unchanged by duplicate" 2 (Replica.watermark r);
  (* epoch gap: a batch must start at watermark + 1 or earlier *)
  (match
     Replica.apply r
       (Replica.Batch.encode ~gen:0 ~from_epoch:5 ~to_epoch:5
          [ put ~txn:3 ~epoch:5 ~seq:1 ~reactor:"acct0" 1. ])
   with
  | Replica.Refused _ -> ()
  | _ -> Alcotest.fail "epoch gap not refused");
  (* a newer generation is adopted... *)
  (match
     Replica.apply r
       (Replica.Batch.encode ~gen:4 ~from_epoch:3 ~to_epoch:3
          [ put ~txn:4 ~epoch:3 ~seq:1 ~reactor:"acct0" 175. ])
   with
  | Replica.Applied { fresh = 1; _ } -> ()
  | _ -> Alcotest.fail "newer-generation batch not applied");
  check_int "generation adopted" 4 (Replica.generation r);
  (* ...and a stale one is fenced out: a deposed primary cannot roll the
     replica back *)
  (match
     Replica.apply r
       (Replica.Batch.encode ~gen:2 ~from_epoch:4 ~to_epoch:4
          [ put ~txn:5 ~epoch:4 ~seq:1 ~reactor:"acct0" 9999. ])
   with
  | Replica.Refused _ -> ()
  | _ -> Alcotest.fail "stale-generation batch not refused");
  check_float "stale write fenced out" 175. (balance_of r "acct0");
  (match Replica.apply r "garbage" with
  | Replica.Refused _ -> ()
  | _ -> Alcotest.fail "garbage not refused");
  check_bool "refusals counted" true (Replica.n_refused r >= 3)

(* --- torn shipments (reusing the Faultsim damage injectors) --- *)

let test_torn_tail () =
  let decl = Testlib.bank_decl 2 in
  let entries =
    [
      put ~txn:1 ~epoch:1 ~seq:1 ~reactor:"acct0" 150.;
      put ~txn:2 ~epoch:2 ~seq:1 ~reactor:"acct1" 50.;
      put ~txn:3 ~epoch:3 ~seq:1 ~reactor:"acct0" 160.;
      put ~txn:4 ~epoch:3 ~seq:2 ~reactor:"acct1" 40.;
    ]
  in
  let full = Replica.Batch.encode ~gen:0 ~from_epoch:1 ~to_epoch:3 entries in
  (* tear the tail off in flight, exactly like a torn WAL tail on disk *)
  let src = Filename.temp_file "replica" ".batch" in
  let dst = Filename.temp_file "replica" ".torn" in
  let oc = open_out_bin src in
  output_string oc full;
  close_out oc;
  Faultsim.inject (Faultsim.Truncate_bytes (String.length full - 7)) ~src ~dst;
  let ic = open_in_bin dst in
  let torn = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove src;
  Sys.remove dst;
  let r = Replica.create ~id:0 decl in
  (* the readable prefix reaches into epoch 3, but epoch 3 is provably
     incomplete — only epochs strictly below it may apply *)
  (match Replica.apply r torn with
  | Replica.Applied_torn { upto = 2; fresh = 2; _ } -> ()
  | Replica.Applied_torn { upto; fresh; _ } ->
    Alcotest.failf "torn applied upto %d with %d fresh (expected 2/2)" upto
      fresh
  | _ -> Alcotest.fail "torn batch not detected");
  check_int "watermark at last complete epoch" 2 (Replica.watermark r);
  check_int "torn counted" 1 (Replica.n_torn r);
  check_float "complete prefix applied" 150. (balance_of r "acct0");
  (* the unchanged cursor re-requests; the intact re-ship completes *)
  (match Replica.apply r full with
  | Replica.Applied { from_epoch = 1; to_epoch = 3; fresh = 2 } -> ()
  | _ -> Alcotest.fail "re-shipped batch not applied");
  check_int "watermark caught up" 3 (Replica.watermark r);
  check_float "tail applied" 160. (balance_of r "acct0");
  check_float "tail applied (2)" 40. (balance_of r "acct1");
  (* corruption mid-payload: per-line salvage keeps only the entries
     before the damage *)
  let r2 = Replica.create ~id:1 decl in
  let corrupt =
    let b = Bytes.of_string full in
    let header_len = String.index full '\n' + 1 in
    let line1_len = String.index_from full header_len '\n' + 1 in
    Bytes.set b (line1_len + 10)
      (Char.chr (Char.code (Bytes.get b (line1_len + 10)) lxor 0xff));
    Bytes.to_string b
  in
  (match Replica.apply r2 corrupt with
  | Replica.Applied_torn { upto = 0; fresh = 0; _ } -> ()
  | Replica.Applied_torn { upto; _ } ->
    Alcotest.failf "corrupt batch applied upto %d (expected 0)" upto
  | _ -> Alcotest.fail "corrupt payload not detected as torn");
  check_int "nothing provably complete survives" 0 (Replica.watermark r2);
  (match Replica.apply r2 full with
  | Replica.Applied { fresh = 4; _ } -> ()
  | _ -> Alcotest.fail "intact re-ship after corruption not applied");
  check_int "caught up after corruption" 3 (Replica.watermark r2)

(* --- replica reads at the watermark --- *)

let test_replica_reads () =
  let n = 4 in
  let decl = SB.decl ~customers:n () in
  let r = Replica.create ~id:0 decl in
  let sum_args =
    List.map (fun c -> Value.Str c) (List.tl (SB.customers n))
  in
  let sum () =
    match
      Replica.exec_ro r ~reactor:(SB.customer_name 0) ~proc:"sum_all"
        ~args:sum_args
    with
    | Ok v -> Value.to_number v
    | Error m -> Alcotest.fail ("sum_all on replica: " ^ m)
  in
  (* loader state is visible at watermark 0 *)
  check_float "initial total" 80_000. (sum ());
  (* ship a conserving reshuffle at epoch 1: +5k on c0, -5k on c1 *)
  let put_checking ~txn ~seq cust bal =
    {
      Wal.le_txn = txn;
      le_tid = Storage.Record.tid_make ~epoch:1 ~seq;
      le_writes =
        [
          Wal.Put
            {
              reactor = SB.customer_name cust;
              table = "checking";
              row = [| Value.Int cust; Value.Float bal |];
            };
        ];
    }
  in
  (match
     Replica.apply r
       (Replica.Batch.encode ~gen:0 ~from_epoch:1 ~to_epoch:1
          [ put_checking ~txn:1 ~seq:1 0 15_000.;
            put_checking ~txn:1 ~seq:2 1 5_000. ])
   with
  | Replica.Applied _ -> ()
  | _ -> Alcotest.fail "shipment not applied");
  check_float "conserved after shipment" 80_000. (sum ());
  (match
     Replica.exec_ro r ~reactor:(SB.customer_name 0) ~proc:"balance" ~args:[]
   with
  | Ok v -> check_float "shipped write visible" 25_000. (Value.to_number v)
  | Error m -> Alcotest.fail ("balance on replica: " ^ m));
  (* writes are refused: only declared-read-only procedures run here *)
  (match
     Replica.exec_ro r ~reactor:(SB.customer_name 0) ~proc:"deposit_checking"
       ~args:[ Wl.vf 1. ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-readonly procedure served on a replica");
  (match
     Replica.exec_ro r ~reactor:"nobody" ~proc:"balance" ~args:[]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown reactor served");
  check_int "read-only serves counted" 3 (Replica.ro_served r)

(* --- generation fencing on the primary --- *)

let test_fencing () =
  let n = 4 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = Harness.build decl cfg in
  check_int "initial generation" 0 (DB.generation db);
  check_bool "not fenced at start" false (DB.fenced db);
  DB.set_generation db 7;
  check_int "generation stamped" 7 (DB.generation db);
  DB.fence db;
  check_bool "fenced" true (DB.fenced db);
  let result = ref (Ok Value.Null) in
  let eng = DB.engine db in
  Sim.Engine.spawn eng (fun () ->
      result :=
        (DB.exec_txn db ~reactor:(SB.customer_name 0) ~proc:"balance" ~args:[])
          .DB.result);
  ignore (Sim.Engine.run eng);
  (match !result with
  | Error m ->
    check_bool "typed refusal" true
      (String.length m >= 6 && String.sub m 0 6 = "fenced")
  | Ok _ -> Alcotest.fail "fenced primary admitted a transaction");
  check_int "refusal counted" 1 (DB.n_fenced_refusals db)

(* --- end-to-end: ship under load, kill mid-2PC, promote --- *)

let test_ship_kill_promote () =
  let n = 8 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = Harness.build decl cfg in
  let log = Wal.in_memory () in
  DB.attach_wal ~durable:true db log;
  let chaos = Chaos.make ~seed:7 ~kind:Chaos.Kill_primary ~p:0.5 () in
  DB.attach_chaos db chaos;
  let replicas = [ Replica.create ~id:0 decl; Replica.create ~id:1 decl ] in
  let sh =
    Replica.Shipper.create
      ~entries:(fun () -> Wal.entries log)
      ~durable_epoch:(fun () -> DB.durable_epoch db)
      ~gen:(fun () -> DB.generation db)
      replicas
  in
  let rng = Rng.create 7 in
  let ok_writes = ref 0 in
  let eng = DB.engine db in
  Sim.Engine.spawn eng (fun () ->
      for i = 1 to 80 do
        let r = SB.gen_conserving rng ~n in
        (match
           (DB.exec_txn db ~reactor:r.Wl.reactor ~proc:r.Wl.proc
              ~args:r.Wl.args)
             .DB.result
         with
        | Ok _ when r.Wl.proc <> "balance" && r.Wl.proc <> "sum_all" ->
          incr ok_writes
        | _ -> ());
        if i mod 8 = 0 then Replica.Shipper.round sh
      done);
  ignore (Sim.Engine.run eng);
  check_bool "kill fired" true (Chaos.injections chaos > 0);
  check_bool "primary fenced" true (DB.fenced db);
  Replica.Shipper.final_ship sh;
  let promoted =
    match Replica.freshest replicas with
    | Some r -> r
    | None -> Alcotest.fail "no replica to promote"
  in
  (match Replica.promote ~gen:(DB.generation db + 1) promoted with
  | Ok pm ->
    check_bool "generation bumped" true
      (pm.Replica.pm_gen > DB.generation db);
    check_int "promotion epoch is the watermark"
      (Replica.watermark promoted) pm.Replica.pm_epoch
  | Error m -> Alcotest.fail ("promotion refused: " ^ m));
  (* zero lost committed transactions: every acked write survived *)
  check_int "committed writes all present" !ok_writes
    (List.length
       (List.filter (fun e -> e.Wal.le_txn > 0) (Replica.log promoted)));
  check_float "money conserved on promoted state"
    (float_of_int (2 * n) *. 10_000.)
    (SB.total_money (List.map snd (Replica.catalogs promoted)));
  match Faultsim.check_secondaries (Replica.catalogs promoted) with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("secondary audit on promoted state: " ^ m)

(* --- replication lag rows through Obs --- *)

let test_obs_repl_rows () =
  let c = Obs.Collector.create ~clock:Obs.Virtual ~containers:2 () in
  let rows =
    [
      { Obs.rr_replica = 0; rr_applied_epoch = 9; rr_epochs_behind = 1;
        rr_bytes_behind = 256; rr_batches = 4; rr_drops = 1 };
      { Obs.rr_replica = 1; rr_applied_epoch = 10; rr_epochs_behind = 0;
        rr_bytes_behind = 0; rr_batches = 5; rr_drops = 0 };
    ]
  in
  Obs.Collector.set_repl c rows;
  let rep = Obs.Report.summarize c in
  check_int "rows published" 2 (List.length rep.Obs.Report.r_repl);
  (match Obs.Report.of_json (Obs.Report.to_json rep) with
  | Ok rep' ->
    check_bool "repl rows round-trip" true (rep'.Obs.Report.r_repl = rows)
  | Error m -> Alcotest.fail ("report round-trip: " ^ m));
  (* replica-free reports neither emit nor require the field *)
  let c2 = Obs.Collector.create ~clock:Obs.Virtual ~containers:1 () in
  let rep2 = Obs.Report.summarize c2 in
  match Obs.Report.of_json (Obs.Report.to_json rep2) with
  | Ok rep2' -> check_int "absent field reads empty" 0
                  (List.length rep2'.Obs.Report.r_repl)
  | Error m -> Alcotest.fail ("empty report round-trip: " ^ m)

(* --- autoscaler: the observed queue-wait signal --- *)

let ld ?(q = 0.) busy =
  {
    Runtime.Db.ld_busy_frac = busy;
    ld_qdepth_ewma = q;
    ld_mailbox = 0;
    ld_sheds = 0;
  }

let test_autoscaler_queue_wait () =
  let pol = AS.default in
  (* neither busy nor queue-depth trips: within the hysteresis band the
     controller holds... *)
  check_int "holds without the signal" 0
    (List.length
       (AS.decide pol
          ~load:[| ld 0.4; ld 0.1 |]
          ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]));
  (* ...but observed queue-wait above the threshold is saturation the
     other signals have not integrated yet: split *)
  (match
     AS.decide ~queue_wait:[| 6000.; 0. |] pol
       ~load:[| ld 0.4; ld 0.1 |]
       ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]
   with
  | [ a ] ->
    check_bool "split" true (a.AS.ac_why = `Split);
    check_int "from the waiting domain" 0 a.AS.ac_src;
    check_int "to the idle domain" 1 a.AS.ac_dst
  | acts -> Alcotest.failf "expected one split, got %d" (List.length acts));
  (* below the threshold the signal is inert *)
  check_int "sub-threshold wait holds" 0
    (List.length
       (AS.decide ~queue_wait:[| 4000.; 0. |] pol
          ~load:[| ld 0.4; ld 0.1 |]
          ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]));
  (* all-cold busy fractions would merge — unless queue-wait shows one
     domain is actually a backlog *)
  (match
     AS.decide pol
       ~load:[| ld 0.1; ld 0.05 |]
       ~placements:[ ("a0", 0); ("a1", 1) ]
   with
  | [ a ] -> check_bool "cold domains merge" true (a.AS.ac_why = `Merge)
  | acts -> Alcotest.failf "expected one merge, got %d" (List.length acts));
  check_int "no merge into a backlog" 0
    (List.length
       (AS.decide ~queue_wait:[| 6000.; 0. |] pol
          ~load:[| ld 0.1; ld 0.05 |]
          ~placements:[ ("a0", 0); ("a1", 1) ]));
  (* a collector with no recorded attempts reads 0 — the signal cannot
     trip on noise *)
  let c = Obs.Collector.create ~clock:Obs.Virtual ~containers:2 () in
  check_float "empty collector reads zero" 0.
    (Obs.Collector.queue_wait_mean_us c ~container:0)

let suite =
  ( "replica",
    [
      Alcotest.test_case "batch wire format round-trip" `Quick
        test_batch_roundtrip;
      Alcotest.test_case "apply: duplicates, gaps, generations" `Quick
        test_apply_refusals;
      Alcotest.test_case "torn shipment keeps complete epochs only" `Quick
        test_torn_tail;
      Alcotest.test_case "replica reads at the watermark" `Quick
        test_replica_reads;
      Alcotest.test_case "primary generation fencing" `Quick test_fencing;
      Alcotest.test_case "ship, kill mid-2pc, promote" `Quick
        test_ship_kill_promote;
      Alcotest.test_case "replication lag rows through obs" `Quick
        test_obs_repl_rows;
      Alcotest.test_case "autoscaler queue-wait signal" `Quick
        test_autoscaler_queue_wait;
    ] )
