(* Tests for secondary indexes: physical maintenance, transactional
   visibility (including same-transaction relocation), and phantom
   protection through secondary-index leaf witnesses. *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sch =
  Storage.Schema.make ~name:"emp"
    ~columns:
      [ ("id", Value.TInt); ("dept", Value.TStr); ("salary", Value.TInt) ]
    ~key:[ "id" ]

let row i dept salary = [| Value.Int i; Value.Str dept; Value.Int salary |]

let fresh_table () =
  let tbl = Storage.Table.create ~secondaries:[ ("by_dept", [ "dept" ]) ] sch in
  List.iter
    (fun (i, d, s) ->
      ignore (Storage.Table.insert tbl (Storage.Record.fresh ~absent:false (row i d s))))
    [ (1, "eng", 100); (2, "ops", 80); (3, "eng", 120); (4, "hr", 60) ];
  tbl

let dept_ids tbl dept =
  let lo, hi = Storage.Table.key_prefix_bounds [| Value.Str dept |] in
  let out = ref [] in
  Storage.Table.scan_secondary tbl ~index:"by_dept" ~lo ~hi ~f:(fun r ->
      out := Value.to_int r.Storage.Record.data.(0) :: !out;
      true);
  List.rev !out

let test_maintenance () =
  let tbl = fresh_table () in
  Alcotest.(check (list int)) "eng members" [ 1; 3 ] (dept_ids tbl "eng");
  (* remove relocates *)
  ignore (Storage.Table.remove tbl [| Value.Int 1 |]);
  Alcotest.(check (list int)) "after remove" [ 3 ] (dept_ids tbl "eng");
  (* update_data moves between departments *)
  (match Storage.Table.find tbl [| Value.Int 3 |] with
  | Some r -> Storage.Table.update_data tbl r (row 3 "ops" 120)
  | None -> Alcotest.fail "missing");
  Alcotest.(check (list int)) "eng empty" [] (dept_ids tbl "eng");
  Alcotest.(check (list int)) "ops gained" [ 2; 3 ] (dept_ids tbl "ops")

let test_create_validation () =
  check_bool "unknown column" true
    (try
       ignore (Storage.Table.create ~secondaries:[ ("x", [ "nope" ]) ] sch);
       false
     with Invalid_argument _ -> true);
  check_bool "duplicate name" true
    (try
       ignore
         (Storage.Table.create
            ~secondaries:[ ("x", [ "dept" ]); ("x", [ "salary" ]) ]
            sch);
       false
     with Invalid_argument _ -> true);
  let tbl = fresh_table () in
  check_bool "unknown index on scan" true
    (try
       Storage.Table.scan_secondary tbl ~index:"zzz" ~f:(fun _ -> true);
       false
     with Invalid_argument _ -> true)

(* --- transactional visibility through Exec.scan_index --- *)

let ids = ref 9000

let fresh_ctx () =
  let catalog = Storage.Catalog.create () in
  ignore
    (Storage.Catalog.create_table ~secondaries:[ ("by_dept", [ "dept" ]) ]
       catalog sch);
  let tbl = Storage.Catalog.table catalog "emp" in
  List.iter
    (fun (i, d, s) ->
      ignore (Storage.Table.insert tbl (Storage.Record.fresh ~absent:false (row i d s))))
    [ (1, "eng", 100); (2, "ops", 80); (3, "eng", 120); (4, "hr", 60) ];
  incr ids;
  ( Query.Exec.make_ctx ~txn:(Occ.Txn.create ~id:!ids) ~container:0 ~catalog
      ~charge:(fun _ _ -> ())
      ~work:(fun _ -> ()) (),
    catalog )

let scan_dept ctx dept =
  List.map
    (fun r -> Value.to_int r.(0))
    (Query.Exec.scan_index ctx "emp" ~index:"by_dept"
       ~prefix:[| Value.Str dept |] ())

let test_exec_scan_index () =
  let ctx, _ = fresh_ctx () in
  Alcotest.(check (list int)) "eng" [ 1; 3 ] (scan_dept ctx "eng");
  (* rev + limit: highest id in eng *)
  match
    Query.Exec.scan_index ctx "emp" ~index:"by_dept"
      ~prefix:[| Value.Str "eng" |] ~rev:true ~limit:1 ()
  with
  | [ r ] -> check_int "rev limit" 3 (Value.to_int r.(0))
  | l -> Alcotest.failf "expected 1 row, got %d" (List.length l)

let test_exec_index_sees_own_insert () =
  let ctx, _ = fresh_ctx () in
  Query.Exec.insert ctx "emp" (row 9 "eng" 1);
  Alcotest.(check (list int)) "buffered insert merged" [ 1; 3; 9 ]
    (scan_dept ctx "eng")

let test_exec_index_relocation () =
  let ctx, _ = fresh_ctx () in
  (* move employee 3 from eng to hr, inside the transaction *)
  check_bool "updated" true
    (Query.Exec.update_key ctx "emp" [| Value.Int 3 |] ~set:(fun r ->
         Query.Exec.seti r 1 (Value.Str "hr")));
  Alcotest.(check (list int)) "left eng" [ 1 ] (scan_dept ctx "eng");
  Alcotest.(check (list int)) "joined hr" [ 3; 4 ] (scan_dept ctx "hr")

let test_exec_index_hides_own_delete () =
  let ctx, _ = fresh_ctx () in
  check_bool "deleted" true (Query.Exec.delete_key ctx "emp" [| Value.Int 1 |]);
  Alcotest.(check (list int)) "delete hidden" [ 3 ] (scan_dept ctx "eng")

let test_exec_index_where () =
  let ctx, _ = fresh_ctx () in
  let rich =
    Query.Exec.scan_index ctx "emp" ~index:"by_dept"
      ~prefix:[| Value.Str "eng" |]
      ~where:Query.Expr.(col "salary" >. vint 110)
      ()
  in
  check_int "filter on non-indexed column" 1 (List.length rich)

(* --- concurrency: phantom protection through the secondary index --- *)

let test_index_phantom () =
  let _, catalog = fresh_ctx () in
  let mk () =
    incr ids;
    ( Occ.Txn.create ~id:!ids,
      Query.Exec.make_ctx ~txn:(Occ.Txn.create ~id:(1000000 + !ids))
        ~container:0 ~catalog
        ~charge:(fun _ _ -> ())
        ~work:(fun _ -> ()) () )
  in
  ignore mk;
  (* txn A scans hr via the index and writes something; txn B moves an
     employee into hr and commits first; A must fail validation. *)
  incr ids;
  let txn_a = Occ.Txn.create ~id:!ids in
  let ctx_a =
    Query.Exec.make_ctx ~txn:txn_a ~container:0 ~catalog
      ~charge:(fun _ _ -> ())
      ~work:(fun _ -> ()) ()
  in
  Alcotest.(check (list int)) "A sees hr = [4]" [ 4 ] (scan_dept ctx_a "hr");
  ignore
    (Query.Exec.update_key ctx_a "emp" [| Value.Int 2 |] ~set:(fun r ->
         Query.Exec.seti r 2 (Value.Int 81)));
  incr ids;
  let txn_b = Occ.Txn.create ~id:!ids in
  let ctx_b =
    Query.Exec.make_ctx ~txn:txn_b ~container:0 ~catalog
      ~charge:(fun _ _ -> ())
      ~work:(fun _ -> ()) ()
  in
  ignore
    (Query.Exec.update_key ctx_b "emp" [| Value.Int 1 |] ~set:(fun r ->
         Query.Exec.seti r 1 (Value.Str "hr")));
  check_bool "B commits" true
    (Result.is_ok (Occ.Commit.commit_single txn_b ~epoch:1 ~container:0));
  check_bool "A aborts on index phantom" true
    (Result.is_error (Occ.Commit.commit_single txn_a ~epoch:1 ~container:0))

let test_index_no_false_phantom () =
  (* an update that does NOT touch indexed columns must not invalidate
     index-range scanners *)
  let _, catalog = fresh_ctx () in
  incr ids;
  let txn_a = Occ.Txn.create ~id:!ids in
  let ctx_a =
    Query.Exec.make_ctx ~txn:txn_a ~container:0 ~catalog
      ~charge:(fun _ _ -> ())
      ~work:(fun _ -> ()) ()
  in
  Alcotest.(check (list int)) "A sees hr" [ 4 ] (scan_dept ctx_a "hr");
  ignore
    (Query.Exec.update_key ctx_a "emp" [| Value.Int 2 |] ~set:(fun r ->
         Query.Exec.seti r 2 (Value.Int 81)));
  incr ids;
  let txn_b = Occ.Txn.create ~id:!ids in
  let ctx_b =
    Query.Exec.make_ctx ~txn:txn_b ~container:0 ~catalog
      ~charge:(fun _ _ -> ())
      ~work:(fun _ -> ()) ()
  in
  (* salary-only change of an eng employee: hr's index leaves untouched *)
  ignore
    (Query.Exec.update_key ctx_b "emp" [| Value.Int 1 |] ~set:(fun r ->
         Query.Exec.seti r 2 (Value.Int 101)));
  check_bool "B commits" true
    (Result.is_ok (Occ.Commit.commit_single txn_b ~epoch:1 ~container:0));
  check_bool "A still commits" true
    (Result.is_ok (Occ.Commit.commit_single txn_a ~epoch:1 ~container:0))

(* Model-based property: scan_index over random data equals a filtered,
   sorted scan of the base table. *)
let prop_index_matches_filter =
  QCheck.Test.make ~name:"index scan = filtered base scan" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (pair (int_bound 100) (int_bound 3)))
        (int_bound 3))
    (fun (rows_spec, dept_i) ->
      let dept_of i = Printf.sprintf "d%d" i in
      let catalog = Storage.Catalog.create () in
      ignore
        (Storage.Catalog.create_table ~secondaries:[ ("by_dept", [ "dept" ]) ]
           catalog sch);
      let tbl = Storage.Catalog.table catalog "emp" in
      let seen = Hashtbl.create 16 in
      List.iter
        (fun (id, d) ->
          if not (Hashtbl.mem seen id) then begin
            Hashtbl.add seen id ();
            ignore
              (Storage.Table.insert tbl
                 (Storage.Record.fresh ~absent:false (row id (dept_of d) id)))
          end)
        rows_spec;
      incr ids;
      let ctx =
        Query.Exec.make_ctx ~txn:(Occ.Txn.create ~id:!ids) ~container:0
          ~catalog
          ~charge:(fun _ _ -> ())
          ~work:(fun _ -> ()) ()
      in
      let via_index = scan_dept ctx (dept_of dept_i) in
      let via_filter =
        List.sort Int.compare
          (List.map
             (fun r -> Value.to_int r.(0))
             (Query.Exec.scan ctx "emp"
                ~where:Query.Expr.(col "dept" ==. vstr (dept_of dept_i))
                ()))
      in
      via_index = via_filter)

let suite =
  ( "secondary",
    [
      Alcotest.test_case "physical maintenance" `Quick test_maintenance;
      Alcotest.test_case "creation validation" `Quick test_create_validation;
      Alcotest.test_case "exec scan_index" `Quick test_exec_scan_index;
      Alcotest.test_case "own insert via index" `Quick test_exec_index_sees_own_insert;
      Alcotest.test_case "own update relocates" `Quick test_exec_index_relocation;
      Alcotest.test_case "own delete hidden" `Quick test_exec_index_hides_own_delete;
      Alcotest.test_case "residual predicate" `Quick test_exec_index_where;
      Alcotest.test_case "index phantom protection" `Quick test_index_phantom;
      Alcotest.test_case "no false phantoms" `Quick test_index_no_false_phantom;
      QCheck_alcotest.to_alcotest prop_index_matches_filter;
    ] )
