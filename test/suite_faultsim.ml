(* Recovery-equivalence property suite: seeded Smallbank / TPC-C histories
   are redo-logged to disk with a checkpoint taken at the quiescent
   midpoint, then crashed at seeded fault points (torn log tails, byte
   corruption, checkpoints damaged between checkpoint write and log flush).
   Each crash point recovers from checkpoint + log tail and must reproduce
   exactly the committed-prefix state, with clean secondary indexes and —
   for Smallbank — money conserved. *)

open Util
module DB = Reactdb.Database
module W = Workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let exec db (req : W.Wl.request) =
  ignore
    (DB.exec_txn db ~reactor:req.W.Wl.reactor ~proc:req.W.Wl.proc
       ~args:req.W.Wl.args)

(* Build a two-phase history on disk: phase one of the workload, a
   checkpoint at the quiescent midpoint (recording the log position it
   covers), phase two, close. Returns the live final state so intact
   recovery can be compared against it. [run_phase db phase] runs one
   phase's workers to completion ([Sim.Engine.run] inclusive). *)
let build_history ~decl ~config ~names ~log_path ~ck_path run_phase =
  let db = Harness.build decl config in
  let log = Wal.to_file log_path in
  DB.attach_wal db log;
  run_phase db 0;
  Wal.flush log;
  let logged, tail = Wal.read_file_tolerant log_path in
  (match tail with
  | Wal.Clean -> ()
  | Wal.Torn { reason; _ } -> Alcotest.failf "reference log torn: %s" reason);
  check_bool "phase 1 logged commits" true (logged <> []);
  let max_tid =
    List.fold_left (fun m e -> Stdlib.max m e.Wal.le_tid) 0 logged
  in
  let cats = List.map (fun n -> (n, DB.catalog_of db n)) names in
  Checkpoint.write_file ck_path
    (Checkpoint.capture ~tid:max_tid ~covers:(List.length logged) cats);
  run_phase db 1;
  Wal.flush log;
  Wal.close log;
  check_bool "phase 2 logged more commits" true
    (List.length (Wal.read_file log_path) > List.length logged);
  Faultsim.snapshot cats

let with_history build f =
  let log_path = Filename.temp_file "faultsim" ".log" in
  let ck_path = Filename.temp_file "faultsim" ".ckpt" in
  let scratch = Filename.temp_file "faultsim" ".scratch" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ log_path; ck_path; scratch ])
    (fun () ->
      let final = build ~log_path ~ck_path in
      f ~log_path ~ck_path ~scratch ~final)

let assert_report ?(fallback = true) ~points report =
  (match report.Faultsim.rp_failures with
  | [] -> ()
  | (seed, m) :: _ ->
    Alcotest.failf "%d crash points failed; first: seed %d: %s"
      (List.length report.Faultsim.rp_failures) seed m);
  check_int "crash points exercised" points report.Faultsim.rp_points;
  check_bool "some crashes left a clean tail" true
    (report.Faultsim.rp_clean_tail > 0);
  check_bool "some crashes tore the tail" true
    (report.Faultsim.rp_torn_tail > 0);
  if fallback then
    check_bool "some crashes forced log-only fallback" true
      (report.Faultsim.rp_ckpt_fallback > 0)

(* ---------------- Smallbank ---------------- *)

let sb_customers = 6
let sb_initial = 10_000.
let sb_decl () = W.Smallbank.decl ~customers:sb_customers ~initial:sb_initial ()
let sb_names = W.Smallbank.customers sb_customers

(* Multi-transfer-only mix (§4.1.4 formulations): transfers conserve total
   money, giving the sweep an application-level invariant on top of state
   equality. Integral amounts keep float arithmetic exact. *)
let sb_run_phase db phase =
  let eng = DB.engine db in
  let formulations =
    [| W.Smallbank.Fully_sync; W.Smallbank.Partially_async;
       W.Smallbank.Fully_async; W.Smallbank.Opt |]
  in
  for w = 0 to 2 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create (411 + (100 * phase) + w) in
        for _ = 1 to 12 do
          let src = Rng.int rng sb_customers in
          let d1 = Rng.pick_except rng sb_customers src in
          let dests =
            if Rng.bool rng then [ d1 ]
            else begin
              let d2 = ref (Rng.pick_except rng sb_customers src) in
              while !d2 = d1 do
                d2 := Rng.pick_except rng sb_customers src
              done;
              [ d1; !d2 ]
            end
          in
          exec db
            (W.Smallbank.multi_transfer_request (Rng.pick rng formulations)
               ~src:(W.Smallbank.customer_name src)
               ~dests:(List.map W.Smallbank.customer_name dests)
               ~amount:(float_of_int (1 + Rng.int rng 8)))
        done)
  done;
  ignore (Sim.Engine.run eng);
  check_bool "phase committed work" true (DB.n_committed db > 0)

let sb_build ~log_path ~ck_path =
  build_history ~decl:(sb_decl ())
    ~config:
      (Reactdb.Config.shared_everything ~executors:2 ~affinity:true sb_names)
    ~names:sb_names ~log_path ~ck_path sb_run_phase

let sb_conservation cats =
  let expected = float_of_int sb_customers *. 2. *. sb_initial in
  let total = W.Smallbank.total_money (List.map snd cats) in
  if Float.abs (total -. expected) < 1e-6 then Ok ()
  else
    Error
      (Printf.sprintf "money not conserved: %.2f, expected %.2f" total
         expected)

let test_smallbank_intact_recovery () =
  with_history sb_build (fun ~log_path ~ck_path ~scratch:_ ~final ->
      let r = Faultsim.recover ~checkpoint:ck_path ~log:log_path (sb_decl ()) in
      check_bool "checkpoint restored" true
        (r.Faultsim.rc_checkpoint <> None);
      check_bool "rows restored" true (r.Faultsim.rc_restored > 0);
      (match Faultsim.diff final (Faultsim.snapshot r.Faultsim.rc_catalogs) with
      | None -> ()
      | Some m -> Alcotest.failf "intact recovery diverges: %s" m);
      (match Faultsim.check_secondaries r.Faultsim.rc_catalogs with
      | Ok () -> ()
      | Error m -> Alcotest.fail m);
      match sb_conservation r.Faultsim.rc_catalogs with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let test_smallbank_crash_sweep () =
  with_history sb_build (fun ~log_path ~ck_path ~scratch ~final:_ ->
      let report =
        Faultsim.crash_sweep ~checkpoint:ck_path ~extra_check:sb_conservation
          ~log:log_path ~scratch ~decl:(sb_decl ())
          ~seeds:(List.init 60 (fun i -> 7_000 + i))
          ()
      in
      assert_report ~points:60 report)

let test_smallbank_log_only_sweep () =
  (* No checkpoint at all: recovery is pure tolerant replay. *)
  with_history sb_build (fun ~log_path ~ck_path:_ ~scratch ~final:_ ->
      let report =
        Faultsim.crash_sweep ~extra_check:sb_conservation ~log:log_path
          ~scratch ~decl:(sb_decl ())
          ~seeds:(List.init 20 (fun i -> 21_000 + i))
          ()
      in
      assert_report ~fallback:false ~points:20 report)

(* ---------------- TPC-C ---------------- *)

let tpcc_warehouses = 2
let tpcc_names = W.Tpcc.warehouses tpcc_warehouses

let tpcc_decl () =
  W.Tpcc.decl ~warehouses:tpcc_warehouses ~sizes:W.Tpcc.small_sizes ()

let tpcc_run_phase seq db phase =
  let p =
    W.Tpcc.params ~sizes:W.Tpcc.small_sizes
      ~remote_mode:(W.Tpcc.Per_item 0.3) ~remote_payment_prob:0.3
      tpcc_warehouses
  in
  let eng = DB.engine db in
  for w = 0 to 1 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create (5_500 + (100 * phase) + w) in
        let home = 1 + (w mod tpcc_warehouses) in
        for _ = 1 to 10 do
          exec db (W.Tpcc.gen_mix rng p ~home ~seq)
        done)
  done;
  ignore (Sim.Engine.run eng);
  check_bool "phase committed work" true (DB.n_committed db > 0)

let tpcc_build ~log_path ~ck_path =
  build_history ~decl:(tpcc_decl ())
    ~config:
      (Reactdb.Config.shared_everything ~executors:2 ~affinity:true
         tpcc_names)
    ~names:tpcc_names ~log_path ~ck_path
    (tpcc_run_phase (ref 0))

let test_tpcc_crash_sweep () =
  with_history tpcc_build (fun ~log_path ~ck_path ~scratch ~final ->
      (* Intact recovery first (checkpoint + full tail = live final state),
         then the seeded sweep. TPC-C exercises inserts (orders, history)
         and deletes (delivery's new-order consumption) that Smallbank's
         update-only mix cannot. *)
      let r =
        Faultsim.recover ~checkpoint:ck_path ~log:log_path (tpcc_decl ())
      in
      (match Faultsim.diff final (Faultsim.snapshot r.Faultsim.rc_catalogs) with
      | None -> ()
      | Some m -> Alcotest.failf "intact recovery diverges: %s" m);
      let report =
        Faultsim.crash_sweep ~checkpoint:ck_path ~log:log_path ~scratch
          ~decl:(tpcc_decl ())
          ~seeds:(List.init 45 (fun i -> 13_000 + i))
          ()
      in
      assert_report ~points:45 report)

let suite =
  ( "faultsim",
    [
      Alcotest.test_case "smallbank intact recovery" `Quick
        test_smallbank_intact_recovery;
      Alcotest.test_case "smallbank crash sweep (60 points)" `Quick
        test_smallbank_crash_sweep;
      Alcotest.test_case "smallbank log-only sweep (20 points)" `Quick
        test_smallbank_log_only_sweep;
      Alcotest.test_case "tpcc crash sweep (45 points)" `Quick
        test_tpcc_crash_sweep;
    ] )
