(* Unit and property tests for the parallel runtime's MPSC mailbox, with
   real producer domains. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* [n_producers] domains each push (pid, 0), (pid, 1), ... (pid, per - 1);
   the main thread consumes exactly [n_producers * per] messages. Checks no
   message is lost or duplicated and each producer's messages arrive in
   push order. *)
let fifo_run ~n_producers ~per =
  let mb = Runtime.Mailbox.create () in
  let producers =
    Array.init n_producers (fun pid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Runtime.Mailbox.push mb (pid, i)
            done))
  in
  let next = Array.make n_producers 0 in
  let ok = ref true in
  for _ = 1 to n_producers * per do
    match Runtime.Mailbox.pop_wait mb with
    | None -> ok := false
    | Some (pid, i) ->
      if i <> next.(pid) then ok := false;
      next.(pid) <- i + 1
  done;
  Array.iter Domain.join producers;
  !ok && Array.for_all (fun n -> n = per) next

let test_fifo_four_producers () =
  check_bool "per-producer FIFO, none lost or duplicated" true
    (fifo_run ~n_producers:4 ~per:2000)

let test_single_producer_order () =
  check_bool "single producer is globally FIFO" true
    (fifo_run ~n_producers:1 ~per:5000)

let test_drain_after_close () =
  let mb = Runtime.Mailbox.create () in
  for i = 0 to 99 do
    Runtime.Mailbox.push mb i
  done;
  Runtime.Mailbox.close mb;
  (* close lets the consumer drain everything already queued *)
  for i = 0 to 99 do
    match Runtime.Mailbox.pop_wait mb with
    | Some v -> check_int "drained in order" i v
    | None -> Alcotest.fail "mailbox empty before drain finished"
  done;
  check_bool "closed and drained" true (Runtime.Mailbox.pop_wait mb = None);
  check_bool "stays drained" true (Runtime.Mailbox.pop_wait mb = None)

let test_push_after_close () =
  let mb = Runtime.Mailbox.create () in
  Runtime.Mailbox.push mb 1;
  Runtime.Mailbox.close mb;
  Runtime.Mailbox.close mb (* idempotent *);
  check_bool "is_closed" true (Runtime.Mailbox.is_closed mb);
  Alcotest.check_raises "push after close" Runtime.Mailbox.Closed (fun () ->
      Runtime.Mailbox.push mb 2)

let test_try_pop () =
  let mb = Runtime.Mailbox.create () in
  check_bool "empty try_pop" true (Runtime.Mailbox.try_pop mb = None);
  Runtime.Mailbox.push mb 7;
  check_bool "nonempty try_pop" true (Runtime.Mailbox.try_pop mb = Some 7);
  check_bool "drained again" true (Runtime.Mailbox.try_pop mb = None)

let test_blocking_wakeup () =
  let mb = Runtime.Mailbox.create () in
  let producer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Runtime.Mailbox.push mb 42)
  in
  (* consumer parks in pop_wait until the producer's push wakes it *)
  check_bool "woken by push" true (Runtime.Mailbox.pop_wait mb = Some 42);
  Domain.join producer

(* --- bounded capacity / admission control --- *)

let test_capacity_basics () =
  let mb = Runtime.Mailbox.create ~capacity:2 () in
  check_bool "accepts below cap" true (Runtime.Mailbox.try_push mb 1);
  check_bool "accepts at cap-1" true (Runtime.Mailbox.try_push mb 2);
  check_bool "refuses at cap" false (Runtime.Mailbox.try_push mb 3);
  (* unconditional push bypasses the cap: internal runtime traffic must
     never be shed *)
  Runtime.Mailbox.push mb 4;
  check_int "length counts both paths" 3 (Runtime.Mailbox.length mb);
  check_bool "still refusing" false (Runtime.Mailbox.try_push mb 5);
  (* drain one; admission opens again *)
  check_bool "drained 1" true (Runtime.Mailbox.pop_wait mb = Some 1);
  check_bool "drained 2" true (Runtime.Mailbox.pop_wait mb = Some 2);
  check_bool "accepts after drain" true (Runtime.Mailbox.try_push mb 6);
  check_bool "order kept" true (Runtime.Mailbox.pop_wait mb = Some 4);
  check_bool "order kept 2" true (Runtime.Mailbox.pop_wait mb = Some 6)

(* Four real producer domains hammer try_push against a small cap while a
   consumer drains slowly: some pushes must be refused, every accepted
   message must be delivered exactly once, and once the consumer fully
   drains, admission must open again. *)
let test_capacity_four_producers () =
  let cap = 8 and n_producers = 4 and per = 500 in
  let mb = Runtime.Mailbox.create ~capacity:cap () in
  let accepted = Atomic.make 0 and refused = Atomic.make 0 in
  let producers =
    Array.init n_producers (fun pid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              if Runtime.Mailbox.try_push mb (pid, i) then
                Atomic.incr accepted
              else Atomic.incr refused
            done))
  in
  let received = ref 0 in
  (* slow consumer: sleep between pops so the producers saturate the cap *)
  let rec drain_slow n =
    if n > 0 then begin
      Unix.sleepf 0.0002;
      (match Runtime.Mailbox.try_pop mb with
      | Some _ -> incr received
      | None -> ());
      drain_slow (n - 1)
    end
  in
  drain_slow 50;
  Array.iter Domain.join producers;
  (* producers done; drain the remainder *)
  let rec drain_rest () =
    match Runtime.Mailbox.try_pop mb with
    | Some _ ->
      incr received;
      drain_rest ()
    | None -> ()
  in
  drain_rest ();
  check_bool "some pushes refused under saturation" true
    (Atomic.get refused > 0);
  check_int "every accepted message delivered exactly once"
    (Atomic.get accepted) !received;
  check_int "accepted + refused = offered"
    (n_producers * per)
    (Atomic.get accepted + Atomic.get refused);
  (* fully drained: admission is open again *)
  check_bool "accepts after full drain" true (Runtime.Mailbox.try_push mb (0, 0))

let prop_no_loss =
  QCheck.Test.make ~name:"mailbox: no loss/dup, per-producer FIFO" ~count:15
    QCheck.(pair (int_range 1 4) (int_range 0 200))
    (fun (n_producers, per) -> fifo_run ~n_producers ~per)

let suite =
  ( "mailbox",
    [
      Alcotest.test_case "four producer domains FIFO" `Quick
        test_fifo_four_producers;
      Alcotest.test_case "single producer order" `Quick
        test_single_producer_order;
      Alcotest.test_case "drain after close" `Quick test_drain_after_close;
      Alcotest.test_case "push after close raises" `Quick test_push_after_close;
      Alcotest.test_case "try_pop" `Quick test_try_pop;
      Alcotest.test_case "capacity basics" `Quick test_capacity_basics;
      Alcotest.test_case "capacity under four producer domains" `Quick
        test_capacity_four_producers;
      Alcotest.test_case "blocking wakeup" `Quick test_blocking_wakeup;
      QCheck_alcotest.to_alcotest prop_no_loss;
    ] )
