(* Unit and property tests for the parallel runtime's MPSC mailbox, with
   real producer domains. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* [n_producers] domains each push (pid, 0), (pid, 1), ... (pid, per - 1);
   the main thread consumes exactly [n_producers * per] messages. Checks no
   message is lost or duplicated and each producer's messages arrive in
   push order. *)
let fifo_run ~n_producers ~per =
  let mb = Runtime.Mailbox.create () in
  let producers =
    Array.init n_producers (fun pid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Runtime.Mailbox.push mb (pid, i)
            done))
  in
  let next = Array.make n_producers 0 in
  let ok = ref true in
  for _ = 1 to n_producers * per do
    match Runtime.Mailbox.pop_wait mb with
    | None -> ok := false
    | Some (pid, i) ->
      if i <> next.(pid) then ok := false;
      next.(pid) <- i + 1
  done;
  Array.iter Domain.join producers;
  !ok && Array.for_all (fun n -> n = per) next

let test_fifo_four_producers () =
  check_bool "per-producer FIFO, none lost or duplicated" true
    (fifo_run ~n_producers:4 ~per:2000)

let test_single_producer_order () =
  check_bool "single producer is globally FIFO" true
    (fifo_run ~n_producers:1 ~per:5000)

let test_drain_after_close () =
  let mb = Runtime.Mailbox.create () in
  for i = 0 to 99 do
    Runtime.Mailbox.push mb i
  done;
  Runtime.Mailbox.close mb;
  (* close lets the consumer drain everything already queued *)
  for i = 0 to 99 do
    match Runtime.Mailbox.pop_wait mb with
    | Some v -> check_int "drained in order" i v
    | None -> Alcotest.fail "mailbox empty before drain finished"
  done;
  check_bool "closed and drained" true (Runtime.Mailbox.pop_wait mb = None);
  check_bool "stays drained" true (Runtime.Mailbox.pop_wait mb = None)

let test_push_after_close () =
  let mb = Runtime.Mailbox.create () in
  Runtime.Mailbox.push mb 1;
  Runtime.Mailbox.close mb;
  Runtime.Mailbox.close mb (* idempotent *);
  check_bool "is_closed" true (Runtime.Mailbox.is_closed mb);
  Alcotest.check_raises "push after close" Runtime.Mailbox.Closed (fun () ->
      Runtime.Mailbox.push mb 2)

let test_try_pop () =
  let mb = Runtime.Mailbox.create () in
  check_bool "empty try_pop" true (Runtime.Mailbox.try_pop mb = None);
  Runtime.Mailbox.push mb 7;
  check_bool "nonempty try_pop" true (Runtime.Mailbox.try_pop mb = Some 7);
  check_bool "drained again" true (Runtime.Mailbox.try_pop mb = None)

let test_blocking_wakeup () =
  let mb = Runtime.Mailbox.create () in
  let producer =
    Domain.spawn (fun () ->
        Unix.sleepf 0.05;
        Runtime.Mailbox.push mb 42)
  in
  (* consumer parks in pop_wait until the producer's push wakes it *)
  check_bool "woken by push" true (Runtime.Mailbox.pop_wait mb = Some 42);
  Domain.join producer

(* --- bounded capacity / admission control --- *)

let test_capacity_basics () =
  let mb = Runtime.Mailbox.create ~capacity:2 () in
  check_bool "accepts below cap" true (Runtime.Mailbox.try_push mb 1);
  check_bool "accepts at cap-1" true (Runtime.Mailbox.try_push mb 2);
  check_bool "refuses at cap" false (Runtime.Mailbox.try_push mb 3);
  (* unconditional push bypasses the cap: internal runtime traffic must
     never be shed *)
  Runtime.Mailbox.push mb 4;
  check_int "length counts both paths" 3 (Runtime.Mailbox.length mb);
  check_bool "still refusing" false (Runtime.Mailbox.try_push mb 5);
  (* drain one; admission opens again *)
  check_bool "drained 1" true (Runtime.Mailbox.pop_wait mb = Some 1);
  check_bool "drained 2" true (Runtime.Mailbox.pop_wait mb = Some 2);
  check_bool "accepts after drain" true (Runtime.Mailbox.try_push mb 6);
  check_bool "order kept" true (Runtime.Mailbox.pop_wait mb = Some 4);
  check_bool "order kept 2" true (Runtime.Mailbox.pop_wait mb = Some 6)

(* Four real producer domains hammer try_push against a small cap while a
   consumer drains slowly: some pushes must be refused, every accepted
   message must be delivered exactly once, and once the consumer fully
   drains, admission must open again. *)
let test_capacity_four_producers () =
  let cap = 8 and n_producers = 4 and per = 500 in
  let mb = Runtime.Mailbox.create ~capacity:cap () in
  let accepted = Atomic.make 0 and refused = Atomic.make 0 in
  let producers =
    Array.init n_producers (fun pid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              if Runtime.Mailbox.try_push mb (pid, i) then
                Atomic.incr accepted
              else Atomic.incr refused
            done))
  in
  let received = ref 0 in
  (* slow consumer: sleep between pops so the producers saturate the cap *)
  let rec drain_slow n =
    if n > 0 then begin
      Unix.sleepf 0.0002;
      (match Runtime.Mailbox.try_pop mb with
      | Some _ -> incr received
      | None -> ());
      drain_slow (n - 1)
    end
  in
  drain_slow 50;
  Array.iter Domain.join producers;
  (* producers done; drain the remainder *)
  let rec drain_rest () =
    match Runtime.Mailbox.try_pop mb with
    | Some _ ->
      incr received;
      drain_rest ()
    | None -> ()
  in
  drain_rest ();
  check_bool "some pushes refused under saturation" true
    (Atomic.get refused > 0);
  check_int "every accepted message delivered exactly once"
    (Atomic.get accepted) !received;
  check_int "accepted + refused = offered"
    (n_producers * per)
    (Atomic.get accepted + Atomic.get refused);
  (* fully drained: admission is open again *)
  check_bool "accepts after full drain" true (Runtime.Mailbox.try_push mb (0, 0))

let prop_no_loss =
  QCheck.Test.make ~name:"mailbox: no loss/dup, per-producer FIFO" ~count:15
    QCheck.(pair (int_range 1 4) (int_range 0 200))
    (fun (n_producers, per) -> fifo_run ~n_producers ~per)

(* --- batch push --- *)

let test_push_many () =
  let mb = Runtime.Mailbox.create () in
  Runtime.Mailbox.push_many mb [ 1; 2; 3 ];
  Runtime.Mailbox.push_many mb [] (* empty batch is a no-op *);
  Runtime.Mailbox.push_many mb [ 4 ];
  check_int "length counts the batches" 4 (Runtime.Mailbox.length mb);
  for i = 1 to 4 do
    check_bool "batch order kept" true (Runtime.Mailbox.pop_wait mb = Some i)
  done;
  Runtime.Mailbox.close mb;
  Alcotest.check_raises "push_many after close" Runtime.Mailbox.Closed
    (fun () -> Runtime.Mailbox.push_many mb [ 9 ])

let test_try_push_many () =
  let mb = Runtime.Mailbox.create ~capacity:3 () in
  check_int "admits the prefix that fits" 3
    (Runtime.Mailbox.try_push_many mb [ 1; 2; 3; 4; 5 ]);
  check_int "full mailbox admits none" 0 (Runtime.Mailbox.try_push_many mb [ 6 ]);
  check_bool "drain 1" true (Runtime.Mailbox.pop_wait mb = Some 1);
  check_int "one slot -> one admitted" 1
    (Runtime.Mailbox.try_push_many mb [ 7; 8 ]);
  check_bool "drain 2" true (Runtime.Mailbox.pop_wait mb = Some 2);
  check_bool "drain 3" true (Runtime.Mailbox.pop_wait mb = Some 3);
  check_bool "admitted prefix follows" true (Runtime.Mailbox.pop_wait mb = Some 7)

(* --- work stealing (steal_half) --- *)

let test_steal_half_basics () =
  let mb = Runtime.Mailbox.create () in
  (* messages tagged (idx, stealable) *)
  Runtime.Mailbox.push_many mb
    [ (0, true); (1, false); (2, true); (3, true); (4, false); (5, true) ];
  (* 4 stealable -> the oldest 2 go *)
  let stolen = Runtime.Mailbox.steal_half mb ~stealable:snd in
  check_bool "oldest stealable half, in queue order" true
    (List.map fst stolen = [ 0; 2 ]);
  check_int "length decremented by the steal" 4 (Runtime.Mailbox.length mb);
  let rec drain acc =
    match Runtime.Mailbox.try_pop mb with
    | Some m -> drain (fst m :: acc)
    | None -> List.rev acc
  in
  check_bool "survivors keep their relative order" true
    (drain [] = [ 1; 3; 4; 5 ]);
  check_bool "empty inbox steals nothing" true
    (Runtime.Mailbox.steal_half mb ~stealable:snd = [])

let test_steal_respects_consumer_batch () =
  let mb = Runtime.Mailbox.create () in
  Runtime.Mailbox.push_many mb [ 1; 2; 3 ];
  (* the consumer's first pop swaps the whole inbox into its private
     batch; everything already drained there is off-limits to thieves *)
  check_bool "consumer got head" true (Runtime.Mailbox.try_pop mb = Some 1);
  check_bool "batched messages are not stealable" true
    (Runtime.Mailbox.steal_half mb ~stealable:(fun _ -> true) = []);
  Runtime.Mailbox.push mb 4;
  (* 4 is in the shared inbox again: one stealable message -> steal it *)
  check_bool "fresh inbox message is stealable" true
    (Runtime.Mailbox.steal_half mb ~stealable:(fun _ -> true) = [ 4 ]);
  check_bool "consumer continues its batch" true
    (Runtime.Mailbox.try_pop mb = Some 2)

let test_steal_capacity_accounting () =
  let mb = Runtime.Mailbox.create ~capacity:4 () in
  for i = 0 to 3 do
    check_bool "fills" true (Runtime.Mailbox.try_push mb i)
  done;
  check_bool "full sheds" false (Runtime.Mailbox.try_push mb 99);
  let stolen = Runtime.Mailbox.steal_half mb ~stealable:(fun _ -> true) in
  check_int "stole half" 2 (List.length stolen);
  check_int "length reflects the steal" 2 (Runtime.Mailbox.length mb);
  check_bool "admission reopened" true (Runtime.Mailbox.try_push mb 4);
  check_bool "reopened twice" true (Runtime.Mailbox.try_push mb 5);
  check_bool "full again at cap" false (Runtime.Mailbox.try_push mb 6)

(* Sequential model property: a mailbox is a pair of queues — the shared
   inbox and the consumer's private batch. try_push appends to the inbox if
   under capacity; try_pop moves the whole inbox behind the batch when the
   batch is empty, then pops the batch head; steal_half takes the oldest
   ceil(k/2) stealable (here: even) messages out of the inbox only. The
   real mailbox must agree with this model on every op's result. *)
let prop_steal_model =
  QCheck.Test.make
    ~name:"mailbox: push/pop/steal agree with the two-queue model" ~count:500
    QCheck.(pair (int_range 1 6) (small_list (int_range 0 2)))
    (fun (cap, ops) ->
      let mb = Runtime.Mailbox.create ~capacity:cap () in
      let batch = ref [] and inbox = ref [] and next = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | 0 ->
            let v = !next in
            incr next;
            let fits = List.length !batch + List.length !inbox < cap in
            if fits then inbox := !inbox @ [ v ];
            Runtime.Mailbox.try_push mb v = fits
          | 1 ->
            (if !batch = [] then begin
               batch := !inbox;
               inbox := []
             end);
            let expect =
              match !batch with
              | [] -> None
              | h :: tl ->
                batch := tl;
                Some h
            in
            Runtime.Mailbox.try_pop mb = expect
          | _ ->
            let stealable v = v mod 2 = 0 in
            let k = List.length (List.filter stealable !inbox) in
            let target = (k + 1) / 2 in
            let taken = ref 0 in
            let expect, kept =
              List.partition
                (fun v ->
                  if stealable v && !taken < target then begin
                    incr taken;
                    true
                  end
                  else false)
                !inbox
            in
            inbox := kept;
            Runtime.Mailbox.steal_half mb ~stealable = expect
            && Runtime.Mailbox.length mb
               = List.length !batch + List.length !inbox)
        ops)

(* Four real producer domains + two thief domains + the consumer: thieves
   repeatedly steal_half the even-indexed messages while the consumer
   drains. Every message must end up at exactly one place, thieves must
   only ever hold stealable messages, and the consumer's view of each
   producer must stay a FIFO subsequence (all odd messages in order). *)
let test_steal_four_domains () =
  let n_producers = 4 and per = 1500 in
  let mb = Runtime.Mailbox.create () in
  let stop = Atomic.make false in
  let stolen = Array.init 2 (fun _ -> ref []) in
  let thieves =
    Array.init 2 (fun t ->
        Domain.spawn (fun () ->
            let acc = stolen.(t) in
            while not (Atomic.get stop) do
              match
                Runtime.Mailbox.steal_half mb ~stealable:(fun (_, i) ->
                    i mod 2 = 0)
              with
              | [] -> Domain.cpu_relax ()
              | xs -> acc := List.rev_append xs !acc
            done))
  in
  let producers_done = Atomic.make 0 in
  let producers =
    Array.init n_producers (fun pid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Runtime.Mailbox.push mb (pid, i)
            done;
            Atomic.incr producers_done))
  in
  let received = Array.init n_producers (fun _ -> ref []) in
  let rec consume () =
    match Runtime.Mailbox.try_pop mb with
    | Some (pid, i) ->
      received.(pid) := i :: !(received.(pid));
      consume ()
    | None ->
      if
        Atomic.get producers_done < n_producers
        || Runtime.Mailbox.length mb > 0
      then begin
        Domain.cpu_relax ();
        consume ()
      end
  in
  consume ();
  Array.iter Domain.join producers;
  Atomic.set stop true;
  Array.iter Domain.join thieves;
  (* no loss, no duplication: each (pid, i) lands in exactly one place *)
  let seen = Array.make_matrix n_producers per 0 in
  let mark (pid, i) = seen.(pid).(i) <- seen.(pid).(i) + 1 in
  Array.iter (fun r -> List.iter (fun i -> mark i) !r) stolen;
  Array.iteri (fun pid r -> List.iter (fun i -> mark (pid, i)) !r) received;
  Array.iter
    (fun row -> Array.iter (fun c -> check_int "delivered exactly once" 1 c) row)
    seen;
  (* thieves only ever held stealable (even) messages *)
  Array.iter
    (fun r ->
      check_bool "thieves hold only stealable messages" true
        (List.for_all (fun (_, i) -> i mod 2 = 0) !r))
    stolen;
  (* consumer kept per-producer FIFO on what it received; the never-
     stealable odd messages are all there *)
  Array.iter
    (fun r ->
      let in_order = !r (* reversed: newest first *) in
      check_bool "consumer sequence is a FIFO subsequence" true
        (fst
           (List.fold_left
              (fun (ok, prev) i -> (ok && i < prev, i))
              (true, max_int) in_order));
      check_int "every odd message reached the consumer" (per / 2)
        (List.length (List.filter (fun i -> i mod 2 = 1) in_order)))
    received

let suite =
  ( "mailbox",
    [
      Alcotest.test_case "four producer domains FIFO" `Quick
        test_fifo_four_producers;
      Alcotest.test_case "single producer order" `Quick
        test_single_producer_order;
      Alcotest.test_case "drain after close" `Quick test_drain_after_close;
      Alcotest.test_case "push after close raises" `Quick test_push_after_close;
      Alcotest.test_case "try_pop" `Quick test_try_pop;
      Alcotest.test_case "capacity basics" `Quick test_capacity_basics;
      Alcotest.test_case "capacity under four producer domains" `Quick
        test_capacity_four_producers;
      Alcotest.test_case "blocking wakeup" `Quick test_blocking_wakeup;
      Alcotest.test_case "push_many batch" `Quick test_push_many;
      Alcotest.test_case "try_push_many admits the fitting prefix" `Quick
        test_try_push_many;
      Alcotest.test_case "steal_half basics" `Quick test_steal_half_basics;
      Alcotest.test_case "steal_half never touches the consumer batch" `Quick
        test_steal_respects_consumer_batch;
      Alcotest.test_case "steal_half reopens admission" `Quick
        test_steal_capacity_accounting;
      Alcotest.test_case "stealing under four producer + two thief domains"
        `Quick test_steal_four_domains;
      QCheck_alcotest.to_alcotest prop_no_loss;
      QCheck_alcotest.to_alcotest prop_steal_model;
    ] )
