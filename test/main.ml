let () =
  Alcotest.run "reactdb"
    [
      Suite_util.suite;
      Suite_btree.suite;
      Suite_storage.suite;
      Suite_occ.suite;
      Suite_query.suite;
      Suite_secondary.suite;
      Suite_sim.suite;
      Suite_costmodel.suite;
      Suite_histories.suite;
      Suite_reactdb.suite;
      Suite_workloads.suite;
      Suite_wal.suite;
      Suite_faultsim.suite;
      Suite_sql.suite;
      Suite_analysis.suite;
      Suite_random.suite;
      Suite_chaos.suite;
      Suite_mailbox.suite;
      Suite_runtime.suite;
      Suite_obs.suite;
      Suite_snapshot.suite;
      Suite_migration.suite;
      Suite_misc.suite;
      Suite_replica.suite;
    ]
