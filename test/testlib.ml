(* Shared fixtures: a tiny "account" reactor database used across runtime
   test suites. Each Account reactor encapsulates a single-row [acct]
   relation holding a balance. *)

open Util

let acct_schema =
  Storage.Schema.make ~name:"acct"
    ~columns:[ ("id", Value.TInt); ("balance", Value.TFloat) ]
    ~key:[ "id" ]

(* Procedures:
   - get_balance () -> float
   - deposit (amount) -> new balance; aborts on negative result
   - transfer_to (other, amount): deposit amount on [other], withdraw here
   - multi_transfer_sync / multi_transfer_async (amount, dests...)
   - multi_transfer_collect (amount, dests...): fan-out joined by collect
   - multi_transfer_collect_slow (spin_us, amount, dests...): credits via
     slow_deposit, which busy-waits spin_us of wall clock first
   - same_twice (other): two async calls to the same reactor — dangerous
   - noop () *)
let account_type =
  let open Reactor in
  let balance_of ctx =
    match Query.Exec.get ctx.db "acct" [| Value.Int 0 |] with
    | Some row -> Value.to_float row.(1)
    | None -> abort "account row missing"
  in
  let set_balance ctx b =
    ignore
      (Query.Exec.update_key ctx.db "acct" [| Value.Int 0 |] ~set:(fun row ->
           Query.Exec.seti row 1 (Value.Float b)))
  in
  let get_balance ctx _args = Value.Float (balance_of ctx) in
  let deposit ctx args =
    let amount = arg_float args 0 in
    let b = balance_of ctx +. amount in
    if b < 0. then abort "insufficient funds";
    set_balance ctx b;
    Value.Float b
  in
  let transfer_to ctx args =
    let dest = arg_str args 0 and amount = arg_float args 1 in
    let f =
      ctx.call ~reactor:dest ~proc:"deposit" ~args:[ Value.Float amount ]
    in
    ignore (ctx.call ~reactor:ctx.self ~proc:"deposit"
              ~args:[ Value.Float (-.amount) ]);
    ignore (f.get ());
    Value.Null
  in
  let multi_transfer sync ctx args =
    match args with
    | amount :: dests ->
      let futures =
        List.map
          (fun d ->
            let f =
              ctx.call ~reactor:(Value.to_str d) ~proc:"deposit"
                ~args:[ amount ]
            in
            if sync then ignore (f.get ());
            f)
          dests
      in
      let total = Value.to_float amount *. float_of_int (List.length dests) in
      let fd =
        ctx.call ~reactor:ctx.self ~proc:"deposit"
          ~args:[ Value.Float (-.total) ]
      in
      ignore (fd.get ());
      List.iter (fun f -> ignore (f.get ())) futures;
      Value.Null
    | [] -> abort "no amount"
  in
  (* Busy-waits [us] of wall clock before depositing: lets runtime deadline
     tests hold remote sub-transactions open past the root's budget with
     deterministic timing. The spin is meaningless on the simulator's
     virtual clock — simulator suites must not call it. *)
  let slow_deposit ctx args =
    let us = arg_float args 1 in
    let t0 = Unix.gettimeofday () in
    while (Unix.gettimeofday () -. t0) *. 1e6 < us do () done;
    deposit ctx [ List.nth args 0 ]
  in
  (* Fan-out/collect formulation: every credit issued up front, the debit
     inlined on self, then one explicit collect barrier joins the credits
     (out-of-order completion; errors surface at the barrier). *)
  let multi_transfer_collect ctx args =
    match args with
    | amount :: dests ->
      let futures =
        List.map
          (fun d ->
            ctx.call ~reactor:(Value.to_str d) ~proc:"deposit"
              ~args:[ amount ])
          dests
      in
      let total = Value.to_float amount *. float_of_int (List.length dests) in
      let fd =
        ctx.call ~reactor:ctx.self ~proc:"deposit"
          ~args:[ Value.Float (-.total) ]
      in
      ignore (fd.get ());
      ignore (ctx.collect futures);
      Value.Null
    | [] -> abort "no amount"
  in
  (* Same fan-out, but each credit runs [slow_deposit] holding its callee
     busy for [spin] wall-clock microseconds — so a root deadline between
     the fan-out and the slowest credit expires mid-collect, with every
     future still outstanding. *)
  let multi_transfer_collect_slow ctx args =
    match args with
    | spin :: amount :: dests ->
      let futures =
        List.map
          (fun d ->
            ctx.call ~reactor:(Value.to_str d) ~proc:"slow_deposit"
              ~args:[ amount; spin ])
          dests
      in
      let total = Value.to_float amount *. float_of_int (List.length dests) in
      let fd =
        ctx.call ~reactor:ctx.self ~proc:"deposit"
          ~args:[ Value.Float (-.total) ]
      in
      ignore (fd.get ());
      ignore (ctx.collect futures);
      Value.Null
    | _ -> abort "need spin and amount"
  in
  let same_twice ctx args =
    let dest = arg_str args 0 in
    let f1 = ctx.call ~reactor:dest ~proc:"deposit" ~args:[ Value.Float 1. ] in
    let f2 = ctx.call ~reactor:dest ~proc:"deposit" ~args:[ Value.Float 1. ] in
    ignore (f1.get ());
    ignore (f2.get ());
    Value.Null
  in
  let noop _ctx _args = Value.Null in
  rtype ~name:"Account" ~schemas:[ acct_schema ]
    ~procs:
      [
        ("get_balance", get_balance);
        ("deposit", deposit);
        ("transfer_to", transfer_to);
        ("multi_transfer_sync", multi_transfer true);
        ("multi_transfer_async", multi_transfer false);
        ("multi_transfer_collect", multi_transfer_collect);
        ("multi_transfer_collect_slow", multi_transfer_collect_slow);
        ("slow_deposit", slow_deposit);
        ("same_twice", same_twice);
        ("noop", noop);
      ]
    ()

let names n = List.init n (fun i -> Printf.sprintf "acct%d" i)

let bank_decl ?(initial = 100.) n =
  let loader _name catalog =
    let tbl = Storage.Catalog.table catalog "acct" in
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false
            [| Value.Int 0; Value.Float initial |]))
  in
  Reactor.decl ~types:[ account_type ]
    ~reactors:(List.map (fun nm -> (nm, "Account")) (names n))
    ~loaders:(List.map (fun nm -> (nm, loader nm)) (names n))
    ()

(* Run [f] as a simulation process against a fresh database; returns f's
   result after the simulation drains. *)
let with_db ?(n = 4) ?(profile = Reactdb.Profile.default) config f =
  let eng = Sim.Engine.create () in
  let db = Reactdb.Database.create eng (bank_decl n) config profile in
  let result = ref None in
  Sim.Engine.spawn eng (fun () -> result := Some (f db));
  ignore (Sim.Engine.run eng);
  match !result with
  | Some r -> r
  | None -> failwith "with_db: process did not complete"

let balance db name =
  match
    Reactdb.Database.exec_txn db ~reactor:name ~proc:"get_balance" ~args:[]
  with
  | { result = Ok (Value.Float f); _ } -> f
  | { result = Ok v; _ } -> failwith ("unexpected " ^ Value.to_string v)
  | { result = Error m; _ } -> failwith ("get_balance aborted: " ^ m)

let se_config ?(affinity = true) ?mpl n_exec n_reactors =
  Reactdb.Config.shared_everything ~executors:n_exec ~affinity ?mpl
    (names n_reactors)

let sn_config ?mpl n_reactors =
  Reactdb.Config.shared_nothing ?mpl (List.map (fun n -> [ n ]) (names n_reactors))

(* Adversarial conflict workload over the 4-account bank: each worker
   repeatedly transfers 1.0 between random accounts. Used by integration
   tests asserting conservation and serializability. *)
let run_conflict_workload ?(accounts = 4) db ~workers ~per_worker =
  let eng = Reactdb.Database.engine db in
  let finished = ref 0 in
  for w = 0 to workers - 1 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create (1000 + w) in
        for _ = 1 to per_worker do
          let src = Rng.int rng accounts in
          let dst = Rng.pick_except rng accounts src in
          ignore
            (Reactdb.Database.exec_txn db
               ~reactor:(Printf.sprintf "acct%d" src)
               ~proc:"transfer_to"
               ~args:[ Value.Str (Printf.sprintf "acct%d" dst); Value.Float 1. ])
        done;
        incr finished)
  done;
  ignore (Sim.Engine.run eng);
  if !finished <> workers then failwith "run_conflict_workload: workers stuck"
