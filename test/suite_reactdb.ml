(* Integration tests of the ReactDB runtime: reactor semantics, deployments,
   concurrency control, safety condition, breakdowns. *)

open Util
open Testlib
module DB = Reactdb.Database

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-6))

let ok_or_fail = function
  | { DB.result = Ok v; _ } -> v
  | { DB.result = Error m; _ } -> Alcotest.failf "unexpected abort: %s" m

let test_single_reactor_txn () =
  with_db (se_config 1 4) (fun db ->
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"deposit"
          ~args:[ Value.Float 50. ]
      in
      (match ok_or_fail out with
      | Value.Float f -> checkf "deposit returns new balance" 150. f
      | v -> Alcotest.failf "bad result %s" (Value.to_string v));
      checkf "committed balance" 150. (balance db "acct0");
      check_int "committed count" 2 (DB.n_committed db);
      check_bool "latency positive" true (out.DB.latency > 0.))

let test_user_abort_rolls_back () =
  with_db (se_config 1 4) (fun db ->
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"deposit"
          ~args:[ Value.Float (-500.) ]
      in
      (match out.DB.result with
      | Error m -> check_bool "abort reason" true (m = "insufficient funds")
      | Ok _ -> Alcotest.fail "expected abort");
      checkf "balance unchanged" 100. (balance db "acct0");
      check_int "aborted count" 1 (DB.n_aborted db))

let test_cross_reactor_sync_shared_everything () =
  with_db (se_config 2 4) (fun db ->
      ignore
        (ok_or_fail
           (DB.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
              ~args:[ Value.Str "acct1"; Value.Float 30. ]));
      checkf "source debited" 70. (balance db "acct0");
      checkf "dest credited" 130. (balance db "acct1"))

let test_cross_container_async () =
  with_db (sn_config 4) (fun db ->
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_async"
          ~args:[ Value.Float 10.; Value.Str "acct1"; Value.Str "acct2";
                  Value.Str "acct3" ]
      in
      ignore (ok_or_fail out);
      check_int "touched all four containers" 4 out.DB.containers_touched;
      checkf "source" 70. (balance db "acct0");
      checkf "d1" 110. (balance db "acct1");
      checkf "d2" 110. (balance db "acct2");
      checkf "d3" 110. (balance db "acct3"))

let test_sub_abort_aborts_root () =
  with_db (sn_config 4) (fun db ->
      (* acct1 has 100; transferring 200 in makes the source debit fail. *)
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_sync"
          ~args:[ Value.Float 200.; Value.Str "acct1" ]
      in
      (match out.DB.result with
      | Error m -> check_bool "reason" true (m = "insufficient funds")
      | Ok _ -> Alcotest.fail "expected abort");
      (* The credit on acct1 must NOT survive. *)
      checkf "no partial commit on acct1" 100. (balance db "acct1");
      checkf "source untouched" 100. (balance db "acct0"))

let test_remote_sub_abort_aborts_root () =
  with_db ~n:2 (sn_config 2) (fun db ->
      (* deposit on remote reactor aborts (negative balance there). *)
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
          ~args:[ Value.Str "acct1"; Value.Float (-500.) ]
      in
      (* transfer_to sends deposit(-(-500)) = +500 locally, deposit(-500)
         remotely: remote hits insufficient funds. *)
      check_bool "aborted" true (Result.is_error out.DB.result);
      checkf "local effect rolled back" 100. (balance db "acct0");
      checkf "remote unchanged" 100. (balance db "acct1"))

let test_dangerous_structure_detected () =
  with_db ~n:2 (sn_config 2) (fun db ->
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"same_twice"
          ~args:[ Value.Str "acct1" ]
      in
      match out.DB.result with
      | Error m ->
        check_bool "dangerous structure reported" true
          (String.length m >= 9 && String.sub m 0 9 = "dangerous");
        checkf "no effects" 100. (balance db "acct1")
      | Ok _ -> Alcotest.fail "expected dangerous-structure abort")

let test_sequential_calls_same_reactor_ok () =
  (* Two transfers to the same destination, synchronously one after the
     other: the active set empties in between, so this is safe. *)
  with_db ~n:2 (sn_config 2) (fun db ->
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_sync"
          ~args:[ Value.Float 5.; Value.Str "acct1" ]
      in
      ignore (ok_or_fail out);
      let out2 =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_sync"
          ~args:[ Value.Float 5.; Value.Str "acct1" ]
      in
      ignore (ok_or_fail out2);
      checkf "dest" 110. (balance db "acct1"))

let test_self_call_inlined () =
  with_db (se_config 1 1) (fun db ->
      (* transfer_to self: credit and debit cancel; must not deadlock or
         trip the safety condition. *)
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
          ~args:[ Value.Str "acct0"; Value.Float 10. ]
      in
      ignore (ok_or_fail out);
      checkf "unchanged" 100. (balance db "acct0"))

let total_balance db =
  List.fold_left (fun acc n -> acc +. balance db n) 0. (names 4)

let test_conservation_shared_everything () =
  with_db (se_config ~affinity:false 4 4) (fun db ->
      Testlib.run_conflict_workload db ~workers:6 ~per_worker:40;
      checkf "money conserved" 400. (total_balance db);
      check_bool "some commits" true (DB.n_committed db > 0))

let test_conservation_shared_nothing () =
  with_db (sn_config 4) (fun db ->
      Testlib.run_conflict_workload db ~workers:6 ~per_worker:40;
      checkf "money conserved" 400. (total_balance db);
      check_bool "some commits" true (DB.n_committed db > 0))

let test_conservation_affinity () =
  with_db (se_config ~affinity:true 4 4) (fun db ->
      Testlib.run_conflict_workload db ~workers:6 ~per_worker:40;
      checkf "money conserved" 400. (total_balance db))

let test_breakdown_sums_to_latency () =
  with_db (sn_config 4) (fun db ->
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_async"
          ~args:[ Value.Float 1.; Value.Str "acct1"; Value.Str "acct2" ]
      in
      ignore (ok_or_fail out);
      let b = out.DB.breakdown in
      let sum =
        b.DB.bd_sync_exec +. b.DB.bd_cs +. b.DB.bd_cr +. b.DB.bd_async_exec
        +. b.DB.bd_overhead
      in
      Alcotest.(check (float 1e-3)) "buckets sum to latency" out.DB.latency sum;
      check_bool "cs charged for 2 remote calls" true
        (b.DB.bd_cs >= 2. *. Reactdb.Profile.default.cost_send -. 1e-9))

let test_async_faster_than_sync () =
  (* The core latency claim (Fig. 5): overlapping remote work must beat
     sequential remote work on a shared-nothing deployment. *)
  let run proc =
    with_db ~n:6 (sn_config 6) (fun db ->
        let args =
          Value.Float 1.
          :: List.map (fun i -> Value.Str (Printf.sprintf "acct%d" i))
               [ 1; 2; 3; 4; 5 ]
        in
        let out = DB.exec_txn db ~reactor:"acct0" ~proc ~args in
        ignore (ok_or_fail out);
        out.DB.latency)
  in
  let sync = run "multi_transfer_sync" in
  let asyn = run "multi_transfer_async" in
  check_bool
    (Printf.sprintf "async (%.1f) < sync (%.1f)" asyn sync)
    true (asyn < sync)

let test_noop_overhead () =
  (* App F.3: empty transactions measure containerization overhead. *)
  with_db (se_config 1 1) (fun db ->
      let out = DB.exec_txn db ~reactor:"acct0" ~proc:"noop" ~args:[] in
      ignore (ok_or_fail out);
      let p = Reactdb.Profile.default in
      check_bool "latency at least dispatch+input+proc+commit" true
        (out.DB.latency
        >= p.cost_input_gen +. p.cost_client_dispatch +. p.cost_proc_base
           +. p.cost_commit_base -. 1e-6);
      check_bool "latency in the ~20µs ballpark of App F.3" true
        (out.DB.latency >= 15. && out.DB.latency <= 30.))

let test_occ_detects_conflicts () =
  (* Force a read-validate conflict: two concurrent transactions on the same
     reactor data from different executors of one container. With zero think
     time and identical access sets, at least one abort should eventually
     occur under round-robin routing; and committed state must be exact. *)
  with_db (se_config ~affinity:false 4 1) (fun db ->
      let eng = DB.engine db in
      for w = 0 to 3 do
        Sim.Engine.spawn eng (fun () ->
            ignore w;
            for _ = 1 to 50 do
              ignore
                (DB.exec_txn db ~reactor:"acct0" ~proc:"deposit"
                   ~args:[ Value.Float 1. ])
            done)
      done;
      ignore (Sim.Engine.run eng);
      let committed = DB.n_committed db and aborted = DB.n_aborted db in
      checkf "balance = 100 + commits" (100. +. float_of_int committed)
        (balance db "acct0");
      check_int "commits + aborts = 200" 200 (committed + aborted))

let test_utilizations_and_reset () =
  with_db (se_config 2 4) (fun db ->
      ignore
        (ok_or_fail
           (DB.exec_txn db ~reactor:"acct0" ~proc:"deposit"
              ~args:[ Value.Float 1. ]));
      let u = DB.utilizations db in
      check_int "one entry per executor" 2 (Array.length u);
      check_bool "some busy time" true (Array.exists (fun x -> x > 0.) u);
      DB.reset_stats db;
      check_int "committed reset" 0 (DB.n_committed db))

let test_cluster_deployment () =
  (* Same application, containers split across two machines: semantics
     unchanged, cross-machine latency strictly higher. *)
  let lat machines =
    with_db ~n:4
      (Reactdb.Config.on_machines (sn_config 4) (fun c -> c mod machines))
      (fun db ->
        let out =
          DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_async"
            ~args:[ Value.Float 5.; Value.Str "acct1"; Value.Str "acct2" ]
        in
        ignore (ok_or_fail out);
        checkf "d1 credited" 105. (balance db "acct1");
        checkf "d2 credited" 105. (balance db "acct2");
        checkf "source debited" 90. (balance db "acct0");
        out.DB.latency)
  in
  let local = lat 1 and spread = lat 2 in
  check_bool
    (Printf.sprintf "network adds latency (%.1f < %.1f)" local spread)
    true
    (local +. (2. *. Reactdb.Profile.default.cost_network) <= spread)

let test_config_spec_parsing () =
  let spec =
    Reactdb.Config.Spec.of_string
      "# a comment\nstrategy shared-nothing\nmpl 4\ngroups auto 2\n"
  in
  let cfg = Reactdb.Config.Spec.build spec [ "a"; "b"; "c" ] in
  check_int "containers" 2 (Reactdb.Config.n_containers cfg);
  check_int "mpl" 4 cfg.Reactdb.Config.mpl;
  check_int "a in container 0" 0 (cfg.Reactdb.Config.placement "a");
  check_int "b in container 1" 1 (cfg.Reactdb.Config.placement "b");
  check_int "c in container 0" 0 (cfg.Reactdb.Config.placement "c");
  let spec2 =
    Reactdb.Config.Spec.of_string
      "strategy shared-everything\nexecutors 3\naffinity off\n"
  in
  let cfg2 = Reactdb.Config.Spec.build spec2 [ "a" ] in
  check_int "one container" 1 (Reactdb.Config.n_containers cfg2);
  check_int "three executors" 3 (Reactdb.Config.total_executors cfg2);
  check_bool "round robin" true
    (cfg2.Reactdb.Config.router = Reactdb.Config.Round_robin)

(* ------------------------------------------------------------------ *)
(* Deadlines on the simulator backend: virtual-time budget, checked at
   phase boundaries; expiry aborts with the Timeout cause, rolls back
   cleanly and releases locks for subsequent transactions. *)

let test_deadline_timeout_sim () =
  with_db ~n:2 (sn_config 2) (fun db ->
      let out =
        DB.exec_txn ~deadline_us:0.001 db ~reactor:"acct0" ~proc:"transfer_to"
          ~args:[ Value.Str "acct1"; Value.Float 25. ]
      in
      check_bool "expired root aborts" true (Result.is_error out.DB.result);
      check_bool "cause is Timeout" true
        (match out.DB.abort_cause with
        | Some c -> c.Obs.Abort.kind = Obs.Abort.Timeout
        | None -> false);
      check_int "timeout bucket counted" 1
        (match List.assoc_opt "timeout" (DB.aborts_by_reason db) with
        | Some n -> n
        | None -> 0);
      checkf "source untouched" 100. (balance db "acct0");
      checkf "destination untouched" 100. (balance db "acct1");
      (* locks released: the same 2PC transfer commits without a deadline *)
      let ok =
        DB.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
          ~args:[ Value.Str "acct1"; Value.Float 25. ]
      in
      check_bool "subsequent transfer commits" true (Result.is_ok ok.DB.result);
      checkf "then debited" 75. (balance db "acct0");
      checkf "then credited" 125. (balance db "acct1"))

(* Collect barrier: a fan-out of three credits joined by ctx.collect
   commits with the same effects as the sequential formulations, and a
   failing credit surfaces only after every sibling completed. *)
let test_collect_fan_out_commits () =
  with_db (sn_config 4) (fun db ->
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_collect"
          ~args:[ Value.Float 10.; Value.Str "acct1"; Value.Str "acct2";
                  Value.Str "acct3" ]
      in
      ignore (ok_or_fail out);
      check_int "touched all four containers" 4 out.DB.containers_touched;
      checkf "source debited" 70. (balance db "acct0");
      List.iter
        (fun a -> checkf ("credited " ^ a) 110. (balance db a))
        [ "acct1"; "acct2"; "acct3" ])

let test_collect_sub_abort_aborts_root () =
  with_db (sn_config 4) (fun db ->
      (* negative amount: every remote credit hits insufficient funds; the
         collect barrier re-raises the first error only after all three
         siblings completed, and the root rolls back everywhere *)
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_collect"
          ~args:[ Value.Float (-200.); Value.Str "acct1"; Value.Str "acct2";
                  Value.Str "acct3" ]
      in
      (match out.DB.result with
      | Error m -> check_bool "credit abort surfaced" true
          (m = "insufficient funds")
      | Ok _ -> Alcotest.fail "expected abort");
      List.iter
        (fun a -> checkf ("untouched " ^ a) 100. (balance db a))
        [ "acct0"; "acct1"; "acct2"; "acct3" ])

(* Satellite: a root that times out with a fan-out of three futures
   outstanding must unwind through the ordinary release path on every
   callee. Virtual time is deterministic, so sweeping deadlines across the
   transaction's measured lifetime is exact: every aborting fraction must
   abort with Timeout and leave no state behind, at least one must land
   inside the collect window (message names the collect boundary), and a
   fraction may legally commit only when the deadline falls past the last
   2PC prepare check — in which case its effects must be exactly those of
   an untimed run. *)
let test_deadline_mid_collect_sim () =
  let args =
    [ Value.Float 10.; Value.Str "acct1"; Value.Str "acct2"; Value.Str "acct3" ]
  in
  let lat =
    with_db (sn_config 4) (fun db ->
        let out =
          DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_collect" ~args
        in
        ignore (ok_or_fail out);
        out.DB.latency)
  in
  with_db (sn_config 4) (fun db ->
      let hit_collect = ref false in
      let expected = Array.make 4 100. in
      let apply_commit () =
        expected.(0) <- expected.(0) -. 30.;
        for i = 1 to 3 do
          expected.(i) <- expected.(i) +. 10.
        done
      in
      let check_balances what =
        Array.iteri
          (fun i e ->
            let a = Printf.sprintf "acct%d" i in
            checkf (what ^ " " ^ a) e (balance db a))
          expected
      in
      List.iter
        (fun frac ->
          let out =
            DB.exec_txn ~deadline_us:(frac *. lat) db ~reactor:"acct0"
              ~proc:"multi_transfer_collect" ~args
          in
          (match out.DB.result with
          | Error m ->
            if Strutil.contains m ~sub:"collect boundary" then
              hit_collect := true;
            check_bool "cause is Timeout" true
              (match out.DB.abort_cause with
              | Some c -> c.Obs.Abort.kind = Obs.Abort.Timeout
              | None -> false)
          | Ok _ ->
            (* legal only past the last deadline check (post-prepare) *)
            check_bool "early deadline must not commit" true (frac >= 0.5);
            apply_commit ());
          check_balances "state after run")
        [ 0.2; 0.35; 0.5; 0.65; 0.8; 0.9 ];
      check_bool "some deadline expired mid-collect" true !hit_collect;
      (* every callee released its locks: the same fan-out then commits *)
      let ok =
        DB.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_collect" ~args
      in
      check_bool "subsequent fan-out commits" true (Result.is_ok ok.DB.result);
      apply_commit ();
      check_balances "final state")

let test_generous_deadline_commits () =
  with_db ~n:2 (sn_config 2) (fun db ->
      let out =
        DB.exec_txn ~deadline_us:1e9 db ~reactor:"acct0" ~proc:"transfer_to"
          ~args:[ Value.Str "acct1"; Value.Float 10. ]
      in
      check_bool "generous deadline commits" true (Result.is_ok out.DB.result);
      checkf "debited" 90. (balance db "acct0"))

(* WAL device failure surfaces as a typed Internal abort through the commit
   path — the engine keeps running, the transaction rolls back. *)
let test_wal_failure_typed_abort () =
  let path = Filename.temp_file "reactdb_walfail" ".log" in
  let log = Wal.to_file path in
  with_db ~n:2 (sn_config 2) (fun db ->
      DB.attach_wal db log;
      let ok =
        DB.exec_txn db ~reactor:"acct0" ~proc:"deposit"
          ~args:[ Value.Float 5. ]
      in
      check_bool "append works while device is up" true
        (Result.is_ok ok.DB.result);
      (* revoke the device: the next commit's append raises Wal.Io_error,
         which the commit path must turn into a typed Internal abort *)
      Wal.close log;
      let out =
        DB.exec_txn db ~reactor:"acct0" ~proc:"deposit"
          ~args:[ Value.Float 5. ]
      in
      check_bool "wal failure aborts the writer" true
        (Result.is_error out.DB.result);
      check_bool "abort message names the wal" true
        (match out.DB.result with
        | Error m -> Strutil.contains m ~sub:"wal"
        | Ok _ -> false);
      check_bool "cause is Internal" true
        (match out.DB.abort_cause with
        | Some c -> c.Obs.Abort.kind = Obs.Abort.Internal
        | None -> false);
      checkf "failed write rolled back" 100. (balance db "acct1");
      (* read-only transactions log nothing and still commit *)
      checkf "engine keeps running" 105. (balance db "acct0"));
  Sys.remove path

let suite =
  ( "reactdb",
    [
      Alcotest.test_case "single-reactor txn" `Quick test_single_reactor_txn;
      Alcotest.test_case "user abort rolls back" `Quick test_user_abort_rolls_back;
      Alcotest.test_case "cross-reactor sync (SE)" `Quick
        test_cross_reactor_sync_shared_everything;
      Alcotest.test_case "cross-container async (SN)" `Quick
        test_cross_container_async;
      Alcotest.test_case "sub abort aborts root" `Quick test_sub_abort_aborts_root;
      Alcotest.test_case "remote sub abort aborts root" `Quick
        test_remote_sub_abort_aborts_root;
      Alcotest.test_case "dangerous structure detected" `Quick
        test_dangerous_structure_detected;
      Alcotest.test_case "sequential same-reactor calls ok" `Quick
        test_sequential_calls_same_reactor_ok;
      Alcotest.test_case "self-call inlined" `Quick test_self_call_inlined;
      Alcotest.test_case "conservation SE-no-affinity" `Quick
        test_conservation_shared_everything;
      Alcotest.test_case "conservation SN" `Quick test_conservation_shared_nothing;
      Alcotest.test_case "conservation SE-affinity" `Quick
        test_conservation_affinity;
      Alcotest.test_case "breakdown sums to latency" `Quick
        test_breakdown_sums_to_latency;
      Alcotest.test_case "async beats sync" `Quick test_async_faster_than_sync;
      Alcotest.test_case "noop overhead ~F.3" `Quick test_noop_overhead;
      Alcotest.test_case "occ detects conflicts" `Quick test_occ_detects_conflicts;
      Alcotest.test_case "utilizations & reset" `Quick test_utilizations_and_reset;
      Alcotest.test_case "cluster deployment" `Quick test_cluster_deployment;
      Alcotest.test_case "config spec parsing" `Quick test_config_spec_parsing;
      Alcotest.test_case "deadline timeout (sim)" `Quick
        test_deadline_timeout_sim;
      Alcotest.test_case "collect fan-out commits" `Quick
        test_collect_fan_out_commits;
      Alcotest.test_case "collect sub abort aborts root" `Quick
        test_collect_sub_abort_aborts_root;
      Alcotest.test_case "deadline mid-collect (sim)" `Quick
        test_deadline_mid_collect_sim;
      Alcotest.test_case "generous deadline commits" `Quick
        test_generous_deadline_commits;
      Alcotest.test_case "wal failure is a typed abort" `Quick
        test_wal_failure_typed_abort;
    ] )
