(* Tests for the real-parallel shared-nothing runtime (lib/runtime): domain
   execution semantics, cross-domain transactions and 2PC, abort
   classification, invariant audits under concurrency, and serial state
   equivalence against the simulator backend (the deterministic oracle). *)

open Util
module RDb = Runtime.Db
module SB = Workloads.Smallbank

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

(* Deal [xs] round-robin into [k] groups (shared-nothing placement). *)
let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

let audit_clean db =
  match Faultsim.check_secondaries (RDb.catalogs db) with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("secondary-index audit: " ^ m)

(* ------------------------------------------------------------------ *)
(* Cross-domain semantics on the tiny Account bank from Testlib: a transfer
   between reactors on different domains, user aborts, and the dynamic
   safety condition — all through real domains and real 2PC. *)

let balance db name =
  match RDb.exec_txn db ~reactor:name ~proc:"get_balance" ~args:[] with
  | { RDb.result = Ok (Value.Float f); _ } -> f
  | { RDb.result = Ok v; _ } -> Alcotest.fail ("unexpected " ^ Value.to_string v)
  | { RDb.result = Error m; _ } -> Alcotest.fail ("get_balance aborted: " ^ m)

let test_bank_cross_domain () =
  let db = RDb.start (Testlib.bank_decl 4) (Testlib.sn_config 4) in
  check_int "one domain per container" 4 (RDb.n_domains db);
  let out =
    RDb.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
      ~args:[ Value.Str "acct1"; Value.Float 25. ]
  in
  check_bool "transfer committed" true (Result.is_ok out.RDb.result);
  check_int "transfer spans two containers" 2 out.RDb.containers_touched;
  check_bool "latency measured" true (out.RDb.latency_us > 0.);
  check_float "source debited" 75. (balance db "acct0");
  check_float "destination credited" 125. (balance db "acct1");
  (* user abort *)
  let bad =
    RDb.exec_txn db ~reactor:"acct0" ~proc:"deposit"
      ~args:[ Value.Float (-1000.) ]
  in
  check_bool "insufficient funds aborts" true (Result.is_error bad.RDb.result);
  check_float "abort rolled back" 75. (balance db "acct0");
  (* dangerous call structure: two concurrent activations of one reactor *)
  let dangerous =
    RDb.exec_txn db ~reactor:"acct0" ~proc:"same_twice"
      ~args:[ Value.Str "acct2" ]
  in
  check_bool "same_twice aborts" true (Result.is_error dangerous.RDb.result);
  check_float "dangerous abort rolled back" 100. (balance db "acct2");
  check_int "aborted = 2" 2 (RDb.n_aborted db);
  check_int "user bucket" 1
    (List.assoc "user" (RDb.aborts_by_reason db));
  check_int "dangerous bucket" 1
    (List.assoc "dangerous-structure" (RDb.aborts_by_reason db));
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Concurrent Smallbank on 2 domains: exact attempt count, money
   conservation, secondary-index audit, no internal errors. *)

let test_smallbank_parallel () =
  let n = 32 in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = RDb.start (SB.decl ~customers:n ()) cfg in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:8 ~per_worker:50 ~seed:7 (fun _ rng ->
        SB.gen_conserving rng ~n)
  in
  check_int "every attempt accounted" 400 (RDb.n_committed db + RDb.n_aborted db);
  check_bool "made progress" true (RDb.n_committed db > 0);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  check_float "money conserved" (float_of_int n *. 2. *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Concurrent YCSB multi-update on 2 domains: every key reactor keeps
   exactly its one loaded row; indexes stay consistent. *)

let test_ycsb_parallel () =
  let nk = 64 in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (Workloads.Ycsb.keys nk)) in
  let db = RDb.start (Workloads.Ycsb.decl ~keys:nk ()) cfg in
  let p = Workloads.Ycsb.params ~txn_keys:6 ~theta:0.7 nk in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:4 ~per_worker:50 ~seed:11 (fun _ rng ->
        Workloads.Ycsb.gen_multi_update rng p
          ~container_of:(RDb.container_of db))
  in
  check_int "every attempt accounted" 200 (RDb.n_committed db + RDb.n_aborted db);
  check_bool "made progress" true (RDb.n_committed db > 0);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  List.iter
    (fun (_, _, rows) -> check_int "one row per key reactor" 1 (List.length rows))
    (Faultsim.snapshot (RDb.catalogs db));
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Round-robin ingress routing: requests land on arbitrary domains and pay
   a forwarding hop to the owner; correctness must be unaffected. *)

let test_round_robin_routing () =
  let n = 16 in
  let names = SB.customers n in
  let placement = Hashtbl.create 16 in
  List.iteri (fun i nm -> Hashtbl.add placement nm (i mod 2)) names;
  let cfg =
    Reactdb.Config.custom
      ~executors_per_container:[| 1; 1 |]
      ~router:Reactdb.Config.Round_robin
      ~placement:(Hashtbl.find placement) ()
  in
  let db = RDb.start (SB.decl ~customers:n ()) cfg in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:4 ~per_worker:50 ~seed:3 (fun _ rng ->
        SB.gen_conserving rng ~n)
  in
  check_int "every attempt accounted" 200 (RDb.n_committed db + RDb.n_aborted db);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  check_float "money conserved" (float_of_int n *. 2. *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Serial equivalence: one transaction at a time, the parallel backend must
   produce exactly the simulator's results and physical state — the
   simulator is the deterministic oracle for execution semantics. *)

let test_serial_equivalence () =
  let n = 16 in
  let decl = SB.decl ~customers:n () in
  let names = SB.customers n in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 names) in
  let reqs =
    let rng = Rng.stream ~seed:123 0 in
    List.init 150 (fun _ -> SB.gen_standard rng ~n)
  in
  (* oracle run *)
  let sim_db = Harness.build decl cfg in
  let sim_results = ref [] in
  let eng = Reactdb.Database.engine sim_db in
  Sim.Engine.spawn eng (fun () ->
      sim_results :=
        List.map
          (fun r ->
            (Reactdb.Database.exec_txn sim_db ~reactor:r.Workloads.Wl.reactor
               ~proc:r.Workloads.Wl.proc ~args:r.Workloads.Wl.args)
              .Reactdb.Database.result)
          reqs);
  ignore (Sim.Engine.run eng);
  (* parallel run, serialized through the blocking client *)
  let db = RDb.start decl cfg in
  let par_results =
    List.map
      (fun r ->
        (RDb.exec_txn db ~reactor:r.Workloads.Wl.reactor
           ~proc:r.Workloads.Wl.proc ~args:r.Workloads.Wl.args)
          .RDb.result)
      reqs
  in
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  List.iter2
    (fun s p ->
      match (s, p) with
      | Ok vs, Ok vp ->
        check_bool "same committed value" true (Value.equal vs vp)
      | Error ms, Error mp -> Alcotest.(check string) "same abort" ms mp
      | Ok _, Error m -> Alcotest.fail ("sim committed, parallel aborted: " ^ m)
      | Error m, Ok _ -> Alcotest.fail ("sim aborted, parallel committed: " ^ m))
    !sim_results par_results;
  let sim_state =
    Faultsim.snapshot
      (List.map (fun nm -> (nm, Reactdb.Database.catalog_of sim_db nm)) names)
  in
  let par_state = Faultsim.snapshot (RDb.catalogs db) in
  (match Faultsim.diff sim_state par_state with
  | None -> ()
  | Some d -> Alcotest.fail ("state diverged from simulator: " ^ d))

(* ------------------------------------------------------------------ *)
(* Wall-clock closed-loop harness: sane counters and ordered percentiles. *)

let test_load_run () =
  let n = 16 in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = RDb.start (SB.decl ~customers:n ()) cfg in
  let s =
    RDb.Load.spec ~warmup_s:0.05 ~measure_s:0.25 ~seed:5 ~n_workers:4
      (fun _ rng -> SB.gen_conserving rng ~n)
  in
  let r = RDb.Load.run db s in
  check_bool "throughput > 0" true (r.RDb.Load.throughput > 0.);
  check_bool "committed > 0" true (r.RDb.Load.committed > 0);
  check_bool "p50 > 0" true (r.RDb.Load.p50_us > 0.);
  check_bool "percentiles ordered" true
    (r.RDb.Load.p50_us <= r.RDb.Load.p95_us
    && r.RDb.Load.p95_us <= r.RDb.Load.p99_us);
  check_bool "mean latency sane" true (r.RDb.Load.mean_latency_us > 0.);
  check_int "utilization per domain" 2 (Array.length r.RDb.Load.utilizations);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  check_float "money conserved" (float_of_int n *. 2. *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Deadlines: an expired root aborts with the non-transient Timeout cause,
   leaves no state change behind, and releases every lock — checked by
   running the same transfer again without a deadline. *)

let abort_kind (out : RDb.outcome) =
  match out.RDb.abort_cause with
  | Some c -> Some c.Obs.Abort.kind
  | None -> None

let test_deadline_expired_at_admission () =
  let db = RDb.start (Testlib.bank_decl 2) (Testlib.sn_config 2) in
  let out =
    RDb.exec_txn ~deadline_us:0. db ~reactor:"acct0" ~proc:"transfer_to"
      ~args:[ Value.Str "acct1"; Value.Float 25. ]
  in
  check_bool "expired root aborts" true (Result.is_error out.RDb.result);
  check_bool "cause is Timeout" true (abort_kind out = Some Obs.Abort.Timeout);
  check_int "timeout bucket counted" 1
    (match List.assoc_opt "timeout" (RDb.aborts_by_reason db) with
    | Some n -> n
    | None -> 0);
  check_float "source untouched" 100. (balance db "acct0");
  check_float "destination untouched" 100. (balance db "acct1");
  (* same transfer without a deadline commits: no lock was left behind *)
  let ok =
    RDb.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
      ~args:[ Value.Str "acct1"; Value.Float 25. ]
  in
  check_bool "subsequent transfer commits" true (Result.is_ok ok.RDb.result);
  check_float "then debited" 75. (balance db "acct0");
  RDb.shutdown db;
  audit_clean db

(* Deadline expiry mid-2PC: a prepare-stall injector (p = 1) stalls the
   home participant for >= 10 ms with its write locks held; the remote
   participant's prepare then sees the 5 ms deadline expired and votes
   C_timeout, so the coordinator rolls back the prepared home participant.
   The follow-up transfer proves both participants released their locks. *)
let test_deadline_during_2pc_prepare () =
  let chaos =
    Chaos.make ~seed:5 ~kind:Chaos.Stall_prepare ~p:1.0 ~delay_us:20_000. ()
  in
  let db = RDb.start ~chaos (Testlib.bank_decl 2) (Testlib.sn_config 2) in
  (* root on container 0: containers are sorted, so the home prepare (and
     its stall) happens before the remote prepare is enqueued *)
  let out =
    RDb.exec_txn ~deadline_us:5_000. db ~reactor:"acct0" ~proc:"transfer_to"
      ~args:[ Value.Str "acct1"; Value.Float 25. ]
  in
  check_bool "2pc prepare timed out" true (Result.is_error out.RDb.result);
  check_bool "cause is Timeout" true (abort_kind out = Some Obs.Abort.Timeout);
  check_bool "injector fired" true (Chaos.injections chaos > 0);
  check_float "source untouched" 100. (balance db "acct0");
  check_float "destination untouched" 100. (balance db "acct1");
  let ok =
    RDb.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
      ~args:[ Value.Str "acct1"; Value.Float 25. ]
  in
  check_bool "participants released their locks" true
    (Result.is_ok ok.RDb.result);
  check_float "then debited" 75. (balance db "acct0");
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  audit_clean db

(* Satellite: deadline expiry mid-collect with a fan-out of three futures
   outstanding. Each credit runs slow_deposit, busy-waiting 40 ms on its
   own domain; the 15 ms root deadline passes after the fan-out shipped
   (admission and sub-start checks see microseconds) but long before the
   slowest credit returns, so the expiry is observed at the collect
   boundary — with all three sub-transactions' effects pending — and must
   unwind through the ordinary release path on every callee. *)
let test_deadline_mid_collect_runtime () =
  let db = RDb.start (Testlib.bank_decl 4) (Testlib.sn_config 4) in
  let out =
    RDb.exec_txn ~deadline_us:15_000. db ~reactor:"acct0"
      ~proc:"multi_transfer_collect_slow"
      ~args:
        [ Value.Float 40_000.; Value.Float 10.; Value.Str "acct1";
          Value.Str "acct2"; Value.Str "acct3" ]
  in
  check_bool "root aborts" true (Result.is_error out.RDb.result);
  check_bool "cause is Timeout" true (abort_kind out = Some Obs.Abort.Timeout);
  check_bool "expired at the collect boundary" true
    (match out.RDb.result with
    | Error m -> Strutil.contains m ~sub:"collect boundary"
    | Ok _ -> false);
  check_int "timeout bucket counted" 1
    (match List.assoc_opt "timeout" (RDb.aborts_by_reason db) with
    | Some n -> n
    | None -> 0);
  List.iter
    (fun a -> check_float ("untouched " ^ a) 100. (balance db a))
    [ "acct0"; "acct1"; "acct2"; "acct3" ];
  (* all three callees released their locks: the same fan-out (without the
     spin, without a deadline) commits across all four containers *)
  let ok =
    RDb.exec_txn db ~reactor:"acct0" ~proc:"multi_transfer_collect"
      ~args:
        [ Value.Float 10.; Value.Str "acct1"; Value.Str "acct2";
          Value.Str "acct3" ]
  in
  check_bool "subsequent fan-out commits" true (Result.is_ok ok.RDb.result);
  check_int "fan-out spans four containers" 4 ok.RDb.containers_touched;
  check_float "then debited" 70. (balance db "acct0");
  List.iter
    (fun a -> check_float ("then credited " ^ a) 110. (balance db a))
    [ "acct1"; "acct2"; "acct3" ];
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Satellite: the multi-future (collect) formulations are serially
   equivalent to their sequential counterparts — same per-request results
   and byte-identical physical state — one transaction at a time, on both
   backends. *)

let run_serial_sim decl cfg names reqs =
  let db = Harness.build decl cfg in
  let results = ref [] in
  let eng = Reactdb.Database.engine db in
  Sim.Engine.spawn eng (fun () ->
      results :=
        List.map
          (fun r ->
            (Reactdb.Database.exec_txn db ~reactor:r.Workloads.Wl.reactor
               ~proc:r.Workloads.Wl.proc ~args:r.Workloads.Wl.args)
              .Reactdb.Database.result)
          reqs);
  ignore (Sim.Engine.run eng);
  let state =
    Faultsim.snapshot
      (List.map (fun nm -> (nm, Reactdb.Database.catalog_of db nm)) names)
  in
  (!results, state)

let run_serial_par decl cfg reqs =
  let db = RDb.start decl cfg in
  let results =
    List.map
      (fun r ->
        (RDb.exec_txn db ~reactor:r.Workloads.Wl.reactor
           ~proc:r.Workloads.Wl.proc ~args:r.Workloads.Wl.args)
          .RDb.result)
      reqs
  in
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  (results, Faultsim.snapshot (RDb.catalogs db))

let check_serial_equiv label (ra, sa) (rb, sb) =
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ok va, Ok vb ->
        check_bool (label ^ ": same committed value") true (Value.equal va vb)
      | Error ma, Error mb -> Alcotest.(check string) (label ^ ": same abort") ma mb
      | Ok _, Error m -> Alcotest.fail (label ^ ": committed vs aborted: " ^ m)
      | Error m, Ok _ -> Alcotest.fail (label ^ ": aborted vs committed: " ^ m))
    ra rb;
  match Faultsim.diff sa sb with
  | None -> ()
  | Some d -> Alcotest.fail (label ^ ": state diverged: " ^ d)

let test_collect_serial_equivalence_smallbank () =
  let n = 12 in
  let decl = SB.decl ~customers:n () in
  let names = SB.customers n in
  let cfg = Reactdb.Config.shared_nothing (chunk 3 names) in
  (* request shapes drawn once, then instantiated per formulation, so both
     runs issue the same transfers; destinations are distinct (concurrent
     activations of one reactor would trip the safety condition only in
     the parallel formulation and break equivalence trivially) *)
  let shapes =
    let rng = Rng.stream ~seed:77 0 in
    List.init 40 (fun _ ->
        let src = Rng.int rng n in
        let rec pick acc k =
          if k = 0 then List.rev acc
          else
            let d = Rng.pick_except rng n src in
            if List.mem d acc then pick acc k else pick (d :: acc) (k - 1)
        in
        (src, pick [] 3, 1. +. float_of_int (Rng.int rng 5)))
  in
  let reqs form =
    List.map
      (fun (src, dests, amount) ->
        SB.multi_transfer_request form ~src:(SB.customer_name src)
          ~dests:(List.map SB.customer_name dests) ~amount)
      shapes
  in
  let sim_seq = run_serial_sim decl cfg names (reqs SB.Fully_sync) in
  let sim_col = run_serial_sim decl cfg names (reqs SB.Collect) in
  let par_seq = run_serial_par decl cfg (reqs SB.Fully_sync) in
  let par_col = run_serial_par decl cfg (reqs SB.Collect) in
  check_serial_equiv "sim collect vs sequential" sim_seq sim_col;
  check_serial_equiv "parallel collect vs sequential" par_seq par_col;
  check_serial_equiv "collect across backends" sim_col par_col

let test_collect_serial_equivalence_tpcc () =
  let module T = Workloads.Tpcc in
  let nw = 3 in
  let decl = T.decl ~warehouses:nw ~sizes:T.small_sizes () in
  let names = T.warehouses nw in
  let cfg = Reactdb.Config.shared_nothing (chunk 3 names) in
  (* identical generator draws per variant: no_proc only renames the
     invoked procedure, so a fresh same-seed stream yields identical
     order lines for both *)
  let reqs proc =
    let p =
      T.params ~sizes:T.small_sizes ~remote_mode:(T.Per_item 0.9)
        ~new_order_proc:proc nw
    in
    let rng = Rng.stream ~seed:9 0 in
    List.init 25 (fun i ->
        T.gen_new_order rng p ~home:(1 + (i mod nw)) ~clock:(float_of_int i))
  in
  let sim_seq = run_serial_sim decl cfg names (reqs "new_order_sync") in
  let sim_col = run_serial_sim decl cfg names (reqs "new_order_collect") in
  let par_seq = run_serial_par decl cfg (reqs "new_order_sync") in
  let par_col = run_serial_par decl cfg (reqs "new_order_collect") in
  check_serial_equiv "sim collect vs sequential" sim_seq sim_col;
  check_serial_equiv "parallel collect vs sequential" par_seq par_col;
  check_serial_equiv "collect across backends" sim_col par_col

(* Admission control: with a stalling domain and a mailbox cap, a burst of
   submissions must shed — Overloaded, containers_touched = 0, and exactly
   one completion per submission (the quiescence invariant). *)
let test_overload_shed () =
  let chaos =
    Chaos.make ~seed:11 ~kind:Chaos.Stall_domain ~p:1.0 ~delay_us:2_000. ()
  in
  let db =
    RDb.start ~chaos ~mailbox_cap:2 (Testlib.bank_decl 1)
      (Testlib.sn_config 1)
  in
  let n = 20 in
  let sheds = ref 0 and done_ = Atomic.make 0 in
  let shed_ok = ref true in
  for _ = 1 to n do
    RDb.submit db ~reactor:"acct0" ~proc:"deposit"
      ~args:[ Value.Float 1. ]
      ~k:(fun out ->
        (match abort_kind out with
        | Some Obs.Abort.Overloaded ->
          incr sheds;
          if out.RDb.containers_touched <> 0 then shed_ok := false
        | _ -> ());
        Atomic.incr done_)
  done;
  RDb.quiesce db;
  check_int "every submission completed" n (Atomic.get done_);
  check_bool "some submissions shed" true (!sheds > 0);
  check_bool "sheds touched no container" true !shed_ok;
  check_int "overloaded bucket matches" !sheds
    (match List.assoc_opt "overloaded" (RDb.aborts_by_reason db) with
    | Some k -> k
    | None -> 0);
  check_int "commit/abort accounting" n (RDb.n_committed db + RDb.n_aborted db);
  let deposits = RDb.n_committed db in
  check_float "deposits applied exactly once each"
    (100. +. float_of_int deposits)
    (balance db "acct0");
  RDb.shutdown db;
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Work stealing: a skewed YCSB run (every root homed by a hot container)
   with stealing on must stay exactly correct — stolen bodies run on thief
   domains but all structural mutations re-pin to the owner — and the
   steal counters must balance (every steal-in is someone's steal-out). *)

let test_steal_correctness () =
  let nk = 32 in
  let cfg = Reactdb.Config.shared_nothing (chunk 4 (Workloads.Ycsb.keys nk)) in
  let db = RDb.start ~steal:true (Workloads.Ycsb.decl ~keys:nk ()) cfg in
  (* theta 0.99: heavy Zipfian skew concentrates roots on a few homes, so
     idle domains have something to steal *)
  let p = Workloads.Ycsb.params ~txn_keys:4 ~theta:0.99 nk in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:8 ~per_worker:100 ~seed:17 (fun _ rng ->
        Workloads.Ycsb.gen_multi_update rng p
          ~container_of:(RDb.container_of db))
  in
  check_int "every attempt accounted" 800 (RDb.n_committed db + RDb.n_aborted db);
  check_bool "made progress" true (RDb.n_committed db > 0);
  check_int "no fatals" 0 (RDb.n_fatal db);
  let stats = RDb.sched_stats db in
  let total_out =
    Array.fold_left (fun a s -> a + s.RDb.ss_steals_out) 0 stats
  in
  check_int "steals balance" (RDb.n_steals db) total_out;
  RDb.shutdown db;
  List.iter
    (fun (_, _, rows) -> check_int "one row per key reactor" 1 (List.length rows))
    (Faultsim.snapshot (RDb.catalogs db));
  audit_clean db

(* Stealing with the Smallbank conserving mix: cross-container transfers go
   through real 2PC while single-container roots may be stolen; money must
   still be conserved exactly. *)
let test_steal_smallbank () =
  let n = 32 in
  let cfg = Reactdb.Config.shared_nothing (chunk 4 (SB.customers n)) in
  let db = RDb.start ~steal:true (SB.decl ~customers:n ()) cfg in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:8 ~per_worker:75 ~seed:23 (fun _ rng ->
        SB.gen_conserving rng ~n)
  in
  check_int "every attempt accounted" 600 (RDb.n_committed db + RDb.n_aborted db);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  check_float "money conserved under stealing" (float_of_int n *. 2. *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  audit_clean db

(* Cost router: roots may be admitted on a non-home domain (the body runs
   there; the commit re-pins); correctness and conservation must hold. *)
let test_cost_router () =
  let n = 16 in
  let names = SB.customers n in
  let placement = Hashtbl.create 16 in
  List.iteri (fun i nm -> Hashtbl.add placement nm (i mod 2)) names;
  let cfg =
    Reactdb.Config.custom
      ~executors_per_container:[| 1; 1 |]
      ~router:Reactdb.Config.Cost
      ~placement:(Hashtbl.find placement) ()
  in
  let db = RDb.start (SB.decl ~customers:n ()) cfg in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:4 ~per_worker:50 ~seed:31 (fun _ rng ->
        SB.gen_conserving rng ~n)
  in
  check_int "every attempt accounted" 200 (RDb.n_committed db + RDb.n_aborted db);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  check_float "money conserved under cost routing"
    (float_of_int n *. 2. *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  audit_clean db

(* ------------------------------------------------------------------ *)
(* Durable mode: group-committed WAL must hold exactly the committed
   transactions' after-images; replaying it onto a freshly-loaded database
   reconstructs the same physical state. Flush_wait must appear in the
   lifecycle report and the scheduler rows must ride the v3 export. *)

let test_group_commit_durability () =
  let n = 16 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let log = Wal.in_memory () in
  let db = RDb.start ~wal:log ~group_tick_s:0.0005 decl cfg in
  let collector =
    Obs.Collector.create ~clock:Obs.Wall ~containers:(RDb.n_domains db) ()
  in
  RDb.attach_obs db collector;
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:4 ~per_worker:50 ~seed:13 (fun _ rng ->
        SB.gen_conserving rng ~n)
  in
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.publish_sched_obs db;
  RDb.shutdown db;
  check_float "money conserved" (float_of_int n *. 2. *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  (* every committed writer is in the log exactly once (read-only commits
     append nothing) *)
  check_bool "log bounded by commits" true
    (Wal.length log <= RDb.n_committed db);
  check_bool "some transactions logged" true (Wal.length log > 0);
  check_bool "group commit flushed" true (Wal.n_flushes log > 0);
  (* replay onto a freshly-loaded copy reconstructs the same state *)
  let db2 = RDb.start decl cfg in
  RDb.shutdown db2;
  let applied =
    Wal.replay (Wal.entries log) ~catalog_of:(RDb.catalog_of db2)
  in
  check_bool "replay applied writes" true (applied > 0);
  (match
     Faultsim.diff
       (Faultsim.snapshot (RDb.catalogs db))
       (Faultsim.snapshot (RDb.catalogs db2))
   with
  | None -> ()
  | Some d -> Alcotest.fail ("replayed state diverged: " ^ d));
  (* Flush_wait shows up in the report, and the v3 export round-trips *)
  let report = Obs.Report.summarize collector in
  let fw =
    List.find
      (fun p -> p.Obs.Report.pr_phase = "flush_wait")
      report.Obs.Report.r_phases
  in
  check_bool "flush_wait attributed" true (fw.Obs.Report.pr_sum_us > 0.);
  (match Obs.Report.of_json (Obs.Report.to_json report) with
  | Ok r2 -> check_bool "v3 report round-trips" true (r2 = report)
  | Error m -> Alcotest.fail ("report round-trip: " ^ m));
  audit_clean db

(* Durable mode end-to-end through a real file: entries survive close and
   re-read framed and checksummed. *)
let test_group_commit_file () =
  let path = Filename.temp_file "reactdb_gc" ".wal" in
  let n = 8 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let log = Wal.to_file path in
  let db = RDb.start ~wal:log decl cfg in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:2 ~per_worker:25 ~seed:41 (fun _ rng ->
        SB.gen_conserving rng ~n)
  in
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  Wal.close log;
  let entries, tail = Wal.read_file_tolerant path in
  check_bool "file log clean" true (tail = Wal.Clean);
  check_int "file holds every logged entry" (Wal.length log)
    (List.length entries);
  Sys.remove path;
  audit_clean db

let suite =
  ( "runtime",
    [
      Alcotest.test_case "bank across domains" `Quick test_bank_cross_domain;
      Alcotest.test_case "smallbank parallel audit" `Quick
        test_smallbank_parallel;
      Alcotest.test_case "ycsb parallel audit" `Quick test_ycsb_parallel;
      Alcotest.test_case "round-robin routing" `Quick test_round_robin_routing;
      Alcotest.test_case "serial equivalence vs simulator" `Quick
        test_serial_equivalence;
      Alcotest.test_case "closed-loop load run" `Quick test_load_run;
      Alcotest.test_case "deadline expired at admission" `Quick
        test_deadline_expired_at_admission;
      Alcotest.test_case "deadline during 2pc prepare" `Quick
        test_deadline_during_2pc_prepare;
      Alcotest.test_case "deadline mid-collect (runtime)" `Quick
        test_deadline_mid_collect_runtime;
      Alcotest.test_case "collect serial equivalence: smallbank" `Quick
        test_collect_serial_equivalence_smallbank;
      Alcotest.test_case "collect serial equivalence: tpcc" `Quick
        test_collect_serial_equivalence_tpcc;
      Alcotest.test_case "overload shed at mailbox cap" `Quick
        test_overload_shed;
      Alcotest.test_case "work stealing: skewed ycsb" `Quick
        test_steal_correctness;
      Alcotest.test_case "work stealing: smallbank conservation" `Quick
        test_steal_smallbank;
      Alcotest.test_case "cost router" `Quick test_cost_router;
      Alcotest.test_case "group-commit durability + replay" `Quick
        test_group_commit_durability;
      Alcotest.test_case "group-commit file log" `Quick test_group_commit_file;
    ] )
