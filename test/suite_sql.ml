(* Tests for the SQL front-end: lexer, parser, and execution semantics over
   a transactional context. *)

open Util
module DB = Reactdb.Database

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- lexer --- *)

let test_lexer_basics () =
  let toks = Sql.Lexer.tokenize "SELECT a, b FROM t WHERE x >= 1.5 -- cmt" in
  check_int "token count" 11 (List.length toks);
  check_bool "keyword" true (List.hd toks = Sql.Lexer.KW "SELECT");
  let toks = Sql.Lexer.tokenize "'it''s' <> ?" in
  check_bool "string escape" true
    (List.hd toks = Sql.Lexer.STRING "it's");
  check_bool "ne" true (List.nth toks 1 = Sql.Lexer.NE);
  check_bool "param" true (List.nth toks 2 = Sql.Lexer.QMARK)

let test_lexer_errors () =
  check_bool "unterminated string" true
    (try
       ignore (Sql.Lexer.tokenize "'oops");
       false
     with Sql.Lexer.Lex_error _ -> true);
  check_bool "bad char" true
    (try
       ignore (Sql.Lexer.tokenize "a @ b");
       false
     with Sql.Lexer.Lex_error _ -> true)

(* --- parser --- *)

let test_parse_select () =
  match Sql.Parser.parse
          "SELECT name, SUM(amt) AS total FROM orders o WHERE settled = 'N' \
           AND amt > 10 GROUP BY name ORDER BY total DESC LIMIT 5"
  with
  | Sql.Ast.Select s ->
    check_int "items" 2 (List.length s.Sql.Ast.sel_items);
    check_bool "alias" true (s.Sql.Ast.sel_alias = Some "o");
    check_bool "group" true (s.Sql.Ast.sel_group = [ (None, "name") ]);
    check_bool "order desc" true
      (match s.Sql.Ast.sel_order with
      | Some o -> o.Sql.Ast.ord_desc && o.Sql.Ast.ord_col = "total"
      | None -> false);
    check_bool "limit" true (s.Sql.Ast.sel_limit = Some 5)
  | _ -> Alcotest.fail "expected select"

let test_parse_join () =
  match Sql.Parser.parse
          "SELECT p.name, o.amt FROM provider p INNER JOIN orders o ON \
           p.name = o.provider"
  with
  | Sql.Ast.Select { sel_join = Some j; _ } ->
    check_bool "join table" true (j.Sql.Ast.j_table = "orders");
    check_bool "on left" true (j.Sql.Ast.j_left = (Some "p", "name"));
    check_bool "on right" true (j.Sql.Ast.j_right = (Some "o", "provider"))
  | _ -> Alcotest.fail "expected join"

let test_parse_precedence () =
  (* a = 1 OR b = 2 AND c = 3  ==  a=1 OR (b=2 AND c=3) *)
  match Sql.Parser.parse_expr "a = 1 OR b = 2 AND c = 3" with
  | Sql.Ast.Or (_, Sql.Ast.And _) -> ()
  | e -> Alcotest.failf "bad precedence: %s" (Fmt.str "%a" Sql.Ast.pp_expr e)

let test_parse_arith_precedence () =
  match Sql.Parser.parse_expr "1 + 2 * 3" with
  | Sql.Ast.Arith (Query.Expr.Add, _, Sql.Ast.Arith (Query.Expr.Mul, _, _)) -> ()
  | e -> Alcotest.failf "bad precedence: %s" (Fmt.str "%a" Sql.Ast.pp_expr e)

let test_parse_params_numbered () =
  let stmt = Sql.Parser.parse "UPDATE t SET a = ?, b = ? WHERE c = ?" in
  check_int "three params" 3 (Sql.Ast.param_count stmt)

let test_parse_dml () =
  (match Sql.Parser.parse "INSERT INTO t (a, b) VALUES (1, 'x')" with
  | Sql.Ast.Insert { ins_cols = Some [ "a"; "b" ]; ins_values = [ _; _ ]; _ } -> ()
  | _ -> Alcotest.fail "insert");
  (match Sql.Parser.parse "DELETE FROM t WHERE a IS NOT NULL" with
  | Sql.Ast.Delete { del_where = Some (Sql.Ast.Not (Sql.Ast.Is_null _)); _ } -> ()
  | _ -> Alcotest.fail "delete")

let test_parse_errors () =
  let bad s =
    try
      ignore (Sql.Parser.parse s);
      false
    with Sql.Parser.Parse_error _ -> true
  in
  check_bool "garbage" true (bad "FROBNICATE t");
  check_bool "trailing" true (bad "SELECT * FROM t extra ,");
  check_bool "missing from" true (bad "SELECT *");
  check_bool "bad limit" true (bad "SELECT * FROM t LIMIT x")

let test_pp_reparse () =
  (* printing a parsed statement re-parses to the same tree *)
  List.iter
    (fun src ->
      let s1 = Sql.Parser.parse src in
      let printed = Fmt.str "%a" Sql.Ast.pp_stmt s1 in
      let s2 =
        try Sql.Parser.parse printed
        with Sql.Parser.Parse_error m ->
          Alcotest.failf "re-parse of %S failed: %s" printed m
      in
      check_bool (Printf.sprintf "roundtrip %s" src) true (s1 = s2))
    [
      "SELECT * FROM t";
      "SELECT a, b + 1 AS c FROM t WHERE NOT (a < 3) OR b IS NULL";
      "SELECT COUNT(*), SUM(x) FROM t GROUP BY g ORDER BY g ASC LIMIT 2";
      "SELECT p.name FROM provider p JOIN orders o ON p.name = o.provider";
      "INSERT INTO t (a) VALUES (-4.5)";
      "UPDATE t SET a = a + 1 WHERE b = 'q'";
      "DELETE FROM t WHERE TRUE";
    ]

(* --- execution --- *)

let orders_schema =
  Storage.Schema.make ~name:"orders"
    ~columns:
      [ ("id", Value.TInt); ("provider", Value.TStr); ("amt", Value.TFloat);
        ("settled", Value.TStr) ]
    ~key:[ "id" ]

let provider_schema =
  Storage.Schema.make ~name:"provider"
    ~columns:[ ("name", Value.TStr); ("risk", Value.TFloat) ]
    ~key:[ "name" ]

let ids = ref 5000

let fresh_ctx () =
  let catalog = Storage.Catalog.create () in
  let ot = Storage.Catalog.create_table catalog orders_schema in
  let pt = Storage.Catalog.create_table catalog provider_schema in
  List.iter
    (fun (i, p, a, s) ->
      ignore
        (Storage.Table.insert ot
           (Storage.Record.fresh ~absent:false
              [| Value.Int i; Value.Str p; Value.Float a; Value.Str s |])))
    [ (1, "visa", 10., "N"); (2, "mc", 20., "Y"); (3, "visa", 30., "N");
      (4, "amex", 5., "N"); (5, "mc", 15., "N") ];
  List.iter
    (fun (p, r) ->
      ignore
        (Storage.Table.insert pt
           (Storage.Record.fresh ~absent:false [| Value.Str p; Value.Float r |])))
    [ ("visa", 0.1); ("mc", 0.2); ("amex", 0.3) ];
  incr ids;
  Query.Exec.make_ctx ~txn:(Occ.Txn.create ~id:!ids) ~container:0 ~catalog
    ~charge:(fun _ _ -> ())
    ~work:(fun _ -> ()) ()

let test_select_star () =
  let ctx = fresh_ctx () in
  match Sql.Run.exec ctx "SELECT * FROM orders" with
  | Sql.Run.Rows { cols; rows } ->
    Alcotest.(check (list string)) "cols" [ "id"; "provider"; "amt"; "settled" ] cols;
    check_int "rows" 5 (List.length rows)
  | _ -> Alcotest.fail "rows expected"

let test_select_where_params () =
  let ctx = fresh_ctx () in
  let rows =
    Sql.Run.query ctx ~params:[ Value.Str "visa"; Value.Float 15. ]
      "SELECT id FROM orders WHERE provider = ? AND amt > ?"
  in
  check_int "one match" 1 (List.length rows);
  check_int "id 3" 3 (Value.to_int (List.hd rows).(0))

let test_select_order_limit () =
  let ctx = fresh_ctx () in
  let rows =
    Sql.Run.query ctx "SELECT id, amt FROM orders ORDER BY amt DESC LIMIT 2"
  in
  Alcotest.(check (list int)) "top 2 by amount" [ 3; 2 ]
    (List.map (fun r -> Value.to_int r.(0)) rows)

let test_aggregates () =
  let ctx = fresh_ctx () in
  check_bool "sum" true
    (Value.equal
       (Sql.Run.scalar ctx "SELECT SUM(amt) FROM orders WHERE settled = 'N'")
       (Value.Float 60.));
  check_bool "count star" true
    (Value.equal (Sql.Run.scalar ctx "SELECT COUNT(*) FROM orders") (Value.Int 5));
  check_bool "min" true
    (Value.equal (Sql.Run.scalar ctx "SELECT MIN(amt) FROM orders") (Value.Float 5.));
  check_bool "avg" true
    (Value.equal (Sql.Run.scalar ctx "SELECT AVG(amt) FROM orders") (Value.Float 16.))

let test_group_by () =
  let ctx = fresh_ctx () in
  match
    Sql.Run.exec ctx
      "SELECT provider, COUNT(*) AS n, SUM(amt) AS total FROM orders \
       WHERE settled = 'N' GROUP BY provider ORDER BY total DESC"
  with
  | Sql.Run.Rows { rows; cols } ->
    Alcotest.(check (list string)) "cols" [ "provider"; "n"; "total" ] cols;
    (match rows with
    | [ a; b; c ] ->
      check_bool "visa first (40)" true
        (Value.to_str a.(0) = "visa" && Value.equal a.(2) (Value.Float 40.));
      check_bool "mc second (15)" true (Value.to_str b.(0) = "mc");
      check_bool "amex third (5)" true (Value.to_str c.(0) = "amex")
    | _ -> Alcotest.failf "expected 3 groups, got %d" (List.length rows))
  | _ -> Alcotest.fail "rows"

let test_join () =
  let ctx = fresh_ctx () in
  (* the Fig. 1(a) join: provider risk × unsettled orders *)
  let rows =
    Sql.Run.query ctx
      "SELECT p.name, SUM(amt) AS exposure FROM provider p INNER JOIN orders \
       o ON p.name = o.provider WHERE o.settled = 'N' GROUP BY p.name \
       ORDER BY exposure DESC"
  in
  check_int "three providers" 3 (List.length rows);
  check_bool "visa exposure 40" true
    (Value.to_str (List.hd rows).(0) = "visa"
    && Value.equal (List.hd rows).(1) (Value.Float 40.))

let test_join_projection () =
  let ctx = fresh_ctx () in
  let rows =
    Sql.Run.query ctx
      "SELECT o.id, p.risk FROM orders o JOIN provider p ON o.provider = \
       p.name WHERE o.amt > 14 ORDER BY id"
  in
  Alcotest.(check (list int)) "joined ids" [ 2; 3; 5 ]
    (List.map (fun r -> Value.to_int r.(0)) rows)

let test_dml_roundtrip () =
  let ctx = fresh_ctx () in
  check_int "insert" 1
    (Sql.Run.execute ctx
       "INSERT INTO orders (id, provider, amt, settled) VALUES (9, 'visa', 1.0, 'N')");
  check_int "update" 3
    (Sql.Run.execute ctx ~params:[ Value.Str "visa" ]
       "UPDATE orders SET settled = 'Y' WHERE provider = ?");
  check_bool "all visa settled" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE provider = 'visa' AND settled = 'N'")
       (Value.Int 0));
  check_int "delete" 2
    (Sql.Run.execute ctx "DELETE FROM orders WHERE provider = 'mc'");
  check_bool "four left" true
    (Value.equal (Sql.Run.scalar ctx "SELECT COUNT(*) FROM orders") (Value.Int 4))

let test_insert_without_cols () =
  let ctx = fresh_ctx () in
  check_int "positional insert" 1
    (Sql.Run.execute ctx "INSERT INTO orders VALUES (10, 'amex', 2.0, 'N')");
  check_bool "present" true
    (Sql.Run.query1 ctx "SELECT * FROM orders WHERE id = 10" <> None)

let test_sees_own_writes () =
  let ctx = fresh_ctx () in
  ignore (Sql.Run.execute ctx "INSERT INTO orders VALUES (11, 'x', 7.0, 'N')");
  ignore (Sql.Run.execute ctx "UPDATE orders SET amt = 100.0 WHERE id = 1");
  check_bool "sum reflects buffered writes" true
    (Value.equal
       (Sql.Run.scalar ctx "SELECT SUM(amt) FROM orders")
       (Value.Float (100. +. 20. +. 30. +. 5. +. 15. +. 7.)))

let test_errors () =
  let ctx = fresh_ctx () in
  let sql_err f = try ignore (f ()); false with Sql.Run.Sql_error _ -> true in
  check_bool "unknown table" true
    (try ignore (Sql.Run.query ctx "SELECT * FROM nope"); false
     with Invalid_argument _ -> true);
  check_bool "unknown column" true
    (sql_err (fun () -> Sql.Run.query ctx "SELECT zig FROM orders"));
  check_bool "ambiguous column" true
    (sql_err (fun () ->
         Sql.Run.query ctx
           "SELECT amt FROM orders o JOIN orders q ON o.id = q.id"));
  check_bool "mixed agg" true
    (sql_err (fun () -> Sql.Run.query ctx "SELECT id, COUNT(*) FROM orders"));
  check_bool "not in group by" true
    (sql_err (fun () ->
         Sql.Run.query ctx "SELECT amt, COUNT(*) FROM orders GROUP BY provider"));
  check_bool "missing param" true
    (sql_err (fun () -> Sql.Run.query ctx "SELECT * FROM orders WHERE id = ?"));
  check_bool "scalar on many" true
    (sql_err (fun () -> ignore (Sql.Run.scalar ctx "SELECT id FROM orders")))

let test_in_between_like () =
  let ctx = fresh_ctx () in
  check_bool "IN" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE provider IN ('visa', 'amex')")
       (Value.Int 3));
  check_bool "NOT IN" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE provider NOT IN ('visa')")
       (Value.Int 3));
  check_bool "BETWEEN (inclusive, numeric coercion)" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE amt BETWEEN 10 AND 20")
       (Value.Int 3));
  check_bool "NOT BETWEEN" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE amt NOT BETWEEN 10 AND 20")
       (Value.Int 2));
  check_bool "LIKE prefix" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE provider LIKE 'v%'")
       (Value.Int 2));
  check_bool "LIKE underscore" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE provider LIKE '_c'")
       (Value.Int 2));
  check_bool "LIKE middle wildcard" true
    (Value.equal
       (Sql.Run.scalar ctx
          "SELECT COUNT(*) FROM orders WHERE provider LIKE 'a%x'")
       (Value.Int 1));
  (* DML with the new predicates (no pushdown required) *)
  check_int "delete with LIKE" 2
    (Sql.Run.execute ctx "DELETE FROM orders WHERE provider LIKE 'v%'");
  check_int "update with IN" 1
    (Sql.Run.execute ctx
       "UPDATE orders SET settled = 'Y' WHERE id IN (4, 400)")

let test_pp_reparse_new_predicates () =
  List.iter
    (fun src ->
      let s1 = Sql.Parser.parse src in
      let s2 = Sql.Parser.parse (Fmt.str "%a" Sql.Ast.pp_stmt s1) in
      check_bool src true (s1 = s2))
    [
      "SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 0 AND 9";
      "SELECT * FROM t WHERE name LIKE '%x_y%' OR c NOT IN ('q')";
    ]

let test_null_semantics () =
  let ctx = fresh_ctx () in
  ignore
    (Sql.Run.exec ctx "INSERT INTO orders (id, provider) VALUES (12, 'z')");
  check_bool "null amt not matched by comparison" true
    (Value.equal
       (Sql.Run.scalar ctx "SELECT COUNT(*) FROM orders WHERE amt > -999999")
       (Value.Int 5));
  check_bool "is null finds it" true
    (Value.equal
       (Sql.Run.scalar ctx "SELECT COUNT(*) FROM orders WHERE amt IS NULL")
       (Value.Int 1));
  check_bool "sum skips null" true
    (Value.equal (Sql.Run.scalar ctx "SELECT SUM(amt) FROM orders")
       (Value.Float 80.))

let in_sim_result db f =
  let out = ref None in
  Sim.Engine.spawn (DB.engine db) (fun () -> out := Some (f db));
  ignore (Sim.Engine.run (DB.engine db));
  Option.get !out

(* --- SQL statements as racing transactions --- *)

let counter_schema =
  Storage.Schema.make ~name:"counter"
    ~columns:[ ("id", Value.TInt); ("v", Value.TInt) ]
    ~key:[ "id" ]

let test_sql_under_concurrency () =
  (* Workers hammer `UPDATE counter SET v = v + 1` through the generic sql
     procedure on one reactor of a two-executor shared-everything
     deployment: the final value must equal the number of commits exactly,
     and the history must certify. *)
  let counter_type =
    Sql.Proc.with_sql
      (Reactor.rtype ~name:"Counter" ~schemas:[ counter_schema ] ~procs:[] ())
  in
  let loader catalog =
    ignore
      (Storage.Table.insert
         (Storage.Catalog.table catalog "counter")
         (Storage.Record.fresh ~absent:false [| Value.Int 0; Value.Int 0 |]))
  in
  let decl =
    Reactor.decl ~types:[ counter_type ] ~reactors:[ ("c", "Counter") ]
      ~loaders:[ ("c", loader) ] ()
  in
  let db =
    Harness.build decl
      (Reactdb.Config.shared_everything ~executors:2 ~affinity:false [ "c" ])
  in
  DB.enable_history db;
  let eng = DB.engine db in
  for _ = 0 to 3 do
    Sim.Engine.spawn eng (fun () ->
        for _ = 1 to 40 do
          ignore
            (DB.exec_txn db ~reactor:"c" ~proc:"sql"
               ~args:[ Value.Str "UPDATE counter SET v = v + 1 WHERE id = 0" ])
        done)
  done;
  ignore (Sim.Engine.run eng);
  let final =
    in_sim_result db (fun db ->
        match
          DB.exec_txn db ~reactor:"c" ~proc:"sql"
            ~args:[ Value.Str "SELECT v FROM counter WHERE id = 0" ]
        with
        | { DB.result = Ok (Value.Int v); _ } -> v
        | _ -> Alcotest.fail "select failed")
  in
  check_int "commits + aborts = attempts" 160 (DB.n_committed db - 1 + DB.n_aborted db);
  check_int "lost-update free" (DB.n_committed db - 1) final;
  check_bool "contention actually occurred" true (DB.n_aborted db > 0);
  let entries =
    List.map
      (fun h ->
        { Histories.Certify.c_txn = h.DB.h_txn; c_tid = h.DB.h_tid;
          c_reads = h.DB.h_reads; c_writes = h.DB.h_writes })
      (DB.history db)
  in
  match Histories.Certify.check entries with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "not serializable: %s" m

let suite =
  ( "sql",
    [
      Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
      Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
      Alcotest.test_case "parse select" `Quick test_parse_select;
      Alcotest.test_case "parse join" `Quick test_parse_join;
      Alcotest.test_case "boolean precedence" `Quick test_parse_precedence;
      Alcotest.test_case "arith precedence" `Quick test_parse_arith_precedence;
      Alcotest.test_case "param numbering" `Quick test_parse_params_numbered;
      Alcotest.test_case "parse dml" `Quick test_parse_dml;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "pp/reparse roundtrip" `Quick test_pp_reparse;
      Alcotest.test_case "select star" `Quick test_select_star;
      Alcotest.test_case "where + params" `Quick test_select_where_params;
      Alcotest.test_case "order by + limit" `Quick test_select_order_limit;
      Alcotest.test_case "aggregates" `Quick test_aggregates;
      Alcotest.test_case "group by" `Quick test_group_by;
      Alcotest.test_case "join (Fig 1a)" `Quick test_join;
      Alcotest.test_case "join projection" `Quick test_join_projection;
      Alcotest.test_case "dml" `Quick test_dml_roundtrip;
      Alcotest.test_case "positional insert" `Quick test_insert_without_cols;
      Alcotest.test_case "reads own writes" `Quick test_sees_own_writes;
      Alcotest.test_case "errors" `Quick test_errors;
      Alcotest.test_case "IN/BETWEEN/LIKE" `Quick test_in_between_like;
      Alcotest.test_case "new predicate roundtrip" `Quick
        test_pp_reparse_new_predicates;
      Alcotest.test_case "null semantics" `Quick test_null_semantics;
      Alcotest.test_case "sql under concurrency" `Quick test_sql_under_concurrency;
    ] )
