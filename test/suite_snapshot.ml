(* Epoch-based snapshot reads (DESIGN.md §10): abort-free read-only
   transactions over per-record version chains.

   Covers: read-only declaration + frozen-epoch execution on the simulator
   backend, the mutation guard inside read-only procedures, physical
   no-trace of snapshot readers, the QCheck committed-prefix property
   (serial oracle via [Faultsim.diff] plus a concurrent conservation
   audit), version-chain GC bounded by the oldest live snapshot, the
   [Config.Auto] morph router, the TPC-C payment/delivery Collect
   formulation equivalences, and the real-parallel runtime backend. *)

open Util
module DB = Reactdb.Database
module RDb = Runtime.Db
module W = Workloads
module SB = Workloads.Smallbank

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let checkf = Alcotest.(check (float 1e-6))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Build a simulator database and run [f] as an engine process. *)
let run_in decl config f =
  let db = Harness.build decl config in
  let result = ref None in
  Sim.Engine.spawn (DB.engine db) (fun () -> result := Some (f db));
  ignore (Sim.Engine.run (DB.engine db));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation stalled"

let exec db (req : W.Wl.request) =
  DB.exec_txn db ~reactor:req.W.Wl.reactor ~proc:req.W.Wl.proc
    ~args:req.W.Wl.args

let exec_ok db req =
  match exec db req with
  | { DB.result = Ok v; _ } -> v
  | { DB.result = Error m; _ } ->
    Alcotest.failf "txn %s/%s aborted: %s" req.W.Wl.reactor req.W.Wl.proc m

let sb_config n =
  Reactdb.Config.shared_nothing (List.map (fun c -> [ c ]) (SB.customers n))

let sb_catalogs db n =
  List.map (fun c -> (c, DB.catalog_of db c)) (SB.customers n)

(* One simulator epoch is 40 ms of virtual time; crossing the boundary
   closes the current epoch for future snapshots. *)
let next_epoch () = Sim.Engine.delay 40_000.

(* ------------------------------------------------------------------ *)
(* Read-only basics: declared procedures run against a frozen snapshot
   epoch, commit abort-free, and fall back to the OCC read path when
   snapshots are disabled. *)

let test_readonly_basics () =
  run_in (SB.decl ~customers:4 ()) (sb_config 4) (fun db ->
      check_bool "snapshots on by default" true (DB.snapshots_enabled db);
      let out = exec db (W.Wl.request "c0" "balance" []) in
      (match out.DB.result with
      | Ok v -> checkf "balance reads both accounts" 20_000. (Value.to_number v)
      | Error m -> Alcotest.fail ("balance aborted: " ^ m));
      check_bool "read-only root carries its snapshot epoch" true
        (out.DB.snapshot <> None);
      let args = List.map (fun c -> W.Wl.vs c) [ "c1"; "c2"; "c3" ] in
      checkf "sum_all fans out over balance reads" 80_000.
        (Value.to_number (exec_ok db (W.Wl.request "c0" "sum_all" args)));
      check_int "both reads counted as read-only commits" 2
        (DB.n_readonly_commits db);
      (* OCC fallback: same procedure, ordinary read path. *)
      DB.set_snapshots db false;
      let occ = exec db (W.Wl.request "c0" "balance" []) in
      check_bool "no snapshot when disabled" true (occ.DB.snapshot = None);
      (match occ.DB.result with
      | Ok v -> checkf "OCC fallback result" 20_000. (Value.to_number v)
      | Error m -> Alcotest.fail ("OCC balance aborted: " ^ m));
      check_int "fallback not counted read-only" 2 (DB.n_readonly_commits db);
      DB.set_snapshots db true)

(* A mutation reached from a declared-read-only procedure aborts with a
   typed user abort, and the write never lands. *)

let s_cell =
  Storage.Schema.make ~name:"cell"
    ~columns:[ ("id", Value.TInt); ("v", Value.TInt) ]
    ~key:[ "id" ]

let cell_type =
  Reactor.rtype ~name:"Cell" ~schemas:[ s_cell ]
    ~procs:
      [ ( "peek",
          fun ctx _ ->
            match Query.Exec.get ctx.Reactor.db "cell" [| W.Wl.vi 0 |] with
            | Some row -> row.(1)
            | None -> Reactor.abort "missing cell" );
        ( "poke",
          fun ctx _ ->
            ignore
              (Query.Exec.update_key ctx.Reactor.db "cell" [| W.Wl.vi 0 |]
                 ~set:(fun row -> Query.Exec.seti row 1 (W.Wl.vi 9)));
            Value.Null ) ]
    ~readonly:[ "peek"; "poke" ] ()

let cell_decl =
  Reactor.decl ~types:[ cell_type ]
    ~reactors:[ ("cell0", "Cell") ]
    ~loaders:
      [ ("cell0", fun cat -> W.Wl.load cat "cell" [| W.Wl.vi 0; W.Wl.vi 1 |]) ]
    ()

let test_readonly_mutation_guard () =
  run_in cell_decl (Reactdb.Config.shared_nothing [ [ "cell0" ] ]) (fun db ->
      (match exec db (W.Wl.request "cell0" "poke" []) with
      | { DB.result = Error m; _ } ->
        check_bool "guard names the read-only violation" true
          (contains m "read-only")
      | { DB.result = Ok _; _ } ->
        Alcotest.fail "mutation inside read-only procedure committed");
      check_int "write never landed" 1
        (Value.to_int (exec_ok db (W.Wl.request "cell0" "peek" [])));
      (* With snapshots disabled the same procedure is an ordinary OCC
         transaction and the write is legal. *)
      DB.set_snapshots db false;
      ignore (exec_ok db (W.Wl.request "cell0" "poke" []));
      check_int "OCC fallback writes" 9
        (Value.to_int (exec_ok db (W.Wl.request "cell0" "peek" []))))

(* Snapshot readers leave no physical trace: byte-identical catalogs
   before and after a burst of read-only transactions. *)

let test_readonly_no_trace () =
  run_in (SB.decl ~customers:4 ()) (sb_config 4) (fun db ->
      let before = Faultsim.snapshot (sb_catalogs db 4) in
      for i = 0 to 9 do
        ignore (exec_ok db (W.Wl.request (SB.customer_name (i mod 4)) "balance" []))
      done;
      for _ = 1 to 5 do
        ignore
          (exec_ok db
             (W.Wl.request "c0" "sum_all"
                (List.map (fun c -> W.Wl.vs c) [ "c1"; "c2"; "c3" ])))
      done;
      (match Faultsim.diff before (Faultsim.snapshot (sb_catalogs db 4)) with
      | None -> ()
      | Some m -> Alcotest.fail ("snapshot reads mutated state: " ^ m));
      check_int "all 15 reads committed read-only" 15
        (DB.n_readonly_commits db);
      check_int "no aborts" 0 (DB.n_aborted db))

(* ------------------------------------------------------------------ *)
(* QCheck committed-prefix property, serial oracle: with one client and an
   epoch boundary between transactions, a snapshot read's frozen epoch
   covers exactly the committed prefix — so every read-only result must be
   byte-equal to the OCC read path's on the same history, and the final
   physical state identical ([Faultsim.diff]). *)

let serial_prefix_prop seed =
  let n = 6 in
  let ops =
    let rng = Rng.create seed in
    let zipf = Rng.Zipf.create ~n ~theta:0.9 in
    List.init 30 (fun _ -> SB.gen_conserving_zipf rng ~zipf ~n ~read_frac:0.5)
  in
  let run ~snapshots =
    run_in (SB.decl ~customers:n ()) (sb_config n) (fun db ->
        DB.set_snapshots db snapshots;
        let outs =
          List.map
            (fun req ->
              next_epoch ();
              exec db req)
            ops
        in
        (outs, Faultsim.snapshot (sb_catalogs db n), DB.n_readonly_commits db))
  in
  let on_outs, on_st, on_ro = run ~snapshots:true in
  let off_outs, off_st, off_ro = run ~snapshots:false in
  List.iteri
    (fun i ((a : DB.outcome), (b : DB.outcome)) ->
      match (a.DB.result, b.DB.result) with
      | Ok va, Ok vb ->
        if va <> vb then
          QCheck.Test.fail_reportf
            "op %d: snapshot read %s diverged from OCC read %s" i
            (Value.to_string va) (Value.to_string vb)
      | Error _, Error _ -> ()
      | Ok _, Error m | Error m, Ok _ ->
        QCheck.Test.fail_reportf "op %d: commit/abort divergence (%s)" i m)
    (List.combine on_outs off_outs);
  (match Faultsim.diff on_st off_st with
  | None -> ()
  | Some m -> QCheck.Test.fail_reportf "final state diverged: %s" m);
  let reads =
    List.length (List.filter (fun r -> r.W.Wl.proc = "balance") ops)
  in
  List.iter2
    (fun req (o : DB.outcome) ->
      let ro = req.W.Wl.proc = "balance" in
      if ro && o.DB.snapshot = None then
        QCheck.Test.fail_reportf "read ran without a snapshot";
      if (not ro) && o.DB.snapshot <> None then
        QCheck.Test.fail_reportf "writer ran with a snapshot")
    ops on_outs;
  on_ro = reads && off_ro = 0

(* Concurrent conservation audit: writers move money between zipf-hot
   customers while readers sum every account through [sum_all]. A frozen
   snapshot epoch is a consistent cut, so every read-only result must see
   the exact loaded total; read-only roots never abort. *)

let concurrent_conservation_prop seed =
  let n = 6 in
  let db = Harness.build (SB.decl ~customers:n ()) (sb_config n) in
  let eng = DB.engine db in
  let expected = float_of_int (2 * n) *. 10_000. in
  let failures = ref [] in
  let reads_done = ref 0 in
  for w = 0 to 2 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create ((seed * 31) + w) in
        let zipf = Rng.Zipf.create ~n ~theta:0.99 in
        for _ = 1 to 20 do
          ignore (exec db (SB.gen_conserving_zipf rng ~zipf ~n ~read_frac:0.));
          Sim.Engine.delay (float_of_int (1 + Rng.int rng 20_000))
        done)
  done;
  for r = 0 to 1 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create ((seed * 57) + r) in
        for _ = 1 to 12 do
          Sim.Engine.delay (float_of_int (1 + Rng.int rng 30_000));
          let root = Rng.int rng n in
          let args =
            List.filter_map
              (fun i ->
                if i = root then None else Some (W.Wl.vs (SB.customer_name i)))
              (List.init n Fun.id)
          in
          let out =
            DB.exec_txn db ~reactor:(SB.customer_name root) ~proc:"sum_all"
              ~args
          in
          incr reads_done;
          match out.DB.result with
          | Error m -> failures := ("read-only abort: " ^ m) :: !failures
          | Ok v ->
            if out.DB.snapshot = None then
              failures := "read ran without a snapshot" :: !failures;
            let total = Value.to_number v in
            if Float.abs (total -. expected) > 1e-6 then
              failures :=
                Printf.sprintf "inconsistent cut: read %.9f, loaded %.9f"
                  total expected
                :: !failures
        done)
  done;
  ignore (Sim.Engine.run eng);
  (match !failures with
  | [] -> ()
  | m :: _ -> QCheck.Test.fail_reportf "%s" m);
  !reads_done = 24 && DB.n_readonly_commits db = 24

(* ------------------------------------------------------------------ *)
(* Version GC: chains under a hot key grow only while a snapshot is
   pinned below them, and are trimmed back once the oldest live snapshot
   advances. *)

let test_version_gc () =
  run_in (SB.decl ~customers:1 ())
    (Reactdb.Config.shared_nothing [ [ "c0" ] ])
    (fun db ->
      let checking () =
        let tbl = Storage.Catalog.table (DB.catalog_of db "c0") "checking" in
        match Storage.Table.find tbl [| Value.Int 0 |] with
        | Some r -> r
        | None -> Alcotest.fail "missing checking row"
      in
      let chain () = Storage.Record.chain_length (checking ()) in
      let deposit () =
        ignore
          (exec_ok db (W.Wl.request "c0" "deposit_checking" [ W.Wl.vf 1. ]))
      in
      deposit ();
      (* epoch 1: checking = 10001 *)
      next_epoch ();
      deposit ();
      (* epoch 2 retires the epoch-1 version *)
      let s = DB.acquire_snapshot db in
      check_int "snapshot pins the last closed epoch" 1 s;
      check_int "pinned snapshot is the GC horizon" 1 (DB.gc_horizon db);
      next_epoch ();
      deposit ();
      next_epoch ();
      deposit ();
      check_bool "chain grows under the pinned snapshot" true (chain () >= 3);
      (match Storage.Record.snapshot_read (checking ()) ~snapshot:s with
      | Some row ->
        checkf "pinned snapshot still reads the epoch-1 value" 10_001.
          (Value.to_number row.(1))
      | None -> Alcotest.fail "pinned snapshot lost its version");
      DB.release_snapshot db s;
      next_epoch ();
      deposit ();
      (* horizon caught up: one retired version survives the trim *)
      check_bool "chain trimmed once the snapshot releases" true (chain () <= 1);
      check_bool "horizon advanced past the pin" true (DB.gc_horizon db > s))

(* ------------------------------------------------------------------ *)
(* Config.Auto: generators keep emitting the sequential formulation names;
   the backend's router resolves each root against the declared morph
   pairs and counts its choices. *)

let test_auto_morph_router () =
  let cfg = Reactdb.Config.with_morph (sb_config 5) Reactdb.Config.Auto in
  check_bool "generators stay sequential under Auto" true
    (SB.formulation_for cfg = SB.Fully_sync);
  check_string "tpcc payment generator under Auto" "payment"
    (W.Tpcc.payment_proc_for cfg);
  check_string "tpcc delivery generator under Auto" "delivery"
    (W.Tpcc.delivery_proc_for cfg);
  run_in (SB.decl ~customers:5 ()) cfg (fun db ->
      check_int "router idle before any root"
        0
        (let s, p = DB.auto_morphs db in
         s + p);
      ignore
        (exec_ok db
           (SB.multi_transfer_request SB.Fully_sync ~src:"c0"
              ~dests:[ "c1"; "c2"; "c3" ] ~amount:10.));
      check_int "one routed resolution" 1
        (let s, p = DB.auto_morphs db in
         s + p);
      (* close the transfer's epoch so snapshot reads observe it *)
      next_epoch ();
      checkf "transfer applied through the routed formulation" 20_010.
        (Value.to_number (exec_ok db (W.Wl.request "c1" "balance" [])));
      checkf "source debited" 19_970.
        (Value.to_number (exec_ok db (W.Wl.request "c0" "balance" [])));
      (* undeclared procedures are never routed *)
      ignore (exec_ok db (W.Wl.request "c0" "transact_saving" [ W.Wl.vf 5. ]));
      check_int "no resolution for unmorphed procedures" 1
        (let s, p = DB.auto_morphs db in
         s + p))

(* ------------------------------------------------------------------ *)
(* TPC-C: the Collect formulations of payment and delivery are observably
   identical to the sequential ones — same results, byte-identical
   warehouse state — and order_status / stock_level run read-only. *)

let tpcc_catalogs db =
  List.map (fun w -> (w, DB.catalog_of db w)) (W.Tpcc.warehouses 2)

let tpcc_run proc_pay proc_dlv =
  run_in
    (W.Tpcc.decl ~warehouses:2 ~sizes:W.Tpcc.small_sizes ())
    (Reactdb.Config.shared_nothing
       (List.map (fun w -> [ w ]) (W.Tpcc.warehouses 2)))
    (fun db ->
      let w1 = W.Tpcc.warehouse_name 1 and w2 = W.Tpcc.warehouse_name 2 in
      (* remote payment: w1 books, customer lives on w2 *)
      let pay =
        exec_ok db
          (W.Wl.request w1 proc_pay
             [ W.Wl.vi 1; W.Wl.vi 1; W.Wl.vi 1; W.Wl.vs ""; W.Wl.vf 50.;
               W.Wl.vs w2 ])
      in
      let dlv =
        exec_ok db (W.Wl.request w1 proc_dlv [ W.Wl.vi 3; W.Wl.vf 1_000. ])
      in
      let ro = exec db (W.Wl.request w1 "order_status"
                          [ W.Wl.vi 1; W.Wl.vi 1; W.Wl.vs "" ]) in
      (match ro.DB.result with
      | Ok _ -> ()
      | Error m -> Alcotest.fail ("order_status aborted: " ^ m));
      check_bool "order_status runs read-only" true (ro.DB.snapshot <> None);
      ((pay, dlv), Faultsim.snapshot (tpcc_catalogs db)))

let test_tpcc_collect_equivalence () =
  let (pay_seq, dlv_seq), st_seq = tpcc_run "payment" "delivery" in
  let (pay_col, dlv_col), st_col = tpcc_run "payment_collect" "delivery_collect" in
  check_bool "payment results equal" true (pay_seq = pay_col);
  check_bool "delivery results equal" true (dlv_seq = dlv_col);
  check_bool "delivery delivered at least one order" true
    (Value.to_int dlv_seq >= 1);
  match Faultsim.diff st_seq st_col with
  | None -> ()
  | Some m -> Alcotest.fail ("collect formulation diverged: " ^ m)

(* ------------------------------------------------------------------ *)
(* Runtime backend: snapshot reads through real domains — serial results,
   fallback, and a concurrent conservation run with zero read-only
   aborts. *)

let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

let test_runtime_snapshot_reads () =
  let n = 8 in
  let cfg = Reactdb.Config.shared_nothing (chunk 2 (SB.customers n)) in
  let db = RDb.start (SB.decl ~customers:n ()) cfg in
  let out = RDb.exec_txn db ~reactor:"c0" ~proc:"balance" ~args:[] in
  (match out.RDb.result with
  | Ok v -> checkf "runtime balance" 20_000. (Value.to_number v)
  | Error m -> Alcotest.fail ("runtime balance aborted: " ^ m));
  check_bool "runtime read carries a snapshot" true (out.RDb.snapshot <> None);
  let args = List.map (fun c -> W.Wl.vs c) (List.tl (SB.customers n)) in
  (match RDb.exec_txn db ~reactor:"c0" ~proc:"sum_all" ~args with
  | { RDb.result = Ok v; _ } ->
    checkf "runtime sum_all over all domains" 160_000. (Value.to_number v)
  | { RDb.result = Error m; _ } ->
    Alcotest.fail ("runtime sum_all aborted: " ^ m));
  check_int "runtime read-only commits" 2 (RDb.n_readonly_commits db);
  RDb.set_snapshots db false;
  let occ = RDb.exec_txn db ~reactor:"c0" ~proc:"balance" ~args:[] in
  check_bool "runtime OCC fallback" true (occ.RDb.snapshot = None);
  RDb.set_snapshots db true;
  (* concurrent conservation: conserving writers + balance readers *)
  let zipf = Rng.Zipf.create ~n ~theta:0.9 in
  let (_ : int) =
    RDb.Load.run_fixed db ~n_workers:4 ~per_worker:40 ~seed:11 (fun _ rng ->
        SB.gen_conserving_zipf rng ~zipf ~n ~read_frac:0.4)
  in
  check_int "no internal errors" 0 (RDb.n_fatal db);
  check_bool "concurrent read-only commits recorded" true
    (RDb.n_readonly_commits db > 2);
  RDb.shutdown db;
  checkf "money conserved" (float_of_int (2 * n) *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  match Faultsim.check_secondaries (RDb.catalogs db) with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("secondary-index audit: " ^ m)

(* ------------------------------------------------------------------ *)
(* Cost model: read-only latency has no retry inflation. *)

let test_costmodel_readonly () =
  checkf "no aborts, no inflation" 5.
    (Costmodel.expected_with_retries ~abort_prob:0. 5.);
  checkf "half the attempts abort, latency doubles" 10.
    (Costmodel.expected_with_retries ~abort_prob:0.5 5.);
  check_bool "certain abort rejected" true
    (try
       ignore (Costmodel.expected_with_retries ~abort_prob:1. 5.);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)

let qcheck t = QCheck_alcotest.to_alcotest t

let suite =
  ( "snapshot",
    [ Alcotest.test_case "readonly basics" `Quick test_readonly_basics;
      Alcotest.test_case "mutation guard" `Quick test_readonly_mutation_guard;
      Alcotest.test_case "no physical trace" `Quick test_readonly_no_trace;
      qcheck
        (QCheck.Test.make ~name:"serial committed-prefix oracle" ~count:8
           (QCheck.make QCheck.Gen.(int_bound 9999) ~print:string_of_int)
           serial_prefix_prop);
      qcheck
        (QCheck.Test.make ~name:"concurrent conservation cut" ~count:6
           (QCheck.make QCheck.Gen.(int_bound 9999) ~print:string_of_int)
           concurrent_conservation_prop);
      Alcotest.test_case "version GC horizon" `Quick test_version_gc;
      Alcotest.test_case "auto morph router" `Quick test_auto_morph_router;
      Alcotest.test_case "tpcc collect equivalence" `Quick
        test_tpcc_collect_equivalence;
      Alcotest.test_case "runtime snapshot reads" `Quick
        test_runtime_snapshot_reads;
      Alcotest.test_case "costmodel readonly" `Quick test_costmodel_readonly
    ] )
