(* Tests for the expression DSL and the transactional query layer. *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let sch =
  Storage.Schema.make ~name:"t"
    ~columns:
      [ ("id", Value.TInt); ("grp", Value.TStr); ("amt", Value.TFloat);
        ("flag", Value.TBool) ]
    ~key:[ "id" ]

(* --- Expr --- *)

let row id grp amt flag =
  [| Value.Int id; Value.Str grp; Value.Float amt; Value.Bool flag |]

let test_expr_basic () =
  let open Query.Expr in
  let e = compile_pred sch (col "grp" ==. vstr "a" &&. (col "amt" >. vfloat 5.)) in
  check_bool "match" true (e (row 1 "a" 10. true));
  check_bool "group mismatch" false (e (row 1 "b" 10. true));
  check_bool "amt too low" false (e (row 1 "a" 1. true))

let test_expr_arith () =
  let open Query.Expr in
  let v = eval sch ((col "amt" *. vfloat 2.) +. vfloat 1.) (row 1 "a" 5. true) in
  check_bool "arith" true (Value.equal v (Value.Float 11.));
  let v = eval sch (vint 7 +. vint 3) (row 1 "a" 0. true) in
  check_bool "int add stays int" true (Value.equal v (Value.Int 10));
  let v = eval sch (vint 7 /. vint 2) (row 1 "a" 0. true) in
  check_bool "int div widens" true (Value.equal v (Value.Float 3.5))

let test_expr_null_semantics () =
  let open Query.Expr in
  let nrow = [| Value.Int 1; Value.Str "a"; Value.Null; Value.Bool true |] in
  check_bool "null comparison false" false
    (compile_pred sch (col "amt" >. vfloat 0.) nrow);
  check_bool "is_null" true (compile_pred sch (is_null (col "amt")) nrow);
  check_bool "null arith is null" true
    (Value.is_null (eval sch (col "amt" +. vfloat 1.) nrow))

let test_expr_unknown_column () =
  check_bool "unknown column" true
    (try
       let (_ : Util.Value.t array -> Util.Value.t) =
         Query.Expr.compile sch (Query.Expr.col "nope")
       in
       false
     with Invalid_argument _ -> true)

let test_expr_pp () =
  let open Query.Expr in
  let s = Fmt.str "%a" pp (col "a" ==. vint 1 &&. not_ (col "b" <. vfloat 2.)) in
  check_bool "renders" true (String.length s > 10)

(* --- Exec --- *)

let ids = ref 1000

let fresh_ctx () =
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog sch in
  List.iter
    (fun (i, g, a, f) ->
      ignore
        (Storage.Table.insert tbl (Storage.Record.fresh ~absent:false (row i g a f))))
    [ (1, "a", 10., true); (2, "b", 20., false); (3, "a", 30., true);
      (4, "b", 40., false); (5, "a", 50., true) ];
  incr ids;
  let txn = Occ.Txn.create ~id:!ids in
  ( Query.Exec.make_ctx ~txn ~container:0 ~catalog
      ~charge:(fun _ _ -> ())
      ~work:(fun _ -> ()) (),
    txn )

let test_get_and_scan () =
  let ctx, _ = fresh_ctx () in
  (match Query.Exec.get ctx "t" [| Value.Int 3 |] with
  | Some r -> checkf "get" 30. (Value.to_number r.(2))
  | None -> Alcotest.fail "missing");
  check_int "scan all" 5 (List.length (Query.Exec.scan ctx "t" ()));
  check_int "scan filtered" 3
    (List.length
       (Query.Exec.scan ctx "t" ~where:Query.Expr.(col "grp" ==. vstr "a") ()));
  check_int "scan limit" 2 (List.length (Query.Exec.scan ctx "t" ~limit:2 ()));
  (match Query.Exec.first ctx "t" ~rev:true () with
  | Some r -> check_int "rev first = max key" 5 (Value.to_int r.(0))
  | None -> Alcotest.fail "rev first")

let test_scan_sees_own_inserts () =
  let ctx, _ = fresh_ctx () in
  Query.Exec.insert ctx "t" (row 10 "a" 100. true);
  Query.Exec.insert ctx "t" (row 0 "a" 0. true);
  let rows = Query.Exec.scan ctx "t" () in
  check_int "merged count" 7 (List.length rows);
  (* and in key order *)
  let keys = List.map (fun r -> Value.to_int r.(0)) rows in
  Alcotest.(check (list int)) "key order" [ 0; 1; 2; 3; 4; 5; 10 ] keys;
  (match Query.Exec.first ctx "t" ~rev:true () with
  | Some r -> check_int "rev sees own insert" 10 (Value.to_int r.(0))
  | None -> Alcotest.fail "first");
  checkf "sum includes own inserts" 250. (Query.Exec.sum ctx "t" "amt" ())

let test_scan_hides_own_deletes () =
  let ctx, _ = fresh_ctx () in
  check_bool "deleted" true (Query.Exec.delete_key ctx "t" [| Value.Int 2 |]);
  check_int "scan skips deleted" 4 (List.length (Query.Exec.scan ctx "t" ()));
  check_bool "get misses deleted" true
    (Query.Exec.get ctx "t" [| Value.Int 2 |] = None);
  check_bool "double delete false" false
    (Query.Exec.delete_key ctx "t" [| Value.Int 2 |])

let test_update_visibility () =
  let ctx, _ = fresh_ctx () in
  check_bool "updated" true
    (Query.Exec.update_key ctx "t" [| Value.Int 1 |] ~set:(fun r ->
         Query.Exec.seti r 2 (Value.Float 99.)));
  (match Query.Exec.get ctx "t" [| Value.Int 1 |] with
  | Some r -> checkf "sees update" 99. (Value.to_number r.(2))
  | None -> Alcotest.fail "missing");
  (* bulk update with predicate *)
  let n =
    Query.Exec.update ctx "t" ~where:Query.Expr.(col "grp" ==. vstr "b")
      ~set:(fun r -> Query.Exec.seti r 2 (Value.Float 0.))
      ()
  in
  check_int "bulk updated" 2 n;
  checkf "sum after updates" 179. (Query.Exec.sum ctx "t" "amt" ())

let test_update_key_change_rejected () =
  let ctx, _ = fresh_ctx () in
  check_bool "key change aborts" true
    (try
       ignore
         (Query.Exec.update_key ctx "t" [| Value.Int 1 |] ~set:(fun r ->
              Query.Exec.seti r 0 (Value.Int 999)));
       false
     with Occ.Txn.Abort _ -> true)

let test_delete_where () =
  let ctx, _ = fresh_ctx () in
  let n = Query.Exec.delete ctx "t" ~where:Query.Expr.(col "amt" >=. vfloat 30.) () in
  check_int "deleted" 3 n;
  check_int "left" 2 (Query.Exec.count ctx "t" ())

let test_aggregates () =
  let ctx, _ = fresh_ctx () in
  checkf "sum" 150. (Query.Exec.sum ctx "t" "amt" ());
  check_int "count where" 3
    (Query.Exec.count ctx "t" ~where:Query.Expr.(col "flag" ==. vbool true) ());
  let ds = Query.Exec.distinct ctx "t" "grp" () in
  check_int "distinct" 2 (List.length ds)

let test_commit_persists_through_query_layer () =
  let ctx, txn = fresh_ctx () in
  Query.Exec.insert ctx "t" (row 42 "z" 1. false);
  ignore (Query.Exec.update_key ctx "t" [| Value.Int 1 |] ~set:(fun r ->
      Query.Exec.seti r 2 (Value.Float 0.)));
  check_bool "commit" true
    (Result.is_ok (Occ.Commit.commit_single txn ~epoch:1 ~container:0));
  (* new txn sees the committed state *)
  incr ids;
  let txn2 = Occ.Txn.create ~id:!ids in
  let ctx2 = { ctx with Query.Exec.txn = txn2 } in
  check_int "row count" 6 (Query.Exec.count ctx2 "t" ());
  checkf "updated amt" 0.
    (match Query.Exec.get ctx2 "t" [| Value.Int 1 |] with
    | Some r -> Value.to_number r.(2)
    | None -> Alcotest.fail "missing")

let test_charge_accounting () =
  let reads = ref 0 and writes = ref 0 and steps = ref 0 in
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog sch in
  for i = 1 to 8 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false (row i "a" 1. true)))
  done;
  incr ids;
  let ctx =
    Query.Exec.make_ctx ~txn:(Occ.Txn.create ~id:!ids) ~container:0 ~catalog
      ~charge:(fun kind n ->
        match kind with
        | `Read -> reads := !reads + n
        | `Write -> writes := !writes + n
        | `Scan_step -> steps := !steps + n)
      ~work:(fun _ -> ()) ()
  in
  ignore (Query.Exec.get ctx "t" [| Value.Int 1 |]);
  ignore (Query.Exec.scan ctx "t" ());
  Query.Exec.insert ctx "t" (row 100 "a" 1. true);
  check_int "reads charged" 1 !reads;
  check_int "scan steps charged" 8 !steps;
  check_int "writes charged" 1 !writes

let suite =
  ( "query",
    [
      Alcotest.test_case "expr basics" `Quick test_expr_basic;
      Alcotest.test_case "expr arithmetic" `Quick test_expr_arith;
      Alcotest.test_case "expr null semantics" `Quick test_expr_null_semantics;
      Alcotest.test_case "expr unknown column" `Quick test_expr_unknown_column;
      Alcotest.test_case "expr pretty printing" `Quick test_expr_pp;
      Alcotest.test_case "get and scan" `Quick test_get_and_scan;
      Alcotest.test_case "scan sees own inserts" `Quick test_scan_sees_own_inserts;
      Alcotest.test_case "scan hides own deletes" `Quick test_scan_hides_own_deletes;
      Alcotest.test_case "updates" `Quick test_update_visibility;
      Alcotest.test_case "key change rejected" `Quick test_update_key_change_rejected;
      Alcotest.test_case "delete where" `Quick test_delete_where;
      Alcotest.test_case "aggregates" `Quick test_aggregates;
      Alcotest.test_case "commit persists" `Quick test_commit_persists_through_query_layer;
      Alcotest.test_case "charge accounting" `Quick test_charge_accounting;
    ] )
