(* Tests for redo logging and recovery (the durability extension). *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let entry txn tid writes = { Wal.le_txn = txn; le_tid = tid; le_writes = writes }

let put r t row = Wal.Put { reactor = r; table = t; row }
let del r t key = Wal.Del { reactor = r; table = t; key }

let sample_entry =
  entry 7 42
    [
      put "acct0" "acct" [| Value.Int 0; Value.Float 1.5 |];
      del "w;1" "ord\ters" [| Value.Str "tricky;,\tstring"; Value.Null |];
      put "x" "y" [| Value.Bool true; Value.Float Float.nan |];
    ]

let entry_eq a b =
  a.Wal.le_txn = b.Wal.le_txn
  && a.Wal.le_tid = b.Wal.le_tid
  && List.length a.Wal.le_writes = List.length b.Wal.le_writes
  && List.for_all2
       (fun x y ->
         match x, y with
         | ( Wal.Put { reactor = r1; table = t1; row = v1 },
             Wal.Put { reactor = r2; table = t2; row = v2 } )
         | ( Wal.Del { reactor = r1; table = t1; key = v1 },
             Wal.Del { reactor = r2; table = t2; key = v2 } ) ->
           r1 = r2 && t1 = t2
           && Array.length v1 = Array.length v2
           && Array.for_all2 Value.equal v1 v2
         | _ -> false)
       a.Wal.le_writes b.Wal.le_writes

let test_roundtrip () =
  let line = Wal.encode_entry sample_entry in
  check_bool "single line" true (not (String.contains line '\n'));
  check_bool "roundtrip" true (entry_eq sample_entry (Wal.decode_entry line))

let test_memory_log () =
  let log = Wal.in_memory () in
  Wal.append log (entry 1 10 [ put "a" "t" [| Value.Int 1 |] ]);
  Wal.append log (entry 2 20 []);
  check_int "length" 2 (Wal.length log);
  check_int "entries in order" 10 (List.hd (Wal.entries log)).Wal.le_tid

let test_file_log () =
  let path = Filename.temp_file "wal" ".log" in
  let log = Wal.to_file path in
  Wal.append log sample_entry;
  Wal.append log (entry 9 90 [ put "z" "t" [| Value.Str "" |] ]);
  Wal.close log;
  (match Wal.read_file path with
  | [ a; b ] ->
    check_bool "first" true (entry_eq a sample_entry);
    check_int "second tid" 90 b.Wal.le_tid
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  Sys.remove path

let test_corrupt_file () =
  let path = Filename.temp_file "wal" ".log" in
  let oc = open_out path in
  output_string oc "1\t10\t\nthis is not a log line\n";
  close_out oc;
  check_bool "corrupt detected" true
    (try
       ignore (Wal.read_file path);
       false
     with Failure m -> String.length m > 0);
  Sys.remove path

(* --- v2 framing: torn tails and checksums --- *)

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let read_raw path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let test_torn_tail_tolerated () =
  let path = Filename.temp_file "wal" ".log" in
  let log = Wal.to_file path in
  Wal.append log (entry 1 10 [ put "a" "t" [| Value.Int 1 |] ]);
  Wal.append log (entry 2 20 [ put "a" "t" [| Value.Int 2 |] ]);
  Wal.append log sample_entry;
  Wal.close log;
  (* Crash mid-append: keep the first two records plus half of the third
     (drop the terminator along the way). *)
  let content = read_raw path in
  let cut_after n =
    let pos = ref 0 in
    for _ = 1 to n do pos := 1 + String.index_from content !pos '\n' done;
    !pos
  in
  write_raw path (String.sub content 0 (cut_after 2 + 10));
  (match Wal.read_file_tolerant path with
  | entries, Wal.Torn { valid; _ } ->
    check_int "valid prefix" 2 valid;
    check_int "entries returned" 2 (List.length entries);
    check_int "prefix tids intact" 20 (List.nth entries 1).Wal.le_tid
  | _, Wal.Clean -> Alcotest.fail "torn tail not detected");
  check_bool "strict reader raises" true
    (try
       ignore (Wal.read_file path);
       false
     with Failure _ -> true);
  Sys.remove path

let test_checksum_mismatch_detected () =
  let path = Filename.temp_file "wal" ".log" in
  let log = Wal.to_file path in
  Wal.append log (entry 1 10 [ put "a" "t" [| Value.Int 1 |] ]);
  Wal.append log (entry 2 20 [ put "a" "t" [| Value.Int 2 |] ]);
  Wal.close log;
  (* Flip one payload byte of the second record: the length still matches,
     only the checksum can catch it. *)
  let content = read_raw path in
  let second = 1 + String.index content '\n' in
  let off = String.length content - 2 in
  assert (off > second);
  let corrupted =
    String.mapi
      (fun i c -> if i = off then (if c = 'x' then 'y' else 'x') else c)
      content
  in
  write_raw path corrupted;
  (match Wal.read_file_tolerant path with
  | entries, Wal.Torn { valid; reason } ->
    check_int "valid prefix" 1 valid;
    check_int "entries returned" 1 (List.length entries);
    check_bool "reason mentions checksum" true
      (Util.Strutil.contains reason ~sub:"checksum")
  | _, Wal.Clean -> Alcotest.fail "corruption not detected");
  Sys.remove path

let test_reopen_counts_and_appends () =
  (* Satellite fix: reopening an existing log must count its entries, not
     restart at zero. *)
  let path = Filename.temp_file "wal" ".log" in
  let log = Wal.to_file path in
  Wal.append log (entry 1 10 [ put "a" "t" [| Value.Int 1 |] ]);
  Wal.append log (entry 2 20 [ put "a" "t" [| Value.Int 2 |] ]);
  Wal.close log;
  let log2 = Wal.to_file path in
  check_int "reopen counts existing entries" 2 (Wal.length log2);
  Wal.append log2 (entry 3 30 [ put "a" "t" [| Value.Int 3 |] ]);
  check_int "append continues the count" 3 (Wal.length log2);
  Wal.close log2;
  check_int "all three readable" 3 (List.length (Wal.read_file path));
  Sys.remove path

let test_reopen_truncates_torn_tail () =
  let path = Filename.temp_file "wal" ".log" in
  let log = Wal.to_file path in
  Wal.append log (entry 1 10 [ put "a" "t" [| Value.Int 1 |] ]);
  Wal.append log (entry 2 20 [ put "a" "t" [| Value.Int 2 |] ]);
  Wal.close log;
  let content = read_raw path in
  write_raw path (String.sub content 0 (String.length content - 3));
  (* Reopen after the crash: the torn record is dropped, appends land after
     the valid prefix and stay reachable. *)
  let log2 = Wal.to_file path in
  check_int "torn tail dropped" 1 (Wal.length log2);
  Wal.append log2 (entry 3 30 [ put "a" "t" [| Value.Int 3 |] ]);
  Wal.close log2;
  (match Wal.read_file_tolerant path with
  | entries, Wal.Clean ->
    check_int "clean after reopen" 2 (List.length entries);
    check_int "appended record readable" 30 (List.nth entries 1).Wal.le_tid
  | _, Wal.Torn _ -> Alcotest.fail "log still torn after reopen");
  Sys.remove path

let prop_roundtrip =
  let gen_value =
    QCheck.Gen.(
      oneof
        [ return Value.Null;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) int;
          map (fun f -> Value.Float f) float;
          map (fun s -> Value.Str s) (string_size (int_bound 30)) ])
  in
  let gen_write =
    QCheck.Gen.(
      map3
        (fun k (r, t) vals ->
          let vals = Array.of_list vals in
          if k then Wal.Put { reactor = r; table = t; row = vals }
          else Wal.Del { reactor = r; table = t; key = vals })
        bool
        (pair (string_size (int_bound 10)) (string_size (int_bound 10)))
        (list_size (int_bound 6) gen_value))
  in
  let gen_entry =
    QCheck.Gen.(
      map3
        (fun txn tid ws -> entry txn tid ws)
        nat nat
        (list_size (int_bound 5) gen_write))
  in
  QCheck.Test.make ~name:"wal entry encode/decode roundtrip" ~count:300
    (QCheck.make gen_entry)
    (fun e -> entry_eq e (Wal.decode_entry (Wal.encode_entry e)))

let prop_framed_roundtrip =
  (* v2 framing roundtrip, with the encodings most likely to bite: NaN,
     infinities, negative zero, hex-precise floats, and entries with no
     writes at all. *)
  let gen_value =
    QCheck.Gen.(
      oneof
        [ return Value.Null;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) int;
          map (fun f -> Value.Float f) float;
          oneofl
            [ Value.Float Float.nan;
              Value.Float Float.infinity;
              Value.Float Float.neg_infinity;
              Value.Float (-0.);
              Value.Float 0x1.fffffffffffffp+1023;
              Value.Float 0x1.5bf0a8b145769p+1 ];
          map (fun s -> Value.Str s) (string_size (int_bound 30)) ])
  in
  let gen_write =
    QCheck.Gen.(
      map3
        (fun k (r, t) vals ->
          let vals = Array.of_list vals in
          if k then Wal.Put { reactor = r; table = t; row = vals }
          else Wal.Del { reactor = r; table = t; key = vals })
        bool
        (pair (string_size (int_bound 10)) (string_size (int_bound 10)))
        (list_size (int_bound 6) gen_value))
  in
  let gen_entry =
    QCheck.Gen.(
      map3
        (fun txn tid ws -> entry txn tid ws)
        nat nat
        (list_size (int_bound 4) gen_write))
  in
  QCheck.Test.make ~name:"wal v2 framed encode/decode roundtrip" ~count:300
    (QCheck.make gen_entry)
    (fun e ->
      match Wal.decode_framed (Wal.encode_framed e) with
      | Ok e' -> entry_eq e e'
      | Error _ -> false)

let test_framed_empty_writes () =
  let e = entry 3 33 [] in
  (match Wal.decode_framed (Wal.encode_framed e) with
  | Ok e' -> check_bool "empty write list roundtrips" true (entry_eq e e')
  | Error m -> Alcotest.failf "empty write list rejected: %s" m);
  check_bool "v1 line is not mistaken for v2" true
    (Result.is_error (Wal.decode_framed (Wal.encode_entry e)))

(* --- replay semantics --- *)

let kv_schema =
  Storage.Schema.make ~name:"kv"
    ~columns:[ ("k", Value.TInt); ("v", Value.TInt) ]
    ~key:[ "k" ]

let test_replay () =
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog kv_schema in
  ignore
    (Storage.Table.insert tbl
       (Storage.Record.fresh ~absent:false [| Value.Int 1; Value.Int 10 |]));
  let entries =
    [
      (* later tid wins even though listed first: replay sorts by tid *)
      entry 2 200 [ put "r" "kv" [| Value.Int 1; Value.Int 999 |] ];
      entry 1 100
        [ put "r" "kv" [| Value.Int 1; Value.Int 500 |];
          put "r" "kv" [| Value.Int 2; Value.Int 20 |] ];
      entry 3 300 [ del "r" "kv" [| Value.Int 2 |] ];
    ]
  in
  let n = Wal.replay entries ~catalog_of:(fun _ -> catalog) in
  check_int "writes applied" 4 n;
  (match Storage.Table.find tbl [| Value.Int 1 |] with
  | Some r -> check_int "tid-ordered replay" 999 (Value.to_int r.Storage.Record.data.(1))
  | None -> Alcotest.fail "missing");
  check_bool "delete replayed" true (Storage.Table.find tbl [| Value.Int 2 |] = None)

let test_replay_maintains_secondaries () =
  (* Regression for the replay path mutating record data in place: a Put
     that changes an indexed column must relocate the secondary entry, or
     post-recovery secondary lookups return phantoms / miss rows. *)
  let catalog = Storage.Catalog.create () in
  let tbl =
    Storage.Catalog.create_table ~secondaries:[ ("by_v", [ "v" ]) ] catalog
      kv_schema
  in
  ignore
    (Storage.Table.insert tbl
       (Storage.Record.fresh ~absent:false [| Value.Int 1; Value.Int 10 |]));
  ignore
    (Wal.replay
       [ entry 1 100 [ put "r" "kv" [| Value.Int 1; Value.Int 20 |] ] ]
       ~catalog_of:(fun _ -> catalog));
  let lookup v =
    let lo, hi = Storage.Table.key_prefix_bounds [| Value.Int v |] in
    let hits = ref [] in
    Storage.Table.scan_secondary tbl ~lo ~hi ~index:"by_v" ~f:(fun r ->
        if not r.Storage.Record.absent then hits := r :: !hits;
        true);
    !hits
  in
  check_int "old secondary key vacated" 0 (List.length (lookup 10));
  (match lookup 20 with
  | [ r ] ->
    check_int "row found through secondary" 20
      (Value.to_int r.Storage.Record.data.(1))
  | l -> Alcotest.failf "expected 1 hit under new key, got %d" (List.length l))

(* --- end-to-end: crash-recovery equivalence --- *)

(* Physical snapshot of a database: (reactor, table, key, row) list. *)
let snapshot db reactor_names =
  List.concat_map
    (fun rname ->
      let catalog = Reactdb.Database.catalog_of db rname in
      List.concat_map
        (fun (tname, tbl) ->
          let rows = ref [] in
          Storage.Table.range tbl ~f:(fun r ->
              if not r.Storage.Record.absent then
                rows := (rname, tname, Array.to_list r.Storage.Record.data) :: !rows;
              true);
          !rows)
        (Storage.Catalog.tables catalog))
    reactor_names
  |> List.sort compare

let test_recovery_bank () =
  let log = Wal.in_memory () in
  let final =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        Reactdb.Database.attach_wal db log;
        Testlib.run_conflict_workload db ~workers:5 ~per_worker:30;
        snapshot db (Testlib.names 4))
  in
  check_bool "log non-empty" true (Wal.length log > 0);
  (* "Restart": fresh database from the same declaration, replay the log. *)
  let recovered =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        ignore
          (Wal.replay (Wal.entries log)
             ~catalog_of:(Reactdb.Database.catalog_of db));
        snapshot db (Testlib.names 4))
  in
  check_bool "recovered state identical" true (final = recovered)

let test_recovery_tpcc () =
  let log = Wal.in_memory () in
  let decl = Workloads.Tpcc.decl ~warehouses:2 ~sizes:Workloads.Tpcc.small_sizes () in
  let cfg =
    Reactdb.Config.shared_nothing
      (List.map (fun w -> [ w ]) (Workloads.Tpcc.warehouses 2))
  in
  let run f =
    let db = Harness.build decl cfg in
    let out = ref None in
    Sim.Engine.spawn (Reactdb.Database.engine db) (fun () -> out := Some (f db));
    ignore (Sim.Engine.run (Reactdb.Database.engine db));
    Option.get !out
  in
  let ws = Workloads.Tpcc.warehouses 2 in
  let final =
    run (fun db ->
        Reactdb.Database.attach_wal db log;
        let p = Workloads.Tpcc.params ~sizes:Workloads.Tpcc.small_sizes 2 in
        let seq = ref 0 in
        let rng = Rng.create 5 in
        for i = 0 to 79 do
          let req = Workloads.Tpcc.gen_mix rng p ~home:(1 + (i mod 2)) ~seq in
          ignore
            (Reactdb.Database.exec_txn db ~reactor:req.Workloads.Wl.reactor
               ~proc:req.Workloads.Wl.proc ~args:req.Workloads.Wl.args)
        done;
        snapshot db ws)
  in
  let recovered =
    run (fun db ->
        ignore
          (Wal.replay (Wal.entries log)
             ~catalog_of:(Reactdb.Database.catalog_of db));
        snapshot db ws)
  in
  check_bool "tpcc recovered state identical" true (final = recovered)

(* --- checkpoint + tail replay --- *)

let test_checkpoint_roundtrip_file () =
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog kv_schema in
  for i = 1 to 5 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Value.Int i; Value.Int (i * i) |]))
  done;
  let ck = Checkpoint.capture ~tid:77 [ ("r", catalog) ] in
  check_int "rows captured" 5 (List.length ck.Checkpoint.ck_rows);
  let path = Filename.temp_file "ck" ".dump" in
  Checkpoint.write_file path ck;
  let ck2 = Checkpoint.read_file path in
  Sys.remove path;
  check_int "tid preserved" 77 ck2.Checkpoint.ck_tid;
  check_bool "rows preserved" true (ck.Checkpoint.ck_rows = ck2.Checkpoint.ck_rows)

let test_checkpoint_recovery () =
  (* Run a workload with both a WAL and a mid-run checkpoint; recover from
     checkpoint + log tail; compare with full state. *)
  let log = Wal.in_memory () in
  let checkpoint = ref None in
  let final =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        Reactdb.Database.attach_wal db log;
        Testlib.run_conflict_workload db ~workers:3 ~per_worker:20;
        (* quiescent point: snapshot, recording the log position covered *)
        let max_tid =
          List.fold_left (fun m e -> Stdlib.max m e.Wal.le_tid) 0
            (Wal.entries log)
        in
        checkpoint :=
          Some
            (Checkpoint.capture ~tid:max_tid
               ~covers:(List.length (Wal.entries log))
               (List.map
                  (fun n -> (n, Reactdb.Database.catalog_of db n))
                  (Testlib.names 4)));
        (* more work after the checkpoint *)
        Testlib.run_conflict_workload db ~workers:3 ~per_worker:20;
        snapshot db (Testlib.names 4))
  in
  let ck = Option.get !checkpoint in
  let recovered =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        let restored, replayed =
          Checkpoint.recover ~checkpoint:ck ~log:(Wal.entries log)
            ~catalog_of:(Reactdb.Database.catalog_of db)
        in
        check_bool "restored rows" true (restored > 0);
        check_bool "replayed only the tail" true
          (replayed < List.length (Wal.entries log) * 2);
        snapshot db (Testlib.names 4))
  in
  check_bool "checkpoint+tail state identical" true (final = recovered)

let test_checkpoint_restore_clears_loader_data () =
  (* restoring an empty-table checkpoint wipes loader rows *)
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog kv_schema in
  ignore
    (Storage.Table.insert tbl
       (Storage.Record.fresh ~absent:false [| Value.Int 1; Value.Int 1 |]));
  let empty_catalog = Storage.Catalog.create () in
  ignore (Storage.Catalog.create_table empty_catalog kv_schema);
  let ck =
    { (Checkpoint.capture ~tid:5 [ ("r", empty_catalog) ]) with
      Checkpoint.ck_rows = [ ("r", "kv", [| Value.Int 9; Value.Int 9 |]) ] }
  in
  ignore (Checkpoint.restore ck ~catalog_of:(fun _ -> catalog));
  check_bool "loader row gone" true (Storage.Table.find tbl [| Value.Int 1 |] = None);
  check_bool "checkpoint row present" true
    (Storage.Table.find tbl [| Value.Int 9 |] <> None)

let test_restore_clears_empty_reactor () =
  (* Satellite fix: a reactor whose tables were empty at capture time
     contributes no rows, but restore must still clear its dirty state. *)
  let mk_catalog rows =
    let catalog = Storage.Catalog.create () in
    let tbl = Storage.Catalog.create_table catalog kv_schema in
    List.iter
      (fun (k, v) ->
        ignore
          (Storage.Table.insert tbl
             (Storage.Record.fresh ~absent:false [| Value.Int k; Value.Int v |])))
      rows;
    catalog
  in
  (* Capture r1 with a row and r2 empty. *)
  let ck =
    Checkpoint.capture ~tid:9
      [ ("r1", mk_catalog [ (1, 1) ]); ("r2", mk_catalog []) ]
  in
  check_bool "empty reactor is covered" true
    (List.mem "r2" ck.Checkpoint.ck_reactors);
  (* Roundtrip through a file to make sure coverage survives encoding. *)
  let path = Filename.temp_file "ck" ".dump" in
  Checkpoint.write_file path ck;
  let ck = Checkpoint.read_file path in
  Sys.remove path;
  check_bool "coverage survives the file format" true
    (List.mem "r2" ck.Checkpoint.ck_reactors);
  (* Restore over a database where both reactors have dirty rows. *)
  let dirty1 = mk_catalog [ (5, 5) ] and dirty2 = mk_catalog [ (6, 6) ] in
  let catalog_of = function
    | "r1" -> dirty1
    | "r2" -> dirty2
    | r -> Alcotest.failf "unexpected reactor %s" r
  in
  ignore (Checkpoint.restore ck ~catalog_of);
  check_bool "r1 dirty row gone" true
    (Storage.Table.find (Storage.Catalog.table dirty1 "kv") [| Value.Int 5 |]
    = None);
  check_bool "r1 checkpoint row restored" true
    (Storage.Table.find (Storage.Catalog.table dirty1 "kv") [| Value.Int 1 |]
    <> None);
  check_bool "empty reactor cleared too" true
    (Storage.Table.find (Storage.Catalog.table dirty2 "kv") [| Value.Int 6 |]
    = None)

let test_torn_checkpoint_rejected () =
  (* Crash between checkpoint write and rename is already covered by the
     atomic writer; this covers a checkpoint damaged on disk: the reader
     must reject it so recovery falls back to log-only replay. *)
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog kv_schema in
  for i = 1 to 4 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Value.Int i; Value.Int i |]))
  done;
  let ck = Checkpoint.capture ~tid:7 [ ("r", catalog) ] in
  let path = Filename.temp_file "ck" ".dump" in
  Checkpoint.write_file path ck;
  check_bool "intact checkpoint reads" true
    (Result.is_ok (Checkpoint.read_file_opt path));
  let content = read_raw path in
  write_raw path (String.sub content 0 (String.length content - 12));
  check_bool "torn checkpoint rejected" true
    (Result.is_error (Checkpoint.read_file_opt path));
  Sys.remove path

(* --- durable commit (epoch group commit) --- *)

let test_durable_group_commit () =
  let path = Filename.temp_file "wal" ".log" in
  let flushes, committed =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        let log = Wal.to_file path in
        Reactdb.Database.attach_wal ~durable:true db log;
        Testlib.run_conflict_workload db ~workers:5 ~per_worker:6;
        Wal.close log;
        (Reactdb.Database.n_log_flushes db, Reactdb.Database.n_committed db))
  in
  check_bool "workload committed" true (committed > 0);
  check_bool "flushes happened" true (flushes > 0);
  check_bool "group commit batches transactions" true (flushes < committed);
  (* Everything a client saw commit is on disk and parses cleanly. *)
  (match Wal.read_file_tolerant path with
  | entries, Wal.Clean ->
    check_bool "durable log covers commits" true (List.length entries > 0)
  | _, Wal.Torn _ -> Alcotest.fail "durable log torn");
  Sys.remove path

let suite =
  ( "wal",
    [
      Alcotest.test_case "entry roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "memory log" `Quick test_memory_log;
      Alcotest.test_case "file log" `Quick test_file_log;
      Alcotest.test_case "corrupt file" `Quick test_corrupt_file;
      Alcotest.test_case "torn tail tolerated" `Quick test_torn_tail_tolerated;
      Alcotest.test_case "checksum mismatch detected" `Quick
        test_checksum_mismatch_detected;
      Alcotest.test_case "reopen counts entries" `Quick
        test_reopen_counts_and_appends;
      Alcotest.test_case "reopen truncates torn tail" `Quick
        test_reopen_truncates_torn_tail;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      QCheck_alcotest.to_alcotest prop_framed_roundtrip;
      Alcotest.test_case "framed empty write list" `Quick
        test_framed_empty_writes;
      Alcotest.test_case "replay semantics" `Quick test_replay;
      Alcotest.test_case "replay maintains secondaries" `Quick
        test_replay_maintains_secondaries;
      Alcotest.test_case "recovery: bank" `Quick test_recovery_bank;
      Alcotest.test_case "recovery: tpcc" `Quick test_recovery_tpcc;
      Alcotest.test_case "checkpoint file roundtrip" `Quick
        test_checkpoint_roundtrip_file;
      Alcotest.test_case "checkpoint + tail recovery" `Quick
        test_checkpoint_recovery;
      Alcotest.test_case "restore clears loader data" `Quick
        test_checkpoint_restore_clears_loader_data;
      Alcotest.test_case "restore clears empty reactors" `Quick
        test_restore_clears_empty_reactor;
      Alcotest.test_case "torn checkpoint rejected" `Quick
        test_torn_checkpoint_rejected;
      Alcotest.test_case "durable group commit" `Quick
        test_durable_group_commit;
    ] )
