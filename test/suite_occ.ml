(* Unit tests for the Silo-style OCC layer: visibility, validation,
   phantom protection, and the 2PC primitives. *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sch =
  Storage.Schema.make ~name:"kv"
    ~columns:[ ("k", Value.TInt); ("v", Value.TInt) ]
    ~key:[ "k" ]

let fresh_table () =
  let tbl = Storage.Table.create sch in
  for i = 0 to 9 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Value.Int i; Value.Int (100 + i) |]))
  done;
  tbl

let ids = ref 0

let fresh_txn () =
  incr ids;
  Occ.Txn.create ~id:!ids

let key i = [| Value.Int i |]

let read_v txn ~c tbl i =
  match Storage.Table.find tbl (key i) with
  | None -> None
  | Some r -> (
    match Occ.Txn.read txn ~container:c r with
    | Some data -> Some (Value.to_int data.(1))
    | None -> None)

let write_v txn ~c tbl i v =
  match Storage.Table.find tbl (key i) with
  | None -> Alcotest.fail "missing record"
  | Some r ->
    Occ.Txn.write txn ~container:c ~table:tbl ~key:(key i) r
      [| Value.Int i; Value.Int v |]

let test_read_own_writes () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl 3 999;
  Alcotest.(check (option int)) "sees own write" (Some 999) (read_v t ~c:0 tbl 3);
  Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 50; Value.Int 1 |];
  (match Occ.Txn.own_insert t ~table:tbl ~key:(key 50) with
  | Some e ->
    check_int "own insert visible" 1
      (Value.to_int e.Occ.Txn.wrec.Storage.Record.data.(1))
  | None -> Alcotest.fail "own insert missing");
  (* Buffered insert is not physically in the table pre-commit. *)
  check_bool "not yet physical" true (Storage.Table.find tbl (key 50) = None)

let test_commit_installs () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl 1 42;
  Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 60; Value.Int 2 |];
  (match Storage.Table.find tbl (key 2) with
  | Some r ->
    Occ.Txn.delete t ~container:0 ~table:tbl ~key:(key 2) r
  | None -> Alcotest.fail "missing");
  (match Occ.Commit.commit_single t ~epoch:1 ~container:0 with
  | Ok tid -> check_bool "tid positive" true (tid > 0)
  | Error r -> Alcotest.failf "commit failed: %s" (Occ.Commit.fail_message r));
  let t2 = fresh_txn () in
  Alcotest.(check (option int)) "update visible" (Some 42) (read_v t2 ~c:0 tbl 1);
  check_bool "insert installed" true (Storage.Table.find tbl (key 60) <> None);
  check_bool "delete removed" true (Storage.Table.find tbl (key 2) = None)

let test_write_write_conflict () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  (* Both read-modify-write key 4; t1 commits first; t2 must fail
     validation on its stale read. *)
  ignore (read_v t1 ~c:0 tbl 4);
  ignore (read_v t2 ~c:0 tbl 4);
  write_v t1 ~c:0 tbl 4 1;
  write_v t2 ~c:0 tbl 4 2;
  check_bool "t1 commits" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  check_bool "t2 aborts" true
    (Result.is_error (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "t1's write survives" (Some 1) (read_v t3 ~c:0 tbl 4)

let test_blind_write_no_conflict () =
  (* Blind writes (no read) of disjoint values: both commit, last wins. *)
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  write_v t1 ~c:0 tbl 5 1;
  write_v t2 ~c:0 tbl 5 2;
  check_bool "t1 ok" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  check_bool "t2 ok (no read validation)" true
    (Result.is_ok (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "last wins" (Some 2) (read_v t3 ~c:0 tbl 5)

let test_phantom_protection () =
  let tbl = fresh_table () in
  (* t1 scans keys [20, 30] (empty), t2 inserts 25 and commits, t1 must
     fail validation through its node set. *)
  let t1 = fresh_txn () and t2 = fresh_txn () in
  let seen = ref 0 in
  Storage.Table.range tbl ~lo:(key 20) ~hi:(key 30)
    ~on_node:(fun w -> Occ.Txn.note_node t1 ~container:0 w)
    ~f:(fun _ -> incr seen; true);
  check_int "empty range" 0 !seen;
  (* t1 must also write something, else it has nothing to validate against;
     give it a write to force full validation. *)
  write_v t1 ~c:0 tbl 0 7;
  Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 25; Value.Int 1 |];
  check_bool "t2 commits" true
    (Result.is_ok (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  check_bool "t1 aborts on phantom" true
    (Result.is_error (Occ.Commit.commit_single t1 ~epoch:1 ~container:0))

let test_insert_insert_conflict () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  Occ.Txn.insert t1 ~container:0 ~table:tbl [| Value.Int 77; Value.Int 1 |];
  Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 77; Value.Int 2 |];
  check_bool "t1 commits" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  check_bool "t2 aborts (duplicate)" true
    (Result.is_error (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "t1's row" (Some 1) (read_v t3 ~c:0 tbl 77)

let test_insert_existing_aborts_immediately () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  check_bool "duplicate key raises Conflict" true
    (try
       Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 3; Value.Int 0 |];
       false
     with Occ.Txn.Conflict _ -> true)

let test_delete_then_reinsert_other_txn () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () in
  (match Storage.Table.find tbl (key 7) with
  | Some r -> Occ.Txn.delete t1 ~container:0 ~table:tbl ~key:(key 7) r
  | None -> Alcotest.fail "missing");
  check_bool "t1 commits delete" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  let t2 = fresh_txn () in
  Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 7; Value.Int 5 |];
  check_bool "reinsert commits" true
    (Result.is_ok (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "new row" (Some 5) (read_v t3 ~c:0 tbl 7)

let test_2pc_prepare_release () =
  (* Two containers, each with its own table; release after one prepare
     leaves no residue. *)
  let tbl0 = fresh_table () and tbl1 = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl0 1 11;
  write_v t ~c:1 tbl1 2 22;
  check_bool "prepare c0" true (Result.is_ok (Occ.Commit.prepare t ~container:0));
  (* Simulate failure on container 1: release both. *)
  Occ.Commit.release t ~container:0;
  Occ.Commit.release t ~container:1;
  let t2 = fresh_txn () in
  Alcotest.(check (option int)) "no residue c0" (Some 101) (read_v t2 ~c:0 tbl0 1);
  (match Storage.Table.find tbl0 (key 1) with
  | Some r -> check_bool "unlocked" false (Storage.Record.is_locked r)
  | None -> Alcotest.fail "missing")

let test_2pc_full_commit () =
  let tbl0 = fresh_table () and tbl1 = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl0 1 11;
  Occ.Txn.insert t ~container:1 ~table:tbl1 [| Value.Int 88; Value.Int 8 |];
  Alcotest.(check (list int)) "containers" [ 0; 1 ] (Occ.Txn.containers t);
  check_bool "prepare c0" true (Result.is_ok (Occ.Commit.prepare t ~container:0));
  check_bool "prepare c1" true (Result.is_ok (Occ.Commit.prepare t ~container:1));
  let tid = Occ.Commit.compute_tid t ~epoch:2 in
  Occ.Commit.install t ~container:0 ~tid;
  Occ.Commit.install t ~container:1 ~tid;
  let t2 = fresh_txn () in
  Alcotest.(check (option int)) "c0 installed" (Some 11) (read_v t2 ~c:0 tbl0 1);
  Alcotest.(check (option int)) "c1 installed" (Some 8) (read_v t2 ~c:1 tbl1 88);
  check_int "tid epoch" 2 (Storage.Record.tid_epoch tid)

let test_prepare_locked_by_other_fails () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  write_v t1 ~c:0 tbl 1 11;
  write_v t2 ~c:0 tbl 1 22;
  check_bool "t1 prepares (locks)" true
    (Result.is_ok (Occ.Commit.prepare t1 ~container:0));
  (match Occ.Commit.prepare t2 ~container:0 with
  | Error Occ.Commit.Lock_busy -> ()
  | Error r ->
    Alcotest.failf "t2 prepare: wrong reason %s" (Occ.Commit.fail_message r)
  | Ok () -> Alcotest.fail "t2 prepare should fail on lock");
  (* t2 read-validating against a locked record also fails. *)
  let t3 = fresh_txn () in
  ignore (read_v t3 ~c:0 tbl 1);
  write_v t3 ~c:0 tbl 2 0;
  (match Occ.Commit.prepare t3 ~container:0 with
  | Error Occ.Commit.Stale_read -> ()
  | Error r ->
    Alcotest.failf "t3 prepare: wrong reason %s" (Occ.Commit.fail_message r)
  | Ok () -> Alcotest.fail "reader of locked record must fail validation");
  Occ.Commit.release t1 ~container:0

let test_reserved_insert_blocks_concurrent_insert () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () in
  Occ.Txn.insert t1 ~container:0 ~table:tbl [| Value.Int 90; Value.Int 1 |];
  check_bool "t1 prepares (reserves 90)" true
    (Result.is_ok (Occ.Commit.prepare t1 ~container:0));
  (* Concurrent executor tries to insert the same key mid-2PC: the
     execution-time probe sees the reservation. *)
  let t2 = fresh_txn () in
  check_bool "t2 insert aborts on reservation" true
    (try
       Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 90; Value.Int 2 |];
       false
     with Occ.Txn.Conflict _ -> true);
  Occ.Commit.release t1 ~container:0;
  check_bool "reservation rolled back" true (Storage.Table.find tbl (key 90) = None)

let test_write_after_delete_rejected () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  (match Storage.Table.find tbl (key 1) with
  | Some r ->
    Occ.Txn.delete t ~container:0 ~table:tbl ~key:(key 1) r;
    check_bool "write-after-delete aborts" true
      (try
         Occ.Txn.write t ~container:0 ~table:tbl ~key:(key 1) r
           [| Value.Int 1; Value.Int 0 |];
         false
       with Occ.Txn.Abort _ -> true)
  | None -> Alcotest.fail "missing")

let test_delete_own_insert_cancels () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 91; Value.Int 1 |];
  (match Occ.Txn.own_insert t ~table:tbl ~key:(key 91) with
  | Some e -> Occ.Txn.delete t ~container:0 ~table:tbl ~key:(key 91) e.Occ.Txn.wrec
  | None -> Alcotest.fail "missing own insert");
  check_int "write set empty" 0 (Occ.Txn.write_count t);
  check_bool "commit clean" true
    (Result.is_ok (Occ.Commit.commit_single t ~epoch:1 ~container:0));
  check_bool "nothing installed" true (Storage.Table.find tbl (key 91) = None)

(* ------------------------------------------------------------------ *)
(* Property: the per-container buckets behind reads_in/writes_in/nodes_in/
   ops_in and the per-table buckets behind own_updates_for/own_inserts_for
   agree with a naive whole-set-filter reference across randomized
   read/write/insert/delete/scan sequences, including the write-after-delete
   and delete-of-own-insert edge cases.

   The reference below is the pre-bucketing implementation: one flat
   hashtable per set, filtered per container/table on every query. It runs
   in lockstep with the real context against the same physical tables (no
   operation mutates the table before commit, so the two never interfere). *)

module Naive = struct
  type wkind = NUpdate of Value.t array | NInsert | NDelete

  type wentry = {
    nrec : Storage.Record.t;
    mutable nkind : wkind;
    ntable : Storage.Table.t;
    nkey : Storage.Table.Key.t;
    ncontainer : int;
  }

  type t = {
    reads : (int, Storage.Record.t * int * int) Hashtbl.t;
    writes : (int, wentry) Hashtbl.t;
    inserts : (int * Storage.Table.Key.t, wentry) Hashtbl.t;
    mutable nodes : (int * Storage.Table.witness) list;
  }

  let create () =
    { reads = Hashtbl.create 64; writes = Hashtbl.create 16;
      inserts = Hashtbl.create 16; nodes = [] }

  let own_write t record = Hashtbl.find_opt t.writes record.Storage.Record.rid
  let own_insert t ~table ~key = Hashtbl.find_opt t.inserts (table.Storage.Table.uid, key)

  let note_read t ~container record =
    let rid = record.Storage.Record.rid in
    if not (Hashtbl.mem t.reads rid) then
      Hashtbl.add t.reads rid (record, record.Storage.Record.tid, container)

  let read t ~container record =
    match own_write t record with
    | Some { nkind = NUpdate data; _ } -> Some data
    | Some { nkind = NDelete; _ } -> None
    | Some { nkind = NInsert; nrec; _ } -> Some nrec.Storage.Record.data
    | None ->
      note_read t ~container record;
      if record.Storage.Record.absent then None
      else Some record.Storage.Record.data

  let write t ~container ~table ~key record data =
    match own_write t record with
    | Some ({ nkind = NUpdate _; _ } as e) -> e.nkind <- NUpdate data
    | Some { nkind = NInsert; nrec; _ } -> nrec.Storage.Record.data <- data
    | Some { nkind = NDelete; _ } -> raise (Occ.Txn.Abort "write after delete")
    | None ->
      Hashtbl.add t.writes record.Storage.Record.rid
        { nrec = record; nkind = NUpdate data; ntable = table; nkey = key;
          ncontainer = container }

  let insert t ~container ~table tuple =
    let key = Storage.Table.key_of_tuple table tuple in
    if Hashtbl.mem t.inserts (table.Storage.Table.uid, key) then
      raise (Occ.Txn.Abort "duplicate key (own insert)");
    let clash = ref false in
    (match
       Storage.Table.find
         ~on_node:(fun w -> t.nodes <- (container, w) :: t.nodes)
         table key
     with
    | Some existing ->
      if existing.Storage.Record.absent then begin
        note_read t ~container existing;
        if Storage.Record.is_locked existing then clash := true
      end
      else clash := true
    | None -> ());
    if !clash then raise (Occ.Txn.Abort "duplicate key");
    let record = Storage.Record.fresh ~absent:true tuple in
    let entry =
      { nrec = record; nkind = NInsert; ntable = table; nkey = key;
        ncontainer = container }
    in
    Hashtbl.add t.writes record.Storage.Record.rid entry;
    Hashtbl.add t.inserts (table.Storage.Table.uid, key) entry

  let delete t ~container ~table ~key record =
    match own_write t record with
    | Some { nkind = NInsert; nrec; _ } ->
      Hashtbl.remove t.writes nrec.Storage.Record.rid;
      Hashtbl.remove t.inserts (table.Storage.Table.uid, key)
    | Some ({ nkind = NUpdate _; _ } as e) -> e.nkind <- NDelete
    | Some { nkind = NDelete; _ } -> ()
    | None ->
      Hashtbl.add t.writes record.Storage.Record.rid
        { nrec = record; nkind = NDelete; ntable = table; nkey = key;
          ncontainer = container }

  let note_node t ~container w = t.nodes <- (container, w) :: t.nodes

  let reads_in t ~container =
    Hashtbl.fold
      (fun _ (r, observed, c) acc ->
        if c = container then (r, observed) :: acc else acc)
      t.reads []

  let writes_in t ~container =
    Hashtbl.fold
      (fun _ e acc -> if e.ncontainer = container then e :: acc else acc)
      t.writes []

  let nodes_in t ~container =
    List.filter_map (fun (c, w) -> if c = container then Some w else None) t.nodes

  let own_updates_for t ~table =
    Hashtbl.fold
      (fun _ e acc ->
        match e.nkind with
        | NUpdate data when e.ntable.Storage.Table.uid = table.Storage.Table.uid
          ->
          (e.nkey, data) :: acc
        | _ -> acc)
      t.writes []

  let own_inserts_for t ~table =
    Hashtbl.fold
      (fun (uid, key) e acc ->
        if uid = table.Storage.Table.uid then
          (key, e.nrec.Storage.Record.data) :: acc
        else acc)
      t.inserts []
end

type prop_op =
  | PRead of int * int * int (* table, key, container *)
  | PWrite of int * int * int * int (* table, key, container, value *)
  | PIns of int * int * int * int
  | PDel of int * int * int
  | PScan of int * int * int * int (* table, lo, hi, container *)

(* Write-entry projection comparable across the two contexts (buffered
   inserts allocate distinct records, so rids cannot be compared). *)
let wproj_real (e : Occ.Txn.write_entry) =
  let tag, payload =
    match e.Occ.Txn.kind with
    | Occ.Txn.Update d -> (0, d)
    | Occ.Txn.Insert -> (1, e.Occ.Txn.wrec.Storage.Record.data)
    | Occ.Txn.Delete -> (2, [||])
  in
  (e.Occ.Txn.wtable.Storage.Table.uid, e.Occ.Txn.wkey, tag, payload)

let wproj_naive (e : Naive.wentry) =
  let tag, payload =
    match e.Naive.nkind with
    | Naive.NUpdate d -> (0, d)
    | Naive.NInsert -> (1, e.Naive.nrec.Storage.Record.data)
    | Naive.NDelete -> (2, [||])
  in
  (e.Naive.ntable.Storage.Table.uid, e.Naive.nkey, tag, payload)

let sorted l = List.sort Stdlib.compare l

let prop_tables () =
  let mk () =
    let tbl = Storage.Table.create sch in
    for i = 0 to 14 do
      ignore
        (Storage.Table.insert tbl
           (Storage.Record.fresh ~absent:false [| Value.Int i; Value.Int (100 + i) |]))
    done;
    (* Tombstones: committed deletes an insert probe must observe. *)
    List.iter
      (fun k ->
        ignore
          (Storage.Table.insert tbl
             (Storage.Record.fresh ~absent:true [| Value.Int k; Value.Int 0 |])))
      [ 100; 101 ];
    tbl
  in
  [| mk (); mk () |]

let apply_both tables txn naive op =
  let run_both f g =
    (* Both sides must agree on whether the operation aborts. *)
    let r =
      try Ok (f ()) with
      | Occ.Txn.Abort m | Occ.Txn.Conflict m -> Error m
    in
    let n = try Ok (g ()) with Occ.Txn.Abort _ -> Error "abort" in
    match r, n with
    | Ok (), Ok () -> true
    | Error _, Error _ -> true
    | _ -> false
  in
  match op with
  | PRead (t, k, c) -> (
    let tbl = tables.(t) in
    match Storage.Table.find tbl [| Value.Int k |] with
    | None -> true
    | Some r ->
      let a = Occ.Txn.read txn ~container:c r in
      let b = Naive.read naive ~container:c r in
      a = b)
  | PWrite (t, k, c, v) -> (
    let tbl = tables.(t) in
    let key = [| Value.Int k |] in
    let data = [| Value.Int k; Value.Int v |] in
    match Occ.Txn.own_insert txn ~table:tbl ~key with
    | Some e ->
      run_both
        (fun () -> Occ.Txn.write txn ~container:c ~table:tbl ~key e.Occ.Txn.wrec data)
        (fun () ->
          match Naive.own_insert naive ~table:tbl ~key with
          | Some ne -> Naive.write naive ~container:c ~table:tbl ~key ne.Naive.nrec data
          | None -> Alcotest.fail "naive missing own insert")
    | None -> (
      match Storage.Table.find tbl key with
      | None -> true
      | Some r ->
        run_both
          (fun () -> Occ.Txn.write txn ~container:c ~table:tbl ~key r data)
          (fun () -> Naive.write naive ~container:c ~table:tbl ~key r data)))
  | PIns (t, k, c, v) ->
    let tbl = tables.(t) in
    run_both
      (fun () -> Occ.Txn.insert txn ~container:c ~table:tbl [| Value.Int k; Value.Int v |])
      (fun () -> Naive.insert naive ~container:c ~table:tbl [| Value.Int k; Value.Int v |])
  | PDel (t, k, c) -> (
    let tbl = tables.(t) in
    let key = [| Value.Int k |] in
    match Occ.Txn.own_insert txn ~table:tbl ~key with
    | Some e ->
      run_both
        (fun () -> Occ.Txn.delete txn ~container:c ~table:tbl ~key e.Occ.Txn.wrec)
        (fun () ->
          match Naive.own_insert naive ~table:tbl ~key with
          | Some ne -> Naive.delete naive ~container:c ~table:tbl ~key ne.Naive.nrec
          | None -> Alcotest.fail "naive missing own insert")
    | None -> (
      match Storage.Table.find tbl key with
      | None -> true
      | Some r ->
        run_both
          (fun () -> Occ.Txn.delete txn ~container:c ~table:tbl ~key r)
          (fun () -> Naive.delete naive ~container:c ~table:tbl ~key r)))
  | PScan (t, lo, hi, c) ->
    let tbl = tables.(t) in
    Storage.Table.range tbl ~lo:[| Value.Int lo |] ~hi:[| Value.Int hi |]
      ~on_node:(fun w ->
        Occ.Txn.note_node txn ~container:c w;
        Naive.note_node naive ~container:c w)
      ~f:(fun _ -> true);
    true

let contexts_agree tables txn naive =
  let ok = ref true in
  let check b = if not b then ok := false in
  for c = 0 to 2 do
    let rr =
      sorted
        (List.map
           (fun (r, obs) -> (r.Storage.Record.rid, obs))
           (Occ.Txn.reads_in txn ~container:c))
    in
    let nr =
      sorted
        (List.map
           (fun (r, obs) -> (r.Storage.Record.rid, obs))
           (Naive.reads_in naive ~container:c))
    in
    check (rr = nr);
    check
      (sorted (List.map wproj_real (Occ.Txn.writes_in txn ~container:c))
      = sorted (List.map wproj_naive (Naive.writes_in naive ~container:c)));
    check
      (List.length (Occ.Txn.nodes_in txn ~container:c)
      = List.length (Naive.nodes_in naive ~container:c));
    check
      (Occ.Txn.ops_in txn ~container:c
      = List.length (Naive.reads_in naive ~container:c)
        + List.length (Naive.writes_in naive ~container:c));
    (* Iterators must agree with the list views they mirror. *)
    let n = ref 0 in
    Occ.Txn.iter_writes_in txn ~container:c ~f:(fun _ -> incr n);
    check (!n = List.length (Occ.Txn.writes_in txn ~container:c));
    n := 0;
    Occ.Txn.iter_reads_in txn ~container:c ~f:(fun _ _ -> incr n);
    check (!n = List.length (Occ.Txn.reads_in txn ~container:c))
  done;
  Array.iter
    (fun tbl ->
      check
        (sorted (Occ.Txn.own_updates_for txn ~table:tbl)
        = sorted (Naive.own_updates_for naive ~table:tbl));
      check
        (sorted (Occ.Txn.own_inserts_for txn ~table:tbl)
        = sorted (Naive.own_inserts_for naive ~table:tbl)))
    tables;
  !ok

let gen_prop_op =
  QCheck.Gen.(
    let table = int_bound 1 in
    let cont = int_bound 2 in
    let pkey = frequency [ (10, int_bound 20); (1, oneofl [ 100; 101 ]) ] in
    frequency
      [
        (3, map3 (fun t k c -> PRead (t, k, c)) table pkey cont);
        ( 3,
          map3 (fun t k (c, v) -> PWrite (t, k, c, v)) table pkey
            (pair cont (int_bound 999)) );
        ( 2,
          map3 (fun t k (c, v) -> PIns (t, k, c, v)) table pkey
            (pair cont (int_bound 999)) );
        (2, map3 (fun t k c -> PDel (t, k, c)) table pkey cont);
        ( 1,
          map3
            (fun t lo c -> PScan (t, lo, lo + 5, c))
            table (int_bound 20) cont );
      ])

let prop_buckets_match_reference =
  QCheck.Test.make ~name:"per-container buckets = naive whole-set reference"
    ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 60) gen_prop_op))
    (fun ops ->
      let tables = prop_tables () in
      let txn = fresh_txn () in
      let naive = Naive.create () in
      List.for_all (fun op -> apply_both tables txn naive op) ops
      && contexts_agree tables txn naive)

(* Deterministic run of the two edge cases the property relies on. *)
let test_bucket_edge_cases () =
  let tables = prop_tables () in
  let txn = fresh_txn () in
  let naive = Naive.create () in
  let ops =
    [
      PIns (0, 50, 1, 7); (* buffered insert in container 1 *)
      PWrite (0, 50, 0, 8); (* write lands on own insert *)
      PDel (0, 50, 2); (* delete of own insert: entry dies *)
      PDel (0, 3, 0); (* delete of committed record *)
      PWrite (0, 3, 0, 9); (* write-after-delete: must abort *)
      PIns (0, 100, 0, 1); (* insert over tombstone: observes it *)
      PRead (1, 4, 1);
      PWrite (1, 4, 1, 11);
    ]
  in
  List.iter
    (fun op -> check_bool "op agrees" true (apply_both tables txn naive op))
    ops;
  check_bool "contexts agree" true (contexts_agree tables txn naive);
  check_int "container 2 has no live writes" 0
    (List.length (Occ.Txn.writes_in txn ~container:2));
  check_int "own inserts of table 0" 1
    (List.length (Occ.Txn.own_inserts_for txn ~table:tables.(0)))

let suite =
  ( "occ",
    [
      Alcotest.test_case "read own writes" `Quick test_read_own_writes;
      Alcotest.test_case "commit installs" `Quick test_commit_installs;
      Alcotest.test_case "write-write conflict" `Quick test_write_write_conflict;
      Alcotest.test_case "blind writes" `Quick test_blind_write_no_conflict;
      Alcotest.test_case "phantom protection" `Quick test_phantom_protection;
      Alcotest.test_case "insert-insert conflict" `Quick test_insert_insert_conflict;
      Alcotest.test_case "duplicate insert aborts" `Quick
        test_insert_existing_aborts_immediately;
      Alcotest.test_case "delete then reinsert" `Quick
        test_delete_then_reinsert_other_txn;
      Alcotest.test_case "2pc prepare/release" `Quick test_2pc_prepare_release;
      Alcotest.test_case "2pc full commit" `Quick test_2pc_full_commit;
      Alcotest.test_case "prepare fails on foreign lock" `Quick
        test_prepare_locked_by_other_fails;
      Alcotest.test_case "reservation blocks insert" `Quick
        test_reserved_insert_blocks_concurrent_insert;
      Alcotest.test_case "write after delete" `Quick test_write_after_delete_rejected;
      Alcotest.test_case "delete own insert" `Quick test_delete_own_insert_cancels;
      Alcotest.test_case "bucket edge cases" `Quick test_bucket_edge_cases;
      QCheck_alcotest.to_alcotest prop_buckets_match_reference;
    ] )
