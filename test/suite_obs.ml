(* Transaction-lifecycle observability: phase vocabulary, traces,
   collector/report semantics, JSON export, and the retry accounting the
   tracer's abort taxonomy drives in both load harnesses. *)

open Util
module DB = Reactdb.Database
module RDb = Runtime.Db

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let check_close msg a b =
  let eps = 1e-9 *. Stdlib.max 1. (Stdlib.max (abs_float a) (abs_float b)) in
  if abs_float (a -. b) > eps then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

(* ---- vocabulary ---- *)

let test_phase_names () =
  check_int "seven phases" 7 Obs.Phase.count;
  check_int "all length" Obs.Phase.count (List.length Obs.Phase.all);
  List.iteri
    (fun i p ->
      check_int "dense index" i (Obs.Phase.index p);
      match Obs.Phase.of_name (Obs.Phase.name p) with
      | Some p' -> check_bool "name round-trip" true (p = p')
      | None -> Alcotest.failf "of_name %s" (Obs.Phase.name p))
    Obs.Phase.all;
  check_str "snake case" "queue_wait" (Obs.Phase.name Obs.Phase.Queue_wait);
  check_bool "unknown name" true (Obs.Phase.of_name "bogus" = None)

let test_abort_kinds () =
  List.iter
    (fun k ->
      match Obs.Abort.kind_of_name (Obs.Abort.kind_name k) with
      | Some k' -> check_bool "kind round-trip" true (k = k')
      | None -> Alcotest.failf "kind_of_name %s" (Obs.Abort.kind_name k))
    Obs.Abort.all_kinds;
  check_bool "conflict transient" true (Obs.Abort.transient Obs.Abort.Conflict);
  check_bool "lock-busy transient" true
    (Obs.Abort.transient Obs.Abort.Lock_busy);
  check_bool "stale-read transient" true
    (Obs.Abort.transient Obs.Abort.Stale_read);
  check_bool "user not transient" false (Obs.Abort.transient Obs.Abort.User);
  check_bool "dangerous not transient" false
    (Obs.Abort.transient Obs.Abort.Dangerous);
  check_bool "internal not transient" false
    (Obs.Abort.transient Obs.Abort.Internal);
  (* schema v2 additions: deadline expiry and admission sheds are typed,
     named, and deliberately NOT transient — retrying an expired budget or
     a shed defeats the point of both mechanisms *)
  check_str "timeout name" "timeout" (Obs.Abort.kind_name Obs.Abort.Timeout);
  check_str "overloaded name" "overloaded"
    (Obs.Abort.kind_name Obs.Abort.Overloaded);
  check_bool "timeout not transient" false
    (Obs.Abort.transient Obs.Abort.Timeout);
  check_bool "overloaded not transient" false
    (Obs.Abort.transient Obs.Abort.Overloaded);
  check_int "ten kinds" 10 Obs.Abort.n_kinds;
  check_int "kinds indexed densely" (Obs.Abort.n_kinds - 1)
    (List.fold_left
       (fun acc k -> max acc (Obs.Abort.kind_index k))
       0 Obs.Abort.all_kinds);
  check_int "schema version bumped for the scheduler rows" 3
    Obs.Report.schema_version;
  check_int "v2 reports stay readable" 2 Obs.Report.min_readable_version

(* ---- traces ---- *)

let test_trace_basics () =
  check_bool "none disabled" false (Obs.Trace.enabled Obs.Trace.none);
  Obs.Trace.add Obs.Trace.none Obs.Phase.Exec 10.;
  check_close "none stays zero" 0. (Obs.Trace.get Obs.Trace.none Obs.Phase.Exec);
  let tr = Obs.Trace.make () in
  check_bool "make enabled" true (Obs.Trace.enabled tr);
  Obs.Trace.add tr Obs.Phase.Exec 5.;
  Obs.Trace.add tr Obs.Phase.Exec 2.5;
  Obs.Trace.add tr Obs.Phase.Validation 1.5;
  Obs.Trace.add tr Obs.Phase.Queue_wait (-3.);
  check_close "accumulates" 7.5 (Obs.Trace.get tr Obs.Phase.Exec);
  check_close "negative clamped" 0. (Obs.Trace.get tr Obs.Phase.Queue_wait);
  check_close "sum_measured" 9. (Obs.Trace.sum_measured tr);
  Obs.Trace.reset tr;
  check_close "reset" 0. (Obs.Trace.sum_measured tr)

(* ---- JSON ---- *)

let test_json_basics () =
  let module J = Obs.Json in
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\n\t\x01");
        ("n", J.Num 1.5);
        ("big", J.Num 1e300);
        ("i", J.Num 42.);
        ("neg", J.Num (-0.125));
        ("b", J.Bool true);
        ("null", J.Null);
        ("l", J.List [ J.Num 1.; J.Str "x"; J.List []; J.Obj [] ]);
      ]
  in
  (match J.of_string (J.to_string v) with
  | Ok v' -> check_bool "compact round-trip" true (v = v')
  | Error e -> Alcotest.failf "parse: %s" e);
  (match J.of_string (J.to_string ~pretty:true v) with
  | Ok v' -> check_bool "pretty round-trip" true (v = v')
  | Error e -> Alcotest.failf "pretty parse: %s" e);
  check_bool "trailing garbage rejected" true
    (Result.is_error (J.of_string "{} x"));
  check_bool "bad literal rejected" true (Result.is_error (J.of_string "nul"));
  check_bool "unterminated string rejected" true
    (Result.is_error (J.of_string "\"abc"));
  check_str "integral printed without point" "42" (J.to_string (J.Num 42.));
  match J.of_string "{\"a\": [1, 2.5, \"\\u0041\"]}" with
  | Ok (J.Obj [ ("a", J.List [ J.Num 1.; J.Num 2.5; J.Str "A" ]) ]) -> ()
  | Ok v -> Alcotest.failf "unexpected parse: %s" (J.to_string v)
  | Error e -> Alcotest.failf "parse: %s" e

(* ---- collector / report ---- *)

(* A deterministic synthetic history: phases sum below latency, so the
   overhead remainder absorbs the difference exactly. *)
let synthetic_collector () =
  let c = Obs.Collector.create ~clock:Obs.Virtual ~containers:2 () in
  (* 3 commits on container 0. *)
  for i = 1 to 3 do
    let tr = Obs.Collector.trace c in
    Obs.Trace.add tr Obs.Phase.Exec (10. *. float_of_int i);
    Obs.Trace.add tr Obs.Phase.Validation 2.;
    Obs.Collector.record_commit c ~container:0
      ~latency_us:((10. *. float_of_int i) +. 2. +. 5.)
      tr
  done;
  (* 1 cross-container commit on container 1, retry index 1. *)
  let tr = Obs.Collector.trace c in
  Obs.Trace.add tr Obs.Phase.Exec 4.;
  Obs.Trace.add tr Obs.Phase.Suspend_wait 6.;
  Obs.Trace.add tr Obs.Phase.Commit 3.;
  Obs.Collector.record_commit c ~container:1 ~participants:2 ~retry:1
    ~latency_us:20. tr;
  (* 2 aborts on container 1. *)
  let tr = Obs.Collector.trace c in
  Obs.Trace.add tr Obs.Phase.Exec 1.;
  Obs.Collector.record_abort c ~container:1 ~latency_us:2.
    ~cause:(Obs.Abort.cause ~participants:2 Obs.Abort.Lock_busy)
    tr;
  let tr = Obs.Collector.trace c in
  Obs.Collector.record_abort c ~container:1 ~latency_us:1.
    ~cause:(Obs.Abort.cause ~retry:2 Obs.Abort.User)
    tr;
  c

let test_report_summarize () =
  let r = Obs.Report.summarize (synthetic_collector ()) in
  check_str "clock" "virtual" r.Obs.Report.r_clock;
  check_int "attempts" 6 r.Obs.Report.r_attempts;
  check_int "commits" 4 r.Obs.Report.r_commits;
  check_int "aborts" 2 r.Obs.Report.r_aborts;
  check_int "retried attempts" 2 r.Obs.Report.r_retries;
  check_close "max dev 0" 0. r.Obs.Report.r_max_sum_dev_pct;
  let total_lat = 17. +. 27. +. 37. +. 20. +. 2. +. 1. in
  check_close "mean latency" (total_lat /. 6.) r.Obs.Report.r_mean_latency_us;
  let phase_sum =
    List.fold_left
      (fun acc p -> acc +. p.Obs.Report.pr_sum_us)
      0. r.Obs.Report.r_phases
  in
  check_close "phases partition total latency" total_lat phase_sum;
  let row p =
    List.find
      (fun x -> x.Obs.Report.pr_phase = Obs.Phase.name p)
      r.Obs.Report.r_phases
  in
  check_close "exec sum" 65. (row Obs.Phase.Exec).Obs.Report.pr_sum_us;
  check_int "exec occurrences" 5 (row Obs.Phase.Exec).Obs.Report.pr_count;
  check_close "suspend sum" 6.
    (row Obs.Phase.Suspend_wait).Obs.Report.pr_sum_us;
  check_close "overhead sum"
    (15. +. 7. +. 1. +. 1.)
    (row Obs.Phase.Overhead).Obs.Report.pr_sum_us;
  check_bool "abort kinds" true
    (List.sort compare r.Obs.Report.r_aborts_by_kind
    = [ ("lock-busy", 1); ("user", 1) ]);
  check_bool "participants hist" true
    (List.assoc 2 r.Obs.Report.r_participants = 2);
  check_bool "retry hist has index 2" true
    (List.assoc 2 r.Obs.Report.r_retry_hist = 1);
  let table = Obs.Report.to_table r in
  List.iter
    (fun p ->
      check_bool ("table mentions " ^ Obs.Phase.name p) true
        (let name = Obs.Phase.name p in
         let rec find i =
           i + String.length name <= String.length table
           && (String.sub table i (String.length name) = name || find (i + 1))
         in
         find 0))
    Obs.Phase.all

let test_overcount_detected () =
  let c = Obs.Collector.create ~clock:Obs.Wall ~containers:1 () in
  let tr = Obs.Collector.trace c in
  Obs.Trace.add tr Obs.Phase.Exec 110.;
  (* measured 110 > latency 100: a double-count; remainder goes negative. *)
  Obs.Collector.record_commit c ~container:0 ~latency_us:100. tr;
  let r = Obs.Report.summarize c in
  check_bool "deviation surfaces" true
    (r.Obs.Report.r_max_sum_dev_pct > 9.9
    && r.Obs.Report.r_max_sum_dev_pct < 10.1)

let test_report_json_roundtrip () =
  let r = Obs.Report.summarize (synthetic_collector ()) in
  (match Obs.Report.of_json (Obs.Report.to_json r) with
  | Ok r' -> check_bool "exact round-trip" true (r = r')
  | Error e -> Alcotest.failf "of_json: %s" e);
  (* Version policy: an unknown schema_version is rejected. *)
  match Obs.Report.to_json r with
  | Obs.Json.Obj fields ->
    let bumped =
      Obs.Json.Obj
        (List.map
           (function
             | "schema_version", _ -> ("schema_version", Obs.Json.Num 999.)
             | kv -> kv)
           fields)
    in
    check_bool "unknown version rejected" true
      (Result.is_error (Obs.Report.of_json bumped))
  | _ -> Alcotest.fail "to_json not an object"

(* Backwards compatibility: a v2 document (no "scheduler" field) still
   loads, with empty scheduler rows; and v3 sched rows survive a
   round-trip. *)
let test_report_v2_readable () =
  let r = Obs.Report.summarize (synthetic_collector ()) in
  (match Obs.Report.to_json r with
  | Obs.Json.Obj fields ->
    let v2 =
      Obs.Json.Obj
        (List.filter_map
           (function
             | "schema_version", _ ->
               Some ("schema_version", Obs.Json.Num 2.)
             | "scheduler", _ -> None
             | kv -> Some kv)
           fields)
    in
    (match Obs.Report.of_json v2 with
    | Ok r2 ->
      check_bool "v2 loads with no sched rows" true
        (r2 = { r with Obs.Report.r_sched = [] })
    | Error e -> Alcotest.failf "v2 rejected: %s" e)
  | _ -> Alcotest.fail "to_json not an object");
  (* v3 with sched rows round-trips *)
  let c = synthetic_collector () in
  Obs.Collector.set_sched c ~container:1 ~steals_in:3 ~steals_out:0
    ~routed_by_cost:7 ~qdepth_ewma:2.5;
  let r3 = Obs.Report.summarize c in
  (match r3.Obs.Report.r_sched with
  | [ s ] ->
    check_int "sched container" 1 s.Obs.Report.sr_container;
    check_int "sched steals_in" 3 s.Obs.Report.sr_steals_in;
    check_int "sched routed_by_cost" 7 s.Obs.Report.sr_routed_by_cost
  | l -> Alcotest.failf "expected one sched row, got %d" (List.length l));
  match Obs.Report.of_json (Obs.Report.to_json r3) with
  | Ok r' -> check_bool "v3 sched rows round-trip" true (r' = r3)
  | Error e -> Alcotest.failf "of_json: %s" e

(* ---- QCheck: generated traces ---- *)

let gen_attempt =
  QCheck.Gen.(
    let dur = oneof [ return 0.; float_bound_inclusive 1000. ] in
    let* phases = array_size (return 6) dur in
    let* extra = float_bound_inclusive 50. in
    let* container = int_bound 2 in
    let* commit = bool in
    let* retry = int_bound 3 in
    let* participants = 1 -- 4 in
    let* kind = oneofl Obs.Abort.all_kinds in
    return (phases, extra, container, commit, retry, participants, kind))

let measured_phases =
  List.filter (fun p -> p <> Obs.Phase.Overhead) Obs.Phase.all

let build_collector attempts =
  let c = Obs.Collector.create ~clock:Obs.Virtual ~containers:3 () in
  List.iter
    (fun (phases, extra, container, commit, retry, participants, kind) ->
      let tr = Obs.Collector.trace c in
      List.iteri (fun i p -> Obs.Trace.add tr p phases.(i)) measured_phases;
      let latency_us = Obs.Trace.sum_measured tr +. extra in
      if commit then
        Obs.Collector.record_commit c ~container ~participants ~retry
          ~latency_us tr
      else
        Obs.Collector.record_abort c ~container ~latency_us
          ~cause:(Obs.Abort.cause ~participants ~retry kind)
          tr)
    attempts;
  c

(* Non-negative per-phase durations, and phase sums equal to the summed
   end-to-end latency within float rounding (latency >= measured by
   construction, so the overhead remainder absorbs the rest exactly). *)
let prop_phase_partition =
  QCheck.Test.make ~name:"phases partition latency" ~count:200
    (QCheck.make QCheck.Gen.(list_size (1 -- 60) gen_attempt))
    (fun attempts ->
      let r = Obs.Report.summarize (build_collector attempts) in
      let total_lat =
        List.fold_left
          (fun acc (phases, extra, _, _, _, _, _) ->
            acc +. Array.fold_left ( +. ) extra phases)
          0. attempts
      in
      let phase_sum =
        List.fold_left
          (fun acc p ->
            if p.Obs.Report.pr_sum_us < 0. then
              QCheck.Test.fail_reportf "negative phase sum %s"
                p.Obs.Report.pr_phase;
            acc +. p.Obs.Report.pr_sum_us)
          0. r.Obs.Report.r_phases
      in
      let eps = 1e-6 *. Stdlib.max 1. total_lat in
      if abs_float (phase_sum -. total_lat) > eps then
        QCheck.Test.fail_reportf "phase sum %.17g <> latency sum %.17g"
          phase_sum total_lat;
      if r.Obs.Report.r_max_sum_dev_pct > 1e-6 then
        QCheck.Test.fail_reportf "unexpected sum deviation %.17g"
          r.Obs.Report.r_max_sum_dev_pct;
      r.Obs.Report.r_attempts = List.length attempts)

(* ---- QCheck: overlapping awaits never double-count Suspend_wait ---- *)

(* Model of the engines' await attribution (database.ml await_sub /
   db.ml await_sub): the root fiber consumes futures one get at a time; a
   get on a future resolving at absolute time [c] past the cursor [t]
   blocks the fiber for [c - t] and advances the cursor to [c], while an
   already-resolved future is peeked for free. Futures whose in-flight
   windows overlap therefore contribute the *union* of their windows to
   Suspend_wait, never the sum — the fiber is physically blocked at most
   once at any instant. The property drives this fold over arbitrary
   overlapping windows and random consumption orders (collect consumes in
   list order; implicit sync in reverse issue order — both are covered by
   random permutations), then pushes the result through the real
   Trace/Collector arithmetic: the Exec residual (body minus waits, the
   engines' subtraction) must never go negative, Suspend_wait must fit
   inside the post-work body window, and phase sums must still partition
   the end-to-end latency exactly. A naive per-future sum would fail all
   three as soon as two windows overlap. *)
let gen_overlapping_waits =
  QCheck.Gen.(
    let* n = 1 -- 6 in
    let* spans =
      list_size (return n)
        (pair (float_bound_inclusive 500.) (float_bound_inclusive 300.))
    in
    let* order = shuffle_l (List.init n Fun.id) in
    let* work = float_bound_inclusive 200. in
    let* extra = float_bound_inclusive 50. in
    return (spans, order, work, extra))

let prop_no_suspend_double_count =
  QCheck.Test.make ~name:"overlapping waits: suspend is a union, not a sum"
    ~count:300
    (QCheck.make gen_overlapping_waits)
    (fun (spans, order, work, extra) ->
      (* absolute resolve time of each future: request offset + in-flight
         duration (offsets and durations overlap freely) *)
      let completions =
        List.map (fun (req, dur) -> req +. dur) spans |> Array.of_list
      in
      (* the engines' consumption fold: blocked window only past cursor *)
      let cursor, suspend =
        List.fold_left
          (fun (t, acc) i ->
            let c = completions.(i) in
            if c > t then (c, acc +. (c -. t)) else (t, acc))
          (work, 0.) order
      in
      let max_c = Array.fold_left Stdlib.max 0. completions in
      if suspend < 0. then QCheck.Test.fail_reportf "negative suspend";
      let eps = 1e-9 *. Stdlib.max 1. (work +. max_c) in
      (* cursor lands on the latest consumed completion (or stays at the
         end of the body work when everything already resolved) *)
      if cursor > Stdlib.max work max_c +. eps then
        QCheck.Test.fail_reportf "cursor %.17g beyond window end" cursor;
      (* union bound: all blocked segments are disjoint and live after the
         body work, so their total fits the post-work window — the naive
         per-future sum does not whenever windows overlap *)
      if suspend > cursor -. work +. eps then
        QCheck.Test.fail_reportf "suspend %.17g exceeds post-work window %.17g"
          suspend (cursor -. work);
      let exec = cursor -. suspend in
      if exec < -.eps then
        QCheck.Test.fail_reportf "negative exec residual %.17g" exec;
      (* the real collector arithmetic still partitions latency exactly *)
      let c = Obs.Collector.create ~clock:Obs.Virtual ~containers:1 () in
      let tr = Obs.Collector.trace c in
      Obs.Trace.add tr Obs.Phase.Suspend_wait suspend;
      Obs.Trace.add tr Obs.Phase.Exec exec;
      let latency_us = cursor +. extra in
      Obs.Collector.record_commit c ~container:0 ~participants:1 ~retry:0
        ~latency_us tr;
      let r = Obs.Report.summarize c in
      List.iter
        (fun p ->
          if p.Obs.Report.pr_sum_us < 0. then
            QCheck.Test.fail_reportf "negative phase sum %s"
              p.Obs.Report.pr_phase)
        r.Obs.Report.r_phases;
      if r.Obs.Report.r_max_sum_dev_pct > 1e-6 then
        QCheck.Test.fail_reportf "sum deviation %.17g"
          r.Obs.Report.r_max_sum_dev_pct;
      let sus =
        List.find
          (fun p -> p.Obs.Report.pr_phase = "suspend_wait")
          r.Obs.Report.r_phases
      in
      abs_float (sus.Obs.Report.pr_sum_us -. suspend) <= eps)

(* The JSON export round-trips exactly through the same printer/parser
   pair predictability.exe uses to read reports back. *)
let prop_json_roundtrip =
  QCheck.Test.make ~name:"report JSON round-trips through text" ~count:100
    (QCheck.make QCheck.Gen.(list_size (1 -- 40) gen_attempt))
    (fun attempts ->
      let r = Obs.Report.summarize (build_collector attempts) in
      let text = Obs.Json.to_string ~pretty:true (Obs.Report.to_json r) in
      match Obs.Json.of_string text with
      | Error e -> QCheck.Test.fail_reportf "reparse failed: %s" e
      | Ok j -> (
        match Obs.Report.of_json j with
        | Error e -> QCheck.Test.fail_reportf "of_json failed: %s" e
        | Ok r' -> r = r'))

(* ---- end-to-end: simulator backend ---- *)

let test_simulator_traced_run () =
  let n = 8 in
  Testlib.with_db ~n (Testlib.sn_config n) (fun db ->
      let c =
        Obs.Collector.create ~clock:Obs.Virtual
          ~containers:(Reactdb.Config.n_containers (DB.config db))
          ()
      in
      DB.attach_obs db c;
      Testlib.run_conflict_workload ~accounts:n db ~workers:4 ~per_worker:25;
      let r = Obs.Report.summarize c in
      check_int "every attempt traced"
        (DB.n_committed db + DB.n_aborted db)
        r.Obs.Report.r_attempts;
      check_int "commits agree" (DB.n_committed db) r.Obs.Report.r_commits;
      check_bool "phase sums within 1%" true
        (r.Obs.Report.r_max_sum_dev_pct <= 1.);
      check_bool "made progress" true (r.Obs.Report.r_commits > 0);
      let exec =
        List.find
          (fun p -> p.Obs.Report.pr_phase = "exec")
          r.Obs.Report.r_phases
      in
      check_bool "exec observed on every attempt" true
        (exec.Obs.Report.pr_count = r.Obs.Report.r_attempts))

(* ---- end-to-end: runtime backend, retry accounting ---- *)

(* High-contention YCSB multi-update across 2 domains: transient
   validation aborts occur, and with retries enabled the attempt-level
   counters must satisfy commits + aborts = logical + retries. *)
let test_runtime_retry_accounting () =
  let nk = 8 in
  let groups =
    let keys = Workloads.Ycsb.keys nk in
    let a = Array.of_list keys in
    let half = Array.length a / 2 in
    [ Array.to_list (Array.sub a 0 half);
      Array.to_list (Array.sub a half (Array.length a - half)) ]
  in
  let cfg = Reactdb.Config.shared_nothing groups in
  let db = RDb.start (Workloads.Ycsb.decl ~keys:nk ()) cfg in
  let c =
    Obs.Collector.create ~clock:Obs.Wall ~containers:(RDb.n_domains db) ()
  in
  RDb.attach_obs db c;
  let p = Workloads.Ycsb.params ~txn_keys:4 ~theta:0.9 nk in
  let logical = 4 * 60 in
  let retries =
    RDb.Load.run_fixed ~max_retries:5 db ~n_workers:4 ~per_worker:60 ~seed:5
      (fun _ rng ->
        Workloads.Ycsb.gen_multi_update rng p
          ~container_of:(RDb.container_of db))
  in
  check_int "attempts = logical + retries" (logical + retries)
    (RDb.n_committed db + RDb.n_aborted db);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  let r = Obs.Report.summarize c in
  check_int "every attempt traced" (logical + retries)
    r.Obs.Report.r_attempts;
  check_int "retried attempts agree" retries r.Obs.Report.r_retries;
  check_bool "phase sums within 1%" true
    (r.Obs.Report.r_max_sum_dev_pct <= 1.);
  (* All aborts under retry exhaustion must be transient kinds here: the
     workload never calls Txn.abort and has no dangerous call pairs. *)
  List.iter
    (fun (kind, _) ->
      match Obs.Abort.kind_of_name kind with
      | Some k -> check_bool ("transient " ^ kind) true (Obs.Abort.transient k)
      | None -> Alcotest.failf "unknown kind %s" kind)
    r.Obs.Report.r_aborts_by_kind

(* With retries disabled, run_fixed reports zero retries and exact
   attempt counts (regression test for the accounting unification). *)
let test_runtime_no_retry_accounting () =
  let n = 16 in
  let groups =
    let a = Array.of_list (Workloads.Smallbank.customers n) in
    let half = Array.length a / 2 in
    [ Array.to_list (Array.sub a 0 half);
      Array.to_list (Array.sub a half (Array.length a - half)) ]
  in
  let db =
    RDb.start
      (Workloads.Smallbank.decl ~customers:n ())
      (Reactdb.Config.shared_nothing groups)
  in
  let retries =
    RDb.Load.run_fixed db ~n_workers:4 ~per_worker:25 ~seed:3 (fun _ rng ->
        Workloads.Smallbank.gen_conserving rng ~n)
  in
  check_int "no retries requested" 0 retries;
  check_int "exact attempts" 100 (RDb.n_committed db + RDb.n_aborted db);
  RDb.shutdown db

(* Harness.run_load with retries on a contended simulated bank: retried
   attempts carry transient causes only, and the retry counter moves. *)
let test_harness_retry_accounting () =
  let n = 4 in
  let eng = Sim.Engine.create () in
  let db =
    Reactdb.Database.create eng (Testlib.bank_decl n) (Testlib.sn_config n)
      Reactdb.Profile.default
  in
  let gen _w rng =
    let src = Rng.int rng n in
    let dst = Rng.pick_except rng n src in
    { Workloads.Wl.reactor = Printf.sprintf "acct%d" src;
      proc = "transfer_to";
      args =
        [ Value.Str (Printf.sprintf "acct%d" dst); Value.Float 1. ] }
  in
  let r =
    Harness.run_load db
      (Harness.spec ~epochs:5 ~epoch_us:5_000. ~warmup_epochs:1
         ~max_retries:3 ~n_workers:8 gen)
  in
  check_bool "contention produced retries" true (r.Harness.retries > 0);
  check_bool "retries bounded by aborts" true
    (r.Harness.retries <= r.Harness.aborted + 8 * 4)

let suite =
  ( "obs",
    [
      Alcotest.test_case "phase vocabulary" `Quick test_phase_names;
      Alcotest.test_case "abort taxonomy" `Quick test_abort_kinds;
      Alcotest.test_case "trace basics" `Quick test_trace_basics;
      Alcotest.test_case "json basics" `Quick test_json_basics;
      Alcotest.test_case "report summarize" `Quick test_report_summarize;
      Alcotest.test_case "overcount detected" `Quick test_overcount_detected;
      Alcotest.test_case "report json round-trip" `Quick
        test_report_json_roundtrip;
      Alcotest.test_case "v2 reports readable, v3 sched rows" `Quick
        test_report_v2_readable;
      QCheck_alcotest.to_alcotest prop_phase_partition;
      QCheck_alcotest.to_alcotest prop_no_suspend_double_count;
      QCheck_alcotest.to_alcotest prop_json_roundtrip;
      Alcotest.test_case "simulator traced run" `Quick
        test_simulator_traced_run;
      Alcotest.test_case "runtime retry accounting" `Quick
        test_runtime_retry_accounting;
      Alcotest.test_case "runtime no-retry accounting" `Quick
        test_runtime_no_retry_accounting;
      Alcotest.test_case "harness retry accounting" `Quick
        test_harness_retry_accounting;
    ] )
