(* Unit and property tests for lib/util. *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_value_order () =
  let open Value in
  check_int "int order" (-1) (compare (Int 1) (Int 2));
  check_int "str order" 1 (compare (Str "b") (Str "a"));
  check_int "null smallest" (-1) (compare Null (Bool false));
  check_int "cross-type by tag" (-1) (compare (Int 5) (Float 0.));
  check_bool "equal" true (equal (Str "x") (Str "x"));
  check_bool "nan self-compare" true (compare (Float Float.nan) (Float Float.nan) = 0)

let test_value_access () =
  let open Value in
  check_int "to_int" 42 (to_int (Int 42));
  Alcotest.(check (float 1e-9)) "to_number widens" 7. (to_number (Int 7));
  Alcotest.check_raises "type error" (Type_error "expected int, got \"x\"")
    (fun () -> ignore (to_int (Str "x")));
  check_bool "conforms null" true (conforms Null TInt);
  check_bool "conforms mismatch" false (conforms (Int 1) TStr)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 8 in
  let distinct = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then distinct := true
  done;
  check_bool "different seed different stream" true !distinct

let test_rng_ranges () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int_incl r 5 10 in
    check_bool "int_incl in range" true (v >= 5 && v <= 10);
    let f = Rng.float r 3. in
    check_bool "float in range" true (f >= 0. && f < 3.);
    let p = Rng.pick_except r 10 4 in
    check_bool "pick_except" true (p <> 4 && p >= 0 && p < 10)
  done

let test_rng_streams () =
  (* same (seed, index) => same sequence *)
  let a = Rng.stream ~seed:42 3 and b = Rng.stream ~seed:42 3 in
  for _ = 1 to 100 do
    check_int "stream deterministic" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done;
  (* different indexes of one seed are independent streams *)
  let outputs =
    List.init 16 (fun i ->
        let r = Rng.stream ~seed:42 i in
        List.init 8 (fun _ -> Rng.int r 1_000_000))
  in
  let distinct = List.sort_uniq compare outputs in
  check_int "16 streams all distinct" 16 (List.length distinct);
  (* stream 0 is not the plain generator of the same seed *)
  let s0 = Rng.stream ~seed:42 0 and plain = Rng.create 42 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Rng.int s0 1_000_000 <> Rng.int plain 1_000_000 then differs := true
  done;
  check_bool "stream 0 distinct from create" true !differs;
  check_bool "negative index rejected" true
    (try ignore (Rng.stream ~seed:1 (-1)); false
     with Invalid_argument _ -> true)

let test_reservoir_exact () =
  (* while seen <= cap the reservoir is the whole stream: exact percentiles *)
  let r = Stats.Reservoir.create 100 in
  for i = 1 to 100 do
    Stats.Reservoir.add r (float_of_int i)
  done;
  check_int "seen" 100 (Stats.Reservoir.seen r);
  check_int "size" 100 (Stats.Reservoir.size r);
  Alcotest.(check (float 1e-9)) "p50" 50. (Stats.Reservoir.percentile r 50.);
  Alcotest.(check (float 1e-9)) "p95" 95. (Stats.Reservoir.percentile r 95.);
  Alcotest.(check (float 1e-9)) "p99" 99. (Stats.Reservoir.percentile r 99.);
  Alcotest.(check (float 1e-9)) "p100" 100. (Stats.Reservoir.percentile r 100.)

let test_reservoir_sampled () =
  (* beyond cap: a uniform sample of a known distribution keeps percentile
     estimates near truth *)
  let r = Stats.Reservoir.create ~seed:9 512 in
  for i = 1 to 100_000 do
    Stats.Reservoir.add r (float_of_int (i mod 1000))
  done;
  check_int "seen counts stream" 100_000 (Stats.Reservoir.seen r);
  check_int "size bounded by cap" 512 (Stats.Reservoir.size r);
  let p50 = Stats.Reservoir.percentile r 50. in
  check_bool "p50 near 500" true (Float.abs (p50 -. 500.) < 100.);
  let p95 = Stats.Reservoir.percentile r 95. in
  check_bool "p95 near 950" true (Float.abs (p95 -. 950.) < 50.);
  check_bool "ordered" true (p50 <= p95)

let test_reservoir_empty () =
  let r = Stats.Reservoir.create 8 in
  Alcotest.(check (float 1e-9)) "empty percentile" 0.
    (Stats.Reservoir.percentile r 50.);
  check_bool "cap must be positive" true
    (try ignore (Stats.Reservoir.create 0); false
     with Invalid_argument _ -> true)

let test_rng_uniformity () =
  let r = Rng.create 99 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c ->
      check_bool "bucket within 10% of expected" true
        (abs (c - (n / 10)) < n / 100))
    counts

let test_nurand () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.nurand r ~a:255 ~c:123 ~x:0 ~y:999 in
    check_bool "nurand in [x,y]" true (v >= 0 && v <= 999)
  done

let test_zipf_bounds () =
  let r = Rng.create 5 in
  List.iter
    (fun theta ->
      let g = Rng.Zipf.create ~n:100 ~theta in
      for _ = 1 to 2000 do
        let v = Rng.Zipf.next r g in
        check_bool "zipf in range" true (v >= 0 && v < 100)
      done)
    [ 0.01; 0.5; 0.99; 1.0; 2.0; 5.0 ]

let test_zipf_skew () =
  let r = Rng.create 11 in
  let freq0 theta =
    let g = Rng.Zipf.create ~n:1000 ~theta in
    let c = ref 0 in
    for _ = 1 to 20_000 do
      if Rng.Zipf.next r g = 0 then incr c
    done;
    !c
  in
  let low = freq0 0.01 and mid = freq0 0.99 and high = freq0 5.0 in
  check_bool "higher theta concentrates on item 0" true (low < mid && mid < high);
  check_bool "theta=5 almost always item 0" true (high > 19_000)

let test_zipf_single () =
  let r = Rng.create 2 in
  let g = Rng.Zipf.create ~n:1 ~theta:0.99 in
  for _ = 1 to 10 do
    check_int "n=1 always 0" 0 (Rng.Zipf.next r g)
  done

let test_stats_basic () =
  let s = Stats.of_list [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-6)) "stddev" 1.2909944487 (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "min" 1. (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4. (Stats.max s);
  check_int "count" 4 (Stats.count s);
  Alcotest.(check (float 1e-9)) "p50" 2. (Stats.percentile s 50.);
  Alcotest.(check (float 1e-9)) "p100" 4. (Stats.percentile s 100.)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check (float 1e-9)) "mean of empty" 0. (Stats.mean s);
  Alcotest.(check (float 1e-9)) "stddev of empty" 0. (Stats.stddev s);
  Alcotest.(check (float 1e-9)) "percentile of empty" 0. (Stats.percentile s 50.)

let test_stats_merge () =
  let a = Stats.of_list [ 1.; 2. ] and b = Stats.of_list [ 3. ] in
  let m = Stats.merge a b in
  check_int "merged count" 3 (Stats.count m);
  Alcotest.(check (float 1e-9)) "merged mean" 2. (Stats.mean m)

let test_histogram () =
  let h = Stats.Histogram.create ~lo:0. ~hi:10. ~buckets:10 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.7; 9.9; -5.; 100. ];
  let c = Stats.Histogram.counts h in
  check_int "bucket 0 gets 0.5 and clamped -5" 2 c.(0);
  check_int "bucket 1" 2 c.(1);
  check_int "last bucket gets 9.9 and clamped 100" 2 c.(9);
  check_int "total" 6 (Stats.Histogram.total h)

let test_tablefmt () =
  let t = Tablefmt.create ~title:"T" [ "a"; "b" ] in
  Tablefmt.row t [ "x"; "1" ];
  Tablefmt.row t [ "longer"; "22" ];
  let s = Tablefmt.to_string t in
  check_bool "has title" true (String.length s > 0 && String.sub s 0 4 = "== T");
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Tablefmt.row: arity mismatch") (fun () ->
      Tablefmt.row t [ "only-one" ])

(* Property: stats mean/stddev agree with a direct fold. *)
let prop_stats_mean =
  QCheck.Test.make ~name:"stats mean matches direct computation" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
    (fun xs ->
      let s = Util.Stats.of_list xs in
      let direct = List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs) in
      Float.abs (Util.Stats.mean s -. direct) < 1e-6)

let prop_zipf_theta0_uniformish =
  QCheck.Test.make ~name:"zipf theta~0 is near-uniform" ~count:5
    QCheck.(int_range 10 50)
    (fun n ->
      let r = Util.Rng.create n in
      let g = Util.Rng.Zipf.create ~n ~theta:0.01 in
      let counts = Array.make n 0 in
      let draws = 20_000 in
      for _ = 1 to draws do
        let v = Util.Rng.Zipf.next r g in
        counts.(v) <- counts.(v) + 1
      done;
      (* every bucket within 3x of the uniform expectation *)
      Array.for_all (fun c -> c < 3 * draws / n + 10) counts)

let test_strutil_contains () =
  let has s sub = Strutil.contains s ~sub in
  check_bool "empty sub" true (has "abc" "");
  check_bool "empty both" true (has "" "");
  check_bool "sub in empty" false (has "" "x");
  check_bool "at start" true (has "duplicate key (own insert)" "duplicate key");
  check_bool "in middle" true (has "xduplicate keyx" "duplicate key");
  check_bool "at end" true (has "abc" "bc");
  check_bool "whole" true (has "abc" "abc");
  check_bool "absent" false (has "abc" "abd");
  check_bool "longer than s" false (has "ab" "abc");
  check_bool "repeated prefix" true (has "aaaab" "aaab");
  check_bool "almost repeated" false (has "aabaab" "aaab");
  check_bool "prefix yes" true (Strutil.has_prefix "dangerous call" ~prefix:"dangerous");
  check_bool "prefix no" false (Strutil.has_prefix "danger" ~prefix:"dangerous")

(* Reference: the allocation-per-position scan this helper replaced. *)
let prop_strutil_matches_naive =
  QCheck.Test.make ~name:"Strutil.contains = naive substring scan" ~count:500
    QCheck.(pair (string_of_size Gen.(int_bound 12)) (string_of_size Gen.(int_bound 4)))
    (fun (s, sub) ->
      let naive =
        let n = String.length sub and l = String.length s in
        let rec go i = i + n <= l && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Strutil.contains s ~sub = naive)

let test_vec_basics () =
  let v = Vec.create () in
  check_bool "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "get" 42 (Vec.get v 42);
  check_bool "get oob" true
    (try ignore (Vec.get v 100); false with Invalid_argument _ -> true);
  Alcotest.(check (list int)) "to_list order" (List.init 100 Fun.id) (Vec.to_list v);
  check_int "fold" 4950 (Vec.fold_left ( + ) 0 v);
  check_bool "exists" true (Vec.exists (fun x -> x = 77) v);
  check_bool "for_all" true (Vec.for_all (fun x -> x < 100) v);
  let sum = ref 0 in
  Vec.iter (fun x -> sum := !sum + x) v;
  check_int "iter" 4950 !sum;
  check_int "to_array" 99 (Vec.to_array v).(99);
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v);
  Vec.push v 7;
  check_int "push after clear" 7 (Vec.get v 0)

(* --- Backoff: deterministic, monotone, capped (the three properties the
   retry loops rely on — see lib/util/backoff.mli) --- *)

let backoff_policy_gen =
  QCheck.make
    QCheck.Gen.(
      map4
        (fun base mult cap jit ->
          Backoff.make ~base_us:base ~multiplier:mult ~cap_us:cap ~jitter:jit
            ())
        (float_range 0.1 5000.) (float_range 0.5 4.) (float_range 10. 1e6)
        (float_range (-0.5) 1.5))

let prop_backoff =
  QCheck.Test.make
    ~name:"backoff: deterministic per seed, monotone in attempt, capped"
    ~count:200
    QCheck.(pair backoff_policy_gen small_signed_int)
    (fun (p, seed) ->
      let d k = Backoff.delay_us p ~seed ~attempt:k in
      let deterministic = List.for_all (fun k -> d k = d k) [ 1; 2; 5; 9 ] in
      let monotone =
        List.for_all (fun k -> d (k + 1) >= d k) [ 1; 2; 3; 4; 5; 6; 7; 8 ]
      in
      let capped =
        List.for_all
          (fun k -> d k <= p.Backoff.cap_us && d k >= 0.)
          [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 30 ]
      in
      deterministic && monotone && capped && d 0 = 0. && d (-3) = 0.)

let test_backoff_default () =
  let p = Backoff.default in
  let d1 = Backoff.delay_us p ~seed:7 ~attempt:1 in
  check_bool "first retry at least base" true (d1 >= p.Backoff.base_us);
  check_bool "first retry within jitter band" true
    (d1 <= p.Backoff.base_us *. (1. +. p.Backoff.jitter));
  check_bool "deep retries hit the cap" true
    (Backoff.delay_us p ~seed:7 ~attempt:30 = p.Backoff.cap_us);
  check_bool "seeds decorrelate" true
    (Backoff.delay_us p ~seed:1 ~attempt:3
    <> Backoff.delay_us p ~seed:2 ~attempt:3)

let suite =
  ( "util",
    [
      Alcotest.test_case "value ordering" `Quick test_value_order;
      Alcotest.test_case "strutil contains" `Quick test_strutil_contains;
      Alcotest.test_case "vec basics" `Quick test_vec_basics;
      QCheck_alcotest.to_alcotest prop_strutil_matches_naive;
      Alcotest.test_case "value accessors" `Quick test_value_access;
      Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng streams" `Quick test_rng_streams;
      Alcotest.test_case "reservoir exact" `Quick test_reservoir_exact;
      Alcotest.test_case "reservoir sampled" `Quick test_reservoir_sampled;
      Alcotest.test_case "reservoir empty" `Quick test_reservoir_empty;
      Alcotest.test_case "rng ranges" `Quick test_rng_ranges;
      Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
      Alcotest.test_case "nurand bounds" `Quick test_nurand;
      Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
      Alcotest.test_case "zipf skew ordering" `Quick test_zipf_skew;
      Alcotest.test_case "zipf n=1" `Quick test_zipf_single;
      Alcotest.test_case "stats basics" `Quick test_stats_basic;
      Alcotest.test_case "stats empty" `Quick test_stats_empty;
      Alcotest.test_case "stats merge" `Quick test_stats_merge;
      Alcotest.test_case "histogram" `Quick test_histogram;
      Alcotest.test_case "tablefmt" `Quick test_tablefmt;
      QCheck_alcotest.to_alcotest prop_stats_mean;
      QCheck_alcotest.to_alcotest prop_zipf_theta0_uniformish;
      Alcotest.test_case "backoff defaults" `Quick test_backoff_default;
      QCheck_alcotest.to_alcotest prop_backoff;
    ] )
