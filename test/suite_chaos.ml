(* Tests for the seeded fault injector (lib/chaos): determinism per seed,
   hit-probability extremes, delay bounds, kind targeting, CLI parsing. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let draws c kind n = List.init n (fun _ -> Chaos.draw_us c kind)

let test_none_inactive () =
  check_bool "none is inactive" false (Chaos.is_active Chaos.none);
  check_bool "none never fires" true
    (List.for_all Option.is_none (draws Chaos.none Chaos.Stall_domain 100));
  check_int "none counts no probes" 0 (Chaos.probes Chaos.none);
  check_bool "none renders" true (Chaos.to_string Chaos.none = "none")

let test_deterministic_per_seed () =
  let run () =
    let c =
      Chaos.make ~seed:99 ~kind:Chaos.Delay_delivery ~p:0.3 ~delay_us:500. ()
    in
    draws c Chaos.Delay_delivery 200
  in
  check_bool "same seed, same fault schedule" true (run () = run ());
  let other =
    let c =
      Chaos.make ~seed:100 ~kind:Chaos.Delay_delivery ~p:0.3 ~delay_us:500. ()
    in
    draws c Chaos.Delay_delivery 200
  in
  check_bool "different seed, different schedule" true (run () <> other)

let test_probability_extremes () =
  let never =
    Chaos.make ~seed:1 ~kind:Chaos.Stall_prepare ~p:0. ~delay_us:100. ()
  in
  check_bool "p=0 never fires" true
    (List.for_all Option.is_none (draws never Chaos.Stall_prepare 100));
  check_int "probes counted" 100 (Chaos.probes never);
  check_int "no injections" 0 (Chaos.injections never);
  let always =
    Chaos.make ~seed:1 ~kind:Chaos.Stall_prepare ~p:1. ~delay_us:100. ()
  in
  check_bool "p=1 always fires" true
    (List.for_all Option.is_some (draws always Chaos.Stall_prepare 100));
  check_int "all injections counted" 100 (Chaos.injections always)

let test_delay_bounds () =
  let c =
    Chaos.make ~seed:3 ~kind:Chaos.Stall_flush ~p:1. ~delay_us:1000. ()
  in
  check_bool "delays within [delay/2, 3*delay/2]" true
    (List.for_all
       (function Some d -> d >= 500. && d <= 1500. | None -> false)
       (draws c Chaos.Stall_flush 200))

let test_kind_targeting () =
  let c =
    Chaos.make ~seed:4 ~kind:Chaos.Stall_domain ~p:1. ~delay_us:100. ()
  in
  check_bool "other kinds never fire" true
    (List.for_all Option.is_none (draws c Chaos.Delay_delivery 50));
  check_bool "target kind fires" true
    (Option.is_some (Chaos.draw_us c Chaos.Stall_domain));
  check_bool "target reported" true (Chaos.target c = Some Chaos.Stall_domain)

let test_of_string () =
  (match Chaos.of_string "7:prepare-stall" with
  | Ok c ->
    check_bool "parsed active" true (Chaos.is_active c);
    check_bool "parsed kind" true (Chaos.target c = Some Chaos.Stall_prepare);
    check_bool "round-trips" true (Chaos.to_string c = "7:prepare-stall")
  | Error m -> Alcotest.fail m);
  (match Chaos.of_string "3:domain-stall:0.5:5000" with
  | Ok c ->
    check_bool "full spec parses" true (Chaos.target c = Some Chaos.Stall_domain)
  | Error m -> Alcotest.fail m);
  check_bool "bad kind rejected" true
    (Result.is_error (Chaos.of_string "7:no-such-fault"));
  check_bool "bad seed rejected" true
    (Result.is_error (Chaos.of_string "x:domain-stall"));
  check_bool "names round-trip" true
    (List.for_all
       (fun k -> Chaos.kind_of_name (Chaos.kind_name k) = Some k)
       Chaos.all_kinds)

let prop_deterministic =
  QCheck.Test.make ~name:"chaos: schedule is a pure function of the seed"
    ~count:50
    QCheck.(pair small_signed_int (float_range 0. 1.))
    (fun (seed, p) ->
      let mk () = Chaos.make ~seed ~kind:Chaos.Delay_delivery ~p ~delay_us:200. () in
      draws (mk ()) Chaos.Delay_delivery 50 = draws (mk ()) Chaos.Delay_delivery 50)

let suite =
  ( "chaos",
    [
      Alcotest.test_case "none is a no-op" `Quick test_none_inactive;
      Alcotest.test_case "deterministic per seed" `Quick
        test_deterministic_per_seed;
      Alcotest.test_case "probability extremes" `Quick test_probability_extremes;
      Alcotest.test_case "delay bounds" `Quick test_delay_bounds;
      Alcotest.test_case "kind targeting" `Quick test_kind_targeting;
      Alcotest.test_case "of_string parsing" `Quick test_of_string;
      QCheck_alcotest.to_alcotest prop_deterministic;
    ] )
