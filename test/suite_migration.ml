(* Live reconfiguration (DESIGN.md §11): online reactor migration on both
   backends, WAL placement records and their recovery, and the autoscaler
   policy. The simulator tests double as the oracle for the virtualization
   claim — placement changes must never change transaction results. *)

open Util
module DB = Reactdb.Database
module RDb = Runtime.Db
module AS = Runtime.Autoscaler
module SB = Workloads.Smallbank

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-6))

let chunk k xs =
  let groups = Array.make k [] in
  List.iteri (fun i x -> groups.(i mod k) <- x :: groups.(i mod k)) xs;
  Array.to_list (Array.map List.rev groups)

let audit cats =
  match Faultsim.check_secondaries cats with
  | Ok () -> ()
  | Error m -> Alcotest.fail ("secondary-index audit: " ^ m)

(* Physical sum of account balances over the Testlib bank. *)
let bank_total cats =
  List.fold_left
    (fun acc (_, _, rows) ->
      List.fold_left (fun a row -> a +. Value.to_float row.(1)) acc rows)
    0. (Faultsim.snapshot cats)

let sim_cats db names =
  List.map (fun nm -> (nm, DB.catalog_of db nm)) names

(* ------------------------------------------------------------------ *)
(* WAL Migrate record: framed encoding round-trip; replay routes the move
   to [on_move] and counts only data writes. *)

let test_wal_migrate_roundtrip () =
  let move = Wal.Migrate { reactor = "acct0"; dst = 3 } in
  let put =
    Wal.Put
      { reactor = "acct0"; table = "acct";
        row = [| Value.Int 0; Value.Float 77. |] }
  in
  let e = { Wal.le_txn = -1; le_tid = 42; le_writes = [ move; put ] } in
  (match Wal.decode_framed (Wal.encode_framed e) with
  | Ok e' -> check_bool "framed round-trip" true (e' = e)
  | Error m -> Alcotest.fail ("decode_framed: " ^ m));
  let cats = Faultsim.fresh_catalogs (Testlib.bank_decl 1) in
  let moves = ref [] in
  let applied =
    Wal.replay
      ~on_move:(fun ~reactor ~dst -> moves := (reactor, dst) :: !moves)
      [ e ]
      ~catalog_of:(Faultsim.catalog_of cats)
  in
  check_int "only the data write is applied" 1 applied;
  check_bool "move surfaced to on_move" true (!moves = [ ("acct0", 3) ]);
  check_float "put applied" 77. (bank_total cats);
  (* without on_move the placement record is silently skipped *)
  let cats2 = Faultsim.fresh_catalogs (Testlib.bank_decl 1) in
  check_int "default on_move ignores placement" 1
    (Wal.replay [ e ] ~catalog_of:(Faultsim.catalog_of cats2))

(* ------------------------------------------------------------------ *)
(* Faultsim placement recovery: Migrate records fold in TID order (not
   append order), last move per reactor wins, and placement records are
   excluded from the replay count. *)

let test_placement_recovery_synthetic () =
  let decl = Testlib.bank_decl 2 in
  let path = Filename.temp_file "mig_rec" ".wal" in
  let log = Wal.to_file path in
  (* appended out of TID order on purpose: the TID-largest move (epoch 2)
     is written first and must still win the fold *)
  Wal.append log
    { Wal.le_txn = -2; le_tid = Storage.Record.tid_make ~epoch:2 ~seq:5;
      le_writes = [ Wal.Migrate { reactor = "acct0"; dst = 1 } ] };
  Wal.append log
    { Wal.le_txn = 1; le_tid = Storage.Record.tid_make ~epoch:1 ~seq:3;
      le_writes =
        [ Wal.Put
            { reactor = "acct0"; table = "acct";
              row = [| Value.Int 0; Value.Float 55. |] } ] };
  Wal.append log
    { Wal.le_txn = -1; le_tid = Storage.Record.tid_make ~epoch:1 ~seq:9;
      le_writes = [ Wal.Migrate { reactor = "acct0"; dst = 0 } ] };
  Wal.flush log;
  Wal.close log;
  let rc = Faultsim.recover ~log:path decl in
  Sys.remove path;
  check_int "one migrated reactor" 1 (List.length rc.Faultsim.rc_placements);
  check_bool "last move in TID order wins" true
    (List.assoc_opt "acct0" rc.Faultsim.rc_placements = Some 1);
  check_int "replay excludes placement records" 1 rc.Faultsim.rc_replayed;
  let acct0_rows =
    List.filter_map
      (fun (r, t, rows) ->
        if r = "acct0" && t = "acct" then Some rows else None)
      (Faultsim.snapshot rc.Faultsim.rc_catalogs)
  in
  (match acct0_rows with
  | [ [ row ] ] -> check_float "data write recovered" 55. (Value.to_float row.(1))
  | _ -> Alcotest.fail "acct0 row missing after recovery")

(* ------------------------------------------------------------------ *)
(* Virtualization claim, simulator: a serial workload interleaved with
   migrations produces byte-identical results and physical state to the
   same workload on a static deployment. *)

let serial_reqs =
  List.concat
    (List.init 8 (fun i ->
         let src = i mod 4 and dst = (i + 1) mod 4 in
         [ ( Printf.sprintf "acct%d" src,
             "transfer_to",
             [ Value.Str (Printf.sprintf "acct%d" dst);
               Value.Float (2. +. float_of_int i) ] );
           (Printf.sprintf "acct%d" dst, "deposit", [ Value.Float 1. ]) ]))

let run_serial_sim plan =
  Testlib.with_db ~n:4 (Testlib.sn_config 4) (fun db ->
      let results =
        List.mapi
          (fun i (r, p, a) ->
            (match List.assoc_opt i plan with
            | Some (mr, md) -> ignore (DB.migrate db ~reactor:mr ~dst:md)
            | None -> ());
            (DB.exec_txn db ~reactor:r ~proc:p ~args:a).DB.result)
          serial_reqs
      in
      let st = Faultsim.snapshot (sim_cats db (Testlib.names 4)) in
      (results, st, DB.n_migrations db, DB.placements db))

let test_sim_byte_identity () =
  let plan = [ (3, ("acct0", 2)); (7, ("acct2", 0)); (11, ("acct0", 1)) ] in
  let r_static, st_static, m_static, _ = run_serial_sim [] in
  let r_mig, st_mig, m_mig, placements = run_serial_sim plan in
  check_int "static run migrated nothing" 0 m_static;
  check_int "three migrations applied" 3 m_mig;
  check_bool "acct0 re-homed" true (List.assoc "acct0" placements = 1);
  check_bool "acct2 re-homed" true (List.assoc "acct2" placements = 0);
  List.iter2
    (fun a b ->
      match (a, b) with
      | Ok va, Ok vb ->
        check_bool "same committed value" true (Value.equal va vb)
      | Error ma, Error mb -> Alcotest.(check string) "same abort" ma mb
      | _ -> Alcotest.fail "commit/abort divergence across placements")
    r_static r_mig;
  match Faultsim.diff st_static st_mig with
  | None -> ()
  | Some d -> Alcotest.fail ("state diverged from static placement: " ^ d)

(* ------------------------------------------------------------------ *)
(* Simulator under concurrent load: migrations interleave with a conflict
   workload; every attempt is accounted, money is conserved, the stub
   parks and replays without losing a root. *)

let test_sim_migration_under_load () =
  let db = Harness.build (Testlib.bank_decl 4) (Testlib.sn_config 4) in
  let eng = DB.engine db in
  let plan = [ ("acct0", 1); ("acct2", 3); ("acct0", 0); ("acct1", 2) ] in
  let done_migs = ref 0 in
  Sim.Engine.spawn eng (fun () ->
      List.iter
        (fun (r, d) ->
          Sim.Engine.delay 800.;
          let p = DB.migrate db ~reactor:r ~dst:d in
          check_bool "pause non-negative" true (p >= 0.);
          incr done_migs)
        plan);
  Testlib.run_conflict_workload db ~workers:6 ~per_worker:25;
  check_int "all migrations completed" 4 !done_migs;
  check_int "n_migrations" 4 (DB.n_migrations db);
  check_int "placement epoch advanced" 4 (DB.placement_epoch db);
  check_int "every attempt accounted" 150
    (DB.n_committed db + DB.n_aborted db);
  let cats = sim_cats db (Testlib.names 4) in
  check_float "money conserved across migrations" 400. (bank_total cats);
  audit cats

(* ------------------------------------------------------------------ *)
(* End-to-end placement durability, simulator: a run with WAL-logged
   migrations recovers to the same data image, and [rc_placements] resumes
   the pre-crash deployment on a freshly booted database. *)

let test_sim_wal_placement_e2e () =
  let decl = Testlib.bank_decl 4 in
  let cfg = Testlib.sn_config 4 in
  let db = Harness.build decl cfg in
  let path = Filename.temp_file "mig_e2e" ".wal" in
  let log = Wal.to_file path in
  DB.attach_wal db log;
  let eng = DB.engine db in
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay 300.;
      ignore (DB.migrate db ~reactor:"acct0" ~dst:2);
      Sim.Engine.delay 300.;
      ignore (DB.migrate db ~reactor:"acct3" ~dst:1);
      Sim.Engine.delay 300.;
      ignore (DB.migrate db ~reactor:"acct0" ~dst:3));
  Testlib.run_conflict_workload db ~workers:4 ~per_worker:20;
  Wal.flush log;
  Wal.close log;
  let rc = Faultsim.recover ~log:path decl in
  Sys.remove path;
  check_bool "acct0 placement recovered (last wins)" true
    (List.assoc_opt "acct0" rc.Faultsim.rc_placements = Some 3);
  check_bool "acct3 placement recovered" true
    (List.assoc_opt "acct3" rc.Faultsim.rc_placements = Some 1);
  check_bool "unmigrated reactors absent" true
    (List.assoc_opt "acct1" rc.Faultsim.rc_placements = None);
  (* recovered data image equals the live one *)
  let live = Faultsim.snapshot (sim_cats db (Testlib.names 4)) in
  (match Faultsim.diff live (Faultsim.snapshot rc.Faultsim.rc_catalogs) with
  | None -> ()
  | Some d -> Alcotest.fail ("recovered image diverged: " ^ d));
  (* a fresh boot resumes the recovered deployment *)
  let db2 = Harness.build decl cfg in
  DB.apply_placements db2 rc.Faultsim.rc_placements;
  check_int "resumed placement acct0" 3 (DB.container_of db2 "acct0");
  check_int "resumed placement acct3" 1 (DB.container_of db2 "acct3");
  check_int "config placement kept for acct1" 1 (DB.container_of db2 "acct1")

(* ------------------------------------------------------------------ *)
(* Runtime: basic migration semantics — placement accessors, traffic after
   the flip, no-op moves. *)

let balance db name =
  match RDb.exec_txn db ~reactor:name ~proc:"get_balance" ~args:[] with
  | { RDb.result = Ok (Value.Float f); _ } -> f
  | { RDb.result = Ok v; _ } -> Alcotest.fail ("unexpected " ^ Value.to_string v)
  | { RDb.result = Error m; _ } -> Alcotest.fail ("get_balance aborted: " ^ m)

let test_runtime_migrate_basic () =
  let db = RDb.start (Testlib.bank_decl 4) (Testlib.sn_config 4) in
  check_int "config placement" 0 (RDb.container_of db "acct0");
  let p = RDb.migrate db ~reactor:"acct0" ~dst:2 in
  check_bool "pause measured" true (p >= 0.);
  check_float "last pause published" p (RDb.migration_pause_last_us db);
  check_int "re-homed" 2 (RDb.container_of db "acct0");
  check_int "one migration" 1 (RDb.n_migrations db);
  check_int "placement epoch bumped" 1 (RDb.placement_epoch db);
  check_bool "placements reflect the move" true
    (List.assoc "acct0" (RDb.placements db) = 2);
  check_bool "destination hosts both reactors" true
    (List.sort String.compare (RDb.reactors_on db 2) = [ "acct0"; "acct2" ]);
  (* traffic lands on the new home; cross-container semantics intact *)
  let out =
    RDb.exec_txn db ~reactor:"acct0" ~proc:"transfer_to"
      ~args:[ Value.Str "acct1"; Value.Float 25. ]
  in
  check_bool "post-flip transfer commits" true (Result.is_ok out.RDb.result);
  check_float "debited" 75. (balance db "acct0");
  check_float "credited" 125. (balance db "acct1");
  (* moving to the current home is a no-op: no mark, no pause, no epoch *)
  check_float "no-op move" 0. (RDb.migrate db ~reactor:"acct0" ~dst:2);
  check_int "no-op not counted" 1 (RDb.n_migrations db);
  ignore (RDb.migrate db ~reactor:"acct0" ~dst:0);
  check_float "state survives the round trip" 75. (balance db "acct0");
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  audit (RDb.catalogs db)

(* ------------------------------------------------------------------ *)
(* Runtime: migrating a hot Smallbank reactor mid-load. Zero lost or
   duplicated roots, money conserved, snapshot readers unbroken across the
   flip, and the WAL carries the placement history. *)

let test_runtime_migration_mid_load () =
  let n = 16 in
  let decl = SB.decl ~customers:n () in
  let cfg = Reactdb.Config.shared_nothing (chunk 4 (SB.customers n)) in
  let log = Wal.in_memory () in
  let db = RDb.start ~wal:log decl cfg in
  let victim = SB.customer_name 0 in
  let total = 400 in
  let done_ = Atomic.make 0 in
  let rng = Rng.stream ~seed:19 0 in
  let reqs = List.init total (fun _ -> SB.gen_conserving rng ~n) in
  List.iteri
    (fun i r ->
      RDb.submit db ~reactor:r.Workloads.Wl.reactor ~proc:r.Workloads.Wl.proc
        ~args:r.Workloads.Wl.args
        ~k:(fun _ -> Atomic.incr done_);
      if i mod 100 = 50 then begin
        (* migrate the hot reactor while its traffic is in flight *)
        let dst = (RDb.container_of db victim + 1) mod 4 in
        let p = RDb.migrate db ~reactor:victim ~dst in
        check_bool "pause measured" true (p >= 0.);
        check_int "flip visible" dst (RDb.container_of db victim);
        (* a read-only root submitted right after the flip still runs as
           an abort-free snapshot read *)
        let ro = RDb.exec_txn db ~reactor:victim ~proc:"balance" ~args:[] in
        check_bool "snapshot reader survives the flip" true
          (Result.is_ok ro.RDb.result && ro.RDb.snapshot <> None)
      end)
    reqs;
  RDb.quiesce db;
  check_int "zero lost roots" total (Atomic.get done_);
  check_int "four migrations" 4 (RDb.n_migrations db);
  (* the 4 snapshot reads above are extra committed roots *)
  check_int "every attempt accounted" (total + 4)
    (RDb.n_committed db + RDb.n_aborted db);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  check_float "money conserved across migrations"
    (float_of_int n *. 2. *. 10_000.)
    (SB.total_money (List.map snd (RDb.catalogs db)));
  audit (RDb.catalogs db);
  (* the redo log carries the placement history, in order *)
  let moves =
    List.concat_map
      (fun e ->
        List.filter_map
          (function
            | Wal.Migrate { reactor; dst } -> Some (reactor, dst)
            | Wal.Put _ | Wal.Del _ -> None)
          e.Wal.le_writes)
      (Wal.entries log)
  in
  check_int "placement records logged" 4 (List.length moves);
  (match List.rev moves with
  | (r, d) :: _ ->
    Alcotest.(check string) "last move is the victim" victim r;
    check_int "log's final placement matches" d (RDb.container_of db victim)
  | [] -> Alcotest.fail "no placement records")

(* ------------------------------------------------------------------ *)
(* Runtime: chaos Stall_domain while migrating — stalls during drain and
   handoff must not lose or duplicate a root. *)

let test_runtime_chaos_migration () =
  let chaos =
    Chaos.make ~seed:29 ~kind:Chaos.Stall_domain ~p:0.25 ~delay_us:1_000. ()
  in
  let db = RDb.start ~chaos (Testlib.bank_decl 2) (Testlib.sn_config 2) in
  let nsub = 60 in
  let done_ = Atomic.make 0 in
  for i = 1 to nsub do
    RDb.submit db ~reactor:"acct0" ~proc:"deposit"
      ~args:[ Value.Float 1. ]
      ~k:(fun _ -> Atomic.incr done_);
    if i mod 20 = 10 then
      ignore
        (RDb.migrate db ~reactor:"acct0"
           ~dst:(1 - RDb.container_of db "acct0"))
  done;
  RDb.quiesce db;
  check_int "every submission completed" nsub (Atomic.get done_);
  check_int "migrations under chaos" 3 (RDb.n_migrations db);
  check_bool "injector fired" true (Chaos.injections chaos > 0);
  check_int "no fatals" 0 (RDb.n_fatal db);
  let deposits = RDb.n_committed db in
  check_float "deposits applied exactly once each"
    (100. +. float_of_int deposits)
    (balance db "acct0");
  RDb.shutdown db;
  audit (RDb.catalogs db)

(* ------------------------------------------------------------------ *)
(* Autoscaler policy: pure decision function over synthetic signals. *)

let ld ?(q = 0.) busy =
  { RDb.ld_busy_frac = busy; ld_qdepth_ewma = q; ld_mailbox = 0; ld_sheds = 0 }

let test_autoscaler_decide () =
  let pol = AS.default in
  (* split: hottest splittable domain sheds its lexicographically first
     reactor to the coolest spare one *)
  let acts =
    AS.decide pol
      ~load:[| ld 0.9; ld 0.1 |]
      ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]
  in
  (match acts with
  | [ a ] ->
    Alcotest.(check string) "splits first reactor" "a0" a.AS.ac_reactor;
    check_int "from hot" 0 a.AS.ac_src;
    check_int "to cold" 1 a.AS.ac_dst;
    check_bool "split" true (a.AS.ac_why = `Split)
  | _ -> Alcotest.fail "expected exactly one split");
  (* a single-reactor domain is the unit of placement: nothing to split *)
  check_int "single reactor never split" 0
    (List.length
       (AS.decide pol
          ~load:[| ld 0.95; ld 0.05 |]
          ~placements:[ ("a0", 0); ("a1", 1) ]));
  (* no idle destination: hold rather than shuffle load between busy domains *)
  check_int "no spare capacity, no split" 0
    (List.length
       (AS.decide pol
          ~load:[| ld 0.9; ld 0.5 |]
          ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]));
  (* hysteresis band: neither hot nor all-cold, no action *)
  check_int "hysteresis holds" 0
    (List.length
       (AS.decide pol
          ~load:[| ld 0.5; ld 0.1 |]
          ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]));
  (* queue-depth trigger catches a burst the busy window hasn't integrated;
     it must also veto merging into the backlog *)
  let burst =
    AS.decide pol
      ~load:[| ld ~q:20. 0.1; ld 0.05 |]
      ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]
  in
  (match burst with
  | [ a ] -> check_bool "burst splits, not merges" true (a.AS.ac_why = `Split)
  | _ -> Alcotest.fail "expected a queue-triggered split");
  (* merge: everything cold — smallest non-empty domain donates to the
     largest, consolidating stragglers *)
  let merged =
    AS.decide pol
      ~load:[| ld 0.1; ld 0.05 |]
      ~placements:[ ("a0", 0); ("a1", 1); ("a2", 1) ]
  in
  (match merged with
  | [ a ] ->
    Alcotest.(check string) "straggler donates" "a0" a.AS.ac_reactor;
    check_int "into the largest" 1 a.AS.ac_dst;
    check_bool "merge" true (a.AS.ac_why = `Merge)
  | _ -> Alcotest.fail "expected exactly one merge");
  (* deterministic: equal inputs, equal decisions *)
  check_bool "deterministic" true
    (AS.decide pol
       ~load:[| ld 0.9; ld 0.1 |]
       ~placements:[ ("a0", 0); ("a1", 0); ("a2", 1) ]
    = acts)

(* Controller integration: an idle deployment consolidates through real
   migrations — one [step] applies one merge, and the background loop
   settles without further moves once consolidated. *)
let test_autoscaler_consolidates_idle () =
  let db = RDb.start (Testlib.bank_decl 2) (Testlib.sn_config 2) in
  let acts = AS.step db in
  (match acts with
  | [ a ] -> check_bool "idle deployment merges" true (a.AS.ac_why = `Merge)
  | _ -> Alcotest.fail "expected exactly one merge step");
  check_int "migration applied" 1 (RDb.n_migrations db);
  check_int "consolidated onto one domain" 1
    (List.length
       (List.sort_uniq Int.compare (List.map snd (RDb.placements db))));
  check_int "settled: no further moves" 0 (List.length (AS.step db));
  check_float "traffic fine after consolidation" 100. (balance db "acct0");
  RDb.shutdown db;
  audit (RDb.catalogs db)

let test_autoscaler_background_loop () =
  let db = RDb.start (Testlib.bank_decl 4) (Testlib.sn_config 4) in
  let ctl = AS.start ~interval_s:0.005 db in
  Unix.sleepf 0.08;
  AS.stop ctl;
  AS.stop ctl (* idempotent *);
  let splits, merges = AS.moves ctl in
  check_bool "controller made moves" true (splits + merges >= 1);
  check_int "moves match migrations" (splits + merges) (RDb.n_migrations db);
  check_bool "idle deployment consolidating" true
    (List.length
       (List.sort_uniq Int.compare (List.map snd (RDb.placements db)))
    <= 3);
  check_int "no fatals" 0 (RDb.n_fatal db);
  RDb.shutdown db;
  audit (RDb.catalogs db)

let suite =
  ( "migration",
    [
      Alcotest.test_case "wal migrate record round-trip" `Quick
        test_wal_migrate_roundtrip;
      Alcotest.test_case "faultsim placement recovery" `Quick
        test_placement_recovery_synthetic;
      Alcotest.test_case "sim: byte-identity vs static placement" `Quick
        test_sim_byte_identity;
      Alcotest.test_case "sim: migration under concurrent load" `Quick
        test_sim_migration_under_load;
      Alcotest.test_case "sim: wal placement end-to-end" `Quick
        test_sim_wal_placement_e2e;
      Alcotest.test_case "runtime: migrate basic" `Quick
        test_runtime_migrate_basic;
      Alcotest.test_case "runtime: hot reactor mid-load" `Quick
        test_runtime_migration_mid_load;
      Alcotest.test_case "runtime: chaos stall during migration" `Quick
        test_runtime_chaos_migration;
      Alcotest.test_case "autoscaler: decide policy" `Quick
        test_autoscaler_decide;
      Alcotest.test_case "autoscaler: consolidates idle deployment" `Quick
        test_autoscaler_consolidates_idle;
      Alcotest.test_case "autoscaler: background loop" `Quick
        test_autoscaler_background_loop;
    ] )
