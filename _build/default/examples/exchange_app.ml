(* The digital currency exchange of the paper's Figure 1, end to end.

   An Exchange reactor authorizes credit-card payments against per-provider
   risk limits; Provider reactors hold their own order books and risk
   caches. auth_pay fans calc_risk out to all providers asynchronously and
   aborts the whole transaction if any provider's exposure is above its
   limit — exactly the program of Fig. 1(b).

   The demo authorizes a few payments, forces an exposure abort, and then
   contrasts the latency of procedure-level parallelism with the classic
   sequential formulation of Fig. 1(a) under a heavy risk simulation.

   Run with: dune exec examples/exchange_app.exe *)

open Workloads

let providers = 6
let orders_per_provider = 500
let window = 200
let sim_cost_us = 400.

let run_txn db (req : Wl.request) =
  Reactdb.Database.exec_txn db ~reactor:req.Wl.reactor ~proc:req.Wl.proc
    ~args:req.Wl.args

let () =
  (* Reactor database: exchange + providers, one container each. *)
  let decl = Exchange.decl ~providers ~orders_per_provider () in
  let config =
    Reactdb.Config.shared_nothing
      ([ "exchange" ] :: List.map (fun p -> [ p ]) (Exchange.providers providers))
  in
  let engine = Sim.Engine.create () in
  let db = Reactdb.Database.create engine decl config Reactdb.Profile.default in
  let seq = ref 0 in
  Sim.Engine.spawn engine (fun () ->
      let rng = Util.Rng.create 2024 in
      print_endline "Authorizing payments through auth_pay (Fig. 1b):";
      for _ = 1 to 3 do
        let req =
          Exchange.gen_auth_pay rng ~strategy:`Procedure_par
            ~n_providers:providers ~window ~sim_cost:sim_cost_us ~seq
        in
        match run_txn db req with
        | { result = Ok _; latency; _ } ->
          Printf.printf "  authorized in %.0f µs (risk checked on %d providers in parallel)\n"
            latency providers
        | { result = Error m; _ } -> Printf.printf "  rejected: %s\n" m
      done;
      (* Force a provider over its exposure limit by direct calc_risk with a
         tiny limit: user-defined aborts in sub-transactions abort the whole
         payment. *)
      print_endline "A provider over its exposure limit rejects the payment:";
      (match
         run_txn db
           (Wl.request "p0" "calc_risk"
              [ Wl.vf 1.0; Wl.vi window; Wl.vf 0.; Wl.vf 1e18 ])
       with
      | { result = Error m; _ } -> Printf.printf "  aborted as expected: %s\n" m
      | { result = Ok _; _ } -> print_endline "  unexpectedly authorized!"));
  ignore (Sim.Engine.run engine);
  (* Latency comparison: reactor formulation vs the classic sequential one,
     each in the deployment it calls for. *)
  print_endline "\nLatency, procedure parallelism (Fig. 1b) vs sequential (Fig. 1a):";
  let measure strategy =
    let decl, config =
      match strategy with
      | `Sequential ->
        ( Exchange.mono_decl ~providers ~orders_per_provider (),
          Reactdb.Config.shared_everything ~executors:1 ~affinity:true [ "mono" ] )
      | _ ->
        ( Exchange.decl ~providers ~orders_per_provider (),
          Reactdb.Config.shared_nothing
            ([ "exchange" ]
            :: List.map (fun p -> [ p ]) (Exchange.providers providers)) )
    in
    let db = Harness.build decl config in
    let seq = ref 0 in
    let outs =
      Harness.measure_txns db ~warmup:2 ~n:10 (fun rng ->
          Exchange.gen_auth_pay rng ~strategy ~n_providers:providers ~window
            ~sim_cost:sim_cost_us ~seq)
    in
    Harness.mean_latency outs
  in
  let seq_lat = measure `Sequential in
  let par_lat = measure `Procedure_par in
  Printf.printf "  sequential at a single reactor : %8.0f µs\n" seq_lat;
  Printf.printf "  reactors, parallel calc_risk   : %8.0f µs  (%.1fx faster)\n"
    par_lat (seq_lat /. par_lat)
