(* Virtualized database architecture on TPC-C (§3.3, §4.3): the same TPC-C
   application code deployed as a shared-everything engine (with and without
   affinity routing) and as a shared-nothing engine, by changing only the
   deployment configuration.

   The demo runs the standard mix under each deployment, prints throughput,
   latency and abort rates, and certifies every execution's recorded history
   for conflict-serializability.

   Run with: dune exec examples/tpcc_demo.exe *)

open Workloads

let warehouses = 4
let sizes = Tpcc.default_sizes

let deployments =
  let ws = Tpcc.warehouses warehouses in
  [
    ( "shared-everything-without-affinity",
      Reactdb.Config.shared_everything ~executors:warehouses ~affinity:false ws );
    ( "shared-everything-with-affinity",
      Reactdb.Config.shared_everything ~executors:warehouses ~affinity:true ws );
    ( "shared-nothing",
      Reactdb.Config.shared_nothing (List.map (fun w -> [ w ]) ws) );
  ]

let certify db =
  let entries =
    List.map
      (fun h ->
        {
          Histories.Certify.c_txn = h.Reactdb.Database.h_txn;
          c_tid = h.Reactdb.Database.h_tid;
          c_reads = h.Reactdb.Database.h_reads;
          c_writes = h.Reactdb.Database.h_writes;
        })
      (Reactdb.Database.history db)
  in
  match Histories.Certify.check entries with
  | Ok _ -> Printf.sprintf "serializable (%d txns certified)" (List.length entries)
  | Error m -> "NOT SERIALIZABLE: " ^ m

let () =
  let params = Tpcc.params ~sizes warehouses in
  let t =
    Util.Tablefmt.create
      [ "deployment"; "tput [Ktxn/s]"; "latency [ms]"; "abort %"; "history" ]
  in
  List.iter
    (fun (name, config) ->
      let db = Harness.build (Tpcc.decl ~warehouses ~sizes ()) config in
      Reactdb.Database.enable_history db;
      let seq = ref 0 in
      let spec =
        Harness.spec ~epochs:6 ~epoch_us:10_000. ~warmup_epochs:2 ~n_workers:8
          (fun w rng -> Tpcc.gen_mix rng params ~home:(1 + (w mod warehouses)) ~seq)
      in
      let r = Harness.run_load db spec in
      Util.Tablefmt.row t
        [ name;
          Printf.sprintf "%.1f" (r.Harness.throughput /. 1000.);
          Printf.sprintf "%.3f" (r.Harness.avg_latency /. 1000.);
          Printf.sprintf "%.2f" (100. *. r.Harness.abort_rate);
          certify db ])
    deployments;
  Printf.printf
    "TPC-C standard mix, %d warehouses (as reactors), 8 workers.\n\
     Application code identical across rows; only the deployment config\n\
     differs.\n\n" warehouses;
  Util.Tablefmt.print t
