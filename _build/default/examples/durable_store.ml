(* Durability and SQL, end to end (the DESIGN.md §5 extensions).

   A two-reactor ledger runs transfers with a write-ahead log attached; we
   snapshot a checkpoint mid-run, keep working, then "crash" — and recover a
   fresh database from checkpoint + log tail, verifying state equality with
   SQL queries issued as transactions.

   Run with: dune exec examples/durable_store.exe *)

open Util

let ledger_schema =
  Storage.Schema.make ~name:"ledger"
    ~columns:[ ("id", Value.TInt); ("balance", Value.TFloat) ]
    ~key:[ "id" ]

let ledger_type =
  Sql.Proc.with_sql
    (Reactor.rtype ~name:"Ledger" ~schemas:[ ledger_schema ]
       ~procs:
         [
           ( "transfer_out",
             fun ctx args ->
               let dest = Reactor.arg_str args 0 in
               let amt = Reactor.arg_float args 1 in
               let credit =
                 ctx.Reactor.call ~reactor:dest ~proc:"credit"
                   ~args:[ Value.Float amt ]
               in
               ignore
                 (Query.Exec.update_key ctx.Reactor.db "ledger"
                    [| Value.Int 0 |] ~set:(fun row ->
                      let b = Value.to_number row.(1) -. amt in
                      if b < 0. then Reactor.abort "overdraft";
                      Query.Exec.seti row 1 (Value.Float b)));
               ignore (credit.Reactor.get ());
               Value.Null );
           ( "credit",
             fun ctx args ->
               ignore
                 (Query.Exec.update_key ctx.Reactor.db "ledger"
                    [| Value.Int 0 |] ~set:(fun row ->
                      Query.Exec.seti row 1
                        (Value.Float
                           (Value.to_number row.(1) +. Reactor.arg_float args 0))));
               Value.Null );
         ]
       ())

let names = [ "alice"; "bob" ]

let decl =
  let loader catalog =
    let tbl = Storage.Catalog.table catalog "ledger" in
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Value.Int 0; Value.Float 1000. |]))
  in
  Reactor.decl ~types:[ ledger_type ]
    ~reactors:(List.map (fun n -> (n, "Ledger")) names)
    ~loaders:(List.map (fun n -> (n, loader)) names)
    ()

let config = Reactdb.Config.shared_nothing [ [ "alice" ]; [ "bob" ] ]

let fresh_db () =
  Reactdb.Database.create (Sim.Engine.create ()) decl config
    Reactdb.Profile.default

let sql db reactor stmt =
  let out = ref Value.Null in
  Sim.Engine.spawn (Reactdb.Database.engine db) (fun () ->
      match
        Reactdb.Database.exec_txn db ~reactor ~proc:"sql"
          ~args:[ Value.Str stmt ]
      with
      | { result = Ok v; _ } -> out := v
      | { result = Error m; _ } -> failwith m);
  ignore (Sim.Engine.run (Reactdb.Database.engine db));
  !out

let run_transfers db n seed =
  Sim.Engine.spawn (Reactdb.Database.engine db) (fun () ->
      let rng = Rng.create seed in
      for _ = 1 to n do
        let src = if Rng.bool rng then "alice" else "bob" in
        let dst = if src = "alice" then "bob" else "alice" in
        ignore
          (Reactdb.Database.exec_txn db ~reactor:src ~proc:"transfer_out"
             ~args:[ Value.Str dst; Value.Float (Rng.float rng 20.) ])
      done);
  ignore (Sim.Engine.run (Reactdb.Database.engine db))

let balances db =
  List.map (fun n -> (n, sql db n "SELECT balance FROM ledger WHERE id = 0")) names

let () =
  let log = Wal.in_memory () in
  let db = fresh_db () in
  Reactdb.Database.attach_wal db log;
  run_transfers db 40 7;
  Printf.printf "After 40 transfers (%d redo records):\n" (Wal.length log);
  List.iter (fun (n, v) -> Printf.printf "  %-6s %s\n" n (Value.to_string v)) (balances db);
  (* checkpoint at a quiescent point *)
  let max_tid =
    List.fold_left (fun m e -> max m e.Wal.le_tid) 0 (Wal.entries log)
  in
  let checkpoint =
    Checkpoint.capture ~tid:max_tid
      (List.map (fun n -> (n, Reactdb.Database.catalog_of db n)) names)
  in
  Printf.printf "Checkpoint captured at TID %d (%d rows).\n" max_tid
    (List.length checkpoint.Checkpoint.ck_rows);
  run_transfers db 40 8;
  let final = balances db in
  Printf.printf "After 40 more transfers (crash imminent):\n";
  List.iter (fun (n, v) -> Printf.printf "  %-6s %s\n" n (Value.to_string v)) final;
  (* "crash": recover into a freshly declared database *)
  let db2 = fresh_db () in
  let restored, replayed =
    Checkpoint.recover ~checkpoint ~log:(Wal.entries log)
      ~catalog_of:(Reactdb.Database.catalog_of db2)
  in
  Printf.printf
    "Recovered fresh database: %d rows from the checkpoint, %d writes\n\
     replayed from the log tail.\n"
    restored replayed;
  let recovered = balances db2 in
  List.iter (fun (n, v) -> Printf.printf "  %-6s %s\n" n (Value.to_string v)) recovered;
  print_endline
    (if final = recovered then "State identical — recovery exact."
     else "RECOVERY MISMATCH!")
