(* Program-formulation latency control (§4.2): the same multi-transfer
   application logic in the four formulations of Appendix H, measured on a
   shared-nothing deployment.

   This is the developer-facing workflow the paper advocates: reformulate a
   transaction's asynchrony structure, observe µs-scale latency changes,
   and check them against the Figure 3 cost model.

   Run with: dune exec examples/smallbank_formulations.exe *)

open Workloads

let groups = 7
let per_group = 4

let cust g k = Smallbank.customer_name ((g * per_group) + k)

let () =
  let config =
    Reactdb.Config.shared_nothing
      (List.init groups (fun g -> List.init per_group (fun k -> cust g k)))
  in
  let decl = Smallbank.decl ~customers:(groups * per_group) () in
  let size = 6 in
  let dests = List.init size (fun i -> cust (1 + (i mod (groups - 1))) 0) in
  Printf.printf
    "multi-transfer of size %d, destinations on %d distinct containers:\n\n"
    size (groups - 1);
  let results =
    List.map
      (fun form ->
        let db = Harness.build decl config in
        let outs =
          Harness.measure_txns db ~warmup:3 ~n:30 (fun _rng ->
              Smallbank.multi_transfer_request form ~src:(cust 0 0) ~dests
                ~amount:5.)
        in
        (form, Harness.mean_latency outs, Harness.mean_breakdown outs))
      [ Smallbank.Fully_sync; Smallbank.Partially_async; Smallbank.Fully_async;
        Smallbank.Opt ]
  in
  let t =
    Util.Tablefmt.create
      [ "formulation"; "latency [µs]"; "sync-exec"; "Cs"; "Cr"; "async-exec";
        "overhead" ]
  in
  List.iter
    (fun (form, lat, bd) ->
      Util.Tablefmt.row t
        [ Smallbank.formulation_name form;
          Util.Tablefmt.fcell ~digits:1 lat;
          Util.Tablefmt.fcell ~digits:1 bd.Harness.avg_sync_exec;
          Util.Tablefmt.fcell ~digits:1 bd.Harness.avg_cs;
          Util.Tablefmt.fcell ~digits:1 bd.Harness.avg_cr;
          Util.Tablefmt.fcell ~digits:1 bd.Harness.avg_async_exec;
          Util.Tablefmt.fcell ~digits:1 bd.Harness.avg_overhead ])
    results;
  Util.Tablefmt.print t;
  match results with
  | (_, slowest, _) :: rest ->
    let _, fastest, _ = List.nth rest (List.length rest - 1) in
    Printf.printf
      "Reformulating from fully-sync to opt cut latency %.1fx without\n\
       touching consistency guarantees — the paper's §4.2.1 workflow.\n"
      (slowest /. fastest)
  | [] -> ()
