(* Quickstart: a minimal reactor database from scratch.

   We model a tiny inventory service: each [Store] reactor encapsulates a
   one-table relational schema; a cross-store [restock] transfers items
   between stores with full ACID guarantees, using an asynchronous call to
   the peer store.

   Run with: dune exec examples/quickstart.exe *)

open Util

(* 1. Declare the relational schema a Store reactor encapsulates. *)
let stock_schema =
  Storage.Schema.make ~name:"stock"
    ~columns:[ ("item", Value.TStr); ("qty", Value.TInt) ]
    ~key:[ "item" ]

(* 2. Write stored procedures against the reactor context: declarative
   queries on the reactor's own state, asynchronous calls for anything
   else. *)
let qty_of ctx item =
  match Query.Exec.get ctx.Reactor.db "stock" [| Value.Str item |] with
  | Some row -> Value.to_int row.(1)
  | None -> 0

let add_qty ctx item delta =
  let current = qty_of ctx item in
  let updated = current + delta in
  if updated < 0 then Reactor.abort "insufficient stock";
  if current = 0 then
    Query.Exec.insert ctx.Reactor.db "stock"
      [| Value.Str item; Value.Int updated |]
  else
    ignore
      (Query.Exec.update_key ctx.Reactor.db "stock" [| Value.Str item |]
         ~set:(fun row -> Query.Exec.seti row 1 (Value.Int updated)))

let procs =
  [
    (* get(item) -> qty *)
    ( "get",
      fun ctx args -> Value.Int (qty_of ctx (Reactor.arg_str args 0)) );
    (* add(item, delta) *)
    ( "add",
      fun ctx args ->
        add_qty ctx (Reactor.arg_str args 0) (Reactor.arg_int args 1);
        Value.Null );
    (* restock(item, qty, from_store): take qty of item from another store.
       The withdrawal on the peer runs as an asynchronous sub-transaction;
       both effects commit atomically or not at all. *)
    ( "restock",
      fun ctx args ->
        let item = Reactor.arg_str args 0 in
        let qty = Reactor.arg_int args 1 in
        let from_store = Reactor.arg_str args 2 in
        let withdrawal =
          ctx.Reactor.call ~reactor:from_store ~proc:"add"
            ~args:[ Value.Str item; Value.Int (-qty) ]
        in
        add_qty ctx item qty;
        ignore (withdrawal.get ());
        Value.Null );
  ]

let store_type = Reactor.rtype ~name:"Store" ~schemas:[ stock_schema ] ~procs ()

(* 3. Declare the reactor database: two named stores with initial data. *)
let decl =
  let load_downtown catalog =
    let tbl = Storage.Catalog.table catalog "stock" in
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false
            [| Value.Str "widget"; Value.Int 100 |]))
  in
  Reactor.decl ~types:[ store_type ]
    ~reactors:[ ("downtown", "Store"); ("uptown", "Store") ]
    ~loaders:[ ("downtown", load_downtown) ]
    ()

let () =
  (* 4. Pick a deployment — here shared-nothing, one container per store.
     Changing this line (e.g. to shared_everything) requires no change to
     any of the application code above. *)
  let config = Reactdb.Config.shared_nothing [ [ "downtown" ]; [ "uptown" ] ] in
  let engine = Sim.Engine.create () in
  let db = Reactdb.Database.create engine decl config Reactdb.Profile.default in
  (* 5. Client code runs as a simulation process and submits root
     transactions. *)
  Sim.Engine.spawn engine (fun () ->
      let exec reactor proc args =
        match Reactdb.Database.exec_txn db ~reactor ~proc ~args with
        | { result = Ok v; latency; _ } ->
          Printf.printf "  %-10s %-28s -> %-6s (%.1f µs)\n" reactor proc
            (Value.to_string v) latency
        | { result = Error reason; _ } ->
          Printf.printf "  %-10s %-28s -> ABORTED: %s\n" reactor proc reason
      in
      print_endline "Initial state:";
      exec "downtown" "get" [ Value.Str "widget" ];
      exec "uptown" "get" [ Value.Str "widget" ];
      print_endline "Restock uptown with 30 widgets from downtown:";
      exec "uptown" "restock"
        [ Value.Str "widget"; Value.Int 30; Value.Str "downtown" ];
      exec "downtown" "get" [ Value.Str "widget" ];
      exec "uptown" "get" [ Value.Str "widget" ];
      print_endline "Attempt an impossible restock (rolls back everywhere):";
      exec "uptown" "restock"
        [ Value.Str "widget"; Value.Int 500; Value.Str "downtown" ];
      exec "downtown" "get" [ Value.Str "widget" ];
      exec "uptown" "get" [ Value.Str "widget" ]);
  ignore (Sim.Engine.run engine);
  Printf.printf "Committed: %d, aborted: %d\n"
    (Reactdb.Database.n_committed db)
    (Reactdb.Database.n_aborted db)
