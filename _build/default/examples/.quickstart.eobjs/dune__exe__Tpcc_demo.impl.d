examples/tpcc_demo.ml: Harness Histories List Printf Reactdb Tpcc Util Workloads
