examples/exchange_app.ml: Exchange Harness List Printf Reactdb Sim Util Wl Workloads
