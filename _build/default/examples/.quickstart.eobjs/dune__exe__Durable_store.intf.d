examples/durable_store.mli:
