examples/smallbank_formulations.mli:
