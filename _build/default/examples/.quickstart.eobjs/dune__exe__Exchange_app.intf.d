examples/exchange_app.mli:
