examples/smallbank_formulations.ml: Harness List Printf Reactdb Smallbank Util Workloads
