examples/durable_store.ml: Array Checkpoint List Printf Query Reactdb Reactor Rng Sim Sql Storage Util Value Wal
