examples/quickstart.mli:
