examples/quickstart.ml: Array Printf Query Reactdb Reactor Sim Storage Util Value
