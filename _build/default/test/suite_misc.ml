(* Edge-case tests for the reactor declarations, deployment configs,
   profiles and harness plumbing. *)

open Util

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nop _ctx _args = Value.Null

let sch =
  Storage.Schema.make ~name:"t" ~columns:[ ("k", Value.TInt) ] ~key:[ "k" ]

let ty ?indexes name procs =
  Reactor.rtype ~name ~schemas:[ sch ] ?indexes
    ~procs:(List.map (fun p -> (p, nop)) procs)
    ()

(* --- Reactor.validate --- *)

let invalidates f = try f (); false with Invalid_argument _ -> true

let test_validate_duplicates () =
  check_bool "duplicate type" true
    (invalidates (fun () ->
         Reactor.validate
           (Reactor.decl ~types:[ ty "A" []; ty "A" [] ] ~reactors:[] ())));
  check_bool "duplicate reactor" true
    (invalidates (fun () ->
         Reactor.validate
           (Reactor.decl ~types:[ ty "A" [] ]
              ~reactors:[ ("x", "A"); ("x", "A") ]
              ())));
  check_bool "duplicate proc" true
    (invalidates (fun () ->
         Reactor.validate
           (Reactor.decl ~types:[ ty "A" [ "p"; "p" ] ] ~reactors:[] ())))

let test_validate_references () =
  check_bool "unknown reactor type" true
    (invalidates (fun () ->
         Reactor.validate
           (Reactor.decl ~types:[ ty "A" [] ] ~reactors:[ ("x", "B") ] ())));
  check_bool "loader on unknown reactor" true
    (invalidates (fun () ->
         Reactor.validate
           (Reactor.decl ~types:[ ty "A" [] ] ~reactors:[ ("x", "A") ]
              ~loaders:[ ("y", fun _ -> ()) ]
              ())));
  check_bool "index on unknown table" true
    (invalidates (fun () ->
         Reactor.validate
           (Reactor.decl
              ~types:[ ty ~indexes:[ ("zzz", [ ("i", [ "k" ]) ]) ] "A" [] ]
              ~reactors:[] ())))

let test_find_helpers () =
  let d = Reactor.decl ~types:[ ty "A" [ "p" ] ] ~reactors:[ ("x", "A") ] () in
  check_bool "find_type" true ((Reactor.find_type d "A").Reactor.rt_name = "A");
  check_bool "type_of_reactor" true
    ((Reactor.type_of_reactor d "x").Reactor.rt_name = "A");
  check_bool "unknown type raises" true
    (invalidates (fun () -> ignore (Reactor.find_type d "Z")));
  check_bool "unknown proc raises" true
    (invalidates (fun () ->
         let (_ : Reactor.proc) = Reactor.find_proc (ty "A" []) "q" in
         ()))

let test_arg_helpers () =
  let args = [ Value.Int 3; Value.Str "s"; Value.Float 2.5 ] in
  check_int "arg_int" 3 (Reactor.arg_int args 0);
  check_bool "arg_str" true (Reactor.arg_str args 1 = "s");
  check_bool "arg_float widens int" true (Reactor.arg_float args 0 = 3.);
  check_bool "missing arg raises" true
    (invalidates (fun () -> ignore (Reactor.arg args 5)))

(* --- Config --- *)

let test_config_errors () =
  check_bool "zero executors" true
    (invalidates (fun () ->
         ignore (Reactdb.Config.shared_everything ~executors:0 ~affinity:true [])));
  check_bool "empty groups" true
    (invalidates (fun () -> ignore (Reactdb.Config.shared_nothing [])));
  check_bool "unplaced reactor" true
    (invalidates (fun () ->
         let cfg = Reactdb.Config.shared_nothing [ [ "a" ] ] in
         ignore (cfg.Reactdb.Config.placement "b")));
  check_bool "bad spec line" true
    (invalidates (fun () ->
         ignore (Reactdb.Config.Spec.of_string "strategy bogus thing\n")))

let test_config_spec_comments_and_explicit_groups () =
  let spec =
    Reactdb.Config.Spec.of_string
      "# leading comment\nstrategy shared-nothing # trailing\ngroups a,b;c\n"
  in
  let cfg = Reactdb.Config.Spec.build spec [ "a"; "b"; "c" ] in
  check_int "two containers" 2 (Reactdb.Config.n_containers cfg);
  check_int "a" 0 (cfg.Reactdb.Config.placement "a");
  check_int "c" 1 (cfg.Reactdb.Config.placement "c")

(* --- Profile --- *)

let test_profile_pp_and_free () =
  let s = Fmt.str "%a" Reactdb.Profile.pp Reactdb.Profile.default in
  check_bool "pp renders" true (String.length s > 20);
  (* With the free profile, virtual time never advances. *)
  let db =
    Harness.build ~profile:Reactdb.Profile.free (Testlib.bank_decl 2)
      (Testlib.se_config 1 2)
  in
  Sim.Engine.spawn (Reactdb.Database.engine db) (fun () ->
      let out =
        Reactdb.Database.exec_txn db ~reactor:"acct0" ~proc:"deposit"
          ~args:[ Value.Float 1. ]
      in
      Alcotest.(check (float 1e-9)) "zero latency" 0. out.Reactdb.Database.latency);
  ignore (Sim.Engine.run (Reactdb.Database.engine db))

(* --- Harness --- *)

let test_measure_txns_warmup_excluded () =
  let db = Harness.build (Testlib.bank_decl 1) (Testlib.se_config 1 1) in
  let count = ref 0 in
  let outs =
    Harness.measure_txns db ~warmup:5 ~n:7 (fun _rng ->
        incr count;
        Workloads.Wl.request "acct0" "get_balance" [])
  in
  check_int "generator called warmup+n times" 12 !count;
  check_int "only measured outcomes returned" 7 (List.length outs)

let test_run_load_counts () =
  let db = Harness.build (Testlib.bank_decl 2) (Testlib.se_config 1 2) in
  let r =
    Harness.run_load db
      (Harness.spec ~epochs:3 ~epoch_us:1_000. ~warmup_epochs:1 ~n_workers:2
         (fun w _rng ->
           Workloads.Wl.request (Printf.sprintf "acct%d" w) "deposit"
             [ Value.Float 1. ]))
  in
  check_bool "throughput positive" true (r.Harness.throughput > 0.);
  check_bool "no aborts" true (r.Harness.aborted = 0);
  check_bool "latency sane" true
    (r.Harness.avg_latency > 0. && r.Harness.avg_latency < 1000.);
  check_int "two executors... one" 1 (Array.length r.Harness.utilizations)

(* --- Values --- *)

let test_value_hash_consistent_with_equal () =
  let vals =
    [ Value.Null; Value.Bool true; Value.Int 42; Value.Float 1.5;
      Value.Str "x" ]
  in
  List.iter
    (fun v -> check_bool "hash self-consistent" true (Value.hash v = Value.hash v))
    vals;
  check_bool "distinct hashes mostly" true
    (List.length (List.sort_uniq compare (List.map Value.hash vals)) >= 4)

let suite =
  ( "misc",
    [
      Alcotest.test_case "decl duplicate detection" `Quick test_validate_duplicates;
      Alcotest.test_case "decl reference checks" `Quick test_validate_references;
      Alcotest.test_case "find helpers" `Quick test_find_helpers;
      Alcotest.test_case "arg helpers" `Quick test_arg_helpers;
      Alcotest.test_case "config errors" `Quick test_config_errors;
      Alcotest.test_case "config spec groups" `Quick
        test_config_spec_comments_and_explicit_groups;
      Alcotest.test_case "profiles" `Quick test_profile_pp_and_free;
      Alcotest.test_case "measure_txns warmup" `Quick
        test_measure_txns_warmup_excluded;
      Alcotest.test_case "run_load counters" `Quick test_run_load_counts;
      Alcotest.test_case "value hash" `Quick test_value_hash_consistent_with_equal;
    ] )
