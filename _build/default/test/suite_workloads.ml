(* Integration tests for the benchmark workloads: Smallbank formulations,
   TPC-C transactions + consistency conditions, YCSB, Exchange. *)

open Util
module DB = Reactdb.Database
module W = Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-6))

let run_in decl config f =
  let db = Harness.build decl config in
  let result = ref None in
  Sim.Engine.spawn (DB.engine db) (fun () -> result := Some (f db));
  ignore (Sim.Engine.run (DB.engine db));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation stalled"

let exec db (req : W.Wl.request) =
  DB.exec_txn db ~reactor:req.W.Wl.reactor ~proc:req.W.Wl.proc ~args:req.W.Wl.args

let exec_ok db req =
  match exec db req with
  | { DB.result = Ok v; _ } -> v
  | { DB.result = Error m; _ } ->
    Alcotest.failf "txn %s/%s aborted: %s" req.W.Wl.reactor req.W.Wl.proc m

(* Raw scan helper over a reactor's physical catalog. *)
let rows db reactor table =
  let catalog = DB.catalog_of db reactor in
  let tbl = Storage.Catalog.table catalog table in
  let out = ref [] in
  Storage.Table.range tbl ~f:(fun r ->
      if not r.Storage.Record.absent then out := r.Storage.Record.data :: !out;
      true);
  List.rev !out

let cell db reactor table key col =
  let catalog = DB.catalog_of db reactor in
  let tbl = Storage.Catalog.table catalog table in
  match Storage.Table.find tbl key with
  | Some r when not r.Storage.Record.absent -> r.Storage.Record.data.(col)
  | _ -> Alcotest.failf "missing row in %s.%s" reactor table

(* ---------------- Smallbank ---------------- *)

let sb_sn n = Reactdb.Config.shared_nothing (List.map (fun c -> [ c ]) (W.Smallbank.customers n))

let savings db c = Value.to_number (cell db c "savings" [| Value.Int (int_of_string (String.sub c 1 (String.length c - 1))) |] 1)

let test_smallbank_formulations_effects () =
  List.iter
    (fun form ->
      run_in (W.Smallbank.decl ~customers:8 ()) (sb_sn 8) (fun db ->
          let req =
            W.Smallbank.multi_transfer_request form ~src:"c0"
              ~dests:[ "c1"; "c2"; "c3" ] ~amount:10.
          in
          ignore (exec_ok db req);
          checkf
            (W.Smallbank.formulation_name form ^ " source debited")
            9970. (savings db "c0");
          List.iter
            (fun c ->
              checkf
                (W.Smallbank.formulation_name form ^ " dest credited")
                10010. (savings db c))
            [ "c1"; "c2"; "c3" ];
          checkf "others untouched" 10000. (savings db "c4")))
    [ W.Smallbank.Fully_sync; W.Smallbank.Partially_async;
      W.Smallbank.Fully_async; W.Smallbank.Opt ]

let test_smallbank_latency_ordering () =
  (* Fig. 5's qualitative claim at size 7 over a 8-container shared-nothing
     deployment: fully-sync slowest, opt fastest. *)
  let latency form =
    run_in (W.Smallbank.decl ~customers:8 ()) (sb_sn 8) (fun db ->
        let req =
          W.Smallbank.multi_transfer_request form ~src:"c0"
            ~dests:(List.map W.Smallbank.customer_name [ 1; 2; 3; 4; 5; 6; 7 ])
            ~amount:1.
        in
        ignore (exec db req);
        (* measure the second run (warm caches) *)
        let out = exec db req in
        (match out.DB.result with Ok _ -> () | Error m -> Alcotest.fail m);
        out.DB.latency)
  in
  let fs = latency W.Smallbank.Fully_sync in
  let pa = latency W.Smallbank.Partially_async in
  let fa = latency W.Smallbank.Fully_async in
  let opt = latency W.Smallbank.Opt in
  check_bool
    (Printf.sprintf "ordering fs=%.1f pa=%.1f fa=%.1f opt=%.1f" fs pa fa opt)
    true
    (fs > pa && pa > fa && fa > opt)

let test_smallbank_overdraft_aborts () =
  run_in (W.Smallbank.decl ~customers:2 ~initial:5. ()) (sb_sn 2) (fun db ->
      let req =
        W.Smallbank.multi_transfer_request W.Smallbank.Fully_sync ~src:"c0"
          ~dests:[ "c1" ] ~amount:50.
      in
      (match (exec db req).DB.result with
      | Error m -> check_bool "overdraft" true (m = "savings overdraft")
      | Ok _ -> Alcotest.fail "expected abort");
      checkf "no partial effect" 5. (savings db "c1"))

let test_smallbank_standard_mix () =
  run_in (W.Smallbank.decl ~customers:8 ())
    (Reactdb.Config.shared_everything ~executors:2 ~affinity:true
       (W.Smallbank.customers 8))
    (fun db ->
      DB.enable_history db;
      let eng = DB.engine db in
      for w = 0 to 3 do
        Sim.Engine.spawn eng (fun () ->
            let rng = Rng.create (50 + w) in
            for _ = 1 to 50 do
              ignore (exec db (W.Smallbank.gen_standard rng ~n:8))
            done)
      done;
      ignore (Sim.Engine.run eng);
      check_bool "most commit" true (DB.n_committed db > 150);
      (* serializability of the full run *)
      let entries =
        List.map
          (fun h ->
            { Histories.Certify.c_txn = h.DB.h_txn; c_tid = h.DB.h_tid;
              c_reads = h.DB.h_reads; c_writes = h.DB.h_writes })
          (DB.history db)
      in
      match Histories.Certify.check entries with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "not serializable: %s" m)

(* ---------------- TPC-C ---------------- *)

let tpcc_sizes = W.Tpcc.small_sizes

let tpcc_db ?(warehouses = 2) config_of =
  let decl = W.Tpcc.decl ~warehouses ~sizes:tpcc_sizes () in
  Harness.build decl (config_of (W.Tpcc.warehouses warehouses))

let tpcc_sn ws = Reactdb.Config.shared_nothing (List.map (fun w -> [ w ]) ws)

(* TPC-C-style consistency conditions, checked physically per warehouse:
   1. district.next_o_id - 1 = max(o_id) in orders and order_line;
   2. every new_order row has a matching orders row with carrier 0;
   3. per order, #order_line rows = ol_cnt. *)
let check_tpcc_consistency db w =
  List.iter
    (fun drow ->
      let d_id = Value.to_int drow.(0) in
      let next_o_id = Value.to_int drow.(3) in
      let orders =
        List.filter (fun o -> Value.to_int o.(0) = d_id) (rows db w "orders")
      in
      let max_o =
        List.fold_left (fun m o -> Stdlib.max m (Value.to_int o.(1))) 0 orders
      in
      check_int (w ^ " district sequence consistent") (next_o_id - 1) max_o;
      let new_orders =
        List.filter (fun n -> Value.to_int n.(0) = d_id) (rows db w "new_order")
      in
      List.iter
        (fun no ->
          let o_id = Value.to_int no.(1) in
          match
            List.find_opt (fun o -> Value.to_int o.(1) = o_id) orders
          with
          | Some o -> check_int "undelivered order carrier" 0 (Value.to_int o.(4))
          | None -> Alcotest.failf "new_order without order %d" o_id)
        new_orders;
      let lines = rows db w "order_line" in
      List.iter
        (fun o ->
          let o_id = Value.to_int o.(1) in
          let cnt =
            List.length
              (List.filter
                 (fun l ->
                   Value.to_int l.(0) = d_id && Value.to_int l.(1) = o_id)
                 lines)
          in
          check_int "order line count" (Value.to_int o.(5)) cnt)
        orders)
    (rows db w "district")

let test_tpcc_loader () =
  let db = tpcc_db tpcc_sn in
  check_tpcc_consistency db "w1";
  check_tpcc_consistency db "w2";
  check_int "items loaded" tpcc_sizes.W.Tpcc.items
    (List.length (rows db "w1" "item"));
  check_int "stock loaded" tpcc_sizes.W.Tpcc.items
    (List.length (rows db "w1" "stock"));
  check_int "customers loaded"
    (tpcc_sizes.W.Tpcc.districts * tpcc_sizes.W.Tpcc.customers_per_district)
    (List.length (rows db "w1" "customer"))

let in_sim db f =
  let result = ref None in
  Sim.Engine.spawn (DB.engine db) (fun () -> result := Some (f db));
  ignore (Sim.Engine.run (DB.engine db));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation stalled"

let no_args ~d_id ~c_id ~items =
  W.Wl.vi d_id :: W.Wl.vi c_id :: W.Wl.vf 0. :: W.Wl.vf 1.
  :: W.Wl.vi (List.length items)
  :: List.concat_map
       (fun (i, s, q) -> [ W.Wl.vi i; W.Wl.vs s; W.Wl.vi q ])
       items

let test_tpcc_new_order_local () =
  let db = tpcc_db tpcc_sn in
  let qty_before = Value.to_int (cell db "w1" "stock" [| Value.Int 1 |] 1) in
  let o_id =
    in_sim db (fun db ->
        let v =
          exec_ok db
            (W.Wl.request "w1" "new_order"
               (no_args ~d_id:1 ~c_id:1 ~items:[ (1, "w1", 3); (2, "w1", 4) ]))
        in
        Value.to_int v)
  in
  check_int "o_id allocated" (tpcc_sizes.W.Tpcc.preloaded_orders + 1) o_id;
  check_tpcc_consistency db "w1";
  let qty_after = Value.to_int (cell db "w1" "stock" [| Value.Int 1 |] 1) in
  check_bool "stock decremented" true
    (qty_after = qty_before - 3 || qty_after = qty_before - 3 + 91);
  (* order lines inserted with amounts *)
  let lines =
    List.filter
      (fun l -> Value.to_int l.(0) = 1 && Value.to_int l.(1) = o_id)
      (rows db "w1" "order_line")
  in
  check_int "two lines" 2 (List.length lines);
  List.iter
    (fun l -> check_bool "amount positive" true (Value.to_number l.(7) > 0.))
    lines

let test_tpcc_new_order_remote () =
  let db = tpcc_db tpcc_sn in
  let remote_cnt_before =
    Value.to_int (cell db "w2" "stock" [| Value.Int 5 |] 4)
  in
  ignore
    (in_sim db (fun db ->
         exec_ok db
           (W.Wl.request "w1" "new_order"
              (no_args ~d_id:1 ~c_id:2
                 ~items:[ (1, "w1", 1); (5, "w2", 2); (6, "w2", 1) ]))));
  check_tpcc_consistency db "w1";
  let remote_cnt_after =
    Value.to_int (cell db "w2" "stock" [| Value.Int 5 |] 4)
  in
  check_int "remote stock counted" (remote_cnt_before + 1) remote_cnt_after;
  (* order_line for the remote item carries the remote dist_info *)
  let lines = rows db "w1" "order_line" in
  let remote_line =
    List.find
      (fun l ->
        Value.to_int l.(3) = 5 && Value.to_str l.(4) = "w2"
        && Value.to_number l.(5) = 0.)
      lines
  in
  check_bool "dist info present" true
    (String.length (Value.to_str remote_line.(8)) > 0)

let test_tpcc_payment_local_and_remote () =
  let db = tpcc_db tpcc_sn in
  let bal0 = Value.to_number (cell db "w2" "customer" [| Value.Int 1; Value.Int 3 |] 4) in
  let ytd0 = Value.to_number (cell db "w1" "warehouse" [| Value.Int 1 |] 3) in
  in_sim db (fun db ->
      ignore
        (exec_ok db
           (W.Wl.request "w1" "payment"
              [ W.Wl.vi 900001; W.Wl.vi 1; W.Wl.vi 3; W.Wl.vs ""; W.Wl.vf 25.;
                W.Wl.vs "w2" ])));
  checkf "remote customer debited" (bal0 -. 25.)
    (Value.to_number (cell db "w2" "customer" [| Value.Int 1; Value.Int 3 |] 4));
  checkf "warehouse ytd credited" (ytd0 +. 25.)
    (Value.to_number (cell db "w1" "warehouse" [| Value.Int 1 |] 3));
  check_int "history row at home" 1 (List.length (rows db "w1" "history"))

let test_tpcc_payment_by_last_name () =
  let db = tpcc_db tpcc_sn in
  let last = W.Tpcc.last_name 0 in
  in_sim db (fun db ->
      ignore
        (exec_ok db
           (W.Wl.request "w1" "payment"
              [ W.Wl.vi 900002; W.Wl.vi 1; W.Wl.vi 1; W.Wl.vs last; W.Wl.vf 10.;
                W.Wl.vs "w1" ])));
  (* customer 1 has last_name 0; with one match it must be the one paid *)
  let cnt =
    Value.to_int (cell db "w1" "customer" [| Value.Int 1; Value.Int 1 |] 6)
  in
  check_int "payment_cnt bumped" 2 cnt

let test_tpcc_order_status () =
  let db = tpcc_db tpcc_sn in
  in_sim db (fun db ->
      let v =
        exec_ok db (W.Wl.request "w1" "order_status"
          [ W.Wl.vi 1; W.Wl.vi 1; W.Wl.vs "" ])
      in
      checkf "returns balance" (-10.) (Value.to_number v))

let test_tpcc_delivery () =
  let db = tpcc_db tpcc_sn in
  let undelivered_before = List.length (rows db "w1" "new_order") in
  check_bool "loader left undelivered orders" true (undelivered_before > 0);
  let delivered =
    in_sim db (fun db ->
        Value.to_int
          (exec_ok db (W.Wl.request "w1" "delivery" [ W.Wl.vi 5; W.Wl.vf 2. ])))
  in
  check_bool "delivered some" true (delivered > 0);
  check_int "new_order rows consumed" (undelivered_before - delivered)
    (List.length (rows db "w1" "new_order"));
  check_tpcc_consistency db "w1"

let test_tpcc_stock_level () =
  let db = tpcc_db tpcc_sn in
  in_sim db (fun db ->
      let v =
        exec_ok db (W.Wl.request "w1" "stock_level" [ W.Wl.vi 1; W.Wl.vi 200 ])
      in
      (* threshold 200 exceeds max stock (100): every recent item is low *)
      check_bool "counts low stock" true (Value.to_int v > 0))

let run_tpcc_mix config_of =
  let warehouses = 2 in
  let db = tpcc_db ~warehouses config_of in
  DB.enable_history db;
  let p =
    W.Tpcc.params ~sizes:tpcc_sizes ~remote_mode:(W.Tpcc.Per_item 0.3)
      ~remote_payment_prob:0.3 warehouses
  in
  let seq = ref 0 in
  let eng = DB.engine db in
  for w = 0 to 3 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.create (99 + w) in
        let home = 1 + (w mod warehouses) in
        for _ = 1 to 40 do
          ignore (exec db (W.Tpcc.gen_mix rng p ~home ~seq))
        done)
  done;
  ignore (Sim.Engine.run eng);
  check_int "all attempts accounted" 160 (DB.n_committed db + DB.n_aborted db);
  check_bool "most commit" true (DB.n_committed db > 90);
  check_tpcc_consistency db "w1";
  check_tpcc_consistency db "w2";
  let entries =
    List.map
      (fun h ->
        { Histories.Certify.c_txn = h.DB.h_txn; c_tid = h.DB.h_tid;
          c_reads = h.DB.h_reads; c_writes = h.DB.h_writes })
      (DB.history db)
  in
  match Histories.Certify.check entries with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "not serializable: %s" m

let test_tpcc_mix_shared_nothing () = run_tpcc_mix tpcc_sn

let test_tpcc_mix_cluster () =
  (* Shared-nothing split across two machines: same consistency and
     serializability guarantees, network costs included. *)
  run_tpcc_mix (fun ws ->
      Reactdb.Config.on_machines
        (Reactdb.Config.shared_nothing (List.map (fun w -> [ w ]) ws))
        (fun c -> c mod 2))

let test_tpcc_mix_shared_everything_affinity () =
  run_tpcc_mix (Reactdb.Config.shared_everything ~executors:2 ~affinity:true)

let test_tpcc_mix_shared_everything_rr () =
  run_tpcc_mix (Reactdb.Config.shared_everything ~executors:2 ~affinity:false)

(* ---------------- YCSB ---------------- *)

let test_ycsb_multi_update () =
  let n = 16 in
  let decl = W.Ycsb.decl ~keys:n () in
  let cfg =
    Reactdb.Config.shared_nothing
      (List.init 4 (fun c ->
           List.filteri (fun i _ -> i mod 4 = c) (W.Ycsb.keys n)))
  in
  let db = Harness.build decl cfg in
  in_sim db (fun db ->
      let req =
        W.Wl.request "k0" "multi_update"
          [ W.Wl.vs "NEW"; W.Wl.vs "k1"; W.Wl.vs "k2"; W.Wl.vs "k5" ]
      in
      ignore (exec_ok db req));
  List.iter
    (fun k ->
      check_bool (k ^ " updated") true
        (Value.to_str (cell db k "usertable" [| Value.Int 0 |] 1) = "NEW"))
    [ "k0"; "k1"; "k2"; "k5" ];
  check_bool "others untouched" true
    (Value.to_str (cell db "k3" "usertable" [| Value.Int 0 |] 1) <> "NEW")

let test_ycsb_generator_sorts_remote_first () =
  let n = 40 in
  let p = W.Ycsb.params ~txn_keys:6 ~theta:0.5 n in
  let container_of k = int_of_string (String.sub k 1 (String.length k - 1)) mod 4 in
  let rng = Rng.create 4 in
  for _ = 1 to 30 do
    let req = W.Ycsb.gen_multi_update rng p ~container_of in
    let home = container_of req.W.Wl.reactor in
    let keys = List.tl req.W.Wl.args in
    let remote_flags =
      List.map (fun k -> container_of (Value.to_str k) <> home) keys
    in
    (* once a local key appears, no remote key may follow *)
    let rec ok = function
      | true :: rest -> ok rest
      | false :: rest -> List.for_all not rest
      | [] -> true
    in
    check_bool "remote keys first" true (ok remote_flags);
    check_int "distinct keys" (List.length keys)
      (List.length (List.sort_uniq compare (List.map Value.to_str keys)))
  done

(* ---------------- Exchange ---------------- *)

let exchange_cfg n =
  Reactdb.Config.shared_nothing
    ([ "exchange" ] :: List.map (fun p -> [ p ]) (W.Exchange.providers n))

let test_exchange_auth_pay () =
  let n = 4 in
  let db = Harness.build (W.Exchange.decl ~providers:n ~orders_per_provider:20 ()) (exchange_cfg n) in
  let seq = ref 0 in
  in_sim db (fun db ->
      let rng = Rng.create 7 in
      ignore
        (exec_ok db
           (W.Exchange.gen_auth_pay rng ~strategy:`Procedure_par ~n_providers:n
              ~window:10 ~sim_cost:5. ~seq)));
  (* one provider gained an order *)
  let total_orders =
    List.fold_left
      (fun acc p -> acc + List.length (rows db p "orders"))
      0 (W.Exchange.providers n)
  in
  check_int "order added" (n * 20 + 1) total_orders

let test_exchange_exposure_abort () =
  let n = 2 in
  (* Tight p_exposure: loader sets 1e15, so craft a direct call with low
     limit through calc_risk on a provider. *)
  let db = Harness.build (W.Exchange.decl ~providers:n ~orders_per_provider:20 ()) (exchange_cfg n) in
  in_sim db (fun db ->
      let out =
        exec db
          (W.Wl.request "p0" "calc_risk"
             [ W.Wl.vf 1.; W.Wl.vi 20; W.Wl.vf 0.; W.Wl.vf 1e18 ])
      in
      match out.DB.result with
      | Error m -> check_bool "exposure abort" true
          (m = "provider exposure above limit")
      | Ok _ -> Alcotest.fail "expected abort")

let test_exchange_strategy_ordering () =
  (* Fig. 19's claim: sequential > query-par > proc-par. The sim cost and
     scan window are balanced so that both the scan parallelism (seq vs
     query-par) and the simulation parallelism (query-par vs proc-par) are
     visible. *)
  let n = 8 in
  let sim_cost = 200. in
  let lat strategy =
    let decl, cfg =
      match strategy with
      | `Sequential ->
        ( W.Exchange.mono_decl ~providers:n ~orders_per_provider:300 (),
          Reactdb.Config.shared_everything ~executors:1 ~affinity:true [ "mono" ] )
      | _ ->
        (W.Exchange.decl ~providers:n ~orders_per_provider:300 (), exchange_cfg n)
    in
    let db = Harness.build decl cfg in
    let seq = ref 0 in
    in_sim db (fun db ->
        let rng = Rng.create 11 in
        ignore
          (exec db
             (W.Exchange.gen_auth_pay rng ~strategy ~n_providers:n ~window:300
                ~sim_cost ~seq));
        let out =
          exec db
            (W.Exchange.gen_auth_pay rng ~strategy ~n_providers:n ~window:300
               ~sim_cost ~seq)
        in
        match out.DB.result with
        | Ok _ -> out.DB.latency
        | Error m -> Alcotest.failf "abort: %s" m)
  in
  let seq_l = lat `Sequential and qp = lat `Query_par and pp = lat `Procedure_par in
  check_bool
    (Printf.sprintf "seq=%.0f > query=%.0f > proc=%.0f" seq_l qp pp)
    true
    (seq_l > qp && qp > pp)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "smallbank formulations" `Quick
        test_smallbank_formulations_effects;
      Alcotest.test_case "smallbank latency ordering" `Quick
        test_smallbank_latency_ordering;
      Alcotest.test_case "smallbank overdraft" `Quick test_smallbank_overdraft_aborts;
      Alcotest.test_case "smallbank standard mix" `Quick test_smallbank_standard_mix;
      Alcotest.test_case "tpcc loader" `Quick test_tpcc_loader;
      Alcotest.test_case "tpcc new-order local" `Quick test_tpcc_new_order_local;
      Alcotest.test_case "tpcc new-order remote" `Quick test_tpcc_new_order_remote;
      Alcotest.test_case "tpcc payment" `Quick test_tpcc_payment_local_and_remote;
      Alcotest.test_case "tpcc payment by name" `Quick test_tpcc_payment_by_last_name;
      Alcotest.test_case "tpcc order-status" `Quick test_tpcc_order_status;
      Alcotest.test_case "tpcc delivery" `Quick test_tpcc_delivery;
      Alcotest.test_case "tpcc stock-level" `Quick test_tpcc_stock_level;
      Alcotest.test_case "tpcc mix SN" `Quick test_tpcc_mix_shared_nothing;
      Alcotest.test_case "tpcc mix on a 2-machine cluster" `Quick
        test_tpcc_mix_cluster;
      Alcotest.test_case "tpcc mix SE-affinity" `Quick
        test_tpcc_mix_shared_everything_affinity;
      Alcotest.test_case "tpcc mix SE-rr" `Quick test_tpcc_mix_shared_everything_rr;
      Alcotest.test_case "ycsb multi_update" `Quick test_ycsb_multi_update;
      Alcotest.test_case "ycsb generator ordering" `Quick
        test_ycsb_generator_sorts_remote_first;
      Alcotest.test_case "exchange auth_pay" `Quick test_exchange_auth_pay;
      Alcotest.test_case "exchange exposure abort" `Quick
        test_exchange_exposure_abort;
      Alcotest.test_case "exchange strategy ordering" `Quick
        test_exchange_strategy_ordering;
    ] )
