(* Unit and property tests for the B+tree, including the leaf-version
   witness discipline that OCC's phantom detection depends on. *)

module T = Btree.Make (Int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let build n =
  let t = T.create () in
  for i = 0 to n - 1 do
    ignore (T.insert t i (i * 10))
  done;
  t

let test_insert_find () =
  let t = build 1000 in
  check_int "size" 1000 (T.size t);
  for i = 0 to 999 do
    Alcotest.(check (option int)) "find" (Some (i * 10)) (T.find t i)
  done;
  Alcotest.(check (option int)) "missing" None (T.find t 5000);
  T.check_invariants t

let test_insert_replace () =
  let t = build 10 in
  Alcotest.(check (option int)) "replace returns prev" (Some 50) (T.insert t 5 99);
  Alcotest.(check (option int)) "new value" (Some 99) (T.find t 5);
  check_int "size unchanged" 10 (T.size t)

let test_delete () =
  let t = build 100 in
  Alcotest.(check (option int)) "delete existing" (Some 70) (T.delete t 7);
  Alcotest.(check (option int)) "gone" None (T.find t 7);
  Alcotest.(check (option int)) "delete missing" None (T.delete t 7);
  check_int "size" 99 (T.size t);
  T.check_invariants t

let test_reverse_insert_order () =
  let t = T.create () in
  for i = 999 downto 0 do
    ignore (T.insert t i i)
  done;
  T.check_invariants t;
  check_int "size" 1000 (T.size t);
  Alcotest.(check (option (pair int int))) "min" (Some (0, 0)) (T.min_binding t);
  Alcotest.(check (option (pair int int)))
    "max" (Some (999, 999)) (T.max_binding t)

let test_range () =
  let t = build 100 in
  let seen = ref [] in
  T.range t ~lo:10 ~hi:15 ~f:(fun k _ ->
      seen := k :: !seen;
      true);
  Alcotest.(check (list int)) "range keys" [ 10; 11; 12; 13; 14; 15 ]
    (List.rev !seen);
  (* early stop *)
  let seen = ref [] in
  T.range t ~lo:0 ~f:(fun k _ ->
      seen := k :: !seen;
      List.length !seen < 3);
  check_int "early stop" 3 (List.length !seen)

let test_range_unbounded () =
  let t = build 50 in
  let n = ref 0 in
  T.range t ~f:(fun _ _ -> incr n; true);
  check_int "full scan" 50 !n;
  let n = ref 0 in
  T.range t ~lo:40 ~f:(fun _ _ -> incr n; true);
  check_int "lo only" 10 !n;
  let n = ref 0 in
  T.range t ~hi:9 ~f:(fun _ _ -> incr n; true);
  check_int "hi only" 10 !n

let test_range_rev () =
  let t = build 100 in
  let seen = ref [] in
  T.range_rev t ~lo:95 ~f:(fun k _ ->
      seen := k :: !seen;
      true);
  Alcotest.(check (list int)) "descending tail" [ 99; 98; 97; 96; 95 ]
    (List.rev !seen);
  let seen = ref [] in
  T.range_rev t ~lo:10 ~hi:12 ~f:(fun k _ ->
      seen := k :: !seen;
      true);
  Alcotest.(check (list int)) "bounded reverse" [ 12; 11; 10 ] (List.rev !seen)

let test_range_empty_tree () =
  let t : int T.t = T.create () in
  let n = ref 0 in
  T.range t ~f:(fun _ _ -> incr n; true);
  T.range_rev t ~f:(fun _ _ -> incr n; true);
  check_int "no visits on empty tree" 0 !n;
  Alcotest.(check (option (pair int int))) "min empty" None (T.min_binding t)

let test_witness_stable_read () =
  let t = build 100 in
  let ws = ref [] in
  T.range t ~on_node:(fun w -> ws := w :: !ws) ~lo:10 ~hi:40 ~f:(fun _ _ -> true);
  check_bool "witnesses taken" true (List.length !ws > 0);
  check_bool "valid when untouched" true (List.for_all T.witness_valid !ws);
  (* An update of a value (no structural change) must keep witnesses valid. *)
  ignore (T.insert t 20 12345);
  check_bool "value replace keeps witnesses" true (List.for_all T.witness_valid !ws)

let test_witness_detects_insert () =
  (* Even keys only, so odd keys inside the range are genuine phantoms. *)
  let t = T.create () in
  for i = 0 to 99 do
    ignore (T.insert t (2 * i) i)
  done;
  let ws = ref [] in
  T.range t ~on_node:(fun w -> ws := w :: !ws) ~lo:10 ~hi:40 ~f:(fun _ _ -> true);
  check_bool "valid before" true (List.for_all T.witness_valid !ws);
  ignore (T.insert t 25 1);
  check_bool "phantom insert invalidates a witness" true
    (not (List.for_all T.witness_valid !ws))

let test_witness_detects_delete () =
  let t = build 100 in
  let ws = ref [] in
  T.range t ~on_node:(fun w -> ws := w :: !ws) ~lo:10 ~hi:40 ~f:(fun _ _ -> true);
  ignore (T.delete t 25);
  check_bool "delete invalidates a witness" true
    (not (List.for_all T.witness_valid !ws))

let test_witness_point_miss () =
  let t = build 10 in
  let ws = ref [] in
  Alcotest.(check (option int)) "miss" None
    (T.find t 55 ~on_node:(fun w -> ws := w :: !ws));
  check_int "one witness on miss" 1 (List.length !ws);
  ignore (T.insert t 55 1);
  check_bool "later insert of that key invalidates" true
    (not (List.for_all T.witness_valid !ws))

(* Model-based property test against Stdlib.Map. *)
module M = Map.Make (Int)

type op = Ins of int * int | Del of int | Find of int

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Ins (k, v)) (int_bound 500) (int_bound 10_000));
        (2, map (fun k -> Del k) (int_bound 500));
        (2, map (fun k -> Find k) (int_bound 500));
      ])

let show_op = function
  | Ins (k, v) -> Printf.sprintf "Ins(%d,%d)" k v
  | Del k -> Printf.sprintf "Del(%d)" k
  | Find k -> Printf.sprintf "Find(%d)" k

let prop_model =
  QCheck.Test.make ~name:"btree behaves like Map" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 0 400) gen_op)
       ~print:(fun ops -> String.concat ";" (List.map show_op ops)))
    (fun ops ->
      let t = T.create () in
      let m = ref M.empty in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Ins (k, v) ->
            let prev = T.insert t k v in
            if prev <> M.find_opt k !m then ok := false;
            m := M.add k v !m
          | Del k ->
            let prev = T.delete t k in
            if prev <> M.find_opt k !m then ok := false;
            m := M.remove k !m
          | Find k -> if T.find t k <> M.find_opt k !m then ok := false)
        ops;
      T.check_invariants t;
      !ok
      && T.size t = M.cardinal !m
      && T.to_list t = M.bindings !m)

let prop_range_matches_model =
  QCheck.Test.make ~name:"btree range = Map filtered bindings" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 300) (int_bound 1000))
        (int_bound 1000) (int_bound 1000))
    (fun (keys, a, b) ->
      let lo = min a b and hi = max a b in
      let t = T.create () in
      let m =
        List.fold_left
          (fun m k ->
            ignore (T.insert t k (k * 2));
            M.add k (k * 2) m)
          M.empty keys
      in
      let fwd = ref [] in
      T.range t ~lo ~hi ~f:(fun k v ->
          fwd := (k, v) :: !fwd;
          true);
      let rev = ref [] in
      T.range_rev t ~lo ~hi ~f:(fun k v ->
          rev := (k, v) :: !rev;
          true);
      let expected =
        List.filter (fun (k, _) -> k >= lo && k <= hi) (M.bindings m)
      in
      List.rev !fwd = expected && !rev = expected)

(* Soundness of phantom detection: take witnesses over a range, apply a
   random batch of structural operations, and check that whenever the
   range's CONTENT changed, at least one witness is invalid. (The converse
   — no false positives — is deliberately not required: leaf-granularity
   validation is conservative.) *)
let prop_witness_soundness =
  QCheck.Test.make ~name:"witnesses catch every range-content change" ~count:300
    QCheck.(
      triple
        (list_of_size Gen.(0 -- 150) (int_bound 300))
        (pair (int_bound 300) (int_bound 300))
        (list_of_size Gen.(1 -- 30) (pair bool (int_bound 300))))
    (fun (initial, (a, b), ops) ->
      let lo = min a b and hi = max a b in
      let t = T.create () in
      List.iter (fun k -> ignore (T.insert t k k)) initial;
      let contents () =
        let out = ref [] in
        T.range t ~lo ~hi ~f:(fun k _ ->
            out := k :: !out;
            true);
        List.rev !out
      in
      let before = contents () in
      let ws = ref [] in
      T.range t ~on_node:(fun w -> ws := w :: !ws) ~lo ~hi ~f:(fun _ _ -> true);
      (* ensure the boundary leaf is witnessed even when the range is empty *)
      ignore (T.find t lo ~on_node:(fun w -> ws := w :: !ws));
      List.iter
        (fun (ins, k) ->
          if ins then ignore (T.insert t k k) else ignore (T.delete t k))
        ops;
      let after = contents () in
      let all_valid = List.for_all T.witness_valid !ws in
      (* content changed => some witness invalid *)
      (not (before <> after)) || not all_valid)

let suite =
  ( "btree",
    [
      Alcotest.test_case "insert/find" `Quick test_insert_find;
      Alcotest.test_case "insert replace" `Quick test_insert_replace;
      Alcotest.test_case "delete" `Quick test_delete;
      Alcotest.test_case "reverse insert order" `Quick test_reverse_insert_order;
      Alcotest.test_case "range" `Quick test_range;
      Alcotest.test_case "range unbounded" `Quick test_range_unbounded;
      Alcotest.test_case "range_rev" `Quick test_range_rev;
      Alcotest.test_case "empty tree ranges" `Quick test_range_empty_tree;
      Alcotest.test_case "witness stable on reads" `Quick test_witness_stable_read;
      Alcotest.test_case "witness detects insert" `Quick test_witness_detects_insert;
      Alcotest.test_case "witness detects delete" `Quick test_witness_detects_delete;
      Alcotest.test_case "witness on point miss" `Quick test_witness_point_miss;
      QCheck_alcotest.to_alcotest prop_model;
      QCheck_alcotest.to_alcotest prop_range_matches_model;
      QCheck_alcotest.to_alcotest prop_witness_soundness;
    ] )
