(* Unit tests for the Silo-style OCC layer: visibility, validation,
   phantom protection, and the 2PC primitives. *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let sch =
  Storage.Schema.make ~name:"kv"
    ~columns:[ ("k", Value.TInt); ("v", Value.TInt) ]
    ~key:[ "k" ]

let fresh_table () =
  let tbl = Storage.Table.create sch in
  for i = 0 to 9 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Value.Int i; Value.Int (100 + i) |]))
  done;
  tbl

let ids = ref 0

let fresh_txn () =
  incr ids;
  Occ.Txn.create ~id:!ids

let key i = [| Value.Int i |]

let read_v txn ~c tbl i =
  match Storage.Table.find tbl (key i) with
  | None -> None
  | Some r -> (
    match Occ.Txn.read txn ~container:c r with
    | Some data -> Some (Value.to_int data.(1))
    | None -> None)

let write_v txn ~c tbl i v =
  match Storage.Table.find tbl (key i) with
  | None -> Alcotest.fail "missing record"
  | Some r ->
    Occ.Txn.write txn ~container:c ~table:tbl ~key:(key i) r
      [| Value.Int i; Value.Int v |]

let test_read_own_writes () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl 3 999;
  Alcotest.(check (option int)) "sees own write" (Some 999) (read_v t ~c:0 tbl 3);
  Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 50; Value.Int 1 |];
  (match Occ.Txn.own_insert t ~table:tbl ~key:(key 50) with
  | Some e ->
    check_int "own insert visible" 1
      (Value.to_int e.Occ.Txn.wrec.Storage.Record.data.(1))
  | None -> Alcotest.fail "own insert missing");
  (* Buffered insert is not physically in the table pre-commit. *)
  check_bool "not yet physical" true (Storage.Table.find tbl (key 50) = None)

let test_commit_installs () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl 1 42;
  Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 60; Value.Int 2 |];
  (match Storage.Table.find tbl (key 2) with
  | Some r ->
    Occ.Txn.delete t ~container:0 ~table:tbl ~key:(key 2) r
  | None -> Alcotest.fail "missing");
  (match Occ.Commit.commit_single t ~epoch:1 ~container:0 with
  | Ok tid -> check_bool "tid positive" true (tid > 0)
  | Error m -> Alcotest.failf "commit failed: %s" m);
  let t2 = fresh_txn () in
  Alcotest.(check (option int)) "update visible" (Some 42) (read_v t2 ~c:0 tbl 1);
  check_bool "insert installed" true (Storage.Table.find tbl (key 60) <> None);
  check_bool "delete removed" true (Storage.Table.find tbl (key 2) = None)

let test_write_write_conflict () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  (* Both read-modify-write key 4; t1 commits first; t2 must fail
     validation on its stale read. *)
  ignore (read_v t1 ~c:0 tbl 4);
  ignore (read_v t2 ~c:0 tbl 4);
  write_v t1 ~c:0 tbl 4 1;
  write_v t2 ~c:0 tbl 4 2;
  check_bool "t1 commits" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  check_bool "t2 aborts" true
    (Result.is_error (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "t1's write survives" (Some 1) (read_v t3 ~c:0 tbl 4)

let test_blind_write_no_conflict () =
  (* Blind writes (no read) of disjoint values: both commit, last wins. *)
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  write_v t1 ~c:0 tbl 5 1;
  write_v t2 ~c:0 tbl 5 2;
  check_bool "t1 ok" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  check_bool "t2 ok (no read validation)" true
    (Result.is_ok (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "last wins" (Some 2) (read_v t3 ~c:0 tbl 5)

let test_phantom_protection () =
  let tbl = fresh_table () in
  (* t1 scans keys [20, 30] (empty), t2 inserts 25 and commits, t1 must
     fail validation through its node set. *)
  let t1 = fresh_txn () and t2 = fresh_txn () in
  let seen = ref 0 in
  Storage.Table.range tbl ~lo:(key 20) ~hi:(key 30)
    ~on_node:(fun w -> Occ.Txn.note_node t1 ~container:0 w)
    ~f:(fun _ -> incr seen; true);
  check_int "empty range" 0 !seen;
  (* t1 must also write something, else it has nothing to validate against;
     give it a write to force full validation. *)
  write_v t1 ~c:0 tbl 0 7;
  Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 25; Value.Int 1 |];
  check_bool "t2 commits" true
    (Result.is_ok (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  check_bool "t1 aborts on phantom" true
    (Result.is_error (Occ.Commit.commit_single t1 ~epoch:1 ~container:0))

let test_insert_insert_conflict () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  Occ.Txn.insert t1 ~container:0 ~table:tbl [| Value.Int 77; Value.Int 1 |];
  Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 77; Value.Int 2 |];
  check_bool "t1 commits" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  check_bool "t2 aborts (duplicate)" true
    (Result.is_error (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "t1's row" (Some 1) (read_v t3 ~c:0 tbl 77)

let test_insert_existing_aborts_immediately () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  check_bool "duplicate key raises Abort" true
    (try
       Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 3; Value.Int 0 |];
       false
     with Occ.Txn.Abort _ -> true)

let test_delete_then_reinsert_other_txn () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () in
  (match Storage.Table.find tbl (key 7) with
  | Some r -> Occ.Txn.delete t1 ~container:0 ~table:tbl ~key:(key 7) r
  | None -> Alcotest.fail "missing");
  check_bool "t1 commits delete" true
    (Result.is_ok (Occ.Commit.commit_single t1 ~epoch:1 ~container:0));
  let t2 = fresh_txn () in
  Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 7; Value.Int 5 |];
  check_bool "reinsert commits" true
    (Result.is_ok (Occ.Commit.commit_single t2 ~epoch:1 ~container:0));
  let t3 = fresh_txn () in
  Alcotest.(check (option int)) "new row" (Some 5) (read_v t3 ~c:0 tbl 7)

let test_2pc_prepare_release () =
  (* Two containers, each with its own table; release after one prepare
     leaves no residue. *)
  let tbl0 = fresh_table () and tbl1 = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl0 1 11;
  write_v t ~c:1 tbl1 2 22;
  check_bool "prepare c0" true (Occ.Commit.prepare t ~container:0);
  (* Simulate failure on container 1: release both. *)
  Occ.Commit.release t ~container:0;
  Occ.Commit.release t ~container:1;
  let t2 = fresh_txn () in
  Alcotest.(check (option int)) "no residue c0" (Some 101) (read_v t2 ~c:0 tbl0 1);
  (match Storage.Table.find tbl0 (key 1) with
  | Some r -> check_bool "unlocked" false (Storage.Record.is_locked r)
  | None -> Alcotest.fail "missing")

let test_2pc_full_commit () =
  let tbl0 = fresh_table () and tbl1 = fresh_table () in
  let t = fresh_txn () in
  write_v t ~c:0 tbl0 1 11;
  Occ.Txn.insert t ~container:1 ~table:tbl1 [| Value.Int 88; Value.Int 8 |];
  Alcotest.(check (list int)) "containers" [ 0; 1 ] (Occ.Txn.containers t);
  check_bool "prepare c0" true (Occ.Commit.prepare t ~container:0);
  check_bool "prepare c1" true (Occ.Commit.prepare t ~container:1);
  let tid = Occ.Commit.compute_tid t ~epoch:2 in
  Occ.Commit.install t ~container:0 ~tid;
  Occ.Commit.install t ~container:1 ~tid;
  let t2 = fresh_txn () in
  Alcotest.(check (option int)) "c0 installed" (Some 11) (read_v t2 ~c:0 tbl0 1);
  Alcotest.(check (option int)) "c1 installed" (Some 8) (read_v t2 ~c:1 tbl1 88);
  check_int "tid epoch" 2 (Storage.Record.tid_epoch tid)

let test_prepare_locked_by_other_fails () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () and t2 = fresh_txn () in
  write_v t1 ~c:0 tbl 1 11;
  write_v t2 ~c:0 tbl 1 22;
  check_bool "t1 prepares (locks)" true (Occ.Commit.prepare t1 ~container:0);
  check_bool "t2 prepare fails on lock" false (Occ.Commit.prepare t2 ~container:0);
  (* t2 read-validating against a locked record also fails. *)
  let t3 = fresh_txn () in
  ignore (read_v t3 ~c:0 tbl 1);
  write_v t3 ~c:0 tbl 2 0;
  check_bool "reader of locked record fails validation" false
    (Occ.Commit.prepare t3 ~container:0);
  Occ.Commit.release t1 ~container:0

let test_reserved_insert_blocks_concurrent_insert () =
  let tbl = fresh_table () in
  let t1 = fresh_txn () in
  Occ.Txn.insert t1 ~container:0 ~table:tbl [| Value.Int 90; Value.Int 1 |];
  check_bool "t1 prepares (reserves 90)" true (Occ.Commit.prepare t1 ~container:0);
  (* Concurrent executor tries to insert the same key mid-2PC: the
     execution-time probe sees the reservation. *)
  let t2 = fresh_txn () in
  check_bool "t2 insert aborts on reservation" true
    (try
       Occ.Txn.insert t2 ~container:0 ~table:tbl [| Value.Int 90; Value.Int 2 |];
       false
     with Occ.Txn.Abort _ -> true);
  Occ.Commit.release t1 ~container:0;
  check_bool "reservation rolled back" true (Storage.Table.find tbl (key 90) = None)

let test_write_after_delete_rejected () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  (match Storage.Table.find tbl (key 1) with
  | Some r ->
    Occ.Txn.delete t ~container:0 ~table:tbl ~key:(key 1) r;
    check_bool "write-after-delete aborts" true
      (try
         Occ.Txn.write t ~container:0 ~table:tbl ~key:(key 1) r
           [| Value.Int 1; Value.Int 0 |];
         false
       with Occ.Txn.Abort _ -> true)
  | None -> Alcotest.fail "missing")

let test_delete_own_insert_cancels () =
  let tbl = fresh_table () in
  let t = fresh_txn () in
  Occ.Txn.insert t ~container:0 ~table:tbl [| Value.Int 91; Value.Int 1 |];
  (match Occ.Txn.own_insert t ~table:tbl ~key:(key 91) with
  | Some e -> Occ.Txn.delete t ~container:0 ~table:tbl ~key:(key 91) e.Occ.Txn.wrec
  | None -> Alcotest.fail "missing own insert");
  check_int "write set empty" 0 (Occ.Txn.write_count t);
  check_bool "commit clean" true
    (Result.is_ok (Occ.Commit.commit_single t ~epoch:1 ~container:0));
  check_bool "nothing installed" true (Storage.Table.find tbl (key 91) = None)

let suite =
  ( "occ",
    [
      Alcotest.test_case "read own writes" `Quick test_read_own_writes;
      Alcotest.test_case "commit installs" `Quick test_commit_installs;
      Alcotest.test_case "write-write conflict" `Quick test_write_write_conflict;
      Alcotest.test_case "blind writes" `Quick test_blind_write_no_conflict;
      Alcotest.test_case "phantom protection" `Quick test_phantom_protection;
      Alcotest.test_case "insert-insert conflict" `Quick test_insert_insert_conflict;
      Alcotest.test_case "duplicate insert aborts" `Quick
        test_insert_existing_aborts_immediately;
      Alcotest.test_case "delete then reinsert" `Quick
        test_delete_then_reinsert_other_txn;
      Alcotest.test_case "2pc prepare/release" `Quick test_2pc_prepare_release;
      Alcotest.test_case "2pc full commit" `Quick test_2pc_full_commit;
      Alcotest.test_case "prepare fails on foreign lock" `Quick
        test_prepare_locked_by_other_fails;
      Alcotest.test_case "reservation blocks insert" `Quick
        test_reserved_insert_blocks_concurrent_insert;
      Alcotest.test_case "write after delete" `Quick test_write_after_delete_rejected;
      Alcotest.test_case "delete own insert" `Quick test_delete_own_insert_cancels;
    ] )
