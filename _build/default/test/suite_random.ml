(* Randomized end-to-end properties over the whole stack: arbitrary
   deployments and load shapes must preserve money conservation and
   conflict-serializability, and the simulation must be bit-for-bit
   deterministic under a fixed seed. *)

open Util
module DB = Reactdb.Database

let check_bool = Alcotest.(check bool)

type shape =
  | SE of { executors : int; affinity : bool }
  | SN
  | Mixed (* two containers: one multi-executor, one single *)

let shape_to_string = function
  | SE { executors; affinity } ->
    Printf.sprintf "SE{exec=%d;aff=%b}" executors affinity
  | SN -> "SN"
  | Mixed -> "Mixed"

let config_of shape accounts =
  let names = Testlib.names accounts in
  match shape with
  | SE { executors; affinity } ->
    Reactdb.Config.shared_everything ~executors ~affinity names
  | SN -> Reactdb.Config.shared_nothing (List.map (fun n -> [ n ]) names)
  | Mixed ->
    let idx = Hashtbl.create 16 in
    List.iteri (fun i n -> Hashtbl.replace idx n i) names;
    Reactdb.Config.custom
      ~executors_per_container:[| 2; 1 |]
      ~router:Reactdb.Config.Affinity
      ~placement:(fun r -> Hashtbl.find idx r mod 2)
      ~affinity_slot:(fun r -> Hashtbl.find idx r)
      ()

(* One run: returns (committed, aborted, final balances, certify result). *)
let run_once ~shape ~accounts ~workers ~per_worker ~seed =
  Testlib.with_db ~n:accounts (config_of shape accounts) (fun db ->
      DB.enable_history db;
      let eng = DB.engine db in
      for w = 0 to workers - 1 do
        Sim.Engine.spawn eng (fun () ->
            let rng = Rng.create (seed + (w * 31)) in
            for _ = 1 to per_worker do
              let src = Rng.int rng accounts in
              let dst = Rng.pick_except rng accounts src in
              ignore
                (DB.exec_txn db
                   ~reactor:(Printf.sprintf "acct%d" src)
                   ~proc:"transfer_to"
                   ~args:
                     [ Value.Str (Printf.sprintf "acct%d" dst); Value.Float 1. ])
            done)
      done;
      ignore (Sim.Engine.run eng);
      let balances = List.map (Testlib.balance db) (Testlib.names accounts) in
      let entries =
        List.map
          (fun h ->
            { Histories.Certify.c_txn = h.DB.h_txn; c_tid = h.DB.h_tid;
              c_reads = h.DB.h_reads; c_writes = h.DB.h_writes })
          (DB.history db)
      in
      (DB.n_committed db, DB.n_aborted db, balances, Histories.Certify.check entries))

let gen_case =
  QCheck.Gen.(
    let* accounts = int_range 2 8 in
    let* workers = int_range 1 6 in
    let* seed = int_range 0 10_000 in
    let* shape =
      oneof
        [ return SN;
          return Mixed;
          map2
            (fun executors affinity -> SE { executors; affinity })
            (int_range 1 4) bool ]
    in
    return (shape, accounts, workers, seed))

let print_case (shape, accounts, workers, seed) =
  Printf.sprintf "%s accounts=%d workers=%d seed=%d" (shape_to_string shape)
    accounts workers seed

let prop_conservation_and_serializability =
  QCheck.Test.make ~name:"any deployment: conservation + serializability"
    ~count:25
    (QCheck.make gen_case ~print:print_case)
    (fun (shape, accounts, workers, seed) ->
      let committed, aborted, balances, cert =
        run_once ~shape ~accounts ~workers ~per_worker:15 ~seed
      in
      let total = List.fold_left ( +. ) 0. balances in
      let expected = 100. *. float_of_int accounts in
      committed + aborted >= workers * 15 (* balance reads add commits *)
      && Float.abs (total -. expected) < 1e-6
      && Result.is_ok cert)

let prop_determinism =
  QCheck.Test.make ~name:"same seed => identical execution" ~count:10
    (QCheck.make gen_case ~print:print_case)
    (fun (shape, accounts, workers, seed) ->
      let a = run_once ~shape ~accounts ~workers ~per_worker:10 ~seed in
      let b = run_once ~shape ~accounts ~workers ~per_worker:10 ~seed in
      (* Certify results compare up to the witness order; compare the rest
         exactly. *)
      let strip (c, ab, bal, cert) = (c, ab, bal, Result.is_ok cert) in
      strip a = strip b)

let test_seed_changes_interleaving () =
  (* different seeds must eventually produce different abort counts —
     otherwise the workload isn't actually exercising concurrency *)
  let distinct = ref false in
  let _, ab0, _, _ =
    run_once ~shape:SN ~accounts:3 ~workers:4 ~per_worker:25 ~seed:1
  in
  for seed = 2 to 8 do
    let _, ab, _, _ =
      run_once ~shape:SN ~accounts:3 ~workers:4 ~per_worker:25 ~seed
    in
    if ab <> ab0 then distinct := true
  done;
  check_bool "interleavings vary across seeds" true !distinct

let suite =
  ( "random",
    [
      QCheck_alcotest.to_alcotest prop_conservation_and_serializability;
      QCheck_alcotest.to_alcotest prop_determinism;
      Alcotest.test_case "seeds vary interleavings" `Quick
        test_seed_changes_interleaving;
    ] )
