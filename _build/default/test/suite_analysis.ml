(* Tests for the static call-structure analysis (the future-work item of
   §2.2.4): cycle detection, concurrent-reach warnings, spec validation,
   and soundness against the runtime's dynamic condition. *)

open Analysis

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A declaration with two reactor types for spec validation. *)
let dummy_proc _ctx _args = Util.Value.Null

let decl2 =
  Reactor.decl
    ~types:
      [
        Reactor.rtype ~name:"A" ~schemas:[]
          ~procs:[ ("root", dummy_proc); ("leafa", dummy_proc) ] ();
        Reactor.rtype ~name:"B" ~schemas:[]
          ~procs:[ ("leafb", dummy_proc); ("back", dummy_proc) ] ();
      ]
    ~reactors:[ ("a0", "A"); ("b0", "B") ]
    ()

let call ?(mode = Callspec.Async) target_type target_proc =
  { Callspec.target_type; target_proc; mode }

let test_clean_pipeline () =
  (* root -> async B.leafb once, then sync B.back: second call overlaps the
     first asynchronous one and both touch type B -> flagged. A purely
     synchronous version is clean. *)
  let sync_spec =
    Callspec.make
      [ (("A", "root"), [ call ~mode:Callspec.Sync "B" "leafb";
                          call ~mode:Callspec.Sync "B" "back" ]) ]
  in
  check_int "all-sync clean" 0 (List.length (Callspec.analyze decl2 sync_spec));
  let one_async =
    Callspec.make [ (("A", "root"), [ call "B" "leafb" ]) ]
  in
  check_int "single async clean" 0 (List.length (Callspec.analyze decl2 one_async))

let test_concurrent_reach_flagged () =
  let spec =
    Callspec.make
      [ (("A", "root"), [ call "B" "leafb"; call ~mode:Callspec.Sync "B" "back" ]) ]
  in
  match Callspec.analyze decl2 spec with
  | [ Callspec.Concurrent_reach { shared_type; first; second; _ } ] ->
    check_bool "shared type B" true (shared_type = "B");
    check_bool "first is async call" true (first = ("B", "leafb"));
    check_bool "second overlaps" true (second = ("B", "back"))
  | issues ->
    Alcotest.failf "expected one concurrent-reach, got %d" (List.length issues)

let test_transitive_reach_flagged () =
  (* A.root asynchronously calls B.leafb; then asynchronously calls A.leafa
     — which itself calls B.back: the overlap is transitive. *)
  let decl3 =
    Reactor.decl
      ~types:
        [
          Reactor.rtype ~name:"A" ~schemas:[]
            ~procs:[ ("root", dummy_proc); ("leafa", dummy_proc) ] ();
          Reactor.rtype ~name:"B" ~schemas:[] ~procs:[ ("leafb", dummy_proc) ] ();
          Reactor.rtype ~name:"C" ~schemas:[] ~procs:[ ("mid", dummy_proc) ] ();
        ]
      ~reactors:[ ("a0", "A") ]
      ()
  in
  let spec =
    Callspec.make
      [
        (("A", "root"), [ call "B" "leafb"; call "C" "mid" ]);
        (("C", "mid"), [ call ~mode:Callspec.Sync "B" "leafb" ]);
      ]
  in
  let issues = Callspec.analyze decl3 spec in
  check_bool "transitive overlap found" true
    (List.exists
       (function
         | Callspec.Concurrent_reach { shared_type = "B"; _ } -> true
         | _ -> false)
       issues)

let test_cycle_detection () =
  let spec =
    Callspec.make
      [
        (("A", "root"), [ call ~mode:Callspec.Sync "B" "back" ]);
        (("B", "back"), [ call ~mode:Callspec.Sync "A" "leafa" ]);
      ]
  in
  let issues = Callspec.analyze decl2 spec in
  check_bool "cycle reported" true
    (List.exists (function Callspec.Type_cycle _ -> true | _ -> false) issues)

let test_self_calls_are_safe () =
  (* Self-recursion and self-calls are inlined by the runtime: no cycle, no
     concurrency. Mirrors Smallbank's multi_transfer issuing several debits
     on itself. *)
  let decl1 =
    Reactor.decl
      ~types:
        [ Reactor.rtype ~name:"A" ~schemas:[]
            ~procs:[ ("root", dummy_proc); ("debit", dummy_proc) ] () ]
      ~reactors:[ ("a0", "A") ]
      ()
  in
  let spec =
    Callspec.make
      [ (("A", "root"),
         [ call ~mode:Callspec.Self "A" "debit";
           call ~mode:Callspec.Self "A" "debit" ]) ]
  in
  check_int "self calls clean" 0 (List.length (Callspec.analyze decl1 spec))

let test_validation () =
  let bad_ty = Callspec.make [ (("Z", "p"), []) ] in
  check_bool "unknown type" true
    (List.exists
       (function Callspec.Unknown_type "Z" -> true | _ -> false)
       (Callspec.analyze decl2 bad_ty));
  let bad_proc = Callspec.make [ (("A", "root"), [ call "B" "nope" ]) ] in
  check_bool "unknown proc" true
    (List.exists
       (function Callspec.Unknown_proc ("B", "nope") -> true | _ -> false)
       (Callspec.analyze decl2 bad_proc))

let test_reach () =
  let spec =
    Callspec.make
      [
        (("A", "root"), [ call "B" "leafb"; call ~mode:Callspec.Self "A" "leafa" ]);
        (("A", "leafa"), [ call ~mode:Callspec.Sync "B" "back" ]);
      ]
  in
  Alcotest.(check (list string)) "reach" [ "B" ] (Callspec.reach spec ("A", "root"))

(* Smallbank's multi-transfer, specified: the fully-async formulation calls
   transact_saving asynchronously on Customer destinations and then on
   itself — the analyzer warns (targets must be distinct customers), which
   is exactly the §2.2.4 discipline the paper asks developers to test for. *)
let test_smallbank_spec () =
  let decl = Workloads.Smallbank.decl ~customers:2 () in
  let spec =
    Callspec.make
      [
        (("Customer", "multi_transfer_fully_async"),
         [ call "Customer" "transact_saving";
           call ~mode:Callspec.Self "Customer" "transact_saving" ]);
        (("Customer", "multi_transfer_sync"),
         [ call ~mode:Callspec.Sync "Customer" "transfer_seq";
           call ~mode:Callspec.Sync "Customer" "transfer_seq" ]);
      ]
  in
  let issues = Callspec.analyze decl spec in
  check_bool "fully-async flagged for distinctness" true
    (List.exists
       (function
         | Callspec.Concurrent_reach { in_proc = _, "multi_transfer_fully_async"; _ }
           -> true
         | _ -> false)
       issues);
  check_bool "sync formulation not flagged" true
    (not
       (List.exists
          (function
            | Callspec.Concurrent_reach { in_proc = _, "multi_transfer_sync"; _ }
              -> true
            | _ -> false)
          issues))

let test_pp () =
  let s =
    Fmt.str "%a" Callspec.pp_issue
      (Callspec.Concurrent_reach
         { in_proc = ("A", "p"); first = ("B", "x"); second = ("B", "y");
           shared_type = "B" })
  in
  check_bool "message readable" true (String.length s > 40)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "clean specs" `Quick test_clean_pipeline;
      Alcotest.test_case "concurrent reach" `Quick test_concurrent_reach_flagged;
      Alcotest.test_case "transitive reach" `Quick test_transitive_reach_flagged;
      Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
      Alcotest.test_case "self calls safe" `Quick test_self_calls_are_safe;
      Alcotest.test_case "spec validation" `Quick test_validation;
      Alcotest.test_case "reach sets" `Quick test_reach;
      Alcotest.test_case "smallbank spec" `Quick test_smallbank_spec;
      Alcotest.test_case "issue printing" `Quick test_pp;
    ] )
