(* Tests for the Figure 3 cost model: hand-computed cases, bucket
   decomposition, and monotonicity properties. *)

open Costmodel

let checkf = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let c = uniform_costs ~cs:2. ~cr:7.

let test_leaf () = checkf "leaf is its processing" 5. (latency c (leaf ~at:1 5.))

let test_sync_children () =
  (* root at 0, two sync children at 1 and 2, 3µs each, plus 4µs local:
     4 + (3+2+7) + (3+2+7) = 28 *)
  let st =
    node ~at:0 ~p_seq:4. ~sync_seq:[ leaf ~at:1 3.; leaf ~at:2 3. ] ()
  in
  checkf "sync chain" 28. (latency c st)

let test_sync_same_executor_free_comm () =
  let st = node ~at:0 ~p_seq:4. ~sync_seq:[ leaf ~at:0 3. ] () in
  checkf "no comm to self" 7. (latency c st)

let test_async_max () =
  (* root at 0, three async children 10µs at 1..3:
     sends accumulate: child i completes at (2*i) + 10 + 7.
     child 3: 6 + 17 = 23. *)
  let st =
    node ~at:0 ~async:[ leaf ~at:1 10.; leaf ~at:2 10.; leaf ~at:3 10. ] ()
  in
  checkf "async fork-join" 23. (latency c st)

let test_overlap_hides_async () =
  (* 50µs of overlapped processing dominates the 19µs async child. *)
  let st = node ~at:0 ~async:[ leaf ~at:1 10. ] ~p_ovp:50. () in
  checkf "overlap dominates" 50. (latency c st);
  let st2 = node ~at:0 ~async:[ leaf ~at:1 100. ] ~p_ovp:50. () in
  checkf "async dominates" 109. (latency c st2)

let test_nested () =
  (* async child itself has a sync child: L(child) = 5 + (1 + 2 + 7) = 15;
     root: send 2 + 15 + recv 7 = 24. *)
  let child = node ~at:1 ~p_seq:5. ~sync_seq:[ leaf ~at:2 1. ] () in
  let st = node ~at:0 ~async:[ child ] () in
  checkf "nested" 24. (latency c st)

let test_decompose_sums () =
  let st =
    node ~at:0 ~p_seq:4.
      ~sync_seq:[ node ~at:1 ~p_seq:3. ~sync_seq:[ leaf ~at:2 1. ] () ]
      ~async:[ leaf ~at:3 10.; leaf ~at:4 2. ]
      ~p_ovp:1. ()
  in
  let d = decompose c st in
  checkf "buckets sum to latency" (latency c st)
    (d.d_sync_exec +. d.d_cs +. d.d_cr +. d.d_async);
  checkf "sync bucket is pure processing" 8. d.d_sync_exec;
  check_bool "cs bucket positive" true (d.d_cs > 0.)

let test_sequential_work () =
  let st =
    node ~at:0 ~p_seq:4. ~sync_seq:[ leaf ~at:1 3. ]
      ~async:[ leaf ~at:2 5.; leaf ~at:3 6. ]
      ~p_ovp:2. ()
  in
  checkf "total work" 20. (sequential_work st)

(* Property: moving a child from sync_seq to async never increases
   latency under uniform costs with cr >= 0 and no other children...
   — in general asynchrony can cost more when communication dominates
   processing; the paper's claim is about *overlap*. The robust property:
   latency is monotone in processing costs. *)
let prop_monotone_processing =
  QCheck.Test.make ~name:"latency monotone in processing cost" ~count:200
    QCheck.(
      triple (float_bound_exclusive 50.) (float_bound_exclusive 50.)
        (list_of_size Gen.(1 -- 5) (float_bound_exclusive 50.)))
    (fun (p, extra, asyncs) ->
      let mk p_seq =
        node ~at:0 ~p_seq
          ~async:(List.mapi (fun i d -> leaf ~at:(i + 1) d) asyncs)
          ()
      in
      latency c (mk (p +. extra)) >= latency c (mk p) -. 1e-9)

(* Property: fully-async (all children async) is never slower than
   fully-sync (same children synchronous) when the async send/recv pattern
   matches the sync one (cs and cr both paid per child in the sync case,
   and at most that in the async max term). *)
let prop_async_no_slower_than_sync =
  QCheck.Test.make ~name:"async formulation <= sync formulation" ~count:200
    QCheck.(list_of_size Gen.(1 -- 8) (float_bound_exclusive 100.))
    (fun durations ->
      let children = List.mapi (fun i d -> leaf ~at:(i + 1) d) durations in
      let sync = node ~at:0 ~sync_seq:children () in
      let asyn = node ~at:0 ~async:children () in
      latency c asyn <= latency c sync +. 1e-9)

(* Property: decomposition buckets always sum to the latency. *)
let gen_st =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then
      map2 (fun at p -> leaf ~at p) (int_bound 5) (float_bound_exclusive 20.)
    else
      map2
        (fun (at, p_seq, p_ovp) (ss, aa) ->
          node ~at ~p_seq ~sync_seq:ss ~async:aa ~p_ovp ())
        (triple (int_bound 5) (float_bound_exclusive 20.)
           (float_bound_exclusive 20.))
        (pair
           (list_size (int_bound 2) (go (depth - 1)))
           (list_size (int_bound 3) (go (depth - 1))))
  in
  go 2

let prop_decompose_sums =
  QCheck.Test.make ~name:"decomposition sums to latency" ~count:300
    (QCheck.make gen_st)
    (fun st ->
      let d = decompose c st in
      Float.abs (latency c st -. (d.d_sync_exec +. d.d_cs +. d.d_cr +. d.d_async))
      < 1e-6)

let test_linear_fit () =
  let f = linear_fit [ (1., 5.); (2., 7.); (3., 9.) ] in
  checkf "slope" 2. f.slope;
  checkf "intercept" 3. f.intercept;
  checkf "perfect r2" 1. f.r2;
  let noisy = linear_fit [ (0., 1.); (1., 2.9); (2., 5.1); (3., 7.) ] in
  check_bool "noisy slope near 2" true (Float.abs (noisy.slope -. 2.) < 0.1);
  check_bool "noisy r2 high" true (noisy.r2 > 0.99);
  check_bool "degenerate x rejected" true
    (try ignore (linear_fit [ (1., 1.); (1., 2.) ]); false
     with Invalid_argument _ -> true);
  checkf "constant y" 1. (linear_fit [ (1., 4.); (2., 4.) ]).r2

let test_fit_recovers_model_slope () =
  (* Fit the fully-sync family L(n) = base + n*(P + Cs + Cr) generated by
     the equation itself: the recovered slope must equal P + Cs + Cr. *)
  let p = 6. in
  let points =
    List.map
      (fun n ->
        let st =
          node ~at:0
            ~sync_seq:(List.init n (fun i -> leaf ~at:(i + 1) p))
            ()
        in
        (float_of_int n, latency c st))
      [ 1; 2; 3; 4; 5 ]
  in
  let f = linear_fit points in
  checkf "slope = P + Cs + Cr" (p +. 2. +. 7.) f.slope;
  checkf "r2 exact" 1. f.r2

let suite =
  ( "costmodel",
    [
      Alcotest.test_case "leaf" `Quick test_leaf;
      Alcotest.test_case "sync children" `Quick test_sync_children;
      Alcotest.test_case "self comm free" `Quick test_sync_same_executor_free_comm;
      Alcotest.test_case "async max term" `Quick test_async_max;
      Alcotest.test_case "overlap" `Quick test_overlap_hides_async;
      Alcotest.test_case "nested" `Quick test_nested;
      Alcotest.test_case "decompose sums" `Quick test_decompose_sums;
      Alcotest.test_case "sequential work" `Quick test_sequential_work;
      QCheck_alcotest.to_alcotest prop_monotone_processing;
      QCheck_alcotest.to_alcotest prop_async_no_slower_than_sync;
      QCheck_alcotest.to_alcotest prop_decompose_sums;
      Alcotest.test_case "linear fit" `Quick test_linear_fit;
      Alcotest.test_case "fit recovers model slope" `Quick
        test_fit_recovers_model_slope;
    ] )
