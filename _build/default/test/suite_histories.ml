(* Tests for the §2.3 formal machinery: projection, serializability
   checking in both models, Theorem 2.7 as a property, and certification
   of actual runtime histories. *)

open Histories

let check_bool = Alcotest.(check bool)

let ev ?(st = 0) t r item w =
  { Model.e_txn = t; e_st = st; e_reactor = r; e_item = item; e_write = w }

let test_serial_history_serializable () =
  (* T1 fully before T2, conflicting on the same item. *)
  let h = [ ev 1 0 "x" true; ev 1 0 "y" false; ev 2 0 "x" true ] in
  check_bool "reactor model" true (Model.reactor_serializable h);
  check_bool "classic model" true (Model.classic_serializable (Model.project h))

let test_cycle_not_serializable () =
  (* T1 reads x then writes y; T2 writes x after T1's read but reads y before
     T1's write: T1 -> T2 (rw on x), T2 -> T1 (rw on y). *)
  let h =
    [ ev 1 0 "x" false; ev 2 0 "y" false; ev 2 0 "x" true; ev 1 0 "y" true ]
  in
  check_bool "reactor model detects cycle" false (Model.reactor_serializable h);
  check_bool "classic model detects cycle" false
    (Model.classic_serializable (Model.project h))

let test_same_item_different_reactors_no_conflict () =
  (* The same item name in different reactors is a different data item
     (disjoint state, §2.3.2): no conflict, hence serializable. *)
  let h =
    [ ev 1 0 "x" false; ev 2 1 "x" true; ev 2 0 "q" true; ev 1 1 "q" true ]
  in
  (* cross pattern but on (reactor, item) pairs that do not collide *)
  check_bool "disjoint reactors" true (Model.reactor_serializable h);
  (* projection must preserve that: k ◦ x names differ *)
  check_bool "projection too" true (Model.classic_serializable (Model.project h))

let test_projection_name_mapping () =
  let h = [ ev 1 3 "x" true; ev 1 7 "x" true ] in
  match Model.project h with
  | [ a; b ] ->
    check_bool "distinct projected items" true (a.Model.c_item <> b.Model.c_item)
  | _ -> Alcotest.fail "arity"

let test_serial_order_witness () =
  let h = [ ev 2 0 "x" true; ev 1 0 "x" true ] in
  (match Model.serial_order h with
  | Some order -> Alcotest.(check (list int)) "T2 before T1" [ 2; 1 ] order
  | None -> Alcotest.fail "serializable");
  let bad =
    [ ev 1 0 "x" true; ev 2 0 "x" true; ev 2 0 "y" true; ev 1 0 "y" true ]
  in
  check_bool "no witness for cycle" true (Model.serial_order bad = None)

let test_has_cycle () =
  check_bool "cycle" true (Model.has_cycle [ (1, [ 2 ]); (2, [ 3 ]); (3, [ 1 ]) ]);
  check_bool "dag" false (Model.has_cycle [ (1, [ 2; 3 ]); (2, [ 3 ]) ]);
  check_bool "self loop" true (Model.has_cycle [ (1, [ 1 ]) ])

(* Theorem 2.7 as a property: for random histories (nested sub-transaction
   structure, several reactors/items), reactor-model serializability agrees
   with classic-model serializability of the projection. *)
let gen_history =
  QCheck.Gen.(
    list_size (int_range 0 30)
      (map
         (fun (t, st, r, item, w) ->
           {
             Model.e_txn = 1 + t;
             e_st = st;
             e_reactor = r;
             e_item = String.make 1 (Char.chr (Char.code 'a' + item));
             e_write = w;
           })
         (tup5 (int_bound 4) (int_bound 3) (int_bound 2) (int_bound 2) bool)))

let prop_theorem_2_7 =
  QCheck.Test.make ~name:"Theorem 2.7: serializable iff projection is"
    ~count:500 (QCheck.make gen_history)
    (fun h ->
      Model.reactor_serializable h
      = Model.classic_serializable (Model.project h))

(* --- runtime certification --- *)

let test_certify_clean () =
  let entries =
    [
      { Certify.c_txn = 1; c_tid = 10; c_reads = [ (100, 0) ]; c_writes = [ 100 ] };
      { Certify.c_txn = 2; c_tid = 20; c_reads = [ (100, 10) ]; c_writes = [ 100 ] };
    ]
  in
  match Certify.check entries with
  | Ok order -> Alcotest.(check (list int)) "order" [ 1; 2 ] order
  | Error m -> Alcotest.failf "unexpected: %s" m

let test_certify_detects_cycle () =
  (* T1 read x@0 and wrote y@10; T2 read y@0 and wrote x@10: each read the
     version preceding the other's write — classic write-skew cycle. *)
  let entries =
    [
      { Certify.c_txn = 1; c_tid = 10; c_reads = [ (1, 0) ]; c_writes = [ 2 ] };
      { Certify.c_txn = 2; c_tid = 10; c_reads = [ (2, 0) ]; c_writes = [ 1 ] };
    ]
  in
  check_bool "write-skew cycle" true (Result.is_error (Certify.check entries))

let test_certify_detects_impossible_read () =
  let entries =
    [ { Certify.c_txn = 1; c_tid = 10; c_reads = [ (1, 77) ]; c_writes = [] } ]
  in
  check_bool "phantom tid" true (Result.is_error (Certify.check entries))

(* End-to-end: record histories from adversarial runtime executions under
   every deployment and certify them. *)
let certify_run ?(accounts = 4) config =
  Testlib.with_db ~n:accounts config (fun db ->
      Reactdb.Database.enable_history db;
      Testlib.run_conflict_workload ~accounts db ~workers:6 ~per_worker:30;
      let entries =
        List.map
          (fun h ->
            {
              Certify.c_txn = h.Reactdb.Database.h_txn;
              c_tid = h.Reactdb.Database.h_tid;
              c_reads = h.Reactdb.Database.h_reads;
              c_writes = h.Reactdb.Database.h_writes;
            })
          (Reactdb.Database.history db)
      in
      check_bool "history non-trivial" true (List.length entries > 50);
      match Certify.check entries with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "execution not serializable: %s" m)

let test_certify_runtime_se () = certify_run (Testlib.se_config ~affinity:false 4 4)
let test_certify_runtime_sn () = certify_run ~accounts:16 (Testlib.sn_config 16)

let test_certify_runtime_affinity () =
  certify_run (Testlib.se_config ~affinity:true 2 4)

let suite =
  ( "histories",
    [
      Alcotest.test_case "serial history" `Quick test_serial_history_serializable;
      Alcotest.test_case "cycle detected" `Quick test_cycle_not_serializable;
      Alcotest.test_case "reactor state disjoint" `Quick
        test_same_item_different_reactors_no_conflict;
      Alcotest.test_case "projection naming" `Quick test_projection_name_mapping;
      Alcotest.test_case "serial order witness" `Quick test_serial_order_witness;
      Alcotest.test_case "cycle detection" `Quick test_has_cycle;
      QCheck_alcotest.to_alcotest prop_theorem_2_7;
      Alcotest.test_case "certify clean" `Quick test_certify_clean;
      Alcotest.test_case "certify cycle" `Quick test_certify_detects_cycle;
      Alcotest.test_case "certify impossible read" `Quick
        test_certify_detects_impossible_read;
      Alcotest.test_case "certify runtime SE" `Quick test_certify_runtime_se;
      Alcotest.test_case "certify runtime SN" `Quick test_certify_runtime_sn;
      Alcotest.test_case "certify runtime affinity" `Quick
        test_certify_runtime_affinity;
    ] )
