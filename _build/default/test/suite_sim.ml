(* Tests for the discrete-event engine: clock semantics, determinism,
   ivars, mailboxes. *)

open Sim

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))
let check_bool = Alcotest.(check bool)

let test_delay_advances_clock () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.spawn e (fun () ->
      seen := ("a", Engine.current_time ()) :: !seen;
      Engine.delay 5.;
      seen := ("b", Engine.current_time ()) :: !seen;
      Engine.delay 2.5;
      seen := ("c", Engine.current_time ()) :: !seen);
  let final = Engine.run e in
  check_float "final clock" 7.5 final;
  Alcotest.(check (list (pair string (float 1e-9))))
    "timeline"
    [ ("a", 0.); ("b", 5.); ("c", 7.5) ]
    (List.rev !seen)

let test_interleaving_deterministic () =
  let run_once () =
    let e = Engine.create () in
    let log = ref [] in
    Engine.spawn e (fun () ->
        for i = 1 to 3 do
          Engine.delay 2.;
          log := (1, i, Engine.current_time ()) :: !log
        done);
    Engine.spawn e (fun () ->
        for i = 1 to 3 do
          Engine.delay 3.;
          log := (2, i, Engine.current_time ()) :: !log
        done);
    ignore (Engine.run e);
    List.rev !log
  in
  let a = run_once () and b = run_once () in
  check_bool "identical logs" true (a = b);
  (* events must be time-ordered *)
  let times = List.map (fun (_, _, t) -> t) a in
  check_bool "time-sorted" true (List.sort Float.compare times = times)

let test_spawn_at () =
  let e = Engine.create () in
  let t = ref (-1.) in
  Engine.spawn e ~at:42. (fun () -> t := Engine.current_time ());
  ignore (Engine.run e);
  check_float "starts at 42" 42. !t

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.spawn e (fun () ->
      for _ = 1 to 100 do
        Engine.delay 1.;
        incr count
      done);
  let final = Engine.run ~until:10. e in
  check_float "stops at horizon" 10. final;
  check_int "only first 10 steps ran" 10 !count

let test_ivar_basic () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  let got = ref 0 and got_at = ref 0. in
  Engine.spawn e (fun () ->
      got := Engine.Ivar.read iv;
      got_at := Engine.current_time ());
  Engine.spawn e (fun () ->
      Engine.delay 10.;
      Engine.Ivar.fill iv 99);
  ignore (Engine.run e);
  check_int "value" 99 !got;
  check_float "woken at fill time" 10. !got_at;
  check_bool "filled" true (Engine.Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek" (Some 99) (Engine.Ivar.peek iv)

let test_ivar_read_after_fill () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  let got = ref 0 in
  Engine.spawn e (fun () -> Engine.Ivar.fill iv 7);
  Engine.spawn e (fun () ->
      Engine.delay 1.;
      got := Engine.Ivar.read iv);
  ignore (Engine.run e);
  check_int "no suspension needed" 7 !got

let test_ivar_double_fill () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  let raised = ref false in
  Engine.spawn e (fun () ->
      Engine.Ivar.fill iv 1;
      try Engine.Ivar.fill iv 2 with Invalid_argument _ -> raised := true);
  ignore (Engine.run e);
  check_bool "double fill rejected" true !raised

let test_ivar_multiple_readers () =
  let e = Engine.create () in
  let iv = Engine.Ivar.create () in
  let acc = ref [] in
  for i = 1 to 3 do
    Engine.spawn e (fun () ->
        let v = Engine.Ivar.read iv in
        acc := (i, v) :: !acc)
  done;
  Engine.spawn e (fun () ->
      Engine.delay 2.;
      Engine.Ivar.fill iv 5);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int)))
    "all readers woken in arrival order"
    [ (1, 5); (2, 5); (3, 5) ]
    (List.rev !acc)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create () in
  let order = ref [] in
  Engine.spawn e (fun () ->
      for i = 1 to 5 do
        Engine.Mailbox.push mb i;
        Engine.delay 1.
      done);
  Engine.spawn e (fun () ->
      for _ = 1 to 5 do
        let v = Engine.Mailbox.pop mb in
        order := v :: !order
      done);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_mailbox_blocking_pop () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create () in
  let popped_at = ref 0. in
  Engine.spawn e (fun () ->
      ignore (Engine.Mailbox.pop mb);
      popped_at := Engine.current_time ());
  Engine.spawn e (fun () ->
      Engine.delay 33.;
      Engine.Mailbox.push mb 0);
  ignore (Engine.run e);
  check_float "pop unblocked at push time" 33. !popped_at

let test_mailbox_multiple_waiters () =
  let e = Engine.create () in
  let mb = Engine.Mailbox.create () in
  let got = ref [] in
  for i = 1 to 3 do
    Engine.spawn e (fun () ->
        let v = Engine.Mailbox.pop mb in
        got := (i, v) :: !got)
  done;
  Engine.spawn e (fun () ->
      Engine.delay 1.;
      Engine.Mailbox.push mb 10;
      Engine.delay 1.;
      Engine.Mailbox.push mb 20;
      Engine.delay 1.;
      Engine.Mailbox.push mb 30);
  ignore (Engine.run e);
  Alcotest.(check (list (pair int int)))
    "waiters served fifo"
    [ (1, 10); (2, 20); (3, 30) ]
    (List.rev !got)

let test_spawn_here () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () ->
      Engine.delay 4.;
      Engine.spawn_here (fun () ->
          log := ("child", Engine.current_time ()) :: !log);
      Engine.delay 1.;
      log := ("parent", Engine.current_time ()) :: !log);
  ignore (Engine.run e);
  Alcotest.(check (list (pair string (float 1e-9))))
    "child starts at spawn time"
    [ ("child", 4.); ("parent", 5.) ]
    (List.rev !log)

let test_zero_delay_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.spawn e (fun () -> log := 1 :: !log);
  Engine.spawn e (fun () -> log := 2 :: !log);
  Engine.spawn e (fun () -> log := 3 :: !log);
  ignore (Engine.run e);
  Alcotest.(check (list int)) "spawn order preserved at equal time" [ 1; 2; 3 ]
    (List.rev !log)

let test_process_exception_propagates () =
  let e = Engine.create () in
  Engine.spawn e (fun () -> failwith "boom");
  Alcotest.check_raises "escapes run" (Failure "boom") (fun () ->
      ignore (Engine.run e))

let test_waker_single_shot () =
  let e = Engine.create () in
  let waker_ref = ref None in
  let raised = ref false in
  Engine.spawn e (fun () ->
      ignore (Engine.suspend (fun waker -> waker_ref := Some waker)));
  Engine.spawn e (fun () ->
      match !waker_ref with
      | Some w -> (
        w 1;
        try w 2 with Failure _ -> raised := true)
      | None -> ());
  ignore (Engine.run e);
  check_bool "second invocation rejected" true !raised

let test_events_executed_counter () =
  let e = Engine.create () in
  Engine.spawn e (fun () ->
      Engine.delay 1.;
      Engine.delay 1.);
  ignore (Engine.run e);
  check_bool "counts events" true (Engine.events_executed e >= 3)

let suite =
  ( "sim",
    [
      Alcotest.test_case "delay advances clock" `Quick test_delay_advances_clock;
      Alcotest.test_case "deterministic interleaving" `Quick
        test_interleaving_deterministic;
      Alcotest.test_case "spawn at" `Quick test_spawn_at;
      Alcotest.test_case "run until horizon" `Quick test_run_until;
      Alcotest.test_case "ivar basic" `Quick test_ivar_basic;
      Alcotest.test_case "ivar read after fill" `Quick test_ivar_read_after_fill;
      Alcotest.test_case "ivar double fill" `Quick test_ivar_double_fill;
      Alcotest.test_case "ivar multiple readers" `Quick test_ivar_multiple_readers;
      Alcotest.test_case "mailbox fifo" `Quick test_mailbox_fifo;
      Alcotest.test_case "mailbox blocking pop" `Quick test_mailbox_blocking_pop;
      Alcotest.test_case "mailbox multiple waiters" `Quick
        test_mailbox_multiple_waiters;
      Alcotest.test_case "spawn_here" `Quick test_spawn_here;
      Alcotest.test_case "zero-delay ordering" `Quick test_zero_delay_ordering;
      Alcotest.test_case "process exception propagates" `Quick
        test_process_exception_propagates;
      Alcotest.test_case "waker is single-shot" `Quick test_waker_single_shot;
      Alcotest.test_case "event counter" `Quick test_events_executed_counter;
    ] )
