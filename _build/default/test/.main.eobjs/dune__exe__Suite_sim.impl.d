test/suite_sim.ml: Alcotest Engine Float List Sim
