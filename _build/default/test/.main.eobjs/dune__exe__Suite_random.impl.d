test/suite_random.ml: Alcotest Float Hashtbl Histories List Printf QCheck QCheck_alcotest Reactdb Result Rng Sim Testlib Util Value
