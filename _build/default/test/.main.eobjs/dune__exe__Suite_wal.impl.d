test/suite_wal.ml: Alcotest Array Checkpoint Filename Float Harness List Option QCheck QCheck_alcotest Reactdb Rng Sim Stdlib Storage String Sys Testlib Util Value Wal Workloads
