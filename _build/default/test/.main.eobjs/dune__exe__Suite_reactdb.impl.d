test/suite_reactdb.ml: Alcotest Array List Printf Reactdb Result Sim String Testlib Util Value
