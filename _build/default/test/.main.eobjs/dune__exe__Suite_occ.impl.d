test/suite_occ.ml: Alcotest Array Occ Result Storage Util Value
