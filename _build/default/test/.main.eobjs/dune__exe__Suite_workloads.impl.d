test/suite_workloads.ml: Alcotest Array Harness Histories List Printf Reactdb Rng Sim Stdlib Storage String Util Value Workloads
