test/suite_misc.ml: Alcotest Array Fmt Harness List Printf Reactdb Reactor Sim Storage String Testlib Util Value Workloads
