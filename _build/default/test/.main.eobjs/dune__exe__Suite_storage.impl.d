test/suite_storage.ml: Alcotest Array List Storage Util Value
