test/suite_query.ml: Alcotest Array Fmt List Occ Query Result Storage String Util Value
