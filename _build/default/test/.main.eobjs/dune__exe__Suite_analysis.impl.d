test/suite_analysis.ml: Alcotest Analysis Callspec Fmt List Reactor String Util Workloads
