test/suite_secondary.ml: Alcotest Array Gen Hashtbl Int List Occ Printf QCheck QCheck_alcotest Query Result Storage Util Value
