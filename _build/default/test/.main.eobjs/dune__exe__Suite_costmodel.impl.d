test/suite_costmodel.ml: Alcotest Costmodel Float Gen List QCheck QCheck_alcotest
