test/suite_histories.ml: Alcotest Certify Char Histories List Model QCheck QCheck_alcotest Reactdb Result String Testlib
