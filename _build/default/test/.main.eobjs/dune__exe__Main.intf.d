test/main.mli:
