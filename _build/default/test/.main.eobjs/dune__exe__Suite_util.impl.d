test/suite_util.ml: Alcotest Array Float Gen List QCheck QCheck_alcotest Rng Stats String Tablefmt Util Value
