test/suite_btree.ml: Alcotest Btree Gen Int List Map Printf QCheck QCheck_alcotest String
