test/testlib.ml: Array List Printf Query Reactdb Reactor Rng Sim Storage Util Value
