test/suite_sql.ml: Alcotest Array Fmt Harness Histories List Occ Option Printf Query Reactdb Reactor Sim Sql Storage Util Value
