(* Tests for redo logging and recovery (the durability extension). *)

open Util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let entry txn tid writes = { Wal.le_txn = txn; le_tid = tid; le_writes = writes }

let put r t row = Wal.Put { reactor = r; table = t; row }
let del r t key = Wal.Del { reactor = r; table = t; key }

let sample_entry =
  entry 7 42
    [
      put "acct0" "acct" [| Value.Int 0; Value.Float 1.5 |];
      del "w;1" "ord\ters" [| Value.Str "tricky;,\tstring"; Value.Null |];
      put "x" "y" [| Value.Bool true; Value.Float Float.nan |];
    ]

let entry_eq a b =
  a.Wal.le_txn = b.Wal.le_txn
  && a.Wal.le_tid = b.Wal.le_tid
  && List.length a.Wal.le_writes = List.length b.Wal.le_writes
  && List.for_all2
       (fun x y ->
         match x, y with
         | ( Wal.Put { reactor = r1; table = t1; row = v1 },
             Wal.Put { reactor = r2; table = t2; row = v2 } )
         | ( Wal.Del { reactor = r1; table = t1; key = v1 },
             Wal.Del { reactor = r2; table = t2; key = v2 } ) ->
           r1 = r2 && t1 = t2
           && Array.length v1 = Array.length v2
           && Array.for_all2 Value.equal v1 v2
         | _ -> false)
       a.Wal.le_writes b.Wal.le_writes

let test_roundtrip () =
  let line = Wal.encode_entry sample_entry in
  check_bool "single line" true (not (String.contains line '\n'));
  check_bool "roundtrip" true (entry_eq sample_entry (Wal.decode_entry line))

let test_memory_log () =
  let log = Wal.in_memory () in
  Wal.append log (entry 1 10 [ put "a" "t" [| Value.Int 1 |] ]);
  Wal.append log (entry 2 20 []);
  check_int "length" 2 (Wal.length log);
  check_int "entries in order" 10 (List.hd (Wal.entries log)).Wal.le_tid

let test_file_log () =
  let path = Filename.temp_file "wal" ".log" in
  let log = Wal.to_file path in
  Wal.append log sample_entry;
  Wal.append log (entry 9 90 [ put "z" "t" [| Value.Str "" |] ]);
  Wal.close log;
  (match Wal.read_file path with
  | [ a; b ] ->
    check_bool "first" true (entry_eq a sample_entry);
    check_int "second tid" 90 b.Wal.le_tid
  | l -> Alcotest.failf "expected 2 entries, got %d" (List.length l));
  Sys.remove path

let test_corrupt_file () =
  let path = Filename.temp_file "wal" ".log" in
  let oc = open_out path in
  output_string oc "1\t10\t\nthis is not a log line\n";
  close_out oc;
  check_bool "corrupt detected" true
    (try
       ignore (Wal.read_file path);
       false
     with Failure m -> String.length m > 0);
  Sys.remove path

let prop_roundtrip =
  let gen_value =
    QCheck.Gen.(
      oneof
        [ return Value.Null;
          map (fun b -> Value.Bool b) bool;
          map (fun i -> Value.Int i) int;
          map (fun f -> Value.Float f) float;
          map (fun s -> Value.Str s) (string_size (int_bound 30)) ])
  in
  let gen_write =
    QCheck.Gen.(
      map3
        (fun k (r, t) vals ->
          let vals = Array.of_list vals in
          if k then Wal.Put { reactor = r; table = t; row = vals }
          else Wal.Del { reactor = r; table = t; key = vals })
        bool
        (pair (string_size (int_bound 10)) (string_size (int_bound 10)))
        (list_size (int_bound 6) gen_value))
  in
  let gen_entry =
    QCheck.Gen.(
      map3
        (fun txn tid ws -> entry txn tid ws)
        nat nat
        (list_size (int_bound 5) gen_write))
  in
  QCheck.Test.make ~name:"wal entry encode/decode roundtrip" ~count:300
    (QCheck.make gen_entry)
    (fun e -> entry_eq e (Wal.decode_entry (Wal.encode_entry e)))

(* --- replay semantics --- *)

let kv_schema =
  Storage.Schema.make ~name:"kv"
    ~columns:[ ("k", Value.TInt); ("v", Value.TInt) ]
    ~key:[ "k" ]

let test_replay () =
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog kv_schema in
  ignore
    (Storage.Table.insert tbl
       (Storage.Record.fresh ~absent:false [| Value.Int 1; Value.Int 10 |]));
  let entries =
    [
      (* later tid wins even though listed first: replay sorts by tid *)
      entry 2 200 [ put "r" "kv" [| Value.Int 1; Value.Int 999 |] ];
      entry 1 100
        [ put "r" "kv" [| Value.Int 1; Value.Int 500 |];
          put "r" "kv" [| Value.Int 2; Value.Int 20 |] ];
      entry 3 300 [ del "r" "kv" [| Value.Int 2 |] ];
    ]
  in
  let n = Wal.replay entries ~catalog_of:(fun _ -> catalog) in
  check_int "writes applied" 4 n;
  (match Storage.Table.find tbl [| Value.Int 1 |] with
  | Some r -> check_int "tid-ordered replay" 999 (Value.to_int r.Storage.Record.data.(1))
  | None -> Alcotest.fail "missing");
  check_bool "delete replayed" true (Storage.Table.find tbl [| Value.Int 2 |] = None)

(* --- end-to-end: crash-recovery equivalence --- *)

(* Physical snapshot of a database: (reactor, table, key, row) list. *)
let snapshot db reactor_names =
  List.concat_map
    (fun rname ->
      let catalog = Reactdb.Database.catalog_of db rname in
      List.concat_map
        (fun (tname, tbl) ->
          let rows = ref [] in
          Storage.Table.range tbl ~f:(fun r ->
              if not r.Storage.Record.absent then
                rows := (rname, tname, Array.to_list r.Storage.Record.data) :: !rows;
              true);
          !rows)
        (Storage.Catalog.tables catalog))
    reactor_names
  |> List.sort compare

let test_recovery_bank () =
  let log = Wal.in_memory () in
  let final =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        Reactdb.Database.attach_wal db log;
        Testlib.run_conflict_workload db ~workers:5 ~per_worker:30;
        snapshot db (Testlib.names 4))
  in
  check_bool "log non-empty" true (Wal.length log > 0);
  (* "Restart": fresh database from the same declaration, replay the log. *)
  let recovered =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        ignore
          (Wal.replay (Wal.entries log)
             ~catalog_of:(Reactdb.Database.catalog_of db));
        snapshot db (Testlib.names 4))
  in
  check_bool "recovered state identical" true (final = recovered)

let test_recovery_tpcc () =
  let log = Wal.in_memory () in
  let decl = Workloads.Tpcc.decl ~warehouses:2 ~sizes:Workloads.Tpcc.small_sizes () in
  let cfg =
    Reactdb.Config.shared_nothing
      (List.map (fun w -> [ w ]) (Workloads.Tpcc.warehouses 2))
  in
  let run f =
    let db = Harness.build decl cfg in
    let out = ref None in
    Sim.Engine.spawn (Reactdb.Database.engine db) (fun () -> out := Some (f db));
    ignore (Sim.Engine.run (Reactdb.Database.engine db));
    Option.get !out
  in
  let ws = Workloads.Tpcc.warehouses 2 in
  let final =
    run (fun db ->
        Reactdb.Database.attach_wal db log;
        let p = Workloads.Tpcc.params ~sizes:Workloads.Tpcc.small_sizes 2 in
        let seq = ref 0 in
        let rng = Rng.create 5 in
        for i = 0 to 79 do
          let req = Workloads.Tpcc.gen_mix rng p ~home:(1 + (i mod 2)) ~seq in
          ignore
            (Reactdb.Database.exec_txn db ~reactor:req.Workloads.Wl.reactor
               ~proc:req.Workloads.Wl.proc ~args:req.Workloads.Wl.args)
        done;
        snapshot db ws)
  in
  let recovered =
    run (fun db ->
        ignore
          (Wal.replay (Wal.entries log)
             ~catalog_of:(Reactdb.Database.catalog_of db));
        snapshot db ws)
  in
  check_bool "tpcc recovered state identical" true (final = recovered)

(* --- checkpoint + tail replay --- *)

let test_checkpoint_roundtrip_file () =
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog kv_schema in
  for i = 1 to 5 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Value.Int i; Value.Int (i * i) |]))
  done;
  let ck = Checkpoint.capture ~tid:77 [ ("r", catalog) ] in
  check_int "rows captured" 5 (List.length ck.Checkpoint.ck_rows);
  let path = Filename.temp_file "ck" ".dump" in
  Checkpoint.write_file path ck;
  let ck2 = Checkpoint.read_file path in
  Sys.remove path;
  check_int "tid preserved" 77 ck2.Checkpoint.ck_tid;
  check_bool "rows preserved" true (ck.Checkpoint.ck_rows = ck2.Checkpoint.ck_rows)

let test_checkpoint_recovery () =
  (* Run a workload with both a WAL and a mid-run checkpoint; recover from
     checkpoint + log tail; compare with full state. *)
  let log = Wal.in_memory () in
  let checkpoint = ref None in
  let final =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        Reactdb.Database.attach_wal db log;
        Testlib.run_conflict_workload db ~workers:3 ~per_worker:20;
        (* quiescent point: snapshot *)
        let max_tid =
          List.fold_left (fun m e -> Stdlib.max m e.Wal.le_tid) 0
            (Wal.entries log)
        in
        checkpoint :=
          Some
            (Checkpoint.capture ~tid:max_tid
               (List.map
                  (fun n -> (n, Reactdb.Database.catalog_of db n))
                  (Testlib.names 4)));
        (* more work after the checkpoint *)
        Testlib.run_conflict_workload db ~workers:3 ~per_worker:20;
        snapshot db (Testlib.names 4))
  in
  let ck = Option.get !checkpoint in
  let recovered =
    Testlib.with_db (Testlib.sn_config 4) (fun db ->
        let restored, replayed =
          Checkpoint.recover ~checkpoint:ck ~log:(Wal.entries log)
            ~catalog_of:(Reactdb.Database.catalog_of db)
        in
        check_bool "restored rows" true (restored > 0);
        check_bool "replayed only the tail" true
          (replayed < List.length (Wal.entries log) * 2);
        snapshot db (Testlib.names 4))
  in
  check_bool "checkpoint+tail state identical" true (final = recovered)

let test_checkpoint_restore_clears_loader_data () =
  (* restoring an empty-table checkpoint wipes loader rows *)
  let catalog = Storage.Catalog.create () in
  let tbl = Storage.Catalog.create_table catalog kv_schema in
  ignore
    (Storage.Table.insert tbl
       (Storage.Record.fresh ~absent:false [| Value.Int 1; Value.Int 1 |]));
  let empty_catalog = Storage.Catalog.create () in
  ignore (Storage.Catalog.create_table empty_catalog kv_schema);
  let ck =
    { (Checkpoint.capture ~tid:5 [ ("r", empty_catalog) ]) with
      Checkpoint.ck_rows = [ ("r", "kv", [| Value.Int 9; Value.Int 9 |]) ] }
  in
  ignore (Checkpoint.restore ck ~catalog_of:(fun _ -> catalog));
  check_bool "loader row gone" true (Storage.Table.find tbl [| Value.Int 1 |] = None);
  check_bool "checkpoint row present" true
    (Storage.Table.find tbl [| Value.Int 9 |] <> None)

let suite =
  ( "wal",
    [
      Alcotest.test_case "entry roundtrip" `Quick test_roundtrip;
      Alcotest.test_case "memory log" `Quick test_memory_log;
      Alcotest.test_case "file log" `Quick test_file_log;
      Alcotest.test_case "corrupt file" `Quick test_corrupt_file;
      QCheck_alcotest.to_alcotest prop_roundtrip;
      Alcotest.test_case "replay semantics" `Quick test_replay;
      Alcotest.test_case "recovery: bank" `Quick test_recovery_bank;
      Alcotest.test_case "recovery: tpcc" `Quick test_recovery_tpcc;
      Alcotest.test_case "checkpoint file roundtrip" `Quick
        test_checkpoint_roundtrip_file;
      Alcotest.test_case "checkpoint + tail recovery" `Quick
        test_checkpoint_recovery;
      Alcotest.test_case "restore clears loader data" `Quick
        test_checkpoint_restore_clears_loader_data;
    ] )
