exception Abort of string

type write_kind =
  | Update of Util.Value.t array
  | Insert
  | Delete

type write_entry = {
  wrec : Storage.Record.t;
  mutable kind : write_kind;
  wtable : Storage.Table.t;
  wkey : Storage.Table.Key.t;
  wcontainer : int;
}

module IntSet = Set.Make (Int)

type t = {
  tid : int;
  mutable containers : IntSet.t;
  reads : (int, Storage.Record.t * int * int) Hashtbl.t;
  (* rid -> (record, observed tid, container); first observation wins *)
  writes : (int, write_entry) Hashtbl.t; (* rid -> entry *)
  inserts : (int * Storage.Table.Key.t, write_entry) Hashtbl.t;
  (* (table uid, key) -> entry; includes only live buffered inserts *)
  mutable nodes : (int * Storage.Table.witness) list;
}

let create ~id =
  {
    tid = id;
    containers = IntSet.empty;
    reads = Hashtbl.create 64;
    writes = Hashtbl.create 16;
    inserts = Hashtbl.create 16;
    nodes = [];
  }

let id t = t.tid
let containers t = IntSet.elements t.containers
let touch t c = t.containers <- IntSet.add c t.containers

let own_write t record = Hashtbl.find_opt t.writes record.Storage.Record.rid

let own_insert t ~table ~key =
  Hashtbl.find_opt t.inserts (table.Storage.Table.uid, key)

let own_updates_for t ~table =
  Hashtbl.fold
    (fun _ e acc ->
      match e.kind with
      | Update data when e.wtable.Storage.Table.uid = table.Storage.Table.uid ->
        (e.wkey, data) :: acc
      | _ -> acc)
    t.writes []

let own_inserts_for t ~table =
  Hashtbl.fold
    (fun (uid, key) e acc ->
      if uid = table.Storage.Table.uid then (key, e.wrec.Storage.Record.data) :: acc
      else acc)
    t.inserts []

let note_read t ~container record =
  let rid = record.Storage.Record.rid in
  if not (Hashtbl.mem t.reads rid) then
    Hashtbl.add t.reads rid (record, record.Storage.Record.tid, container);
  touch t container

let read t ~container record =
  match own_write t record with
  | Some { kind = Update data; _ } -> Some data
  | Some { kind = Delete; _ } -> None
  | Some { kind = Insert; wrec; _ } ->
    (* Own buffered insert: visible without read-set tracking (the record is
       private to this transaction until install). *)
    Some wrec.Storage.Record.data
  | None ->
    note_read t ~container record;
    if record.Storage.Record.absent then None
    else Some record.Storage.Record.data

let write t ~container ~table ~key record data =
  Storage.Schema.validate table.Storage.Table.schema data;
  touch t container;
  match own_write t record with
  | Some ({ kind = Update _; _ } as e) -> e.kind <- Update data
  | Some ({ kind = Insert; wrec; _ } as e) ->
    wrec.Storage.Record.data <- data;
    ignore e
  | Some { kind = Delete; _ } -> raise (Abort "write after delete of same record")
  | None ->
    Hashtbl.add t.writes record.Storage.Record.rid
      { wrec = record; kind = Update data; wtable = table; wkey = key;
        wcontainer = container }

let insert t ~container ~table tuple =
  Storage.Schema.validate table.Storage.Table.schema tuple;
  touch t container;
  let key = Storage.Table.key_of_tuple table tuple in
  if Hashtbl.mem t.inserts (table.Storage.Table.uid, key) then
    raise (Abort "duplicate key (own insert)");
  (* Execution-time uniqueness probe. The leaf witness protects against a
     concurrent committer inserting the same key before we install. *)
  let clash = ref false in
  (match
     Storage.Table.find
       ~on_node:(fun w -> t.nodes <- (container, w) :: t.nodes)
       table key
   with
  | Some existing ->
    if existing.Storage.Record.absent then begin
      (* Reserved by a concurrent preparer, or a committed delete. In the
         former case the key is effectively taken; in the latter the record
         is a tombstone we must not collide with structurally — observe it
         and treat present-flip as a conflict. *)
      note_read t ~container existing;
      if Storage.Record.is_locked existing then clash := true
    end
    else clash := true
  | None -> ());
  if !clash then raise (Abort "duplicate key");
  let record = Storage.Record.fresh ~absent:true tuple in
  (* Hold the record's lock from creation: once reserved in the index during
     prepare, concurrent validators must see it as another's lock. *)
  ignore (Storage.Record.try_lock record ~txn:t.tid);
  let entry =
    { wrec = record; kind = Insert; wtable = table; wkey = key;
      wcontainer = container }
  in
  Hashtbl.add t.writes record.Storage.Record.rid entry;
  Hashtbl.add t.inserts (table.Storage.Table.uid, key) entry

let delete t ~container ~table ~key record =
  touch t container;
  match own_write t record with
  | Some { kind = Insert; wrec; _ } ->
    Hashtbl.remove t.writes wrec.Storage.Record.rid;
    Hashtbl.remove t.inserts (table.Storage.Table.uid, key)
  | Some ({ kind = Update _; _ } as e) -> e.kind <- Delete
  | Some { kind = Delete; _ } -> ()
  | None ->
    Hashtbl.add t.writes record.Storage.Record.rid
      { wrec = record; kind = Delete; wtable = table; wkey = key;
        wcontainer = container }

let note_node t ~container w =
  touch t container;
  t.nodes <- (container, w) :: t.nodes

let reads_in t ~container =
  Hashtbl.fold
    (fun _ (r, observed, c) acc -> if c = container then (r, observed) :: acc else acc)
    t.reads []

let writes_in t ~container =
  Hashtbl.fold
    (fun _ e acc -> if e.wcontainer = container then e :: acc else acc)
    t.writes []

let nodes_in t ~container =
  List.filter_map (fun (c, w) -> if c = container then Some w else None) t.nodes

let all_writes t = Hashtbl.fold (fun _ e acc -> e :: acc) t.writes []
let read_count t = Hashtbl.length t.reads
let write_count t = Hashtbl.length t.writes
