open Txn

let locked_kind e = match e.kind with Update _ | Delete -> true | Insert -> false

(* Remove a reserved insert from its table if the reservation happened. *)
let unreserve e =
  match Storage.Table.find e.wtable e.wkey with
  | Some r when r == e.wrec -> ignore (Storage.Table.remove e.wtable e.wkey)
  | _ -> ()

let release txn ~container =
  let id = Txn.id txn in
  List.iter
    (fun e ->
      if locked_kind e then Storage.Record.unlock e.wrec ~txn:id
      else unreserve e)
    (writes_in txn ~container)

let prepare txn ~container =
  let id = Txn.id txn in
  let writes = writes_in txn ~container in
  let lockable =
    List.sort
      (fun a b -> Int.compare a.wrec.Storage.Record.rid b.wrec.Storage.Record.rid)
      (List.filter locked_kind writes)
  in
  let rec lock_all acquired = function
    | [] -> Ok acquired
    | e :: rest ->
      if Storage.Record.try_lock e.wrec ~txn:id then
        lock_all (e :: acquired) rest
      else Error acquired
  in
  let unlock_list l = List.iter (fun e -> Storage.Record.unlock e.wrec ~txn:id) l in
  match lock_all [] lockable with
  | Error acquired ->
    unlock_list acquired;
    false
  | Ok acquired ->
    let reads_ok =
      List.for_all
        (fun (r, observed) ->
          r.Storage.Record.tid = observed
          && (match Storage.Record.locked_by r with
             | None -> true
             | Some owner -> owner = id))
        (reads_in txn ~container)
    in
    let nodes_ok =
      reads_ok
      && List.for_all Storage.Table.Idx.witness_valid (nodes_in txn ~container)
    in
    if not nodes_ok then begin
      unlock_list acquired;
      false
    end
    else begin
      (* Reserve inserts; a conflict here (concurrent installer beat us past
         our witness) rolls back this container's work. *)
      let rec reserve done_ = function
        | [] -> true
        | e :: rest when e.kind = Insert -> (
          match Storage.Table.find e.wtable e.wkey with
          | Some _ ->
            List.iter unreserve done_;
            unlock_list acquired;
            false
          | None ->
            ignore (Storage.Table.insert e.wtable e.wrec);
            reserve (e :: done_) rest)
        | _ :: rest -> reserve done_ rest
      in
      reserve [] writes
    end

let compute_tid txn ~epoch =
  let observed =
    List.map (fun (_, tid) -> tid)
      (List.concat_map
         (fun c -> Txn.reads_in txn ~container:c)
         (Txn.containers txn))
  in
  let overwritten =
    List.map (fun e -> e.wrec.Storage.Record.tid) (Txn.all_writes txn)
  in
  Storage.Record.next_tid ~epoch (List.rev_append observed overwritten)

let install txn ~container ~tid =
  let id = Txn.id txn in
  List.iter
    (fun e ->
      let r = e.wrec in
      (match e.kind with
      | Update data ->
        (* update_data relocates secondary-index entries when indexed
           columns changed *)
        Storage.Table.update_data e.wtable r data;
        r.Storage.Record.tid <- tid
      | Delete ->
        r.Storage.Record.absent <- true;
        r.Storage.Record.tid <- tid;
        ignore (Storage.Table.remove e.wtable e.wkey)
      | Insert ->
        r.Storage.Record.absent <- false;
        r.Storage.Record.tid <- tid);
      Storage.Record.unlock r ~txn:id)
    (writes_in txn ~container)

let commit_single txn ~epoch ~container =
  if prepare txn ~container then begin
    let tid = compute_tid txn ~epoch in
    install txn ~container ~tid;
    Ok tid
  end
  else Error "validation failed"
