lib/occ/txn.mli: Storage Util
