lib/occ/commit.ml: Int List Storage Txn
