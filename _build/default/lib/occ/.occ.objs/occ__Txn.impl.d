lib/occ/txn.ml: Hashtbl Int List Set Storage Util
