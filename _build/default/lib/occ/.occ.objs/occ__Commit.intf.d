lib/occ/commit.mli: Txn
