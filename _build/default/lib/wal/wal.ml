open Util

type write =
  | Put of { reactor : string; table : string; row : Value.t array }
  | Del of { reactor : string; table : string; key : Value.t array }

type entry = { le_txn : int; le_tid : int; le_writes : write list }

type sink = Memory of entry list ref | File of out_channel

type t = { sink : sink; mutable count : int }

let in_memory () = { sink = Memory (ref []); count = 0 }

let to_file path = { sink = File (open_out_gen [ Open_append; Open_creat ] 0o644 path); count = 0 }

(* --- encoding: one entry per line ---
   txn<TAB>tid<TAB>write;write;...
   write  := P|D , reactor , table , value,value,...
   value  := N | B:0/1 | I:n | F:hex-float | S:hexbytes
   Strings are hex-encoded so no separator can collide. *)

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex s =
  if String.length s mod 2 <> 0 then failwith "Wal: odd hex length";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let encode_value = function
  | Value.Null -> "N"
  | Value.Bool b -> if b then "B:1" else "B:0"
  | Value.Int i -> "I:" ^ string_of_int i
  | Value.Float f -> Printf.sprintf "F:%h" f
  | Value.Str s -> "S:" ^ hex s

let decode_value s =
  if s = "N" then Value.Null
  else
    match String.index_opt s ':' with
    | None -> failwith ("Wal: bad value " ^ s)
    | Some i -> (
      let tag = String.sub s 0 i in
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "B" -> Value.Bool (payload = "1")
      | "I" -> Value.Int (int_of_string payload)
      | "F" -> Value.Float (float_of_string payload)
      | "S" -> Value.Str (unhex payload)
      | _ -> failwith ("Wal: bad value tag " ^ tag))

let encode_write w =
  let kind, reactor, table, vals =
    match w with
    | Put { reactor; table; row } -> ("P", reactor, table, row)
    | Del { reactor; table; key } -> ("D", reactor, table, key)
  in
  String.concat ","
    (kind :: hex reactor :: hex table
    :: Array.to_list (Array.map encode_value vals))

let decode_write s =
  match String.split_on_char ',' s with
  | kind :: reactor :: table :: vals ->
    let reactor = unhex reactor and table = unhex table in
    let vals = Array.of_list (List.map decode_value vals) in
    (match kind with
    | "P" -> Put { reactor; table; row = vals }
    | "D" -> Del { reactor; table; key = vals }
    | _ -> failwith ("Wal: bad write kind " ^ kind))
  | _ -> failwith ("Wal: bad write " ^ s)

let encode_entry e =
  Printf.sprintf "%d\t%d\t%s" e.le_txn e.le_tid
    (String.concat ";" (List.map encode_write e.le_writes))

let decode_entry line =
  match String.split_on_char '\t' line with
  | [ txn; tid; writes ] ->
    let ws =
      if writes = "" then []
      else List.map decode_write (String.split_on_char ';' writes)
    in
    { le_txn = int_of_string txn; le_tid = int_of_string tid; le_writes = ws }
  | _ -> failwith ("Wal: bad entry line " ^ line)

let append t e =
  (match t.sink with
  | Memory r -> r := e :: !r
  | File oc ->
    output_string oc (encode_entry e);
    output_char oc '\n');
  t.count <- t.count + 1

let length t = t.count

let entries t =
  match t.sink with
  | Memory r -> List.rev !r
  | File _ -> invalid_arg "Wal.entries: file-backed log (use read_file)"

let close t = match t.sink with Memory _ -> () | File oc -> close_out oc

let read_file path =
  let ic = open_in path in
  let out = ref [] in
  let lineno = ref 0 in
  (try
     while true do
       incr lineno;
       let line = input_line ic in
       if line <> "" then
         out :=
           (try decode_entry line
            with Failure m ->
              close_in ic;
              failwith (Printf.sprintf "%s (line %d)" m !lineno))
           :: !out
     done
   with End_of_file -> close_in ic);
  List.rev !out

let replay entries ~catalog_of =
  let ordered =
    List.sort (fun a b -> Int.compare a.le_tid b.le_tid) entries
  in
  let applied = ref 0 in
  List.iter
    (fun e ->
      List.iter
        (fun w ->
          incr applied;
          match w with
          | Put { reactor; table; row } ->
            let tbl = Storage.Catalog.table (catalog_of reactor) table in
            let key = Storage.Table.key_of_tuple tbl row in
            (match Storage.Table.find tbl key with
            | Some record ->
              record.Storage.Record.data <- row;
              record.Storage.Record.tid <- e.le_tid;
              record.Storage.Record.absent <- false
            | None ->
              let record = Storage.Record.fresh ~absent:false row in
              record.Storage.Record.tid <- e.le_tid;
              ignore (Storage.Table.insert tbl record))
          | Del { reactor; table; key } ->
            let tbl = Storage.Catalog.table (catalog_of reactor) table in
            ignore (Storage.Table.remove tbl key))
        e.le_writes)
    ordered;
  !applied
