lib/wal/checkpoint.ml: Array List Printf Storage String Util Wal
