lib/wal/wal.ml: Array Buffer Char Int List Printf Storage String Util Value
