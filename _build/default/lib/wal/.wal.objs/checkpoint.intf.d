lib/wal/checkpoint.mli: Storage Util Wal
