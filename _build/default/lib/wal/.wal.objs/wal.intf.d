lib/wal/wal.mli: Storage Util
