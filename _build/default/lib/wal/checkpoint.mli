(** Checkpoints: bounded-log recovery.

    A checkpoint is a consistent physical dump of every reactor's relations
    plus the highest committed TID it includes. Recovery then needs only the
    log suffix: restore the checkpoint into a freshly declared database and
    replay WAL entries with TIDs above the checkpoint's watermark.

    Checkpoints must be taken from quiescent state (between [Engine.run]s,
    or before workers start) — the distributed-snapshot machinery the paper
    cites ([24]) for online checkpoints is out of scope. *)

type t = {
  ck_tid : int;  (** highest TID whose effects are included *)
  ck_rows : (string * string * Util.Value.t array) list;
      (** (reactor, table, row) *)
}

(** [capture ~tid catalogs] snapshots [(reactor, catalog)] pairs. *)
val capture : tid:int -> (string * Storage.Catalog.t) list -> t

(** [restore ck ~catalog_of] clears every table mentioned by the checkpoint
    target database and installs the snapshot rows. Returns the number of
    rows installed. Tables present in the target but absent from the
    checkpoint's reactors are cleared too (they were empty at capture). *)
val restore : t -> catalog_of:(string -> Storage.Catalog.t) -> int

(** File round-trip (same line format family as {!Wal}). *)

val write_file : string -> t -> unit
val read_file : string -> t

(** [recover ~checkpoint ~log ~catalog_of] = restore + replay of entries
    above the watermark; returns (rows restored, writes replayed). *)
val recover :
  checkpoint:t ->
  log:Wal.entry list ->
  catalog_of:(string -> Storage.Catalog.t) ->
  int * int
