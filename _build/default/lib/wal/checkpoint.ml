type t = {
  ck_tid : int;
  ck_rows : (string * string * Util.Value.t array) list;
}

let capture ~tid catalogs =
  let rows = ref [] in
  List.iter
    (fun (rname, catalog) ->
      List.iter
        (fun (tname, tbl) ->
          Storage.Table.range tbl ~f:(fun r ->
              if not r.Storage.Record.absent then
                rows := (rname, tname, Array.copy r.Storage.Record.data) :: !rows;
              true))
        (Storage.Catalog.tables catalog))
    catalogs;
  { ck_tid = tid; ck_rows = List.rev !rows }

let restore ck ~catalog_of =
  (* Clear all tables of every reactor the checkpoint covers, then insert.
     Clearing first makes restore idempotent and removes loader data. *)
  let reactors =
    List.sort_uniq String.compare (List.map (fun (r, _, _) -> r) ck.ck_rows)
  in
  List.iter
    (fun rname ->
      List.iter
        (fun (_, tbl) -> Storage.Table.Idx.clear tbl.Storage.Table.idx)
        (Storage.Catalog.tables (catalog_of rname)))
    reactors;
  let n = ref 0 in
  List.iter
    (fun (rname, tname, row) ->
      incr n;
      let tbl = Storage.Catalog.table (catalog_of rname) tname in
      let record = Storage.Record.fresh ~absent:false row in
      record.Storage.Record.tid <- ck.ck_tid;
      ignore (Storage.Table.insert tbl record))
    ck.ck_rows;
  !n

(* File format: first line "tid <n>", then one line per row reusing the
   Wal entry encoding with a Put write. *)

let write_file path ck =
  let oc = open_out path in
  Printf.fprintf oc "tid\t%d\n" ck.ck_tid;
  List.iter
    (fun (reactor, table, row) ->
      output_string oc
        (Wal.encode_entry
           { Wal.le_txn = 0; le_tid = ck.ck_tid;
             le_writes = [ Wal.Put { reactor; table; row } ] });
      output_char oc '\n')
    ck.ck_rows;
  close_out oc

let read_file path =
  let ic = open_in path in
  let header = input_line ic in
  let ck_tid =
    match String.split_on_char '\t' header with
    | [ "tid"; n ] -> int_of_string n
    | _ ->
      close_in ic;
      failwith "Checkpoint.read_file: bad header"
  in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       if line <> "" then
         match (Wal.decode_entry line).Wal.le_writes with
         | [ Wal.Put { reactor; table; row } ] ->
           rows := (reactor, table, row) :: !rows
         | _ ->
           close_in ic;
           failwith "Checkpoint.read_file: bad row line"
     done
   with End_of_file -> close_in ic);
  { ck_tid; ck_rows = List.rev !rows }

let recover ~checkpoint ~log ~catalog_of =
  let restored = restore checkpoint ~catalog_of in
  let tail =
    List.filter (fun e -> e.Wal.le_tid > checkpoint.ck_tid) log
  in
  let replayed = Wal.replay tail ~catalog_of in
  (restored, replayed)
