(** Redo logging and recovery.

    The paper's prototype has no durability (§3.1) and points to
    log-based recovery as the natural mechanism; this module provides it as
    an extension. ReactDB appends one redo record per committed transaction
    — its Silo TID and physical after-images of every write, qualified by
    reactor and table. Because TIDs totally order conflicting commits
    (Silo's invariant), replaying records in TID order onto a
    freshly-loaded database reconstructs exactly the committed state.

    The log can live purely in memory (tests, simulations) or stream to a
    file in a line-oriented text format that survives process restarts. *)

(** One write in a committed transaction. *)
type write =
  | Put of { reactor : string; table : string; row : Util.Value.t array }
      (** insert-or-replace of a full row *)
  | Del of { reactor : string; table : string; key : Util.Value.t array }

type entry = { le_txn : int; le_tid : int; le_writes : write list }

type t

(** In-memory log. *)
val in_memory : unit -> t

(** File-backed log (appends; the file is created if missing). Call
    {!close} to flush. *)
val to_file : string -> t

val append : t -> entry -> unit

(** Number of entries appended so far. *)
val length : t -> int

(** Entries in append order (in-memory logs only; raises
    [Invalid_argument] on file-backed logs — use {!read_file}). *)
val entries : t -> entry list

val close : t -> unit

(** Parse a log file written by {!to_file}. Raises [Failure] on corrupt
    input, identifying the line. *)
val read_file : string -> entry list

(** [replay entries ~catalog_of] applies entries in TID order: [Put]s
    insert-or-replace rows, [Del]s unlink keys. [catalog_of] resolves each
    reactor's catalog (e.g. [Reactdb.Database.catalog_of]). Returns the
    number of writes applied. *)
val replay :
  entry list -> catalog_of:(string -> Storage.Catalog.t) -> int

(** {1 Encoding (exposed for tests)} *)

val encode_entry : entry -> string
val decode_entry : string -> entry
