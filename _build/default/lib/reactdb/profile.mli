(** Hardware cost profiles for the simulated machine.

    All costs are in µs of virtual time. The default profile is calibrated
    so that the micro-measurements the paper reports re-emerge: a cheap
    send path vs. an expensive receive path (Cs ≪ Cr, §4.2.1), a ~20 µs
    per-invocation containerization overhead (App. F.3), and record
    operations in the sub-µs range typical of Silo-class engines. Profiles
    are plain records: experiments that need a different machine (e.g. the
    32-thread Opteron box with accentuated cross-core costs, §4.1.1) tweak
    fields functionally. *)

type t = {
  cost_read : float;  (** per record point-read *)
  cost_write : float;  (** per record write/insert/delete buffering *)
  cost_scan_step : float;  (** per record visited in a scan *)
  cost_proc_base : float;  (** fixed cost of entering a procedure body *)
  cost_send : float;  (** Cs: dispatch a sub-transaction to another container *)
  cost_sub_dispatch : float;
      (** destination-side cost to dequeue and start a remote
          sub-transaction or commit-protocol step *)
  cost_recv : float;
      (** Cr: thread-switch on the receive path when a blocked caller is
          resumed by a future completion *)
  cost_commit_base : float;  (** fixed validation/install cost per container *)
  cost_commit_per_op : float;  (** validation cost per read/write-set entry *)
  cost_2pc_msg : float;  (** coordinator cost per participant per 2PC phase *)
  cost_input_gen : float;  (** client-side input generation per transaction *)
  cost_client_dispatch : float;
      (** worker-to-executor invocation overhead (cross-core switch) *)
  cost_cache_miss : float;
      (** extra per data operation when the executing core has no cache
          affinity with the reactor's data *)
  cost_network : float;
      (** extra one-way cost per message between containers placed on
          different machines (cluster deployments — §6's future-work
          direction; 0-cost within a machine) *)
}

(** Calibrated default (the 4-core Xeon-like profile used for the latency
    experiments of §4.2). *)
val default : t

(** The two-socket Opteron-like profile (§4.3): higher cross-core
    communication and cache-miss penalties. *)
val opteron : t

(** An idealized zero-cost profile: all costs zero. With it, virtual time
    stands still — useful in unit tests that only check semantics. *)
val free : t

val pp : Format.formatter -> t -> unit
