type t = {
  cost_read : float;
  cost_write : float;
  cost_scan_step : float;
  cost_proc_base : float;
  cost_send : float;
  cost_sub_dispatch : float;
  cost_recv : float;
  cost_commit_base : float;
  cost_commit_per_op : float;
  cost_2pc_msg : float;
  cost_input_gen : float;
  cost_client_dispatch : float;
  cost_cache_miss : float;
  cost_network : float;
}

let default =
  {
    cost_read = 0.5;
    cost_write = 0.7;
    cost_scan_step = 0.25;
    cost_proc_base = 1.0;
    cost_send = 2.0;
    cost_sub_dispatch = 2.0;
    cost_recv = 7.0;
    cost_commit_base = 2.5;
    cost_commit_per_op = 0.15;
    cost_2pc_msg = 1.5;
    cost_input_gen = 2.0;
    cost_client_dispatch = 14.0;
    cost_cache_miss = 0.8;
    cost_network = 25.0;
  }

(* Slower cores, pricier cross-core traffic and cache misses: the 2.1 GHz
   two-socket Opteron of §4.1.1. *)
let opteron =
  {
    cost_read = 0.8;
    cost_write = 1.1;
    cost_scan_step = 0.4;
    cost_proc_base = 1.6;
    cost_send = 3.0;
    cost_sub_dispatch = 3.0;
    cost_recv = 10.0;
    cost_commit_base = 4.0;
    cost_commit_per_op = 0.25;
    cost_2pc_msg = 2.5;
    cost_input_gen = 3.0;
    cost_client_dispatch = 18.0;
    cost_cache_miss = 1.6;
    cost_network = 30.0;
  }

let free =
  {
    cost_read = 0.;
    cost_write = 0.;
    cost_scan_step = 0.;
    cost_proc_base = 0.;
    cost_send = 0.;
    cost_sub_dispatch = 0.;
    cost_recv = 0.;
    cost_commit_base = 0.;
    cost_commit_per_op = 0.;
    cost_2pc_msg = 0.;
    cost_input_gen = 0.;
    cost_client_dispatch = 0.;
    cost_cache_miss = 0.;
    cost_network = 0.;
  }

let pp ppf p =
  Fmt.pf ppf
    "{read=%.2f write=%.2f scan=%.2f proc=%.2f Cs=%.2f Cr=%.2f commit=%.2f+%.2f/op 2pc=%.2f input=%.2f dispatch=%.2f miss=%.2f}"
    p.cost_read p.cost_write p.cost_scan_step p.cost_proc_base p.cost_send
    p.cost_recv p.cost_commit_base p.cost_commit_per_op p.cost_2pc_msg
    p.cost_input_gen p.cost_client_dispatch p.cost_cache_miss
