lib/reactdb/database.ml: Array Config Engine Float Hashtbl List Occ Option Printf Profile Query Queue Reactor Sim Storage String Util Wal
