lib/reactdb/database.mli: Config Profile Reactor Sim Storage Util Wal
