lib/reactdb/profile.ml: Fmt
