lib/reactdb/config.ml: Array Hashtbl List Printf String
