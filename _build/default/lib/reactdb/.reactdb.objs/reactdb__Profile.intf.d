lib/reactdb/profile.mli: Format
