lib/reactdb/config.mli:
