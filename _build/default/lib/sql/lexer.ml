type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | QMARK
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | EOF

exception Lex_error of string

let keywords =
  [ "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "IS"; "NULL"; "INSERT";
    "INTO"; "VALUES"; "UPDATE"; "SET"; "DELETE"; "ORDER"; "BY"; "ASC";
    "DESC"; "LIMIT"; "GROUP"; "JOIN"; "INNER"; "ON"; "AS"; "SUM"; "COUNT";
    "MIN"; "MAX"; "AVG"; "TRUE"; "FALSE"; "IN"; "BETWEEN"; "LIKE" ]

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let pos = ref 0 in
  let peek () = if !pos < n then Some src.[!pos] else None in
  let out = ref [] in
  let emit t = out := t :: !out in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      incr pos;
      skip_ws ()
    | Some '-' when !pos + 1 < n && src.[!pos + 1] = '-' ->
      (* line comment *)
      while !pos < n && src.[!pos] <> '\n' do
        incr pos
      done;
      skip_ws ()
    | _ -> ()
  in
  let lex_ident () =
    let start = !pos in
    while !pos < n && is_ident_char src.[!pos] do
      incr pos
    done;
    let word = String.sub src start (!pos - start) in
    let upper = String.uppercase_ascii word in
    if List.mem upper keywords then emit (KW upper) else emit (IDENT word)
  in
  let lex_number () =
    let start = !pos in
    while !pos < n && is_digit src.[!pos] do
      incr pos
    done;
    let has_dot =
      !pos < n && src.[!pos] = '.' && !pos + 1 < n && is_digit src.[!pos + 1]
    in
    if has_dot then begin
      incr pos;
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done
    end;
    let has_exp =
      !pos < n
      && (src.[!pos] = 'e' || src.[!pos] = 'E')
      && (!pos + 1 < n
          && (is_digit src.[!pos + 1]
             || ((src.[!pos + 1] = '+' || src.[!pos + 1] = '-')
                && !pos + 2 < n && is_digit src.[!pos + 2])))
    in
    if has_exp then begin
      incr pos;
      if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done
    end;
    if has_dot || has_exp then
      emit (FLOAT (float_of_string (String.sub src start (!pos - start))))
    else emit (INT (int_of_string (String.sub src start (!pos - start))))
  in
  let lex_string () =
    incr pos;
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Lex_error "unterminated string literal")
      else if src.[!pos] = '\'' then
        if !pos + 1 < n && src.[!pos + 1] = '\'' then begin
          Buffer.add_char buf '\'';
          pos := !pos + 2;
          go ()
        end
        else incr pos
      else begin
        Buffer.add_char buf src.[!pos];
        incr pos;
        go ()
      end
    in
    go ();
    emit (STRING (Buffer.contents buf))
  in
  let rec loop () =
    skip_ws ();
    match peek () with
    | None -> emit EOF
    | Some c ->
      (if is_ident_start c then lex_ident ()
       else if is_digit c then lex_number ()
       else if c = '\'' then lex_string ()
       else begin
         incr pos;
         match c with
         | '(' -> emit LPAREN
         | ')' -> emit RPAREN
         | ',' -> emit COMMA
         | '.' -> emit DOT
         | '*' -> emit STAR
         | '?' -> emit QMARK
         | '+' -> emit PLUS
         | '-' -> emit MINUS
         | '/' -> emit SLASH
         | '=' -> emit EQ
         | '<' -> (
           match peek () with
           | Some '=' ->
             incr pos;
             emit LE
           | Some '>' ->
             incr pos;
             emit NE
           | _ -> emit LT)
         | '>' -> (
           match peek () with
           | Some '=' ->
             incr pos;
             emit GE
           | _ -> emit GT)
         | '!' -> (
           match peek () with
           | Some '=' ->
             incr pos;
             emit NE
           | _ -> raise (Lex_error "unexpected '!'"))
         | c -> raise (Lex_error (Printf.sprintf "unexpected character %C" c))
       end);
      if (match !out with EOF :: _ -> false | _ -> true) then loop ()
  in
  loop ();
  List.rev !out

let token_to_string = function
  | IDENT s -> s
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "'%s'" s
  | KW k -> k
  | LPAREN -> "(" | RPAREN -> ")" | COMMA -> "," | DOT -> "." | STAR -> "*"
  | QMARK -> "?" | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">"
  | GE -> ">=" | PLUS -> "+" | MINUS -> "-" | SLASH -> "/" | EOF -> "<eof>"
