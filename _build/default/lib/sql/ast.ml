type expr =
  | Col of string option * string
  | Lit of Util.Value.t
  | Param of int
  | Cmp of Query.Expr.cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Arith of Query.Expr.arith * expr * expr
  | Neg of expr
  | Is_null of expr
  | In of expr * expr list
  | Between of expr * expr * expr
  | Like of expr * string

type agg_fn = Sum | Count | Min | Max | Avg

type sel_item =
  | Star
  | Expr_item of expr * string option
  | Agg of agg_fn * expr option * string option

type order = { ord_col : string; ord_desc : bool }

type join = {
  j_table : string;
  j_alias : string option;
  j_left : string option * string;
  j_right : string option * string;
}

type select = {
  sel_items : sel_item list;
  sel_table : string;
  sel_alias : string option;
  sel_join : join option;
  sel_where : expr option;
  sel_group : (string option * string) list;
  sel_order : order option;
  sel_limit : int option;
}

type stmt =
  | Select of select
  | Insert of { ins_table : string; ins_cols : string list option; ins_values : expr list }
  | Update of { upd_table : string; upd_sets : (string * expr) list; upd_where : expr option }
  | Delete of { del_table : string; del_where : expr option }

let pp_qcol ppf (q, c) =
  match q with Some t -> Fmt.pf ppf "%s.%s" t c | None -> Fmt.string ppf c

(* Literals print in re-lexable SQL form: single-quoted strings with ''
   escapes, floats always with a decimal point or exponent. *)
let pp_lit ppf = function
  | Util.Value.Null -> Fmt.string ppf "NULL"
  | Util.Value.Bool b -> Fmt.string ppf (if b then "TRUE" else "FALSE")
  | Util.Value.Int i -> Fmt.int ppf i
  | Util.Value.Float f ->
    let s = Printf.sprintf "%.12g" f in
    if String.contains s '.' || String.contains s 'e'
       || String.contains s 'E'
    then Fmt.string ppf s
    else Fmt.pf ppf "%s.0" s
  | Util.Value.Str s ->
    Fmt.pf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))

let cmp_str = function
  | Query.Expr.Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">"
  | Ge -> ">="

let arith_str = function
  | Query.Expr.Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp_expr ppf = function
  | Col (q, c) -> pp_qcol ppf (q, c)
  | Lit v -> pp_lit ppf v
  | Param i -> Fmt.pf ppf "?%d" i
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (cmp_str op) pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp_expr a pp_expr b
  | Not a -> Fmt.pf ppf "(NOT %a)" pp_expr a
  | Arith (op, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (arith_str op) pp_expr b
  | Neg a -> Fmt.pf ppf "(-%a)" pp_expr a
  | Is_null a -> Fmt.pf ppf "(%a IS NULL)" pp_expr a
  | In (a, vs) ->
    Fmt.pf ppf "(%a IN (%a))" pp_expr a
      (Fmt.list ~sep:(Fmt.any ", ") pp_expr) vs
  | Between (a, lo, hi) ->
    Fmt.pf ppf "(%a BETWEEN %a AND %a)" pp_expr a pp_expr lo pp_expr hi
  | Like (a, pat) -> Fmt.pf ppf "(%a LIKE %a)" pp_expr a pp_lit (Util.Value.Str pat)

let agg_str = function
  | Sum -> "SUM" | Count -> "COUNT" | Min -> "MIN" | Max -> "MAX" | Avg -> "AVG"

let pp_item ppf = function
  | Star -> Fmt.string ppf "*"
  | Expr_item (e, alias) -> (
    pp_expr ppf e;
    match alias with Some a -> Fmt.pf ppf " AS %s" a | None -> ())
  | Agg (fn, arg, alias) -> (
    (match arg with
    | None -> Fmt.pf ppf "%s(*)" (agg_str fn)
    | Some e -> Fmt.pf ppf "%s(%a)" (agg_str fn) pp_expr e);
    match alias with Some a -> Fmt.pf ppf " AS %s" a | None -> ())

let pp_stmt ppf = function
  | Select s ->
    Fmt.pf ppf "SELECT %a FROM %s"
      (Fmt.list ~sep:(Fmt.any ", ") pp_item)
      s.sel_items s.sel_table;
    (match s.sel_alias with Some a -> Fmt.pf ppf " %s" a | None -> ());
    (match s.sel_join with
    | Some j ->
      Fmt.pf ppf " JOIN %s%s ON %a = %a" j.j_table
        (match j.j_alias with Some a -> " " ^ a | None -> "")
        pp_qcol j.j_left pp_qcol j.j_right
    | None -> ());
    (match s.sel_where with
    | Some e -> Fmt.pf ppf " WHERE %a" pp_expr e
    | None -> ());
    (match s.sel_group with
    | [] -> ()
    | g -> Fmt.pf ppf " GROUP BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_qcol) g);
    (match s.sel_order with
    | Some o ->
      Fmt.pf ppf " ORDER BY %s %s" o.ord_col (if o.ord_desc then "DESC" else "ASC")
    | None -> ());
    (match s.sel_limit with Some n -> Fmt.pf ppf " LIMIT %d" n | None -> ())
  | Insert { ins_table; ins_cols; ins_values } ->
    Fmt.pf ppf "INSERT INTO %s" ins_table;
    (match ins_cols with
    | Some cols -> Fmt.pf ppf " (%a)" (Fmt.list ~sep:(Fmt.any ", ") Fmt.string) cols
    | None -> ());
    Fmt.pf ppf " VALUES (%a)" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) ins_values
  | Update { upd_table; upd_sets; upd_where } ->
    Fmt.pf ppf "UPDATE %s SET %a" upd_table
      (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (c, e) ->
           Fmt.pf ppf "%s = %a" c pp_expr e))
      upd_sets;
    (match upd_where with
    | Some e -> Fmt.pf ppf " WHERE %a" pp_expr e
    | None -> ())
  | Delete { del_table; del_where } -> (
    Fmt.pf ppf "DELETE FROM %s" del_table;
    match del_where with
    | Some e -> Fmt.pf ppf " WHERE %a" pp_expr e
    | None -> ())

let rec expr_params = function
  | Param i -> i + 1
  | Col _ | Lit _ -> 0
  | Cmp (_, a, b) | And (a, b) | Or (a, b) | Arith (_, a, b) ->
    Stdlib.max (expr_params a) (expr_params b)
  | Not a | Neg a | Is_null a -> expr_params a
  | In (a, vs) ->
    List.fold_left (fun acc e -> Stdlib.max acc (expr_params e)) (expr_params a) vs
  | Between (a, lo, hi) ->
    Stdlib.max (expr_params a) (Stdlib.max (expr_params lo) (expr_params hi))
  | Like (a, _) -> expr_params a

let opt_params = function Some e -> expr_params e | None -> 0

let item_params = function
  | Star -> 0
  | Expr_item (e, _) -> expr_params e
  | Agg (_, Some e, _) -> expr_params e
  | Agg (_, None, _) -> 0

let param_count = function
  | Select s ->
    List.fold_left
      (fun acc it -> Stdlib.max acc (item_params it))
      (opt_params s.sel_where) s.sel_items
  | Insert { ins_values; _ } ->
    List.fold_left (fun acc e -> Stdlib.max acc (expr_params e)) 0 ins_values
  | Update { upd_sets; upd_where; _ } ->
    List.fold_left
      (fun acc (_, e) -> Stdlib.max acc (expr_params e))
      (opt_params upd_where) upd_sets
  | Delete { del_where; _ } -> opt_params del_where
