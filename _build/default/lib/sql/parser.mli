(** Recursive-descent parser for the SQL subset (see {!Ast}).

    Parameters ([?]) are numbered left to right from 0. *)

exception Parse_error of string

val parse : string -> Ast.stmt

(** Parse an expression alone (tests, interactive use). *)
val parse_expr : string -> Ast.expr
