(** Abstract syntax for the SQL subset supported on reactor state.

    The subset covers what the paper's stored procedures use (Fig. 1, 20,
    21): single-table scans with predicates, one optional inner join,
    aggregates with GROUP BY, ordering and limits, and single-table DML.
    Cross-reactor queries are deliberately impossible — reactors expose
    declarative querying only over their own relations (§2.2.1). *)

type expr =
  | Col of string option * string  (** optionally table-qualified *)
  | Lit of Util.Value.t
  | Param of int  (** [?] placeholders, numbered left to right from 0 *)
  | Cmp of Query.Expr.cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Arith of Query.Expr.arith * expr * expr
  | Neg of expr
  | Is_null of expr
  | In of expr * expr list
  | Between of expr * expr * expr
  | Like of expr * string
      (** SQL LIKE with [%] (any run) and [_] (any one character) *)

type agg_fn = Sum | Count | Min | Max | Avg

type sel_item =
  | Star
  | Expr_item of expr * string option  (** expression [AS alias] *)
  | Agg of agg_fn * expr option * string option
      (** [Agg (Count, None, _)] is a COUNT over all rows *)

type order = { ord_col : string; ord_desc : bool }

type join = {
  j_table : string;
  j_alias : string option;
  j_left : string option * string;  (** ON left column *)
  j_right : string option * string;  (** = right column *)
}

type select = {
  sel_items : sel_item list;
  sel_table : string;
  sel_alias : string option;
  sel_join : join option;
  sel_where : expr option;
  sel_group : (string option * string) list;
  sel_order : order option;
  sel_limit : int option;
}

type stmt =
  | Select of select
  | Insert of { ins_table : string; ins_cols : string list option; ins_values : expr list }
  | Update of { upd_table : string; upd_sets : (string * expr) list; upd_where : expr option }
  | Delete of { del_table : string; del_where : expr option }

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit

(** Number of distinct [?] parameters (max index + 1). *)
val param_count : stmt -> int
