(** Hand-written SQL lexer.

    Keywords are case-insensitive; identifiers keep their case. String
    literals use single quotes with [''] as the escape for a quote. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** uppercase keyword: SELECT, FROM, ... *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | QMARK
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | PLUS
  | MINUS
  | SLASH
  | EOF

exception Lex_error of string

val tokenize : string -> token list

val token_to_string : token -> string
