(** SQL execution over a reactor's transactional context.

    Statements run with the same visibility and concurrency-control
    semantics as the {!Query.Exec} combinators they compile to: reads are
    validated, scans are phantom-protected, writes are buffered in the
    enclosing (sub-)transaction. Parameters ([?]) are bound positionally.

    Supported: single-table SELECT with WHERE / ORDER BY one column /
    LIMIT, one INNER JOIN with an equality ON condition, aggregates
    (SUM/COUNT/MIN/MAX/AVG) with optional GROUP BY, and single-table
    INSERT / UPDATE / DELETE. *)

exception Sql_error of string

type result =
  | Rows of { cols : string list; rows : Util.Value.t array list }
  | Affected of int

(** Execute a parsed statement. *)
val exec_stmt :
  Query.Exec.ctx -> ?params:Util.Value.t list -> Ast.stmt -> result

(** Parse and execute. Raises {!Parser.Parse_error} or {!Sql_error}. *)
val exec : Query.Exec.ctx -> ?params:Util.Value.t list -> string -> result

(** {1 Convenience wrappers} *)

(** Rows of a SELECT; raises [Sql_error] on DML. *)
val query :
  Query.Exec.ctx -> ?params:Util.Value.t list -> string -> Util.Value.t array list

(** First row, if any. *)
val query1 :
  Query.Exec.ctx -> ?params:Util.Value.t list -> string ->
  Util.Value.t array option

(** Single scalar of a single-row, single-column SELECT; raises [Sql_error]
    otherwise (including zero rows). *)
val scalar : Query.Exec.ctx -> ?params:Util.Value.t list -> string -> Util.Value.t

(** Affected-row count of a DML statement; raises [Sql_error] on SELECT. *)
val execute : Query.Exec.ctx -> ?params:Util.Value.t list -> string -> int

(** Render a result as an ASCII table (REPL, tests). *)
val pp_result : Format.formatter -> result -> unit
