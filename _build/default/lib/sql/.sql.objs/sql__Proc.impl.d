lib/sql/proc.ml: Fmt List Reactor Run Util
