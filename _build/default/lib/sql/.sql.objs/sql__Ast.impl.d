lib/sql/ast.ml: Fmt List Printf Query Stdlib String Util
