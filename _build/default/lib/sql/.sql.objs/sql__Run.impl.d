lib/sql/run.ml: Array Ast Float Fmt Hashtbl List Option Parser Printf Query Storage String Util Value
