lib/sql/proc.mli: Reactor
