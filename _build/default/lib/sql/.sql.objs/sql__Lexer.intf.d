lib/sql/lexer.mli:
