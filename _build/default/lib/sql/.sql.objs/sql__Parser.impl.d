lib/sql/parser.ml: Array Ast Lexer Option Printf Query Util
