lib/sql/ast.mli: Format Query Util
