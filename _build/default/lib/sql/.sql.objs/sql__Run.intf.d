lib/sql/run.mli: Ast Format Query Util
