open Lexer

exception Parse_error of string

type state = { toks : token array; mutable pos : int; mutable params : int }

let peek st = st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let fail st msg =
  raise
    (Parse_error
       (Printf.sprintf "%s (at %s)" msg (token_to_string (peek st))))

let eat st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected %s" (token_to_string tok))

let kw st k =
  match peek st with
  | KW k' when k' = k -> advance st
  | _ -> fail st (Printf.sprintf "expected %s" k)

let try_kw st k =
  match peek st with
  | KW k' when k' = k ->
    advance st;
    true
  | _ -> false

let ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | _ -> fail st "expected identifier"

(* column reference, possibly table-qualified *)
let qualified_col st =
  let first = ident st in
  if peek st = DOT then begin
    advance st;
    (Some first, ident st)
  end
  else (None, first)

(* --- expressions, by descending precedence: OR, AND, NOT, comparison /
   IS NULL, additive, multiplicative, unary --- *)

let rec expr_or st =
  let a = expr_and st in
  if try_kw st "OR" then Ast.Or (a, expr_or st) else a

and expr_and st =
  let a = expr_not st in
  if try_kw st "AND" then Ast.And (a, expr_and st) else a

and expr_not st =
  if try_kw st "NOT" then Ast.Not (expr_not st) else expr_cmp st

and expr_cmp st =
  let a = expr_add st in
  match peek st with
  | EQ -> advance st; Ast.Cmp (Query.Expr.Eq, a, expr_add st)
  | NE -> advance st; Ast.Cmp (Query.Expr.Ne, a, expr_add st)
  | LT -> advance st; Ast.Cmp (Query.Expr.Lt, a, expr_add st)
  | LE -> advance st; Ast.Cmp (Query.Expr.Le, a, expr_add st)
  | GT -> advance st; Ast.Cmp (Query.Expr.Gt, a, expr_add st)
  | GE -> advance st; Ast.Cmp (Query.Expr.Ge, a, expr_add st)
  | KW "IS" ->
    advance st;
    let negated = try_kw st "NOT" in
    kw st "NULL";
    if negated then Ast.Not (Ast.Is_null a) else Ast.Is_null a
  | KW "IN" ->
    advance st;
    eat st LPAREN;
    let vs = in_list st in
    eat st RPAREN;
    Ast.In (a, vs)
  | KW "BETWEEN" ->
    advance st;
    let lo = expr_add st in
    kw st "AND";
    let hi = expr_add st in
    Ast.Between (a, lo, hi)
  | KW "LIKE" -> (
    advance st;
    match peek st with
    | STRING pat ->
      advance st;
      Ast.Like (a, pat)
    | _ -> fail st "expected string pattern after LIKE")
  | KW "NOT" when st.toks.(st.pos + 1) = KW "IN"
                  || st.toks.(st.pos + 1) = KW "BETWEEN"
                  || st.toks.(st.pos + 1) = KW "LIKE" ->
    advance st;
    (match expr_cmp_tail st a with
    | Some e -> Ast.Not e
    | None -> fail st "expected IN, BETWEEN or LIKE after NOT")
  | _ -> a

(* the postfix NOT variants share the positive parses *)
and expr_cmp_tail st a =
  match peek st with
  | KW "IN" ->
    advance st;
    eat st LPAREN;
    let vs = in_list st in
    eat st RPAREN;
    Some (Ast.In (a, vs))
  | KW "BETWEEN" ->
    advance st;
    let lo = expr_add st in
    kw st "AND";
    let hi = expr_add st in
    Some (Ast.Between (a, lo, hi))
  | KW "LIKE" -> (
    advance st;
    match peek st with
    | STRING pat ->
      advance st;
      Some (Ast.Like (a, pat))
    | _ -> fail st "expected string pattern after LIKE")
  | _ -> None

and in_list st =
  let x = expr_or st in
  if peek st = COMMA then begin
    advance st;
    x :: in_list st
  end
  else [ x ]

and expr_add st =
  let rec go a =
    match peek st with
    | PLUS -> advance st; go (Ast.Arith (Query.Expr.Add, a, expr_mul st))
    | MINUS -> advance st; go (Ast.Arith (Query.Expr.Sub, a, expr_mul st))
    | _ -> a
  in
  go (expr_mul st)

and expr_mul st =
  let rec go a =
    match peek st with
    | STAR -> advance st; go (Ast.Arith (Query.Expr.Mul, a, expr_unary st))
    | SLASH -> advance st; go (Ast.Arith (Query.Expr.Div, a, expr_unary st))
    | _ -> a
  in
  go (expr_unary st)

and expr_unary st =
  match peek st with
  | MINUS ->
    advance st;
    Ast.Neg (expr_unary st)
  | _ -> expr_atom st

and expr_atom st =
  match peek st with
  | INT i -> advance st; Ast.Lit (Util.Value.Int i)
  | FLOAT f -> advance st; Ast.Lit (Util.Value.Float f)
  | STRING s -> advance st; Ast.Lit (Util.Value.Str s)
  | KW "NULL" -> advance st; Ast.Lit Util.Value.Null
  | KW "TRUE" -> advance st; Ast.Lit (Util.Value.Bool true)
  | KW "FALSE" -> advance st; Ast.Lit (Util.Value.Bool false)
  | QMARK ->
    advance st;
    let i = st.params in
    st.params <- st.params + 1;
    Ast.Param i
  | LPAREN ->
    advance st;
    let e = expr_or st in
    eat st RPAREN;
    e
  | IDENT _ ->
    let q, c = qualified_col st in
    Ast.Col (q, c)
  | _ -> fail st "expected expression"

(* --- select list --- *)

let agg_of_kw = function
  | "SUM" -> Some Ast.Sum
  | "COUNT" -> Some Ast.Count
  | "MIN" -> Some Ast.Min
  | "MAX" -> Some Ast.Max
  | "AVG" -> Some Ast.Avg
  | _ -> None

let alias_opt st =
  if try_kw st "AS" then Some (ident st)
  else match peek st with IDENT _ -> Some (ident st) | _ -> None

let sel_item st =
  match peek st with
  | STAR ->
    advance st;
    Ast.Star
  | KW k when agg_of_kw k <> None ->
    advance st;
    let fn = Option.get (agg_of_kw k) in
    eat st LPAREN;
    let arg =
      if peek st = STAR then begin
        advance st;
        None
      end
      else Some (expr_or st)
    in
    eat st RPAREN;
    Ast.Agg (fn, arg, alias_opt st)
  | _ ->
    let e = expr_or st in
    Ast.Expr_item (e, alias_opt st)

let rec comma_list st f =
  let x = f st in
  if peek st = COMMA then begin
    advance st;
    x :: comma_list st f
  end
  else [ x ]

(* --- statements --- *)

let parse_select st =
  kw st "SELECT";
  let items = comma_list st sel_item in
  kw st "FROM";
  let table = ident st in
  let alias = match peek st with IDENT _ -> Some (ident st) | _ -> None in
  let join =
    let inner = try_kw st "INNER" in
    if inner || peek st = KW "JOIN" then begin
      kw st "JOIN";
      let j_table = ident st in
      let j_alias = match peek st with IDENT _ -> Some (ident st) | _ -> None in
      kw st "ON";
      let left = qualified_col st in
      eat st EQ;
      let right = qualified_col st in
      Some { Ast.j_table; j_alias; j_left = left; j_right = right }
    end
    else None
  in
  let where = if try_kw st "WHERE" then Some (expr_or st) else None in
  let group =
    if try_kw st "GROUP" then begin
      kw st "BY";
      comma_list st qualified_col
    end
    else []
  in
  let order =
    if try_kw st "ORDER" then begin
      kw st "BY";
      let col = ident st in
      let desc =
        if try_kw st "DESC" then true
        else begin
          ignore (try_kw st "ASC");
          false
        end
      in
      Some { Ast.ord_col = col; ord_desc = desc }
    end
    else None
  in
  let limit =
    if try_kw st "LIMIT" then (
      match peek st with
      | INT n ->
        advance st;
        Some n
      | _ -> fail st "expected integer after LIMIT")
    else None
  in
  Ast.Select
    { sel_items = items; sel_table = table; sel_alias = alias; sel_join = join;
      sel_where = where; sel_group = group; sel_order = order;
      sel_limit = limit }

let parse_insert st =
  kw st "INSERT";
  kw st "INTO";
  let table = ident st in
  let cols =
    if peek st = LPAREN then begin
      advance st;
      let cs = comma_list st ident in
      eat st RPAREN;
      Some cs
    end
    else None
  in
  kw st "VALUES";
  eat st LPAREN;
  let values = comma_list st expr_or in
  eat st RPAREN;
  Ast.Insert { ins_table = table; ins_cols = cols; ins_values = values }

let parse_update st =
  kw st "UPDATE";
  let table = ident st in
  kw st "SET";
  let sets =
    comma_list st (fun st ->
        let c = ident st in
        eat st EQ;
        (c, expr_or st))
  in
  let where = if try_kw st "WHERE" then Some (expr_or st) else None in
  Ast.Update { upd_table = table; upd_sets = sets; upd_where = where }

let parse_delete st =
  kw st "DELETE";
  kw st "FROM";
  let table = ident st in
  let where = if try_kw st "WHERE" then Some (expr_or st) else None in
  Ast.Delete { del_table = table; del_where = where }

let make_state src =
  { toks = Array.of_list (Lexer.tokenize src); pos = 0; params = 0 }

let parse src =
  let st = try make_state src with Lex_error m -> raise (Parse_error m) in
  let stmt =
    match peek st with
    | KW "SELECT" -> parse_select st
    | KW "INSERT" -> parse_insert st
    | KW "UPDATE" -> parse_update st
    | KW "DELETE" -> parse_delete st
    | _ -> fail st "expected SELECT, INSERT, UPDATE or DELETE"
  in
  if peek st <> EOF then fail st "trailing input";
  stmt

let parse_expr src =
  let st = try make_state src with Lex_error m -> raise (Parse_error m) in
  let e = expr_or st in
  if peek st <> EOF then fail st "trailing input";
  e
