open Util

exception Sql_error of string

type result =
  | Rows of { cols : string list; rows : Value.t array list }
  | Affected of int

let err fmt = Printf.ksprintf (fun m -> raise (Sql_error m)) fmt

(* --- name environment: columns of the (possibly joined) row --- *)

type env = {
  (* (qualifier aliases that match, column name) per slot *)
  slots : (string list * string) array;
}

let env_of_schema ~names schema =
  {
    slots =
      Array.map
        (fun c -> (names, c.Storage.Schema.cname))
        schema.Storage.Schema.columns;
  }

let env_concat a b = { slots = Array.append a.slots b.slots }

let resolve env (qualifier, name) =
  let matches i =
    let quals, cname = env.slots.(i) in
    cname = name
    && match qualifier with Some q -> List.mem q quals | None -> true
  in
  let rec go i found =
    if i = Array.length env.slots then found
    else if matches i then
      match found with
      | Some _ -> err "ambiguous column %s" name
      | None -> go (i + 1) (Some i)
    else go (i + 1) found
  in
  match go 0 None with
  | Some i -> i
  | None ->
    err "unknown column %s%s"
      (match qualifier with Some q -> q ^ "." | None -> "")
      name

(* SQL LIKE: % matches any run, _ matches one character. *)
let like_match pat str =
  let np = String.length pat and ns = String.length str in
  (* memoized recursion over (pi, si) *)
  let memo = Hashtbl.create 16 in
  let rec go pi si =
    match Hashtbl.find_opt memo (pi, si) with
    | Some r -> r
    | None ->
      let r =
        if pi = np then si = ns
        else
          match pat.[pi] with
          | '%' -> go (pi + 1) si || (si < ns && go pi (si + 1))
          | '_' -> si < ns && go (pi + 1) (si + 1)
          | c -> si < ns && str.[si] = c && go (pi + 1) (si + 1)
      in
      Hashtbl.replace memo (pi, si) r;
      r
  in
  go 0 0

(* --- expression evaluation (same null semantics as Query.Expr) --- *)

let rec eval env params row = function
  | Ast.Col (q, c) -> row.(resolve env (q, c))
  | Ast.Lit v -> v
  | Ast.Param i -> (
    match List.nth_opt params i with
    | Some v -> v
    | None -> err "missing parameter ?%d" i)
  | Ast.Cmp (op, a, b) ->
    let va = eval env params row a and vb = eval env params row b in
    if Value.is_null va || Value.is_null vb then Value.Bool false
    else
      let c =
        match va, vb with
        | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
          Float.compare (Value.to_number va) (Value.to_number vb)
        | _ -> Value.compare va vb
      in
      Value.Bool
        (match op with
        | Query.Expr.Eq -> c = 0
        | Ne -> c <> 0
        | Lt -> c < 0
        | Le -> c <= 0
        | Gt -> c > 0
        | Ge -> c >= 0)
  | Ast.And (a, b) ->
    Value.Bool
      (Value.to_bool (eval env params row a)
      && Value.to_bool (eval env params row b))
  | Ast.Or (a, b) ->
    Value.Bool
      (Value.to_bool (eval env params row a)
      || Value.to_bool (eval env params row b))
  | Ast.Not a -> Value.Bool (not (Value.to_bool (eval env params row a)))
  | Ast.Arith (op, a, b) -> (
    let va = eval env params row a and vb = eval env params row b in
    match va, vb with
    | Value.Null, _ | _, Value.Null -> Value.Null
    | Value.Int x, Value.Int y -> (
      match op with
      | Query.Expr.Add -> Value.Int (x + y)
      | Sub -> Value.Int (x - y)
      | Mul -> Value.Int (x * y)
      | Div -> Value.Float (float_of_int x /. float_of_int y))
    | _ ->
      let x = Value.to_number va and y = Value.to_number vb in
      Value.Float
        (match op with
        | Query.Expr.Add -> x +. y
        | Sub -> x -. y
        | Mul -> x *. y
        | Div -> x /. y))
  | Ast.Neg a -> (
    match eval env params row a with
    | Value.Null -> Value.Null
    | Value.Int i -> Value.Int (-i)
    | Value.Float f -> Value.Float (-.f)
    | v -> err "cannot negate %s" (Value.to_string v))
  | Ast.Is_null a -> Value.Bool (Value.is_null (eval env params row a))
  | Ast.In (a, vs) ->
    let va = eval env params row a in
    if Value.is_null va then Value.Bool false
    else
      Value.Bool
        (List.exists
           (fun e ->
             let v = eval env params row e in
             (not (Value.is_null v)) && Value.compare va v = 0)
           vs)
  | Ast.Between (a, lo, hi) ->
    let va = eval env params row a in
    let vlo = eval env params row lo and vhi = eval env params row hi in
    if Value.is_null va || Value.is_null vlo || Value.is_null vhi then
      Value.Bool false
    else
      let num v = match v with Value.Int _ | Value.Float _ -> true | _ -> false in
      let cmp x y =
        if num x && num y then Float.compare (Value.to_number x) (Value.to_number y)
        else Value.compare x y
      in
      Value.Bool (cmp vlo va <= 0 && cmp va vhi <= 0)
  | Ast.Like (a, pat) -> (
    match eval env params row a with
    | Value.Str s -> Value.Bool (like_match pat s)
    | Value.Null -> Value.Bool false
    | v -> err "LIKE on non-string %s" (Value.to_string v))

let truthy env params row e =
  match eval env params row e with Value.Bool b -> b | _ -> false

(* --- base-table access --- *)

let base_rows ctx table = Query.Exec.scan ctx table ()

(* --- aggregates --- *)

let agg_name fn arg alias =
  match alias with
  | Some a -> a
  | None -> (
    let f =
      match fn with
      | Ast.Sum -> "sum"
      | Count -> "count"
      | Min -> "min"
      | Max -> "max"
      | Avg -> "avg"
    in
    match arg with
    | Some (Ast.Col (_, c)) -> f ^ "(" ^ c ^ ")"
    | _ -> f)

let compute_agg env params rows fn arg =
  let values =
    match arg with
    | None -> List.map (fun _ -> Value.Int 1) rows
    | Some e ->
      List.filter_map
        (fun row ->
          match eval env params row e with
          | Value.Null -> None
          | v -> Some v)
        rows
  in
  match fn with
  | Ast.Count -> Value.Int (List.length values)
  | Ast.Sum ->
    if values = [] then Value.Null
    else if List.for_all (function Value.Int _ -> true | _ -> false) values
    then Value.Int (List.fold_left (fun a v -> a + Value.to_int v) 0 values)
    else
      Value.Float (List.fold_left (fun a v -> a +. Value.to_number v) 0. values)
  | Ast.Min ->
    List.fold_left
      (fun acc v ->
        match acc with
        | Value.Null -> v
        | _ -> if Value.compare v acc < 0 then v else acc)
      Value.Null values
  | Ast.Max ->
    List.fold_left
      (fun acc v ->
        match acc with
        | Value.Null -> v
        | _ -> if Value.compare v acc > 0 then v else acc)
      Value.Null values
  | Ast.Avg ->
    if values = [] then Value.Null
    else
      Value.Float
        (List.fold_left (fun a v -> a +. Value.to_number v) 0. values
        /. float_of_int (List.length values))

(* --- SELECT --- *)

let has_agg items =
  List.exists (function Ast.Agg _ -> true | _ -> false) items

let item_name env = function
  | Ast.Star -> err "cannot name *"
  | Ast.Expr_item (Ast.Col (q, c), None) ->
    ignore (resolve env (q, c));
    c
  | Ast.Expr_item (_, Some a) -> a
  | Ast.Expr_item (e, None) -> Fmt.str "%a" Ast.pp_expr e
  | Ast.Agg (fn, arg, alias) -> agg_name fn arg alias

let select ctx params (s : Ast.select) =
  let table_names tbl alias =
    match alias with Some a -> [ tbl; a ] | None -> [ tbl ]
  in
  let left_schema = Query.Exec.schema ctx s.Ast.sel_table in
  let left_env =
    env_of_schema ~names:(table_names s.Ast.sel_table s.Ast.sel_alias) left_schema
  in
  (* Build the working row set and its environment. *)
  let env, rows =
    match s.Ast.sel_join with
    | None -> (left_env, base_rows ctx s.Ast.sel_table)
    | Some j ->
      let right_schema = Query.Exec.schema ctx j.Ast.j_table in
      let right_env =
        env_of_schema ~names:(table_names j.Ast.j_table j.Ast.j_alias) right_schema
      in
      let env = env_concat left_env right_env in
      let li = resolve env j.Ast.j_left and ri = resolve env j.Ast.j_right in
      (* Hash join on the equality condition. *)
      let lrows = base_rows ctx s.Ast.sel_table in
      let rrows = base_rows ctx j.Ast.j_table in
      let lwidth = Array.length left_env.slots in
      let by_key = Hashtbl.create 64 in
      if ri >= lwidth then begin
        (* join key: left side indexes into left rows *)
        List.iter
          (fun rrow ->
            let key = rrow.(ri - lwidth) in
            Hashtbl.add by_key key rrow)
          rrows;
        ( env,
          List.concat_map
            (fun lrow ->
              List.map
                (fun rrow -> Array.append lrow rrow)
                (Hashtbl.find_all by_key lrow.(li)))
            lrows )
      end
      else begin
        List.iter
          (fun rrow ->
            let key = rrow.(li - lwidth) in
            Hashtbl.add by_key key rrow)
          rrows;
        ( env,
          List.concat_map
            (fun lrow ->
              List.map
                (fun rrow -> Array.append lrow rrow)
                (Hashtbl.find_all by_key lrow.(ri)))
            lrows )
      end
  in
  let rows =
    match s.Ast.sel_where with
    | None -> rows
    | Some e -> List.filter (fun row -> truthy env params row e) rows
  in
  (* Projection. *)
  let cols, rows =
    if s.Ast.sel_group <> [] then begin
      let key_idxs = List.map (resolve env) s.Ast.sel_group in
      let groups = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun row ->
          let key = List.map (fun i -> row.(i)) key_idxs in
          if not (Hashtbl.mem groups key) then order := key :: !order;
          Hashtbl.replace groups key
            (row :: Option.value ~default:[] (Hashtbl.find_opt groups key)))
        rows;
      let cols = List.map (item_name env) s.Ast.sel_items in
      let project key grouped =
        Array.of_list
          (List.map
             (fun item ->
               match item with
               | Ast.Star -> err "* not allowed with GROUP BY"
               | Ast.Expr_item (Ast.Col (q, c), _) ->
                 (* must be a grouping column *)
                 let i = resolve env (q, c) in
                 (match
                    List.find_index (fun ki -> ki = i) key_idxs
                  with
                 | Some pos -> List.nth key pos
                 | None -> err "column %s not in GROUP BY" c)
               | Ast.Expr_item _ -> err "only columns and aggregates with GROUP BY"
               | Ast.Agg (fn, arg, _) ->
                 compute_agg env params (List.rev grouped) fn arg)
             s.Ast.sel_items)
      in
      ( cols,
        List.rev_map
          (fun key -> project key (Hashtbl.find groups key))
          !order )
    end
    else if has_agg s.Ast.sel_items then begin
      (* one output row over the full set *)
      let cols = List.map (item_name env) s.Ast.sel_items in
      let row =
        Array.of_list
          (List.map
             (function
               | Ast.Agg (fn, arg, _) -> compute_agg env params rows fn arg
               | Ast.Star -> err "* cannot mix with aggregates"
               | Ast.Expr_item _ ->
                 err "non-aggregate column without GROUP BY")
             s.Ast.sel_items)
      in
      (cols, [ row ])
    end
    else begin
      let star_cols =
        Array.to_list (Array.map (fun (_, c) -> c) env.slots)
      in
      let cols =
        List.concat_map
          (function
            | Ast.Star -> star_cols
            | item -> [ item_name env item ])
          s.Ast.sel_items
      in
      let project row =
        Array.of_list
          (List.concat_map
             (function
               | Ast.Star -> Array.to_list row
               | Ast.Expr_item (e, _) -> [ eval env params row e ]
               | Ast.Agg _ -> assert false)
             s.Ast.sel_items)
      in
      (cols, List.map project rows)
    end
  in
  (* ORDER BY names an output column (or, failing that, an input column of a
     non-aggregate query — resolved before projection is not supported for
     simplicity). *)
  let rows =
    match s.Ast.sel_order with
    | None -> rows
    | Some o -> (
      match List.find_index (fun c -> c = o.Ast.ord_col) cols with
      | None -> err "ORDER BY column %s not in select list" o.Ast.ord_col
      | Some i ->
        let cmp a b =
          let c = Value.compare a.(i) b.(i) in
          if o.Ast.ord_desc then -c else c
        in
        List.stable_sort cmp rows)
  in
  let rows =
    match s.Ast.sel_limit with
    | None -> rows
    | Some n -> List.filteri (fun i _ -> i < n) rows
  in
  Rows { cols; rows }

(* --- DML --- *)

(* DML runs by row-level evaluation: scan the visible rows, filter with the
   full expression evaluator (so every predicate form works), and apply
   per-key writes through the transactional combinators. *)
let matching_keys ctx params ~table ~where =
  let schema = Query.Exec.schema ctx table in
  let env = env_of_schema ~names:[ table ] schema in
  let rows = base_rows ctx table in
  let rows =
    match where with
    | None -> rows
    | Some e -> List.filter (fun row -> truthy env params row e) rows
  in
  (env, List.map (fun row -> Storage.Schema.key_of_tuple schema row) rows)

let insert ctx params ~table ~cols ~values =
  let schema = Query.Exec.schema ctx table in
  let arity = Storage.Schema.arity schema in
  let env = env_of_schema ~names:[ table ] schema in
  let vals = List.map (fun e -> eval env params [||] e) values in
  let tuple =
    match cols with
    | None ->
      if List.length vals <> arity then
        err "INSERT arity: %d values for %d columns" (List.length vals) arity;
      Array.of_list vals
    | Some cols ->
      if List.length cols <> List.length vals then
        err "INSERT: %d columns but %d values" (List.length cols)
          (List.length vals);
      let tuple = Array.make arity Value.Null in
      List.iter2
        (fun c v ->
          let i =
            try Storage.Schema.column_index schema c
            with Not_found -> err "unknown column %s" c
          in
          tuple.(i) <- v)
        cols vals;
      tuple
  in
  Query.Exec.insert ctx table tuple;
  Affected 1

let update ctx params ~table ~sets ~where =
  let schema = Query.Exec.schema ctx table in
  let set_idx =
    List.map
      (fun (c, e) ->
        let i =
          try Storage.Schema.column_index schema c
          with Not_found -> err "unknown column %s" c
        in
        (i, e))
      sets
  in
  let env, keys = matching_keys ctx params ~table ~where in
  let n = ref 0 in
  List.iter
    (fun key ->
      if
        Query.Exec.update_key ctx table key ~set:(fun row ->
            let out = Array.copy row in
            List.iter (fun (i, e) -> out.(i) <- eval env params row e) set_idx;
            out)
      then incr n)
    keys;
  Affected !n

let delete ctx params ~table ~where =
  let _, keys = matching_keys ctx params ~table ~where in
  let n = ref 0 in
  List.iter (fun key -> if Query.Exec.delete_key ctx table key then incr n) keys;
  Affected !n

let exec_stmt ctx ?(params = []) stmt =
  match stmt with
  | Ast.Select s -> select ctx params s
  | Ast.Insert { ins_table; ins_cols; ins_values } ->
    insert ctx params ~table:ins_table ~cols:ins_cols ~values:ins_values
  | Ast.Update { upd_table; upd_sets; upd_where } ->
    update ctx params ~table:upd_table ~sets:upd_sets ~where:upd_where
  | Ast.Delete { del_table; del_where } ->
    delete ctx params ~table:del_table ~where:del_where

let exec ctx ?params src = exec_stmt ctx ?params (Parser.parse src)

let query ctx ?params src =
  match exec ctx ?params src with
  | Rows { rows; _ } -> rows
  | Affected _ -> err "expected a SELECT"

let query1 ctx ?params src =
  match query ctx ?params src with [] -> None | r :: _ -> Some r

let scalar ctx ?params src =
  match query ctx ?params src with
  | [ [| v |] ] -> v
  | [] -> err "scalar: no rows"
  | _ -> err "scalar: more than one row/column"

let execute ctx ?params src =
  match exec ctx ?params src with
  | Affected n -> n
  | Rows _ -> err "expected a DML statement"

let pp_result ppf = function
  | Affected n -> Fmt.pf ppf "%d row(s) affected@." n
  | Rows { cols; rows } ->
    let t = Util.Tablefmt.create cols in
    List.iter
      (fun row ->
        Util.Tablefmt.row t
          (List.map Value.to_string (Array.to_list row)))
      rows;
    Fmt.pf ppf "%s(%d row(s))@." (Util.Tablefmt.to_string t) (List.length rows)
