open Util

type t =
  | Col of string
  | Const of Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Neg of t
  | IsNull of t

and cmp = Eq | Ne | Lt | Le | Gt | Ge

and arith = Add | Sub | Mul | Div

let col c = Col c
let vint i = Const (Value.Int i)
let vfloat f = Const (Value.Float f)
let vstr s = Const (Value.Str s)
let vbool b = Const (Value.Bool b)
let vnull = Const Value.Null
let const v = Const v
let ( ==. ) a b = Cmp (Eq, a, b)
let ( <>. ) a b = Cmp (Ne, a, b)
let ( <. ) a b = Cmp (Lt, a, b)
let ( <=. ) a b = Cmp (Le, a, b)
let ( >. ) a b = Cmp (Gt, a, b)
let ( >=. ) a b = Cmp (Ge, a, b)
let ( &&. ) a b = And (a, b)
let ( ||. ) a b = Or (a, b)
let not_ a = Not a
let ( +. ) a b = Arith (Add, a, b)
let ( -. ) a b = Arith (Sub, a, b)
let ( *. ) a b = Arith (Mul, a, b)
let ( /. ) a b = Arith (Div, a, b)
let is_null a = IsNull a

let cmp_op = function
  | Eq -> fun c -> c = 0
  | Ne -> fun c -> c <> 0
  | Lt -> fun c -> c < 0
  | Le -> fun c -> c <= 0
  | Gt -> fun c -> c > 0
  | Ge -> fun c -> c >= 0

(* Numeric arithmetic stays in Int when both operands are Int (except Div,
   which widens to Float to match SQL-ish expectations of ratios). *)
let arith_op op a b =
  match a, b with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
    match op with
    | Add -> Value.Int (x + y)
    | Sub -> Value.Int (x - y)
    | Mul -> Value.Int (x * y)
    | Div -> Value.Float (Stdlib.( /. ) (float_of_int x) (float_of_int y)))
  | _ ->
    let x = Value.to_number a and y = Value.to_number b in
    Value.Float
      (match op with
      | Add -> Stdlib.( +. ) x y
      | Sub -> Stdlib.( -. ) x y
      | Mul -> Stdlib.( *. ) x y
      | Div -> Stdlib.( /. ) x y)

let compile schema expr =
  let rec go = function
    | Col name ->
      let i =
        try Storage.Schema.column_index schema name
        with Not_found ->
          invalid_arg
            (Printf.sprintf "Expr.compile: unknown column %S in %s" name
               schema.Storage.Schema.sname)
      in
      fun tuple -> tuple.(i)
    | Const v -> fun _ -> v
    | Cmp (op, a, b) ->
      let fa = go a and fb = go b and test = cmp_op op in
      fun tuple ->
        let va = fa tuple and vb = fb tuple in
        if Value.is_null va || Value.is_null vb then Value.Bool false
        else
          (* Int and Float compare numerically in predicates (the tag-based
             total order is for composite keys only). *)
          let c =
            match va, vb with
            | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) ->
              Float.compare (Value.to_number va) (Value.to_number vb)
            | _ -> Value.compare va vb
          in
          Value.Bool (test c)
    | And (a, b) ->
      let fa = go a and fb = go b in
      fun tuple ->
        Value.Bool (Value.to_bool (fa tuple) && Value.to_bool (fb tuple))
    | Or (a, b) ->
      let fa = go a and fb = go b in
      fun tuple ->
        Value.Bool (Value.to_bool (fa tuple) || Value.to_bool (fb tuple))
    | Not a ->
      let fa = go a in
      fun tuple -> Value.Bool (not (Value.to_bool (fa tuple)))
    | Arith (op, a, b) ->
      let fa = go a and fb = go b in
      fun tuple -> arith_op op (fa tuple) (fb tuple)
    | Neg a ->
      let fa = go a in
      fun tuple ->
        (match fa tuple with
        | Value.Null -> Value.Null
        | Value.Int i -> Value.Int (-i)
        | Value.Float f -> Value.Float (Stdlib.( ~-. ) f)
        | v -> raise (Value.Type_error ("cannot negate " ^ Value.to_string v)))
    | IsNull a ->
      let fa = go a in
      fun tuple -> Value.Bool (Value.is_null (fa tuple))
  in
  go expr

let compile_pred schema expr =
  let f = compile schema expr in
  fun tuple -> match f tuple with Value.Bool b -> b | _ -> false

let eval schema expr tuple = compile schema expr tuple

let rec pp ppf = function
  | Col c -> Fmt.string ppf c
  | Const v -> Value.pp ppf v
  | Cmp (op, a, b) ->
    let s =
      match op with
      | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
    in
    Fmt.pf ppf "(%a %s %a)" pp a s pp b
  | And (a, b) -> Fmt.pf ppf "(%a AND %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a OR %a)" pp a pp b
  | Not a -> Fmt.pf ppf "(NOT %a)" pp a
  | Arith (op, a, b) ->
    let s = match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" in
    Fmt.pf ppf "(%a %s %a)" pp a s pp b
  | Neg a -> Fmt.pf ppf "(-%a)" pp a
  | IsNull a -> Fmt.pf ppf "(%a IS NULL)" pp a
