lib/query/exec.ml: Array Expr Hashtbl List Occ Printf Stdlib Storage Util Value
