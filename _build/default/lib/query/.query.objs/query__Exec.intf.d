lib/query/exec.mli: Expr Occ Storage Util
