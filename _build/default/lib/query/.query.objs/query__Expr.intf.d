lib/query/expr.mli: Format Storage Util
