lib/query/expr.ml: Array Float Fmt Printf Stdlib Storage Util Value
