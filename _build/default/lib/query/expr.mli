(** Declarative scalar expressions over tuples.

    Reactors support declarative querying {e within} a single reactor
    (§2.2.1). Stored procedures build predicates and projections from this
    little expression language; [compile] resolves column names against a
    schema once, yielding a closure evaluated per tuple — the moral
    equivalent of the paper's pre-compiled stored procedures.

    Null semantics are two-valued: any comparison or arithmetic involving
    [Null] yields [Bool false] / [Null] respectively; use {!is_null} to test
    for it explicitly. *)

type t =
  | Col of string
  | Const of Util.Value.t
  | Cmp of cmp * t * t
  | And of t * t
  | Or of t * t
  | Not of t
  | Arith of arith * t * t
  | Neg of t
  | IsNull of t

and cmp = Eq | Ne | Lt | Le | Gt | Ge

and arith = Add | Sub | Mul | Div

(** {1 Constructors} *)

val col : string -> t
val vint : int -> t
val vfloat : float -> t
val vstr : string -> t
val vbool : bool -> t
val vnull : t
val const : Util.Value.t -> t

val ( ==. ) : t -> t -> t
val ( <>. ) : t -> t -> t
val ( <. ) : t -> t -> t
val ( <=. ) : t -> t -> t
val ( >. ) : t -> t -> t
val ( >=. ) : t -> t -> t
val ( &&. ) : t -> t -> t
val ( ||. ) : t -> t -> t
val not_ : t -> t
val ( +. ) : t -> t -> t
val ( -. ) : t -> t -> t
val ( *. ) : t -> t -> t
val ( /. ) : t -> t -> t
val is_null : t -> t

(** {1 Compilation and evaluation} *)

(** [compile schema e] resolves all column references; raises
    [Invalid_argument] naming any unknown column. Comparisons between [Int]
    and [Float] coerce numerically (unlike {!Util.Value.compare}'s tag
    order, which exists for composite keys). *)
val compile : Storage.Schema.t -> t -> Util.Value.t array -> Util.Value.t

(** Compile as predicate: non-[Bool true] results (including [Null]) are
    [false]. *)
val compile_pred : Storage.Schema.t -> t -> Util.Value.t array -> bool

(** One-off evaluation (compiles then applies; use [compile] in loops). *)
val eval : Storage.Schema.t -> t -> Util.Value.t array -> Util.Value.t

val pp : Format.formatter -> t -> unit
