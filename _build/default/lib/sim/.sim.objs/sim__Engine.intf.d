lib/sim/engine.mli:
