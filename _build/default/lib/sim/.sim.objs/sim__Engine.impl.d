lib/sim/engine.ml: Effect List Option Pqueue Queue Stdlib
