lib/sim/pqueue.mli:
