lib/sim/pqueue.ml: Array Stdlib
