type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = { mutable arr : 'a entry array; mutable n : int }

let create () = { arr = [||]; n = 0 }
let is_empty t = t.n = 0
let size t = t.n

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.arr.(i) in
  t.arr.(i) <- t.arr.(j);
  t.arr.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less t.arr.(i) t.arr.(p) then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n && less t.arr.(l) t.arr.(!smallest) then smallest := l;
  if r < t.n && less t.arr.(r) t.arr.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~time ~seq payload =
  let e = { time; seq; payload } in
  if t.n = Array.length t.arr then begin
    let cap = Stdlib.max 16 (2 * t.n) in
    let arr = Array.make cap e in
    Array.blit t.arr 0 arr 0 t.n;
    t.arr <- arr
  end;
  t.arr.(t.n) <- e;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.arr.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.arr.(0) <- t.arr.(t.n);
      sift_down t 0
    end;
    Some (top.time, top.seq, top.payload)
  end

let peek_time t = if t.n = 0 then None else Some t.arr.(0).time
