(** Deterministic discrete-event simulation engine.

    The engine substitutes for the paper's physical multi-core machines (see
    DESIGN.md §2): virtual time is measured in {e microseconds}, processes
    are lightweight coroutines implemented with OCaml effect handlers, and
    all scheduling is deterministic (ties in virtual time resolve in
    spawn/wake order).

    A process is any OCaml function executed via {!spawn}. Inside a process,
    {!delay} models consuming CPU time on the simulated core, {!now} reads
    the virtual clock, and {!Ivar} provides write-once synchronization from
    which futures, request queues and condition-style waits are built.

    Code between two suspension points runs atomically with respect to all
    other processes — exactly the property ReactDB's containers need for
    their commit steps. *)

type t

val create : unit -> t

(** Current virtual time in µs. Callable from inside a process (via the
    running engine) or outside. *)
val now : t -> float

(** [spawn t ?at f] schedules process [f] to start at virtual time [at]
    (default: now). *)
val spawn : t -> ?at:float -> (unit -> unit) -> unit

(** Run until the event queue drains or the optional horizon is reached.
    Returns the final virtual time. An exception escaping a process aborts
    the run and propagates. *)
val run : ?until:float -> t -> float

(** Number of events executed so far (diagnostics, determinism checks). *)
val events_executed : t -> int

(** {1 Operations available inside a process} *)

(** Advance this process's virtual time by [d] µs (d >= 0), yielding to
    other processes. *)
val delay : float -> unit

(** Virtual time as seen by the running process. *)
val current_time : unit -> float

(** Spawn a sibling process at the current time from within a process. *)
val spawn_here : (unit -> unit) -> unit

(** Suspend the running process. The registrar receives a one-shot waker;
    invoking the waker (from any other process or engine context) resumes
    the suspended process at the waker's invocation time with the given
    value. *)
val suspend : (('a -> unit) -> unit) -> 'a

(** Write-once cells. Reading an unfilled ivar suspends; filling wakes all
    readers at the filling process's current time. *)
module Ivar : sig
  type 'a ivar

  val create : unit -> 'a ivar
  val is_filled : 'a ivar -> bool

  (** Raises [Invalid_argument] if already filled. *)
  val fill : 'a ivar -> 'a -> unit

  (** Value if filled, without suspending. *)
  val peek : 'a ivar -> 'a option

  (** Read, suspending the calling process until filled. *)
  val read : 'a ivar -> 'a
end

(** Unbounded FIFO with suspending [pop] (the request queues of transaction
    executors). Multiple blocked poppers are served in FIFO order. *)
module Mailbox : sig
  type 'a mb

  val create : unit -> 'a mb
  val push : 'a mb -> 'a -> unit
  val pop : 'a mb -> 'a
  val length : 'a mb -> int
  val is_empty : 'a mb -> bool
end
