type t = {
  mutable clock : float;
  mutable seq : int;
  events : (unit -> unit) Pqueue.t;
  mutable executed : int;
}

type _ Effect.t +=
  | Delay : (t -> float) -> unit Effect.t
      (* the payload computes the delay given the engine, letting [delay]
         stay engine-free at the call site *)
  | Now : float Effect.t
  | SpawnHere : (unit -> unit) -> unit Effect.t
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let create () = { clock = 0.; seq = 0; events = Pqueue.create (); executed = 0 }

let now t = t.clock
let events_executed t = t.executed

let schedule t ~at thunk =
  t.seq <- t.seq + 1;
  Pqueue.push t.events ~time:at ~seq:t.seq thunk

let rec start_process t f =
  let open Effect.Deep in
  match_with f ()
    {
      retc = (fun () -> ());
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay df ->
            Some
              (fun (k : (a, unit) continuation) ->
                let d = df t in
                if d < 0. then
                  invalid_arg "Sim.Engine.delay: negative duration";
                schedule t ~at:(t.clock +. d) (fun () -> continue k ()))
          | Now -> Some (fun k -> continue k t.clock)
          | SpawnHere g ->
            Some
              (fun k ->
                schedule t ~at:t.clock (fun () -> start_process t g);
                continue k ())
          | Suspend registrar ->
            Some
              (fun k ->
                let used = ref false in
                registrar (fun v ->
                    if !used then failwith "Sim.Engine: waker invoked twice";
                    used := true;
                    schedule t ~at:t.clock (fun () -> continue k v)))
          | _ -> None);
    }

let spawn t ?at f =
  let at = match at with Some x -> Stdlib.max x t.clock | None -> t.clock in
  schedule t ~at (fun () -> start_process t f)

let run ?until t =
  let horizon = match until with Some h -> h | None -> infinity in
  let rec loop () =
    match Pqueue.peek_time t.events with
    | None -> ()
    | Some time when time > horizon ->
      t.clock <- horizon
    | Some _ ->
      (match Pqueue.pop t.events with
      | None -> ()
      | Some (time, _, thunk) ->
        t.clock <- Stdlib.max t.clock time;
        t.executed <- t.executed + 1;
        thunk ();
        loop ())
  in
  loop ();
  t.clock

let delay d = Effect.perform (Delay (fun _ -> d))
let current_time () = Effect.perform Now
let spawn_here f = Effect.perform (SpawnHere f)
let suspend registrar = Effect.perform (Suspend registrar)

module Ivar = struct
  type 'a ivar = {
    mutable value : 'a option;
    mutable waiters : ('a -> unit) list; (* reverse arrival order *)
  }

  let create () = { value = None; waiters = [] }
  let is_filled iv = Option.is_some iv.value

  let fill iv v =
    match iv.value with
    | Some _ -> invalid_arg "Sim.Engine.Ivar.fill: already filled"
    | None ->
      iv.value <- Some v;
      let ws = List.rev iv.waiters in
      iv.waiters <- [];
      List.iter (fun w -> w v) ws

  let peek iv = iv.value

  let read iv =
    match iv.value with
    | Some v -> v
    | None -> suspend (fun waker -> iv.waiters <- waker :: iv.waiters)
end

module Mailbox = struct
  type 'a mb = {
    items : 'a Queue.t;
    waiters : ('a -> unit) Queue.t;
  }

  let create () = { items = Queue.create (); waiters = Queue.create () }

  let push mb x =
    if Queue.is_empty mb.waiters then Queue.add x mb.items
    else (Queue.take mb.waiters) x

  let pop mb =
    if Queue.is_empty mb.items then
      suspend (fun waker -> Queue.add waker mb.waiters)
    else Queue.take mb.items

  let length mb = Queue.length mb.items
  let is_empty mb = Queue.is_empty mb.items
end
