(** Minimal binary min-heap keyed by [(time, sequence)].

    The event queue of the discrete-event engine: ties in virtual time are
    broken by insertion sequence, which makes simulations fully
    deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int
val push : 'a t -> time:float -> seq:int -> 'a -> unit

(** Smallest (time, seq) element, or [None] when empty. *)
val pop : 'a t -> (float * int * 'a) option

val peek_time : 'a t -> float option
