type column = { cname : string; ctype : Util.Value.ty }

type t = { sname : string; columns : column array; key : int array }

let make ~name ~columns ~key =
  let cols =
    Array.of_list (List.map (fun (cname, ctype) -> { cname; ctype }) columns)
  in
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun c ->
      if Hashtbl.mem seen c.cname then
        invalid_arg (Printf.sprintf "Schema.make: duplicate column %S" c.cname);
      Hashtbl.add seen c.cname ())
    cols;
  if key = [] then invalid_arg "Schema.make: empty primary key";
  let index_of n =
    let rec go i =
      if i = Array.length cols then
        invalid_arg (Printf.sprintf "Schema.make: unknown key column %S" n)
      else if cols.(i).cname = n then i
      else go (i + 1)
    in
    go 0
  in
  { sname = name; columns = cols; key = Array.of_list (List.map index_of key) }

let column_index t name =
  let rec go i =
    if i = Array.length t.columns then raise Not_found
    else if t.columns.(i).cname = name then i
    else go (i + 1)
  in
  go 0

let arity t = Array.length t.columns

let validate t tuple =
  if Array.length tuple <> arity t then
    invalid_arg
      (Printf.sprintf "Schema.validate(%s): arity %d, expected %d" t.sname
         (Array.length tuple) (arity t));
  Array.iteri
    (fun i c ->
      if not (Util.Value.conforms tuple.(i) c.ctype) then
        invalid_arg
          (Printf.sprintf "Schema.validate(%s): column %s expects %s, got %s"
             t.sname c.cname
             (Util.Value.ty_to_string c.ctype)
             (Util.Value.to_string tuple.(i))))
    t.columns;
  Array.iter
    (fun ki ->
      if Util.Value.is_null tuple.(ki) then
        invalid_arg
          (Printf.sprintf "Schema.validate(%s): key column %s is NULL" t.sname
             t.columns.(ki).cname))
    t.key

let key_of_tuple t tuple = Array.map (fun ki -> tuple.(ki)) t.key

let pp ppf t =
  Fmt.pf ppf "%s(%a)" t.sname
    (Fmt.array ~sep:(Fmt.any ", ") (fun ppf c ->
         Fmt.pf ppf "%s:%s" c.cname (Util.Value.ty_to_string c.ctype)))
    t.columns
