type t = (string, Table.t) Hashtbl.t

let create () = Hashtbl.create 16

let create_table ?secondaries t schema =
  let name = schema.Schema.sname in
  if Hashtbl.mem t name then
    invalid_arg (Printf.sprintf "Catalog.create_table: %S already exists" name);
  let table = Table.create ?secondaries schema in
  Hashtbl.add t name table;
  table

let table t name =
  match Hashtbl.find_opt t name with
  | Some tbl -> tbl
  | None -> raise Not_found

let mem = Hashtbl.mem

let tables t = Hashtbl.fold (fun name tbl acc -> (name, tbl) :: acc) t []

let total_records t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.size tbl) t 0
