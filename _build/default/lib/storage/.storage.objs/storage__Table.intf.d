lib/storage/table.mli: Btree Record Schema Util
