lib/storage/record.ml: List Stdlib Util
