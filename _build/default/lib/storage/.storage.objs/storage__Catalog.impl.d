lib/storage/catalog.ml: Hashtbl Printf Schema Table
