lib/storage/table.ml: Array Btree Int List Printf Record Schema Stdlib String Util
