lib/storage/schema.mli: Format Util
