lib/storage/record.mli: Util
