(** Relation schemas.

    A schema names its columns, fixes their types, and designates a primary
    key (an ordered subset of columns). Every reactor type declares the
    schemas its instances encapsulate (§2.2.1); tables are instantiated from
    schemas per reactor. *)

type column = { cname : string; ctype : Util.Value.ty }

type t = private {
  sname : string;
  columns : column array;
  key : int array; (* indexes into [columns] forming the primary key *)
}

(** [make ~name ~columns ~key] builds a schema. [key] lists primary-key
    column names in order. Raises [Invalid_argument] on duplicate or unknown
    column names, or an empty key. *)
val make : name:string -> columns:(string * Util.Value.ty) list -> key:string list -> t

(** Index of a column by name. Raises [Not_found]. *)
val column_index : t -> string -> int

val arity : t -> int

(** [validate s tuple] checks arity and column types ([Null] allowed
    anywhere except key columns). Raises [Invalid_argument] with a message
    naming the offending column. *)
val validate : t -> Util.Value.t array -> unit

(** Extract the primary-key values of a tuple, in key order. *)
val key_of_tuple : t -> Util.Value.t array -> Util.Value.t array

val pp : Format.formatter -> t -> unit
