(** Per-reactor catalogs.

    Each reactor encapsulates its own relational state: a catalog maps table
    names to tables created from the reactor type's schemas. Catalogs of
    different reactors are fully disjoint (§2.2.2), even when hosted in the
    same container. *)

type t

val create : unit -> t

(** [create_table t schema] adds an empty table named [schema.sname], with
    optional secondary indexes (see {!Table.create}). Raises
    [Invalid_argument] if the name is taken. *)
val create_table :
  ?secondaries:(string * string list) list -> t -> Schema.t -> Table.t

(** Raises [Not_found] with the table name when missing. *)
val table : t -> string -> Table.t

val mem : t -> string -> bool
val tables : t -> (string * Table.t) list

(** Total record count across all tables (diagnostics). *)
val total_records : t -> int
