module Key = struct
  type t = Util.Value.t array

  let compare a b =
    let la = Array.length a and lb = Array.length b in
    let n = Stdlib.min la lb in
    let rec go i =
      if i = n then Int.compare la lb
      else
        let c = Util.Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0
end

module Idx = Btree.Make (Key)

(* A secondary index maps (indexed columns @ primary key) -> record; the
   primary-key suffix makes entries unique and gives deterministic order
   among equal secondary keys. *)
type secondary = {
  sec_name : string;
  sec_cols : int array;
  sec_idx : Record.t Idx.t;
}

type t = {
  uid : int;
  schema : Schema.t;
  idx : Record.t Idx.t;
  secondaries : secondary list;
}

type witness = Idx.witness

let uid_counter = ref 0

let create ?(secondaries = []) schema =
  incr uid_counter;
  let mk (sec_name, cols) =
    let sec_cols =
      Array.of_list
        (List.map
           (fun c ->
             try Schema.column_index schema c
             with Not_found ->
               invalid_arg
                 (Printf.sprintf "Table.create: index %S on unknown column %S"
                    sec_name c))
           cols)
    in
    { sec_name; sec_cols; sec_idx = Idx.create () }
  in
  let secondaries = List.map mk secondaries in
  let names = List.map (fun s -> s.sec_name) secondaries in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Table.create: duplicate index name";
  { uid = !uid_counter; schema; idx = Idx.create (); secondaries }

let secondary t name =
  match List.find_opt (fun s -> s.sec_name = name) t.secondaries with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Table: no index %S on %s" name t.schema.Schema.sname)

(* Secondary key of a tuple under index [s]: indexed columns then the
   primary key. *)
let sec_key_of t s data =
  Array.append
    (Array.map (fun i -> data.(i)) s.sec_cols)
    (Schema.key_of_tuple t.schema data)

let sec_insert t record =
  List.iter
    (fun s ->
      ignore (Idx.insert s.sec_idx (sec_key_of t s record.Record.data) record))
    t.secondaries

let sec_remove t data =
  List.iter
    (fun s -> ignore (Idx.delete s.sec_idx (sec_key_of t s data)))
    t.secondaries
let size t = Idx.size t.idx
let find ?on_node t key = Idx.find ?on_node t.idx key

let insert t record =
  Schema.validate t.schema record.Record.data;
  let prev = Idx.insert t.idx (Schema.key_of_tuple t.schema record.Record.data) record in
  (match prev with Some old -> sec_remove t old.Record.data | None -> ());
  sec_insert t record;
  prev

let remove t key =
  match Idx.delete t.idx key with
  | Some record as r ->
    sec_remove t record.Record.data;
    r
  | None -> None

(* In-place data update with secondary-index maintenance; the primary key
   must be unchanged (the query layer enforces this). Called by the commit
   protocol's install phase. *)
let update_data t record data =
  List.iter
    (fun s ->
      let old_key = sec_key_of t s record.Record.data in
      let new_key = sec_key_of t s data in
      if Key.compare old_key new_key <> 0 then begin
        ignore (Idx.delete s.sec_idx old_key);
        ignore (Idx.insert s.sec_idx new_key record)
      end)
    t.secondaries;
  record.Record.data <- data

let scan_secondary ?on_node ?lo ?hi ?(rev = false) t ~index ~f =
  let s = secondary t index in
  if rev then Idx.range_rev ?on_node ?lo ?hi s.sec_idx ~f:(fun _ r -> f r)
  else Idx.range ?on_node ?lo ?hi s.sec_idx ~f:(fun _ r -> f r)

(* [Str "\255..."] sentinel would be fragile; instead rely on the
   prefix-order property of Key.compare: extensions of [prefix] sort
   immediately after [prefix] and before [prefix'] where [prefix'] bumps the
   last component. We append a maximal sentinel component instead, which is
   simpler: no real column value compares above it because schemas never
   store it. *)
let sentinel_hi = Util.Value.Str "\xff\xff\xff\xff\xff\xff\xff\xff"

let key_prefix_bounds prefix =
  (prefix, Array.append prefix [| sentinel_hi |])

let range ?on_node ?lo ?hi t ~f = Idx.range ?on_node ?lo ?hi t.idx ~f:(fun _ r -> f r)

let range_rev ?on_node ?lo ?hi t ~f =
  Idx.range_rev ?on_node ?lo ?hi t.idx ~f:(fun _ r -> f r)

let key_of_tuple t tuple = Schema.key_of_tuple t.schema tuple
