(** Physical records with Silo-style TID words.

    A record is the unit of concurrency control: it carries the version
    ([tid]) observed by optimistic readers, a no-wait lock owner field used
    during commit, and an [absent] flag used both for not-yet-committed
    inserts (visible only to the inserting transaction) and for logical
    deletes (readers observing a bumped TID on an absent record fail
    validation).

    Lock order across records is defined by the globally unique [rid],
    preventing deadlock among committers that lock their write sets in
    sorted order. *)

type t = {
  rid : int;
  mutable data : Util.Value.t array;
  mutable tid : int;
  mutable lock : int; (* 0 when free, otherwise the owning transaction id *)
  mutable absent : bool;
}

(** [fresh ~absent data] allocates a record with a new [rid] and TID 0. *)
val fresh : absent:bool -> Util.Value.t array -> t

(** TID packing: high bits epoch, low 32 bits sequence number. *)

val tid_make : epoch:int -> seq:int -> int

val tid_epoch : int -> int
val tid_seq : int -> int

(** [next_tid ~epoch observed] is a TID strictly greater than every TID in
    [observed] and belonging to at least [epoch] (Silo's TID assignment
    rule). *)
val next_tid : epoch:int -> int list -> int

val is_locked : t -> bool
val locked_by : t -> int option

(** [try_lock r ~txn] acquires the no-wait lock; [true] on success or if
    already held by [txn]. *)
val try_lock : t -> txn:int -> bool

(** [unlock r ~txn] releases the lock if held by [txn]; no-op otherwise. *)
val unlock : t -> txn:int -> unit
