lib/histories/certify.mli:
