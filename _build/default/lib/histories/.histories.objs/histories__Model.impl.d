lib/histories/model.ml: Array Hashtbl Int List Map Option Printf Set
