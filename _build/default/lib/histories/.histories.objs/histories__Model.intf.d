lib/histories/model.mli:
