lib/histories/certify.ml: Hashtbl Int List Map Model Option Printf
