(** Executable form of the §2.3 formalism: nested reactor-model histories,
    their projection into the classic transactional model (Defs. 2.3–2.6),
    and conflict-serializability checking in both models.

    A history is represented as a totally ordered event trace (every
    concrete execution yields one); the partial orders of the formalism are
    recovered from conflicts, exactly as the definitions prescribe. The
    property test accompanying this module exercises Theorem 2.7: a history
    is serializable in the reactor model iff its projection is serializable
    in the classic model. *)

(** A leaf (basic) operation of sub-transaction [st] of transaction [txn] on
    data item [item] of reactor [reactor]. [st] identifies the
    sub-transaction within its transaction (nested sub-transactions get
    distinct ids). *)
type event = {
  e_txn : int;
  e_st : int;
  e_reactor : int;
  e_item : string;
  e_write : bool;
}

(** The trace, in execution order; only committed transactions included. *)
type history = event list

(** {1 Classic model} *)

(** Projected operation: the reactor id is folded into the item name
    ([k ◦ x], Def. 2.3); sub-transaction structure is erased (Defs.
    2.4–2.6). *)
type classic_op = { c_txn : int; c_item : string; c_write : bool }

val project : history -> classic_op list

(** Conflict-serializability of a classic history: acyclicity of the
    serialization graph (edge Ti→Tj when an operation of Ti precedes and
    conflicts with one of Tj, i≠j). *)
val classic_serializable : classic_op list -> bool

(** {1 Reactor model}

    Serializability checked at sub-transaction granularity: two
    sub-transactions conflict iff the basic operations of at least one
    contain a write and both reference the same item of the same reactor
    (§2.3.2); the serialization graph is built over transactions from
    sub-transaction conflict order. *)
val reactor_serializable : history -> bool

(** A witness serial order of the transactions, when serializable. *)
val serial_order : history -> int list option

(** Generic cycle detection over an adjacency list (exposed for tests). *)
val has_cycle : (int * int list) list -> bool
