(** Serializability certification of actual ReactDB executions.

    The runtime's history log records, for each committed transaction, its
    install TID and its read set as (record, observed-TID) pairs. Because
    Silo TIDs totally order the versions of each record, the log determines
    a multiversion serialization graph:

    - ww: writers of a record ordered by their install TIDs;
    - wr: the writer that installed TID [t] precedes every reader that
      observed [t];
    - rw: a reader that observed TID [t] precedes the writer that installed
      the next TID of that record.

    The committed execution is conflict-serializable iff this graph is
    acyclic — the integration tests run adversarial workloads under every
    deployment and certify each run. *)

type entry = {
  c_txn : int;  (** transaction id *)
  c_tid : int;  (** Silo TID the commit installed *)
  c_reads : (int * int) list;  (** (record id, observed TID) *)
  c_writes : int list;  (** record ids written *)
}

(** [check entries] is [Ok order] with a witness serial order of transaction
    ids, or [Error msg] describing the violation (cycle found, or a read of
    a TID no committed transaction installed and that is not the initial
    load version 0). *)
val check : entry list -> (int list, string) result
