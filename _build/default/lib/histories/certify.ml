type entry = {
  c_txn : int;
  c_tid : int;
  c_reads : (int * int) list;
  c_writes : int list;
}

module IntMap = Map.Make (Int)

let check entries =
  (* Versions per record: (tid, writer txn), sorted by tid. TID 0 is the
     initial loaded version with no writer. *)
  let versions = Hashtbl.create 256 in
  List.iter
    (fun e ->
      List.iter
        (fun rid ->
          let vs = Option.value ~default:[] (Hashtbl.find_opt versions rid) in
          Hashtbl.replace versions rid ((e.c_tid, e.c_txn) :: vs))
        e.c_writes)
    entries;
  Hashtbl.iter
    (fun rid vs ->
      Hashtbl.replace versions rid
        (List.sort (fun (a, _) (b, _) -> Int.compare a b) vs))
    versions;
  let error = ref None in
  let edges = Hashtbl.create 256 in
  let add_edge a b = if a <> b then Hashtbl.replace edges (a, b) () in
  (* ww edges *)
  Hashtbl.iter
    (fun _rid vs ->
      let rec chain = function
        | (_, a) :: ((_, b) :: _ as rest) ->
          add_edge a b;
          chain rest
        | _ -> ()
      in
      chain vs)
    versions;
  (* wr and rw edges *)
  List.iter
    (fun e ->
      List.iter
        (fun (rid, observed) ->
          let vs = Option.value ~default:[] (Hashtbl.find_opt versions rid) in
          (match List.assoc_opt observed vs with
          | Some writer -> add_edge writer e.c_txn
          | None ->
            if observed <> 0 then
              error :=
                Some
                  (Printf.sprintf
                     "txn %d read tid %d of record %d, never installed"
                     e.c_txn observed rid));
          (* first version with tid greater than the observed one *)
          match List.find_opt (fun (t, _) -> t > observed) vs with
          | Some (_, next_writer) -> add_edge e.c_txn next_writer
          | None -> ())
        e.c_reads)
    entries;
  match !error with
  | Some msg -> Error msg
  | None ->
    let adjacency =
      let by_src = Hashtbl.create 64 in
      Hashtbl.iter
        (fun (a, b) () ->
          Hashtbl.replace by_src a
            (b :: Option.value ~default:[] (Hashtbl.find_opt by_src a)))
        edges;
      Hashtbl.fold (fun a bs acc -> (a, bs) :: acc) by_src []
    in
    if Model.has_cycle adjacency then
      Error "serialization graph has a cycle"
    else begin
      (* Witness order: topological sort over all transactions. *)
      let nodes = List.map (fun e -> e.c_txn) entries in
      let adj =
        List.fold_left
          (fun m (v, ns) -> IntMap.add v ns m)
          IntMap.empty adjacency
      in
      let visited = Hashtbl.create 64 in
      let out = ref [] in
      let rec visit v =
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.replace visited v ();
          List.iter visit (Option.value ~default:[] (IntMap.find_opt v adj));
          out := v :: !out
        end
      in
      List.iter visit nodes;
      Ok !out
    end
