type event = {
  e_txn : int;
  e_st : int;
  e_reactor : int;
  e_item : string;
  e_write : bool;
}

type history = event list

type classic_op = { c_txn : int; c_item : string; c_write : bool }

let project h =
  List.map
    (fun e ->
      {
        c_txn = e.e_txn;
        c_item = Printf.sprintf "%d\x00%s" e.e_reactor e.e_item;
        c_write = e.e_write;
      })
    h

(* --- graph machinery --- *)

module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

let has_cycle adjacency =
  let adj =
    List.fold_left (fun m (v, ns) -> IntMap.add v ns m) IntMap.empty adjacency
  in
  let all_nodes =
    List.fold_left
      (fun s (v, ns) -> List.fold_left (fun s n -> IntSet.add n s) (IntSet.add v s) ns)
      IntSet.empty adjacency
  in
  (* Iterative three-color DFS. *)
  let color = Hashtbl.create 64 in
  let cyclic = ref false in
  let rec visit v =
    match Hashtbl.find_opt color v with
    | Some `Black -> ()
    | Some `Gray -> cyclic := true
    | None ->
      Hashtbl.replace color v `Gray;
      List.iter
        (fun n -> if not !cyclic then visit n)
        (Option.value ~default:[] (IntMap.find_opt v adj));
      Hashtbl.replace color v `Black
  in
  IntSet.iter (fun v -> if not !cyclic then visit v) all_nodes;
  !cyclic

let topo_order adjacency nodes =
  let adj =
    List.fold_left (fun m (v, ns) -> IntMap.add v ns m) IntMap.empty adjacency
  in
  let visited = Hashtbl.create 64 in
  let out = ref [] in
  let rec visit v =
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.replace visited v ();
      List.iter visit (Option.value ~default:[] (IntMap.find_opt v adj));
      out := v :: !out
    end
  in
  List.iter visit nodes;
  !out

(* Serialization-graph edges from a sequence of operations with a conflict
   predicate and a transaction projection. *)
let sg_edges ops ~txn_of ~conflicts =
  let edges = Hashtbl.create 64 in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ti = txn_of arr.(i) and tj = txn_of arr.(j) in
      if ti <> tj && conflicts arr.(i) arr.(j) then
        Hashtbl.replace edges (ti, tj) ()
    done
  done;
  let by_src = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (a, b) () ->
      Hashtbl.replace by_src a (b :: Option.value ~default:[] (Hashtbl.find_opt by_src a)))
    edges;
  Hashtbl.fold (fun a bs acc -> (a, bs) :: acc) by_src []

let classic_conflicts a b = a.c_item = b.c_item && (a.c_write || b.c_write)

let classic_serializable ops =
  not (has_cycle (sg_edges ops ~txn_of:(fun o -> o.c_txn) ~conflicts:classic_conflicts))

(* In the reactor model, the units ordered by the history are
   sub-transactions; two sub-transactions conflict iff their basic operations
   conflict on some item of some reactor (§2.3.2). Building transaction-level
   edges from sub-transaction conflict order is equivalent to building them
   from basic-operation order, which is what Theorem 2.7 asserts — the two
   checkers below compute the graphs independently so the equivalence is
   testable rather than assumed. *)
let reactor_conflicts a b =
  a.e_reactor = b.e_reactor && a.e_item = b.e_item && (a.e_write || b.e_write)

(* Group consecutive reasoning at sub-transaction granularity: an edge
   Ti -> Tj exists when sub-transaction STi precedes STj in conflict order.
   Using each basic operation tagged by its sub-transaction, order between
   sub-transactions is witnessed by any pair of conflicting basic ops. *)
let reactor_serializable h =
  not
    (has_cycle (sg_edges h ~txn_of:(fun e -> e.e_txn) ~conflicts:reactor_conflicts))

let serial_order h =
  let edges = sg_edges h ~txn_of:(fun e -> e.e_txn) ~conflicts:reactor_conflicts in
  if has_cycle edges then None
  else
    let nodes =
      List.sort_uniq Int.compare (List.map (fun e -> e.e_txn) h)
    in
    Some (topo_order edges nodes)
