(** The digital currency exchange of Figure 1 and Appendix G.

    Two modelings are provided:

    - The {e reactor database} of Fig. 1(b): an [Exchange] reactor
      (relations [settlement_risk], [provider_names]) and one [Provider]
      reactor per credit-card provider (relations [provider_info],
      [orders]). [auth_pay] fans [calc_risk] out to all providers
      asynchronously — {e procedure-level parallelism}: the risk
      simulation runs on the provider reactors.
    - The {e classic} formulation of Fig. 1(a) for comparison:
      [auth_pay_query_par] still scans provider order fragments in parallel
      (what a parallel query plan would do) but runs every risk simulation
      sequentially at the exchange; and a [Monolith] reactor holds all
      relations unpartitioned for the fully sequential plan.

    The risk simulation [sim_risk] is modeled as [sim_cost] µs of
    computation (the paper itself simulates it by generating random
    numbers). Freshness of cached risk is controlled by the [now] argument
    against [provider_info.time]/[window]; experiment loaders set these so
    the simulation always runs (App. G). *)

open Util
open Reactor

(* --- Provider reactor --- *)

let s_provider_info =
  Storage.Schema.make ~name:"provider_info"
    ~columns:
      [ ("id", Value.TInt); ("risk", Value.TFloat); ("time", Value.TFloat);
        ("window", Value.TFloat) ]
    ~key:[ "id" ]

let s_orders =
  Storage.Schema.make ~name:"orders"
    ~columns:
      [ ("ts", Value.TInt); ("wallet", Value.TInt); ("value", Value.TFloat);
        ("settled", Value.TStr) ]
    ~key:[ "ts" ]

(* Unsettled exposure over the most recent [window_records] orders (the
   pre-configured settlement window of App. G), via reverse range scan. *)
let exposure ctx window_records =
  let scanned = ref 0 in
  let total = ref 0. in
  let tbl = Query.Exec.table ctx.db "orders" in
  ignore tbl;
  let rows =
    Query.Exec.scan ctx.db "orders" ~rev:true ~limit:window_records ()
  in
  List.iter
    (fun row ->
      incr scanned;
      if Value.to_str row.(3) = "N" then total := !total +. Value.to_number row.(2))
    rows;
  !total

(* calc_risk(p_exposure, window_records, sim_cost, now) -> risk *)
let calc_risk ctx args =
  let p_exposure = arg_float args 0 in
  let window_records = arg_int args 1 in
  let sim_cost = arg_float args 2 in
  let now = arg_float args 3 in
  let expo = exposure ctx window_records in
  if expo > p_exposure then abort "provider exposure above limit";
  match Query.Exec.get ctx.db "provider_info" [| Wl.vi 0 |] with
  | None -> abort "missing provider_info"
  | Some row ->
    let risk = Value.to_number row.(1) in
    let time = Value.to_number row.(2) in
    let window = Value.to_number row.(3) in
    if time < now -. window then begin
      (* Stale: run the risk simulation and cache the result. *)
      ctx.db.Query.Exec.work sim_cost;
      let new_risk = expo *. 0.01 in
      ignore
        (Query.Exec.update_key ctx.db "provider_info" [| Wl.vi 0 |]
           ~set:(fun r ->
             let r = Query.Exec.seti r 1 (Wl.vf new_risk) in
             Query.Exec.seti r 2 (Wl.vf now)));
      Wl.vf new_risk
    end
    else Wl.vf risk

(* exposure_of(window_records): the scan-only leg used by the
   query-parallel plan. *)
let exposure_of ctx args = Wl.vf (exposure ctx (arg_int args 0))

let add_entry ctx args =
  let ts = arg_int args 0 and wallet = arg_int args 1 in
  let value = arg_float args 2 in
  Query.Exec.insert ctx.db "orders"
    [| Wl.vi ts; Wl.vi wallet; Wl.vf value; Wl.vs "N" |];
  Value.Null

let provider_type =
  rtype ~name:"Provider"
    ~schemas:[ s_provider_info; s_orders ]
    ~procs:
      [ ("calc_risk", calc_risk); ("exposure_of", exposure_of);
        ("add_entry", add_entry) ]
    ()

(* --- Exchange reactor --- *)

let s_settlement_risk =
  Storage.Schema.make ~name:"settlement_risk"
    ~columns:
      [ ("id", Value.TInt); ("p_exposure", Value.TFloat);
        ("g_risk", Value.TFloat) ]
    ~key:[ "id" ]

let s_provider_names =
  Storage.Schema.make ~name:"provider_names"
    ~columns:[ ("value", Value.TStr) ]
    ~key:[ "value" ]

let limits ctx =
  match Query.Exec.get ctx.db "settlement_risk" [| Wl.vi 0 |] with
  | Some row -> (Value.to_number row.(1), Value.to_number row.(2))
  | None -> abort "missing settlement_risk"

let provider_list ctx =
  List.map (fun row -> Value.to_str row.(0))
    (Query.Exec.scan ctx.db "provider_names" ())

(* auth_pay(provider, ts, wallet, value, window_records, sim_cost, now):
   Fig. 1(b) — procedure-level parallelism. *)
let auth_pay ctx args =
  let pprovider = arg_str args 0 in
  let ts = arg_int args 1 and wallet = arg_int args 2 in
  let value = arg_float args 3 in
  let window_records = arg_int args 4 in
  let sim_cost = arg_float args 5 in
  let now = arg_float args 6 in
  let p_exposure, g_risk = limits ctx in
  let results =
    List.map
      (fun p ->
        ctx.call ~reactor:p ~proc:"calc_risk"
          ~args:[ Wl.vf p_exposure; Wl.vi window_records; Wl.vf sim_cost;
                  Wl.vf now ])
      (provider_list ctx)
  in
  let total_risk =
    List.fold_left (fun acc f -> acc +. Value.to_number (f.get ())) 0. results
  in
  if total_risk +. value < g_risk then begin
    ignore
      (ctx.call ~reactor:pprovider ~proc:"add_entry"
         ~args:[ Wl.vi ts; Wl.vi wallet; Wl.vf value ]);
    Value.Null
  end
  else abort "global risk limit exceeded"

(* auth_pay_query_par: parallel scan legs (what a parallel join plan gives a
   classic engine), risk simulations sequential at the exchange. *)
let auth_pay_query_par ctx args =
  let pprovider = arg_str args 0 in
  let ts = arg_int args 1 and wallet = arg_int args 2 in
  let value = arg_float args 3 in
  let window_records = arg_int args 4 in
  let sim_cost = arg_float args 5 in
  let _now = arg_float args 6 in
  let p_exposure, g_risk = limits ctx in
  let scans =
    List.map
      (fun p ->
        (p, ctx.call ~reactor:p ~proc:"exposure_of" ~args:[ Wl.vi window_records ]))
      (provider_list ctx)
  in
  let total_risk =
    List.fold_left
      (fun acc (_p, f) ->
        let expo = Value.to_number (f.get ()) in
        if expo > p_exposure then abort "provider exposure above limit";
        (* sim_risk runs here, at the exchange, once per provider. *)
        ctx.db.Query.Exec.work sim_cost;
        acc +. (expo *. 0.01))
      0. scans
  in
  if total_risk +. value < g_risk then begin
    ignore
      (ctx.call ~reactor:pprovider ~proc:"add_entry"
         ~args:[ Wl.vi ts; Wl.vi wallet; Wl.vf value ]);
    Value.Null
  end
  else abort "global risk limit exceeded"

let exchange_type =
  rtype ~name:"Exchange"
    ~schemas:[ s_settlement_risk; s_provider_names ]
    ~procs:
      [ ("auth_pay", auth_pay); ("auth_pay_query_par", auth_pay_query_par) ]
    ()

(* --- Monolith: the classic formulation of Fig. 1(a), fully sequential --- *)

let s_mono_provider =
  Storage.Schema.make ~name:"provider"
    ~columns:
      [ ("name", Value.TStr); ("risk", Value.TFloat); ("time", Value.TFloat);
        ("window", Value.TFloat) ]
    ~key:[ "name" ]

let s_mono_orders =
  Storage.Schema.make ~name:"orders"
    ~columns:
      [ ("provider", Value.TStr); ("ts", Value.TInt); ("wallet", Value.TInt);
        ("value", Value.TFloat); ("settled", Value.TStr) ]
    ~key:[ "provider"; "ts" ]

(* auth_pay_seq: join provider × orders sequentially, simulate risk per
   provider in place. *)
let auth_pay_seq ctx args =
  let pprovider = arg_str args 0 in
  let ts = arg_int args 1 and wallet = arg_int args 2 in
  let value = arg_float args 3 in
  let window_records = arg_int args 4 in
  let sim_cost = arg_float args 5 in
  let _now = arg_float args 6 in
  let p_exposure, g_risk = limits ctx in
  let providers = Query.Exec.scan ctx.db "provider" () in
  let total_risk =
    List.fold_left
      (fun acc prow ->
        let pname = Value.to_str prow.(0) in
        let rows =
          Query.Exec.scan ctx.db "orders" ~prefix:[| Wl.vs pname |] ~rev:true
            ~limit:window_records ()
        in
        let expo =
          List.fold_left
            (fun e row ->
              if Value.to_str row.(4) = "N" then e +. Value.to_number row.(3)
              else e)
            0. rows
        in
        if expo > p_exposure then abort "provider exposure above limit";
        ctx.db.Query.Exec.work sim_cost;
        acc +. (expo *. 0.01))
      0. providers
  in
  if total_risk +. value < g_risk then begin
    Query.Exec.insert ctx.db "orders"
      [| Wl.vs pprovider; Wl.vi ts; Wl.vi wallet; Wl.vf value; Wl.vs "N" |];
    Value.Null
  end
  else abort "global risk limit exceeded"

let monolith_type =
  rtype ~name:"Monolith"
    ~schemas:[ s_settlement_risk; s_mono_provider; s_mono_orders ]
    ~procs:[ ("auth_pay_seq", auth_pay_seq) ]
    ()

(* --- declarations and loading --- *)

let provider_name i = Printf.sprintf "p%d" i
let providers n = List.init n provider_name

(** Reactor database of Fig. 1(b): one Exchange ("exchange") plus [n]
    providers, each loaded with [orders_per_provider] unsettled orders.
    Limits are set high so [auth_pay] never aborts on business rules, and
    provider risk caches are loaded stale so [sim_risk] always runs
    (App. G). *)
let decl ~providers:n ~orders_per_provider () =
  let provider_loader catalog =
    Wl.load catalog "provider_info" [| Wl.vi 0; Wl.vf 0.; Wl.vf (-1e18); Wl.vf 1. |];
    for ts = 1 to orders_per_provider do
      Wl.load catalog "orders"
        [| Wl.vi ts; Wl.vi ts; Wl.vf 10.; Wl.vs "N" |]
    done
  in
  let exchange_loader catalog =
    Wl.load catalog "settlement_risk" [| Wl.vi 0; Wl.vf 1e15; Wl.vf 1e15 |];
    List.iter
      (fun p -> Wl.load catalog "provider_names" [| Wl.vs p |])
      (providers n)
  in
  Reactor.decl
    ~types:[ exchange_type; provider_type ]
    ~reactors:
      (("exchange", "Exchange") :: List.map (fun p -> (p, "Provider")) (providers n))
    ~loaders:
      (("exchange", exchange_loader)
      :: List.map (fun p -> (p, provider_loader)) (providers n))
    ()

(** Classic single-reactor database of Fig. 1(a). *)
let mono_decl ~providers:n ~orders_per_provider () =
  let loader catalog =
    Wl.load catalog "settlement_risk" [| Wl.vi 0; Wl.vf 1e15; Wl.vf 1e15 |];
    List.iter
      (fun p ->
        Wl.load catalog "provider" [| Wl.vs p; Wl.vf 0.; Wl.vf (-1e18); Wl.vf 1. |];
        for ts = 1 to orders_per_provider do
          Wl.load catalog "orders"
            [| Wl.vs p; Wl.vi ts; Wl.vi ts; Wl.vf 10.; Wl.vs "N" |]
        done)
      (providers n)
  in
  Reactor.decl ~types:[ monolith_type ]
    ~reactors:[ ("mono", "Monolith") ]
    ~loaders:[ ("mono", loader) ]
    ()

(** auth_pay request. [strategy] picks the procedure (and must match the
    declaration used: [`Sequential] with {!mono_decl}, others with
    {!decl}). *)
let gen_auth_pay rng ~strategy ~n_providers ~window ~sim_cost ~seq =
  incr seq;
  let ts = 1_000_000 + !seq in
  let provider = provider_name (Rng.int rng n_providers) in
  (* Advance [now] by more than the loaded freshness window (1.0) per
     transaction, so every auth_pay finds the cached risk stale and re-runs
     the simulation (App. G's "sim_risk is always invoked"). *)
  let args =
    [ Wl.vs provider; Wl.vi ts; Wl.vi (Rng.int rng 10_000); Wl.vf 1.;
      Wl.vi window; Wl.vf sim_cost; Wl.vf (2. *. float_of_int !seq) ]
  in
  match strategy with
  | `Procedure_par -> Wl.request "exchange" "auth_pay" args
  | `Query_par -> Wl.request "exchange" "auth_pay_query_par" args
  | `Sequential -> Wl.request "mono" "auth_pay_seq" args
