(* Shared helpers for workload implementations: loading physical rows and
   small value shorthands used throughout stored-procedure code. *)

open Util

let vi i = Value.Int i
let vf f = Value.Float f
let vs s = Value.Str s

(* Physical (non-transactional) row load, used only by bootstrap loaders. *)
let load catalog table row =
  let tbl = Storage.Catalog.table catalog table in
  match Storage.Table.insert tbl (Storage.Record.fresh ~absent:false row) with
  | None -> ()
  | Some _ ->
    invalid_arg
      (Printf.sprintf "Wl.load: duplicate key while loading table %S" table)

(* A transaction request: which reactor/procedure to invoke with which
   arguments. Generators produce these; the harness executes them. *)
type request = { reactor : string; proc : string; args : Value.t list }

let request reactor proc args = { reactor; proc; args }
