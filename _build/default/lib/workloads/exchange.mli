(** The digital currency exchange of Figure 1 and Appendix G.

    Two modelings: the reactor database of Fig. 1(b) — an [Exchange]
    reactor plus [Provider] reactors, with [auth_pay] fanning [calc_risk]
    out asynchronously ({e procedure-level parallelism}) or only the order
    scans ({e query-level parallelism}) — and the classic single-reactor
    [Monolith] of Fig. 1(a) for the fully sequential plan.

    The risk simulation is modeled as [sim_cost] µs of computation (the
    paper simulates it by random-number generation). *)

(** Procedures: [calc_risk], [exposure_of], [add_entry]. *)
val provider_type : Reactor.rtype

(** Procedures: [auth_pay] (Fig. 1(b)), [auth_pay_query_par]. *)
val exchange_type : Reactor.rtype

(** Procedures: [auth_pay_seq] (Fig. 1(a)). *)
val monolith_type : Reactor.rtype

val provider_name : int -> string
val providers : int -> string list

(** Reactor database: one "exchange" + [n] providers, each loaded with
    [orders_per_provider] unsettled orders; limits set so business rules
    never trip, risk caches loaded stale so the simulation always runs
    (App. G). *)
val decl : providers:int -> orders_per_provider:int -> unit -> Reactor.decl

(** Classic single-reactor database ("mono") of Fig. 1(a). *)
val mono_decl :
  providers:int -> orders_per_provider:int -> unit -> Reactor.decl

(** Generate an auth_pay request. [strategy] selects the plan and must match
    the declaration used ([`Sequential] with {!mono_decl}, the others with
    {!decl}). [window] is the settlement window in records; [seq] provides
    unique order timestamps and advances the freshness clock so every
    transaction re-runs the risk simulation. *)
val gen_auth_pay :
  Util.Rng.t ->
  strategy:[ `Procedure_par | `Query_par | `Sequential ] ->
  n_providers:int ->
  window:int ->
  sim_cost:float ->
  seq:int ref ->
  Wl.request
