lib/workloads/exchange.ml: Array List Printf Query Reactor Rng Storage Util Value Wl
