lib/workloads/wl.ml: Printf Storage Util Value
