lib/workloads/smallbank.ml: Array List Printf Query Reactor Rng Storage String Util Value Wl
