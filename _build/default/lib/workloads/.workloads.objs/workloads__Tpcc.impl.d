lib/workloads/tpcc.ml: Array Hashtbl List Option Printf Query Reactor Rng Stdlib Storage String Util Value Wl
