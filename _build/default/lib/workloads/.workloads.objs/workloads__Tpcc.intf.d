lib/workloads/tpcc.mli: Reactor Util Wl
