lib/workloads/ycsb.ml: Array Hashtbl Int List Printf Query Reactor Rng Storage String Util Value Wl
