lib/workloads/exchange.mli: Reactor Util Wl
