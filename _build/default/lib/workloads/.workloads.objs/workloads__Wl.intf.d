lib/workloads/wl.mli: Storage Util
