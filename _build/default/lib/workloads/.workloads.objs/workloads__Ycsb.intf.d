lib/workloads/ycsb.mli: Reactor Util Wl
