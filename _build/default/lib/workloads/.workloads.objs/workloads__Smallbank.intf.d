lib/workloads/smallbank.mli: Reactor Storage Util Wl
