(** Shared helpers for workload implementations. *)

(** Value shorthands used throughout stored-procedure code. *)

val vi : int -> Util.Value.t
val vf : float -> Util.Value.t
val vs : string -> Util.Value.t

(** [load catalog table row] inserts a row physically (no concurrency
    control) — bootstrap loaders only. Raises [Invalid_argument] on
    duplicate keys. *)
val load : Storage.Catalog.t -> string -> Util.Value.t array -> unit

(** A transaction request: the root reactor, procedure and arguments.
    Workload generators produce requests; the harness executes them. *)
type request = { reactor : string; proc : string; args : Util.Value.t list }

val request : string -> string -> Util.Value.t list -> request
