type mode = Async | Sync | Self

type call = { target_type : string; target_proc : string; mode : mode }

type t = ((string * string) * call list) list

let make spec = spec

type issue =
  | Unknown_type of string
  | Unknown_proc of string * string
  | Type_cycle of string list
  | Concurrent_reach of {
      in_proc : string * string;
      first : string * string;
      second : string * string;
      shared_type : string;
    }

let pp_issue ppf = function
  | Unknown_type ty -> Fmt.pf ppf "unknown reactor type %s" ty
  | Unknown_proc (ty, p) -> Fmt.pf ppf "unknown procedure %s.%s" ty p
  | Type_cycle tys ->
    Fmt.pf ppf "cyclic call structure across reactor types: %s"
      (String.concat " -> " (tys @ [ List.hd tys ]))
  | Concurrent_reach { in_proc = ty, p; first = ft, fp; second = st, sp;
                       shared_type } ->
    Fmt.pf ppf
      "%s.%s: asynchronous call %s.%s may still be active when %s.%s runs, \
       and both can reach reactor type %s — dangerous unless the target \
       reactors are provably distinct"
      ty p ft fp st sp shared_type

let calls_of spec key = Option.value ~default:[] (List.assoc_opt key spec)

(* Reactor types a procedure's execution can touch, transitively. Self calls
   stay on the same reactor type but their nested calls still count. *)
let reach spec (ty, proc) =
  let seen = Hashtbl.create 16 in
  let types = Hashtbl.create 16 in
  let rec go (ty, proc) =
    if not (Hashtbl.mem seen (ty, proc)) then begin
      Hashtbl.replace seen (ty, proc) ();
      List.iter
        (fun c ->
          let tty = if c.mode = Self then ty else c.target_type in
          if c.mode <> Self then Hashtbl.replace types tty ();
          go (tty, c.target_proc))
        (calls_of spec (ty, proc))
    end
  in
  go (ty, proc);
  List.sort String.compare (Hashtbl.fold (fun k () acc -> k :: acc) types [])

(* Type-level call graph: edges between distinct reactor types. *)
let type_edges spec =
  List.concat_map
    (fun ((ty, _), calls) ->
      List.filter_map
        (fun c ->
          if c.mode = Self || c.target_type = ty then None
          else Some (ty, c.target_type))
        calls)
    spec
  |> List.sort_uniq compare

let find_cycles spec =
  let edges = type_edges spec in
  let succs ty =
    List.filter_map (fun (a, b) -> if a = ty then Some b else None) edges
  in
  let nodes = List.sort_uniq compare (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let cycles = ref [] in
  let report path ty =
    (* path is the stack, most recent first; extract the cycle segment *)
    let rec upto acc = function
      | [] -> acc
      | x :: _ when x = ty -> x :: acc
      | x :: rest -> upto (x :: acc) rest
    in
    let cyc = upto [] path in
    (* canonicalize: rotate so the smallest element is first *)
    let n = List.length cyc in
    if n > 0 then begin
      let arr = Array.of_list cyc in
      let min_i = ref 0 in
      Array.iteri (fun i x -> if x < arr.(!min_i) then min_i := i) arr;
      let rotated = List.init n (fun i -> arr.((i + !min_i) mod n)) in
      if not (List.mem rotated !cycles) then cycles := rotated :: !cycles
    end
  in
  let color = Hashtbl.create 16 in
  let rec visit path ty =
    match Hashtbl.find_opt color ty with
    | Some `Done -> ()
    | Some `Active -> report path ty
    | None ->
      Hashtbl.replace color ty `Active;
      List.iter (visit (ty :: path)) (succs ty);
      Hashtbl.replace color ty `Done
  in
  (* a fresh color table per root would find more cycles; one pass finds at
     least one representative per SCC, which is enough to fail the check *)
  List.iter (fun ty -> visit [] ty) nodes;
  List.rev_map (fun c -> Type_cycle c) !cycles

let validate decl spec =
  let issues = ref [] in
  let has_type ty =
    List.exists (fun t -> t.Reactor.rt_name = ty) decl.Reactor.types
  in
  let has_proc ty p =
    match List.find_opt (fun t -> t.Reactor.rt_name = ty) decl.Reactor.types with
    | Some t -> List.mem_assoc p t.Reactor.rt_procs
    | None -> false
  in
  let check_ref ty p =
    if not (has_type ty) then issues := Unknown_type ty :: !issues
    else if not (has_proc ty p) then issues := Unknown_proc (ty, p) :: !issues
  in
  List.iter
    (fun ((ty, p), calls) ->
      check_ref ty p;
      List.iter
        (fun c ->
          let tty = if c.mode = Self then ty else c.target_type in
          check_ref tty c.target_proc)
        calls)
    spec;
  List.rev !issues

(* Concurrent reaches: within each procedure, an Async call at position i is
   still active while any later call j > i runs; if the reach sets (plus the
   target types themselves) intersect, the runtime could see two active
   sub-transactions on one reactor. *)
let concurrent_reaches spec =
  let touch (caller_ty : string) c =
    let tty = if c.mode = Self then caller_ty else c.target_type in
    (* A Self call touches the calling reactor — which is itself an instance
       of the caller's type, so an earlier asynchronous call to that type
       could collide with it (the runtime inlines only literal self-name
       calls; a dynamic name equal to the caller trips the dynamic check). *)
    List.sort_uniq String.compare (tty :: reach spec (tty, c.target_proc))
  in
  List.concat_map
    (fun ((ty, p), calls) ->
      let calls = Array.of_list calls in
      let issues = ref [] in
      for i = 0 to Array.length calls - 1 do
        if calls.(i).mode = Async then
          for j = i + 1 to Array.length calls - 1 do
            let ti = touch ty calls.(i) and tj = touch ty calls.(j) in
            match List.find_opt (fun t -> List.mem t tj) ti with
            | Some shared ->
              issues :=
                Concurrent_reach
                  {
                    in_proc = (ty, p);
                    first = (calls.(i).target_type, calls.(i).target_proc);
                    second = (calls.(j).target_type, calls.(j).target_proc);
                    shared_type = shared;
                  }
                :: !issues
            | None -> ()
          done
      done;
      List.rev !issues)
    spec

let analyze decl spec =
  match validate decl spec with
  | _ :: _ as issues -> issues
  | [] -> find_cycles spec @ concurrent_reaches spec
