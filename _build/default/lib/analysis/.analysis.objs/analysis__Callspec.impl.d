lib/analysis/callspec.ml: Array Fmt Hashtbl List Option Reactor String
