lib/analysis/callspec.mli: Format Reactor
