(** Static detection of dangerous call structures.

    §2.2.4 enforces at {e run time} that at most one sub-transaction is
    active per reactor and root transaction, and names static program
    checks as future work. This module provides such a check, at the
    granularity the paper's model affords: since procedures address
    reactors by dynamic names, developers declare a {e call specification}
    — which procedures of which reactor types each procedure may invoke,
    and how (asynchronously, synchronously-forced, or on self) — and the
    analyzer conservatively flags:

    - {b cycles} across reactor types in the call graph (cyclic execution
      structures are always aborted by the runtime);
    - {b concurrent reaches}: two calls issued by one procedure where an
      earlier asynchronous call is still active while a later call runs,
      and both can (transitively) touch the same reactor type — dangerous
      unless the program guarantees the actual target reactors are
      distinct (which the type-level analysis cannot see; such warnings
      point at exactly the places needing the §2.2.4 testing discipline).

    The analysis is sound for the structures it models: a program whose
    specification produces no issues cannot trip the runtime's dynamic
    safety condition. *)

type mode =
  | Async  (** future not forced at the call site *)
  | Sync  (** future forced immediately *)
  | Self  (** call on the invoking reactor itself (inlined) *)

type call = { target_type : string; target_proc : string; mode : mode }

(** Specification: per (reactor type, procedure), its outgoing calls.
    Procedures not listed are assumed to make no calls. *)
type t

val make : ((string * string) * call list) list -> t

type issue =
  | Unknown_type of string
  | Unknown_proc of string * string
  | Type_cycle of string list
      (** reactor types forming a call cycle, in order *)
  | Concurrent_reach of {
      in_proc : string * string;  (** procedure issuing the calls *)
      first : string * string;  (** earlier asynchronous call *)
      second : string * string;  (** later call overlapping it *)
      shared_type : string;  (** reactor type both can touch *)
    }

val pp_issue : Format.formatter -> issue -> unit

(** [analyze decl spec] validates the spec against the declaration and
    returns all issues ([] = statically safe). *)
val analyze : Reactor.decl -> t -> issue list

(** Reactor types (transitively) reachable from a procedure, excluding
    pure self-recursion — exposed for tests and tooling. *)
val reach : t -> string * string -> string list
