module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

(* Maximum keys per leaf and children per internal node. Chosen small enough
   to exercise splits heavily in tests, large enough for decent constant
   factors in benchmarks. *)
let leaf_cap = 32
let internal_cap = 32

module Make (K : ORDERED) = struct
  type 'v leaf = {
    mutable lkeys : K.t array; (* slots [0, ln) are valid *)
    mutable lvals : 'v array;
    mutable ln : int;
    mutable version : int;
    mutable next : 'v leaf option;
    mutable prev : 'v leaf option;
  }

  type 'v internal = {
    mutable ikeys : K.t array; (* separators; child i < ikeys.(i) <= child i+1 *)
    mutable children : 'v node array;
    mutable nchildren : int;
  }

  and 'v node = L of 'v leaf | I of 'v internal

  type 'v t = { mutable root : 'v node; mutable size : int }

  type witness = W : 'v leaf * int -> witness

  let new_leaf () =
    { lkeys = [||]; lvals = [||]; ln = 0; version = 0; next = None; prev = None }

  let create () = { root = L (new_leaf ()); size = 0 }
  let size t = t.size
  let witness_valid (W (leaf, v)) = leaf.version = v

  (* First index in [0, n) with keys.(i) >= k, else n. *)
  let lower_bound keys n k =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare keys.(mid) k < 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* First index in [0, n) with keys.(i) > k, else n. *)
  let upper_bound keys n k =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if K.compare keys.(mid) k <= 0 then lo := mid + 1 else hi := mid
    done;
    !lo

  (* Child index to descend into for key [k]: number of separators <= k would
     be wrong for duplicate separators; we route equal keys right, matching
     the separator convention (separator s = smallest key of right child). *)
  let child_index node k = upper_bound node.ikeys (node.nchildren - 1) k

  let rec descend_leaf node k =
    match node with
    | L leaf -> leaf
    | I inner -> descend_leaf inner.children.(child_index inner k) k

  let rec leftmost_leaf = function
    | L leaf -> leaf
    | I inner -> leftmost_leaf inner.children.(0)

  let rec rightmost_leaf = function
    | L leaf -> leaf
    | I inner -> rightmost_leaf inner.children.(inner.nchildren - 1)

  let find ?on_node t k =
    let leaf = descend_leaf t.root k in
    (match on_node with Some f -> f (W (leaf, leaf.version)) | None -> ());
    let i = lower_bound leaf.lkeys leaf.ln k in
    if i < leaf.ln && K.compare leaf.lkeys.(i) k = 0 then Some leaf.lvals.(i)
    else None

  let mem t k = Option.is_some (find t k)

  (* Grow backing arrays if full, using the incoming binding as fill. *)
  let ensure_leaf_capacity leaf k v =
    let cap = Array.length leaf.lkeys in
    if leaf.ln = cap then begin
      let newcap = if cap = 0 then 4 else Stdlib.min leaf_cap (cap * 2) in
      let ks = Array.make newcap k in
      let vs = Array.make newcap v in
      Array.blit leaf.lkeys 0 ks 0 leaf.ln;
      Array.blit leaf.lvals 0 vs 0 leaf.ln;
      leaf.lkeys <- ks;
      leaf.lvals <- vs
    end

  let leaf_insert_at leaf i k v =
    ensure_leaf_capacity leaf k v;
    Array.blit leaf.lkeys i leaf.lkeys (i + 1) (leaf.ln - i);
    Array.blit leaf.lvals i leaf.lvals (i + 1) (leaf.ln - i);
    leaf.lkeys.(i) <- k;
    leaf.lvals.(i) <- v;
    leaf.ln <- leaf.ln + 1;
    leaf.version <- leaf.version + 1

  (* Split a full leaf; returns (separator, right leaf). *)
  let split_leaf leaf =
    let mid = leaf.ln / 2 in
    let rn = leaf.ln - mid in
    let right =
      {
        lkeys = Array.sub leaf.lkeys mid rn;
        lvals = Array.sub leaf.lvals mid rn;
        ln = rn;
        version = 0;
        next = leaf.next;
        prev = Some leaf;
      }
    in
    (match leaf.next with Some n -> n.prev <- Some right | None -> ());
    leaf.next <- Some right;
    leaf.ln <- mid;
    leaf.version <- leaf.version + 1;
    (right.lkeys.(0), right)

  let split_internal inner =
    (* nchildren = internal_cap + 1 at this point. *)
    let midchild = inner.nchildren / 2 in
    (* Separator promoted upward is ikeys.(midchild - 1). *)
    let sep = inner.ikeys.(midchild - 1) in
    let rchildren = inner.nchildren - midchild in
    let right =
      {
        ikeys = Array.sub inner.ikeys midchild (rchildren - 1);
        children = Array.sub inner.children midchild rchildren;
        nchildren = rchildren;
      }
    in
    inner.nchildren <- midchild;
    (sep, I right)

  (* Returns (previous binding, overflow split). *)
  let rec insert_node node k v =
    match node with
    | L leaf ->
      let i = lower_bound leaf.lkeys leaf.ln k in
      if i < leaf.ln && K.compare leaf.lkeys.(i) k = 0 then begin
        let prev = leaf.lvals.(i) in
        leaf.lvals.(i) <- v;
        (Some prev, None)
      end
      else if leaf.ln >= leaf_cap then begin
        let sep, right = split_leaf leaf in
        let target = if K.compare k sep < 0 then leaf else right in
        let j = lower_bound target.lkeys target.ln k in
        leaf_insert_at target j k v;
        (None, Some (sep, L right))
      end
      else begin
        leaf_insert_at leaf i k v;
        (None, None)
      end
    | I inner ->
      let ci = child_index inner k in
      let prev, split = insert_node inner.children.(ci) k v in
      (match split with
      | None -> (prev, None)
      | Some (sep, rnode) ->
        (* Insert separator at position ci and child at ci+1. *)
        let nsep = inner.nchildren - 1 in
        let ikeys = Array.make (nsep + 1) sep in
        Array.blit inner.ikeys 0 ikeys 0 ci;
        Array.blit inner.ikeys ci ikeys (ci + 1) (nsep - ci);
        let children = Array.make (inner.nchildren + 1) rnode in
        Array.blit inner.children 0 children 0 (ci + 1);
        Array.blit inner.children (ci + 1) children (ci + 2)
          (inner.nchildren - ci - 1);
        inner.ikeys <- ikeys;
        inner.children <- children;
        inner.nchildren <- inner.nchildren + 1;
        if inner.nchildren > internal_cap then (prev, Some (split_internal inner))
        else (prev, None))

  let insert t k v =
    let prev, split = insert_node t.root k v in
    (match split with
    | None -> ()
    | Some (sep, right) ->
      t.root <-
        I { ikeys = [| sep |]; children = [| t.root; right |]; nchildren = 2 });
    if prev = None then t.size <- t.size + 1;
    prev

  let delete t k =
    let leaf = descend_leaf t.root k in
    let i = lower_bound leaf.lkeys leaf.ln k in
    if i < leaf.ln && K.compare leaf.lkeys.(i) k = 0 then begin
      let prev = leaf.lvals.(i) in
      Array.blit leaf.lkeys (i + 1) leaf.lkeys i (leaf.ln - i - 1);
      Array.blit leaf.lvals (i + 1) leaf.lvals i (leaf.ln - i - 1);
      leaf.ln <- leaf.ln - 1;
      leaf.version <- leaf.version + 1;
      t.size <- t.size - 1;
      Some prev
    end
    else None

  let note on_node leaf =
    match on_node with Some f -> f (W (leaf, leaf.version)) | None -> ()

  let range ?on_node ?lo ?hi t ~f =
    let start =
      match lo with
      | Some k -> descend_leaf t.root k
      | None -> leftmost_leaf t.root
    in
    let above_hi k =
      match hi with Some h -> K.compare k h > 0 | None -> false
    in
    let rec walk leaf =
      note on_node leaf;
      let i0 =
        match lo with Some k -> lower_bound leaf.lkeys leaf.ln k | None -> 0
      in
      let rec scan i =
        if i >= leaf.ln then true
        else
          let k = leaf.lkeys.(i) in
          if above_hi k then false
          else if f k leaf.lvals.(i) then scan (i + 1)
          else false
      in
      if scan i0 then
        match leaf.next with Some n -> walk_next n | None -> ()
    and walk_next leaf =
      note on_node leaf;
      let rec scan i =
        if i >= leaf.ln then true
        else
          let k = leaf.lkeys.(i) in
          if above_hi k then false
          else if f k leaf.lvals.(i) then scan (i + 1)
          else false
      in
      if scan 0 then
        match leaf.next with Some n -> walk_next n | None -> ()
    in
    walk start

  let range_rev ?on_node ?lo ?hi t ~f =
    let start =
      match hi with
      | Some k -> descend_leaf t.root k
      | None -> rightmost_leaf t.root
    in
    let below_lo k =
      match lo with Some l -> K.compare k l < 0 | None -> false
    in
    let rec walk leaf first =
      note on_node leaf;
      let i0 =
        if first then
          match hi with
          | Some k -> upper_bound leaf.lkeys leaf.ln k - 1
          | None -> leaf.ln - 1
        else leaf.ln - 1
      in
      let rec scan i =
        if i < 0 then true
        else
          let k = leaf.lkeys.(i) in
          if below_lo k then false
          else if f k leaf.lvals.(i) then scan (i - 1)
          else false
      in
      if scan i0 then
        match leaf.prev with Some p -> walk p false | None -> ()
    in
    walk start true

  let iter t ~f =
    range t ~f:(fun k v ->
        f k v;
        true)

  let fold t ~init ~f =
    let acc = ref init in
    iter t ~f:(fun k v -> acc := f !acc k v);
    !acc

  let min_binding t =
    let r = ref None in
    range t ~f:(fun k v ->
        r := Some (k, v);
        false);
    !r

  let max_binding t =
    let r = ref None in
    range_rev t ~f:(fun k v ->
        r := Some (k, v);
        false);
    !r

  let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let clear t =
    t.root <- L (new_leaf ());
    t.size <- 0

  let check_invariants t =
    let fail fmt = Printf.ksprintf failwith fmt in
    (* 1. Keys strictly ascending across the leaf chain; count matches. *)
    let count = ref 0 in
    let last = ref None in
    let rec walk_chain leaf =
      for i = 0 to leaf.ln - 1 do
        (match !last with
        | Some k when K.compare k leaf.lkeys.(i) >= 0 ->
          fail "btree: keys not strictly ascending"
        | _ -> ());
        last := Some leaf.lkeys.(i);
        incr count
      done;
      match leaf.next with
      | Some n ->
        (match n.prev with
        | Some p when p == leaf -> ()
        | _ -> fail "btree: broken prev link");
        walk_chain n
      | None -> ()
    in
    walk_chain (leftmost_leaf t.root);
    if !count <> t.size then fail "btree: size mismatch (%d vs %d)" !count t.size;
    (* 2. Separator invariants: every key in child i is < sep i, keys in
       child i+1 are >= sep i. *)
    let rec check_node node lo hi =
      let in_bounds k =
        (match lo with Some l -> K.compare l k <= 0 | None -> true)
        && match hi with Some h -> K.compare k h < 0 | None -> true
      in
      match node with
      | L leaf ->
        for i = 0 to leaf.ln - 1 do
          if not (in_bounds leaf.lkeys.(i)) then
            fail "btree: leaf key outside separator bounds"
        done
      | I inner ->
        if inner.nchildren < 2 then fail "btree: internal with < 2 children";
        for i = 0 to inner.nchildren - 1 do
          let lo' = if i = 0 then lo else Some inner.ikeys.(i - 1) in
          let hi' = if i = inner.nchildren - 1 then hi else Some inner.ikeys.(i) in
          check_node inner.children.(i) lo' hi'
        done
    in
    check_node t.root None None
end
