(** In-memory B+tree with leaf-version witnesses.

    This is the ordered index underlying every ReactDB table. It follows the
    design Silo builds on: data lives only in leaves, leaves are doubly
    linked for forward and reverse range scans, and every leaf carries a
    {e version} counter that is bumped on any structural change (key insert,
    key delete, split). Readers can take a {!witness} of each leaf they
    touched; optimistic concurrency control re-validates witnesses at commit
    time to detect phantoms (a key appearing or disappearing in a scanned
    range necessarily bumps a witnessed leaf's version).

    The tree is not internally synchronized: ReactDB containers serialize
    structural access per container, and OCC provides transactional
    isolation on top. Deletion is by unlink-without-rebalance, the usual
    choice for in-memory OLTP trees (leaves may underflow; they are reclaimed
    only when empty splits would reuse them, which keeps the version
    discipline trivially sound). *)

module type ORDERED = sig
  type t

  val compare : t -> t -> int
end

module Make (K : ORDERED) : sig
  type 'v t

  (** Witness of one leaf's version at read time. *)
  type witness

  val create : unit -> 'v t

  (** Number of live keys. *)
  val size : 'v t -> int

  (** [find t k] is the value bound to [k], if any. [on_node], when given,
      receives a witness of the leaf that holds (or would hold) [k] — needed
      to validate negative lookups against phantom inserts. *)
  val find : ?on_node:(witness -> unit) -> 'v t -> K.t -> 'v option

  val mem : 'v t -> K.t -> bool

  (** [insert t k v] binds [k] to [v] and returns the previous binding. *)
  val insert : 'v t -> K.t -> 'v -> 'v option

  (** [delete t k] removes [k] and returns its binding. *)
  val delete : 'v t -> K.t -> 'v option

  (** [range t ?lo ?hi ~f] visits bindings with [lo <= k <= hi] in ascending
      order ([lo]/[hi] default to the extremes); [f] returns [false] to stop
      early. Every visited leaf is reported to [on_node]. *)
  val range :
    ?on_node:(witness -> unit) ->
    ?lo:K.t ->
    ?hi:K.t ->
    'v t ->
    f:(K.t -> 'v -> bool) ->
    unit

  (** Like {!range} but descending. *)
  val range_rev :
    ?on_node:(witness -> unit) ->
    ?lo:K.t ->
    ?hi:K.t ->
    'v t ->
    f:(K.t -> 'v -> bool) ->
    unit

  val iter : 'v t -> f:(K.t -> 'v -> unit) -> unit
  val fold : 'v t -> init:'a -> f:('a -> K.t -> 'v -> 'a) -> 'a
  val min_binding : 'v t -> (K.t * 'v) option
  val max_binding : 'v t -> (K.t * 'v) option
  val to_list : 'v t -> (K.t * 'v) list
  val clear : 'v t -> unit

  (** [witness_valid w] is [true] iff the witnessed leaf's version is
      unchanged since the witness was taken. *)
  val witness_valid : witness -> bool

  (** Internal consistency check for tests: key ordering, leaf-link
      integrity, separator invariants. Raises [Failure] when violated. *)
  val check_invariants : 'v t -> unit
end
