(** Plain-text table rendering for benchmark and experiment output.

    Columns are right-aligned except the first, widths are computed from the
    data, and an optional title/rule make the output scannable in a terminal
    log (the style used by EXPERIMENTS.md transcripts). *)

type t

(** [create ~title headers] starts a table with the given column headers. *)
val create : ?title:string -> string list -> t

(** Append one row; must have the same arity as the headers. *)
val row : t -> string list -> unit

(** Convenience: format a float cell with [digits] decimals. *)
val fcell : ?digits:int -> float -> string

val icell : int -> string

(** Render the full table. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** [print t] writes the table to stdout followed by a blank line. *)
val print : t -> unit
