(** Dynamically typed column values.

    ReactDB stores relations whose columns hold values of one of a small set
    of runtime types. [Value.t] is the universal cell type used by the storage
    layer, the query combinators and stored-procedure arguments/results. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

(** Total order over values. Values of distinct types are ordered by type tag
    ([Null < Bool < Int < Float < Str]); this makes composite keys containing
    heterogeneous columns well-ordered, which the B+tree requires. [Int] and
    [Float] do {e not} compare numerically across types by design: schemas fix
    the type of each column, so cross-type comparisons only ever order
    distinct key spaces. *)
val compare : t -> t -> int

val equal : t -> t -> bool

(** Type of a non-null value. Raises [Invalid_argument] on [Null]. *)
val type_of : t -> ty

val ty_to_string : ty -> string

(** [conforms v ty] holds if [v] is [Null] or has type [ty]. *)
val conforms : t -> ty -> bool

(** Accessors: raise [Type_error] with a descriptive message on mismatch. *)

exception Type_error of string

val to_bool : t -> bool
val to_int : t -> int
val to_float : t -> float

(** [to_number] widens [Int] to [float]; accepts [Int] and [Float]. *)
val to_number : t -> float

val to_str : t -> string
val is_null : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Hash compatible with [equal]. *)
val hash : t -> int
