type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TStr

exception Type_error of string

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | Str _ -> 4

let compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Int.compare (tag a) (tag b)

let equal a b = compare a b = 0

let type_of = function
  | Null -> invalid_arg "Value.type_of: Null"
  | Bool _ -> TBool
  | Int _ -> TInt
  | Float _ -> TFloat
  | Str _ -> TStr

let ty_to_string = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TStr -> "string"

let conforms v ty = match v with Null -> true | _ -> type_of v = ty

let pp ppf = function
  | Null -> Fmt.string ppf "NULL"
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | Str s -> Fmt.pf ppf "%S" s

let to_string v = Fmt.str "%a" pp v

let type_err want v =
  raise (Type_error (Fmt.str "expected %s, got %s" want (to_string v)))

let to_bool = function Bool b -> b | v -> type_err "bool" v
let to_int = function Int i -> i | v -> type_err "int" v
let to_float = function Float f -> f | v -> type_err "float" v

let to_number = function
  | Int i -> float_of_int i
  | Float f -> f
  | v -> type_err "number" v

let to_str = function Str s -> s | v -> type_err "string" v
let is_null = function Null -> true | _ -> false

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 43
  | Int i -> Hashtbl.hash i
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s
