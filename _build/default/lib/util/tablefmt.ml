type t = {
  title : string option;
  headers : string list;
  mutable rows : string list list; (* reverse order *)
}

let create ?title headers = { title; headers; rows = [] }

let row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Tablefmt.row: arity mismatch";
  t.rows <- cells :: t.rows

let fcell ?(digits = 3) f = Printf.sprintf "%.*f" digits f
let icell = string_of_int

let widths t =
  let n = List.length t.headers in
  let w = Array.make n 0 in
  let touch cells =
    List.iteri (fun i c -> if String.length c > w.(i) then w.(i) <- String.length c) cells
  in
  touch t.headers;
  List.iter touch t.rows;
  w

let pp ppf t =
  let w = widths t in
  let pad i c =
    let missing = w.(i) - String.length c in
    if i = 0 then c ^ String.make missing ' ' else String.make missing ' ' ^ c
  in
  let render cells =
    String.concat "  " (List.mapi pad cells)
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  (match t.title with
  | Some s -> Fmt.pf ppf "== %s ==@." s
  | None -> ());
  Fmt.pf ppf "%s@.%s@." (render t.headers) rule;
  List.iter (fun r -> Fmt.pf ppf "%s@." (render r)) (List.rev t.rows)

let to_string t = Fmt.str "%a" pp t

let print t =
  print_string (to_string t);
  print_newline ()
