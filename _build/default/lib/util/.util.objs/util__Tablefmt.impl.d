lib/util/tablefmt.ml: Array Fmt List Printf String
