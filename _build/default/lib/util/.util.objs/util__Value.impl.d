lib/util/value.ml: Bool Float Fmt Hashtbl Int String
