lib/util/rng.mli:
