lib/util/stats.ml: Array Float Fmt List Stdlib String
