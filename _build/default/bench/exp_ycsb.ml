(* YCSB multi_update experiments: Figures 13 & 14 (Appendix C) — the effect
   of skew and queueing on latency and throughput, with cost-model
   predictions for the single-worker configuration.

   Setup mirrors the paper at reduced scale: four containers, each holding a
   contiguous range of key reactors; multi_update touches 10 zipfian keys
   and is invoked on one of them, with remote keys ordered before local
   ones (fork-join shape). *)

open Workloads

let n_keys = 10_000
let containers = 4
let txn_keys = 10

let key_container k =
  (* contiguous ranges, like the paper's 10k-per-container assignment *)
  let i = int_of_string (String.sub k 1 (String.length k - 1)) in
  i * containers / n_keys

let config () =
  Reactdb.Config.custom
    ~executors_per_container:(Array.make containers 1)
    ~router:Reactdb.Config.Affinity
    ~placement:key_container
    ~affinity_slot:(fun _ -> 0)
    ()

let build () = Harness.build (Ycsb.decl ~keys:n_keys ()) (config ())

let gen theta =
  let p = Ycsb.params ~txn_keys ~theta n_keys in
  fun rng -> Ycsb.gen_multi_update rng p ~container_of:key_container

(* Average realized async (remote) and sync (local) update counts under a
   given skew — the paper records these to fit the cost model (App. C). *)
let sample_structure theta =
  let rng = Util.Rng.create 99 in
  let g = gen theta in
  let trials = 400 in
  let remote = ref 0 and local = ref 0 and total = ref 0 in
  for _ = 1 to trials do
    let req = g rng in
    let home = key_container req.Wl.reactor in
    List.iter
      (fun v ->
        incr total;
        if key_container (Util.Value.to_str v) <> home then incr remote
        else incr local)
      (List.tl req.Wl.args)
  done;
  ( float_of_int !remote /. float_of_int trials,
    float_of_int !local /. float_of_int trials )

(* Calibrate per-update processing and communication costs by profiling a
   single-key update, like the paper. *)
let calibrate () =
  let db = build () in
  let outs =
    Harness.measure_txns db ~n:50 (fun rng ->
        let k = Util.Rng.int rng n_keys in
        Wl.request (Ycsb.key_name k) "update" [ Wl.vs (String.make 100 'z') ])
  in
  let bd = Harness.mean_breakdown outs in
  bd.Harness.avg_sync_exec

let predict ~cs ~cr ~p_update theta =
  let remote, local = sample_structure theta in
  let n_remote = int_of_float (Float.round remote) in
  let st =
    Costmodel.node ~at:0
      ~p_ovp:((local +. 1.) *. p_update) (* local keys + the root's own *)
      ~async:(List.init n_remote (fun i -> Costmodel.leaf ~at:(i + 1) p_update))
      ()
  in
  let costs = Costmodel.uniform_costs ~cs ~cr in
  Costmodel.latency costs st

let fig13_14 ~fast =
  let thetas = if fast then [ 0.01; 0.99; 5.0 ] else [ 0.01; 0.5; 0.99; 2.0; 5.0 ] in
  let p_update = calibrate () in
  let prof = Reactdb.Profile.default in
  let t =
    Util.Tablefmt.create
      [ "zipf"; "workers"; "latency [ms]"; "tput [Ktxn/s]"; "abort %";
        "pred [ms]"; "pred+C+I [ms]" ]
  in
  List.iter
    (fun theta ->
      let pred =
        predict ~cs:prof.Reactdb.Profile.cost_send
          ~cr:prof.Reactdb.Profile.cost_recv ~p_update theta
      in
      List.iter
        (fun workers ->
          let db = build () in
          let g = gen theta in
          let r =
            Harness.run_load db
              (Bexp.load_spec ~fast ~n_workers:workers (fun _w rng -> g rng))
          in
          Util.Tablefmt.row t
            [ Printf.sprintf "%.2f" theta; string_of_int workers;
              Bexp.fmt_lat r; Bexp.fmt_tput r;
              Util.Tablefmt.fcell ~digits:2 (100. *. r.Harness.abort_rate);
              (if workers = 1 then Util.Tablefmt.fcell (Bexp.ms pred) else "-");
              (* Pred+C+I: add the measured commit+input-generation cost,
                 as Appendix C does. *)
              (if workers = 1 then
                 Util.Tablefmt.fcell
                   (Bexp.ms (pred +. r.Harness.breakdown.Harness.avg_overhead))
               else "-")
            ])
        [ 1; 4 ])
    thetas;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (App. C): with 1 worker, latency falls as skew rises\n\
     (more sub-transactions become local/synchronous) and the prediction\n\
     tracks it; with 4 workers, skew adds queueing — higher and more\n\
     variable latency and rising aborts that the cost model (by design)\n\
     does not capture. Throughput peaks for the 1-worker case at high\n\
     skew; the 4-worker case loses its advantage as skew concentrates\n\
     load on one executor.\n"

let register () =
  Bexp.register ~id:"fig13" ~paper:"Figures 13-14 (App C)"
    ~title:"YCSB multi_update: effect of skew and queueing" fig13_14
