(* Experiment registry and shared helpers for the benchmark harness.

   Every table and figure of the paper's evaluation is one registered
   experiment; `dune exec bench/main.exe` runs them all and prints the
   regenerated series. `--fast` shrinks sweeps for smoke runs; `--only ID`
   selects experiments. *)

type t = {
  id : string;
  paper : string; (* which table/figure this regenerates *)
  title : string;
  run : fast:bool -> unit;
}

let registry : t list ref = ref []

let register ~id ~paper ~title run =
  registry := { id; paper; title; run } :: !registry

let all () = List.rev !registry

(* --- shared helpers --- *)

let exec db (req : Workloads.Wl.request) =
  Reactdb.Database.exec_txn db ~reactor:req.Workloads.Wl.reactor
    ~proc:req.Workloads.Wl.proc ~args:req.Workloads.Wl.args

let ms us = us /. 1000.

let header exp =
  Printf.printf "\n==========================================================\n";
  Printf.printf "%s — %s\n" exp.paper exp.title;
  Printf.printf "==========================================================\n%!"

(* Load spec defaults tuned so the full suite completes in minutes of real
   time while keeping per-point variance low. *)
let epochs ~fast = if fast then 4 else 10
let epoch_us = 10_000.
let warmup = 2

let load_spec ~fast ~n_workers gen =
  Harness.spec ~epochs:(epochs ~fast) ~epoch_us ~warmup_epochs:warmup
    ~n_workers gen

let fmt_tput r =
  Printf.sprintf "%.1f±%.1f" (r.Harness.throughput /. 1000.)
    (r.Harness.throughput_std /. 1000.)

let fmt_lat r =
  Printf.sprintf "%.3f±%.3f" (ms r.Harness.avg_latency) (ms r.Harness.latency_std)
