(* Bechamel micro-benchmarks of the engine primitives (real wall-clock time,
   unlike the virtual-time experiments): B+tree operations, OCC commit
   cycles, expression evaluation, and simulation-engine event throughput.
   Run with `--micro`. *)

open Bechamel
open Toolkit

module BT = Btree.Make (Int)

let bench_btree_insert =
  Test.make ~name:"btree insert 1k" (Staged.stage (fun () ->
      let t = BT.create () in
      for i = 0 to 999 do
        ignore (BT.insert t i i)
      done))

let bench_btree_lookup =
  let t = BT.create () in
  for i = 0 to 9_999 do
    ignore (BT.insert t i i)
  done;
  let idx = ref 0 in
  Test.make ~name:"btree lookup" (Staged.stage (fun () ->
      idx := (!idx + 7919) mod 10_000;
      ignore (BT.find t !idx)))

let bench_btree_range =
  let t = BT.create () in
  for i = 0 to 9_999 do
    ignore (BT.insert t i i)
  done;
  Test.make ~name:"btree range 100" (Staged.stage (fun () ->
      let n = ref 0 in
      BT.range t ~lo:5_000 ~hi:5_099 ~f:(fun _ _ ->
          incr n;
          true)))

let kv_schema =
  Storage.Schema.make ~name:"kv"
    ~columns:[ ("k", Util.Value.TInt); ("v", Util.Value.TInt) ]
    ~key:[ "k" ]

let bench_occ_commit =
  let tbl = Storage.Table.create kv_schema in
  for i = 0 to 999 do
    ignore
      (Storage.Table.insert tbl
         (Storage.Record.fresh ~absent:false [| Util.Value.Int i; Util.Value.Int 0 |]))
  done;
  let ids = ref 0 in
  Test.make ~name:"occ read-modify-write commit" (Staged.stage (fun () ->
      incr ids;
      let txn = Occ.Txn.create ~id:!ids in
      let key = [| Util.Value.Int (!ids mod 1000) |] in
      (match Storage.Table.find tbl key with
      | Some r ->
        (match Occ.Txn.read txn ~container:0 r with
        | Some data ->
          Occ.Txn.write txn ~container:0 ~table:tbl ~key r
            [| data.(0); Util.Value.Int (Util.Value.to_int data.(1) + 1) |]
        | None -> ())
      | None -> ());
      ignore (Occ.Commit.commit_single txn ~epoch:1 ~container:0)))

let bench_expr =
  let expr =
    Query.Expr.(col "v" >. vint 10 &&. (col "k" <. vint 900))
  in
  let pred = Query.Expr.compile_pred kv_schema expr in
  let row = [| Util.Value.Int 5; Util.Value.Int 50 |] in
  Test.make ~name:"compiled predicate eval" (Staged.stage (fun () -> ignore (pred row)))

let bench_sim_events =
  Test.make ~name:"sim 10k events" (Staged.stage (fun () ->
      let e = Sim.Engine.create () in
      Sim.Engine.spawn e (fun () ->
          for _ = 1 to 10_000 do
            Sim.Engine.delay 1.
          done);
      ignore (Sim.Engine.run e)))

let bench_zipf =
  let rng = Util.Rng.create 1 in
  let g = Util.Rng.Zipf.create ~n:100_000 ~theta:0.99 in
  Test.make ~name:"zipf sample" (Staged.stage (fun () -> ignore (Util.Rng.Zipf.next rng g)))

let all_tests =
  [ bench_btree_insert; bench_btree_lookup; bench_btree_range;
    bench_occ_commit; bench_expr; bench_sim_events; bench_zipf ]

let run () =
  print_endline "\n== Micro-benchmarks (real time, Bechamel) ==";
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2_000 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          instance results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-32s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-32s (no estimate)\n%!" name)
        ols)
    all_tests
