(* Digital currency exchange: Figure 19 (Appendix G) — query-level vs
   procedure-level parallelism under growing risk-simulation load.

   15 Provider reactors + 1 Exchange reactor over 16 executors. The paper's
   x-axis counts random numbers generated per provider inside sim_risk; we
   map counts to µs of simulated computation at 100 numbers/µs (a 2-3 GHz
   core's ballpark). The settlement window is tuned, as in the paper, so
   that query-parallelism beats sequential by ~4x when sim_risk costs
   nothing. *)

open Workloads

let n_providers = 15
let orders_per_provider = 3_000
let window = 800

let reactor_cfg () =
  Reactdb.Config.shared_nothing
    ([ "exchange" ] :: List.map (fun p -> [ p ]) (Exchange.providers n_providers))

let mono_cfg () =
  Reactdb.Config.shared_everything ~executors:1 ~affinity:true [ "mono" ]

let measure strategy sim_cost =
  let decl, cfg =
    match strategy with
    | `Sequential ->
      (Exchange.mono_decl ~providers:n_providers ~orders_per_provider (), mono_cfg ())
    | `Query_par | `Procedure_par ->
      (Exchange.decl ~providers:n_providers ~orders_per_provider (), reactor_cfg ())
  in
  let db = Harness.build decl cfg in
  let seq = ref 0 in
  let outs =
    Harness.measure_txns db ~warmup:2 ~n:8 (fun rng ->
        Exchange.gen_auth_pay rng ~strategy ~n_providers ~window ~sim_cost ~seq)
  in
  Harness.mean_latency outs

let fig19 ~fast =
  (* random numbers per provider, log scale 10^1..10^6 *)
  let rand_counts =
    if fast then [ 10; 10_000; 1_000_000 ]
    else [ 10; 100; 1_000; 10_000; 100_000; 1_000_000 ]
  in
  let t =
    Util.Tablefmt.create
      [ "rands/provider"; "sequential [ms]"; "query-par [ms]"; "proc-par [ms]";
        "seq/proc"; "query/proc" ]
  in
  List.iter
    (fun rands ->
      let sim_cost = float_of_int rands /. 100. in
      let seq_l = measure `Sequential sim_cost in
      let qp = measure `Query_par sim_cost in
      let pp = measure `Procedure_par sim_cost in
      Util.Tablefmt.row t
        [ string_of_int rands;
          Util.Tablefmt.fcell ~digits:2 (Bexp.ms seq_l);
          Util.Tablefmt.fcell ~digits:2 (Bexp.ms qp);
          Util.Tablefmt.fcell ~digits:2 (Bexp.ms pp);
          Util.Tablefmt.fcell ~digits:2 (seq_l /. pp);
          Util.Tablefmt.fcell ~digits:2 (qp /. pp) ])
    rand_counts;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (App. G): procedure-parallelism stays nearly flat in\n\
     the simulation load until very high counts; at 10^6 rands/provider it\n\
     beats query-parallelism and sequential by factors approaching the\n\
     paper's 8.14x / 8.57x (the exchange core saturates under\n\
     query-parallelism because sim_risk runs there sequentially).\n"

let register () =
  Bexp.register ~id:"fig19" ~paper:"Figure 19 (App G)"
    ~title:"Query- vs procedure-level parallelism" fig19
