(* Ablation experiments beyond the paper: sensitivity of its conclusions to
   the design knobs ReactDB exposes (multiprogramming level, send/receive
   asymmetry, cache-affinity penalty, hardware profile). These quantify the
   design choices DESIGN.md calls out rather than reproduce a figure. *)

open Workloads

(* ---- MPL: cooperative multitasking under load ---- *)

let abl_mpl ~fast =
  let warehouses = 4 in
  let sizes = { Tpcc.default_sizes with Tpcc.items = 20_000 } in
  let params =
    Tpcc.params ~sizes ~remote_mode:(Tpcc.Per_item 1.0) ~delay_lo:100.
      ~delay_hi:150. warehouses
  in
  let mpls = if fast then [ 1; 8 ] else [ 1; 2; 4; 8; 16 ] in
  let t =
    Util.Tablefmt.create ~title:"new-order-delay, 8 workers on 4 warehouses (SN)"
      [ "MPL"; "tput [txn/s]"; "latency [ms]"; "abort %" ]
  in
  List.iter
    (fun mpl ->
      let cfg =
        Reactdb.Config.shared_nothing ~mpl
          (List.map (fun w -> [ w ]) (Tpcc.warehouses warehouses))
      in
      let db = Harness.build (Tpcc.decl ~warehouses ~sizes ()) cfg in
      let seq = ref 0 in
      let r =
        Harness.run_load db
          (Bexp.load_spec ~fast ~n_workers:8 (fun w rng ->
               incr seq;
               Tpcc.gen_new_order rng params
                 ~home:(1 + (w mod warehouses))
                 ~clock:(float_of_int !seq)))
      in
      Util.Tablefmt.row t
        [ string_of_int mpl;
          Util.Tablefmt.fcell ~digits:0 r.Harness.throughput;
          Bexp.fmt_lat r;
          Util.Tablefmt.fcell ~digits:2 (100. *. r.Harness.abort_rate) ])
    mpls;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected: MPL 1 admits one root per executor at a time — no overlap,\n\
     but near-serial validation windows (low aborts). MPL >= 2 lets the\n\
     executor run a second root while the first waits on remote stock\n\
     work: committed-transaction latency drops and throughput rises\n\
     slightly, while concurrent windows multiply the abort rate roughly\n\
     tenfold. Past the number of workers per executor, MPL is inert.\n\
     This is the §3.2.3 knob: cooperative multitasking trades isolation\n\
     pressure for utilization.\n"

(* ---- Cr sensitivity: the receive-path asymmetry ---- *)

let abl_cr ~fast =
  let crs = if fast then [ 2.; 14. ] else [ 2.; 7.; 14.; 28. ] in
  let t =
    Util.Tablefmt.create
      ~title:"size-7 multi-transfer latency [ms] vs receive cost Cr"
      [ "Cr [µs]"; "fully-sync"; "opt"; "sync/opt" ]
  in
  List.iter
    (fun cr ->
      let profile = { Reactdb.Profile.default with cost_recv = cr } in
      let measure form =
        let db =
          Harness.build ~profile
            (Smallbank.decl ~customers:56 ())
            (Reactdb.Config.shared_nothing
               (List.init 7 (fun g ->
                    List.init 8 (fun k -> Smallbank.customer_name ((g * 8) + k)))))
        in
        let dests =
          List.init 7 (fun i ->
              Smallbank.customer_name ((((i + 1) mod 7) * 8) + 1 + (i / 7)))
        in
        let outs =
          Harness.measure_txns db ~n:30 (fun _ ->
              Smallbank.multi_transfer_request form
                ~src:(Smallbank.customer_name 0) ~dests ~amount:1.)
        in
        Harness.mean_latency outs
      in
      let fs = measure Smallbank.Fully_sync in
      let opt = measure Smallbank.Opt in
      Util.Tablefmt.row t
        [ Util.Tablefmt.fcell ~digits:0 cr;
          Util.Tablefmt.fcell (Bexp.ms fs);
          Util.Tablefmt.fcell (Bexp.ms opt);
          Util.Tablefmt.fcell ~digits:2 (fs /. opt) ])
    crs;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected: fully-sync pays Cr once per transfer (latency grows ~7*Cr);\n\
     opt hides all but ~one Cr behind the overlap window, so the\n\
     formulation gap widens with the receive-path cost — asynchrony matters\n\
     most on exactly the hardware where cross-core wakeups are expensive.\n"

(* ---- hardware profile: do the architecture conclusions transfer? ---- *)

let abl_profile ~fast =
  let warehouses = 4 in
  let params = Tpcc.params 4 in
  let t =
    Util.Tablefmt.create ~title:"TPC-C mix, SF 4, 8 workers"
      [ "profile"; "deployment"; "tput [Ktxn/s]"; "latency [ms]" ]
  in
  List.iter
    (fun (pname, profile) ->
      List.iter
        (fun (dname, cfg) ->
          let db = Harness.build ~profile (Tpcc.decl ~warehouses ()) cfg in
          let seq = ref 0 in
          let r =
            Harness.run_load db
              (Bexp.load_spec ~fast ~n_workers:8 (fun w rng ->
                   Tpcc.gen_mix rng params ~home:(1 + (w mod warehouses)) ~seq))
          in
          Util.Tablefmt.row t
            [ pname; dname; Bexp.fmt_tput r; Bexp.fmt_lat r ])
        [
          ( "shared-everything-with-affinity",
            Reactdb.Config.shared_everything ~executors:warehouses ~affinity:true
              (Tpcc.warehouses warehouses) );
          ( "shared-nothing-async",
            Reactdb.Config.shared_nothing
              (List.map (fun w -> [ w ]) (Tpcc.warehouses warehouses)) );
          ( "shared-everything-without-affinity",
            Reactdb.Config.shared_everything ~executors:warehouses
              ~affinity:false (Tpcc.warehouses warehouses) );
        ])
    [ ("xeon", Reactdb.Profile.default); ("opteron", Reactdb.Profile.opteron) ];
  Util.Tablefmt.print t;
  Printf.printf
    "Expected: absolute numbers shift with the profile, the deployment\n\
     ranking does not — the virtualization conclusion is hardware-robust\n\
     (the gaps widen on the opteron profile's pricier cross-core paths).\n"

(* ---- cache-affinity penalty ---- *)

let abl_cache ~fast =
  ignore fast;
  let params = Tpcc.params 1 in
  let t =
    Util.Tablefmt.create
      ~title:"SF-1 TPC-C, 1 worker, round-robin over 8 executors"
      [ "miss penalty [µs/op]"; "tput [Ktxn/s]"; "vs 1 executor" ]
  in
  List.iter
    (fun miss ->
      let profile = { Reactdb.Profile.default with cost_cache_miss = miss } in
      let run executors =
        let db =
          Harness.build ~profile (Tpcc.decl ~warehouses:1 ())
            (Reactdb.Config.shared_everything ~executors ~affinity:false
               (Tpcc.warehouses 1))
        in
        let seq = ref 0 in
        (Harness.run_load db
           (Bexp.load_spec ~fast:true ~n_workers:1 (fun _ rng ->
                Tpcc.gen_mix rng params ~home:1 ~seq)))
          .Harness.throughput
      in
      let base = run 1 and spread = run 8 in
      Util.Tablefmt.row t
        [ Util.Tablefmt.fcell ~digits:1 miss;
          Util.Tablefmt.fcell ~digits:1 (spread /. 1000.);
          Printf.sprintf "%.0f%%" (100. *. spread /. base) ])
    [ 0.; 0.4; 0.8; 1.6; 3.2 ];
  Util.Tablefmt.print t;
  Printf.printf
    "Expected: with a free cache model, routing would not matter; the\n\
     affinity story of App. F.2 appears as soon as misses cost anything and\n\
     dominates on machines with expensive coherence traffic.\n"

(* ---- cluster deployments: the paper's future-work direction ---- *)

let abl_cluster ~fast =
  ignore fast;
  let groups =
    List.init 7 (fun g -> List.init 8 (fun k -> Smallbank.customer_name ((g * 8) + k)))
  in
  let dests =
    List.init 6 (fun i -> Smallbank.customer_name (((i + 1) mod 7) * 8))
  in
  let t =
    Util.Tablefmt.create
      ~title:"size-6 multi-transfer, 7 containers spread over k machines"
      [ "machines"; "fully-sync [ms]"; "opt [ms]"; "sync/opt" ]
  in
  List.iter
    (fun machines ->
      let cfg =
        Reactdb.Config.on_machines
          (Reactdb.Config.shared_nothing groups)
          (fun container -> container mod machines)
      in
      let measure form =
        let db = Harness.build (Smallbank.decl ~customers:56 ()) cfg in
        Harness.mean_latency
          (Harness.measure_txns db ~n:30 (fun _ ->
               Smallbank.multi_transfer_request form
                 ~src:(Smallbank.customer_name 0) ~dests ~amount:1.))
      in
      let fs = measure Smallbank.Fully_sync in
      let opt = measure Smallbank.Opt in
      Util.Tablefmt.row t
        [ string_of_int machines;
          Util.Tablefmt.fcell (Bexp.ms fs);
          Util.Tablefmt.fcell (Bexp.ms opt);
          Util.Tablefmt.fcell ~digits:2 (fs /. opt) ])
    [ 1; 2; 4; 7 ];
  Util.Tablefmt.print t;
  Printf.printf
    "Expected: spreading containers over machines (no application change —\n\
     §6's cluster direction) adds a network round trip per cross-machine\n\
     message. The ABSOLUTE asynchrony saving grows (opt still hides the\n\
     remote executions and receive paths), but the RELATIVE ratio\n\
     compresses: invocation sends are issued serially by the caller and\n\
     the 2PC fan-out crosses the network too, and those costs hit both\n\
     formulations alike. Distribution shifts the bottleneck from the\n\
     receive path to messaging itself — the quantified version of why the\n\
     paper leaves cluster mapping as future work.\n"

let register () =
  Bexp.register ~id:"abl-mpl" ~paper:"(ablation)"
    ~title:"Multiprogramming level under asynchronous load" abl_mpl;
  Bexp.register ~id:"abl-cr" ~paper:"(ablation)"
    ~title:"Sensitivity to the send/receive asymmetry" abl_cr;
  Bexp.register ~id:"abl-profile" ~paper:"(ablation)"
    ~title:"Deployment ranking across hardware profiles" abl_profile;
  Bexp.register ~id:"abl-cache" ~paper:"(ablation)"
    ~title:"Cache-affinity penalty vs routing" abl_cache;
  Bexp.register ~id:"abl-cluster" ~paper:"(ablation / §6 future work)"
    ~title:"Cluster deployments: containers over machines" abl_cluster
