bench/micro.ml: Analyze Array Bechamel Benchmark Btree Hashtbl Instance Int List Occ Printf Query Sim Staged Storage Test Time Toolkit Util
