bench/exp_ycsb.ml: Array Bexp Costmodel Float Harness List Printf Reactdb String Util Wl Workloads Ycsb
