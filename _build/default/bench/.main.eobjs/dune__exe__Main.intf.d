bench/main.mli:
