bench/bexp.ml: Harness List Printf Reactdb Workloads
