bench/exp_ablation.ml: Bexp Harness List Printf Reactdb Smallbank Tpcc Util Workloads
