bench/exp_tpcc.ml: Array Bexp Costmodel Float Harness Hashtbl List Option Printf Reactdb Tpcc Util Wl Workloads
