bench/exp_exchange.ml: Bexp Exchange Harness List Printf Reactdb Util Workloads
