bench/exp_smallbank.ml: Bexp Costmodel Harness Hashtbl List Printf Reactdb Smallbank Util Wl Workloads
