bench/main.ml: Array Bexp Exp_ablation Exp_exchange Exp_smallbank Exp_tpcc Exp_ycsb List Micro Printf String Sys Unix
