(* Benchmark harness entry point: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md §4 for the experiment index).

   Usage:
     dune exec bench/main.exe                 run everything
     dune exec bench/main.exe -- --fast       shrunken sweeps (smoke run)
     dune exec bench/main.exe -- --only fig5  one experiment (comma-separable)
     dune exec bench/main.exe -- --list       list experiment ids
     dune exec bench/main.exe -- --micro      also run Bechamel micro-benches *)

let () =
  Exp_smallbank.register ();
  Exp_tpcc.register ();
  Exp_ycsb.register ();
  Exp_exchange.register ();
  Exp_ablation.register ()

let () =
  let fast = ref false in
  let only = ref [] in
  let list_only = ref false in
  let micro = ref false in
  let args = Array.to_list Sys.argv in
  let rec parse = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      parse rest
    | "--list" :: rest ->
      list_only := true;
      parse rest
    | "--micro" :: rest ->
      micro := true;
      parse rest
    | "--only" :: ids :: rest ->
      only := !only @ String.split_on_char ',' ids;
      parse rest
    | arg :: _ when arg <> Sys.argv.(0) ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
    | _ :: rest -> parse rest
  in
  parse args;
  let experiments = Bexp.all () in
  if !list_only then begin
    List.iter
      (fun e -> Printf.printf "%-8s %-22s %s\n" e.Bexp.id e.Bexp.paper e.Bexp.title)
      experiments;
    exit 0
  end;
  let selected =
    match !only with
    | [] -> experiments
    | ids ->
      List.iter
        (fun id ->
          if not (List.exists (fun e -> e.Bexp.id = id) experiments) then begin
            Printf.eprintf "unknown experiment id %S (try --list)\n" id;
            exit 2
          end)
        ids;
      List.filter (fun e -> List.mem e.Bexp.id ids) experiments
  in
  Printf.printf
    "ReactDB benchmark harness — %d experiment(s)%s\n"
    (List.length selected)
    (if !fast then " [fast mode]" else "");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun e ->
      let start = Unix.gettimeofday () in
      Bexp.header e;
      e.Bexp.run ~fast:!fast;
      Printf.printf "[%s done in %.1fs]\n%!" e.Bexp.id
        (Unix.gettimeofday () -. start))
    selected;
  if !micro then Micro.run ();
  Printf.printf "\nAll experiments completed in %.1fs.\n"
    (Unix.gettimeofday () -. t0)
