(* TPC-C experiments: Figures 7-10 and 15-18, Table 1, Appendix F.2.

   Deployments follow §3.3: shared-everything-without-affinity (S1),
   shared-everything-with-affinity (S2) and shared-nothing (S3); the -sync
   and -async shared-nothing variants differ only in the new-order program
   (forcing futures immediately vs overlapping), selected via workload
   parameters — no configuration change, as the paper emphasizes. *)

open Workloads

let sizes = Tpcc.default_sizes

(* New-order-only experiments keep the paper's low item-level contention by
   using a larger item/stock table (the paper has 100k items; stock-row
   collisions are what both setups make negligible). *)
let big_item_sizes = { sizes with Tpcc.items = 20_000 }

type deployment = SE_rr | SE_aff | SN

let deployment_name = function
  | SE_rr -> "shared-everything-without-affinity"
  | SE_aff -> "shared-everything-with-affinity"
  | SN -> "shared-nothing-async"

let config_of deployment ~warehouses ~executors =
  let ws = Tpcc.warehouses warehouses in
  match deployment with
  | SE_rr -> Reactdb.Config.shared_everything ~executors ~affinity:false ws
  | SE_aff -> Reactdb.Config.shared_everything ~executors ~affinity:true ws
  | SN -> Reactdb.Config.shared_nothing (List.map (fun w -> [ w ]) ws)

(* One closed-loop load run. Workers have client affinity to warehouses
   (worker w drives warehouse (w mod n)+1, §4.1.3). The [seq] counter is
   shared across workers: it provides unique history ids and the logical
   order-entry clock. *)
let run_load ?(sizes = sizes) ~fast ~deployment ~warehouses ~executors ~workers
    ~params ~new_order_only () =
  let db =
    Harness.build
      (Tpcc.decl ~warehouses ~sizes ())
      (config_of deployment ~warehouses ~executors)
  in
  let seq = ref 0 in
  let gen w rng =
    let home = 1 + (w mod warehouses) in
    if new_order_only then begin
      incr seq;
      Tpcc.gen_new_order rng params ~home ~clock:(float_of_int !seq)
    end
    else Tpcc.gen_mix rng params ~home ~seq
  in
  Harness.run_load db (Bexp.load_spec ~fast ~n_workers:workers gen)

(* ---- Figures 7 & 8: standard mix, scale factor 4, varying load ---- *)

let fig7_8 ~fast =
  let warehouses = 4 in
  let params = Tpcc.params ~sizes warehouses in
  let worker_counts = if fast then [ 1; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let t =
    Util.Tablefmt.create
      [ "workers"; "deployment"; "tput [Ktxn/s]"; "latency [ms]"; "abort %";
        "util range" ]
  in
  List.iter
    (fun workers ->
      List.iter
        (fun d ->
          let r =
            run_load ~fast ~deployment:d ~warehouses ~executors:warehouses
              ~workers ~params ~new_order_only:false ()
          in
          let umin = Array.fold_left Float.min 1. r.Harness.utilizations in
          let umax = Array.fold_left Float.max 0. r.Harness.utilizations in
          Util.Tablefmt.row t
            [ string_of_int workers; deployment_name d; Bexp.fmt_tput r;
              Bexp.fmt_lat r;
              Util.Tablefmt.fcell ~digits:2 (100. *. r.Harness.abort_rate);
              Printf.sprintf "%.0f-%.0f%%" (100. *. umin) (100. *. umax) ])
        [ SE_rr; SN; SE_aff ])
    worker_counts;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (§4.3.1): shared-everything-with-affinity best\n\
     throughput/latency; shared-nothing-async close below; without-affinity\n\
     worst. Abort rates near zero through 4 workers, then rising for the\n\
     non-affine deployments while with-affinity stays resilient.\n"

(* ---- Figures 9 & 10: new-order-delay, scale factor 8 ---- *)

let fig9_10 ~fast =
  let warehouses = 8 in
  let params =
    Tpcc.params ~sizes:big_item_sizes ~remote_mode:(Tpcc.Per_item 1.0)
      ~delay_lo:300. ~delay_hi:400. warehouses
  in
  let worker_counts = if fast then [ 1; 4; 8 ] else [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let t =
    Util.Tablefmt.create
      [ "workers"; "deployment"; "tput [txn/s]"; "latency [ms]"; "abort %" ]
  in
  List.iter
    (fun workers ->
      List.iter
        (fun d ->
          let r =
            run_load ~sizes:big_item_sizes ~fast ~deployment:d ~warehouses
              ~executors:warehouses ~workers ~params ~new_order_only:true ()
          in
          Util.Tablefmt.row t
            [ string_of_int workers; deployment_name d;
              Util.Tablefmt.fcell ~digits:0 r.Harness.throughput;
              Bexp.fmt_lat r;
              Util.Tablefmt.fcell ~digits:2 (100. *. r.Harness.abort_rate) ])
        [ SN; SE_aff ])
    worker_counts;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (§4.3.2): with heavy overlappable per-item work,\n\
     shared-nothing-async roughly doubles shared-everything-with-affinity\n\
     at 1 worker; under increasing load the advantage erodes and\n\
     with-affinity eventually wins.\n"

(* ---- Table 1 (App D): new-order observed vs cost-model prediction ---- *)

(* Calibration runs measure the per-item and base processing costs, like the
   paper's single local+remote item probe. *)
let calibrate_new_order () =
  let warehouses = 4 in
  let probe items =
    let db =
      Harness.build
        (Tpcc.decl ~warehouses ~sizes ())
        (config_of SN ~warehouses ~executors:warehouses)
    in
    let seq = ref 0 in
    let outs =
      Harness.measure_txns db ~n:30 (fun rng ->
          incr seq;
          let d_id = 1 + Util.Rng.int rng sizes.Tpcc.districts in
          Wl.request "w1" "new_order"
            (Wl.vi d_id :: Wl.vi 1 :: Wl.vf 0.
            :: Wl.vf (float_of_int !seq)
            :: Wl.vi (List.length items)
            :: List.concat_map
                 (fun (i, s, q) -> [ Wl.vi i; Wl.vs s; Wl.vi q ])
                 items))
    in
    Harness.mean_breakdown outs
  in
  let one_remote = probe [ (1, "w1", 1); (2, "w2", 1) ] in
  let two_local = probe [ (3, "w1", 1); (4, "w1", 1) ] in
  let cs = one_remote.Harness.avg_cs in
  let cr = one_remote.Harness.avg_cr in
  let p_remote_unit = one_remote.Harness.avg_async_exec in
  (* two_local sync = base + 2*p_item; one_remote sync = base + p_item *)
  let p_item =
    Float.max 0.5
      (two_local.Harness.avg_sync_exec -. one_remote.Harness.avg_sync_exec)
  in
  let p_base = Float.max 0. (one_remote.Harness.avg_sync_exec -. p_item) in
  (cs, cr, p_remote_unit, p_item, p_base)

(* Expected realized structure of a new-order under [params]: average local
   items and remote groups with their sizes, sampled from the generator. *)
let sample_structure params ~warehouses =
  let rng = Util.Rng.create 1234 in
  let trials = 500 in
  let tot_local = ref 0 and groups = ref [] in
  for _ = 1 to trials do
    let req = Tpcc.gen_new_order rng params ~home:1 ~clock:0. in
    let args = Array.of_list req.Wl.args in
    let n = Util.Value.to_int args.(4) in
    let by_w = Hashtbl.create 4 in
    for j = 0 to n - 1 do
      let supply = Util.Value.to_str args.(6 + (3 * j)) in
      if supply = "w1" then incr tot_local
      else
        Hashtbl.replace by_w supply
          (1 + Option.value ~default:0 (Hashtbl.find_opt by_w supply))
    done;
    groups := Hashtbl.fold (fun _ k acc -> k :: acc) by_w [] :: !groups
  done;
  ignore warehouses;
  let avg_local = float_of_int !tot_local /. float_of_int trials in
  let avg_groups =
    float_of_int (List.fold_left (fun a g -> a + List.length g) 0 !groups)
    /. float_of_int trials
  in
  let avg_group_size =
    let total_items =
      List.fold_left (fun a g -> a + List.fold_left ( + ) 0 g) 0 !groups
    in
    let total_groups =
      List.fold_left (fun a g -> a + List.length g) 0 !groups
    in
    if total_groups = 0 then 0.
    else float_of_int total_items /. float_of_int total_groups
  in
  (avg_local, avg_groups, avg_group_size)

let tab1 ~fast =
  let warehouses = 4 in
  let cs, cr, p_remote_unit, p_item, p_base = calibrate_new_order () in
  let t =
    Util.Tablefmt.create
      [ "cross-reactor %"; "workers"; "TPS obs"; "lat obs [ms]";
        "lat pred [ms]"; "lat pred+C+I [ms]" ]
  in
  List.iter
    (fun pct ->
      let params =
        Tpcc.params ~sizes:big_item_sizes
          ~remote_mode:(Tpcc.Per_item (float_of_int pct /. 100.))
          warehouses
      in
      let avg_local, avg_groups, avg_group_size =
        sample_structure params ~warehouses
      in
      (* Figure 3 shape: home processing then a fan-out of remote stock
         groups. *)
      let st =
        Costmodel.node ~at:0
          ~p_seq:(p_base +. (avg_local *. p_item))
          ~async:
            (List.init
               (int_of_float (Float.round avg_groups))
               (fun i ->
                 Costmodel.leaf ~at:(i + 1) (avg_group_size *. p_remote_unit)))
          ()
      in
      let costs = Costmodel.uniform_costs ~cs ~cr in
      let pred = Costmodel.latency costs st in
      List.iter
        (fun workers ->
          let r =
            run_load ~sizes:big_item_sizes ~fast ~deployment:SN ~warehouses
              ~executors:warehouses ~workers ~params ~new_order_only:true ()
          in
          (* Pred+C+I: the Figure 3 prediction plus the measured commit and
             input-generation costs, exactly as Appendix D does. *)
          let overhead = r.Harness.breakdown.Harness.avg_overhead in
          Util.Tablefmt.row t
            [ string_of_int pct; string_of_int workers;
              Util.Tablefmt.fcell ~digits:0 r.Harness.throughput;
              Util.Tablefmt.fcell (Bexp.ms r.Harness.avg_latency);
              (if workers = 1 then Util.Tablefmt.fcell (Bexp.ms pred) else "-");
              (if workers = 1 then Util.Tablefmt.fcell (Bexp.ms (pred +. overhead))
               else "-") ])
        [ 1; 4 ])
    [ 1; 100 ];
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (App. D): pred+C+I close to 1-worker observations for\n\
     both 1%% and 100%% cross-reactor accesses; 4-worker latency at 100%%\n\
     rises beyond the prediction (queueing, outside the model's scope).\n"

(* ---- Figures 15 & 16: % cross-reactor new-orders at peak load ---- *)

let fig15_16 ~fast =
  let warehouses = 8 in
  let pcts = if fast then [ 0; 10; 100 ] else [ 0; 10; 20; 30; 40; 50; 100 ] in
  let t =
    Util.Tablefmt.create
      [ "% cross-reactor"; "deployment"; "tput [Ktxn/s]"; "latency [ms]";
        "abort %" ]
  in
  List.iter
    (fun pct ->
      let mk_params sync =
        Tpcc.params ~sizes:big_item_sizes
          ~remote_mode:(Tpcc.One_item (float_of_int pct /. 100.))
          ~sync_new_order:sync warehouses
      in
      let cases =
        [ ("shared-everything-without-affinity", SE_rr, mk_params false);
          ("shared-nothing-async", SN, mk_params false);
          ("shared-everything-with-affinity", SE_aff, mk_params false);
          ("shared-nothing-sync", SN, mk_params true) ]
      in
      List.iter
        (fun (name, d, params) ->
          let r =
            run_load ~sizes:big_item_sizes ~fast ~deployment:d ~warehouses
              ~executors:warehouses ~workers:8 ~params ~new_order_only:true ()
          in
          Util.Tablefmt.row t
            [ string_of_int pct; name; Bexp.fmt_tput r; Bexp.fmt_lat r;
              Util.Tablefmt.fcell ~digits:2 (100. *. r.Harness.abort_rate) ])
        cases)
    pcts;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (App. E): sharp drop for both shared-nothing variants\n\
     from 0%% to 10%%; shared-nothing-async degrades more gracefully than\n\
     -sync toward 100%% (about 2x better latency there); with-affinity\n\
     stays nearly flat and wins at peak load.\n"

(* ---- Figures 17 & 18: transactional scale-up ---- *)

let fig17_18 ~fast =
  let sfs = if fast then [ 1; 4 ] else [ 1; 2; 4; 8; 16 ] in
  let t =
    Util.Tablefmt.create
      [ "scale factor"; "deployment"; "tput [Ktxn/s]"; "latency [ms]";
        "tput/core [Ktxn/s]" ]
  in
  List.iter
    (fun sf ->
      let params = Tpcc.params ~sizes sf in
      List.iter
        (fun d ->
          let r =
            run_load ~fast ~deployment:d ~warehouses:sf ~executors:sf
              ~workers:sf ~params ~new_order_only:false ()
          in
          Util.Tablefmt.row t
            [ string_of_int sf; deployment_name d; Bexp.fmt_tput r;
              Bexp.fmt_lat r;
              Util.Tablefmt.fcell ~digits:1
                (r.Harness.throughput /. 1000. /. float_of_int sf) ])
        [ SE_rr; SN; SE_aff ])
    sfs;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (App. F.1): with-affinity and shared-nothing-async\n\
     scale almost linearly (per-core throughput near-flat, ~87%% of SF1 at\n\
     SF16 for with-affinity); without-affinity scales worst.\n"

(* ---- Appendix F.2: effect of affinity ---- *)

let fA2 ~fast =
  let execs = if fast then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16 ] in
  let params = Tpcc.params ~sizes 1 in
  let base = ref 0. in
  let t =
    Util.Tablefmt.create
      [ "executors"; "tput [Ktxn/s]"; "relative to 1 executor" ]
  in
  List.iter
    (fun executors ->
      let r =
        run_load ~fast ~deployment:SE_rr ~warehouses:1 ~executors ~workers:1
          ~params ~new_order_only:false ()
      in
      if executors = 1 then base := r.Harness.throughput;
      Util.Tablefmt.row t
        [ string_of_int executors; Bexp.fmt_tput r;
          Printf.sprintf "%.0f%%" (100. *. r.Harness.throughput /. !base) ])
    execs;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape (App. F.2): round-robin routing over more executors\n\
     destroys locality — throughput drops toward ~40%% at 16 executors.\n"

let register () =
  Bexp.register ~id:"fig7" ~paper:"Figures 7-8"
    ~title:"TPC-C throughput/latency vs load, scale factor 4" fig7_8;
  Bexp.register ~id:"fig9" ~paper:"Figures 9-10"
    ~title:"new-order-delay throughput/latency vs load" fig9_10;
  Bexp.register ~id:"tab1" ~paper:"Table 1 (App D)"
    ~title:"TPC-C new-order: observed vs cost-model prediction" tab1;
  Bexp.register ~id:"fig15" ~paper:"Figures 15-16 (App E)"
    ~title:"Cross-reactor new-order % sweep at peak load" fig15_16;
  Bexp.register ~id:"fig17" ~paper:"Figures 17-18 (App F.1)"
    ~title:"TPC-C transactional scale-up" fig17_18;
  Bexp.register ~id:"tabF2" ~paper:"Appendix F.2"
    ~title:"Effect of affinity (round-robin over k executors)" fA2
