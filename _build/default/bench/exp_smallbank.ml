(* Smallbank multi-transfer experiments: Figures 5, 6, 11, 12 and the
   containerization-overhead measurement of Appendix F.3.

   Deployment mirrors §4.1.3: seven database containers, one transaction
   executor each, each holding a contiguous range of customer reactors; a
   separate (unmodeled) worker core generates inputs. The source customer
   always lives in the first container. *)

open Workloads

let n_groups = 7
let group_size = 8

let cust g k = Smallbank.customer_name ((g * group_size) + k)

let groups =
  List.init n_groups (fun g -> List.init group_size (fun k -> cust g k))

let config () = Reactdb.Config.shared_nothing groups

let decl () = Smallbank.decl ~customers:(n_groups * group_size) ()

let fresh_db () = Harness.build (decl ()) (config ())

(* Destinations for a transaction of [n] transfers, each on a different
   container (cycling back to the source container at size 7). *)
let dests_spread n =
  List.init n (fun i -> cust ((i + 1) mod n_groups) (1 + (i / n_groups)))

(* All destinations co-located with the source (Appendix B.1's -local). *)
let dests_local n = List.init n (fun i -> cust 0 (1 + i))

let measure_formulation ?(n = 40) form dests =
  let db = fresh_db () in
  let outs =
    Harness.measure_txns db ~n (fun _rng ->
        Smallbank.multi_transfer_request form ~src:(cust 0 0) ~dests ~amount:1.)
  in
  (Harness.mean_latency outs, Harness.mean_breakdown outs)

(* ---- Figure 5: latency vs size × formulation ---- *)

let fig5 ~fast =
  let sizes = if fast then [ 1; 4; 7 ] else [ 1; 2; 3; 4; 5; 6; 7 ] in
  let forms =
    [ Smallbank.Fully_sync; Smallbank.Partially_async; Smallbank.Fully_async;
      Smallbank.Opt ]
  in
  let t =
    Util.Tablefmt.create
      ("txn size" :: List.map Smallbank.formulation_name forms)
  in
  List.iter
    (fun size ->
      let row =
        List.map
          (fun form ->
            let lat, _ = measure_formulation form (dests_spread size) in
            Util.Tablefmt.fcell (Bexp.ms lat))
          forms
      in
      Util.Tablefmt.row t (string_of_int size :: row))
    sizes;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape: latency grows with size; fully-sync > partially-async\n\
     > fully-async > opt (µsec-scale program-formulation control, §4.2.1).\n"

(* ---- Figure 6: breakdown into cost-model components, obs vs pred ---- *)

let fig6 ~fast =
  ignore fast;
  (* Calibrate from fully-sync at size 1, as in §4.2.2. *)
  let _, bd1 = measure_formulation Smallbank.Fully_sync (dests_spread 1) in
  let cs = bd1.Harness.avg_cs in
  let cr = bd1.Harness.avg_cr in
  let p_total = bd1.Harness.avg_sync_exec in
  let p_credit = p_total /. 2. in
  let costs =
    Costmodel.uniform_costs ~cs ~cr
  in
  let predict form size =
    match form with
    | `Fully_sync ->
      Costmodel.node ~at:0
        ~p_seq:(float_of_int size *. (p_total -. p_credit))
        ~sync_seq:(List.init size (fun i -> Costmodel.leaf ~at:(i + 1) p_credit))
        ()
    | `Opt ->
      Costmodel.node ~at:0 ~p_ovp:p_credit
        ~async:(List.init size (fun i -> Costmodel.leaf ~at:(i + 1) p_credit))
        ()
  in
  let t =
    Util.Tablefmt.create ~title:"observed vs predicted cost components [µs]"
      [ "variant"; "size"; "sync-exec"; "Cs"; "Cr"; "async-exec";
        "commit+input-gen"; "total-obs"; "total-pred" ]
  in
  List.iter
    (fun (name, form, pform) ->
      List.iter
        (fun size ->
          let lat, bd =
            measure_formulation form
              (dests_spread size)
          in
          let d = Costmodel.decompose costs (predict pform size) in
          let fc = Util.Tablefmt.fcell ~digits:1 in
          Util.Tablefmt.row t
            [ name; string_of_int size; fc bd.Harness.avg_sync_exec; fc bd.Harness.avg_cs;
              fc bd.Harness.avg_cr; fc bd.Harness.avg_async_exec;
              fc bd.Harness.avg_overhead; fc lat;
              fc (Costmodel.latency costs (predict pform size)) ];
          Util.Tablefmt.row t
            [ name ^ "-pred"; string_of_int size; fc d.Costmodel.d_sync_exec;
              fc d.Costmodel.d_cs; fc d.Costmodel.d_cr; fc d.Costmodel.d_async;
              "-"; "-"; "-" ])
        [ 1; 4; 7 ])
    [ ("fully-sync", Smallbank.Fully_sync, `Fully_sync);
      ("opt", Smallbank.Opt, `Opt) ];
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape: predicted components closely track observed ones;\n\
     the bulk of pred-vs-obs total difference is the commit+input-gen\n\
     bucket, which the Figure 3 equation excludes (§4.2.2).\n"

(* ---- Figure 11: local vs remote destinations ---- *)

let fig11 ~fast =
  let sizes = if fast then [ 1; 4; 7 ] else [ 1; 2; 3; 4; 5; 6; 7 ] in
  let variants =
    [ ("fully-sync-remote", Smallbank.Fully_sync, dests_spread);
      ("fully-sync-local", Smallbank.Fully_sync, dests_local);
      ("opt-remote", Smallbank.Opt, dests_spread);
      ("opt-local", Smallbank.Opt, dests_local) ]
  in
  let t =
    Util.Tablefmt.create
      ("txn size" :: List.map (fun (n, _, _) -> n) variants)
  in
  List.iter
    (fun size ->
      let row =
        List.map
          (fun (_, form, dests) ->
            let lat, _ = measure_formulation form (dests size) in
            Util.Tablefmt.fcell (Bexp.ms lat))
          variants
      in
      Util.Tablefmt.row t (string_of_int size :: row))
    sizes;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape: fully-sync-remote rises sharply vs fully-sync-local;\n\
     opt-remote only slightly above opt-local (App. B.1).\n"

(* ---- Figure 12: fixed size 7, varying executors spanned ---- *)

let fig12 ~fast =
  ignore fast;
  let size = 7 in
  (* dest selection per spanned executor count k *)
  let round_robin_remote k =
    (* 7-k+1 local calls, k-1 remote round-robin over containers 1..k-1 *)
    let local = List.init (size - k + 1) (fun i -> cust 0 (1 + i)) in
    let remote = List.init (k - 1) (fun i -> cust (1 + i) 1) in
    local @ remote
  in
  let round_robin_all k =
    List.init size (fun i -> cust (i mod k) (1 + (i / k)))
  in
  let random_dests rng k =
    ignore k;
    (* uniform containers, distinct reactors *)
    let seen = Hashtbl.create 8 in
    List.init size (fun i ->
        ignore i;
        let rec pick () =
          let g = Util.Rng.int rng n_groups in
          let k' = Util.Rng.int rng group_size in
          let c = cust g (if g = 0 then 1 + (k' mod (group_size - 1)) else k') in
          if Hashtbl.mem seen c then pick ()
          else begin
            Hashtbl.add seen c ();
            c
          end
        in
        pick ())
  in
  let measure dests_of =
    let db = fresh_db () in
    let outs =
      Harness.measure_txns db ~n:40 (fun rng ->
          Smallbank.multi_transfer_request Smallbank.Fully_sync ~src:(cust 0 0)
            ~dests:(dests_of rng) ~amount:1.)
    in
    Harness.mean_latency outs
  in
  let t =
    Util.Tablefmt.create
      [ "executors spanned"; "round-robin remote"; "round-robin all"; "random" ]
  in
  for k = 1 to 7 do
    Util.Tablefmt.row t
      [ string_of_int k;
        Util.Tablefmt.fcell (Bexp.ms (measure (fun _ -> round_robin_remote k)));
        Util.Tablefmt.fcell (Bexp.ms (measure (fun _ -> round_robin_all k)));
        Util.Tablefmt.fcell (Bexp.ms (measure (fun rng -> random_dests rng k))) ]
  done;
  Util.Tablefmt.print t;
  Printf.printf
    "Expected shape: round-robin remote grows smoothly with one extra\n\
     remote call per step; round-robin all steps with its remote/local\n\
     mix; random sits near 6-7 remote calls throughout (App. B.2).\n"

(* ---- Appendix F.3: containerization overhead ---- *)

let f3 ~fast =
  ignore fast;
  let db = fresh_db () in
  let outs =
    Harness.measure_txns db ~n:200 (fun _ -> Wl.request (cust 0 0) "noop" [])
  in
  let lat = Harness.mean_latency outs in
  Printf.printf
    "Empty-transaction invocation overhead: %.1f µs per transaction\n\
     (paper: ~22 µs, dominated by worker-to-executor thread switching).\n"
    lat

let register () =
  Bexp.register ~id:"fig5" ~paper:"Figure 5"
    ~title:"Latency vs size and user program formulations" fig5;
  Bexp.register ~id:"fig6" ~paper:"Figure 6"
    ~title:"Latency breakdown into cost model components" fig6;
  Bexp.register ~id:"fig11" ~paper:"Figure 11 (App B.1)"
    ~title:"Latency vs size and target reactors spanned" fig11;
  Bexp.register ~id:"fig12" ~paper:"Figure 12 (App B.2)"
    ~title:"Latency vs distribution of target reactors, fixed size" fig12;
  Bexp.register ~id:"tabF3" ~paper:"Appendix F.3"
    ~title:"Containerization overhead (empty transactions)" f3
