(** SQL as a stored procedure.

    [sql_proc] is a generic reactor procedure executing one SQL statement
    against the reactor's own relations: arguments are the statement string
    followed by its positional parameters. The whole statement runs inside
    the calling (sub-)transaction, with full OCC semantics.

    Results are encoded into a single value: DML returns the affected-row
    count as [Int]; a single-cell SELECT returns that cell; any other
    SELECT returns the rendered result table as [Str] (this is what the
    interactive shell displays).

    [with_sql rt] derives a reactor type with the ["sql"] procedure added —
    handy for ad-hoc inspection of any reactor database — plus a ["sql_ro"]
    twin declared read-only: it executes against a frozen snapshot epoch
    (abort-free for queries; DML through it aborts). *)

val sql_proc : Reactor.proc

val with_sql : Reactor.rtype -> Reactor.rtype
