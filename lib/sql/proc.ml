let sql_proc (ctx : Reactor.ctx) args =
  match args with
  | [] -> Reactor.abort "sql: missing statement"
  | stmt :: params -> (
    let stmt = Util.Value.to_str stmt in
    match Run.exec ctx.Reactor.db ~params stmt with
    | Run.Affected n -> Util.Value.Int n
    | Run.Rows { rows = [ [| v |] ]; _ } -> v
    | result -> Util.Value.Str (Fmt.str "%a" Run.pp_result result))

let with_sql rt =
  let rt =
    if List.mem_assoc "sql" rt.Reactor.rt_procs then rt
    else { rt with Reactor.rt_procs = ("sql", sql_proc) :: rt.Reactor.rt_procs }
  in
  if List.mem_assoc "sql_ro" rt.Reactor.rt_procs then rt
  else
    { rt with
      Reactor.rt_procs = ("sql_ro", sql_proc) :: rt.Reactor.rt_procs;
      Reactor.rt_readonly = "sql_ro" :: rt.Reactor.rt_readonly }
