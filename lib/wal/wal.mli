(** Redo logging and recovery.

    The paper's prototype has no durability (§3.1) and points to
    log-based recovery as the natural mechanism; this module provides it as
    an extension. ReactDB appends one redo record per committed transaction
    — its Silo TID and physical after-images of every write, qualified by
    reactor and table. Because TIDs totally order conflicting commits
    (Silo's invariant), replaying records in TID order onto a
    freshly-loaded database reconstructs exactly the committed state.

    The log can live purely in memory (tests, simulations) or stream to a
    file. File records are framed (format v2) with a per-record length and
    CRC-32 so that a crash mid-append leaves a detectable torn tail rather
    than a silently corrupt log; the legacy unframed v1 format is still
    readable. *)

(** One write in a committed transaction, or a logged placement change. *)
type write =
  | Put of { reactor : string; table : string; row : Util.Value.t array }
      (** insert-or-replace of a full row *)
  | Del of { reactor : string; table : string; key : Util.Value.t array }
  | Migrate of { reactor : string; dst : int }
      (** live-reconfiguration record: [reactor] now lives on container
          [dst]. Logged by the engines when an online migration commits, so
          recovery replays placement deterministically (DESIGN.md §11);
          carries no data. *)

type entry = { le_txn : int; le_tid : int; le_writes : write list }

type t

(** Raised by {!append} and {!flush} when the log device fails
    ([Sys_error] underneath: disk full, revoked descriptor, …). The
    engines catch it on the commit path and surface a typed [Internal]
    abort rather than letting a raw exception escape. *)
exception Io_error of string

(** In-memory log. *)
val in_memory : unit -> t

(** File-backed log (appends; the file is created if missing). Reopening an
    existing log counts its valid entries, so {!length} reports the whole
    log, and truncates any torn tail left by a crash so that appended
    records stay reachable. Call {!flush} to force buffered records to disk
    and {!close} when done. *)
val to_file : string -> t

val append : t -> entry -> unit

(** [append_many t es] appends a batch in order; a file-backed log encodes
    the whole batch into one buffer and issues a single channel write (the
    group-commit coalescing half — pair with one {!flush} for the epoch's
    durability boundary). Equivalent to [List.iter (append t) es]. *)
val append_many : t -> entry list -> unit

(** Number of entries in the log (existing entries of a reopened file plus
    entries appended since). *)
val length : t -> int

(** Entries in append order (in-memory logs only; raises
    [Invalid_argument] on file-backed logs — use {!read_file}). *)
val entries : t -> entry list

(** Flush buffered records of a file-backed log to the file (the durable
    half of a group commit); no-op for in-memory logs (still counted in
    {!n_flushes}). *)
val flush : t -> unit

(** {1 Flush-time attribution}

    Real (wall-clock) cost of durability, for observability reports: how
    much device time the group-commit flushes actually took, as opposed to
    the {e flush-wait} phase a transaction's lifecycle trace records (time
    spent blocked waiting for a covering flush, which amortizes one flush
    over every transaction in the epoch). *)

(** Flushes performed since the log was opened. *)
val n_flushes : t -> int

(** Cumulative wall-clock µs spent inside {!flush} (0 for in-memory
    logs, whose flushes are free). *)
val flush_time_us : t -> float

val close : t -> unit

(** Result of scanning a log file: [Clean] if every record parsed, or
    [Torn] at the first partial/corrupt record — [valid] records precede
    it. *)
type tail = Clean | Torn of { valid : int; reason : string }

(** [read_file_tolerant path] parses a log file written by {!to_file},
    stopping cleanly at the first torn or corrupt record (crash recovery
    never raises on a damaged tail). Reads both v2-framed and legacy v1
    records. *)
val read_file_tolerant : string -> entry list * tail

(** Like {!read_file_tolerant} but raises [Failure] if the log has a torn
    or corrupt tail — for contexts where damage is unexpected. *)
val read_file : string -> entry list

(** [replay entries ~catalog_of] applies entries in TID order: [Put]s
    insert-or-replace rows (maintaining secondary indexes), [Del]s unlink
    keys. [catalog_of] resolves each reactor's catalog (e.g.
    [Reactdb.Database.catalog_of]). [Migrate] records invoke [on_move]
    (default: ignore) in TID order — the last call per reactor is its
    recovered placement — and touch no catalog. Returns the number of data
    writes applied (placement records excluded). *)
val replay :
  ?on_move:(reactor:string -> dst:int -> unit) ->
  entry list ->
  catalog_of:(string -> Storage.Catalog.t) ->
  int

(** {1 Encoding (exposed for tests)} *)

(** v1 payload text (no framing, no newline). *)
val encode_entry : entry -> string

val decode_entry : string -> entry

(** v2 framed record line (no newline): ["2|crc32|length|payload"]. *)
val encode_framed : entry -> string

(** Parse one framed record line; [Error reason] for anything torn,
    corrupt, or not v2-framed. *)
val decode_framed : string -> (entry, string) result
