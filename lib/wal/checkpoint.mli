(** Checkpoints: bounded-log recovery.

    A checkpoint is a consistent physical dump of every covered reactor's
    relations plus the position in the redo log it covers. Recovery then
    needs only the log suffix: restore the checkpoint into a freshly
    declared database and replay WAL entries from position [ck_covers]
    onward. Coverage is positional, not TID-based: Silo-style TIDs are not
    globally monotonic across reactors, so a TID watermark could skip a
    post-checkpoint commit that happened to draw a low TID.

    Checkpoints must be taken from quiescent state (between [Engine.run]s,
    or before workers start) — the distributed-snapshot machinery the paper
    cites ([24]) for online checkpoints is out of scope. *)

type t = {
  ck_tid : int;  (** highest TID whose effects are included *)
  ck_covers : int;
      (** number of log entries (positional prefix, append order = commit
          order) whose effects the snapshot already contains; recovery
          replays entries at positions >= [ck_covers]. [0] means unknown
          coverage (legacy files): the whole log replays over the restored
          state, which is sound but slower *)
  ck_reactors : string list;
      (** every reactor the checkpoint covers — including reactors whose
          tables were all empty at capture time, which contribute no rows
          but must still be cleared on restore *)
  ck_rows : (string * string * Util.Value.t array) list;
      (** (reactor, table, row) *)
}

(** [capture ~tid ?covers catalogs] snapshots [(reactor, catalog)] pairs.
    [covers] (default [0]) is the number of entries in the redo log at
    capture time — pass it so recovery can cut the log positionally. *)
val capture : tid:int -> ?covers:int -> (string * Storage.Catalog.t) list -> t

(** [restore ck ~catalog_of] clears every table (primary and secondary
    indexes) of every covered reactor in the target database and installs
    the snapshot rows. Returns the number of rows installed. *)
val restore : t -> catalog_of:(string -> Storage.Catalog.t) -> int

(** File round-trip. The writer is atomic (tmp + rename) and the v2 format
    carries per-row checksums plus a completeness trailer whose CRC also
    covers the header, so a torn or corrupt checkpoint is detected on read
    rather than restored partially (or restored with a corrupted coverage
    position). Legacy v1 files (no trailer) remain readable. *)

val write_file : string -> t -> unit

(** [Error reason] on a torn, truncated or corrupt file — crash recovery
    uses this to fall back to log-only replay. *)
val read_file_opt : string -> (t, string) result

(** Like {!read_file_opt} but raises [Failure]. *)
val read_file : string -> t

(** [recover ~checkpoint ~log ~catalog_of] = restore + replay of the log
    entries at positions >= [ck_covers]; returns (rows restored, writes
    replayed). *)
val recover :
  checkpoint:t ->
  log:Wal.entry list ->
  catalog_of:(string -> Storage.Catalog.t) ->
  int * int
