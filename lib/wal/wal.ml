open Util

type write =
  | Put of { reactor : string; table : string; row : Value.t array }
  | Del of { reactor : string; table : string; key : Value.t array }
  | Migrate of { reactor : string; dst : int }

type entry = { le_txn : int; le_tid : int; le_writes : write list }

type file_sink = { oc : out_channel; path : string }

type sink = Memory of entry list ref | File of file_sink

type t = {
  sink : sink;
  mutable count : int;
  mutable n_flushes : int;
  mutable flush_time_us : float;
}

let in_memory () =
  { sink = Memory (ref []); count = 0; n_flushes = 0; flush_time_us = 0. }

(* --- encoding: one entry per line ---

   v1 (legacy, still readable):
     txn<TAB>tid<TAB>write;write;...

   v2 (written by this version): the v1 text becomes the payload of a framed
   record carrying its own length and CRC-32, so a torn or corrupted tail is
   detectable instead of silently mis-parsing:
     2|crc32hex|payload-length|payload

   write  := P|D , reactor , table , value,value,...
   value  := N | B:0/1 | I:n | F:hex-float | S:hexbytes
   Strings are hex-encoded so no separator can collide; the payload never
   contains a newline, so records remain line-delimited. *)

let hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex s =
  if String.length s mod 2 <> 0 then failwith "Wal: odd hex length";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let encode_value = function
  | Value.Null -> "N"
  | Value.Bool b -> if b then "B:1" else "B:0"
  | Value.Int i -> "I:" ^ string_of_int i
  | Value.Float f -> Printf.sprintf "F:%h" f
  | Value.Str s -> "S:" ^ hex s

let decode_value s =
  if s = "N" then Value.Null
  else
    match String.index_opt s ':' with
    | None -> failwith ("Wal: bad value " ^ s)
    | Some i -> (
      let tag = String.sub s 0 i in
      let payload = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "B" -> Value.Bool (payload = "1")
      | "I" -> Value.Int (int_of_string payload)
      | "F" -> Value.Float (float_of_string payload)
      | "S" -> Value.Str (unhex payload)
      | _ -> failwith ("Wal: bad value tag " ^ tag))

let encode_write w =
  let kind, reactor, table, vals =
    match w with
    | Put { reactor; table; row } -> ("P", reactor, table, row)
    | Del { reactor; table; key } -> ("D", reactor, table, key)
    (* Placement records reuse the write frame with an empty table and the
       destination container as the single value — the v1/v2 line format
       stays uniform and old readers fail loudly on the unknown kind. *)
    | Migrate { reactor; dst } -> ("M", reactor, "", [| Value.Int dst |])
  in
  String.concat ","
    (kind :: hex reactor :: hex table
    :: Array.to_list (Array.map encode_value vals))

let decode_write s =
  match String.split_on_char ',' s with
  | kind :: reactor :: table :: vals ->
    let reactor = unhex reactor and table = unhex table in
    let vals = Array.of_list (List.map decode_value vals) in
    (match kind with
    | "P" -> Put { reactor; table; row = vals }
    | "D" -> Del { reactor; table; key = vals }
    | "M" -> (
      match vals with
      | [| Value.Int dst |] -> Migrate { reactor; dst }
      | _ -> failwith "Wal: bad migrate record")
    | _ -> failwith ("Wal: bad write kind " ^ kind))
  | _ -> failwith ("Wal: bad write " ^ s)

let encode_entry e =
  Printf.sprintf "%d\t%d\t%s" e.le_txn e.le_tid
    (String.concat ";" (List.map encode_write e.le_writes))

let decode_entry line =
  match String.split_on_char '\t' line with
  | [ txn; tid; writes ] ->
    let ws =
      if writes = "" then []
      else List.map decode_write (String.split_on_char ';' writes)
    in
    { le_txn = int_of_string txn; le_tid = int_of_string tid; le_writes = ws }
  | _ -> failwith ("Wal: bad entry line " ^ line)

(* --- v2 framing --- *)

let encode_framed e =
  let payload = encode_entry e in
  Printf.sprintf "2|%s|%d|%s" (Checksum.crc32_hex payload)
    (String.length payload) payload

let is_framed line =
  String.length line >= 2 && line.[0] = '2' && line.[1] = '|'

let decode_framed line =
  if not (is_framed line) then Error "not a v2 record"
  else
    match String.index_from_opt line 2 '|' with
    | None -> Error "torn record header"
    | Some i2 -> (
      match String.index_from_opt line (i2 + 1) '|' with
      | None -> Error "torn record header"
      | Some i3 -> (
        let crc = String.sub line 2 (i2 - 2) in
        match int_of_string_opt (String.sub line (i2 + 1) (i3 - i2 - 1)) with
        | None -> Error "bad record length field"
        | Some len ->
          if String.length line - i3 - 1 <> len then
            Error "record length mismatch (torn record)"
          else
            let payload = String.sub line (i3 + 1) len in
            if Checksum.crc32_hex payload <> crc then
              Error "record checksum mismatch"
            else (
              try Ok (decode_entry payload) with Failure m -> Error m)))

(* --- reading --- *)

type tail = Clean | Torn of { valid : int; reason : string }

(* Byte-exact tolerant scan: the file is read whole so a final record with
   no terminating newline (a crash mid-append) is distinguishable from a
   clean end of log. Stops at the first record that fails framing, length,
   checksum or payload decoding; everything before it is returned. *)
let read_file_tolerant path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let total = String.length content in
  let out = ref [] and valid = ref 0 and torn = ref None in
  let pos = ref 0 in
  (try
     while !pos < total do
       match String.index_from_opt content !pos '\n' with
       | None ->
         torn := Some "partial record at end of log (no terminator)";
         raise Exit
       | Some nl ->
         let line = String.sub content !pos (nl - !pos) in
         pos := nl + 1;
         if line <> "" then begin
           let parsed =
             if is_framed line then decode_framed line
             else try Ok (decode_entry line) with Failure m -> Error m
           in
           match parsed with
           | Ok e ->
             out := e :: !out;
             incr valid
           | Error reason ->
             torn := Some reason;
             raise Exit
         end
     done
   with Exit -> ());
  ( List.rev !out,
    match !torn with
    | None -> Clean
    | Some reason -> Torn { valid = !valid; reason } )

let read_file path =
  match read_file_tolerant path with
  | entries, Clean -> entries
  | _, Torn { valid; reason } ->
    failwith
      (Printf.sprintf "Wal.read_file: %s (after %d valid entries)" reason valid)

(* --- sinks --- *)

let to_file path =
  let existing =
    if Sys.file_exists path then begin
      match read_file_tolerant path with
      | entries, Clean -> List.length entries
      | entries, Torn _ ->
        (* Crash-recovery reopen: truncate the torn tail (re-encoding the
           valid prefix as v2) so appended records stay reachable. *)
        let oc = open_out_gen [ Open_wronly; Open_trunc ] 0o644 path in
        List.iter
          (fun e ->
            output_string oc (encode_framed e);
            output_char oc '\n')
          entries;
        close_out oc;
        List.length entries
    end
    else 0
  in
  {
    sink = File { oc = open_out_gen [ Open_append; Open_creat ] 0o644 path; path };
    count = existing;
    n_flushes = 0;
    flush_time_us = 0.;
  }

exception Io_error of string

(* Channel writes fail with [Sys_error] (disk full, revoked fd, …); wrap
   them so the commit path can turn log-device failure into a typed
   Internal abort instead of an arbitrary escaping exception. *)
let wrap_io path f =
  try f ()
  with Sys_error m -> raise (Io_error (Printf.sprintf "wal %s: %s" path m))

let append t e =
  (match t.sink with
  | Memory r -> r := e :: !r
  | File { oc; path } ->
    wrap_io path (fun () ->
        output_string oc (encode_framed e);
        output_char oc '\n'));
  t.count <- t.count + 1

(* Group-commit append: the whole batch is encoded into one buffer and
   written with a single channel call, so an epoch's worth of records costs
   one I/O submission before the covering [flush]. *)
let append_many t es =
  (match t.sink with
  | Memory r -> List.iter (fun e -> r := e :: !r) es
  | File { oc; path } ->
    let b = Buffer.create 1024 in
    List.iter
      (fun e ->
        Buffer.add_string b (encode_framed e);
        Buffer.add_char b '\n')
      es;
    wrap_io path (fun () -> Buffer.output_buffer oc b));
  t.count <- t.count + List.length es

let length t = t.count

let entries t =
  match t.sink with
  | Memory r -> List.rev !r
  | File _ -> invalid_arg "Wal.entries: file-backed log (use read_file)"

let flush t =
  match t.sink with
  | Memory _ ->
    (* Free, but still a group-commit boundary: count it so flush-wait
       attribution divides by the same flush count in both sink modes. *)
    t.n_flushes <- t.n_flushes + 1
  | File { oc; path } ->
    let t0 = Unix.gettimeofday () in
    wrap_io path (fun () -> flush oc);
    t.n_flushes <- t.n_flushes + 1;
    t.flush_time_us <- t.flush_time_us +. ((Unix.gettimeofday () -. t0) *. 1e6)

let n_flushes t = t.n_flushes
let flush_time_us t = t.flush_time_us

let close t = match t.sink with Memory _ -> () | File { oc; _ } -> close_out oc

let replay ?(on_move = fun ~reactor:_ ~dst:_ -> ()) entries ~catalog_of =
  let ordered =
    List.sort (fun a b -> Int.compare a.le_tid b.le_tid) entries
  in
  let applied = ref 0 in
  List.iter
    (fun e ->
      List.iter
        (fun w ->
          match w with
          | Migrate { reactor; dst } ->
            (* Placement change, not a data write: surface it to the caller
               (which rebuilds the routing table) and leave the catalogs
               alone. Not counted in [applied]. *)
            on_move ~reactor ~dst
          | Put { reactor; table; row } ->
            incr applied;
            let tbl = Storage.Catalog.table (catalog_of reactor) table in
            let key = Storage.Table.key_of_tuple tbl row in
            (match Storage.Table.find tbl key with
            | Some record ->
              (* update_data relocates secondary-index entries whose columns
                 changed — bare [record.data <- row] would leave the old
                 secondary keys pointing at the new tuple. *)
              Storage.Table.update_data tbl record row;
              record.Storage.Record.tid <- e.le_tid;
              record.Storage.Record.absent <- false
            | None ->
              let record = Storage.Record.fresh ~absent:false row in
              record.Storage.Record.tid <- e.le_tid;
              ignore (Storage.Table.insert tbl record))
          | Del { reactor; table; key } ->
            incr applied;
            let tbl = Storage.Catalog.table (catalog_of reactor) table in
            ignore (Storage.Table.remove tbl key))
        e.le_writes)
    ordered;
  !applied
