type t = {
  ck_tid : int;
  ck_covers : int;
  ck_reactors : string list;
  ck_rows : (string * string * Util.Value.t array) list;
}

let capture ~tid ?(covers = 0) catalogs =
  let rows = ref [] in
  List.iter
    (fun (rname, catalog) ->
      List.iter
        (fun (tname, tbl) ->
          Storage.Table.range tbl ~f:(fun r ->
              if not r.Storage.Record.absent then
                rows := (rname, tname, Array.copy r.Storage.Record.data) :: !rows;
              true))
        (Storage.Catalog.tables catalog))
    catalogs;
  { ck_tid = tid; ck_covers = covers; ck_reactors = List.map fst catalogs;
    ck_rows = List.rev !rows }

let restore ck ~catalog_of =
  (* Clear all tables of every covered reactor, then insert. Clearing first
     makes restore idempotent and removes loader data. The covered set is
     the explicit reactor list — a reactor whose tables were all empty at
     capture time contributes no rows but must still be cleared — unioned
     with the rows' reactors for checkpoints read from legacy files. *)
  let reactors =
    List.sort_uniq String.compare
      (ck.ck_reactors @ List.map (fun (r, _, _) -> r) ck.ck_rows)
  in
  List.iter
    (fun rname ->
      List.iter
        (fun (_, tbl) -> Storage.Table.clear tbl)
        (Storage.Catalog.tables (catalog_of rname)))
    reactors;
  let n = ref 0 in
  List.iter
    (fun (rname, tname, row) ->
      incr n;
      let tbl = Storage.Catalog.table (catalog_of rname) tname in
      let record = Storage.Record.fresh ~absent:false row in
      record.Storage.Record.tid <- ck.ck_tid;
      ignore (Storage.Table.insert tbl record))
    ck.ck_rows;
  !n

(* File format v2:
     ckpt2<TAB>tid<TAB>covers<TAB>hexname,hexname,...   (covered reactors)
     <framed Wal row per checkpoint row>
     end<TAB>row-count<TAB>crc32hex            (completeness trailer)
   The trailer makes a torn checkpoint (crash mid-write) detectable, and its
   CRC covers everything before it — in particular the header, whose tid /
   covers / reactor-name fields the per-row frames cannot protect. The
   writer is additionally atomic (tmp file + rename), so a reader only ever
   sees either the old complete file or the new one.

   Legacy v1 ("tid<TAB>n" header, unframed rows, no trailer) remains
   readable; its covered-reactor set is derived from the rows. *)

let hex_name s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let unhex_name s =
  if String.length s mod 2 <> 0 then failwith "Checkpoint: odd hex length";
  String.init (String.length s / 2) (fun i ->
      Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let write_file path ck =
  let tmp = path ^ ".tmp" in
  let body = Buffer.create 4096 in
  Buffer.add_string body
    (Printf.sprintf "ckpt2\t%d\t%d\t%s\n" ck.ck_tid ck.ck_covers
       (String.concat "," (List.map hex_name ck.ck_reactors)));
  List.iter
    (fun (reactor, table, row) ->
      Buffer.add_string body
        (Wal.encode_framed
           { Wal.le_txn = 0; le_tid = ck.ck_tid;
             le_writes = [ Wal.Put { reactor; table; row } ] });
      Buffer.add_char body '\n')
    ck.ck_rows;
  let oc = open_out tmp in
  Buffer.output_buffer oc body;
  Printf.fprintf oc "end\t%d\t%s\n" (List.length ck.ck_rows)
    (Util.Checksum.crc32_hex (Buffer.contents body));
  close_out oc;
  Sys.rename tmp path

let read_file_opt path =
  let parse_row line =
    let entry_of =
      if String.length line >= 2 && line.[0] = '2' && line.[1] = '|' then
        Wal.decode_framed line
      else try Ok (Wal.decode_entry line) with Failure m -> Error m
    in
    match entry_of with
    | Ok { Wal.le_writes = [ Wal.Put { reactor; table; row } ]; _ } ->
      Ok (reactor, table, row)
    | Ok _ -> Error "bad checkpoint row line"
    | Error m -> Error m
  in
  try
    let ic = open_in_bin path in
    let content =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines = String.split_on_char '\n' content in
    let lines = List.filter (fun l -> l <> "") lines in
    match lines with
    | [] -> Error "empty checkpoint file"
    | header :: rest -> (
      match String.split_on_char '\t' header with
      | [ "ckpt2"; tid; covers; reactors ] -> (
        match (int_of_string_opt tid, int_of_string_opt covers) with
        | None, _ | _, None -> Error "bad checkpoint header fields"
        | Some ck_tid, Some ck_covers -> (
          let ck_reactors =
            if reactors = "" then []
            else List.map unhex_name (String.split_on_char ',' reactors)
          in
          (* Split the trailer off; a missing or mismatched trailer means a
             torn checkpoint. The trailer CRC covers the canonical
             reconstruction of everything before it (header + row lines,
             each newline-terminated) — corruption that splits or merges
             lines is caught by the row count / frame decoding instead. *)
          match List.rev rest with
          | [] -> Error "torn checkpoint (no trailer)"
          | trailer :: rev_rows -> (
            match String.split_on_char '\t' trailer with
            | [ "end"; n; crc ]
              when int_of_string_opt n = Some (List.length rev_rows) ->
              let rows_lines = List.rev rev_rows in
              let body =
                String.concat ""
                  (List.map (fun l -> l ^ "\n") (header :: rows_lines))
              in
              if not (String.equal crc (Util.Checksum.crc32_hex body)) then
                Error "checkpoint checksum mismatch"
              else (
                let rec parse acc = function
                  | [] -> Ok (List.rev acc)
                  | line :: rest -> (
                    match parse_row line with
                    | Ok row -> parse (row :: acc) rest
                    | Error m -> Error m)
                in
                match parse [] rows_lines with
                | Ok ck_rows -> Ok { ck_tid; ck_covers; ck_reactors; ck_rows }
                | Error m -> Error m)
            | [ "end"; _; _ ] -> Error "torn checkpoint (row count mismatch)"
            | _ -> Error "torn checkpoint (no trailer)")))
      | [ "tid"; tid ] -> (
        (* legacy v1: unframed rows, no trailer *)
        match int_of_string_opt tid with
        | None -> Error "bad checkpoint tid"
        | Some ck_tid -> (
          let rec parse acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest -> (
              match parse_row line with
              | Ok row -> parse (row :: acc) rest
              | Error m -> Error m)
          in
          match parse [] rest with
          | Ok ck_rows ->
            let ck_reactors =
              List.sort_uniq String.compare
                (List.map (fun (r, _, _) -> r) ck_rows)
            in
            (* Legacy files carry no log position: covers = 0 makes recovery
               replay the whole log over the restored state, which is slower
               but sound (per-record TID order is monotonic in the log). *)
            Ok { ck_tid; ck_covers = 0; ck_reactors; ck_rows }
          | Error m -> Error m))
      | _ -> Error "bad checkpoint header")
  with
  | Sys_error m -> Error m
  | Failure m -> Error m

let read_file path =
  match read_file_opt path with
  | Ok ck -> ck
  | Error m -> failwith ("Checkpoint.read_file: " ^ m)

let recover ~checkpoint ~log ~catalog_of =
  let restored = restore checkpoint ~catalog_of in
  (* The tail is cut POSITIONALLY: the checkpoint covers the first
     [ck_covers] log entries (append order = commit order). Cutting by TID
     would be unsound — Silo TIDs are not globally monotonic across
     reactors (a post-checkpoint commit on a cold reactor can carry a TID
     below the watermark and would be skipped). With [ck_covers = 0]
     (unknown coverage, e.g. legacy files) the whole log replays over the
     restored state; per-record TID monotonicity makes that sound, merely
     slower. *)
  let tail = List.filteri (fun i _ -> i >= checkpoint.ck_covers) log in
  let replayed = Wal.replay tail ~catalog_of in
  (restored, replayed)
