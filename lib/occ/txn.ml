exception Abort of string

(* Concurrency-driven aborts detected during execution (a competing
   transaction won a key race): distinct from [Abort] so the runtime can
   classify them as conflicts rather than user aborts, whatever the
   message text says. *)
exception Conflict of string

type write_kind =
  | Update of Util.Value.t array
  | Insert
  | Delete

type write_entry = {
  wrec : Storage.Record.t;
  mutable kind : write_kind;
  wtable : Storage.Table.t;
  wkey : Storage.Table.Key.t;
  wcontainer : int;
  mutable wlive : bool;
      (* cleared when a delete cancels this transaction's own insert; dead
         entries stay in their buckets (append-only) and are skipped by every
         iterator *)
  mutable wdisplaced : Storage.Record.t option;
      (* Insert entries only: a committed-delete tombstone this insert
         displaced from the index during prepare, reinstated on rollback and
         grafted into the new record's version chain at install *)
}

module IntSet = Set.Make (Int)

(* Per-container slice of the transaction context, built at insertion time so
   the commit protocol iterates exactly its container's entries — no folds
   over the whole read/write/node sets (§3.2's lean Silo commit path). *)
type bucket = {
  breads : (Storage.Record.t * int) Util.Vec.t; (* (record, observed tid) *)
  bwrites : write_entry Util.Vec.t; (* includes dead entries *)
  bnodes : Storage.Table.witness Util.Vec.t;
  mutable blive : int; (* live entries in [bwrites] *)
}

type t = {
  tid : int;
  mutable containers : IntSet.t;
  reads : (int, unit) Hashtbl.t; (* rid seen; first observation wins *)
  writes : (int, write_entry) Hashtbl.t; (* rid -> live entry *)
  inserts : (int * Storage.Table.Key.t, write_entry) Hashtbl.t;
  (* (table uid, key) -> entry; includes only live buffered inserts *)
  mutable buckets : bucket option array; (* index = container id *)
  by_table : (int, write_entry Util.Vec.t) Hashtbl.t;
      (* table uid -> entries (live and dead), for own-write visibility scans
         in the query layer *)
}

let create ~id =
  {
    tid = id;
    containers = IntSet.empty;
    reads = Hashtbl.create 64;
    writes = Hashtbl.create 16;
    inserts = Hashtbl.create 16;
    buckets = [||];
    by_table = Hashtbl.create 8;
  }

let id t = t.tid
let containers t = IntSet.elements t.containers
let touch t c = t.containers <- IntSet.add c t.containers

let new_bucket () =
  { breads = Util.Vec.create (); bwrites = Util.Vec.create ();
    bnodes = Util.Vec.create (); blive = 0 }

let bucket t c =
  let n = Array.length t.buckets in
  if c >= n then begin
    let grown = Array.make (Stdlib.max (c + 1) (Stdlib.max 4 (2 * n))) None in
    Array.blit t.buckets 0 grown 0 n;
    t.buckets <- grown
  end;
  match t.buckets.(c) with
  | Some b -> b
  | None ->
    let b = new_bucket () in
    t.buckets.(c) <- Some b;
    b

let bucket_opt t c = if c < Array.length t.buckets then t.buckets.(c) else None

let table_bucket t table =
  let uid = table.Storage.Table.uid in
  match Hashtbl.find_opt t.by_table uid with
  | Some v -> v
  | None ->
    let v = Util.Vec.create () in
    Hashtbl.add t.by_table uid v;
    v

let add_write_entry t e =
  Hashtbl.add t.writes e.wrec.Storage.Record.rid e;
  let b = bucket t e.wcontainer in
  Util.Vec.push b.bwrites e;
  b.blive <- b.blive + 1;
  Util.Vec.push (table_bucket t e.wtable) e

(* Cancel a live entry (delete of own insert): drop it from the lookup
   tables and counters; its bucket slots are skipped from now on. *)
let kill_entry t e =
  e.wlive <- false;
  Hashtbl.remove t.writes e.wrec.Storage.Record.rid;
  match bucket_opt t e.wcontainer with
  | Some b -> b.blive <- b.blive - 1
  | None -> assert false

let own_write t record = Hashtbl.find_opt t.writes record.Storage.Record.rid

let own_insert t ~table ~key =
  Hashtbl.find_opt t.inserts (table.Storage.Table.uid, key)

let own_updates_for t ~table =
  match Hashtbl.find_opt t.by_table table.Storage.Table.uid with
  | None -> []
  | Some v ->
    Util.Vec.fold_left
      (fun acc e ->
        match e.kind with
        | Update data when e.wlive -> (e.wkey, data) :: acc
        | _ -> acc)
      [] v

let own_inserts_for t ~table =
  match Hashtbl.find_opt t.by_table table.Storage.Table.uid with
  | None -> []
  | Some v ->
    Util.Vec.fold_left
      (fun acc e ->
        match e.kind with
        | Insert when e.wlive -> (e.wkey, e.wrec.Storage.Record.data) :: acc
        | _ -> acc)
      [] v

let note_read t ~container record =
  let rid = record.Storage.Record.rid in
  if not (Hashtbl.mem t.reads rid) then begin
    Hashtbl.add t.reads rid ();
    Util.Vec.push (bucket t container).breads (record, record.Storage.Record.tid)
  end;
  touch t container

let read t ~container record =
  match own_write t record with
  | Some { kind = Update data; _ } -> Some data
  | Some { kind = Delete; _ } -> None
  | Some { kind = Insert; wrec; _ } ->
    (* Own buffered insert: visible without read-set tracking (the record is
       private to this transaction until install). *)
    Some wrec.Storage.Record.data
  | None ->
    note_read t ~container record;
    if record.Storage.Record.absent then None
    else Some record.Storage.Record.data

let write t ~container ~table ~key record data =
  Storage.Schema.validate table.Storage.Table.schema data;
  touch t container;
  match own_write t record with
  | Some ({ kind = Update _; _ } as e) -> e.kind <- Update data
  | Some { kind = Insert; wrec; _ } -> wrec.Storage.Record.data <- data
  | Some { kind = Delete; _ } -> raise (Abort "write after delete of same record")
  | None ->
    add_write_entry t
      { wrec = record; kind = Update data; wtable = table; wkey = key;
        wcontainer = container; wlive = true; wdisplaced = None }

let insert t ~container ~table tuple =
  Storage.Schema.validate table.Storage.Table.schema tuple;
  touch t container;
  let key = Storage.Table.key_of_tuple table tuple in
  if Hashtbl.mem t.inserts (table.Storage.Table.uid, key) then
    raise (Abort "duplicate key (own insert)");
  (* Execution-time uniqueness probe. The leaf witness protects against a
     concurrent committer inserting the same key before we install. *)
  let clash = ref false in
  (match
     Storage.Table.find
       ~on_node:(fun w -> Util.Vec.push (bucket t container).bnodes w)
       table key
   with
  | Some existing ->
    if existing.Storage.Record.absent then begin
      (* Reserved by a concurrent preparer, or a committed delete. In the
         former case the key is effectively taken; in the latter the record
         is a tombstone we must not collide with structurally — observe it
         and treat present-flip as a conflict. *)
      note_read t ~container existing;
      if Storage.Record.is_locked existing then clash := true
    end
    else clash := true
  | None -> ());
  if !clash then raise (Conflict "duplicate key");
  let record = Storage.Record.fresh ~absent:true tuple in
  (* Hold the record's lock from creation: once reserved in the index during
     prepare, concurrent validators must see it as another's lock. *)
  ignore (Storage.Record.try_lock record ~txn:t.tid);
  let entry =
    { wrec = record; kind = Insert; wtable = table; wkey = key;
      wcontainer = container; wlive = true; wdisplaced = None }
  in
  add_write_entry t entry;
  Hashtbl.add t.inserts (table.Storage.Table.uid, key) entry

let delete t ~container ~table ~key record =
  touch t container;
  match own_write t record with
  | Some ({ kind = Insert; _ } as e) ->
    Hashtbl.remove t.inserts (table.Storage.Table.uid, key);
    kill_entry t e
  | Some ({ kind = Update _; _ } as e) -> e.kind <- Delete
  | Some { kind = Delete; _ } -> ()
  | None ->
    add_write_entry t
      { wrec = record; kind = Delete; wtable = table; wkey = key;
        wcontainer = container; wlive = true; wdisplaced = None }

let note_node t ~container w =
  touch t container;
  Util.Vec.push (bucket t container).bnodes w

(* ---- per-container iteration (the commit protocol's hot path) ---- *)

let iter_reads_in t ~container ~f =
  match bucket_opt t container with
  | None -> ()
  | Some b -> Util.Vec.iter (fun (r, observed) -> f r observed) b.breads

let iter_writes_in t ~container ~f =
  match bucket_opt t container with
  | None -> ()
  | Some b -> Util.Vec.iter (fun e -> if e.wlive then f e) b.bwrites

let iter_nodes_in t ~container ~f =
  match bucket_opt t container with
  | None -> ()
  | Some b -> Util.Vec.iter f b.bnodes

let ops_in t ~container =
  match bucket_opt t container with
  | None -> 0
  | Some b -> Util.Vec.length b.breads + b.blive

(* ---- list views (tests, history recording) ---- *)

let reads_in t ~container =
  match bucket_opt t container with
  | None -> []
  | Some b -> Util.Vec.to_list b.breads

let writes_in t ~container =
  match bucket_opt t container with
  | None -> []
  | Some b ->
    List.rev
      (Util.Vec.fold_left
         (fun acc e -> if e.wlive then e :: acc else acc)
         [] b.bwrites)

let nodes_in t ~container =
  match bucket_opt t container with
  | None -> []
  | Some b -> Util.Vec.to_list b.bnodes

(* Ascending container id, then insertion order: deterministic, unlike the
   hashtable fold this replaces. *)
let all_writes t =
  let out = ref [] in
  for c = Array.length t.buckets - 1 downto 0 do
    match t.buckets.(c) with
    | None -> ()
    | Some b ->
      for i = Util.Vec.length b.bwrites - 1 downto 0 do
        let e = Util.Vec.get b.bwrites i in
        if e.wlive then out := e :: !out
      done
  done;
  !out

let iter_all_writes t ~f =
  Array.iter
    (function
      | None -> ()
      | Some b -> Util.Vec.iter (fun e -> if e.wlive then f e) b.bwrites)
    t.buckets

let read_count t = Hashtbl.length t.reads
let write_count t = Hashtbl.length t.writes
