(** The Silo validation/commit protocol, containerized.

    Each function operates on one container's slice of a transaction and must
    be executed atomically with respect to that container (ReactDB arranges
    this: a container's commit step runs as one uninterrupted event on one of
    its executors).

    Single-container transactions call {!commit_single}. Multi-container
    transactions follow two-phase commit, exactly as §3.2.2 prescribes:
    {!prepare} on every touched container (phase one — Silo validation with
    write-set locks acquired and held), then {!install} everywhere with the
    TID from {!compute_tid} on success, or {!release} everywhere on failure.

    Prepare order within a container: (1) lock updates/deletes in global
    record order (no-wait), (2) validate the read set (observed TID unchanged
    and record not locked by another transaction), (3) validate the node set
    (leaf versions unchanged — phantom freedom), (4) reserve buffered inserts
    in the index as absent, locked records. Reservation comes last so the
    transaction's own structural changes cannot invalidate its own
    witnesses. *)

(** Why phase one failed, in the order the checks run. The taxonomy feeds
    the observability layer's abort causes ([Obs.Abort]) and the retry
    policies in the load harnesses — every one of these is transient. *)
type fail_reason =
  | Lock_busy  (** no-wait write-lock acquisition lost to a concurrent committer *)
  | Stale_read  (** a read's TID changed, or its record is locked by another txn *)
  | Node_changed  (** a node witness (phantom protection) changed version *)
  | Key_exists  (** an insert's reservation found a committed duplicate *)

(** Human-readable rendering, e.g. ["write lock busy"]. *)
val fail_message : fail_reason -> string

(** [prepare txn ~container] runs phase one on [container]. On failure all
    locks and reservations taken in this container are rolled back and the
    first failing check is reported; other containers are untouched. The
    success path allocates nothing beyond the sorted lock slice. *)
val prepare : Txn.t -> container:int -> (unit, fail_reason) result

(** TID for this commit: greater than every observed and overwritten TID,
    in at least [epoch] (Silo's assignment rule). *)
val compute_tid : Txn.t -> epoch:int -> int

(** Phase two, success: make writes visible in [container] at [tid] and drop
    all locks.

    With [?horizon] the install also publishes multi-version state for
    snapshot readers: each overwritten version retires into its record's
    history chain, deletes retain the record as a snapshot-visible tombstone
    in the primary index (secondary entries dropped), and chains are trimmed
    to [horizon] — the oldest epoch any live or future snapshot can request
    — as inline garbage collection. Without [horizon], the original
    single-version install runs and no chains are built. *)
val install : ?horizon:int -> Txn.t -> container:int -> tid:int -> unit

(** Phase two, failure (or local validation failure): undo reservations and
    drop locks in [container]. Idempotent, also safe if [prepare] was never
    run on [container]. *)
val release : Txn.t -> container:int -> unit

(** Validate and commit a transaction that touched only [container].
    [Error reason] means the transaction was aborted and rolled back.
    [?horizon] is forwarded to {!install}. *)
val commit_single :
  ?horizon:int -> Txn.t -> epoch:int -> container:int -> (int, fail_reason) result
