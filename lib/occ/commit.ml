open Txn

let locked_kind e = match e.kind with Update _ | Delete -> true | Insert -> false

(* Remove a reserved insert from its table if the reservation happened; a
   tombstone the reservation displaced goes back into the primary index. *)
let unreserve ~txn:id e =
  match Storage.Table.find e.wtable e.wkey with
  | Some r when r == e.wrec ->
    ignore (Storage.Table.remove e.wtable e.wkey);
    (match e.wdisplaced with
    | Some tomb ->
      Storage.Table.reinstate e.wtable tomb;
      Storage.Record.unlock tomb ~txn:id;
      e.wdisplaced <- None
    | None -> ())
  | _ -> ()

let release txn ~container =
  let id = Txn.id txn in
  iter_writes_in txn ~container ~f:(fun e ->
      if locked_kind e then Storage.Record.unlock e.wrec ~txn:id
      else unreserve ~txn:id e)

type fail_reason = Lock_busy | Stale_read | Node_changed | Key_exists

let fail_message = function
  | Lock_busy -> "write lock busy"
  | Stale_read -> "stale read"
  | Node_changed -> "node witness changed"
  | Key_exists -> "insert key exists"

exception Invalid

let prepare txn ~container =
  let id = Txn.id txn in
  (* Updates/deletes of this container only, locked in global rid order: the
     slice is gathered from the container's bucket and sorted in place. *)
  let acc = Util.Vec.create () in
  iter_writes_in txn ~container ~f:(fun e ->
      if locked_kind e then Util.Vec.push acc e);
  let lockable = Util.Vec.to_array acc in
  Array.sort
    (fun a b -> Int.compare a.wrec.Storage.Record.rid b.wrec.Storage.Record.rid)
    lockable;
  let n = Array.length lockable in
  let acquired = ref 0 in
  let rec lock_all i =
    i = n
    ||
    if Storage.Record.try_lock lockable.(i).wrec ~txn:id then begin
      acquired := i + 1;
      lock_all (i + 1)
    end
    else false
  in
  let unlock_acquired () =
    for j = 0 to !acquired - 1 do
      Storage.Record.unlock lockable.(j).wrec ~txn:id
    done
  in
  if not (lock_all 0) then begin
    unlock_acquired ();
    Error Lock_busy
  end
  else begin
    let reads_ok =
      try
        iter_reads_in txn ~container ~f:(fun r observed ->
            if r.Storage.Record.tid <> observed then raise Invalid;
            match Storage.Record.locked_by r with
            | None -> ()
            | Some owner -> if owner <> id then raise Invalid);
        true
      with Invalid -> false
    in
    if not reads_ok then begin
      unlock_acquired ();
      Error Stale_read
    end
    else begin
      let nodes_ok =
        try
          iter_nodes_in txn ~container ~f:(fun w ->
              if not (Storage.Table.Idx.witness_valid w) then raise Invalid);
          true
        with Invalid -> false
      in
      if not nodes_ok then begin
        unlock_acquired ();
        Error Node_changed
      end
      else begin
        (* Reserve inserts; a conflict here (concurrent installer beat us past
           our witness) rolls back this container's work. An unlocked
           committed-delete tombstone (retained for snapshot readers) is not a
           conflict: lock it out of circulation and displace it from the
           index — transactions that observed the key as dead now fail their
           read validation against the locked tombstone. *)
        let reserved = ref [] in
        let ok =
          try
            iter_writes_in txn ~container ~f:(fun e ->
                if e.kind = Insert then begin
                  (match Storage.Table.find e.wtable e.wkey with
                  | Some existing ->
                    if
                      existing.Storage.Record.absent
                      && Storage.Record.try_lock existing ~txn:id
                    then e.wdisplaced <- Some existing
                    else raise Invalid
                  | None -> e.wdisplaced <- None);
                  ignore (Storage.Table.insert e.wtable e.wrec);
                  reserved := e :: !reserved
                end);
            true
          with Invalid -> false
        in
        if not ok then begin
          List.iter (unreserve ~txn:id) !reserved;
          unlock_acquired ();
          Error Key_exists
        end
        else Ok ()
      end
    end
  end

let compute_tid txn ~epoch =
  let hi = ref 0 in
  List.iter
    (fun c ->
      Txn.iter_reads_in txn ~container:c ~f:(fun _ observed ->
          if observed > !hi then hi := observed))
    (Txn.containers txn);
  Txn.iter_all_writes txn ~f:(fun e ->
      let t = e.wrec.Storage.Record.tid in
      if t > !hi then hi := t);
  Storage.Record.next_tid ~epoch (if !hi = 0 then [] else [ !hi ])

(* [?horizon] switches on multi-version publishing: the version being
   overwritten retires into the record's chain (epoch-stamped by its old
   TID), deletes keep the record in the primary index as a snapshot-visible
   tombstone, and chains are trimmed to [horizon] — the oldest epoch any
   live or future snapshot can request — as inline GC. Without [horizon]
   the original single-version Silo install runs: no chains, deletes
   physically unlink. *)
let install ?horizon txn ~container ~tid =
  let id = Txn.id txn in
  iter_writes_in txn ~container ~f:(fun e ->
      let r = e.wrec in
      (match e.kind with
      | Update data ->
        (match horizon with
        | Some h ->
          Storage.Record.retire r ~new_tid:tid;
          (* update_data relocates secondary-index entries when indexed
             columns changed *)
          Storage.Table.update_data e.wtable r data;
          r.Storage.Record.tid <- tid;
          Storage.Record.trim r ~horizon:h
        | None ->
          Storage.Table.update_data e.wtable r data;
          r.Storage.Record.tid <- tid)
      | Delete -> (
        match horizon with
        | Some h ->
          Storage.Record.retire r ~new_tid:tid;
          r.Storage.Record.absent <- true;
          r.Storage.Record.tid <- tid;
          Storage.Record.trim r ~horizon:h;
          Storage.Table.sec_forget e.wtable r
        | None ->
          r.Storage.Record.absent <- true;
          r.Storage.Record.tid <- tid;
          ignore (Storage.Table.remove e.wtable e.wkey))
      | Insert ->
        (match horizon, e.wdisplaced with
        | Some h, Some tomb ->
          (* The displaced tombstone (and its older versions) becomes the
             new record's history: snapshots before this insert still see
             the key dead, older ones see the pre-delete rows. *)
          Storage.Record.graft r ~from:tomb;
          e.wdisplaced <- None;
          r.Storage.Record.absent <- false;
          r.Storage.Record.tid <- tid;
          Storage.Record.trim r ~horizon:h
        | _, _ ->
          r.Storage.Record.absent <- false;
          r.Storage.Record.tid <- tid));
      Storage.Record.unlock r ~txn:id)

let commit_single ?horizon txn ~epoch ~container =
  match prepare txn ~container with
  | Ok () ->
    let tid = compute_tid txn ~epoch in
    install ?horizon txn ~container ~tid;
    Ok tid
  | Error r -> Error r
