(** Transaction contexts for Silo-style optimistic concurrency control.

    A context accumulates, per root transaction (sub-transactions share their
    root's context, §2.2.3):

    - a {e read set} of (record, observed TID) pairs,
    - a {e write set} of buffered updates, deletes and inserts,
    - a {e node set} of B+tree leaf witnesses for phantom validation,

    each entry tagged with the container it belongs to, so that the commit
    protocol ({!Commit}) can validate and install per container — locally for
    single-container transactions and via two-phase commit otherwise.

    Inserts are buffered: the new record is created immediately but only
    placed into the index (absent-marked and locked, i.e. "reserved") during
    the prepare phase, and made visible during install. Execution-time reads
    observe the transaction's own buffered writes; merged visibility for
    scans is provided by the query layer. *)

exception Abort of string
(** Raised to abort the enclosing root transaction for deterministic
    reasons: user-defined aborts (e.g. business-rule failures) and
    programming errors such as inserting a key the transaction already
    inserted. *)

exception Conflict of string
(** Raised to abort the enclosing root transaction on a concurrency
    conflict detected during execution — e.g. a duplicate-key race where a
    competing inserter won the key. The runtime classifies these with
    validation failures, not user aborts. *)

type write_kind =
  | Update of Util.Value.t array
  | Insert
  | Delete

type write_entry = {
  wrec : Storage.Record.t;
  mutable kind : write_kind;
  wtable : Storage.Table.t;
  wkey : Storage.Table.Key.t;
  wcontainer : int;
  mutable wlive : bool;
      (** cleared when a delete cancels this transaction's own insert *)
  mutable wdisplaced : Storage.Record.t option;
      (** Insert entries only: a committed-delete tombstone this insert
          displaced from the index during prepare (snapshot mode), reinstated
          on rollback and grafted into the new record's version chain at
          install *)
}

type t

val create : id:int -> t
val id : t -> int

(** Containers touched by any read, write or scan, ascending. *)
val containers : t -> int list

(** {1 Data operations} *)

(** [read t ~container record] is the tuple visible to [t] in [record]:
    buffered writes win; otherwise the committed version is returned ([None]
    if logically absent) and the observation is recorded for validation. *)
val read : t -> container:int -> Storage.Record.t -> Util.Value.t array option

(** [write t ~container ~table ~key record data] buffers an update of
    [record] to [data]. *)
val write :
  t ->
  container:int ->
  table:Storage.Table.t ->
  key:Storage.Table.Key.t ->
  Storage.Record.t ->
  Util.Value.t array ->
  unit

(** [insert t ~container ~table tuple] buffers insertion of a fresh record.
    Raises [Abort] on a primary-key conflict with a committed record or
    another transaction's reservation; checks are re-validated at commit via
    the node set. *)
val insert :
  t -> container:int -> table:Storage.Table.t -> Util.Value.t array -> unit

(** [delete t ~container ~table ~key record] buffers deletion. Deleting a
    record inserted by [t] itself simply drops the buffered insert. *)
val delete :
  t ->
  container:int ->
  table:Storage.Table.t ->
  key:Storage.Table.Key.t ->
  Storage.Record.t ->
  unit

(** Record a B+tree leaf witness produced during a scan or point lookup. *)
val note_node : t -> container:int -> Storage.Table.witness -> unit

(** {1 Own-write visibility helpers (used by the query layer)} *)

(** Buffered write covering [record], if any. *)
val own_write : t -> Storage.Record.t -> write_entry option

(** Buffered insert into [table] under [key], if any. *)
val own_insert :
  t -> table:Storage.Table.t -> key:Storage.Table.Key.t -> write_entry option

(** All buffered inserts into [table] (unordered). *)
val own_inserts_for :
  t -> table:Storage.Table.t -> (Storage.Table.Key.t * Util.Value.t array) list

(** All buffered updates of [table] as (primary key, new tuple), unordered —
    used by the query layer to relocate rows in secondary-index scans whose
    indexed columns were updated in this transaction. *)
val own_updates_for :
  t -> table:Storage.Table.t -> (Storage.Table.Key.t * Util.Value.t array) list

(** {1 Per-container iteration (the commit protocol's hot path)}

    Entries are bucketed per container at insertion time, so each of these
    visits exactly its container's slice — no whole-set folds or filters.
    Iteration is in insertion order and allocation-free. *)

val iter_reads_in :
  t -> container:int -> f:(Storage.Record.t -> int -> unit) -> unit

(** Live write entries only (cancelled own-inserts are skipped). *)
val iter_writes_in : t -> container:int -> f:(write_entry -> unit) -> unit

val iter_nodes_in :
  t -> container:int -> f:(Storage.Table.witness -> unit) -> unit

(** Number of reads plus live writes in [container], O(1). *)
val ops_in : t -> container:int -> int

(** Live write entries of every container, ascending container id then
    insertion order (deterministic). *)
val iter_all_writes : t -> f:(write_entry -> unit) -> unit

(** {1 List views (tests, history recording)} *)

val reads_in : t -> container:int -> (Storage.Record.t * int) list
val writes_in : t -> container:int -> write_entry list
val nodes_in : t -> container:int -> Storage.Table.witness list
val all_writes : t -> write_entry list
val read_count : t -> int
val write_count : t -> int
