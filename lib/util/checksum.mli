(** CRC-32 (IEEE, as in zlib/Ethernet) over strings, for detecting torn or
    corrupted log records. *)

(** [crc32 ?init s] — checksum of [s]; pass a previous checksum as [init] to
    extend it over concatenated data. Result is in [0, 0xFFFFFFFF]. *)
val crc32 : ?init:int -> string -> int

(** Fixed-width lowercase hex rendering of {!crc32}. *)
val crc32_hex : string -> string
