(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Used by the WAL
   v2 record framing to detect torn and corrupted log records. Computed in
   plain OCaml ints (the 32-bit value always fits). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let crc32 ?(init = 0) s =
  let t = Lazy.force table in
  let c = ref (init lxor 0xFFFFFFFF) in
  String.iter
    (fun ch -> c := t.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let crc32_hex s = Printf.sprintf "%08x" (crc32 s)
