(** Small string helpers missing from the 4.x/5.1 stdlib. *)

(** [contains s ~sub] is true iff [sub] occurs in [s] (always true for the
    empty [sub]). Index-based scan: no per-position substring allocation. *)
val contains : string -> sub:string -> bool

(** [has_prefix s ~prefix] is true iff [s] starts with [prefix]. *)
val has_prefix : string -> prefix:string -> bool
