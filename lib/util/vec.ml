type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length v = v.len
let is_empty v = v.len = 0

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    (* Grow using the pushed element as fill: no dummy element needed. *)
    let d = Array.make (if cap = 0 then 8 else 2 * cap) x in
    Array.blit v.data 0 d 0 v.len;
    v.data <- d
  end;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))
let to_array v = Array.sub v.data 0 v.len

let exists p v =
  let rec go i = i < v.len && (p (Array.unsafe_get v.data i) || go (i + 1)) in
  go 0

let for_all p v =
  let rec go i = i >= v.len || (p (Array.unsafe_get v.data i) && go (i + 1)) in
  go 0

let clear v = v.len <- 0
