type t = {
  mutable samples : float list;
  mutable sorted : float array option; (* cache for percentile queries *)
  mutable n : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { samples = []; sorted = None; n = 0; sum = 0.; sumsq = 0.;
    mn = infinity; mx = neg_infinity }

let add t x =
  t.samples <- x :: t.samples;
  t.sorted <- None;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.n
let total t = t.sum
let mean t = if t.n = 0 then 0. else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.
  else
    let n = float_of_int t.n in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.) in
    sqrt (Float.max var 0.)

let min t = t.mn
let max t = t.mx

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
    let a = Array.of_list t.samples in
    Array.sort Float.compare a;
    t.sorted <- Some a;
    a

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Stats.percentile";
  let a = sorted t in
  if Array.length a = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int (Array.length a))) in
    a.(Stdlib.max 0 (Stdlib.min (Array.length a - 1) (rank - 1)))

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let merge a b =
  let t = create () in
  List.iter (add t) a.samples;
  List.iter (add t) b.samples;
  t

module Reservoir = struct
  (* Algorithm R: uniform sample of a stream in bounded memory. The
     replacement RNG is the module's own seeded splitmix stream, so a
     single-threaded caller (the simulator harness) stays bit-for-bit
     deterministic. *)
  type r = {
    cap : int;
    buf : float array;
    rng : Rng.t;
    mutable seen : int;
    mutable rsorted : float array option;
  }

  let create ?(seed = 0x5eed) cap =
    if cap <= 0 then invalid_arg "Reservoir.create: capacity must be positive";
    { cap; buf = Array.make cap 0.; rng = Rng.create seed; seen = 0;
      rsorted = None }

  let add r x =
    r.rsorted <- None;
    if r.seen < r.cap then r.buf.(r.seen) <- x
    else begin
      let j = Rng.int r.rng (r.seen + 1) in
      if j < r.cap then r.buf.(j) <- x
    end;
    r.seen <- r.seen + 1

  let seen r = r.seen
  let size r = Stdlib.min r.seen r.cap

  let sorted r =
    match r.rsorted with
    | Some a -> a
    | None ->
      let a = Array.sub r.buf 0 (size r) in
      Array.sort Float.compare a;
      r.rsorted <- Some a;
      a

  let samples r = Array.sub r.buf 0 (size r)

  (* Nearest-rank, matching {!percentile} above. *)
  let percentile r p =
    if p < 0. || p > 100. then invalid_arg "Reservoir.percentile";
    let a = sorted r in
    let n = Array.length a in
    if n = 0 then 0.
    else
      let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
      a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
end

module Histogram = struct
  type h = { lo : float; hi : float; bins : int array; mutable n : int }

  let create ~lo ~hi ~buckets =
    if buckets <= 0 || hi <= lo then invalid_arg "Histogram.create";
    { lo; hi; bins = Array.make buckets 0; n = 0 }

  let add h x =
    let b = Array.length h.bins in
    let i =
      int_of_float (float_of_int b *. (x -. h.lo) /. (h.hi -. h.lo))
    in
    let i = Stdlib.max 0 (Stdlib.min (b - 1) i) in
    h.bins.(i) <- h.bins.(i) + 1;
    h.n <- h.n + 1

  let counts h = Array.copy h.bins
  let total h = h.n

  let pp ppf h =
    let width = 40 in
    let mx = Array.fold_left Stdlib.max 1 h.bins in
    let b = Array.length h.bins in
    let step = (h.hi -. h.lo) /. float_of_int b in
    Array.iteri
      (fun i c ->
        let bar = String.make (c * width / mx) '#' in
        Fmt.pf ppf "[%8.3f,%8.3f) %6d %s@." (h.lo +. (float_of_int i *. step))
          (h.lo +. (float_of_int (i + 1) *. step))
          c bar)
      h.bins
end
