(** Minimal growable arrays (OCaml 5.1 has no [Dynarray] yet).

    Used for hot-path accumulation where lists would allocate a cons per
    element and hashtable folds would visit unrelated entries: the OCC
    layer's per-container read/write/node buckets, and scratch collections
    in the commit protocol. Not thread-safe; growth uses the pushed element
    as array fill so no dummy value is ever required. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

(** Amortized O(1) append. *)
val push : 'a t -> 'a -> unit

(** Raises [Invalid_argument] out of bounds. *)
val get : 'a t -> int -> 'a

(** In insertion order. *)
val iter : ('a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool

(** Resets length to 0; keeps (and may retain references in) the backing
    storage. *)
val clear : 'a t -> unit
