(** Deterministic pseudo-random number generation for workload drivers.

    All experiment inputs are generated from explicitly seeded generators so
    that every benchmark run and test is reproducible. The core generator is
    splitmix64, which has good statistical quality for workload generation
    and is trivially splittable. *)

type t

(** [create seed] makes an independent generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [split t] derives a new generator whose stream is independent of
    subsequent draws from [t]. *)
val split : t -> t

(** [stream ~seed i] is the [i]-th independent stream derived from root
    [seed] — no shared mutable state, so per-worker and per-domain
    generators can be created in any order (or concurrently on different
    domains) and still produce identical sequences. Requires [i >= 0]. *)
val stream : seed:int -> int -> t

(** Next raw 64-bit value (as an OCaml [int], so 63 bits, non-negative). *)
val bits : t -> int

(** [int t bound] draws uniformly from [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_incl t lo hi] draws uniformly from [lo, hi] inclusive. *)
val int_incl : t -> int -> int -> int

(** [float t bound] draws uniformly from [0, bound). *)
val float : t -> float -> float

val bool : t -> bool

(** [pick t arr] draws a uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** [pick_except t n excl] draws uniformly from [0, n) excluding value
    [excl]. Requires [n >= 2]. *)
val pick_except : t -> int -> int -> int

(** In-place Fisher–Yates shuffle. *)
val shuffle : t -> 'a array -> unit

(** [alphastring t len] draws a random string of uppercase letters. *)
val alphastring : t -> int -> string

(** TPC-C NURand(A, x, y) non-uniform distribution (clause 2.1.6). [c] is the
    runtime constant. *)
val nurand : t -> a:int -> c:int -> x:int -> y:int -> int

(** Zipfian generator over [0, n) with exponent [theta], using the
    Gray et al. / YCSB closed-form sampling method. Item 0 is the most
    popular. Construction is O(n) (computes the generalized harmonic
    number); sampling is O(1). *)
module Zipf : sig
  type gen

  (** [create ~n ~theta]. Requires [n >= 1] and [theta >= 0.]. [theta = 0.]
      degenerates to the uniform distribution. *)
  val create : n:int -> theta:float -> gen

  val next : t -> gen -> int
end
