(** Deterministic seeded exponential backoff with jitter.

    The retry loops in both load harnesses ([Harness.run_load] and
    [Runtime.Db.Load]) space out resubmissions of transiently-aborted
    transactions with delays drawn from a {!policy}. Delays are pure
    functions of [(policy, seed, attempt)], so a run is exactly
    reproducible from its seed; per-worker seeds keep streams independent.

    The schedule is {e monotone} (non-decreasing in [attempt], even with
    jitter — {!make} enforces [multiplier >= 1 + jitter], which makes the
    jittered floor of attempt [k+1] at least the jittered ceiling of
    attempt [k]) and {e capped} at [cap_us]. Both properties are checked by
    a QCheck test in [test/suite_util.ml]. *)

type policy = {
  base_us : float;  (** delay scale for the first retry (µs) *)
  multiplier : float;  (** exponential growth factor, [>= 1 + jitter] *)
  cap_us : float;  (** upper bound on any delay (µs) *)
  jitter : float;  (** jitter fraction in [0, 1]: delay is scaled by a
                       seeded uniform factor in [1, 1 + jitter] *)
}

(** 200 µs base, doubling, 50 ms cap, 0.5 jitter. *)
val default : policy

(** Smart constructor clamping fields into the valid ranges ([base_us >= 1],
    [jitter] in [0, 1], [multiplier >= 1 + jitter], [cap_us >= base_us]). *)
val make :
  ?base_us:float ->
  ?multiplier:float ->
  ?cap_us:float ->
  ?jitter:float ->
  unit ->
  policy

(** [delay_us p ~seed ~attempt] is the delay before retry number [attempt]
    (1-based: the first resubmission is attempt 1). Deterministic in
    [(p, seed, attempt)]; [0.] for [attempt < 1]. *)
val delay_us : policy -> seed:int -> attempt:int -> float
