type policy = {
  base_us : float;
  multiplier : float;
  cap_us : float;
  jitter : float;
}

let make ?(base_us = 200.) ?(multiplier = 2.) ?(cap_us = 50_000.)
    ?(jitter = 0.5) () =
  let base_us = Float.max 1. base_us in
  let jitter = Float.min 1. (Float.max 0. jitter) in
  (* multiplier >= 1 + jitter makes the schedule monotone even at the
     jitter extremes: raw(k+1) = raw(k) * multiplier >= raw(k) * (1 +
     jitter) >= jittered(k). *)
  let multiplier = Float.max (1. +. jitter) multiplier in
  let cap_us = Float.max base_us cap_us in
  { base_us; multiplier; cap_us; jitter }

let default = make ()

let delay_us p ~seed ~attempt =
  if attempt < 1 then 0.
  else begin
    let raw = p.base_us *. (p.multiplier ** float_of_int (attempt - 1)) in
    (* One independent draw per (seed, attempt): no generator state is
       carried between attempts, so concurrent workers can evaluate their
       schedules in any order. *)
    let u = Rng.float (Rng.stream ~seed attempt) 1.0 in
    Float.min p.cap_us (raw *. (1. +. (p.jitter *. u)))
  end
