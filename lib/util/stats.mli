(** Sample statistics for the experiment harness.

    The paper's methodology (§4.1.2) reports averages across 50 measurement
    epochs with standard deviations; these helpers implement that plus the
    distribution summaries used by latency plots. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float

(** Sample standard deviation (Bessel-corrected); [0.] for fewer than two
    samples. *)
val stddev : t -> float

val min : t -> float
val max : t -> float

(** [percentile t p] with [p] in [0, 100]; nearest-rank on the sorted sample.
    O(n log n) on first call after additions (sorts a snapshot). *)
val percentile : t -> float -> float

val of_list : float list -> t

(** Merge samples of both into a fresh accumulator. *)
val merge : t -> t -> t

(** Bounded-memory uniform sample of a stream (Vitter's Algorithm R), for
    latency percentiles over arbitrarily long runs. Deterministic: the
    replacement RNG is seeded, so equal streams give equal samples. *)
module Reservoir : sig
  type r

  (** [create ?seed cap] holds at most [cap] samples. *)
  val create : ?seed:int -> int -> r

  val add : r -> float -> unit

  (** Stream length so far (not the retained count). *)
  val seen : r -> int

  (** Retained sample count, [min (seen r) cap]. *)
  val size : r -> int

  (** Nearest-rank percentile of the retained sample; exact while
      [seen <= cap], an unbiased estimate beyond. [0.] when empty. *)
  val percentile : r -> float -> float

  (** Snapshot of the retained sample, unsorted, length [size r]. Lets a
      caller pool several per-container reservoirs into one percentile
      estimate (the pooled estimate is approximate when the containers
      saw different stream lengths). *)
  val samples : r -> float array
end

(** Fixed-width histogram over [lo, hi) with [buckets] bins; out-of-range
    samples are clamped into the edge bins. *)
module Histogram : sig
  type h

  val create : lo:float -> hi:float -> buckets:int -> h
  val add : h -> float -> unit
  val counts : h -> int array
  val total : h -> int

  (** Render as an ASCII bar chart, one bucket per line. *)
  val pp : Format.formatter -> h -> unit
end
