type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = next64 t }

(* Independent stream [i] of root [seed]: the root seed and the stream index
   are avalanche-mixed together, so streams share no state and any subset of
   them can be created in any order (or on different domains) and still draw
   the same sequences. Stream 0 is distinct from [create seed]. *)
let stream ~seed i =
  if i < 0 then invalid_arg "Rng.stream: negative stream index";
  let s = mix64 (Int64.of_int seed) in
  let g = mix64 (Int64.add golden_gamma (Int64.of_int i)) in
  { state = mix64 (Int64.logxor s g) }

(* 63 bits, non-negative. *)
let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 1)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_incl t lo hi =
  if hi < lo then invalid_arg "Rng.int_incl: empty range";
  lo + int t (hi - lo + 1)

(* Draw 53 mantissa bits so u in [0,1) is exact; clamp guards against the
   multiplication rounding up to [bound]. *)
let float t bound =
  let u = float_of_int (bits t land ((1 lsl 53) - 1)) *. 0x1p-53 in
  let v = bound *. u in
  if v < bound then v else Float.pred bound

let bool t = bits t land 1 = 1

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_except t n excl =
  if n < 2 then invalid_arg "Rng.pick_except: need n >= 2";
  let v = int t (n - 1) in
  if v >= excl then v + 1 else v

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let alphastring t len =
  String.init len (fun _ -> Char.chr (Char.code 'A' + int t 26))

let nurand t ~a ~c ~x ~y =
  (((int_incl t 0 a lor int_incl t x y) + c) mod (y - x + 1)) + x

module Zipf = struct
  type gen = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
    half_pow : float; (* (1 + 0.5^theta) threshold term *)
  }

  let zeta n theta =
    let acc = ref 0. in
    for i = 1 to n do
      acc := !acc +. (1. /. Float.pow (float_of_int i) theta)
    done;
    !acc

  let create ~n ~theta =
    if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
    if theta < 0. then invalid_arg "Zipf.create: theta must be >= 0";
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      if n = 1 then 0.
      else
        (1. -. Float.pow (2. /. float_of_int n) (1. -. theta))
        /. (1. -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; half_pow = 1. +. Float.pow 0.5 theta }

  let next t g =
    if g.n = 1 then 0
    else if Float.abs (g.theta -. 1.) < 1e-9 then begin
      (* theta = 1: the closed form degenerates; use inverse CDF by search on
         the harmonic numbers via exponential approximation. *)
      let u = float t 1. in
      let target = u *. g.zetan in
      let acc = ref 0. and k = ref 0 in
      while !acc < target && !k < g.n do
        incr k;
        acc := !acc +. (1. /. float_of_int !k)
      done;
      max 0 (!k - 1)
    end
    else
      let u = float t 1. in
      let uz = u *. g.zetan in
      if uz < 1. then 0
      else if uz < g.half_pow then 1
      else
        let v =
          float_of_int g.n
          *. Float.pow ((g.eta *. u) -. g.eta +. 1.) g.alpha
        in
        let v = int_of_float v in
        if v >= g.n then g.n - 1 else if v < 0 then 0 else v
end
