let contains s ~sub =
  let n = String.length sub and l = String.length s in
  if n = 0 then true
  else if n > l then false
  else begin
    let c0 = String.unsafe_get sub 0 in
    let rec at i j =
      j = n || (String.unsafe_get s (i + j) = String.unsafe_get sub j && at i (j + 1))
    in
    let rec scan i =
      i + n <= l && ((String.unsafe_get s i = c0 && at i 1) || scan (i + 1))
    in
    scan 0
  end

let has_prefix s ~prefix =
  let n = String.length prefix in
  String.length s >= n && String.sub s 0 n = prefix
