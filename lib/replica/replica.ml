(* Log-shipping replication and failover (DESIGN.md §12).

   A replica is deliberately engine-free: its catalogs come from
   Faultsim.fresh_catalogs and every batch goes through Wal.replay — the
   exact code path single-node recovery uses. Promotion can therefore
   check itself: replaying the retained shipped log onto fresh catalogs
   must reproduce the replica's live state byte-for-byte, or the replica
   has diverged and must not take over. *)

let epoch_of (e : Wal.entry) = Storage.Record.tid_epoch e.Wal.le_tid

module Batch = struct
  type decoded = {
    b_gen : int;
    b_from : int;
    b_to : int;
    b_entries : Wal.entry list;
  }

  type decode_result =
    | Complete of decoded
    | Torn of { d : decoded; reason : string }
    | Garbage of string

  (* Wire form:

       R|2|gen|from|to|count|crc32hex \n
       <Wal.encode_framed entry> \n-separated ...

     The header CRC covers the whole payload, so an undamaged batch is
     accepted without per-line checks; on mismatch we fall back to
     per-line framing — each payload line carries its own CRC — and keep
     the readable prefix, mirroring Wal.read_file_tolerant. *)

  let encode ~gen ~from_epoch ~to_epoch entries =
    let payload = String.concat "\n" (List.map Wal.encode_framed entries) in
    Printf.sprintf "R|2|%d|%d|%d|%d|%s\n%s" gen from_epoch to_epoch
      (List.length entries)
      (Util.Checksum.crc32_hex payload)
      payload

  let size entries =
    List.fold_left
      (fun a e -> a + String.length (Wal.encode_framed e) + 1)
      0 entries

  (* Readable prefix of payload lines: stop at the first line that fails
     framed decoding — everything past a tear or a corrupt record is
     unattributable, exactly like a torn WAL tail. *)
  let prefix_entries lines =
    let rec go acc = function
      | [] -> (List.rev acc, None)
      | l :: tl -> (
        match Wal.decode_framed l with
        | Ok e -> go (e :: acc) tl
        | Error r -> (List.rev acc, Some r))
    in
    go [] lines

  let decode s =
    let header, payload =
      match String.index_opt s '\n' with
      | Some i ->
        (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
      | None -> (s, "")
    in
    match String.split_on_char '|' header with
    | [ "R"; "2"; g; f; t; n; crc ] -> (
      match
        ( int_of_string_opt g,
          int_of_string_opt f,
          int_of_string_opt t,
          int_of_string_opt n )
      with
      | Some b_gen, Some b_from, Some b_to, Some count ->
        let lines =
          if payload = "" then [] else String.split_on_char '\n' payload
        in
        if
          String.equal crc (Util.Checksum.crc32_hex payload)
          && List.length lines = count
        then begin
          match prefix_entries lines with
          | entries, None ->
            Complete { b_gen; b_from; b_to; b_entries = entries }
          | entries, Some r ->
            (* CRC collision shield: framing disagrees, trust framing *)
            Torn { d = { b_gen; b_from; b_to; b_entries = entries }; reason = r }
        end
        else begin
          let entries, why = prefix_entries lines in
          let reason =
            match why with
            | Some r -> r
            | None ->
              Printf.sprintf "payload crc mismatch (%d/%d records readable)"
                (List.length entries) count
          in
          Torn { d = { b_gen; b_from; b_to; b_entries = entries }; reason }
        end
      | _ -> Garbage "unparsable header fields")
    | _ -> Garbage "unrecognized batch header"
end

type t = {
  rid : int;
  decl : Reactor.decl;
  cats : (string * Storage.Catalog.t) list;
  mutable wmark : int;
  mutable gen : int;
  mutable placements : (string * int) list;
  mutable log_rev : Wal.entry list; (* retained shipped entries, reversed *)
  mutable n_batches : int;
  mutable n_refused : int;
  mutable n_torn : int;
  mutable bytes_applied : int;
  mutable ro_served : int;
}

type apply_result =
  | Applied of { from_epoch : int; to_epoch : int; fresh : int }
  | Applied_torn of { upto : int; fresh : int; reason : string }
  | Refused of string

let create ?(gen = 0) ~id decl =
  Reactor.validate decl;
  {
    rid = id;
    decl;
    cats = Faultsim.fresh_catalogs decl;
    wmark = 0;
    gen;
    placements = [];
    log_rev = [];
    n_batches = 0;
    n_refused = 0;
    n_torn = 0;
    bytes_applied = 0;
    ro_served = 0;
  }

let id t = t.rid
let watermark t = t.wmark
let generation t = t.gen
let placements t = t.placements
let log t = List.rev t.log_rev
let catalogs t = t.cats
let n_batches t = t.n_batches
let n_refused t = t.n_refused
let n_torn t = t.n_torn
let bytes_applied t = t.bytes_applied
let ro_served t = t.ro_served

(* Replay a (complete-epochs-only) slice through the recovery path:
   update_data keeps secondary indexes aligned, on_move folds placement
   records. The slice is retained in TID order for promotion replay. *)
let apply_entries t entries =
  if entries <> [] then begin
    let entries =
      List.sort (fun a b -> compare a.Wal.le_tid b.Wal.le_tid) entries
    in
    ignore
      (Wal.replay entries
         ~catalog_of:(fun r -> Faultsim.catalog_of t.cats r)
         ~on_move:(fun ~reactor ~dst ->
           t.placements <- (reactor, dst) :: List.remove_assoc reactor t.placements));
    t.log_rev <- List.rev_append entries t.log_rev;
    t.bytes_applied <- t.bytes_applied + Batch.size entries
  end

(* Generation and contiguity admission. A batch from a newer primary
   generation is adopted (the promoted replica keeps shipping under its
   bumped stamp); a batch from an older one is the deposed primary still
   talking — refused, never applied (fencing). A batch that does not
   reach back to watermark+1 has a hole we cannot bridge. *)
let admit t ~b_gen ~b_from =
  if b_gen < t.gen then
    Error (Printf.sprintf "stale generation %d < %d" b_gen t.gen)
  else begin
    if b_gen > t.gen then t.gen <- b_gen;
    if b_from > t.wmark + 1 then
      Error
        (Printf.sprintf "epoch gap: batch starts at %d, watermark %d" b_from
           t.wmark)
    else Ok ()
  end

let apply t s =
  match Batch.decode s with
  | Batch.Garbage reason ->
    t.n_refused <- t.n_refused + 1;
    Refused reason
  | Batch.Complete d -> (
    match admit t ~b_gen:d.Batch.b_gen ~b_from:d.Batch.b_from with
    | Error e ->
      t.n_refused <- t.n_refused + 1;
      Refused e
    | Ok () ->
      (* duplicates below the watermark are re-delivery (a delayed batch
         arriving after its re-shipped twin): skip, don't re-apply *)
      let fresh =
        List.filter (fun e -> epoch_of e > t.wmark) d.Batch.b_entries
      in
      apply_entries t fresh;
      if d.Batch.b_to > t.wmark then t.wmark <- d.Batch.b_to;
      t.n_batches <- t.n_batches + 1;
      Applied
        {
          from_epoch = d.Batch.b_from;
          to_epoch = d.Batch.b_to;
          fresh = List.length fresh;
        })
  | Batch.Torn { d; reason } -> (
    match admit t ~b_gen:d.Batch.b_gen ~b_from:d.Batch.b_from with
    | Error e ->
      t.n_refused <- t.n_refused + 1;
      Refused e
    | Ok () ->
      (* Entries ship in TID order, so epochs are nondecreasing: every
         entry of an epoch strictly below the highest epoch visible in
         the readable prefix is provably complete. The highest epoch
         itself may have lost entries to the tear — discard it and let
         the unchanged cursor re-request from the last complete epoch. *)
      let max_seen =
        List.fold_left (fun a e -> max a (epoch_of e)) 0 d.Batch.b_entries
      in
      let safe = max_seen - 1 in
      let fresh =
        List.filter
          (fun e ->
            let ep = epoch_of e in
            ep > t.wmark && ep <= safe)
          d.Batch.b_entries
      in
      apply_entries t fresh;
      if safe > t.wmark then t.wmark <- safe;
      t.n_torn <- t.n_torn + 1;
      Applied_torn { upto = t.wmark; fresh = List.length fresh; reason })

(* ---- replica reads (frozen-epoch visibility, DESIGN.md §10) ---- *)

let rec invoke t ~snapshot ~txn ~reactor ~proc ~args =
  let rt = Reactor.type_of_reactor t.decl reactor in
  if not (Reactor.proc_readonly rt proc) then
    raise
      (Occ.Txn.Abort
         (Printf.sprintf "replica %d: %s.%s is not declared read-only" t.rid
            reactor proc));
  let procfn = Reactor.find_proc rt proc in
  let ctx =
    {
      Reactor.db =
        Query.Exec.make_ctx ~snapshot ~txn ~container:0
          ~catalog:(Faultsim.catalog_of t.cats reactor)
          ~charge:(fun _ _ -> ())
          ~work:(fun _ -> ())
          ();
      self = reactor;
      call =
        (fun ~reactor ~proc ~args ->
          (* all reactors are local to the replica mirror and the epoch is
             frozen, so sub-calls resolve eagerly and synchronously *)
          let v = invoke t ~snapshot ~txn ~reactor ~proc ~args in
          { Reactor.get = (fun () -> v) });
      collect = (fun fs -> List.map (fun (f : Reactor.future) -> f.get ()) fs);
    }
  in
  procfn ctx args

let exec_ro t ~reactor ~proc ~args =
  let txn = Occ.Txn.create ~id:0 in
  match invoke t ~snapshot:t.wmark ~txn ~reactor ~proc ~args with
  | v ->
    t.ro_served <- t.ro_served + 1;
    Ok v
  | exception Occ.Txn.Abort m -> Error m
  | exception Occ.Txn.Conflict m -> Error m
  | exception Invalid_argument m -> Error m

(* ---- promotion ---- *)

type promotion = {
  pm_replica : int;
  pm_gen : int;
  pm_epoch : int;
  pm_entries : int;
  pm_note : string;
}

let promote ?gen t =
  let gen = match gen with Some g -> g | None -> t.gen + 1 in
  let entries = log t in
  let oracle = Faultsim.fresh_catalogs t.decl in
  let opl = ref [] in
  ignore
    (Wal.replay entries
       ~catalog_of:(fun r -> Faultsim.catalog_of oracle r)
       ~on_move:(fun ~reactor ~dst ->
         opl := (reactor, dst) :: List.remove_assoc reactor !opl));
  match Faultsim.diff (Faultsim.snapshot oracle) (Faultsim.snapshot t.cats) with
  | Some d -> Error ("promotion refused: replica diverges from its log: " ^ d)
  | None -> (
    match Faultsim.check_secondaries t.cats with
    | Error e -> Error ("promotion refused: secondary-index audit: " ^ e)
    | Ok () ->
      let norm = List.sort compare in
      if norm !opl <> norm t.placements then
        Error "promotion refused: placement divergence from shipped log"
      else begin
        t.gen <- gen;
        Ok
          {
            pm_replica = t.rid;
            pm_gen = gen;
            pm_epoch = t.wmark;
            pm_entries = List.length entries;
            pm_note = "recovery-equivalence oracle passed";
          }
      end)

let freshest = function
  | [] -> None
  | r :: rs ->
    Some
      (List.fold_left (fun best r -> if r.wmark > best.wmark then r else best)
         r rs)

let durable_epoch_of_entries entries =
  List.fold_left (fun a e -> max a (epoch_of e)) 0 entries

(* ---- the shipper ---- *)

module Shipper = struct
  type peer = {
    pr : t;
    mutable pending : string option; (* batch held by Delay_shipment *)
    mutable p_dropped : int;
    mutable p_delayed : int;
  }

  type shipper = {
    chaos : Chaos.t;
    entries : unit -> Wal.entry list;
    durable : unit -> int;
    sgen : unit -> int;
    peers : peer list;
    mutable n_rounds : int;
  }

  let create ?(chaos = Chaos.none) ~entries ~durable_epoch ~gen rs =
    {
      chaos;
      entries;
      durable = durable_epoch;
      sgen = gen;
      peers =
        List.map
          (fun r -> { pr = r; pending = None; p_dropped = 0; p_delayed = 0 })
          rs;
      n_rounds = 0;
    }

  let deliver p b = ignore (apply p.pr b)

  let flush_pending p =
    match p.pending with
    | Some b ->
      p.pending <- None;
      deliver p b
    | None -> ()

  (* Ship the replica everything durable past its watermark as one
     contiguous batch. Chaos probes sit exactly where the network would
     be: a dropped batch is lost silently (the unchanged watermark
     re-requests it next round), a delayed one waits in the peer slot. *)
  let ship_suffix sh ~with_chaos p =
    let e = sh.durable () in
    let w = watermark p.pr in
    if e > w then begin
      let es =
        List.filter
          (fun en ->
            let ep = epoch_of en in
            ep > w && ep <= e)
          (sh.entries ())
      in
      let b = Batch.encode ~gen:(sh.sgen ()) ~from_epoch:(w + 1) ~to_epoch:e es in
      if not with_chaos then deliver p b
      else
        match Chaos.draw_us sh.chaos Chaos.Drop_shipment with
        | Some _ -> p.p_dropped <- p.p_dropped + 1
        | None -> (
          match Chaos.draw_us sh.chaos Chaos.Delay_shipment with
          | Some _ ->
            p.p_delayed <- p.p_delayed + 1;
            p.pending <- Some b
          | None -> deliver p b)
    end

  let round sh =
    sh.n_rounds <- sh.n_rounds + 1;
    List.iter
      (fun p ->
        flush_pending p;
        ship_suffix sh ~with_chaos:true p)
      sh.peers

  let final_ship sh =
    List.iter
      (fun p ->
        flush_pending p;
        ship_suffix sh ~with_chaos:false p)
      sh.peers

  let rounds sh = sh.n_rounds

  let dropped sh = List.fold_left (fun a p -> a + p.p_dropped) 0 sh.peers
  let delayed sh = List.fold_left (fun a p -> a + p.p_delayed) 0 sh.peers

  let lag sh =
    let e = sh.durable () in
    List.map
      (fun p ->
        let w = watermark p.pr in
        let behind = max 0 (e - w) in
        let bytes =
          if behind = 0 then 0
          else
            Batch.size
              (List.filter
                 (fun en ->
                   let ep = epoch_of en in
                   ep > w && ep <= e)
                 (sh.entries ()))
        in
        (id p.pr, behind, bytes))
      sh.peers

  let publish_obs sh c =
    let lags = lag sh in
    let rows =
      List.map2
        (fun p (_, behind, bytes) ->
          {
            Obs.rr_replica = id p.pr;
            rr_applied_epoch = watermark p.pr;
            rr_epochs_behind = behind;
            rr_bytes_behind = bytes;
            rr_batches = n_batches p.pr;
            rr_drops = p.p_dropped + n_refused p.pr;
          })
        sh.peers lags
    in
    Obs.Collector.set_repl c rows
end
