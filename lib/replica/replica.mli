(** Log-shipping replication and primary failover (DESIGN.md §12).

    The paper's virtualized-actor pitch (§4) is that a reactor deployment
    outlives any one container. This module provides the availability half
    of that story on top of the crash-consistency machinery: a {e replica}
    is an engine-free mirror of the reactor database — catalogs built
    straight from the declaration, exactly like recovery
    ([Faultsim.fresh_catalogs]) — kept current by replaying {e shipped}
    batches of the primary's durable WAL v2 records through the same
    [Wal.replay] path recovery uses, secondary indexes and placements
    included.

    {2 The watermark invariant}

    A replica applies whole epochs or nothing. Its {e watermark} is the
    highest epoch [w] such that every committed-and-flushed entry with
    epoch ≤ [w] has been applied; batches always cover a contiguous epoch
    range starting at [w+1], so the watermark is also the replica's
    re-request cursor — a lost or refused batch simply leaves it unchanged
    and the next shipping round re-ships from the same point. Torn batches
    (detected exactly like a torn WAL tail) keep their readable prefix
    only up to the last {e provably complete} epoch.

    {2 Replica reads}

    A replica answers declared-read-only procedures at its watermark using
    the frozen-epoch visibility of DESIGN.md §10: reads resolve through
    record version chains at epoch = watermark, so a replica is never
    lag-{e inconsistent} — it serves a stale but transactionally
    consistent prefix, abort-free.

    {2 Failover}

    Promotion replays the replica's retained shipped log onto fresh
    catalogs — byte-for-byte the single-node recovery path — and diffs the
    result against the replica's live state ([Faultsim.diff] plus a full
    secondary-index audit) before the replica is allowed to take over
    under a bumped generation. The dead primary is fenced by
    generation-stamped admission ([Reactdb.Database.fence]). *)

(** {1 Shipped batches} *)

module Batch : sig
  (** A decoded shipment. [b_from]..[b_to] is the contiguous epoch range
      the primary asserts complete; entries carry epochs within it
      (epochs with no commits ship no entries but still advance the
      range). *)
  type decoded = {
    b_gen : int;  (** primary generation that produced the batch *)
    b_from : int;  (** first epoch covered (receiver watermark + 1) *)
    b_to : int;  (** last epoch covered — the new watermark on success *)
    b_entries : Wal.entry list;
  }

  type decode_result =
    | Complete of decoded
    | Torn of { d : decoded; reason : string }
        (** header intact, payload damaged: [d.b_entries] is the readable
            prefix (every later entry is lost) *)
    | Garbage of string  (** header unreadable; nothing salvageable *)

  (** [encode ~gen ~from_epoch ~to_epoch entries] renders the wire form:
      one header line ["R|2|gen|from|to|count|crc32"] followed by one
      [Wal.encode_framed] line per entry; the CRC covers the whole
      payload. *)
  val encode :
    gen:int -> from_epoch:int -> to_epoch:int -> Wal.entry list -> string

  val decode : string -> decode_result

  (** Payload size in bytes (framed lines + separators) of a batch
      shipping exactly [entries] — the bytes-behind unit. *)
  val size : Wal.entry list -> int
end

(** {1 Replicas} *)

type t

(** What {!apply} did with a batch. *)
type apply_result =
  | Applied of { from_epoch : int; to_epoch : int; fresh : int }
      (** watermark advanced to [to_epoch]; [fresh] entries replayed
          (duplicates below the old watermark skipped) *)
  | Applied_torn of { upto : int; fresh : int; reason : string }
      (** torn batch: applied the readable prefix up to the last complete
          epoch [upto] (possibly the unchanged watermark) and discarded
          the rest — the next round re-ships from [upto] *)
  | Refused of string
      (** epoch gap, stale generation or garbage; state untouched *)

(** [create ~id decl] builds an empty replica: fresh catalogs with
    declared secondary indexes and loaders applied, watermark 0,
    generation [gen] (default 0). *)
val create : ?gen:int -> id:int -> Reactor.decl -> t

val id : t -> int

(** Last complete epoch applied; also the snapshot epoch replica reads
    run at and the re-request cursor. *)
val watermark : t -> int

(** Primary generation this replica last accepted a batch from. *)
val generation : t -> int

(** Placement assignment folded from shipped [Wal.Migrate] records (last
    move per reactor wins); reactors that never migrated are absent. *)
val placements : t -> (string * int) list

(** Retained shipped entries in application order — the log a promotion
    replays. *)
val log : t -> Wal.entry list

val catalogs : t -> (string * Storage.Catalog.t) list

(** Counters: batches applied (incl. torn prefixes), batches refused,
    torn batches seen, payload bytes applied, read-only transactions
    served. *)
val n_batches : t -> int

val n_refused : t -> int
val n_torn : t -> int
val bytes_applied : t -> int
val ro_served : t -> int

(** [apply t s] decodes and applies one shipment. Invariants enforced:
    stale generations are refused (fencing — a deposed primary cannot
    roll the replica back), epoch gaps are refused (a batch must start at
    watermark + 1 or earlier), entries at or below the watermark are
    skipped (idempotent re-delivery), and torn payloads keep only epochs
    strictly before the highest epoch seen in the readable prefix. *)
val apply : t -> string -> apply_result

(** [exec_ro t ~reactor ~proc ~args] serves a declared-read-only
    procedure at the replica's watermark epoch: version-chain reads, no
    locks, no validation — abort-free by construction. Cross-reactor
    [call]/[collect] resolve synchronously against the replica's own
    catalogs at the same frozen epoch. [Error _] if the procedure is not
    declared read-only, attempts a mutation, or aborts. *)
val exec_ro :
  t ->
  reactor:string ->
  proc:string ->
  args:Util.Value.t list ->
  (Util.Value.t, string) result

(** {1 Promotion} *)

type promotion = {
  pm_replica : int;
  pm_gen : int;  (** generation the promoted replica now serves under *)
  pm_epoch : int;  (** watermark at promotion — the preserved prefix *)
  pm_entries : int;  (** retained log entries replayed by the oracle *)
  pm_note : string;
}

(** [promote t] runs the recovery-equivalence oracle before promotion:
    the retained shipped log is replayed onto fresh catalogs (the
    single-node recovery path) and the result must be
    [Faultsim.diff]-identical to the replica's live state — placements
    included — and pass the full secondary-index audit. On success the
    replica's generation becomes [gen] (default: current + 1) and it may
    serve writes; the old primary must already be fenced. [Error _]
    means the replica diverged from its own log and must not be
    promoted. *)
val promote : ?gen:int -> t -> (promotion, string) result

(** Replica with the highest watermark (leftmost on ties); [None] on the
    empty list. *)
val freshest : t list -> t option

(** Highest epoch present in a durable log's entries (0 if empty) — the
    shippable bound for a source, like the runtime WAL, whose every
    present epoch is already complete. *)
val durable_epoch_of_entries : Wal.entry list -> int

(** {1 The shipper}

    Drives shipping rounds from one primary log to a set of replicas.
    The source is abstract — two callbacks — so the same shipper serves
    the simulator ([Reactdb.Database] + in-memory WAL, virtual time) and
    the runtime ([Runtime.Db] + its WAL, wall clock). Chaos composes
    here: [Chaos.Drop_shipment] loses a batch in flight (the replica's
    unchanged watermark re-requests it next round) and
    [Chaos.Delay_shipment] holds a batch one round (stretching lag
    without losing data). *)

module Shipper : sig
  type shipper

  (** [create ~entries ~durable_epoch ~gen replicas] wires a shipper.
      [entries] returns the primary's log in append order (only entries
      with epoch ≤ [durable_epoch ()] are ever shipped — the
      zero-lost-committed bound: an acked commit is durable, and every
      durable epoch is shipped); [gen] is the primary's current
      generation stamp. *)
  val create :
    ?chaos:Chaos.t ->
    entries:(unit -> Wal.entry list) ->
    durable_epoch:(unit -> int) ->
    gen:(unit -> int) ->
    t list ->
    shipper

  (** One shipping round: per replica, deliver any batch delayed from
      the previous round, then ship the suffix (watermark, durable] as
      one batch — subject to the chaos probes. *)
  val round : shipper -> unit

  (** Final hand-off during failover: ship every replica the remaining
      durable suffix with chaos disabled — this models the recovery
      orchestrator reading the dead primary's surviving durable log
      directly rather than a live network shipment. Pending delayed
      batches are delivered first. *)
  val final_ship : shipper -> unit

  val rounds : shipper -> int

  (** Batches dropped ([Drop_shipment]) and delayed ([Delay_shipment])
      so far, across all replicas. *)
  val dropped : shipper -> int

  val delayed : shipper -> int

  (** Per-replica lag right now: (replica id, epochs behind, bytes
      behind), measured against [durable_epoch ()]. *)
  val lag : shipper -> (int * int * int) list

  (** Publish per-replica lag rows into a collector
      ([Obs.Collector.set_repl]) — call at quiescence. *)
  val publish_obs : shipper -> Obs.Collector.t -> unit
end
