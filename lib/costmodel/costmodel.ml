type st = {
  at : int;
  p_seq : float;
  sync_seq : st list;
  async : st list;
  p_ovp : float;
  sync_ovp : st list;
}

type costs = { cs : int -> int -> float; cr : int -> int -> float }

let uniform_costs ~cs ~cr =
  {
    cs = (fun src dst -> if src = dst then 0. else cs);
    cr = (fun dst src -> if src = dst then 0. else cr);
  }

let leaf ~at p =
  { at; p_seq = p; sync_seq = []; async = []; p_ovp = 0.; sync_ovp = [] }

let node ~at ?(p_seq = 0.) ?(sync_seq = []) ?(async = []) ?(p_ovp = 0.)
    ?(sync_ovp = []) () =
  { at; p_seq; sync_seq; async; p_ovp; sync_ovp }

(* Fan-out/collect: [n] asynchronous sub-calls of [p] µs each, dealt
   round-robin over the destination executors, overlapped with [p_ovp] µs
   of caller-side processing (e.g. the combined local debit) before the
   collect barrier. *)
let fan_out ~at ~dests ?(p_ovp = 0.) ~n p =
  if dests = [] then invalid_arg "Costmodel.fan_out: no destinations";
  let d = Array.of_list dests in
  let children =
    List.init n (fun i -> leaf ~at:d.(i mod Array.length d) p)
  in
  node ~at ~async:children ~p_ovp ()

let sum f xs = List.fold_left (fun acc x -> acc +. f x) 0. xs

(* The equation of Figure 3, applied recursively. *)
let rec latency c st =
  let k = st.at in
  let seq_part =
    st.p_seq
    +. sum (latency c) st.sync_seq
    +. sum (fun child -> c.cs k child.at +. c.cr child.at k) st.sync_seq
  in
  let ovp_part =
    st.p_ovp
    +. sum (latency c) st.sync_ovp
    +. sum (fun child -> c.cs k child.at +. c.cr child.at k) st.sync_ovp
  in
  (* Each asynchronous child's completion time includes the send costs of
     every child launched before it (sends are issued sequentially), and
     children targeting the same executor serialize there: a child cannot
     start before its predecessor on that executor finishes. With distinct
     executors this degenerates to the plain fork–join max; with a fan-out
     wider than the executor count it models the queueing that caps the
     parallel speedup at the number of distinct executors. *)
  let rec async_part acc_send busy best = function
    | [] -> best
    | child :: rest ->
      let acc_send = acc_send +. c.cs k child.at in
      let start =
        match List.assoc_opt child.at busy with
        | Some t -> Float.max t acc_send
        | None -> acc_send
      in
      let fin = start +. latency c child in
      let t = fin +. c.cr child.at k in
      async_part acc_send
        ((child.at, fin) :: List.remove_assoc child.at busy)
        (Float.max best t) rest
  in
  let fork_join = Float.max (async_part 0. [] 0. st.async) ovp_part in
  seq_part +. fork_join

type decomposition = {
  d_sync_exec : float;
  d_cs : float;
  d_cr : float;
  d_async : float;
}

let rec decompose c st =
  let k = st.at in
  let children = List.map (decompose c) st.sync_seq in
  let d_sync_exec =
    st.p_seq +. sum (fun d -> d.d_sync_exec) children
  in
  (* Sends to asynchronous children are serial work on the caller's
     critical path: bill them to Cs, like the runtime's profiler does. *)
  let d_cs =
    sum (fun child -> c.cs k child.at) st.sync_seq
    +. sum (fun child -> c.cs k child.at) st.async
    +. sum (fun d -> d.d_cs) children
  in
  let d_cr =
    sum (fun child -> c.cr child.at k) st.sync_seq
    +. sum (fun d -> d.d_cr) children
  in
  (* Everything not on the sequential critical path is the fork–join window
     (the max term), including async windows nested in synchronous
     children. *)
  let d_async = latency c st -. (d_sync_exec +. d_cs +. d_cr) in
  { d_sync_exec; d_cs; d_cr; d_async }

let rec sequential_work st =
  st.p_seq +. st.p_ovp
  +. sum sequential_work st.sync_seq
  +. sum sequential_work st.sync_ovp
  +. sum sequential_work st.async

let expected_with_retries ~abort_prob l =
  if abort_prob < 0. || abort_prob >= 1. then
    invalid_arg "Costmodel.expected_with_retries: abort_prob must be in [0, 1)";
  l /. (1. -. abort_prob)

let occ_latency c ~commit ~abort_prob st =
  expected_with_retries ~abort_prob (latency c st +. commit)

let readonly_latency c st = latency c st

type fit = { intercept : float; slope : float; r2 : float }

let linear_fit points =
  let n = float_of_int (List.length points) in
  if List.length points < 2 then invalid_arg "Costmodel.linear_fit: need >= 2 points";
  let sx = sum fst points and sy = sum snd points in
  let sxx = sum (fun (x, _) -> x *. x) points in
  let sxy = sum (fun (x, y) -> x *. y) points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then
    invalid_arg "Costmodel.linear_fit: x values are all equal";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  let mean_y = sy /. n in
  let ss_tot = sum (fun (_, y) -> (y -. mean_y) ** 2.) points in
  let ss_res =
    sum (fun (x, y) -> (y -. (intercept +. (slope *. x))) ** 2.) points
  in
  let r2 = if ss_tot < 1e-12 then 1. else 1. -. (ss_res /. ss_tot) in
  { intercept; slope; r2 }
