(** The computational cost model of §2.4 (Figure 3).

    Fork–join sub-transactions are described as trees: sequential processing
    with synchronous children, followed by one fork point where asynchronous
    children are launched, overlapped with further processing and
    synchronous children, then joined. [latency] evaluates the recursive
    equation of Figure 3 under given communication cost functions, assuming
    the encoded parallelism is fully realized.

    Developers (and our benchmarks, which validate the model against
    ReactDB measurements — Figs. 6, 13, Table 1) use it to compare program
    formulations: more asynchrony, more overlap, or less processing depth
    must never predict higher latency. *)

(** A fork–join sub-transaction. [at] names the reactor (or executor) the
    sub-transaction runs on; destinations drive the communication costs. *)
type st = {
  at : int;
  p_seq : float;  (** sequential processing cost, [Pseq] *)
  sync_seq : st list;  (** synchronous children invoked sequentially *)
  async : st list;  (** asynchronous children, launched at the fork point *)
  p_ovp : float;  (** processing overlapped with the asynchronous children *)
  sync_ovp : st list;  (** synchronous children overlapped likewise *)
}

(** Communication costs: [cs src dst] to send an invocation, [cr dst src] to
    receive a result back. *)
type costs = { cs : int -> int -> float; cr : int -> int -> float }

(** Uniform costs, zero when source = destination (same executor). *)
val uniform_costs : cs:float -> cr:float -> costs

(** Leaf helper: sequential processing only. *)
val leaf : at:int -> float -> st

(** Build a node. Defaults: no children, no overlapped processing. *)
val node :
  at:int ->
  ?p_seq:float ->
  ?sync_seq:st list ->
  ?async:st list ->
  ?p_ovp:float ->
  ?sync_ovp:st list ->
  unit ->
  st

(** [fan_out ~at ~dests ~n p] — a fan-out/collect transaction: [n]
    asynchronous sub-calls of [p] µs each, dealt round-robin over the
    [dests] executors, with [p_ovp] µs of caller-side processing (e.g. a
    combined local debit) overlapped before the collect barrier. With
    [n > List.length dests] the queueing term of {!latency} caps the
    speedup at the number of distinct destination executors. *)
val fan_out : at:int -> dests:int list -> ?p_ovp:float -> n:int -> float -> st

(** Latency of a sub-transaction per Figure 3. A root transaction is a
    sub-transaction without a parent; add commitment overhead separately.

    Asynchronous children launched at the fork point complete at
    [accumulated sends + own latency + Cr] — and children targeting the
    same executor serialize there (a child starts no earlier than its
    predecessor on that executor finishes), so a fan-out wider than the
    executor pool is predicted to scale only to the pool size. With
    distinct destinations the term reduces to the plain Figure 3 max. *)
val latency : costs -> st -> float

(** Decomposition of the predicted latency into the buckets plotted in
    Figure 6: sequential execution (processing + synchronous children),
    send and receive costs on the critical path, and the asynchronous
    window. Buckets sum to [latency]. *)
type decomposition = {
  d_sync_exec : float;
  d_cs : float;
  d_cr : float;
  d_async : float;
}

val decompose : costs -> st -> decomposition

(** Total processing cost if everything ran sequentially on one core —
    the lower bound a sequential formulation approaches with zero
    communication. *)
val sequential_work : st -> float

(** {1 Commit overhead and retries}

    {!latency} prices the body only ("add commitment overhead
    separately"); these helpers price the two commit disciplines around
    it, so formulations can be compared end to end. *)

(** [expected_with_retries ~abort_prob l] — expected latency of a
    transaction whose attempts take [l] µs and abort independently with
    probability [abort_prob], retried until commit (geometric):
    [l / (1 - abort_prob)]. Raises [Invalid_argument] unless
    [0 <= abort_prob < 1]. *)
val expected_with_retries : abort_prob:float -> float -> float

(** [occ_latency c ~commit ~abort_prob st] — predicted end-to-end latency
    of the OCC formulation: body latency plus [commit] µs of
    validation/install/2PC overhead, inflated by the retry term. *)
val occ_latency : costs -> commit:float -> abort_prob:float -> st -> float

(** [readonly_latency c st] — predicted latency of the read-only snapshot
    formulation of the same body: no commit overhead and {e no retry
    term}, because snapshot roots skip validation entirely and are
    abort-free by construction. Equal to [latency c st]; provided as the
    named counterpart of {!occ_latency}. *)
val readonly_latency : costs -> st -> float

(** {1 Calibration}

    The paper calibrates cost-model parameters from profiled runs (§4.2.2,
    App. C/D). For the common case of a latency that is affine in a swept
    parameter (e.g. fully-sync latency in the transaction size, where the
    slope bundles per-transfer processing plus Cs + Cr), a least-squares
    line fit recovers intercept and slope with a goodness-of-fit measure. *)

type fit = { intercept : float; slope : float; r2 : float }

(** [linear_fit points] over (x, y) observations. Requires at least two
    distinct x values; raises [Invalid_argument] otherwise. [r2] is 1 for a
    perfect fit (and defined as 1 when y is constant). *)
val linear_fit : (float * float) list -> fit
