(** Transactional query execution over one reactor's state.

    Every operation runs in the context of a (sub-)transaction: reads are
    tracked in the OCC read set, scans additionally record B+tree leaf
    witnesses, and writes are buffered in the write set. Visibility follows
    the reactor model's expectations: a transaction observes its own buffered
    updates, deletes and inserts (merged into scans in key order) layered
    over the committed state.

    The [charge] callback reports work units to the runtime, which converts
    them into simulated processing time; it fires {e after} the operation's
    logical effect, keeping each operation atomic in virtual time. *)

type charge_kind = [ `Read | `Write | `Scan_step ]

type ctx = {
  txn : Occ.Txn.t;
  container : int;
  catalog : Storage.Catalog.t;
  charge : charge_kind -> int -> unit;
  work : float -> unit;
      (** charge [µs] of pure computation (e.g. risk simulation) to the
          executing core *)
  snapshot : int option;
      (** When set, this context executes a read-only procedure against the
          frozen snapshot epoch: reads resolve through record version chains
          ({!Storage.Record.snapshot_read}) with no read-set tracking, no
          node witnesses and no own-write overlay, and every mutating
          operation raises [Occ.Txn.Abort]. *)
}

val make_ctx :
  ?snapshot:int ->
  txn:Occ.Txn.t ->
  container:int ->
  catalog:Storage.Catalog.t ->
  charge:(charge_kind -> int -> unit) ->
  work:(float -> unit) ->
  unit ->
  ctx

(** Resolve a table; raises [Invalid_argument] with the table name when
    missing (a programming error in the stored procedure). *)
val table : ctx -> string -> Storage.Table.t

val schema : ctx -> string -> Storage.Schema.t

(** {1 Point operations} *)

(** [get ctx tname key] is the visible tuple under [key]. *)
val get : ctx -> string -> Storage.Table.Key.t -> Util.Value.t array option

(** [insert ctx tname tuple] buffers an insert; raises [Occ.Txn.Abort] on
    duplicate key. *)
val insert : ctx -> string -> Util.Value.t array -> unit

(** [update_key ctx tname key ~set] rewrites the tuple under [key] with
    [set]; [false] if the key is not visible. Raises [Occ.Txn.Abort] if
    [set] changes primary-key columns. *)
val update_key :
  ctx -> string -> Storage.Table.Key.t ->
  set:(Util.Value.t array -> Util.Value.t array) -> bool

(** [delete_key ctx tname key] buffers deletion; [false] if not visible. *)
val delete_key : ctx -> string -> Storage.Table.Key.t -> bool

(** {1 Scans}

    Bounds: [prefix] expands to the bounds covering all keys extending it and
    must not be combined with [lo]/[hi]. [where] filters on the visible
    tuple. [rev] scans descending. [limit] caps the returned rows (applied
    after filtering). *)

val scan :
  ctx -> string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  ?limit:int ->
  ?rev:bool ->
  unit ->
  Util.Value.t array list

(** Scan via a secondary index: rows return in index-key order (indexed
    columns, then primary key); [prefix]/[lo]/[hi] bound the {e secondary}
    key. Own buffered inserts are merged; witnesses are taken on the
    secondary index's leaves for phantom validation. *)
val scan_index :
  ctx -> string ->
  index:string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  ?limit:int ->
  ?rev:bool ->
  unit ->
  Util.Value.t array list

(** First row of [scan] (respecting [rev]), if any. *)
val first :
  ctx -> string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  ?rev:bool ->
  unit ->
  Util.Value.t array option

(** {1 Bulk updates and deletes} *)

(** Rewrite every matching row; returns the number updated. *)
val update :
  ctx -> string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  set:(Util.Value.t array -> Util.Value.t array) ->
  unit ->
  int

(** Delete every matching row; returns the number deleted. *)
val delete :
  ctx -> string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  unit ->
  int

(** {1 Aggregates} *)

(** [sum ctx tname col ...] sums a numeric column over matching rows
    (widening to float; [Null]s contribute 0). *)
val sum :
  ctx -> string -> string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  unit ->
  float

val count :
  ctx -> string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  unit ->
  int

(** Distinct values of a column over matching rows. *)
val distinct :
  ctx -> string -> string ->
  ?prefix:Storage.Table.Key.t ->
  ?lo:Storage.Table.Key.t ->
  ?hi:Storage.Table.Key.t ->
  ?where:Expr.t ->
  unit ->
  Util.Value.t list

(** Column accessor helpers for stored-procedure code. *)
val colv : ctx -> string -> string -> Util.Value.t array -> Util.Value.t
val seti : Util.Value.t array -> int -> Util.Value.t -> Util.Value.t array
