open Util

type charge_kind = [ `Read | `Write | `Scan_step ]

type ctx = {
  txn : Occ.Txn.t;
  container : int;
  catalog : Storage.Catalog.t;
  charge : charge_kind -> int -> unit;
  work : float -> unit;
  snapshot : int option;
      (* read-only snapshot epoch: reads resolve through version chains at
         this epoch with no read-set tracking, no node witnesses and no
         own-write overlay; mutations abort *)
}

let make_ctx ?snapshot ~txn ~container ~catalog ~charge ~work () =
  { txn; container; catalog; charge; work; snapshot }

let table ctx name =
  try Storage.Catalog.table ctx.catalog name
  with Not_found -> invalid_arg (Printf.sprintf "Exec: no such table %S" name)

let schema ctx name = (table ctx name).Storage.Table.schema

(* Node witnesses only matter for OCC validation; snapshot readers take a
   consistent cut by construction and skip them. *)
let note_node ctx w =
  if ctx.snapshot = None then Occ.Txn.note_node ctx.txn ~container:ctx.container w

let on_node_opt ctx =
  if ctx.snapshot = None then Some (note_node ctx) else None

(* Visibility of a physical record to this context: the transaction's view
   (own writes win, observation recorded) or the frozen snapshot's. *)
let vis ctx record =
  match ctx.snapshot with
  | None -> Occ.Txn.read ctx.txn ~container:ctx.container record
  | Some s -> Storage.Record.snapshot_read record ~snapshot:s

let ro_guard ctx =
  if ctx.snapshot <> None then
    raise (Occ.Txn.Abort "mutation inside a read-only (snapshot) procedure")

let get ctx tname key =
  let tbl = table ctx tname in
  ctx.charge `Read 1;
  match Occ.Txn.own_insert ctx.txn ~table:tbl ~key with
  | Some e -> Some e.Occ.Txn.wrec.Storage.Record.data
  | None -> (
    match Storage.Table.find ?on_node:(on_node_opt ctx) tbl key with
    | Some record -> vis ctx record
    | None -> None)

let insert ctx tname tuple =
  ro_guard ctx;
  let tbl = table ctx tname in
  Occ.Txn.insert ctx.txn ~container:ctx.container ~table:tbl tuple;
  ctx.charge `Write 1

let resolve_bounds tbl ~prefix ~lo ~hi =
  match prefix, lo, hi with
  | Some p, None, None ->
    let l, h = Storage.Table.key_prefix_bounds p in
    (Some l, Some h)
  | Some _, _, _ -> invalid_arg "Exec: prefix cannot be combined with lo/hi"
  | None, l, h ->
    ignore tbl;
    (l, h)

(* Materialize the visible rows of [tbl] within bounds, in scan order:
   committed rows as filtered through the transaction's read/write sets,
   merged with the transaction's own buffered inserts. [phys_limit], when
   set, stops the physical scan after that many visible rows — sound
   because merging the (complete) own-insert set and re-cutting to the
   limit can only drop rows from the far end of the scan. *)
let visible_rows ?phys_limit ?(rev = false) ctx tbl ~lo ~hi =
  let steps = ref 0 in
  let taken = ref 0 in
  let phys = ref [] in
  let visit record =
    incr steps;
    (match vis ctx record with
    | Some data ->
      phys := (Storage.Table.key_of_tuple tbl data, data) :: !phys;
      incr taken
    | None -> ());
    match phys_limit with Some n -> !taken < n | None -> true
  in
  if rev then Storage.Table.range_rev ?lo ?hi ~on_node:(note_node ctx) tbl ~f:visit
  else Storage.Table.range ?lo ?hi ~on_node:(note_node ctx) tbl ~f:visit;
  ctx.charge `Scan_step (Stdlib.max 1 !steps);
  let in_bounds k =
    (match lo with Some l -> Storage.Table.Key.compare l k <= 0 | None -> true)
    && match hi with Some h -> Storage.Table.Key.compare k h <= 0 | None -> true
  in
  let own =
    List.filter (fun (k, _) -> in_bounds k) (Occ.Txn.own_inserts_for ctx.txn ~table:tbl)
  in
  let rows = List.rev_append !phys own in
  let cmp (a, _) (b, _) =
    if rev then Storage.Table.Key.compare b a else Storage.Table.Key.compare a b
  in
  List.sort cmp rows

let matching ?phys_limit ?rev ctx tname ~prefix ~lo ~hi ~where =
  let tbl = table ctx tname in
  let lo, hi = resolve_bounds tbl ~prefix ~lo ~hi in
  let rows = visible_rows ?phys_limit ?rev ctx tbl ~lo ~hi in
  match where with
  | None -> (tbl, rows)
  | Some e ->
    let pred = Expr.compile_pred tbl.Storage.Table.schema e in
    (tbl, List.filter (fun (_, data) -> pred data) rows)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

(* Like visible_rows but iterating a secondary index: rows come back in
   secondary-key order. Visibility is subtler than on the primary index
   because a buffered update may change indexed columns, logically moving
   the row within the index: physical visits are re-keyed under the row's
   VISIBLE tuple and bounds-filtered (a row updated out of the scanned range
   disappears), and buffered updates/inserts whose visible secondary key
   falls in range are overlaid (a row updated into the range appears),
   deduplicated by primary key. *)
let visible_rows_index ?phys_limit ?(rev = false) ctx tbl sec ~lo ~hi =
  let in_bounds k =
    (match lo with Some l -> Storage.Table.Key.compare l k <= 0 | None -> true)
    && match hi with Some h -> Storage.Table.Key.compare k h <= 0 | None -> true
  in
  let steps = ref 0 in
  let taken = ref 0 in
  let by_pk = Hashtbl.create 32 in
  let add data =
    let k = Storage.Table.sec_key_of tbl sec data in
    if in_bounds k then begin
      Hashtbl.replace by_pk (Storage.Table.key_of_tuple tbl data) (k, data);
      true
    end
    else false
  in
  let visit record =
    incr steps;
    (match vis ctx record with
    | Some data -> if add data then incr taken
    | None -> ());
    match phys_limit with Some n -> !taken < n | None -> true
  in
  Storage.Table.scan_secondary ?lo ?hi ~rev ~on_node:(note_node ctx) tbl
    ~index:sec.Storage.Table.sec_name ~f:visit;
  ctx.charge `Scan_step (Stdlib.max 1 !steps);
  List.iter
    (fun (_, data) -> ignore (add data))
    (Occ.Txn.own_updates_for ctx.txn ~table:tbl);
  List.iter
    (fun (_, data) -> ignore (add data))
    (Occ.Txn.own_inserts_for ctx.txn ~table:tbl);
  let rows = Hashtbl.fold (fun _ kd acc -> kd :: acc) by_pk [] in
  let cmp (a, _) (b, _) =
    if rev then Storage.Table.Key.compare b a else Storage.Table.Key.compare a b
  in
  List.sort cmp rows

let scan_index ctx tname ~index ?prefix ?lo ?hi ?where ?limit ?(rev = false) ()
    =
  let tbl = table ctx tname in
  let sec = Storage.Table.secondary tbl index in
  let lo, hi = resolve_bounds tbl ~prefix ~lo ~hi in
  let phys_limit = match where with None -> limit | Some _ -> None in
  let rows = visible_rows_index ?phys_limit ~rev ctx tbl sec ~lo ~hi in
  let rows =
    match where with
    | None -> rows
    | Some e ->
      let pred = Expr.compile_pred tbl.Storage.Table.schema e in
      List.filter (fun (_, data) -> pred data) rows
  in
  let rows = match limit with Some n -> take n rows | None -> rows in
  List.map snd rows

let scan ctx tname ?prefix ?lo ?hi ?where ?limit ?(rev = false) () =
  (* Limit pushdown: without a residual predicate the physical scan can stop
     at the limit. *)
  let phys_limit = match where with None -> limit | Some _ -> None in
  let _, rows = matching ?phys_limit ~rev ctx tname ~prefix ~lo ~hi ~where in
  let rows = match limit with Some n -> take n rows | None -> rows in
  List.map snd rows

let first ctx tname ?prefix ?lo ?hi ?where ?rev () =
  match scan ctx tname ?prefix ?lo ?hi ?where ~limit:1 ?rev () with
  | [] -> None
  | row :: _ -> Some row

let check_key_stable tbl ~key data =
  if Storage.Table.Key.compare (Storage.Table.key_of_tuple tbl data) key <> 0
  then raise (Occ.Txn.Abort "update may not change primary-key columns")

let update_key ctx tname key ~set =
  ro_guard ctx;
  let tbl = table ctx tname in
  ctx.charge `Read 1;
  match Occ.Txn.own_insert ctx.txn ~table:tbl ~key with
  | Some e ->
    let data = set e.Occ.Txn.wrec.Storage.Record.data in
    check_key_stable tbl ~key data;
    e.Occ.Txn.wrec.Storage.Record.data <- data;
    ctx.charge `Write 1;
    true
  | None -> (
    match Storage.Table.find ~on_node:(note_node ctx) tbl key with
    | None -> false
    | Some record -> (
      match Occ.Txn.read ctx.txn ~container:ctx.container record with
      | None -> false
      | Some data ->
        let data' = set data in
        check_key_stable tbl ~key data';
        Occ.Txn.write ctx.txn ~container:ctx.container ~table:tbl ~key record
          data';
        ctx.charge `Write 1;
        true))

let delete_key ctx tname key =
  ro_guard ctx;
  let tbl = table ctx tname in
  ctx.charge `Read 1;
  match Occ.Txn.own_insert ctx.txn ~table:tbl ~key with
  | Some e ->
    Occ.Txn.delete ctx.txn ~container:ctx.container ~table:tbl ~key
      e.Occ.Txn.wrec;
    ctx.charge `Write 1;
    true
  | None -> (
    match Storage.Table.find ~on_node:(note_node ctx) tbl key with
    | None -> false
    | Some record -> (
      match Occ.Txn.read ctx.txn ~container:ctx.container record with
      | None -> false
      | Some _ ->
        Occ.Txn.delete ctx.txn ~container:ctx.container ~table:tbl ~key record;
        ctx.charge `Write 1;
        true))

let update ctx tname ?prefix ?lo ?hi ?where ~set () =
  let tbl, rows = matching ctx tname ~prefix ~lo ~hi ~where in
  ignore tbl;
  List.fold_left
    (fun n (key, _) -> if update_key ctx tname key ~set then n + 1 else n)
    0 rows

let delete ctx tname ?prefix ?lo ?hi ?where () =
  let _, rows = matching ctx tname ~prefix ~lo ~hi ~where in
  List.fold_left
    (fun n (key, _) -> if delete_key ctx tname key then n + 1 else n)
    0 rows

let sum ctx tname colname ?prefix ?lo ?hi ?where () =
  let tbl, rows = matching ctx tname ~prefix ~lo ~hi ~where in
  let i = Storage.Schema.column_index tbl.Storage.Table.schema colname in
  List.fold_left
    (fun acc (_, data) ->
      match data.(i) with
      | Value.Null -> acc
      | v -> acc +. Value.to_number v)
    0. rows

let count ctx tname ?prefix ?lo ?hi ?where () =
  let _, rows = matching ctx tname ~prefix ~lo ~hi ~where in
  List.length rows

let distinct ctx tname colname ?prefix ?lo ?hi ?where () =
  let tbl, rows = matching ctx tname ~prefix ~lo ~hi ~where in
  let i = Storage.Schema.column_index tbl.Storage.Table.schema colname in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (_, data) ->
      let v = data.(i) in
      if Hashtbl.mem seen v then None
      else begin
        Hashtbl.add seen v ();
        Some v
      end)
    rows

let colv ctx tname colname data =
  data.(Storage.Schema.column_index (schema ctx tname) colname)

let seti data i v =
  let d = Array.copy data in
  d.(i) <- v;
  d
