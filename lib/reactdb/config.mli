(** Deployment configuration: virtualization of database architecture (§3.3).

    A deployment fixes, at bootstrap time and without touching application
    code: how many containers exist, how many transaction executors each
    container owns, which container each reactor lives in (first-level
    mapping), how root transactions are routed to executors within a
    container (second-level mapping), and the multiprogramming level per
    executor.

    The three named strategies of §3.3 are provided as builders; arbitrary
    hybrids can be described directly. Configurations can also be parsed
    from the small text format used by [bin/reactdb_cli], fulfilling the
    "change a configuration file, not the application" claim. *)

(** Second-level routing of root transactions. [Round_robin] spreads roots
    over executors regardless of data placement; [Affinity] pins each root
    to its reactor's home executor; [Cost] (runtime backend only) scores
    candidate domains with the §2.4 cost model blended with live load
    signals and places the root on the cheapest one — the simulator treats
    [Cost] as [Affinity], since its virtual-time executors expose no live
    load to react to. *)
type router = Round_robin | Affinity | Cost

type t = {
  executors_per_container : int array;
      (** length = number of containers; entry = executors in it *)
  router : router;
  mpl : int;  (** max concurrently admitted root transactions per executor *)
  placement : string -> int;  (** reactor name -> container index *)
  affinity_slot : string -> int;
      (** reactor name -> executor slot (taken modulo the container's
          executor count); used by the [Affinity] router and for stable
          executor choice of cross-container sub-transactions *)
  machine_of : int -> int;
      (** container index -> machine id. Messages between containers on
          different machines pay {!Profile.t.cost_network}. Single-machine
          deployments map everything to machine 0 (the default). *)
}

(** [shared_everything ~executors ~affinity reactors] — one container,
    [executors] executors. With [affinity = false] this is strategy S1
    (round-robin routing); with [true] it is S2 (each reactor is pinned to
    an executor, assigned round-robin over the declaration order). *)
val shared_everything :
  executors:int -> affinity:bool -> ?mpl:int -> string list -> t

(** [shared_nothing groups] — strategy S3: one container with one executor
    per group; group [i]'s reactors are placed in container [i]. Whether the
    deployment behaves as shared-nothing-sync or -async is decided by the
    application programs (how they use futures), not by the config. *)
val shared_nothing : ?mpl:int -> string list list -> t

(** Fully explicit deployment. *)
val custom :
  executors_per_container:int array ->
  router:router ->
  ?mpl:int ->
  placement:(string -> int) ->
  ?affinity_slot:(string -> int) ->
  ?machine_of:(int -> int) ->
  unit ->
  t

(** [on_machines t machine_of] re-places [t]'s containers onto machines —
    the cluster story of §6: no application or deployment logic changes,
    only the physical mapping. *)
val on_machines : t -> (int -> int) -> t

val n_containers : t -> int
val total_executors : t -> int

(** Parse the textual config format. Lines: [strategy shared-nothing] |
    [strategy shared-everything], [executors N] (shared-everything),
    [affinity on|off], [mpl N], [groups a,b;c,d] (shared-nothing; reactors
    not listed fall into group 0 — or round-robin over groups when
    [groups auto N] is used with the reactor list given at build time).
    Comments start with [#]. [build spec reactors] instantiates the parsed
    spec against the declared reactor names. Raises [Invalid_argument] on
    malformed input. *)
module Spec : sig
  type spec

  val of_string : string -> spec
  val of_file : string -> spec
  val build : spec -> string list -> t
end
