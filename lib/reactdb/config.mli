(** Deployment configuration: virtualization of database architecture (§3.3).

    A deployment fixes, at bootstrap time and without touching application
    code: how many containers exist, how many transaction executors each
    container owns, which container each reactor lives in (first-level
    mapping), how root transactions are routed to executors within a
    container (second-level mapping), and the multiprogramming level per
    executor.

    The three named strategies of §3.3 are provided as builders; arbitrary
    hybrids can be described directly. Configurations can also be parsed
    from the small text format used by [bin/reactdb_cli], fulfilling the
    "change a configuration file, not the application" claim. *)

(** Second-level routing of root transactions. [Round_robin] spreads roots
    over executors regardless of data placement; [Affinity] pins each root
    to its reactor's home executor; [Cost] (runtime backend only) scores
    candidate domains with the §2.4 cost model blended with live load
    signals and places the root on the cheapest one — the simulator treats
    [Cost] as [Affinity], since its virtual-time executors expose no live
    load to react to. *)
type router = Round_robin | Affinity | Cost

(** Deployment morphing of transaction formulations (Shah 2022): whether
    multi-future-capable procedures should run their {e sequential}
    (call-then-get one at a time) or {e parallel} (fan out, then collect)
    formulation on this deployment. Workload request builders that offer
    both formulations consult this knob (e.g.
    [Workloads.Smallbank.formulation_for]), fulfilling the "morph the same
    program onto a different deployment by changing the config" claim for
    intra-transaction parallelism.

    [Auto] folds the morph decision into the runtime's cost-aware router:
    each root transaction is resolved to [Sequential] or [Parallel] at
    admission from live load signals (queue depth and executor busyness) —
    fan out when the deployment has idle capacity to absorb the parallel
    sub-calls, stay sequential when executors are saturated and the
    fan-out would only add coordination overhead. Workload request
    builders pass [Auto] through and the backend resolves it per root via
    the declared {!Reactor.rtype.rt_morphs} pairs. *)
type morph = Sequential | Parallel | Auto

type t = {
  executors_per_container : int array;
      (** length = number of containers; entry = executors in it *)
  router : router;
  mpl : int;  (** max concurrently admitted root transactions per executor *)
  placement : string -> int;  (** reactor name -> container index *)
  affinity_slot : string -> int;
      (** reactor name -> executor slot (taken modulo the container's
          executor count); used by the [Affinity] router and for stable
          executor choice of cross-container sub-transactions *)
  machine_of : int -> int;
      (** container index -> machine id. Messages between containers on
          different machines pay {!Profile.t.cost_network}. Single-machine
          deployments map everything to machine 0 (the default). *)
  morph : morph;
      (** formulation morph for multi-future-capable procedures; builders
          default to [Sequential], {!shared_nothing_async} selects
          [Parallel] *)
}

(** [shared_everything ~executors ~affinity reactors] — one container,
    [executors] executors. With [affinity = false] this is strategy S1
    (round-robin routing); with [true] it is S2 (each reactor is pinned to
    an executor, assigned round-robin over the declaration order). *)
val shared_everything :
  executors:int -> affinity:bool -> ?mpl:int -> string list -> t

(** [shared_nothing groups] — strategy S3: one container with one executor
    per group; group [i]'s reactors are placed in container [i]. The
    deployment behaves as shared-nothing-{e sync}: procedures offering both
    formulations run sequentially. Application programs that hard-code
    their future usage are unaffected by the morph knob. *)
val shared_nothing : ?mpl:int -> string list list -> t

(** [shared_nothing_async groups] — the same placement as
    {!shared_nothing}, but with [morph = Parallel]: multi-future-capable
    procedures fan their sub-calls out concurrently and join them with
    {!Reactor.ctx.collect}. This is the shared-nothing-async deployment the
    intra-transaction-parallelism evaluation morphs into. *)
val shared_nothing_async : ?mpl:int -> string list list -> t

(** Fully explicit deployment. *)
val custom :
  executors_per_container:int array ->
  router:router ->
  ?mpl:int ->
  placement:(string -> int) ->
  ?affinity_slot:(string -> int) ->
  ?machine_of:(int -> int) ->
  ?morph:morph ->
  unit ->
  t

(** [on_machines t machine_of] re-places [t]'s containers onto machines —
    the cluster story of §6: no application or deployment logic changes,
    only the physical mapping. *)
val on_machines : t -> (int -> int) -> t

(** [with_morph t m] re-morphs a deployment without changing placement —
    the sequential and parallel variants of one deployment differ only in
    this knob, so A/B sweeps hold everything else fixed. *)
val with_morph : t -> morph -> t

val morph_name : morph -> string

val n_containers : t -> int
val total_executors : t -> int

(** Parse the textual config format. Lines: [strategy shared-nothing] |
    [strategy shared-nothing-async] | [strategy shared-everything],
    [morph sequential|parallel|auto] (formulation morph, orthogonal to the
    strategy line; [shared-nothing-async] implies [morph parallel]),
    [executors N] (shared-everything),
    [affinity on|off], [mpl N], [groups a,b;c,d] (shared-nothing; reactors
    not listed fall into group 0 — or round-robin over groups when
    [groups auto N] is used with the reactor list given at build time).
    Comments start with [#]. [build spec reactors] instantiates the parsed
    spec against the declared reactor names. Raises [Invalid_argument] on
    malformed input. *)
module Spec : sig
  type spec

  val of_string : string -> spec
  val of_file : string -> spec
  val build : spec -> string list -> t
end
