(** The ReactDB runtime (§3): containers, transaction executors, routers,
    transport, commit coordination — all running on the simulated machine.

    A {!t} is bootstrapped from a reactor database declaration, a deployment
    {!Config.t} and a hardware {!Profile.t} against a simulation engine.
    Client code (workers, tests, examples) runs as engine processes and
    submits root transactions with {!exec_txn}, which blocks the calling
    process until the transaction commits or aborts and reports its latency
    and cost-component breakdown.

    Execution model (§3.2): each transaction executor is a simulated core
    with a request queue. Root transactions are admission-controlled by the
    executor's MPL; sub-transactions and commit-protocol steps bypass
    admission (they belong to already-admitted roots) but still contend for
    the core. A (sub-)transaction holds its executor's core while running
    and releases it when blocking on a remote future — cooperative
    multitasking; re-acquisition on wake pays the receive cost Cr.
    Sub-transactions on reactors in the caller's container (including
    self-calls) execute synchronously inline in the caller's executor.
    Single-container transactions commit with container-local Silo
    validation; cross-container transactions run two-phase commit whose
    prepare is container-local validation with locks held. *)

type t

(** Per-transaction cost-component breakdown (the buckets of Figure 6).
    [overhead] covers input generation, client dispatch and commit —
    reported together as the paper's "commit + input-gen" bucket. *)
type breakdown = {
  mutable bd_sync_exec : float;
  mutable bd_cs : float;
  mutable bd_cr : float;
  mutable bd_async_exec : float;
  mutable bd_overhead : float;
}

type outcome = {
  result : (Util.Value.t, string) result;
  latency : float;  (** µs, input generation through commit/abort *)
  breakdown : breakdown;
  containers_touched : int;
  abort_cause : Obs.Abort.cause option;
      (** structured abort taxonomy for failed attempts; [None] on commit.
          Drives the retry policy in [Harness] ([Obs.Abort.transient]). *)
  snapshot : int option;
      (** the frozen epoch a read-only root executed against, [None] for
          ordinary OCC transactions *)
}

(** [create engine decl config profile] validates [decl], builds containers
    and executors, applies loaders, and starts executor dispatchers.
    Call before [Engine.run]. *)
val create :
  Sim.Engine.t -> Reactor.decl -> Config.t -> Profile.t -> t

val engine : t -> Sim.Engine.t
val config : t -> Config.t
val profile : t -> Profile.t

(** [exec_txn t ~reactor ~proc ~args] submits a root transaction and blocks
    the calling engine process until it completes. Aborted transactions
    (user aborts, dangerous call structures, validation failures) yield
    [Error reason]; they are fully rolled back. [retry] (default 0) is the
    attempt's retry index, recorded in the lifecycle trace and abort
    cause — the engine itself never retries.

    [deadline_us] gives the root a latency budget in {e virtual}
    microseconds from submission. The deadline propagates to every
    cross-container sub-call and is checked at phase boundaries (dequeue,
    sub-call start, resume after an await, implicit sync, commit entry,
    each 2PC prepare); an expired root aborts through the normal
    typed-abort unwinding — children awaited, locks released, 2PC
    participants rolled back — with a non-transient [Obs.Abort.Timeout]
    cause.

    If {!set_mailbox_cap} set a bound and the home executor's queue is at
    it, the root is shed {e at admission} with an [Obs.Abort.Overloaded]
    outcome (also non-transient) without ever enqueuing. *)
val exec_txn :
  ?retry:int ->
  ?deadline_us:float ->
  t ->
  reactor:string ->
  proc:string ->
  args:Util.Value.t list ->
  outcome

(** Direct physical access to a reactor's catalog — for loaders, tests and
    integrity checks only; bypasses concurrency control. *)
val catalog_of : t -> string -> Storage.Catalog.t

(** Container index hosting a reactor. *)
val container_of : t -> string -> int

(** {1 Live reconfiguration (online reactor migration — see DESIGN.md §11)}

    [migrate t ~reactor ~dst] moves a reactor to container [dst] while
    traffic runs, and returns the migration pause in virtual µs. The
    protocol mirrors the parallel runtime's, collapsed onto the engine's
    single thread: {e mark} (roots and sub-calls admitted after the mark
    that target the reactor suspend at a forwarding stub), {e drain} (wait
    until every pre-mark root in the database has completed; the deadline
    machinery is the straggler backstop), {e log} (a {!Wal.Migrate} record
    is appended write-ahead of the flip, so {!Faultsim.recover} replays
    placement deterministically), {e flip} (one re-homing write, atomic in
    virtual time — catalogs are keyed by reactor, so records, secondary
    indexes and snapshot version chains move with the pointer and snapshot
    readers are never broken), {e replay} (parked stub traffic resumes
    against the new placement).

    Because execution is deterministic in virtual time and placement never
    affects transaction results, a serial workload interleaved with
    migrations leaves the database byte-identical ({!Faultsim.diff}) to
    the same workload on a static deployment — the virtualization claim of
    the paper, checked by [bench/elasticity.exe].

    Migrations are serialized; concurrent callers queue. Must be called
    from inside the engine (it suspends). Moving a reactor to its current
    container returns [0.] without marking. Raises [Invalid_argument] on
    an unknown reactor or container index. *)
val migrate : t -> reactor:string -> dst:int -> float

(** Migrations completed since bootstrap. *)
val n_migrations : t -> int

(** Placement version: bumped by every completed migration. Routers and
    tests use it to observe flips. *)
val placement_epoch : t -> int

(** Pause (virtual µs, mark → flip) of the most recent migration. *)
val migration_pause_last_us : t -> float

(** Current [(reactor, container)] placement, in declaration order. *)
val placements : t -> (string * int) list

(** Bootstrap-time only: silently re-home reactors (no drain, no log
    record) to resume a recovered deployment from
    [Faultsim.rc_placements]. Unknown reactors and out-of-range containers
    are ignored. Never call with traffic in flight — it bypasses the
    migration protocol. *)
val apply_placements : t -> (string * int) list -> unit

(** {1 Snapshot reads (multi-version, epoch-based — see DESIGN.md §10)}

    Procedures declared read-only on their reactor type
    ({!Reactor.rtype.rt_readonly}) execute against a frozen {e snapshot
    epoch} [S = current epoch - 1]: every commit of epoch [<= S] completed
    at an earlier virtual instant, so [S] names an immutable, consistent
    prefix. Reads resolve through per-record version chains; the commit
    protocol is skipped entirely — no read-set, no locks, no validation,
    no 2PC — making read-only roots abort-free by construction.

    While enabled (the default), every install also retires overwritten
    versions into chains and trims them to the {e GC horizon}: the
    minimum live snapshot epoch, or the next epoch to be issued when no
    reader is live — so chains stay bounded under hot keys. *)

(** [set_snapshots t false] disables snapshot execution {e and} version
    chain maintenance: declared-read-only procedures fall back to the
    ordinary OCC read path (the benchmark baseline), and installs revert
    to single-version behavior. *)
val set_snapshots : t -> bool -> unit

val snapshots_enabled : t -> bool

(** The epoch the next read-only root would freeze ([current epoch - 1],
    clamped at 0). *)
val safe_snapshot_epoch : t -> int

(** Pin / unpin a snapshot epoch manually — what a read-only root does
    around its body; exposed for tests exercising version GC. [release]
    of an epoch not held is a no-op. *)
val acquire_snapshot : t -> int

val release_snapshot : t -> int -> unit

(** The horizon installs currently trim version chains to. *)
val gc_horizon : t -> int

(** Committed roots that ran as read-only snapshot transactions (since
    bootstrap / {!reset_stats}). *)
val n_readonly_commits : t -> int

(** [(sequential, parallel)] resolution counts of the [Config.Auto]
    morph router (since bootstrap / {!reset_stats}). *)
val auto_morphs : t -> int * int

(** {1 Statistics} *)

val n_committed : t -> int
val n_aborted : t -> int

(** Aborts by typed class: "user" ({!Occ.Txn.Abort}), "validation"
    (execution-time conflicts, {!Occ.Txn.Conflict}, plus commit-time
    validation/2PC failures), "dangerous-structure"
    ({!Reactor.Dangerous_call}, §2.2.4). Classification is by exception
    constructor, never by message text. *)
val aborts_by_reason : t -> (string * int) list

(** Fraction of virtual time each executor's core was busy since bootstrap,
    in executor order (container-major). *)
val utilizations : t -> float array

(** Reset commit/abort counters and utilization accumulators (used between
    warm-up and measurement epochs). *)
val reset_stats : t -> unit

(** {1 Durability (extension beyond the paper — see DESIGN.md)} *)

(** [attach_wal t log] makes every subsequent commit append a redo record
    (TID + physical after-images) to [log]. Recovery: load a fresh database
    from the same declaration, then [Wal.replay (Wal.entries log)
    ~catalog_of:(catalog_of fresh_db)].

    With [~durable:true], commits additionally observe Silo's epoch
    durability: [exec_txn] returns a committed result only once a group
    flush covering the transaction's log epoch has completed. Flushes run
    at epoch boundaries (every 40 ms of virtual time), are scheduled on
    demand, and are counted in {!n_log_flushes}. Aborts and transactions
    that logged nothing (read-only) return immediately. *)
val attach_wal : ?durable:bool -> t -> Wal.t -> unit

(** Group-commit flushes performed since bootstrap / {!reset_stats}. *)
val n_log_flushes : t -> int

(** Highest epoch whose redo records a group-commit flush has covered.
    In durable mode every {e acknowledged} commit's epoch is [<= this]
    (the client waited for the covering flush), so the log prefix up to
    this epoch contains every acknowledged transaction. Replication ships
    this prefix, and failover salvages up to it (DESIGN.md §12). *)
val durable_epoch : t -> int

(** {1 Replication fencing (generation-stamped admission — DESIGN.md §12)}

    A primary serves at a {e generation} (default 0). When a replica is
    promoted it takes generation + 1; the old primary, were it to limp
    back, is {!fence}d: every subsequent {!exec_txn} is refused at
    admission with a typed [Internal] outcome ("fenced: stale primary
    generation") before it touches a queue or a record, and an in-flight
    two-phase commit rolls back instead of installing. The
    [Chaos.Kill_primary] injection point fences the engine mid-2PC,
    modelling a coordinator crash whose decision never installed. *)

val generation : t -> int

val set_generation : t -> int -> unit

(** Mark this primary's generation stale. Irreversible for the lifetime
    of the engine — a fenced primary only ever refuses. *)
val fence : t -> unit

val fenced : t -> bool

(** Admissions refused while fenced (exact attempt accounting for
    failover drills). *)
val n_fenced_refusals : t -> int

(** First WAL device failure ([Wal.Io_error]) observed by the group-commit
    flusher, if any. Commits whose own append fails abort with a typed
    [Internal] cause; a flush failure after append is recorded here (the
    waiting transactions still complete — durability for that epoch is
    lost, which the caller can detect through this accessor). *)
val wal_error : t -> string option

(** {1 Overload protection and chaos injection}

    [attach_chaos t chaos] installs a seeded fault injector (see
    {!Chaos}); the simulator probes it at its catalogued injection points
    — [Stall_flush], charged as {e virtual} delay inside the group-commit
    flusher before the device flush, and [Kill_primary], which fences the
    engine mid-2PC (votes resolved, nothing installed — see the fencing
    section above). Delivery/prepare stalls are wall-clock concepts
    probed by the parallel runtime.

    [set_mailbox_cap t (Some cap)] bounds every executor's request queue
    for {e root admission only}: a root arriving when its home executor
    already holds [cap] queued messages is shed with an
    [Obs.Abort.Overloaded] outcome. Sub-transactions and commit-protocol
    steps are never shed. [None] (the default) restores unbounded
    admission. *)
val attach_chaos : t -> Chaos.t -> unit

val set_mailbox_cap : t -> int option -> unit

(** {1 Observability}

    [attach_obs t collector] turns on transaction-lifecycle tracing: every
    subsequent attempt allocates an [Obs.Trace.t], stamps the lifecycle
    phases in {e virtual} microseconds (create the collector with
    [~clock:Obs.Virtual]), and folds into [collector] keyed by the root
    reactor's home container. With no collector attached the trace sink is
    [Obs.Trace.none] and the per-attempt cost is a few predictable
    branches. *)
val attach_obs : t -> Obs.Collector.t -> unit

(** {1 History recording (for serializability checking in tests)}

    When enabled, every committed transaction appends (txn id, TID,
    container set, read set, write set) to the history log. *)

val enable_history : t -> unit

type hist_entry = {
  h_txn : int;
  h_tid : int;
  h_reads : (int * int) list;  (** (record rid, observed TID) *)
  h_writes : int list;  (** record rids written *)
}

val history : t -> hist_entry list
