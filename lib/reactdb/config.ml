type router = Round_robin | Affinity | Cost

type morph = Sequential | Parallel | Auto

type t = {
  executors_per_container : int array;
  router : router;
  mpl : int;
  placement : string -> int;
  affinity_slot : string -> int;
  machine_of : int -> int;
  morph : morph;
}

let default_mpl = 8

(* Stable slot assignment: position in the declaration order. Unknown
   reactors (never the case in well-formed apps) hash. *)
let slot_of_list reactors =
  let tbl = Hashtbl.create (List.length reactors) in
  List.iteri (fun i r -> Hashtbl.replace tbl r i) reactors;
  fun r ->
    match Hashtbl.find_opt tbl r with
    | Some i -> i
    | None -> Hashtbl.hash r

let shared_everything ~executors ~affinity ?(mpl = default_mpl) reactors =
  if executors <= 0 then invalid_arg "Config: executors must be positive";
  {
    executors_per_container = [| executors |];
    router = (if affinity then Affinity else Round_robin);
    mpl;
    placement = (fun _ -> 0);
    affinity_slot = slot_of_list reactors;
    machine_of = (fun _ -> 0);
    morph = Sequential;
  }

let shared_nothing ?(mpl = default_mpl) groups =
  if groups = [] then invalid_arg "Config: no reactor groups";
  let tbl = Hashtbl.create 64 in
  List.iteri
    (fun ci group -> List.iter (fun r -> Hashtbl.replace tbl r ci) group)
    groups;
  let placement r =
    match Hashtbl.find_opt tbl r with
    | Some c -> c
    | None -> invalid_arg (Printf.sprintf "Config: reactor %S not placed" r)
  in
  {
    executors_per_container = Array.make (List.length groups) 1;
    router = Affinity;
    mpl;
    placement;
    affinity_slot = (fun _ -> 0);
    machine_of = (fun _ -> 0);
    morph = Sequential;
  }

let shared_nothing_async ?mpl groups =
  { (shared_nothing ?mpl groups) with morph = Parallel }

let custom ~executors_per_container ~router ?(mpl = default_mpl) ~placement
    ?(affinity_slot = Hashtbl.hash) ?(machine_of = fun _ -> 0)
    ?(morph = Sequential) () =
  if Array.length executors_per_container = 0 then
    invalid_arg "Config: need at least one container";
  Array.iter
    (fun n -> if n <= 0 then invalid_arg "Config: executors must be positive")
    executors_per_container;
  { executors_per_container; router; mpl; placement; affinity_slot; machine_of;
    morph }

let on_machines t machine_of = { t with machine_of }
let with_morph t morph = { t with morph }

let morph_name = function
  | Sequential -> "sequential"
  | Parallel -> "parallel"
  | Auto -> "auto"

let n_containers t = Array.length t.executors_per_container
let total_executors t = Array.fold_left ( + ) 0 t.executors_per_container

module Spec = struct
  type strategy = SE | SN

  type spec = {
    strategy : strategy;
    executors : int;
    affinity : bool;
    smpl : int;
    groups : [ `Auto of int | `Explicit of string list list ];
    smorph : morph;
  }

  let default_spec =
    { strategy = SE; executors = 1; affinity = true; smpl = default_mpl;
      groups = `Auto 1; smorph = Sequential }

  let of_string text =
    let lines = String.split_on_char '\n' text in
    List.fold_left
      (fun spec line ->
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let words =
          List.filter (fun w -> w <> "")
            (String.split_on_char ' ' (String.trim line))
        in
        match words with
        | [] -> spec
        | [ "strategy"; "shared-everything" ] -> { spec with strategy = SE }
        | [ "strategy"; "shared-nothing" ] -> { spec with strategy = SN }
        | [ "strategy"; "shared-nothing-async" ] ->
          { spec with strategy = SN; smorph = Parallel }
        | [ "morph"; "sequential" ] -> { spec with smorph = Sequential }
        | [ "morph"; "parallel" ] -> { spec with smorph = Parallel }
        | [ "morph"; "auto" ] -> { spec with smorph = Auto }
        | [ "executors"; n ] -> { spec with executors = int_of_string n }
        | [ "affinity"; "on" ] -> { spec with affinity = true }
        | [ "affinity"; "off" ] -> { spec with affinity = false }
        | [ "mpl"; n ] -> { spec with smpl = int_of_string n }
        | [ "groups"; "auto"; n ] ->
          { spec with groups = `Auto (int_of_string n) }
        | [ "groups"; g ] ->
          let groups =
            List.map
              (fun grp ->
                List.filter (fun r -> r <> "") (String.split_on_char ',' grp))
              (String.split_on_char ';' g)
          in
          { spec with groups = `Explicit groups }
        | _ -> invalid_arg (Printf.sprintf "Config.Spec: bad line %S" line))
      default_spec lines

  let of_file path =
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    of_string s

  let build spec reactors =
    let base =
      match spec.strategy with
      | SE ->
        shared_everything ~executors:spec.executors ~affinity:spec.affinity
          ~mpl:spec.smpl reactors
      | SN ->
        let groups =
          match spec.groups with
          | `Explicit gs -> gs
          | `Auto n ->
            (* Deal reactors round-robin over n containers. *)
            let buckets = Array.make n [] in
            List.iteri (fun i r -> buckets.(i mod n) <- r :: buckets.(i mod n))
              reactors;
            Array.to_list (Array.map List.rev buckets)
        in
        shared_nothing ~mpl:spec.smpl groups
    in
    with_morph base spec.smorph
end
