open Sim

type breakdown = {
  mutable bd_sync_exec : float;
  mutable bd_cs : float;
  mutable bd_cr : float;
  mutable bd_async_exec : float;
  mutable bd_overhead : float;
}

let zero_breakdown () =
  { bd_sync_exec = 0.; bd_cs = 0.; bd_cr = 0.; bd_async_exec = 0.;
    bd_overhead = 0. }

type outcome = {
  result : (Util.Value.t, string) result;
  latency : float;
  breakdown : breakdown;
  containers_touched : int;
  abort_cause : Obs.Abort.cause option;
  snapshot : int option;
      (* the frozen epoch this root read from, when it ran as a read-only
         snapshot transaction *)
}

type executor = {
  xid : int;
  cid : int;
  queue : (unit -> unit) Engine.Mailbox.mb;
  core_waiters : (unit -> unit) Queue.t;
  mutable core_busy : bool;
  mutable active_roots : int;
  mutable slot_waiter : (unit -> unit) option;
  mutable busy_accum : float;
  mutable held_since : float;
}

type container = { mutable rr : int; cexecutors : executor array }

type rstate = {
  rname : string;
  rtype : Reactor.rtype;
  rcatalog : Storage.Catalog.t;
  mutable home : int;
      (* current placement; flipped atomically (in virtual time) by
         [migrate] — every router/dispatch decision re-reads it *)
  mutable cache_recency : int list;
      (* executors that recently touched this reactor's data, most recent
         first; drives a graded cache-miss penalty (warmest = free, colder
         positions pay proportionally, absent = full penalty) *)
}

(* One in-progress migration: roots (and sub-calls of roots) admitted after
   the mark — generation strictly greater than [mg_cutoff] — park here and
   resume once the placement flips. *)
type mig = { mg_cutoff : int; mutable mg_parked : (unit -> unit) list }

type hist_entry = {
  h_txn : int;
  h_tid : int;
  h_reads : (int * int) list;
  h_writes : int list;
}

type t = {
  eng : Engine.t;
  decl : Reactor.decl;
  cfg : Config.t;
  prof : Profile.t;
  containers : container array;
  reactors : (string, rstate) Hashtbl.t;
  mutable txn_counter : int;
  mutable committed : int;
  mutable aborted : int;
  abort_reasons : (string, int) Hashtbl.t;
  mutable record_history : bool;
  mutable hist : hist_entry list;
  mutable stats_since : float;
  table_owner : (int, string * string) Hashtbl.t;
      (* table uid -> (reactor, table name), for redo logging *)
  mutable wal : Wal.t option;
  mutable durable : bool;
      (* epoch group commit: release a committed result to the client only
         once the log records of its epoch are flushed (Silo's epoch
         durability) *)
  mutable flushed_epoch : int;
  mutable flush_pending : bool;
  mutable epoch_waiters : (int * (unit -> unit)) list;
  mutable n_flushes : int;
  mutable wal_error : string option;
      (* first WAL device failure seen by the group-commit flusher; the
         run continues with durability degraded rather than crashing *)
  mutable obs : Obs.Collector.t option;
  mutable chaos : Chaos.t;
  mutable mailbox_cap : int option;
      (* root admission bound per executor request queue; [None] =
         unbounded (sheds surface as [Obs.Abort.Overloaded] outcomes) *)
  mutable snapshots_enabled : bool;
      (* when set, installs publish version chains and declared-read-only
         procedures run against a frozen snapshot epoch; off = the
         single-version OCC-everywhere behavior (benchmark baseline) *)
  snap_live : (int, int) Hashtbl.t;
      (* live snapshot readers per snapshot epoch; the GC horizon is the
         minimum live epoch *)
  mutable n_ro_commits : int;
  mutable auto_seq : int;
  mutable auto_par : int;
      (* morph-Auto resolution counts: roots routed to the sequential /
         parallel formulation *)
  rorder : string list;
      (* reactor declaration order, for deterministic [placements] *)
  (* -- live reconfiguration (DESIGN.md §11) ----------------------------
     Mirrors the parallel runtime's protocol, collapsed to the engine's
     single thread: a migration marks the reactor (bumping [mig_gen]),
     drains every root of the pre-mark generation, logs a [Wal.Migrate]
     record, flips [rstate.home] and replays the parked stub traffic.
     The two-slot parity counters suffice because [mig_busy] serializes
     migrations, so at most two generations are ever live. *)
  mutable mig_gen : int;
  mig_inflight : int array; (* length 2, indexed by generation parity *)
  mutable mig_drain : (int * (unit -> unit)) option;
      (* (parity, waker): the migrating coroutine waiting for that
         generation slot to empty *)
  migrating : (string, mig) Hashtbl.t;
  mutable mig_busy : bool;
  mutable mig_waiters : (unit -> unit) list;
  mutable placement_epoch : int;
  mutable n_migrations : int;
  mutable mig_pause_last : float;
  (* -- replication / failover (DESIGN.md §12) --------------------------
     Generation-stamped admission, mirroring the migration drain's
     [mig_gen] pattern at the whole-primary scale: a primary serves at
     generation [prim_gen]; once [fenced] (a newer generation was
     promoted, or the Kill_primary chaos probe fired), every admission is
     refused with a typed error and an in-flight 2PC may no longer
     install. *)
  mutable prim_gen : int;
  mutable fenced : bool;
  mutable n_fenced : int; (* admissions refused while fenced *)
}

let engine t = t.eng
let config t = t.cfg
let profile t = t.prof

(* ------------------------------------------------------------------ *)
(* Core (CPU) ownership: one coroutine runs on an executor at a time.
   Blocking operations release the core; release transfers ownership to the
   longest-waiting coroutine, keeping the core busy without gaps. *)

let acquire_core ex =
  if ex.core_busy then
    Engine.suspend (fun waker -> Queue.add waker ex.core_waiters);
  ex.core_busy <- true;
  ex.held_since <- Engine.current_time ()

let release_core ex =
  ex.busy_accum <- ex.busy_accum +. (Engine.current_time () -. ex.held_since);
  if Queue.is_empty ex.core_waiters then ex.core_busy <- false
  else (Queue.take ex.core_waiters) ()

(* ------------------------------------------------------------------ *)
(* Root transaction state, shared by all its (sub-)transactions. *)

type subresult = (Util.Value.t, exn) result

type sub = { sfid : int; siv : subresult Engine.Ivar.ivar }

(* Typed abort classification, replacing substring matching on messages: a
   user abort whose text happens to contain "duplicate key" must still be
   counted as a user abort. [Ab_validation] is commit-time (OCC validation
   or 2PC prepare failure); [Ab_conflict] is an execution-time concurrency
   conflict (duplicate-key race) — both land in the "validation" bucket. *)
type abort_class =
  | Ab_user
  | Ab_conflict
  | Ab_validation
  | Ab_dangerous
  | Ab_timeout
  | Ab_overload
  | Ab_internal

let classify_exn = function
  | Occ.Txn.Abort m -> Some (Ab_user, m)
  | Occ.Txn.Conflict m -> Some (Ab_conflict, m)
  | Reactor.Dangerous_call m -> Some (Ab_dangerous, m)
  | Obs.Abort.Timed_out m -> Some (Ab_timeout, m)
  | _ -> None

let bucket_of_class = function
  | Ab_user -> "user"
  | Ab_conflict | Ab_validation -> "validation"
  | Ab_dangerous -> "dangerous-structure"
  | Ab_timeout -> "timeout"
  | Ab_overload -> "overloaded"
  | Ab_internal -> "internal"

let obs_kind_of_class = function
  | Ab_user -> Obs.Abort.User
  | Ab_conflict -> Obs.Abort.Conflict
  | Ab_validation -> Obs.Abort.Internal (* refined by fail_reason when known *)
  | Ab_dangerous -> Obs.Abort.Dangerous
  | Ab_timeout -> Obs.Abort.Timeout
  | Ab_overload -> Obs.Abort.Overloaded
  | Ab_internal -> Obs.Abort.Internal

let obs_kind_of_fail = function
  | Occ.Commit.Lock_busy -> Obs.Abort.Lock_busy
  | Occ.Commit.Stale_read -> Obs.Abort.Stale_read
  | Occ.Commit.Node_changed -> Obs.Abort.Node_changed
  | Occ.Commit.Key_exists -> Obs.Abort.Key_exists

type root = {
  txn : Occ.Txn.t;
  rgen : int;
      (* migration generation this root was admitted in; a sub-call it
         issues to a reactor marked with an older cutoff parks at the stub *)
  rsnapshot : int option;
      (* frozen snapshot epoch when this root runs read-only; propagates to
         every sub-call's query context, so cross-container fan-outs read
         the same consistent cut *)
  bd : breakdown;
  tr : Obs.Trace.t; (* lifecycle trace; Obs.Trace.none when no collector *)
  deadline : float;
      (* absolute virtual-time deadline; [infinity] when the root has no
         deadline, keeping every check one float compare *)
  active_set : (string, unit) Hashtbl.t;
  mutable exec_of_container : (int * executor) list;
  mutable last_call : int;
  mutable call_ctr : int;
  mutable worked_since_call : bool;
  mutable doomed : (abort_class * string) option;
      (* set when any sub-transaction aborted: the root may not commit even
         if application code swallowed the exception (§2.2.3) *)
  mutable logged_epoch : int option;
      (* epoch of this root's redo record, once appended to the WAL *)
}

let deadline_expired root =
  root.deadline < Float.infinity && Engine.current_time () > root.deadline

(* Deadline checks sit at phase boundaries only — admission, body start,
   sub-call start, resume after an await, implicit sync, commit entry, 2PC
   prepare — so an expired deadline always unwinds through the same typed
   abort path as any other abort. *)
let check_deadline root ~where =
  if deadline_expired root then
    raise (Obs.Abort.Timed_out ("deadline expired " ^ where))

(* Invocation frame: one (sub-)transaction execution on one reactor. *)
type frame = {
  froot : root;
  frstate : rstate;
  fex : executor;
  on_root_path : bool;
  mutable children : sub list;
  fpenalty : float; (* cache-miss penalty fraction for this invocation *)
}

let reactor_state db name =
  match Hashtbl.find_opt db.reactors name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "ReactDB: unknown reactor %S" name)

let route db rst =
  let cont = db.containers.(rst.home) in
  let n = Array.length cont.cexecutors in
  match db.cfg.router with
  | Config.Round_robin ->
    cont.rr <- cont.rr + 1;
    cont.cexecutors.((cont.rr - 1) mod n)
  | Config.Affinity | Config.Cost ->
    (* Cost routing reacts to live queue depths, which virtual-time
       executors don't expose; the simulator degrades it to affinity. *)
    cont.cexecutors.(db.cfg.affinity_slot rst.rname mod n)

(* ------------------------------------------------------------------ *)
(* Live-reconfiguration gates (DESIGN.md §11). [mig_register] pins a root
   into the current migration generation for its whole lifetime;
   [mig_retire] drops the pin and fires the drain waker when the slot a
   migration is waiting on empties. [mig_stub_park] suspends the calling
   coroutine at a migrating reactor's forwarding stub; it resumes after the
   placement flip, so the caller's next read of [rst.home] sees the new
   container. Single-threaded engine: no atomicity concerns, the counters
   are plain ints. *)

let mig_register db =
  let g = db.mig_gen in
  db.mig_inflight.(g land 1) <- db.mig_inflight.(g land 1) + 1;
  g

let mig_retire db g =
  let p = g land 1 in
  db.mig_inflight.(p) <- db.mig_inflight.(p) - 1;
  match db.mig_drain with
  | Some (dp, w) when dp = p && db.mig_inflight.(p) = 0 ->
    db.mig_drain <- None;
    w ()
  | _ -> ()

let mig_stub_park m =
  Engine.suspend (fun waker -> m.mg_parked <- waker :: m.mg_parked)

(* Silo epoch length in virtual µs: TID epochs advance on this boundary,
   and so does the durable-mode group-commit flush. *)
let epoch_len_us = 40_000.

let current_epoch db = 1 + int_of_float (Engine.now db.eng /. epoch_len_us)

(* ------------------------------------------------------------------ *)
(* Snapshot epochs. A read-only root freezes at S = current epoch - 1:
   every commit of epoch <= S finished at an earlier virtual instant
   (commits are atomic events and the TID epoch only advances at the
   boundary), so epoch S is a fully committed, immutable prefix. Versions
   older than the minimum live snapshot epoch (or, with no readers, older
   than the next S to be issued) can never be requested again — that
   minimum is the GC horizon installs trim chains to. *)

let safe_snapshot_epoch db = Stdlib.max 0 (current_epoch db - 1)

let acquire_snapshot db =
  let s = safe_snapshot_epoch db in
  Hashtbl.replace db.snap_live s
    (1 + Option.value ~default:0 (Hashtbl.find_opt db.snap_live s));
  s

let release_snapshot db s =
  match Hashtbl.find_opt db.snap_live s with
  | Some n when n > 1 -> Hashtbl.replace db.snap_live s (n - 1)
  | Some _ -> Hashtbl.remove db.snap_live s
  | None -> ()

let gc_horizon db =
  Hashtbl.fold (fun e _ acc -> Stdlib.min e acc) db.snap_live
    (safe_snapshot_epoch db)

let install_horizon db =
  if db.snapshots_enabled then Some (gc_horizon db) else None

(* Extra one-way cost when two containers live on different machines. *)
let net db c1 c2 =
  if db.cfg.Config.machine_of c1 = db.cfg.Config.machine_of c2 then 0.
  else db.prof.Profile.cost_network

(* Charge [d] µs of processing on the current coroutine's core; attribute to
   the root's sync-execution bucket when on the root's critical path. *)
let work frame d =
  if d > 0. then Engine.delay d;
  if frame.on_root_path then begin
    frame.froot.bd.bd_sync_exec <- frame.froot.bd.bd_sync_exec +. d;
    frame.froot.worked_since_call <- true
  end

(* Graded cache model: how cold is executor [xid] for this reactor's data?
   Position 0 in the recency list is free; deeper positions pay a growing
   fraction of the full miss penalty; executors not in the list pay it all.
   This reproduces the progressive locality loss the paper measures when
   round-robin routing spreads one reactor over more cores (App. F.2). *)
let recency_depth = 8

let cache_penalty rstate xid =
  let rec find i = function
    | [] -> 1.
    | x :: _ when x = xid -> float_of_int i /. float_of_int recency_depth
    | _ :: rest -> find (i + 1) rest
  in
  find 0 rstate.cache_recency

let touch_cache rstate xid =
  let rest = List.filter (fun x -> x <> xid) rstate.cache_recency in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  rstate.cache_recency <- xid :: take (recency_depth - 1) rest

let charge_data db frame kind n =
  let p = db.prof in
  let base =
    match kind with
    | `Read -> p.Profile.cost_read
    | `Write -> p.Profile.cost_write
    | `Scan_step -> p.Profile.cost_scan_step
  in
  let per = base +. (frame.fpenalty *. p.Profile.cost_cache_miss) in
  work frame (per *. float_of_int n)

(* Await a child sub-transaction. Returns its result without raising. If the
   future is already resolved this is free; otherwise the caller yields its
   core, pays Cr on wake, and the blocked window is attributed to
   sync-execution (immediate get, no intervening work: the "synchronous
   call" pattern) or to async-execution (deferred get: overlap window). *)
let await_sub db frame sub =
  match Engine.Ivar.peek sub.siv with
  | Some r -> r
  | None ->
    let root = frame.froot in
    let sync_class =
      frame.on_root_path && root.last_call = sub.sfid
      && not root.worked_since_call
    in
    let t0 = Engine.current_time () in
    release_core frame.fex;
    let r = Engine.Ivar.read sub.siv in
    acquire_core frame.fex;
    let blocked = Engine.current_time () -. t0 in
    Engine.delay db.prof.Profile.cost_recv;
    if frame.on_root_path then begin
      root.bd.bd_cr <- root.bd.bd_cr +. db.prof.Profile.cost_recv;
      if sync_class then root.bd.bd_sync_exec <- root.bd.bd_sync_exec +. blocked
      else root.bd.bd_async_exec <- root.bd.bd_async_exec +. blocked;
      (* lifecycle trace: the root's blocked window on a cross-reactor
         future, regardless of sync/async classification *)
      Obs.Trace.add root.tr Obs.Phase.Suspend_wait blocked;
      root.worked_since_call <- true
    end;
    r

let set_exec_of root cid ex =
  if not (List.mem_assoc cid root.exec_of_container) then
    root.exec_of_container <- (cid, ex) :: root.exec_of_container

let rec run_procedure db ~root ~rstate ~ex ~on_root_path ~proc_name ~args =
  let procfn = Reactor.find_proc rstate.rtype proc_name in
  let frame =
    { froot = root; frstate = rstate; fex = ex; on_root_path; children = [];
      fpenalty = cache_penalty rstate ex.xid }
  in
  set_exec_of root rstate.home ex;
  work frame db.prof.Profile.cost_proc_base;
  let ctx =
    {
      Reactor.db =
        Query.Exec.make_ctx ?snapshot:root.rsnapshot ~txn:root.txn
          ~container:rstate.home ~catalog:rstate.rcatalog
          ~charge:(fun kind n -> charge_data db frame kind n)
          ~work:(fun us -> work frame us) ();
      self = rstate.rname;
      call = (fun ~reactor ~proc ~args -> do_call db frame ~reactor ~proc ~args);
      collect =
        (fun futures ->
          (* Fork–join barrier: consume every future (out-of-order
             completion is fine — resolved ivars are peeked for free),
             capturing per-future errors so a failure in one sub-call
             never unwinds while siblings are still outstanding. Only
             after all futures have completed do we re-raise the first
             non-deadline error in list order. A deadline expiry seen by
             any per-future resume check is the root's one budget, so it
             is reported as the collect-boundary check firing. *)
          let results =
            List.map
              (fun f -> try Ok (f.Reactor.get ()) with e -> Error e)
              futures
          in
          (match
             List.find_opt
               (function
                 | Error (Obs.Abort.Timed_out _) | Ok _ -> false
                 | Error _ -> true)
               results
           with
          | Some (Error e) -> raise e
          | _ -> ());
          if
            List.exists
              (function Error _ -> true | Ok _ -> false)
              results
          then raise (Obs.Abort.Timed_out "deadline expired at collect boundary");
          check_deadline root ~where:"at collect boundary";
          List.map
            (function Ok v -> v | Error _ -> assert false)
            results);
    }
  in
  let result = try Ok (procfn ctx args) with e -> Error e in
  touch_cache rstate ex.xid;
  (* Implicit synchronization: a (sub-)transaction completes only when all
     its children complete — even on the abort path, since in-flight children
     mutate the shared transaction context. *)
  let first_err = ref (match result with Error e -> Some e | Ok _ -> None) in
  List.iter
    (fun sub ->
      match await_sub db frame sub with
      | Ok _ -> ()
      | Error e -> if !first_err = None then first_err := Some e)
    (List.rev frame.children);
  (* Implicit sync done: every child has completed, so raising here cannot
     leave a sub-transaction mutating the shared context. *)
  if !first_err = None && frame.children <> [] && deadline_expired root then
    first_err := Some (Obs.Abort.Timed_out "deadline expired after implicit sync");
  match !first_err with
  | Some e -> raise e
  | None -> (match result with Ok v -> v | Error _ -> assert false)

and do_call db frame ~reactor ~proc ~args =
  let root = frame.froot in
  if reactor = frame.frstate.rname then begin
    (* Self-call: inlined synchronously in the same execution context
       (§2.2.4); the result is immediately available. *)
    let v =
      run_procedure db ~root ~rstate:frame.frstate ~ex:frame.fex
        ~on_root_path:frame.on_root_path ~proc_name:proc ~args
    in
    { Reactor.get = (fun () -> v) }
  end
  else begin
    let tstate = reactor_state db reactor in
    (* Dynamic safety condition (§2.2.4): at most one execution context may
       be active per reactor and root transaction. *)
    if Hashtbl.mem root.active_set reactor then
      raise
        (Reactor.Dangerous_call
           (Printf.sprintf "dangerous call structure: reactor %s already active"
              reactor));
    (* Migration stub: a sub-call from a post-mark root to a migrating
       reactor parks until the flip, then dispatches against the new
       placement. The caller's core is released across the park — a parked
       post-mark root must never hold a core a draining pre-mark root may
       need. Pre-mark roots pass through: the drain waits for them. *)
    (match Hashtbl.find_opt db.migrating reactor with
    | Some m when root.rgen > m.mg_cutoff ->
      release_core frame.fex;
      mig_stub_park m;
      acquire_core frame.fex
    | _ -> ());
    if tstate.home = frame.frstate.home then begin
      (* Same container: execute synchronously in the caller's executor to
         avoid migration-of-control overhead (§3.2.1). *)
      Hashtbl.add root.active_set reactor ();
      let finally () = Hashtbl.remove root.active_set reactor in
      let v =
        try
          run_procedure db ~root ~rstate:tstate ~ex:frame.fex
            ~on_root_path:frame.on_root_path ~proc_name:proc ~args
        with e ->
          finally ();
          raise e
      in
      finally ();
      { Reactor.get = (fun () -> v) }
    end
    else begin
      (* Cross-container: asynchronous dispatch through the transport to an
         executor of the destination container. *)
      Hashtbl.add root.active_set reactor ();
      root.call_ctr <- root.call_ctr + 1;
      let fid = root.call_ctr in
      let send_cost =
        db.prof.Profile.cost_send +. net db frame.frstate.home tstate.home
      in
      Engine.delay send_cost;
      if frame.on_root_path then begin
        root.bd.bd_cs <- root.bd.bd_cs +. send_cost;
        root.last_call <- fid;
        root.worked_since_call <- false
      end;
      let rex = route db tstate in
      set_exec_of root tstate.home rex;
      let iv = Engine.Ivar.create () in
      let caller_home = frame.frstate.home in
      let body () =
        acquire_core rex;
        (* the result message back to the caller also crosses the network *)
        Engine.delay
          (db.prof.Profile.cost_sub_dispatch +. net db caller_home tstate.home);
        let res =
          try
            check_deadline root ~where:"at sub-transaction start";
            Ok
              (run_procedure db ~root ~rstate:tstate ~ex:rex
                 ~on_root_path:false ~proc_name:proc ~args)
          with e -> Error e
        in
        (match res with
        | Error e -> (
          match classify_exn e with
          | Some km -> if root.doomed = None then root.doomed <- Some km
          | None -> ())
        | Ok _ -> ());
        release_core rex;
        Hashtbl.remove root.active_set reactor;
        Engine.Ivar.fill iv res
      in
      (* Sub-transactions bypass root admission control (they belong to an
         already-admitted root) but contend for the destination core. *)
      Engine.spawn_here body;
      let sub = { sfid = fid; siv = iv } in
      frame.children <- sub :: frame.children;
      {
        Reactor.get =
          (fun () ->
            match await_sub db frame sub with
            | Ok v ->
              (* Resumed after a (possibly long) blocked window: re-check
                 the budget before the body continues. Raises inside the
                 procedure body, so the implicit sync still awaits every
                 sibling before the frame unwinds. *)
              check_deadline root ~where:"on resume after sub-transaction";
              v
            | Error e -> raise e);
      }
    end
  end

(* ------------------------------------------------------------------ *)
(* Commit protocols. *)

let validation_cost db txn c =
  db.prof.Profile.cost_commit_base
  +. db.prof.Profile.cost_commit_per_op
     *. float_of_int (Occ.Txn.ops_in txn ~container:c)

let wal_log db root tid =
  match db.wal with
  | None -> ()
  | Some log ->
    let writes =
      List.map
        (fun e ->
          let reactor, table =
            match Hashtbl.find_opt db.table_owner e.Occ.Txn.wtable.Storage.Table.uid with
            | Some rt -> rt
            | None -> ("?", e.Occ.Txn.wtable.Storage.Table.schema.Storage.Schema.sname)
          in
          match e.Occ.Txn.kind with
          | Occ.Txn.Update row -> Wal.Put { reactor; table; row }
          | Occ.Txn.Insert ->
            Wal.Put { reactor; table; row = e.Occ.Txn.wrec.Storage.Record.data }
          | Occ.Txn.Delete -> Wal.Del { reactor; table; key = e.Occ.Txn.wkey })
        (Occ.Txn.all_writes root.txn)
    in
    if writes <> [] then begin
      Wal.append log
        { Wal.le_txn = Occ.Txn.id root.txn; le_tid = tid; le_writes = writes };
      root.logged_epoch <- Some (Storage.Record.tid_epoch tid)
    end

(* [Wal.Io_error] from a failed append, turned into a commit error by the
   callers (locks still held at that point, so the release path runs). *)
let wal_log_checked db root tid =
  try
    wal_log db root tid;
    Ok ()
  with Wal.Io_error m -> Error m

let note_history db root tid =
  if db.record_history then begin
    let reads =
      List.concat_map
        (fun c ->
          List.map
            (fun (r, observed) -> (r.Storage.Record.rid, observed))
            (Occ.Txn.reads_in root.txn ~container:c))
        (Occ.Txn.containers root.txn)
    in
    let writes = ref [] in
    Occ.Txn.iter_all_writes root.txn ~f:(fun e ->
        writes := e.Occ.Txn.wrec.Storage.Record.rid :: !writes);
    let writes = List.rev !writes in
    db.hist <-
      { h_txn = Occ.Txn.id root.txn; h_tid = tid; h_reads = reads;
        h_writes = writes }
      :: db.hist
  end

(* ------------------------------------------------------------------ *)
(* Epoch group commit (durable mode, Silo's epoch durability). A one-shot
   flusher is scheduled on demand at the next epoch boundary; it flushes the
   WAL, advances [flushed_epoch] past the epoch that just closed, and
   releases every waiter whose record epoch is covered. Scheduling on demand
   (rather than as a periodic process) lets [Engine.run] drain once no
   transaction is waiting on durability.

   Safety: a redo record appended strictly before boundary time
   [epoch_len_us * e] carries TID epoch <= e (the epoch can only advance at
   the boundary), so after flushing at that instant every record of epoch
   <= e is on stable storage. *)
let rec schedule_flush db =
  if not db.flush_pending then begin
    db.flush_pending <- true;
    let boundary_epoch = current_epoch db in
    let at = epoch_len_us *. float_of_int boundary_epoch in
    Engine.spawn db.eng ~at (fun () ->
        (* Chaos: the group-commit flush stalls (device hiccup), delaying
           every transaction waiting on epoch durability. [flush_pending]
           stays true across the stall, so no second flusher starts. *)
        (match Chaos.draw_us db.chaos Chaos.Stall_flush with
        | Some d -> Engine.delay d
        | None -> ());
        db.flush_pending <- false;
        (* A failing log device must not kill the run (the flusher runs
           outside any transaction): record the failure, keep releasing
           waiters — durability is degraded, not liveness. *)
        (match db.wal with
        | Some log -> (
          try Wal.flush log
          with Wal.Io_error m ->
            if db.wal_error = None then db.wal_error <- Some m)
        | None -> ());
        db.n_flushes <- db.n_flushes + 1;
        db.flushed_epoch <- Stdlib.max db.flushed_epoch boundary_epoch;
        let ready, waiting =
          List.partition (fun (e, _) -> e <= db.flushed_epoch) db.epoch_waiters
        in
        db.epoch_waiters <- waiting;
        List.iter (fun (_, w) -> w ()) ready;
        (* Waiters from a later epoch (committed just past the boundary)
           need the next flush. *)
        if waiting <> [] then schedule_flush db)
  end

(* Client-side durable wait: called after the transaction's executor slot is
   released, so group commit adds commit latency but never holds admission
   capacity. Transactions that logged nothing return immediately. *)
let wait_durable db root =
  match root.logged_epoch with
  | None -> ()
  | Some e ->
    if db.durable && e > db.flushed_epoch then begin
      schedule_flush db;
      Engine.suspend (fun waker ->
          db.epoch_waiters <- (e, waker) :: db.epoch_waiters)
    end

(* Typed commit failures: [C_fail] carries the validation verdict,
   [C_timeout] is a participant refusing to prepare past the root's
   deadline, [C_wal] a log-device failure while appending the redo
   record. *)
type commit_err =
  | C_fail of Occ.Commit.fail_reason
  | C_timeout
  | C_wal of string
  | C_killed
      (* the Kill_primary chaos probe fenced the engine mid-2PC: votes
         resolved but nothing was installed or logged durable — the
         transaction rolls back exactly like an abort vote *)

(* Two-phase commit (§3.2.2): phase one runs Silo validation with locks on
   every participant; phase two installs or releases. Remote phases execute
   as control steps on an executor of the participant container (the one
   that ran the transaction's sub-transactions there), each step atomic in
   virtual time. The coordinator yields its core while waiting. *)
let two_phase db root ex containers ~epoch =
  let p = db.prof in
  let executor_for c =
    match List.assoc_opt c root.exec_of_container with
    | Some e -> e
    | None -> db.containers.(c).cexecutors.(0)
  in
  let remote_step c f =
    Engine.delay (p.Profile.cost_2pc_msg +. net db ex.cid c);
    let iv = Engine.Ivar.create () in
    let rex = executor_for c in
    Engine.spawn_here (fun () ->
        acquire_core rex;
        Engine.delay p.Profile.cost_sub_dispatch;
        let r = f () in
        release_core rex;
        Engine.Ivar.fill iv r);
    iv
  in
  let wait iv =
    match Engine.Ivar.peek iv with
    | Some r -> r
    | None ->
      release_core ex;
      let r = Engine.Ivar.read iv in
      acquire_core ex;
      r
  in
  (* One participant's prepare: refuse outright when the root's deadline
     has already passed (no validation work, no locks taken — the
     coordinator rolls the prepared participants back like any abort
     vote), otherwise validate. *)
  let prepare_vote c () =
    if deadline_expired root then Error C_timeout
    else begin
      Engine.delay (validation_cost db root.txn c);
      Result.map_error (fun fr -> C_fail fr)
        (Occ.Commit.prepare root.txn ~container:c)
    end
  in
  (* Phase 1. Validation span on the root's timeline: from entering phase
     one until every participant's vote has resolved. *)
  let t_val = Engine.current_time () in
  let prepares =
    List.map
      (fun c ->
        if c = ex.cid then (c, `Done (prepare_vote c ()))
        else (c, `Pending (remote_step c (prepare_vote c))))
      containers
  in
  let resolved =
    List.map
      (fun (c, r) ->
        match r with `Done v -> (c, v) | `Pending iv -> (c, wait iv))
      prepares
  in
  Obs.Trace.add root.tr Obs.Phase.Validation (Engine.current_time () -. t_val);
  let t_dec = Engine.current_time () in
  (* Phase 2 (abort): roll back every prepared participant. *)
  let rollback prepared =
    let acks =
      List.filter_map
        (fun c ->
          if c = ex.cid then begin
            Occ.Commit.release root.txn ~container:c;
            None
          end
          else
            Some (remote_step c (fun () -> Occ.Commit.release root.txn ~container:c)))
        prepared
    in
    List.iter wait acks;
    Obs.Trace.add root.tr Obs.Phase.Commit (Engine.current_time () -. t_dec)
  in
  (* Chaos: the primary dies mid-2PC — phase-one votes have resolved,
     nothing is installed, no redo record was appended. The engine fences
     itself (generation-stamped admission refuses everything from here
     on) and this transaction rolls back through the normal release path,
     so no replica or recovery replay can ever observe it. *)
  (match Chaos.draw_us db.chaos Chaos.Kill_primary with
  | Some _ -> db.fenced <- true
  | None -> ());
  if db.fenced then begin
    rollback
      (List.filter_map
         (fun (c, v) -> if Result.is_ok v then Some c else None)
         resolved);
    Error C_killed
  end
  else if List.for_all (fun (_, v) -> Result.is_ok v) resolved then begin
    let tid = Occ.Commit.compute_tid root.txn ~epoch in
    (* Write-ahead: append the redo record while every participant still
       holds its locks, so a failed log device rolls the transaction back
       instead of leaving installed writes with no durable record. *)
    match wal_log_checked db root tid with
    | Error m ->
      rollback containers;
      Error (C_wal m)
    | Ok () ->
      (* Phase 2: install. *)
      let acks =
        List.map
          (fun c ->
            if c = ex.cid then begin
              Engine.delay p.Profile.cost_commit_base;
              Occ.Commit.install ?horizon:(install_horizon db) root.txn
                ~container:c ~tid;
              None
            end
            else
              Some
                (remote_step c (fun () ->
                     Engine.delay p.Profile.cost_commit_base;
                     Occ.Commit.install ?horizon:(install_horizon db) root.txn
                       ~container:c ~tid)))
          containers
      in
      List.iter (function Some iv -> wait iv | None -> ()) acks;
      note_history db root tid;
      Obs.Trace.add root.tr Obs.Phase.Commit (Engine.current_time () -. t_dec);
      Ok ()
  end
  else begin
    rollback
      (List.filter_map
         (fun (c, v) -> if Result.is_ok v then Some c else None)
         resolved);
    let reason =
      match
        List.find_map
          (fun (_, v) -> match v with Error r -> Some r | Ok () -> None)
          resolved
      with
      | Some r -> r
      | None -> assert false
    in
    Error reason
  end

let do_commit db root ex =
  let epoch = current_epoch db in
  match Occ.Txn.containers root.txn with
  | [] ->
    let t0 = Engine.current_time () in
    Engine.delay db.prof.Profile.cost_commit_base;
    Obs.Trace.add root.tr Obs.Phase.Commit (Engine.current_time () -. t0);
    Ok ()
  | [ c ] when c = ex.cid ->
    (* commit_single, unrolled so validation and install land in their own
       trace phases; the virtual-time charges are unchanged. *)
    let t0 = Engine.current_time () in
    Engine.delay (validation_cost db root.txn c);
    (match Occ.Commit.prepare root.txn ~container:c with
    | Error r ->
      Obs.Trace.add root.tr Obs.Phase.Validation (Engine.current_time () -. t0);
      Error (C_fail r)
    | Ok () ->
      Obs.Trace.add root.tr Obs.Phase.Validation (Engine.current_time () -. t0);
      let t1 = Engine.current_time () in
      let tid = Occ.Commit.compute_tid root.txn ~epoch in
      (* write-ahead: append before install (see two_phase) *)
      (match wal_log_checked db root tid with
      | Error m ->
        Occ.Commit.release root.txn ~container:c;
        Obs.Trace.add root.tr Obs.Phase.Commit (Engine.current_time () -. t1);
        Error (C_wal m)
      | Ok () ->
        Occ.Commit.install ?horizon:(install_horizon db) root.txn ~container:c
          ~tid;
        note_history db root tid;
        Obs.Trace.add root.tr Obs.Phase.Commit (Engine.current_time () -. t1);
        Ok ()))
  | containers -> two_phase db root ex containers ~epoch

(* ------------------------------------------------------------------ *)

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))

(* Morph-Auto load signal: fan a root out into its parallel formulation
   only when the deployment has idle execution capacity to absorb the
   concurrent sub-calls — here, when fewer than half the executors are
   currently running or holding admitted roots. Saturated deployments stay
   sequential: the fan-out would only add dispatch and coordination
   overhead to already-queued work. *)
let auto_parallel_ok db =
  let busy = ref 0 and total = ref 0 in
  Array.iter
    (fun cont ->
      Array.iter
        (fun ex ->
          incr total;
          if ex.core_busy || ex.active_roots > 0 then incr busy)
        cont.cexecutors)
    db.containers;
  2 * !busy < !total

let exec_txn ?(retry = 0) ?deadline_us db ~reactor ~proc ~args =
  let p = db.prof in
  let t_start = Engine.current_time () in
  let deadline =
    match deadline_us with
    | Some d -> t_start +. d
    | None -> Float.infinity
  in
  Engine.delay p.Profile.cost_input_gen;
  db.txn_counter <- db.txn_counter + 1;
  let txn = Occ.Txn.create ~id:db.txn_counter in
  let bd = zero_breakdown () in
  let tr =
    match db.obs with Some c -> Obs.Collector.trace c | None -> Obs.Trace.none
  in
  let rst = reactor_state db reactor in
  (* Live reconfiguration: register in the current migration generation,
     and park at the forwarding stub when the target is mid-migration —
     the root resumes (and routes) against the post-flip placement. The
     client coroutine holds no core here, so parking cannot starve the
     drain. Virtual time keeps running while parked: the pause shows up in
     latency, and a tight deadline can expire at the dequeue boundary —
     exactly the straggler backstop the deadline machinery provides. *)
  let rgen = mig_register db in
  (match Hashtbl.find_opt db.migrating reactor with
  | Some m when rgen > m.mg_cutoff -> mig_stub_park m
  | _ -> ());
  (* Morph-Auto: resolve a sequential-formulation root to its declared
     parallel twin when live load signals leave capacity for the fan-out. *)
  let proc =
    if db.cfg.Config.morph <> Config.Auto then proc
    else
      match Reactor.morph_target rst.rtype proc with
      | Some par when auto_parallel_ok db ->
        db.auto_par <- db.auto_par + 1;
        par
      | Some _ ->
        db.auto_seq <- db.auto_seq + 1;
        proc
      | None -> proc
  in
  (* Declared-read-only roots freeze a snapshot epoch up front: the body
     reads version chains at that epoch and the commit protocol is skipped
     entirely (no read set, no locks, no validation, no 2PC). *)
  let rsnapshot =
    if db.snapshots_enabled && Reactor.proc_readonly rst.rtype proc then
      Some (acquire_snapshot db)
    else None
  in
  let root =
    { txn; rgen; rsnapshot; bd; tr; deadline; active_set = Hashtbl.create 8;
      exec_of_container = []; last_call = 0; call_ctr = 0;
      worked_since_call = false; doomed = None; logged_epoch = None }
  in
  let ex = route db rst in
  Engine.delay p.Profile.cost_client_dispatch;
  let done_iv = Engine.Ivar.create () in
  (* Queue wait runs from the push into the executor's request queue to the
     moment the body holds the core: mailbox residence, MPL admission, and
     the core handoff itself. *)
  let t_enq = ref 0. in
  let body () =
    acquire_core ex;
    let t_body = Engine.current_time () in
    Obs.Trace.add tr Obs.Phase.Queue_wait (t_body -. !t_enq);
    Hashtbl.add root.active_set reactor ();
    let res =
      try
        (* Dequeue boundary: a root whose whole budget went to queueing
           (or MPL admission) aborts before touching any record. *)
        check_deadline root ~where:"before execution";
        let v =
          run_procedure db ~root ~rstate:rst ~ex ~on_root_path:true
            ~proc_name:proc ~args
        in
        match root.doomed with
        | Some km -> Error (`Aborted km)
        | None -> Ok v
      with e -> Error (`Fatal e)
    in
    Hashtbl.remove root.active_set reactor;
    (* Exec = body span minus the root's blocked windows (accumulated into
       Suspend_wait by await_sub while the body ran). *)
    Obs.Trace.add tr Obs.Phase.Exec
      (Engine.current_time () -. t_body
      -. Obs.Trace.get tr Obs.Phase.Suspend_wait);
    let out =
      match res with
      | Ok _ when deadline_expired root ->
        (* Commit entry: nothing is prepared yet, so expiring here just
           drops the read/write sets — no locks to release. *)
        Error (Ab_timeout, "deadline expired before commit", Obs.Abort.Timeout)
      | Ok v when root.rsnapshot <> None ->
        (* Read-only snapshot root: nothing to validate, install or log —
           the result is final the moment the body returns. *)
        Ok v
      | Ok v -> (
        (* A log-device failure during commit surfaces as a typed internal
           abort, not a raw exception unwinding through the engine. *)
        match
          try do_commit db root ex with Wal.Io_error m -> Error (C_wal m)
        with
        | Ok () -> Ok v
        | Error (C_fail fr) ->
          Error (Ab_validation, Occ.Commit.fail_message fr, obs_kind_of_fail fr)
        | Error C_timeout ->
          Error
            (Ab_timeout, "deadline expired during 2pc prepare", Obs.Abort.Timeout)
        | Error (C_wal m) ->
          Error (Ab_internal, "wal write failed: " ^ m, Obs.Abort.Internal)
        | Error C_killed ->
          Error (Ab_internal, "primary killed mid-2pc", Obs.Abort.Internal))
      | Error (`Aborted (k, m)) -> Error (k, m, obs_kind_of_class k)
      | Error (`Fatal e) -> (
        match classify_exn e with
        | Some (k, m) -> Error (k, m, obs_kind_of_class k)
        | None ->
          (* Programming errors (not aborts) escape to the engine. *)
          release_core ex;
          raise e)
    in
    release_core ex;
    Engine.Ivar.fill done_iv out
  in
  (* Admission control: with a mailbox cap set, a root arriving at a full
     request queue is shed here — it never occupies a queue slot, an MPL
     slot or a core. Sub-transactions and commit traffic of admitted roots
     are never shed. *)
  let shed =
    match db.mailbox_cap with
    | Some cap -> Engine.Mailbox.length ex.queue >= cap
    | None -> false
  in
  let out =
    if db.fenced then begin
      (* Generation fencing: a fenced primary refuses every admission
         outright — the root never enqueues, never touches a record. The
         refusal is a typed outcome so drivers can count it exactly. *)
      db.n_fenced <- db.n_fenced + 1;
      Error
        (Ab_internal, "fenced: stale primary generation", Obs.Abort.Internal)
    end
    else if shed then
      Error
        (Ab_overload, "overloaded: admission queue full", Obs.Abort.Overloaded)
    else begin
      t_enq := Engine.current_time ();
      Engine.Mailbox.push ex.queue body;
      Engine.Ivar.read done_iv
    end
  in
  (* The root can no longer touch any reactor (install/release are done;
     what remains is client-side flush wait), so its generation pin drops —
     an in-progress migration drain resumes once the pre-mark slot empties.
     The shed path retires too: it registered above. *)
  mig_retire db rgen;
  (* Durable mode: hold the client until the flush covering this
     transaction's log epoch completes (the executor slot is already free,
     so group commit costs latency, not admission capacity). *)
  (* The snapshot's GC pin is dropped as soon as the outcome is known —
     including on the admission-shed path, where the body never ran. *)
  (match root.rsnapshot with Some s -> release_snapshot db s | None -> ());
  (match out with
  | Ok _ ->
    let t_flush = Engine.current_time () in
    wait_durable db root;
    Obs.Trace.add tr Obs.Phase.Flush_wait (Engine.current_time () -. t_flush)
  | Error _ -> ());
  let result =
    match out with Ok v -> Ok v | Error (_, m, _) -> Error m
  in
  let latency = Engine.current_time () -. t_start in
  (* Overhead bucket = everything not attributed to the execution-path
     buckets: input generation, dispatch, commit, queueing. *)
  bd.bd_overhead <-
    Float.max 0.
      (latency -. bd.bd_sync_exec -. bd.bd_cs -. bd.bd_cr -. bd.bd_async_exec);
  let participants =
    Stdlib.max 1 (List.length (Occ.Txn.containers txn))
  in
  let abort_cause =
    match out with
    | Ok _ -> None
    | Error (_, _, kind) -> Some (Obs.Abort.cause ~participants ~retry kind)
  in
  (match out with
  | Ok _ ->
    db.committed <- db.committed + 1;
    if root.rsnapshot <> None then db.n_ro_commits <- db.n_ro_commits + 1
  | Error (k, _, _) ->
    db.aborted <- db.aborted + 1;
    bump db.abort_reasons (bucket_of_class k));
  (match db.obs with
  | None -> ()
  | Some c -> (
    match abort_cause with
    | None ->
      Obs.Collector.record_commit c ~container:rst.home ~participants ~retry
        ~readonly:(root.rsnapshot <> None) ~latency_us:latency tr
    | Some cause ->
      Obs.Collector.record_abort c ~container:rst.home ~latency_us:latency
        ~cause tr));
  {
    result;
    latency;
    breakdown = bd;
    containers_touched = List.length (Occ.Txn.containers txn);
    abort_cause;
    snapshot = root.rsnapshot;
  }

(* ------------------------------------------------------------------ *)
(* Live reconfiguration (DESIGN.md §11): online reactor migration.

   mark    — bump the generation and install the forwarding stub: every
             root (or sub-call of a root) admitted after this instant that
             targets [reactor] suspends at the stub.
   drain   — wait until every pre-mark root in the whole database has
             completed. Global drain is deliberately conservative: any
             in-flight root might still issue a sub-call into [reactor],
             and pre-mark sub-calls pass the stub (the alternative —
             per-reactor tracking — buys little under the engine's
             cooperative scheduling). The PR 5 deadline machinery is the
             straggler backstop.
   log     — append a [Wal.Migrate] record (write-ahead of the flip), so
             crash recovery replays placement deterministically
             (Faultsim.rc_placements folds these in TID order).
   flip    — re-home the reactor: one mutable-field write, atomic in
             virtual time. Catalogs are shared-heap structures keyed by
             reactor, not by container, so the storage slice (records,
             secondary indexes, snapshot version chains) moves with the
             pointer; snapshot readers keep reading the same chains.
   replay  — wake the parked stub traffic; each parked coroutine re-reads
             [rstate.home] and dispatches to the new container.

   Returns the migration pause in virtual µs (mark → flip). Migrations are
   serialized on [mig_busy]; concurrent callers queue. *)

let migrate db ~reactor ~dst =
  if dst < 0 || dst >= Array.length db.containers then
    invalid_arg
      (Printf.sprintf "ReactDB: migrate %s: no container %d" reactor dst);
  let rst = reactor_state db reactor in
  let rec admit () =
    if db.mig_busy then begin
      Engine.suspend (fun w -> db.mig_waiters <- w :: db.mig_waiters);
      admit ()
    end
  in
  admit ();
  if rst.home = dst then 0.
  else begin
    db.mig_busy <- true;
    let t0 = Engine.current_time () in
    (* mark *)
    let cutoff = db.mig_gen in
    db.mig_gen <- db.mig_gen + 1;
    let m = { mg_cutoff = cutoff; mg_parked = [] } in
    Hashtbl.replace db.migrating reactor m;
    (* drain: pre-mark roots all live in the [cutoff] parity slot (at most
       two generations are ever live, see the type definition) *)
    if db.mig_inflight.(cutoff land 1) > 0 then
      Engine.suspend (fun w -> db.mig_drain <- Some (cutoff land 1, w));
    (* log (write-ahead of the flip); a failing log device degrades
       durability of the placement record, never liveness — recovery would
       boot with the pre-move placement, which is merely slower *)
    db.n_migrations <- db.n_migrations + 1;
    (match db.wal with
    | None -> ()
    | Some log -> (
      let tid =
        Storage.Record.tid_make ~epoch:(current_epoch db)
          ~seq:db.n_migrations
      in
      try
        Wal.append log
          { Wal.le_txn = -db.n_migrations; le_tid = tid;
            le_writes = [ Wal.Migrate { reactor; dst } ] }
      with Wal.Io_error e ->
        if db.wal_error = None then db.wal_error <- Some e));
    (* flip *)
    rst.home <- dst;
    db.placement_epoch <- db.placement_epoch + 1;
    Hashtbl.remove db.migrating reactor;
    (* replay *)
    List.iter (fun w -> w ()) (List.rev m.mg_parked);
    let pause = Engine.current_time () -. t0 in
    db.mig_pause_last <- pause;
    db.mig_busy <- false;
    let ws = db.mig_waiters in
    db.mig_waiters <- [];
    List.iter (fun w -> w ()) (List.rev ws);
    pause
  end

(* ------------------------------------------------------------------ *)
(* Bootstrap. *)

let rec dispatcher db ex () =
  let body = Engine.Mailbox.pop ex.queue in
  if ex.active_roots >= db.cfg.Config.mpl then
    Engine.suspend (fun waker -> ex.slot_waiter <- Some waker);
  ex.active_roots <- ex.active_roots + 1;
  Engine.spawn_here (fun () ->
      body ();
      ex.active_roots <- ex.active_roots - 1;
      match ex.slot_waiter with
      | Some w ->
        ex.slot_waiter <- None;
        w ()
      | None -> ());
  dispatcher db ex ()

let create eng decl cfg prof =
  (* Declaration/config materialization is shared with the parallel runtime
     backend: same validation, same catalogs, same placement checks. *)
  let entries, table_owner = Bootstrap.build decl cfg in
  let xid = ref 0 in
  let containers =
    Array.map
      (fun nexec ->
        let cexecutors =
          Array.init nexec (fun _ ->
              incr xid;
              {
                xid = !xid;
                cid = 0 (* fixed below *);
                queue = Engine.Mailbox.create ();
                core_waiters = Queue.create ();
                core_busy = false;
                active_roots = 0;
                slot_waiter = None;
                busy_accum = 0.;
                held_since = 0.;
              })
        in
        { rr = 0; cexecutors })
      cfg.Config.executors_per_container
  in
  Array.iteri
    (fun ci cont ->
      Array.iteri
        (fun i ex -> cont.cexecutors.(i) <- { ex with cid = ci })
        cont.cexecutors)
    containers;
  let db =
    {
      eng;
      decl;
      cfg;
      prof;
      containers;
      reactors = Hashtbl.create 256;
      txn_counter = 0;
      committed = 0;
      aborted = 0;
      abort_reasons = Hashtbl.create 8;
      record_history = false;
      hist = [];
      stats_since = Engine.now eng;
      table_owner;
      wal = None;
      durable = false;
      flushed_epoch = 0;
      flush_pending = false;
      epoch_waiters = [];
      n_flushes = 0;
      wal_error = None;
      obs = None;
      chaos = Chaos.none;
      mailbox_cap = None;
      snapshots_enabled = true;
      snap_live = Hashtbl.create 16;
      n_ro_commits = 0;
      auto_seq = 0;
      auto_par = 0;
      rorder = List.map (fun e -> e.Bootstrap.bs_name) entries;
      mig_gen = 0;
      mig_inflight = [| 0; 0 |];
      mig_drain = None;
      migrating = Hashtbl.create 4;
      mig_busy = false;
      mig_waiters = [];
      placement_epoch = 0;
      n_migrations = 0;
      mig_pause_last = 0.;
      prim_gen = 0;
      fenced = false;
      n_fenced = 0;
    }
  in
  List.iter
    (fun e ->
      Hashtbl.add db.reactors e.Bootstrap.bs_name
        { rname = e.Bootstrap.bs_name; rtype = e.Bootstrap.bs_rtype;
          rcatalog = e.Bootstrap.bs_catalog; home = e.Bootstrap.bs_home;
          cache_recency = [] })
    entries;
  Array.iter
    (fun cont ->
      Array.iter (fun ex -> Engine.spawn eng (dispatcher db ex)) cont.cexecutors)
    containers;
  db

let catalog_of db name = (reactor_state db name).rcatalog
let container_of db name = (reactor_state db name).home
let n_migrations db = db.n_migrations
let placement_epoch db = db.placement_epoch
let migration_pause_last_us db = db.mig_pause_last

let placements db =
  List.map (fun n -> (n, (reactor_state db n).home)) db.rorder

(* Bootstrap-time only: re-home reactors silently (no drain, no WAL record,
   no stub) to resume a recovered deployment (Faultsim.rc_placements).
   Calling this with traffic in flight would route around the migration
   protocol — don't. *)
let apply_placements db pl =
  List.iter
    (fun (r, dst) ->
      match Hashtbl.find_opt db.reactors r with
      | Some rst when dst >= 0 && dst < Array.length db.containers ->
        rst.home <- dst
      | Some _ | None -> ())
    pl
let n_committed db = db.committed
let n_aborted db = db.aborted

let aborts_by_reason db =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) db.abort_reasons []

let utilizations db =
  let total = Float.max 1e-9 (Engine.now db.eng -. db.stats_since) in
  let out = ref [] in
  Array.iter
    (fun cont ->
      Array.iter
        (fun ex ->
          let busy =
            ex.busy_accum
            +. (if ex.core_busy then Engine.now db.eng -. ex.held_since else 0.)
          in
          out := (busy /. total) :: !out)
        cont.cexecutors)
    db.containers;
  Array.of_list (List.rev !out)

let reset_stats db =
  db.committed <- 0;
  db.aborted <- 0;
  db.n_flushes <- 0;
  db.n_ro_commits <- 0;
  db.auto_seq <- 0;
  db.auto_par <- 0;
  Hashtbl.reset db.abort_reasons;
  (* The history log is NOT cleared: serializability certification needs
     every installed version, including warm-up transactions whose writes
     later transactions read. *)
  db.stats_since <- Engine.now db.eng;
  Array.iter
    (fun cont ->
      Array.iter
        (fun ex ->
          ex.busy_accum <- 0.;
          if ex.core_busy then ex.held_since <- Engine.now db.eng)
        cont.cexecutors)
    db.containers

let attach_wal ?(durable = false) db log =
  db.wal <- Some log;
  db.durable <- durable

let attach_obs db c = db.obs <- Some c
let attach_chaos db c = db.chaos <- c
let set_mailbox_cap db cap = db.mailbox_cap <- cap
let set_snapshots db b = db.snapshots_enabled <- b
let snapshots_enabled db = db.snapshots_enabled
let n_readonly_commits db = db.n_ro_commits
let auto_morphs db = (db.auto_seq, db.auto_par)
let wal_error db = db.wal_error
let n_log_flushes db = db.n_flushes
let enable_history db = db.record_history <- true

(* -- replication / failover (DESIGN.md §12) -------------------------- *)

(* Highest epoch whose redo records a group-commit flush has covered. In
   durable mode an acknowledged commit's epoch is always <= this (the
   client waited for the covering flush), so the durable log prefix up to
   this epoch contains every acknowledged transaction — the salvage bound
   promotion uses after a primary crash. *)
let durable_epoch db = db.flushed_epoch

let generation db = db.prim_gen
let set_generation db g = db.prim_gen <- g
let fence db = db.fenced <- true
let fenced db = db.fenced
let n_fenced_refusals db = db.n_fenced
let history db = List.rev db.hist
