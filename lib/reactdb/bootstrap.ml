type entry = {
  bs_name : string;
  bs_rtype : Reactor.rtype;
  bs_catalog : Storage.Catalog.t;
  bs_home : int;
}

let build decl cfg =
  Reactor.validate decl;
  let n_containers = Config.n_containers cfg in
  let table_owner = Hashtbl.create 256 in
  let entries =
    List.map
      (fun (name, tyname) ->
        let rt = Reactor.find_type decl tyname in
        let catalog = Storage.Catalog.create () in
        List.iter
          (fun schema ->
            let secondaries =
              List.assoc_opt schema.Storage.Schema.sname rt.Reactor.rt_indexes
            in
            ignore (Storage.Catalog.create_table ?secondaries catalog schema))
          rt.Reactor.rt_schemas;
        let home = cfg.Config.placement name in
        if home < 0 || home >= n_containers then
          invalid_arg
            (Printf.sprintf "ReactDB: reactor %S placed in bad container %d"
               name home);
        List.iter
          (fun (tname, tbl) ->
            Hashtbl.replace table_owner tbl.Storage.Table.uid (name, tname))
          (Storage.Catalog.tables catalog);
        { bs_name = name; bs_rtype = rt; bs_catalog = catalog; bs_home = home })
      decl.Reactor.reactors
  in
  let catalog_of name =
    match List.find_opt (fun e -> e.bs_name = name) entries with
    | Some e -> e.bs_catalog
    | None -> invalid_arg (Printf.sprintf "ReactDB: unknown reactor %S" name)
  in
  List.iter
    (fun (rname, loader) -> loader (catalog_of rname))
    decl.Reactor.loaders;
  (entries, table_owner)
