(** Shared bootstrap for execution backends.

    Both the discrete-event simulator ({!Database}) and the real-parallel
    domain-per-container runtime ([Runtime]) boot a reactor database from
    the same declaration and deployment {!Config.t}: validate the
    declaration, create each reactor's catalog (tables with their declared
    secondary indexes), check its container placement, record table
    ownership for redo logging, and run the loaders. Factoring it here
    keeps the two backends byte-compatible at the declaration/config level
    — a deployment that boots on one boots identically on the other. *)

type entry = {
  bs_name : string;  (** reactor name *)
  bs_rtype : Reactor.rtype;
  bs_catalog : Storage.Catalog.t;
  bs_home : int;  (** container index from [Config.placement] *)
}

(** [build decl cfg] validates and materializes the declaration. Returns
    the reactor entries in declaration order and the table-ownership map
    (table uid → reactor name, table name). Loaders run after every
    reactor's catalog exists, in declaration order. Raises [Invalid_argument]
    on malformed declarations or out-of-range placements. *)
val build :
  Reactor.decl -> Config.t -> entry list * (int, string * string) Hashtbl.t
