(** Seeded runtime fault injection for overload and chaos testing.

    An injector is configured with one fault {!kind}, a seed, a hit
    probability and a delay scale. The runtimes call {!inject_wall} (or
    {!draw_us} for virtual-time backends) at fixed {e injection points};
    each call is one seeded Bernoulli decision, so a given seed reproduces
    the same fault schedule (up to cross-domain interleaving of the
    per-point counters).

    Injection-point catalog (see DESIGN.md §7.4):
    - {!Delay_delivery}: a mailbox message (root dispatch or
      cross-container sub-call) stalls before it starts executing.
    - {!Stall_domain}: an executor domain goes unresponsive between jobs —
      everything queued behind it waits.
    - {!Stall_prepare}: a 2PC participant stalls {e after} validating its
      prepare, i.e. with its write locks held, before delivering the vote.
    - {!Stall_flush}: a WAL group-commit flush stalls, delaying every
      transaction waiting on epoch durability.
    - {!Kill_primary}: the primary crashes mid-2PC — after phase-one votes
      resolve, before install. The engine fences itself (every subsequent
      admission is refused with a stale-generation error) and the killed
      transaction rolls back through the normal release path, modelling a
      coordinator death whose decision was never installed or flushed
      (see DESIGN.md §12).
    - {!Drop_shipment}: a replication log-shipment batch is lost in
      flight; the replica's watermark does not advance, so the next round
      re-ships from the unchanged acknowledgment (the re-request path).
    - {!Delay_shipment}: a shipment batch is held one shipping round
      before delivery, stretching replica lag without losing data.

    The disabled injector {!none} is a no-op: every probe is one branch on
    a constant, so production paths pay nothing when chaos is off. *)

type kind =
  | Delay_delivery
  | Stall_domain
  | Stall_prepare
  | Stall_flush
  | Kill_primary
  | Drop_shipment
  | Delay_shipment

val all_kinds : kind list

(** Stable names: ["delivery-delay"], ["domain-stall"], ["prepare-stall"],
    ["flush-stall"], ["kill-primary"], ["drop-shipment"],
    ["delay-shipment"]. *)
val kind_name : kind -> string

val kind_of_name : string -> kind option

type t

(** The disabled injector; all probes are no-ops. *)
val none : t

(** [make ~seed ~kind ()] builds an injector firing at probability [p]
    (default 0.05) per probe of [kind], stalling for a seeded duration in
    [[delay_us/2, 3*delay_us/2]] (default [delay_us] = 2000). *)
val make : seed:int -> kind:kind -> ?p:float -> ?delay_us:float -> unit -> t

val is_active : t -> bool

(** Which fault an active injector targets. *)
val target : t -> kind option

(** [draw_us t k] makes one seeded decision at injection point [k]:
    [Some d] means this occurrence should stall for [d] µs (the caller
    chooses how — wall sleep or virtual delay); [None] means proceed.
    Thread-safe; always [None] when inactive or when [k] is not the
    injector's kind. *)
val draw_us : t -> kind -> float option

(** [inject_wall t k] = [draw_us] plus a wall-clock sleep on a hit. *)
val inject_wall : t -> kind -> unit

(** Decision points probed so far (active injectors only). *)
val probes : t -> int

(** Faults actually injected so far. *)
val injections : t -> int

(** Parse a CLI spec ["SEED:KIND"], e.g. ["7:prepare-stall"], with
    optional [":P"] and [":DELAY_US"] suffixes (["7:domain-stall:0.1:5000"]). *)
val of_string : string -> (t, string) result

(** ["SEED:KIND"] rendering of an active injector, ["none"] otherwise. *)
val to_string : t -> string
