type kind =
  | Delay_delivery
  | Stall_domain
  | Stall_prepare
  | Stall_flush
  | Kill_primary
  | Drop_shipment
  | Delay_shipment

let all_kinds =
  [ Delay_delivery; Stall_domain; Stall_prepare; Stall_flush; Kill_primary;
    Drop_shipment; Delay_shipment ]

let kind_name = function
  | Delay_delivery -> "delivery-delay"
  | Stall_domain -> "domain-stall"
  | Stall_prepare -> "prepare-stall"
  | Stall_flush -> "flush-stall"
  | Kill_primary -> "kill-primary"
  | Drop_shipment -> "drop-shipment"
  | Delay_shipment -> "delay-shipment"

let kind_of_name = function
  | "delivery-delay" -> Some Delay_delivery
  | "domain-stall" -> Some Stall_domain
  | "prepare-stall" -> Some Stall_prepare
  | "flush-stall" -> Some Stall_flush
  | "kill-primary" -> Some Kill_primary
  | "drop-shipment" -> Some Drop_shipment
  | "delay-shipment" -> Some Delay_shipment
  | _ -> None

let kind_index = function
  | Delay_delivery -> 0
  | Stall_domain -> 1
  | Stall_prepare -> 2
  | Stall_flush -> 3
  | Kill_primary -> 4
  | Drop_shipment -> 5
  | Delay_shipment -> 6

type active = {
  seed : int;
  kind : kind;
  p : float;
  delay_us : float;
  n_probes : int Atomic.t;
  n_injections : int Atomic.t;
}

type t = active option

let none = None

let make ~seed ~kind ?(p = 0.05) ?(delay_us = 2000.) () =
  Some
    {
      seed;
      kind;
      p = Float.min 1. (Float.max 0. p);
      delay_us = Float.max 0. delay_us;
      n_probes = Atomic.make 0;
      n_injections = Atomic.make 0;
    }

let is_active = Option.is_some
let target = Option.map (fun a -> a.kind)

let draw_us t k =
  match t with
  | None -> None
  | Some a ->
    if a.kind <> k then None
    else begin
      (* One decision per probe, numbered by a per-injector atomic counter.
         The (seed, kind, probe#) triple fully determines hit and duration,
         so a seed replays the same fault schedule; only the assignment of
         probe numbers to concurrent probers varies across runs. *)
      let n = Atomic.fetch_and_add a.n_probes 1 in
      let rng =
        Util.Rng.create
          (a.seed lxor ((kind_index a.kind + 1) * 0x9e3779b9) lxor (n * 0x85ebca6b))
      in
      if Util.Rng.float rng 1.0 < a.p then begin
        Atomic.incr a.n_injections;
        (* duration jittered in [delay/2, 3*delay/2] *)
        Some (a.delay_us *. (0.5 +. Util.Rng.float rng 1.0))
      end
      else None
    end

let inject_wall t k =
  match draw_us t k with
  | None -> ()
  | Some d -> if d > 0. then Unix.sleepf (d *. 1e-6)

let probes = function None -> 0 | Some a -> Atomic.get a.n_probes
let injections = function None -> 0 | Some a -> Atomic.get a.n_injections

let of_string s =
  match String.split_on_char ':' s with
  | seed :: kname :: rest -> (
    match (int_of_string_opt seed, kind_of_name kname) with
    | None, _ -> Error (Printf.sprintf "chaos spec %S: bad seed" s)
    | _, None ->
      Error
        (Printf.sprintf "chaos spec %S: unknown kind (want one of %s)" s
           (String.concat ", " (List.map kind_name all_kinds)))
    | Some seed, Some kind -> (
      match rest with
      | [] -> Ok (make ~seed ~kind ())
      | [ p ] -> (
        match float_of_string_opt p with
        | Some p -> Ok (make ~seed ~kind ~p ())
        | None -> Error (Printf.sprintf "chaos spec %S: bad probability" s))
      | [ p; d ] -> (
        match (float_of_string_opt p, float_of_string_opt d) with
        | Some p, Some delay_us -> Ok (make ~seed ~kind ~p ~delay_us ())
        | _ -> Error (Printf.sprintf "chaos spec %S: bad probability/delay" s))
      | _ -> Error (Printf.sprintf "chaos spec %S: too many fields" s)))
  | _ -> Error (Printf.sprintf "chaos spec %S: want SEED:KIND[:P[:DELAY_US]]" s)

let to_string = function
  | None -> "none"
  | Some a -> Printf.sprintf "%d:%s" a.seed (kind_name a.kind)
