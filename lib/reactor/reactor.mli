(** The reactor programming model (§2).

    A {e reactor} is an application-defined logical actor encapsulating
    relational state. Developers declare {e reactor types} — the schemas a
    reactor of that type encapsulates and the procedures that may be invoked
    on it — and instantiate a {e reactor database} by naming reactors of
    those types. Procedures are OCaml functions (the moral equivalent of the
    paper's pre-compiled C++ stored procedures): within a procedure, the
    {!ctx} gives declarative query access to the {e current} reactor's
    relations only; state on other reactors is reached exclusively through
    asynchronous procedure calls returning {!future}s.

    Semantics guaranteed by any runtime exposing this interface (ReactDB):

    - Top-level invocations are ACID root transactions; nested invocations
      are sub-transactions of the same root — no partial commitment, an
      abort anywhere aborts the root (§2.2.3).
    - A procedure completes only after all sub-transactions it spawned
      complete, so ignoring a future never loses its effects or aborts.
    - Calls by a reactor to itself are inlined synchronously; the dynamic
      safety condition of §2.2.4 aborts transactions in which two distinct
      sub-transactions would be concurrently active on one reactor. *)

(** Result of an asynchronous procedure call. *)
type future = {
  get : unit -> Util.Value.t;
      (** Wait for and return the sub-transaction's result. Re-raises the
          sub-transaction's abort, if any. *)
}

(** Execution context passed to every procedure invocation. *)
type ctx = {
  db : Query.Exec.ctx;  (** queries over the current reactor's relations *)
  self : string;  (** name of the reactor this invocation runs on *)
  call : reactor:string -> proc:string -> args:Util.Value.t list -> future;
      (** [procedure_name(args) on reactor reactor_name] — asynchronous;
          force synchrony by calling [get] immediately. *)
  collect : future list -> Util.Value.t list;
      (** Fork–join barrier over a fan-out of futures: waits for {e every}
          future in the list to complete (out-of-order completion is fine —
          already-resolved futures are consumed without suspending), then
          returns their results in list order. If any sub-transaction
          aborted, the first error in list order is re-raised — but only
          after all siblings have completed, so a collect never unwinds
          while sub-transactions are still mutating callee state. The
          enclosing root's deadline is checked once at the collect
          boundary, after all futures have resolved. *)
}

(** A stored procedure: receives the invocation context and arguments,
    returns a single value ([Value.Null] for void procedures). *)
type proc = ctx -> Util.Value.t list -> Util.Value.t

(** A reactor type: schemas encapsulated by — and procedures invocable on —
    every reactor of this type. [rt_indexes] declares secondary indexes per
    table: (table name, [(index name, column names); ...]).

    [rt_readonly] names procedures declared read-only: the runtime may
    execute them against a frozen snapshot epoch with no read-set tracking,
    no locks, no validation and no two-phase commit — they can never abort
    on a concurrency conflict. A declared-read-only procedure that mutates
    state aborts with [Occ.Txn.Abort].

    [rt_morphs] pairs alternative formulations of the same logical
    procedure, (sequential name, parallel name), letting the runtime morph
    an invocation between them (e.g. under {!Config.Auto} the router picks
    a formulation per root from live load signals). *)
type rtype = {
  rt_name : string;
  rt_schemas : Storage.Schema.t list;
  rt_indexes : (string * (string * string list) list) list;
  rt_procs : (string * proc) list;
  rt_readonly : string list;
  rt_morphs : (string * string) list;
}

val rtype :
  name:string ->
  schemas:Storage.Schema.t list ->
  ?indexes:(string * (string * string list) list) list ->
  procs:(string * proc) list ->
  ?readonly:string list ->
  ?morphs:(string * string) list ->
  unit ->
  rtype

(** A reactor database declaration: the reactor types, the named reactors
    (name, type name), and optional per-reactor initial-data loaders applied
    physically at bootstrap (before any transaction runs). *)
type decl = {
  types : rtype list;
  reactors : (string * string) list;
  loaders : (string * (Storage.Catalog.t -> unit)) list;
}

val decl :
  types:rtype list ->
  reactors:(string * string) list ->
  ?loaders:(string * (Storage.Catalog.t -> unit)) list ->
  unit ->
  decl

(** Raise a user-defined abort of the enclosing root transaction. *)
val abort : string -> 'a

(** Raised by the runtime when the dynamic safety condition of §2.2.4 is
    violated (a reactor called while already active in the same root
    transaction). Aborts the root like {!Occ.Txn.Abort} but is classified
    as a structural error, not a user abort. *)
exception Dangerous_call of string

(** [find_type d name] and [type_of_reactor d name] resolve declarations;
    raise [Invalid_argument] on unknown names. *)
val find_type : decl -> string -> rtype

val type_of_reactor : decl -> string -> rtype

(** [find_proc rt name] resolves a procedure; raises [Invalid_argument]. *)
val find_proc : rtype -> string -> proc

(** [proc_readonly rt name] — is [name] declared read-only in [rt]? *)
val proc_readonly : rtype -> string -> bool

(** [morph_target rt seq] is the parallel formulation paired with [seq],
    and [morph_of rt par] the sequential one paired with [par], if any. *)
val morph_target : rtype -> string -> string option

val morph_of : rtype -> string -> string option

(** [validate d] checks the declaration: type names unique, reactor names
    unique, reactor types declared, loader names declared, procedure names
    unique per type, read-only and morph declarations naming real
    procedures. Raises [Invalid_argument]. *)
val validate : decl -> unit

(** {1 Argument helpers for stored-procedure code} *)

val arg_int : Util.Value.t list -> int -> int
val arg_float : Util.Value.t list -> int -> float
val arg_str : Util.Value.t list -> int -> string
val arg : Util.Value.t list -> int -> Util.Value.t
