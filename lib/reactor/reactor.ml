type future = { get : unit -> Util.Value.t }

type ctx = {
  db : Query.Exec.ctx;
  self : string;
  call : reactor:string -> proc:string -> args:Util.Value.t list -> future;
  collect : future list -> Util.Value.t list;
}

type proc = ctx -> Util.Value.t list -> Util.Value.t

type rtype = {
  rt_name : string;
  rt_schemas : Storage.Schema.t list;
  rt_indexes : (string * (string * string list) list) list;
  rt_procs : (string * proc) list;
  rt_readonly : string list;
  rt_morphs : (string * string) list;
}

let rtype ~name ~schemas ?(indexes = []) ~procs ?(readonly = []) ?(morphs = [])
    () =
  { rt_name = name; rt_schemas = schemas; rt_indexes = indexes;
    rt_procs = procs; rt_readonly = readonly; rt_morphs = morphs }

type decl = {
  types : rtype list;
  reactors : (string * string) list;
  loaders : (string * (Storage.Catalog.t -> unit)) list;
}

let decl ~types ~reactors ?(loaders = []) () = { types; reactors; loaders }

let abort msg = raise (Occ.Txn.Abort msg)

(* Raised by the runtime when the dynamic safety condition of §2.2.4 is
   violated (a reactor is called while already active in the same root
   transaction). Typed so abort accounting can distinguish structural
   errors from user aborts without inspecting message text. *)
exception Dangerous_call of string

let find_type d name =
  match List.find_opt (fun t -> t.rt_name = name) d.types with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Reactor: unknown reactor type %S" name)

let type_of_reactor d name =
  match List.assoc_opt name d.reactors with
  | Some tyname -> find_type d tyname
  | None -> invalid_arg (Printf.sprintf "Reactor: unknown reactor %S" name)

let find_proc rt name =
  match List.assoc_opt name rt.rt_procs with
  | Some p -> p
  | None ->
    invalid_arg
      (Printf.sprintf "Reactor: type %s has no procedure %S" rt.rt_name name)

let proc_readonly rt name = List.mem name rt.rt_readonly
let morph_target rt name = List.assoc_opt name rt.rt_morphs

let morph_of rt name =
  List.find_map
    (fun (seq, par) -> if par = name then Some seq else None)
    rt.rt_morphs

let check_unique what names =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Reactor: duplicate %s %S" what n);
      Hashtbl.add seen n ())
    names

let validate d =
  check_unique "reactor type" (List.map (fun t -> t.rt_name) d.types);
  check_unique "reactor" (List.map fst d.reactors);
  List.iter
    (fun t ->
      check_unique
        (Printf.sprintf "procedure in type %s" t.rt_name)
        (List.map fst t.rt_procs);
      check_unique
        (Printf.sprintf "schema in type %s" t.rt_name)
        (List.map (fun s -> s.Storage.Schema.sname) t.rt_schemas);
      List.iter
        (fun (table, _) ->
          if
            not
              (List.exists
                 (fun s -> s.Storage.Schema.sname = table)
                 t.rt_schemas)
          then
            invalid_arg
              (Printf.sprintf "Reactor: type %s declares indexes on unknown table %S"
                 t.rt_name table))
        t.rt_indexes;
      List.iter
        (fun p ->
          if not (List.mem_assoc p t.rt_procs) then
            invalid_arg
              (Printf.sprintf
                 "Reactor: type %s declares unknown procedure %S read-only"
                 t.rt_name p))
        t.rt_readonly;
      List.iter
        (fun (seq, par) ->
          List.iter
            (fun p ->
              if not (List.mem_assoc p t.rt_procs) then
                invalid_arg
                  (Printf.sprintf
                     "Reactor: type %s declares a morph over unknown procedure %S"
                     t.rt_name p))
            [ seq; par ])
        t.rt_morphs)
    d.types;
  List.iter (fun (_, ty) -> ignore (find_type d ty)) d.reactors;
  List.iter (fun (r, _) -> ignore (type_of_reactor d r)) d.loaders

let arg args i =
  match List.nth_opt args i with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Reactor: missing argument %d" i)

let arg_int args i = Util.Value.to_int (arg args i)
let arg_float args i = Util.Value.to_number (arg args i)
let arg_str args i = Util.Value.to_str (arg args i)
