(** Physical records with Silo-style TID words.

    A record is the unit of concurrency control: it carries the version
    ([tid]) observed by optimistic readers, a no-wait lock owner field used
    during commit, and an [absent] flag used both for not-yet-committed
    inserts (visible only to the inserting transaction) and for logical
    deletes (readers observing a bumped TID on an absent record fail
    validation).

    Lock order across records is defined by the globally unique [rid],
    preventing deadlock among committers that lock their write sets in
    sorted order. *)

(** A superseded version, kept on the record's history chain for snapshot
    readers. Chains are newest-first with strictly decreasing commit
    epochs; [v_next] is mutable only so garbage collection can cut the
    tail in place. *)
type version = {
  v_tid : int;
  v_data : Util.Value.t array;
  v_absent : bool;
  mutable v_next : version option;
}

type t = {
  rid : int;
  mutable data : Util.Value.t array;
  mutable tid : int;
  mutable lock : int; (* 0 when free, otherwise the owning transaction id *)
  mutable absent : bool;
  mutable hist : version option;
      (** superseded versions, newest first (empty unless the commit path
          runs with snapshots enabled) *)
}

(** [fresh ~absent data] allocates a record with a new [rid] and TID 0. *)
val fresh : absent:bool -> Util.Value.t array -> t

(** TID packing: high bits epoch, low 32 bits sequence number. *)

val tid_make : epoch:int -> seq:int -> int

val tid_epoch : int -> int
val tid_seq : int -> int

(** [next_tid ~epoch observed] is a TID strictly greater than every TID in
    [observed] and belonging to at least [epoch] (Silo's TID assignment
    rule). *)
val next_tid : epoch:int -> int list -> int

val is_locked : t -> bool
val locked_by : t -> int option

(** [try_lock r ~txn] acquires the no-wait lock; [true] on success or if
    already held by [txn]. *)
val try_lock : t -> txn:int -> bool

(** [unlock r ~txn] releases the lock if held by [txn]; no-op otherwise. *)
val unlock : t -> txn:int -> unit

(** [snapshot_read r ~snapshot] is the row visible at snapshot epoch
    [snapshot]: the newest version (the record itself or a chain entry)
    whose committing epoch is [<= snapshot]; [None] if that version is
    absent or if the key did not exist at the snapshot. Sound only for
    snapshot epochs strictly below every in-flight commit epoch, which is
    what the backends' snapshot acquisition guarantees. *)
val snapshot_read : t -> snapshot:int -> Util.Value.t array option

(** [retire r ~new_tid] pushes the record's current version onto the chain
    if [new_tid] belongs to a later epoch (a same-epoch successor shadows
    it — no snapshot can sit between two commits of one epoch). Call just
    before installing the new version, then {!trim} once it is in place. *)
val retire : t -> new_tid:int -> unit

(** [graft r ~from] splices the superseded record [from] (a displaced
    delete tombstone whose key [r] re-inserts) into [r]'s history chain. *)
val graft : t -> from:t -> unit

(** [trim r ~horizon] reclaims every version strictly older than the
    newest version with epoch [<= horizon] — unreachable once every live
    and future snapshot is at an epoch [>= horizon]. *)
val trim : t -> horizon:int -> unit

(** Number of superseded versions currently chained (GC observability). *)
val chain_length : t -> int
