(** Tables: a schema plus a primary-key B+tree over {!Record.t}.

    Table operations are {e physical}: they manipulate the index and records
    directly and perform no concurrency control. Transactional reads and
    writes go through [Occ.Txn], which layers read/write-set tracking and
    validation over these primitives. Phantom witnesses from the underlying
    B+tree are surfaced so that scans can be validated. *)

module Key : sig
  type t = Util.Value.t array

  (** Lexicographic order; shorter keys that are a prefix of longer ones
      compare smaller, so partial-key prefixes can bound range scans. *)
  val compare : t -> t -> int
end

module Idx : module type of Btree.Make (Key)

(** A secondary index: selected columns, suffixed with the primary key for
    uniqueness, mapping to the same records as the primary index. Maintained
    by {!insert}, {!remove} and {!update_data}; scans over it take leaf
    witnesses for phantom validation exactly like primary scans.

    [sec_plan] is the flat column-extraction plan (indexed columns followed
    by the primary-key columns) precomputed at {!create} time; [sec_scratch]
    is an internal reusable key buffer for lookups that never store the
    key. *)
type secondary = private {
  sec_name : string;
  sec_cols : int array;
  sec_plan : int array;
  sec_scratch : Util.Value.t array;
  sec_idx : Record.t Idx.t;
}

type t = {
  uid : int;  (** globally unique; identifies the table in write sets *)
  schema : Schema.t;
  idx : Record.t Idx.t;
  secondaries : secondary list;
}

type witness = Idx.witness

(** [create ?secondaries schema] — [secondaries] are (index name, column
    names) pairs. Raises [Invalid_argument] on unknown columns or duplicate
    index names. *)
val create : ?secondaries:(string * string list) list -> Schema.t -> t

(** Raises [Invalid_argument] for unknown index names. *)
val secondary : t -> string -> secondary

(** Secondary key (indexed columns @ primary key) of a tuple. *)
val sec_key_of : t -> secondary -> Util.Value.t array -> Key.t

(** [update_data t record data] replaces the record's tuple in place,
    relocating its secondary-index entries as needed. The primary key must
    be unchanged. *)
val update_data : t -> Record.t -> Util.Value.t array -> unit

(** Ordered scan over a secondary index (bounds are secondary keys; use
    {!key_prefix_bounds} on an indexed-column prefix). *)
val scan_secondary :
  ?on_node:(witness -> unit) ->
  ?lo:Key.t ->
  ?hi:Key.t ->
  ?rev:bool ->
  t ->
  index:string ->
  f:(Record.t -> bool) ->
  unit
val size : t -> int

(** Unlink every record from the primary index {e and} every secondary
    index (checkpoint restore; clearing only [t.idx] would leave stale
    secondary entries). *)
val clear : t -> unit

(** [find t key] locates the record currently indexed under [key] (present
    or absent-marked). *)
val find : ?on_node:(witness -> unit) -> t -> Key.t -> Record.t option

(** [insert t record] indexes [record] under its tuple's primary key.
    Returns the record previously indexed under that key, if any (the caller
    decides whether that is a uniqueness violation). *)
val insert : t -> Record.t -> Record.t option

(** Remove the index entry for [key]; returns the unlinked record. *)
val remove : t -> Key.t -> Record.t option

(** [sec_forget t record] drops [record]'s secondary-index entries while
    leaving its primary entry in place — the physical half of a logical
    delete that retains the record as a snapshot-visible tombstone. *)
val sec_forget : t -> Record.t -> unit

(** [reinstate t record] re-links a displaced tombstone into the primary
    index only (its secondary entries were dropped when its delete
    installed). Used when the insert that displaced it rolls back. *)
val reinstate : t -> Record.t -> unit

(** [key_prefix_bounds prefix] gives [(lo, hi)] bounds covering exactly the
    keys extending [prefix]; pass them to {!range}. [hi] is a sentinel upper
    bound that compares greater than any extension of [prefix]. *)
val key_prefix_bounds : Key.t -> Key.t * Key.t

val range :
  ?on_node:(witness -> unit) ->
  ?lo:Key.t ->
  ?hi:Key.t ->
  t ->
  f:(Record.t -> bool) ->
  unit

val range_rev :
  ?on_node:(witness -> unit) ->
  ?lo:Key.t ->
  ?hi:Key.t ->
  t ->
  f:(Record.t -> bool) ->
  unit

(** Key of a tuple under this table's schema. *)
val key_of_tuple : t -> Util.Value.t array -> Key.t
