type version = {
  v_tid : int;
  v_data : Util.Value.t array;
  v_absent : bool;
  mutable v_next : version option;
}

type t = {
  rid : int;
  mutable data : Util.Value.t array;
  mutable tid : int;
  mutable lock : int;
  mutable absent : bool;
  mutable hist : version option;
}

(* Atomic: records are allocated concurrently by the parallel runtime's
   per-container domains, and rids must stay globally unique (they define
   the deadlock-free lock order). Single-domain allocation sequences are
   unchanged. *)
let counter = Atomic.make 0

let fresh ~absent data =
  { rid = 1 + Atomic.fetch_and_add counter 1; data; tid = 0; lock = 0; absent;
    hist = None }

let seq_bits = 32
let seq_mask = (1 lsl seq_bits) - 1

let tid_make ~epoch ~seq =
  if seq > seq_mask then invalid_arg "Record.tid_make: sequence overflow";
  (epoch lsl seq_bits) lor seq

let tid_epoch tid = tid lsr seq_bits
let tid_seq tid = tid land seq_mask

let next_tid ~epoch observed =
  let mx = List.fold_left Stdlib.max 0 observed in
  let e = Stdlib.max epoch (tid_epoch mx) in
  if e > tid_epoch mx then tid_make ~epoch:e ~seq:1
  else tid_make ~epoch:e ~seq:(tid_seq mx + 1)

let is_locked r = r.lock <> 0
let locked_by r = if r.lock = 0 then None else Some r.lock

let try_lock r ~txn =
  if r.lock = 0 then begin
    r.lock <- txn;
    true
  end
  else r.lock = txn

let unlock r ~txn = if r.lock = txn then r.lock <- 0

(* ---- multi-version snapshot support ----

   The chain holds superseded versions newest-first with strictly
   decreasing commit epochs; [data]/[tid]/[absent] on the record itself are
   always the newest version. Visibility is epoch-granular: a snapshot at
   epoch [s] observes the newest version whose committing epoch is <= [s].
   TIDs within one epoch are not globally ordered across records, so a
   finer-than-epoch rule would be unsound; the backends only hand out
   snapshot epochs strictly below every in-flight commit epoch, which makes
   the epoch cut consistent. *)

let rec chain_find v ~snapshot =
  match v with
  | None -> None
  | Some v ->
    if tid_epoch v.v_tid <= snapshot then
      if v.v_absent then None else Some v.v_data
    else chain_find v.v_next ~snapshot

let snapshot_read r ~snapshot =
  if tid_epoch r.tid <= snapshot then
    if r.absent then None else Some r.data
  else chain_find r.hist ~snapshot

(* Drop every version strictly older than the newest version with epoch
   <= [horizon]: no live or future snapshot (all at epochs >= horizon) can
   reach past that version. The record's own version counts as the newest
   link of the chain. *)
let trim r ~horizon =
  if tid_epoch r.tid <= horizon then r.hist <- None
  else begin
    let rec cut v =
      match v with
      | None -> ()
      | Some v -> if tid_epoch v.v_tid <= horizon then v.v_next <- None else cut v.v_next
    in
    cut r.hist
  end

(* Called by the commit install path just before overwriting the record
   with a version committing at [tid_epoch new_tid]; the caller trims once
   the new version is in place. A same-epoch successor shadows the old
   version immediately (snapshots are only issued at epochs strictly below
   any in-flight commit epoch), so only cross-epoch installs push. *)
let retire r ~new_tid =
  if tid_epoch new_tid > tid_epoch r.tid then
    r.hist <-
      Some { v_tid = r.tid; v_data = r.data; v_absent = r.absent; v_next = r.hist }

(* Splice the superseded record [old_r] (typically a delete tombstone being
   displaced by a re-insert of its key) into [r]'s history. *)
let graft r ~from:old_r =
  r.hist <-
    Some
      { v_tid = old_r.tid; v_data = old_r.data; v_absent = old_r.absent;
        v_next = old_r.hist }

let chain_length r =
  let rec go n = function None -> n | Some v -> go (n + 1) v.v_next in
  go 0 r.hist
