type t = {
  rid : int;
  mutable data : Util.Value.t array;
  mutable tid : int;
  mutable lock : int;
  mutable absent : bool;
}

(* Atomic: records are allocated concurrently by the parallel runtime's
   per-container domains, and rids must stay globally unique (they define
   the deadlock-free lock order). Single-domain allocation sequences are
   unchanged. *)
let counter = Atomic.make 0

let fresh ~absent data =
  { rid = 1 + Atomic.fetch_and_add counter 1; data; tid = 0; lock = 0; absent }

let seq_bits = 32
let seq_mask = (1 lsl seq_bits) - 1

let tid_make ~epoch ~seq =
  if seq > seq_mask then invalid_arg "Record.tid_make: sequence overflow";
  (epoch lsl seq_bits) lor seq

let tid_epoch tid = tid lsr seq_bits
let tid_seq tid = tid land seq_mask

let next_tid ~epoch observed =
  let mx = List.fold_left Stdlib.max 0 observed in
  let e = Stdlib.max epoch (tid_epoch mx) in
  if e > tid_epoch mx then tid_make ~epoch:e ~seq:1
  else tid_make ~epoch:e ~seq:(tid_seq mx + 1)

let is_locked r = r.lock <> 0
let locked_by r = if r.lock = 0 then None else Some r.lock

let try_lock r ~txn =
  if r.lock = 0 then begin
    r.lock <- txn;
    true
  end
  else r.lock = txn

let unlock r ~txn = if r.lock = txn then r.lock <- 0
