module Key = struct
  type t = Util.Value.t array

  let compare a b =
    if a == b then 0
    else begin
      let la = Array.length a and lb = Array.length b in
      let n = Stdlib.min la lb in
      let rec go i =
        if i = n then Int.compare la lb
        else
          (* Same-constructor scalar fast paths keep the common case (int and
             string key columns) free of the generic dispatch. *)
          let c =
            match Array.unsafe_get a i, Array.unsafe_get b i with
            | Util.Value.Int x, Util.Value.Int y -> Int.compare x y
            | Util.Value.Str x, Util.Value.Str y -> String.compare x y
            | x, y -> Util.Value.compare x y
          in
          if c <> 0 then c else go (i + 1)
      in
      go 0
    end
end

module Idx = Btree.Make (Key)

(* A secondary index maps (indexed columns @ primary key) -> record; the
   primary-key suffix makes entries unique and gives deterministic order
   among equal secondary keys. [sec_plan] is the flat column-extraction
   plan (indexed columns then primary-key columns) precomputed at table
   creation, so building a secondary key is a single loop — no per-operation
   Array.map + Array.append. [sec_scratch] is a reusable buffer for keys
   that are only looked up, never stored (deletions, comparisons). *)
type secondary = {
  sec_name : string;
  sec_cols : int array;
  sec_plan : int array;
  sec_scratch : Util.Value.t array;
  sec_idx : Record.t Idx.t;
}

type t = {
  uid : int;
  schema : Schema.t;
  idx : Record.t Idx.t;
  secondaries : secondary list;
}

type witness = Idx.witness

let uid_counter = Atomic.make 0

let create ?(secondaries = []) schema =
  let uid = 1 + Atomic.fetch_and_add uid_counter 1 in
  let mk (sec_name, cols) =
    let sec_cols =
      Array.of_list
        (List.map
           (fun c ->
             try Schema.column_index schema c
             with Not_found ->
               invalid_arg
                 (Printf.sprintf "Table.create: index %S on unknown column %S"
                    sec_name c))
           cols)
    in
    let sec_plan = Array.append sec_cols schema.Schema.key in
    { sec_name; sec_cols; sec_plan;
      sec_scratch = Array.make (Array.length sec_plan) Util.Value.Null;
      sec_idx = Idx.create () }
  in
  let secondaries = List.map mk secondaries in
  let names = List.map (fun s -> s.sec_name) secondaries in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg "Table.create: duplicate index name";
  { uid; schema; idx = Idx.create (); secondaries }

let secondary t name =
  match List.find_opt (fun s -> s.sec_name = name) t.secondaries with
  | Some s -> s
  | None ->
    invalid_arg
      (Printf.sprintf "Table: no index %S on %s" name t.schema.Schema.sname)

(* Secondary key of a tuple under index [s]: indexed columns then the
   primary key, extracted through the precomputed plan. *)
let sec_key_of _t s data =
  Array.map (fun i -> Array.unsafe_get data i) s.sec_plan

(* Same key, built into the per-secondary scratch buffer: valid only until
   the next call for this secondary, and must never be handed to an index
   insertion (the B+tree stores keys). Safe for delete/compare lookups. *)
let sec_key_scratch s data =
  let plan = s.sec_plan in
  for i = 0 to Array.length plan - 1 do
    Array.unsafe_set s.sec_scratch i
      (Array.unsafe_get data (Array.unsafe_get plan i))
  done;
  s.sec_scratch

let sec_insert t record =
  List.iter
    (fun s ->
      ignore (Idx.insert s.sec_idx (sec_key_of t s record.Record.data) record))
    t.secondaries

let sec_remove t data =
  List.iter
    (fun s -> ignore (Idx.delete s.sec_idx (sec_key_scratch s data)))
    t.secondaries

let clear t =
  Idx.clear t.idx;
  List.iter (fun s -> Idx.clear s.sec_idx) t.secondaries

let size t = Idx.size t.idx
let find ?on_node t key = Idx.find ?on_node t.idx key

let insert t record =
  Schema.validate t.schema record.Record.data;
  let prev = Idx.insert t.idx (Schema.key_of_tuple t.schema record.Record.data) record in
  (match prev with Some old -> sec_remove t old.Record.data | None -> ());
  sec_insert t record;
  prev

let remove t key =
  match Idx.delete t.idx key with
  | Some record as r ->
    sec_remove t record.Record.data;
    r
  | None -> None

(* Tombstone retention (snapshot mode): a logical delete keeps the record in
   the primary index — version-chain readers must still reach it by key —
   but drops its secondary entries, exactly what [remove] would have done to
   them. *)
let sec_forget t record = sec_remove t record.Record.data

(* Reinstate a displaced tombstone in the primary index only (its secondary
   entries were already dropped when its delete installed). Used when the
   insert that displaced it rolls back. *)
let reinstate t record =
  ignore (Idx.insert t.idx (Schema.key_of_tuple t.schema record.Record.data) record)

(* In-place data update with secondary-index maintenance; the primary key
   must be unchanged (the query layer enforces this). Called by the commit
   protocol's install phase. *)
let update_data t record data =
  List.iter
    (fun s ->
      if
        (* With an unchanged primary key the secondary key moves only if an
           indexed column changed; compare those positions in place instead
           of materializing both keys. *)
        Array.exists
          (fun i ->
            Util.Value.compare (Array.unsafe_get record.Record.data i)
              (Array.unsafe_get data i)
            <> 0)
          s.sec_cols
      then begin
        ignore (Idx.delete s.sec_idx (sec_key_scratch s record.Record.data));
        ignore (Idx.insert s.sec_idx (sec_key_of t s data) record)
      end)
    t.secondaries;
  record.Record.data <- data

let scan_secondary ?on_node ?lo ?hi ?(rev = false) t ~index ~f =
  let s = secondary t index in
  if rev then Idx.range_rev ?on_node ?lo ?hi s.sec_idx ~f:(fun _ r -> f r)
  else Idx.range ?on_node ?lo ?hi s.sec_idx ~f:(fun _ r -> f r)

(* [Str "\255..."] sentinel would be fragile; instead rely on the
   prefix-order property of Key.compare: extensions of [prefix] sort
   immediately after [prefix] and before [prefix'] where [prefix'] bumps the
   last component. We append a maximal sentinel component instead, which is
   simpler: no real column value compares above it because schemas never
   store it. *)
let sentinel_hi = Util.Value.Str "\xff\xff\xff\xff\xff\xff\xff\xff"

let key_prefix_bounds prefix =
  (prefix, Array.append prefix [| sentinel_hi |])

let range ?on_node ?lo ?hi t ~f = Idx.range ?on_node ?lo ?hi t.idx ~f:(fun _ r -> f r)

let range_rev ?on_node ?lo ?hi t ~f =
  Idx.range_rev ?on_node ?lo ?hi t.idx ~f:(fun _ r -> f r)

let key_of_tuple t tuple = Schema.key_of_tuple t.schema tuple
