(** Experiment harness: closed-loop client workers and epoch-based
    measurement (§4.1.2, following OLTP-Bench).

    Workers are simulation processes in a separate "worker container" (they
    do not contend for transaction-executor cores, matching the paper's
    setup of worker threads pinned to their own cores). Measurements report
    averages and standard deviations across measurement epochs; warm-up
    epochs are discarded. All timings are virtual µs. *)

(** Mean per-transaction latency components (virtual µs) in the
    cost-model's vocabulary: synchronous execution, send ([Cs]) and
    receive ([Cr]) costs, asynchronous (overlapped) execution, and
    everything unattributed. Used to calibrate {!Costmodel} predictions
    (fig6, predict1). *)
type breakdown_avg = {
  avg_sync_exec : float;
  avg_cs : float;
  avg_cr : float;
  avg_async_exec : float;
  avg_overhead : float;
}

(** Attempt accounting (unified with [Runtime.Db.Load.result]):
    [committed] and [aborted] count {e attempts}, so [committed + aborted]
    is the attempt total; [retries] counts the aborted attempts that were
    resubmitted (every retry is also one of the [aborted] attempts), so
    logical transactions that ultimately failed number
    [aborted - retries]. *)
type run_result = {
  throughput : float;  (** committed txns per second, mean across epochs *)
  throughput_std : float;
  avg_latency : float;  (** µs, committed transactions, mean across epochs *)
  latency_std : float;  (** std of per-epoch mean latencies *)
  p50_latency : float;
      (** per-transaction latency percentiles (µs, committed transactions,
          whole measurement window) from a bounded uniform reservoir *)
  p95_latency : float;
  p99_latency : float;
  abort_rate : float;  (** aborts / attempts, post-warm-up, attempt-level *)
  committed : int;  (** snapshot taken the instant measurement ends *)
  aborted : int;
  breakdown : breakdown_avg;  (** averaged over committed transactions *)
  utilizations : float array;  (** per-executor busy fraction *)
  aborts_by_reason : (string * int) list;
      (** typed buckets: "user", "validation", "dangerous-structure" *)
  retries : int;
      (** transient-abort resubmissions inside the measurement window *)
  log_flushes : int;  (** durable-mode group-commit flushes (0 otherwise) *)
}

(** Load specification. [gen worker rng] produces the next request of
    [worker]; each worker has an independent, seeded RNG. [max_retries]
    (default 0): aborted attempts whose cause is transient — conflicts and
    validation failures, per [Obs.Abort.transient] — are resubmitted with
    an increasing retry index up to this many times; user aborts,
    dangerous-call-structure aborts, deadline timeouts and admission sheds
    are never retried in-loop.

    [backoff] (default [Some Util.Backoff.default]) paces resubmissions
    with seeded exponential backoff + jitter spent as {e virtual} delay
    ([None] restores immediate retry); worker [w]'s delays derive from
    [seed lxor (w * 0x9e3779b9)], so runs are deterministic per seed.
    [deadline_us] gives every attempt that virtual-µs latency budget
    (expired attempts abort with the non-transient [Obs.Abort.Timeout]). *)
type spec = {
  n_workers : int;
  gen : int -> Util.Rng.t -> Workloads.Wl.request;
  epochs : int;  (** measurement epochs (the paper uses 50) *)
  epoch_us : float;
  warmup_epochs : int;
  seed : int;
  max_retries : int;
  deadline_us : float option;
  backoff : Util.Backoff.policy option;
}

(** [spec ~n_workers gen] with defaults scaled down from the paper's
    setup: 20 epochs of 20 000 virtual µs after 3 warm-up epochs,
    seed 42, no retries, no deadline, default backoff policy. *)
val spec :
  ?epochs:int ->
  ?epoch_us:float ->
  ?warmup_epochs:int ->
  ?seed:int ->
  ?max_retries:int ->
  ?deadline_us:float ->
  ?backoff:Util.Backoff.policy option ->
  n_workers:int ->
  (int -> Util.Rng.t -> Workloads.Wl.request) ->
  spec

(** Run a closed-loop load experiment: spawns workers, runs warm-up, resets
    statistics, measures, stops the workers, and drains the simulation.
    Must be called with a freshly created database whose engine has not run
    yet. *)
val run_load : Reactdb.Database.t -> spec -> run_result

(** Measure [n] sequential transactions from a single worker (the setup of
    the latency experiments, §4.2): returns the per-transaction outcomes
    after [warmup] unrecorded requests. *)
val measure_txns :
  Reactdb.Database.t ->
  ?warmup:int ->
  ?seed:int ->
  n:int ->
  (Util.Rng.t -> Workloads.Wl.request) ->
  Reactdb.Database.outcome list

(** Mean latency in µs of the committed outcomes. *)
val mean_latency : Reactdb.Database.outcome list -> float

(** Average the breakdowns of committed outcomes. *)
val mean_breakdown : Reactdb.Database.outcome list -> breakdown_avg

(** [build decl config] creates an engine and database pair. *)
val build :
  ?profile:Reactdb.Profile.t ->
  Reactor.decl ->
  Reactdb.Config.t ->
  Reactdb.Database.t
