open Util
module DB = Reactdb.Database

type breakdown_avg = {
  avg_sync_exec : float;
  avg_cs : float;
  avg_cr : float;
  avg_async_exec : float;
  avg_overhead : float;
}

type run_result = {
  throughput : float;
  throughput_std : float;
  avg_latency : float;
  latency_std : float;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  abort_rate : float;
  committed : int;
  aborted : int;
  breakdown : breakdown_avg;
  utilizations : float array;
  aborts_by_reason : (string * int) list;
  retries : int;
  log_flushes : int;
}

type spec = {
  n_workers : int;
  gen : int -> Rng.t -> Workloads.Wl.request;
  epochs : int;
  epoch_us : float;
  warmup_epochs : int;
  seed : int;
  max_retries : int;
  deadline_us : float option;
  backoff : Backoff.policy option;
}

let spec ?(epochs = 20) ?(epoch_us = 20_000.) ?(warmup_epochs = 3) ?(seed = 42)
    ?(max_retries = 0) ?deadline_us ?(backoff = Some Backoff.default)
    ~n_workers gen =
  { n_workers; gen; epochs; epoch_us; warmup_epochs; seed; max_retries;
    deadline_us; backoff }

let build ?(profile = Reactdb.Profile.default) decl config =
  let eng = Sim.Engine.create () in
  DB.create eng decl config profile

let zero_bd =
  { avg_sync_exec = 0.; avg_cs = 0.; avg_cr = 0.; avg_async_exec = 0.;
    avg_overhead = 0. }

let add_bd acc (b : DB.breakdown) =
  {
    avg_sync_exec = acc.avg_sync_exec +. b.DB.bd_sync_exec;
    avg_cs = acc.avg_cs +. b.DB.bd_cs;
    avg_cr = acc.avg_cr +. b.DB.bd_cr;
    avg_async_exec = acc.avg_async_exec +. b.DB.bd_async_exec;
    avg_overhead = acc.avg_overhead +. b.DB.bd_overhead;
  }

let scale_bd acc n =
  let d = Float.max 1. (float_of_int n) in
  {
    avg_sync_exec = acc.avg_sync_exec /. d;
    avg_cs = acc.avg_cs /. d;
    avg_cr = acc.avg_cr /. d;
    avg_async_exec = acc.avg_async_exec /. d;
    avg_overhead = acc.avg_overhead /. d;
  }

let run_load db s =
  let eng = DB.engine db in
  let stop = ref false in
  let measuring = ref false in
  let epoch_lat = ref (Stats.create ()) in
  let reservoir = Stats.Reservoir.create ~seed:s.seed 8192 in
  let bd_sum = ref zero_bd in
  let bd_count = ref 0 in
  let n_retries = ref 0 in
  (* Closed-loop workers. Aborted attempts with a transient cause are
     resubmitted (same request, incremented retry index) up to
     [max_retries] times — attempt-level counters still see every attempt;
     [n_retries] counts the resubmissions so the caller can separate
     logical transactions from attempts. Resubmissions are paced by the
     seeded exponential-backoff policy as virtual delay (non-transient
     causes — user, dangerous, timeout, overloaded — are never retried). *)
  for w = 0 to s.n_workers - 1 do
    Sim.Engine.spawn eng (fun () ->
        let rng = Rng.stream ~seed:s.seed w in
        let bseed = s.seed lxor (w * 0x9e3779b9) in
        let rec attempt req idx =
          let out =
            DB.exec_txn ~retry:idx ?deadline_us:s.deadline_us db
              ~reactor:req.Workloads.Wl.reactor ~proc:req.Workloads.Wl.proc
              ~args:req.Workloads.Wl.args
          in
          (if !measuring then
             match out.DB.result with
             | Ok _ ->
               Stats.add !epoch_lat out.DB.latency;
               Stats.Reservoir.add reservoir out.DB.latency;
               bd_sum := add_bd !bd_sum out.DB.breakdown;
               incr bd_count
             | Error _ -> ());
          match (out.DB.result, out.DB.abort_cause) with
          | Error _, Some cause
            when Obs.Abort.transient cause.Obs.Abort.kind
                 && idx < s.max_retries ->
            if !measuring then incr n_retries;
            (match s.backoff with
            | Some p ->
              Sim.Engine.delay
                (Backoff.delay_us p ~seed:bseed ~attempt:(idx + 1))
            | None -> ());
            attempt req (idx + 1)
          | _ -> ()
        in
        let rec loop () =
          if not !stop then begin
            attempt (s.gen w rng) 0;
            loop ()
          end
        in
        loop ())
  done;
  (* Epoch monitor. *)
  let tputs = Stats.create () in
  let lat_means = Stats.create () in
  let finished = ref false in
  (* Counters are snapshotted the instant measurement ends: workers still
     mid-transaction when [stop] flips keep draining (and counting) until
     the engine runs dry, and those trailing commits/aborts must not leak
     into the measured totals. *)
  let snap_committed = ref 0 in
  let snap_aborted = ref 0 in
  let snap_reasons = ref [] in
  let snap_utils = ref [||] in
  let snap_flushes = ref 0 in
  Sim.Engine.spawn eng (fun () ->
      Sim.Engine.delay (s.epoch_us *. float_of_int s.warmup_epochs);
      DB.reset_stats db;
      measuring := true;
      let prev_committed = ref 0 in
      for _ = 1 to s.epochs do
        epoch_lat := Stats.create ();
        Sim.Engine.delay s.epoch_us;
        let c = DB.n_committed db in
        Stats.add tputs
          (float_of_int (c - !prev_committed) /. s.epoch_us *. 1e6);
        prev_committed := c;
        if Stats.count !epoch_lat > 0 then
          Stats.add lat_means (Stats.mean !epoch_lat)
      done;
      measuring := false;
      snap_committed := DB.n_committed db;
      snap_aborted := DB.n_aborted db;
      snap_reasons := DB.aborts_by_reason db;
      snap_utils := DB.utilizations db;
      snap_flushes := DB.n_log_flushes db;
      stop := true;
      finished := true);
  ignore (Sim.Engine.run eng);
  if not !finished then failwith "Harness.run_load: monitor did not finish";
  {
    throughput = Stats.mean tputs;
    throughput_std = Stats.stddev tputs;
    avg_latency = Stats.mean lat_means;
    latency_std = Stats.stddev lat_means;
    p50_latency = Stats.Reservoir.percentile reservoir 50.;
    p95_latency = Stats.Reservoir.percentile reservoir 95.;
    p99_latency = Stats.Reservoir.percentile reservoir 99.;
    abort_rate =
      (let c = !snap_committed and a = !snap_aborted in
       if c + a = 0 then 0. else float_of_int a /. float_of_int (c + a));
    committed = !snap_committed;
    aborted = !snap_aborted;
    breakdown = scale_bd !bd_sum !bd_count;
    utilizations = !snap_utils;
    aborts_by_reason = !snap_reasons;
    retries = !n_retries;
    log_flushes = !snap_flushes;
  }

let measure_txns db ?(warmup = 5) ?(seed = 42) ~n gen =
  let eng = DB.engine db in
  let outs = ref [] in
  Sim.Engine.spawn eng (fun () ->
      let rng = Rng.create seed in
      for _ = 1 to warmup do
        let req = gen rng in
        ignore
          (DB.exec_txn db ~reactor:req.Workloads.Wl.reactor
             ~proc:req.Workloads.Wl.proc ~args:req.Workloads.Wl.args)
      done;
      for _ = 1 to n do
        let req = gen rng in
        outs :=
          DB.exec_txn db ~reactor:req.Workloads.Wl.reactor
            ~proc:req.Workloads.Wl.proc ~args:req.Workloads.Wl.args
          :: !outs
      done);
  ignore (Sim.Engine.run eng);
  List.rev !outs

let committed_outcomes outs =
  List.filter (fun o -> Result.is_ok o.DB.result) outs

let mean_latency outs =
  let ok = committed_outcomes outs in
  if ok = [] then 0.
  else
    List.fold_left (fun acc o -> acc +. o.DB.latency) 0. ok
    /. float_of_int (List.length ok)

let mean_breakdown outs =
  let ok = committed_outcomes outs in
  scale_bd
    (List.fold_left (fun acc o -> add_bd acc o.DB.breakdown) zero_bd ok)
    (List.length ok)
