exception Closed

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable inbox : 'a Queue.t;  (* producers append here, under [mu] *)
  mutable batch : 'a Queue.t;  (* consumer-private drained batch *)
  mutable closed : bool;
  mutable waiting : bool;  (* consumer parked in [pop_wait] *)
}

let create () =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    inbox = Queue.create ();
    batch = Queue.create ();
    closed = false;
    waiting = false;
  }

let push t x =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    raise Closed
  end;
  Queue.add x t.inbox;
  (* Signal only when the consumer is actually parked: a hot mailbox pays
     no condition-variable traffic. *)
  if t.waiting then Condition.signal t.nonempty;
  Mutex.unlock t.mu

(* Swap the shared inbox for the (empty) private batch under the lock. The
   consumer then owns the old inbox outright. *)
let refill t =
  Mutex.lock t.mu;
  let rec wait () =
    if Queue.is_empty t.inbox && not t.closed then begin
      t.waiting <- true;
      Condition.wait t.nonempty t.mu;
      t.waiting <- false;
      wait ()
    end
  in
  wait ();
  let full = t.inbox in
  t.inbox <- t.batch;
  t.batch <- full;
  Mutex.unlock t.mu

let pop_wait t =
  if Queue.is_empty t.batch then refill t;
  Queue.take_opt t.batch

let try_pop t =
  if Queue.is_empty t.batch then begin
    Mutex.lock t.mu;
    let full = t.inbox in
    t.inbox <- t.batch;
    t.batch <- full;
    Mutex.unlock t.mu
  end;
  Queue.take_opt t.batch

let close t =
  Mutex.lock t.mu;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mu

let length t =
  Mutex.lock t.mu;
  let n = Queue.length t.inbox + Queue.length t.batch in
  Mutex.unlock t.mu;
  n

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
