exception Closed

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable inbox : 'a Queue.t;  (* producers append here, under [mu] *)
  mutable batch : 'a Queue.t;  (* consumer-private drained batch *)
  mutable closed : bool;
  mutable waiting : bool;  (* consumer parked in [pop_wait] *)
  capacity : int;  (* admission bound for [try_push]; max_int = unbounded *)
  size : int Atomic.t;  (* messages pushed but not yet popped *)
}

let create ?(capacity = max_int) () =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    inbox = Queue.create ();
    batch = Queue.create ();
    closed = false;
    waiting = false;
    capacity = (if capacity < 1 then 1 else capacity);
    size = Atomic.make 0;
  }

let push t x =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    raise Closed
  end;
  Queue.add x t.inbox;
  Atomic.incr t.size;
  (* Signal only when the consumer is actually parked: a hot mailbox pays
     no condition-variable traffic. *)
  if t.waiting then Condition.signal t.nonempty;
  Mutex.unlock t.mu

let try_push t x =
  (* Cheap rejection before taking the lock: [size] counts every message
     pushed and not yet consumed, so a full mailbox turns producers away
     without touching the mutex the consumer is using. The check-then-add
     is not atomic — a burst of producers can overshoot by at most one
     message each — which is fine for admission control; the bound is a
     shedding threshold, not a memory-safety limit. *)
  if Atomic.get t.size >= t.capacity then false
  else begin
    Mutex.lock t.mu;
    if t.closed then begin
      Mutex.unlock t.mu;
      raise Closed
    end;
    Queue.add x t.inbox;
    Atomic.incr t.size;
    if t.waiting then Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    true
  end

(* Swap the shared inbox for the (empty) private batch under the lock. The
   consumer then owns the old inbox outright. *)
let refill t =
  Mutex.lock t.mu;
  let rec wait () =
    if Queue.is_empty t.inbox && not t.closed then begin
      t.waiting <- true;
      Condition.wait t.nonempty t.mu;
      t.waiting <- false;
      wait ()
    end
  in
  wait ();
  let full = t.inbox in
  t.inbox <- t.batch;
  t.batch <- full;
  Mutex.unlock t.mu

let take_opt t =
  match Queue.take_opt t.batch with
  | Some _ as r ->
    Atomic.decr t.size;
    r
  | None -> None

let pop_wait t =
  if Queue.is_empty t.batch then refill t;
  take_opt t

let try_pop t =
  if Queue.is_empty t.batch then begin
    Mutex.lock t.mu;
    let full = t.inbox in
    t.inbox <- t.batch;
    t.batch <- full;
    Mutex.unlock t.mu
  end;
  take_opt t

let close t =
  Mutex.lock t.mu;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mu

let length t = Atomic.get t.size

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
