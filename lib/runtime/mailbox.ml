exception Closed

type 'a t = {
  mu : Mutex.t;
  nonempty : Condition.t;
  mutable inbox : 'a Queue.t;  (* producers append here, under [mu] *)
  mutable batch : 'a Queue.t;  (* consumer-private drained batch *)
  mutable closed : bool;
  mutable waiting : bool;  (* consumer parked in [pop_wait] *)
  capacity : int;  (* admission bound for [try_push]; max_int = unbounded *)
  size : int Atomic.t;  (* messages pushed but not yet popped *)
}

let create ?(capacity = max_int) () =
  {
    mu = Mutex.create ();
    nonempty = Condition.create ();
    inbox = Queue.create ();
    batch = Queue.create ();
    closed = false;
    waiting = false;
    capacity = (if capacity < 1 then 1 else capacity);
    size = Atomic.make 0;
  }

let push t x =
  Mutex.lock t.mu;
  if t.closed then begin
    Mutex.unlock t.mu;
    raise Closed
  end;
  Queue.add x t.inbox;
  Atomic.incr t.size;
  (* Signal only when the consumer is actually parked: a hot mailbox pays
     no condition-variable traffic. *)
  if t.waiting then Condition.signal t.nonempty;
  Mutex.unlock t.mu

let push_many t xs =
  if xs <> [] then begin
    Mutex.lock t.mu;
    if t.closed then begin
      Mutex.unlock t.mu;
      raise Closed
    end;
    List.iter
      (fun x ->
        Queue.add x t.inbox;
        Atomic.incr t.size)
      xs;
    if t.waiting then Condition.signal t.nonempty;
    Mutex.unlock t.mu
  end

let try_push t x =
  (* Cheap rejection before taking the lock: [size] counts every message
     pushed and not yet consumed, so a full mailbox turns producers away
     without touching the mutex the consumer is using. The check-then-add
     is not atomic — a burst of producers can overshoot by at most one
     message each — which is fine for admission control; the bound is a
     shedding threshold, not a memory-safety limit. *)
  if Atomic.get t.size >= t.capacity then false
  else begin
    Mutex.lock t.mu;
    if t.closed then begin
      Mutex.unlock t.mu;
      raise Closed
    end;
    Queue.add x t.inbox;
    Atomic.incr t.size;
    if t.waiting then Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    true
  end

(* Batch admission: one lock acquisition decides the whole prefix. The
   capacity check repeats per message so a racing [try_push] overshoots by
   at most its usual one message, never the batch length. *)
let try_push_many t xs =
  match xs with
  | [] -> 0
  | _ when Atomic.get t.size >= t.capacity -> 0
  | _ ->
    Mutex.lock t.mu;
    if t.closed then begin
      Mutex.unlock t.mu;
      raise Closed
    end;
    let rec admit n = function
      | [] -> n
      | x :: tl ->
        if Atomic.get t.size >= t.capacity then n
        else begin
          Queue.add x t.inbox;
          Atomic.incr t.size;
          admit (n + 1) tl
        end
    in
    let n = admit 0 xs in
    if n > 0 && t.waiting then Condition.signal t.nonempty;
    Mutex.unlock t.mu;
    n

(* Steal-half: a thief takes the oldest half (rounded up) of the messages
   satisfying [stealable], touching only the shared inbox — the consumer's
   private batch is invisible to other domains by construction, so messages
   already drained there can never move. Both the kept and the stolen
   sequences preserve their relative FIFO order. *)
let steal_half t ~stealable =
  Mutex.lock t.mu;
  let k = Queue.fold (fun n x -> if stealable x then n + 1 else n) 0 t.inbox in
  if k = 0 then begin
    Mutex.unlock t.mu;
    []
  end
  else begin
    let target = (k + 1) / 2 in
    let kept = Queue.create () in
    let stolen = ref [] and taken = ref 0 in
    Queue.iter
      (fun x ->
        if !taken < target && stealable x then begin
          stolen := x :: !stolen;
          incr taken
        end
        else Queue.add x kept)
      t.inbox;
    t.inbox <- kept;
    (* stolen messages left this mailbox: its size must reflect that, or
       admission control would shed against phantom occupancy *)
    ignore (Atomic.fetch_and_add t.size (- !taken));
    Mutex.unlock t.mu;
    List.rev !stolen
  end

(* Swap the shared inbox for the (empty) private batch under the lock. The
   consumer then owns the old inbox outright. *)
let refill t =
  Mutex.lock t.mu;
  let rec wait () =
    if Queue.is_empty t.inbox && not t.closed then begin
      t.waiting <- true;
      Condition.wait t.nonempty t.mu;
      t.waiting <- false;
      wait ()
    end
  in
  wait ();
  let full = t.inbox in
  t.inbox <- t.batch;
  t.batch <- full;
  Mutex.unlock t.mu

let take_opt t =
  match Queue.take_opt t.batch with
  | Some _ as r ->
    Atomic.decr t.size;
    r
  | None -> None

let pop_wait t =
  if Queue.is_empty t.batch then refill t;
  take_opt t

let try_pop t =
  if Queue.is_empty t.batch then begin
    Mutex.lock t.mu;
    let full = t.inbox in
    t.inbox <- t.batch;
    t.batch <- full;
    Mutex.unlock t.mu
  end;
  take_opt t

let close t =
  Mutex.lock t.mu;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.nonempty
  end;
  Mutex.unlock t.mu

let length t = Atomic.get t.size

let is_closed t =
  Mutex.lock t.mu;
  let c = t.closed in
  Mutex.unlock t.mu;
  c
