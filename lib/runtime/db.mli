(** Real-parallel shared-nothing execution backend: one OCaml 5 domain per
    container, reusing [Occ], [Storage], [Btree], [Reactor] and [Workloads]
    unchanged from the simulator backend.

    {2 Execution model}

    Bootstrap goes through {!Reactdb.Bootstrap} — the same declaration and
    {!Reactdb.Config.t} that boots the simulator boots this backend. Each
    container becomes a domain owning its reactors' catalogs outright:
    every data access to container [c]'s records happens on domain [c]
    (root and same-container sub-transactions run inline on the home
    domain; cross-container calls ship a closure through the destination's
    {!Mailbox} and return a real future). Because of this data ownership,
    Silo validation needs no cross-domain locking: record TID/lock words
    are only ever touched by the owning domain, and the 2PC prepare /
    install / release steps for container [c] execute as mailbox messages
    on domain [c].

    Domains run cooperative fibers over effects (mirroring the simulator's
    executor-core semantics): a fiber blocking on a cross-container future
    or a 2PC vote suspends and releases its domain to run other
    transactions; the waker re-enqueues it through the home mailbox.
    Clients blocking in {!exec_txn} wait on a [Condition].

    A root transaction's context ([Occ.Txn.t]) is shared by its
    sub-transactions, which may run concurrently on other domains; all
    procedure bodies of one root serialize on a per-root mutex (released
    across suspension points), so the shared read/write tracking stays
    race-free while different roots run fully in parallel.

    [executors_per_container] counts and [mpl] from the config are ignored
    (one domain per container; admission is the client's concern), and the
    simulator's cost {!Reactdb.Profile} does not apply — time is real.
    Round-robin routing is honoured as ingress distribution: the root
    request lands on the round-robin-chosen domain and pays a forwarding
    hop to the owner, quantifying what affinity routing saves. *)

type t

type outcome = {
  result : (Util.Value.t, string) result;
  latency_us : float;  (** wall-clock µs, submission through commit/abort *)
  containers_touched : int;
}

(** [start decl cfg] bootstraps catalogs and loaders on the calling domain,
    then spawns one domain per container. Call {!shutdown} when done. *)
val start : Reactor.decl -> Reactdb.Config.t -> t

(** Quiesces (waits for every submitted root to complete), closes all
    mailboxes and joins the domains. The catalogs remain readable. *)
val shutdown : t -> unit

val n_domains : t -> int
val container_of : t -> string -> int

(** Direct physical access to a reactor's catalog — loaders, audits and
    tests only. Only safe for concurrent use after {!quiesce}/{!shutdown}. *)
val catalog_of : t -> string -> Storage.Catalog.t

(** All reactors' catalogs in declaration order (for invariant audits,
    e.g. [Faultsim.check_secondaries]). Same safety caveat as
    {!catalog_of}. *)
val catalogs : t -> (string * Storage.Catalog.t) list

(** [submit t ~reactor ~proc ~args ~k] enqueues a root transaction;
    [k outcome] runs on the root's home domain when it completes. Never
    blocks the caller. Thread-safe. *)
val submit :
  t ->
  reactor:string ->
  proc:string ->
  args:Util.Value.t list ->
  k:(outcome -> unit) ->
  unit

(** Blocking convenience around {!submit} for clients off the runtime's
    domains (tests, serial oracles). Must not be called from a [k]
    callback or procedure body — it would block an executor domain. *)
val exec_txn :
  t -> reactor:string -> proc:string -> args:Util.Value.t list -> outcome

(** Block until every submitted root has completed. *)
val quiesce : t -> unit

(** {1 Statistics} (monotone; atomic counters shared by all domains) *)

val n_committed : t -> int
val n_aborted : t -> int

(** Same typed buckets as the simulator backend: "user", "validation",
    "dangerous-structure". *)
val aborts_by_reason : t -> (string * int) list

(** Runtime-internal failures (a procedure or callback raised something
    that is not an abort). The offending transaction reports [Error] and
    the domain keeps running; a non-zero count means a bug. *)
val n_fatal : t -> int

val fatal_messages : t -> string list

(** {1 Closed-loop wall-clock load harness}

    Mirrors [Harness.spec]/[run_load] for the parallel backend, with
    completion-driven virtual clients: worker [w]'s next request is
    generated (from its own [Rng.stream]) in the completion callback of
    its previous one, so client think time is zero and no client threads
    are needed. *)
module Load : sig
  type spec = {
    n_workers : int;
    gen : int -> Util.Rng.t -> Workloads.Wl.request;
    warmup_s : float;
    measure_s : float;
    seed : int;
  }

  val spec :
    ?warmup_s:float ->
    ?measure_s:float ->
    ?seed:int ->
    n_workers:int ->
    (int -> Util.Rng.t -> Workloads.Wl.request) ->
    spec

  type result = {
    throughput : float;  (** committed txns per second over the window *)
    committed : int;
    aborted : int;
    abort_rate : float;
    mean_latency_us : float;
    latency_std_us : float;  (** per-transaction std (not per-epoch) *)
    p50_us : float;
    p95_us : float;
    p99_us : float;  (** from a bounded uniform reservoir *)
    duration_s : float;  (** measured window length *)
    utilizations : float array;
        (** per-domain busy fraction, measurement start → drain *)
  }

  (** Run warm-up, measure, stop and drain. The runtime must be freshly
      started or quiescent. Does not shut the runtime down. *)
  val run : t -> spec -> result

  (** [run_fixed t ~n_workers ~per_worker ~seed gen] drives exactly
      [n_workers * per_worker] transactions closed-loop and quiesces —
      for tests and equivalence audits that need an exact transaction
      count rather than a time window. *)
  val run_fixed :
    t ->
    n_workers:int ->
    per_worker:int ->
    seed:int ->
    (int -> Util.Rng.t -> Workloads.Wl.request) ->
    unit
end
