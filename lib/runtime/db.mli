(** Real-parallel shared-nothing execution backend: one OCaml 5 domain per
    container, reusing [Occ], [Storage], [Btree], [Reactor] and [Workloads]
    unchanged from the simulator backend.

    {2 Execution model}

    Bootstrap goes through {!Reactdb.Bootstrap} — the same declaration and
    {!Reactdb.Config.t} that boots the simulator boots this backend. Each
    container becomes a domain owning its reactors' catalogs outright:
    every data access to container [c]'s records happens on domain [c]
    (root and same-container sub-transactions run inline on the home
    domain; cross-container calls ship a closure through the destination's
    {!Mailbox} and return a real future). Because of this data ownership,
    Silo validation needs no cross-domain locking: record TID/lock words
    are only ever touched by the owning domain, and the 2PC prepare /
    install / release steps for container [c] execute as mailbox messages
    on domain [c].

    Domains run cooperative fibers over effects (mirroring the simulator's
    executor-core semantics): a fiber blocking on a cross-container future
    or a 2PC vote suspends and releases its domain to run other
    transactions; the waker re-enqueues it through the home mailbox.
    Clients blocking in {!exec_txn} wait on a [Condition].

    A root transaction's context ([Occ.Txn.t]) is shared by its
    sub-transactions, which may run concurrently on other domains; all
    procedure bodies of one root serialize on a per-root mutex (released
    across suspension points), so the shared read/write tracking stays
    race-free while different roots run fully in parallel.

    [executors_per_container] counts and [mpl] from the config are ignored
    (one domain per container; admission is the client's concern), and the
    simulator's cost {!Reactdb.Profile} does not apply — time is real.
    Round-robin routing is honoured as ingress distribution: the root
    request lands on the round-robin-chosen domain and pays a forwarding
    hop to the owner, quantifying what affinity routing saves. The
    [Cost] router and opt-in work stealing (see {!start}) relax the
    home-domain-only placement of root {e bodies} while keeping all
    structural mutations on the owning domain. *)

type t

type outcome = {
  result : (Util.Value.t, string) result;
  latency_us : float;  (** wall-clock µs, submission through commit/abort *)
  containers_touched : int;
  abort_cause : Obs.Abort.cause option;
      (** structured abort taxonomy for failed attempts; [None] on commit.
          Drives the retry policy in {!Load} ([Obs.Abort.transient]). *)
  snapshot : int option;
      (** the frozen epoch a read-only root executed against, [None] for
          ordinary OCC transactions *)
}

(** [start decl cfg] bootstraps catalogs and loaders on the calling domain,
    then spawns one domain per container. Call {!shutdown} when done.

    [chaos] (default {!Chaos.none}) attaches a seeded fault injector; the
    runtime probes it at the catalogued injection points (root/sub-call
    delivery, between jobs on each domain, after a successful 2PC prepare
    with locks held). [mailbox_cap] bounds each container's mailbox for
    {e root admission only}: when the ingress mailbox already holds that
    many messages, {!submit} sheds the root with an
    [Obs.Abort.Overloaded] outcome instead of enqueuing it — internal
    runtime traffic is never shed.

    {3 Dynamic scheduling}

    [steal] (default false) turns on work stealing: an idle domain takes
    half the {e root} jobs (never internal traffic — resumptions, 2PC
    messages, forwards) from the deepest peer mailbox and runs their
    procedure bodies locally; the stolen root's commit is re-pinned to
    its home domain, so every structural mutation (prepare / install /
    release) still happens on the owner. Safe for update-in-place
    workloads; see DESIGN.md §8 for the relocation precondition.
    [cfg.router = Cost] picks each root's ingress domain by blending the
    [Costmodel] estimate with live load signals (queue-depth EWMA, busy
    fraction, shed pressure) instead of always using the home domain.

    {3 Durability}

    [wal] attaches a write-ahead log: each committed root's after-images
    are appended and the transaction's completion waits for the group
    commit covering its epoch — one batched append + flush per
    [group_tick_s] window (default 1 ms), attributed to the
    [Flush_wait] phase. [epoch_len_s] (default 0.04 s) sets the Silo
    TID-epoch advance interval, which also bounds group-commit epoch
    granularity. *)
val start :
  ?chaos:Chaos.t ->
  ?mailbox_cap:int ->
  ?steal:bool ->
  ?wal:Wal.t ->
  ?epoch_len_s:float ->
  ?group_tick_s:float ->
  Reactor.decl ->
  Reactdb.Config.t ->
  t

(** Quiesces (waits for every submitted root to complete), closes all
    mailboxes and joins the domains. The catalogs remain readable. *)
val shutdown : t -> unit

(** Number of containers, each owned by one spawned domain. *)
val n_domains : t -> int

(** The container (= domain index) that owns a reactor's state. *)
val container_of : t -> string -> int

(** Direct physical access to a reactor's catalog — loaders, audits and
    tests only. Only safe for concurrent use after {!quiesce}/{!shutdown}. *)
val catalog_of : t -> string -> Storage.Catalog.t

(** All reactors' catalogs in declaration order (for invariant audits,
    e.g. [Faultsim.check_secondaries]). Same safety caveat as
    {!catalog_of}. *)
val catalogs : t -> (string * Storage.Catalog.t) list

(** [submit t ~reactor ~proc ~args ~k] enqueues a root transaction;
    [k outcome] runs on the root's home domain when it completes. Never
    blocks the caller. Thread-safe. [retry] (default 0) is the attempt's
    retry index, recorded in the lifecycle trace and abort cause — the
    engine itself never retries.

    [deadline_us] gives the root a latency budget in wall-clock µs from
    submission. The deadline propagates to every cross-container sub-call
    and is checked at phase boundaries (dequeue, sub-call start, resume
    after an await, implicit sync, commit entry, each 2PC prepare); an
    expired root aborts through the normal typed-abort unwinding —
    children awaited, locks released, 2PC participants rolled back — with
    a non-transient [Obs.Abort.Timeout] cause.

    If the runtime was started with [mailbox_cap] and the ingress mailbox
    is full, the root is shed {e at admission}: [k] runs synchronously on
    the caller with an [Obs.Abort.Overloaded] outcome (also
    non-transient), and no domain ever sees the transaction. *)
val submit :
  ?retry:int ->
  ?deadline_us:float ->
  t ->
  reactor:string ->
  proc:string ->
  args:Util.Value.t list ->
  k:(outcome -> unit) ->
  unit

(** Blocking convenience around {!submit} for clients off the runtime's
    domains (tests, serial oracles). Must not be called from a [k]
    callback or procedure body — it would block an executor domain. *)
val exec_txn :
  ?deadline_us:float ->
  t ->
  reactor:string ->
  proc:string ->
  args:Util.Value.t list ->
  outcome

(** Block until every submitted root has completed. *)
val quiesce : t -> unit

(** {1 Live reconfiguration (online reactor migration — see DESIGN.md §11)}

    Placement is a runtime-mutable property: {!migrate} moves a reactor to
    a new container under live load with no lost or duplicated
    transactions. The protocol is mark → drain → handoff → flip → replay:

    - {b mark}: the reactor enters the {e migrating} state; roots and
      sub-calls submitted after the mark that target it queue at a
      forwarding stub instead of executing.
    - {b drain}: the call blocks until every root admitted before the mark
      has completed (committed or aborted) — after which nothing that may
      legally touch the old placement is running. Stragglers are bounded
      by the deadline machinery: give roots a [deadline_us] budget and the
      drain is bounded by it.
    - {b handoff}: ownership of the reactor's storage slice (records,
      secondary indexes, snapshot version chains) passes to the
      destination domain. In this shared-memory runtime that is a routing
      change, not a copy — the catalog object is shared heap.
    - {b flip}: the routing table is atomically updated — affinity and
      cost ingress, round-robin forwarding hops and 2PC participant
      resolution all read the new epoch-stamped placement — and a durable
      [Wal.Migrate] record is appended through the group-commit sink so
      crash recovery ({!Faultsim.recover}) replays placement
      deterministically.
    - {b replay}: the queued stub traffic dispatches against the new home
      (bypassing admission control — the stub was its admission queue).

    Call from an admin thread (test driver, {!Autoscaler} loop, operator
    shell), never from a procedure body or [k] callback — the drain
    blocks. Concurrent calls serialize. *)

(** [migrate t ~reactor ~dst] moves [reactor] to container [dst] and
    returns the migration pause in wall-clock µs (mark to flip: the window
    during which new traffic to this reactor queued). Returns [0.] if the
    reactor already lives on [dst]. Raises [Invalid_argument] on an
    unknown reactor or container. *)
val migrate : t -> reactor:string -> dst:int -> float

(** Completed migrations since start. *)
val n_migrations : t -> int

(** Placement epoch: bumped at every migration flip. Routing decisions made
    under epoch [e] remain valid for the transactions that made them (the
    drain guarantees it); the epoch lets observers detect reconfiguration
    boundaries. *)
val placement_epoch : t -> int

(** Pause (µs, mark → flip) of the most recent migration; [0.] if none. *)
val migration_pause_last_us : t -> float

(** Current placement of every reactor, in declaration order. *)
val placements : t -> (string * int) list

(** Reactors currently homed on container [c], in declaration order. *)
val reactors_on : t -> int -> string list

(** {1 Snapshot reads (multi-version, epoch-based — see DESIGN.md §10)}

    Procedures declared read-only on their reactor type
    ({!Reactor.rtype.rt_readonly}) execute against a frozen {e snapshot
    epoch} [S = min (current epoch, min in-flight commit epoch) - 1]:
    every install carrying an epoch [<= S] has completed (commits
    register their epoch before the protocol and deregister after
    installs land), so [S] names an immutable, consistent prefix. Reads
    resolve through per-record version chains; the commit protocol is
    skipped entirely — no read-set, no locks, no validation, no 2PC —
    making read-only roots abort-free by construction. Read-only roots
    are additionally home-pinned (never stolen or cost-routed) so every
    version-chain walk happens on the domain owning the records.

    While enabled (the default), every install also retires overwritten
    versions into chains and trims them to the {e GC horizon}: the
    minimum live snapshot epoch, or the next epoch to be issued when no
    reader is live — so chains stay bounded under hot keys. *)

(** [set_snapshots t false] disables snapshot execution {e and} version
    chain maintenance: declared-read-only procedures fall back to the
    ordinary OCC read path (the benchmark baseline), and installs revert
    to single-version behavior. *)
val set_snapshots : t -> bool -> unit

val snapshots_enabled : t -> bool

(** The epoch the next read-only root would freeze. *)
val safe_snapshot_epoch : t -> int

(** Pin / unpin a snapshot epoch manually — what a read-only root does
    around its body; exposed for tests exercising version GC. [release]
    of an epoch not held is a no-op. *)
val acquire_snapshot : t -> int

val release_snapshot : t -> int -> unit

(** The horizon installs currently trim version chains to. *)
val gc_horizon : t -> int

(** Committed roots that ran as read-only snapshot transactions. *)
val n_readonly_commits : t -> int

(** [(sequential, parallel)] resolution counts of the [Config.Auto]
    morph router. *)
val auto_morphs : t -> int * int

(** {1 Statistics} (monotone; atomic counters shared by all domains) *)

(** Committed root transactions. *)
val n_committed : t -> int

(** Aborted root attempts (every attempt of a retried transaction
    counts — see {!Load.result} for the accounting identity). *)
val n_aborted : t -> int

(** Same typed buckets as the simulator backend: "user", "validation",
    "dangerous-structure", plus "timeout" (deadline expiry) and
    "overloaded" (admission sheds). *)
val aborts_by_reason : t -> (string * int) list

(** Runtime-internal failures (a procedure or callback raised something
    that is not an abort). The offending transaction reports [Error] and
    the domain keeps running; a non-zero count means a bug. *)
val n_fatal : t -> int

val fatal_messages : t -> string list

(** {1 Dynamic-scheduling statistics} *)

(** One domain's scheduler counters (monotone atomics; [ss_qdepth_ewma]
    is the last published mailbox-depth EWMA, a gauge). *)
type sched_stat = {
  ss_steals_in : int;  (** root jobs this domain stole from peers *)
  ss_steals_out : int;  (** root jobs peers stole from this domain *)
  ss_routed_by_cost : int;
      (** roots the cost router admitted here instead of their home *)
  ss_sheds : int;  (** roots shed at this ingress (mailbox full) *)
  ss_qdepth_ewma : float;
}

(** Per-domain snapshot, indexed by domain id. Safe any time (atomic
    reads), exact at quiescence. *)
val sched_stats : t -> sched_stat array

(** Total stolen root jobs ([ss_steals_in] summed over domains). *)
val n_steals : t -> int

(** One domain's live load signals — the {!Autoscaler}'s decision inputs.
    All advisory: a stale read skews a policy decision, never
    correctness. *)
type load_stat = {
  ld_busy_frac : float;
      (** owner-published busy fraction over the last ~5 ms window *)
  ld_qdepth_ewma : float;  (** router-refreshed EWMA of mailbox depth *)
  ld_mailbox : int;  (** instantaneous mailbox length *)
  ld_sheds : int;  (** cumulative admission refusals at this mailbox *)
}

(** Per-domain load snapshot, indexed by domain id. *)
val load_stats : t -> load_stat array

(** Per-domain cumulative busy seconds since start, snapshot through each
    domain's own mailbox (so the caller must not hold a domain — clients
    and benches only). Mean utilization over a window of [w] seconds is
    [sum (busy1 - busy0) / (n * w)]. *)
val busy_times : t -> float array

(** Copy the scheduler counters into the attached collector (no-op
    without one) so they ride the schema-v3 report ([r_sched]). Call at
    quiescence; {!Load.run} calls it automatically. *)
val publish_sched_obs : t -> unit

(** {1 Observability}

    [attach_obs t collector] turns on transaction-lifecycle tracing: every
    subsequent attempt stamps its phases in {e wall-clock} microseconds
    (create the collector with [~clock:Obs.Wall] and
    [~containers:(n_domains t)]) and folds into [collector]'s slot for the
    root's home container, on that container's own domain — the per-domain
    ownership that makes recording lock-free. Attach before submitting
    work; summarize only at quiescence. With no collector attached the
    trace sink is [Obs.Trace.none] and the hot path takes a few
    predictable branches and no clock reads. *)
val attach_obs : t -> Obs.Collector.t -> unit

(** {1 Closed-loop wall-clock load harness}

    Mirrors [Harness.spec]/[run_load] for the parallel backend, with
    completion-driven virtual clients: worker [w]'s next request is
    generated (from its own [Rng.stream]) in the completion callback of
    its previous one, so client think time is zero and no client threads
    are needed. *)
module Load : sig
  (** [max_retries] (default 0): transient aborts — conflicts and
      validation failures, per [Obs.Abort.transient] — are resubmitted up
      to this many times with an increasing retry index; user aborts,
      dangerous-call-structure aborts, deadline timeouts and admission
      sheds are never retried in-loop.

      [backoff] (default [Some Util.Backoff.default]) paces those
      resubmissions with seeded exponential backoff + jitter, evaluated on
      a dedicated timer domain so no executor blocks; [None] restores
      immediate retry. [deadline_us] gives every attempt that latency
      budget. After a shed the worker pauses [shed_pause_us] (default
      500 µs, the backpressure response) before generating new work. *)
  type spec = {
    n_workers : int;
    gen : int -> Util.Rng.t -> Workloads.Wl.request;
    warmup_s : float;
    measure_s : float;
    seed : int;
    max_retries : int;
    deadline_us : float option;
    backoff : Util.Backoff.policy option;
    shed_pause_us : float;
  }

  val spec :
    ?warmup_s:float ->
    ?measure_s:float ->
    ?seed:int ->
    ?max_retries:int ->
    ?deadline_us:float ->
    ?backoff:Util.Backoff.policy option ->
    ?shed_pause_us:float ->
    n_workers:int ->
    (int -> Util.Rng.t -> Workloads.Wl.request) ->
    spec

  (** Attempt accounting (unified with [Harness.run_result]): [committed]
      and [aborted] count {e attempts} finishing inside the measurement
      window, so [committed + aborted] is the attempt total; [retries]
      counts the aborted attempts that were resubmitted (every retry is
      also one of the [aborted] attempts), so logical transactions that
      ultimately failed number [aborted - retries]. [aborts_by_reason]
      buckets the aborted attempts by cause. *)
  type result = {
    throughput : float;  (** committed txns per second over the window *)
    committed : int;
    aborted : int;
    retries : int;
    abort_rate : float;  (** aborted / (committed + aborted), attempt-level *)
    aborts_by_reason : (string * int) list;
        (** aborted attempts in the window bucketed by
            [Obs.Abort.kind_name] — finer than the engine-level
            {!aborts_by_reason} buckets ("conflict", "lock-busy",
            "timeout", "overloaded", …) *)
    mean_latency_us : float;
    latency_std_us : float;  (** per-transaction std (not per-epoch) *)
    p50_us : float;
    p95_us : float;
    p99_us : float;  (** from a bounded uniform reservoir *)
    duration_s : float;  (** measured window length *)
    utilizations : float array;
        (** per-domain busy fraction, measurement start → drain *)
  }

  (** Run warm-up, measure, stop and drain. The runtime must be freshly
      started or quiescent. Does not shut the runtime down.

      Window accounting is attributed per attempt at completion time from
      a single measurement-flag read, so the in-window identity
      [committed + aborted = logical completions + retries] is exact even
      when attempts straddle the warmup/measure or measure/drain
      boundary. *)
  val run : t -> spec -> result

  (** [run_fixed t ~n_workers ~per_worker ~seed gen] drives exactly
      [n_workers * per_worker] logical transactions closed-loop and
      quiesces — for tests and equivalence audits that need an exact
      transaction count rather than a time window. Returns the number of
      retried attempts, so attempt-level counters satisfy
      [n_committed + n_aborted = n_workers * per_worker + retries].
      A logical transaction shed at admission or expired past
      [deadline_us] counts as one completed-with-abort transaction.
      [backoff] defaults to [Some Util.Backoff.default] as in {!spec}. *)
  val run_fixed :
    ?max_retries:int ->
    ?deadline_us:float ->
    ?backoff:Util.Backoff.policy option ->
    t ->
    n_workers:int ->
    per_worker:int ->
    seed:int ->
    (int -> Util.Rng.t -> Workloads.Wl.request) ->
    int
end
