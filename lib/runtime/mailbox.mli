(** Multi-producer/single-consumer mailbox for the parallel runtime.

    Producers on any domain [push]; the owning domain consumes with
    {!pop_wait} (blocking) or {!try_pop}. Built on [Mutex]/[Condition] with
    two-queue batching: the consumer swaps the shared inbox for a private
    queue under the lock, then drains it lock-free, so a busy mailbox costs
    roughly one lock acquisition per batch rather than per message.

    Ordering guarantee: messages from one producer are delivered in the
    order that producer pushed them (per-producer FIFO); messages from
    different producers interleave in lock-acquisition order.

    Shutdown: {!close} stops further pushes (they raise {!Closed}) but lets
    the consumer drain everything already enqueued; [pop_wait] returns
    [None] only once the mailbox is both closed and empty. *)

(** A mailbox carrying messages of type ['a]. *)
type 'a t

(** Raised by {!push} after {!close}. *)
exception Closed

(** A fresh, open, empty mailbox. [capacity] (default unbounded, clamped to
    at least 1) bounds admission through {!try_push} only. *)
val create : ?capacity:int -> unit -> 'a t

(** [push t x] enqueues [x] unconditionally, ignoring [capacity]. The
    runtime uses this for control traffic — resumptions, 2PC votes,
    forwarded roots — which must never be shed: dropping it would wedge an
    in-flight transaction rather than refuse a new one. Thread-safe.
    @raise Closed after {!close}. *)
val push : 'a t -> 'a -> unit

(** [push_many t xs] enqueues every message of [xs] in order under one lock
    acquisition, ignoring [capacity] (same contract as {!push}). Cheaper
    than repeated {!push} for a batch — one mutex round and at most one
    consumer wakeup. Thread-safe.
    @raise Closed after {!close}. *)
val push_many : 'a t -> 'a list -> unit

(** [try_push t x] enqueues [x] if fewer than [capacity] messages are
    pending, else returns [false] (the overload signal — callers shed the
    work at admission). Under concurrent producers the bound may overshoot
    by at most one message per producer. Thread-safe.
    @raise Closed after {!close}. *)
val try_push : 'a t -> 'a -> bool

(** [try_push_many t xs] admits the longest prefix of [xs] that fits under
    [capacity] in one lock acquisition and returns its length; the suffix
    is shed. Admitted messages keep their order. Overshoot bound as for
    {!try_push}. Thread-safe.
    @raise Closed after {!close}. *)
val try_push_many : 'a t -> 'a list -> int

(** [steal_half t ~stealable] removes and returns the oldest half (rounded
    up) of the pending messages satisfying [stealable], in their queue
    order; the rest keep their relative order. Only messages still in the
    shared inbox are candidates — anything the consumer has already drained
    into its private batch stays put, so the single-consumer discipline of
    {!pop_wait}/{!try_pop} is unaffected. Intended for work stealing by
    idle peer domains; [stealable] must be fast and must not raise. Returns
    [[]] when nothing qualifies. Thread-safe. *)
val steal_half : 'a t -> stealable:('a -> bool) -> 'a list

(** [pop_wait t] dequeues the next message, blocking while the mailbox is
    empty and open; [None] once closed and drained. Single consumer only. *)
val pop_wait : 'a t -> 'a option

(** [try_pop t] dequeues without blocking; [None] if nothing is ready. *)
val try_pop : 'a t -> 'a option

(** [close t] rejects subsequent pushes and wakes the consumer. Idempotent. *)
val close : 'a t -> unit

(** Messages pushed but not yet popped (racy snapshot, lock-free). *)
val length : 'a t -> int

(** Whether {!close} has been called (there may still be messages left
    to drain). *)
val is_closed : 'a t -> bool
