(* Elasticity controller: pure policy over sampled load signals, applied
   through the migration protocol (see autoscaler.mli). *)

type policy = {
  hot_busy : float;
  cold_busy : float;
  hot_queue : float;
  hot_queue_wait_us : float;
  max_moves : int;
}

let default =
  { hot_busy = 0.75; cold_busy = 0.25; hot_queue = 8.;
    hot_queue_wait_us = 5000.; max_moves = 1 }

type action = {
  ac_reactor : string;
  ac_src : int;
  ac_dst : int;
  ac_why : [ `Split | `Merge ];
}

(* Reactors per domain, preserving declaration order within a domain. *)
let by_domain ~n placements =
  let doms = Array.make n [] in
  List.iter
    (fun (r, c) -> if c >= 0 && c < n then doms.(c) <- r :: doms.(c))
    placements;
  Array.map List.rev doms

let decide ?(queue_wait = [||]) policy ~load ~placements =
  let n = Array.length load in
  if n < 2 then []
  else begin
    let doms = by_domain ~n placements in
    let busy c = load.(c).Db.ld_busy_frac in
    let queue c = load.(c).Db.ld_qdepth_ewma in
    (* Observed mean queue-wait per attempt (Obs phase signal), when a
       collector is attached; 0 — never trips — otherwise. It measures
       what the other two signals only predict: microseconds roots
       actually waited before executing. *)
    let qwait c = if c < Array.length queue_wait then queue_wait.(c) else 0. in
    (* Saturation score orders candidate split sources; busy fraction
       dominates, queue depth and observed queue-wait break ties and catch
       bursts that the 5 ms busy window has not integrated yet. *)
    let hot c =
      busy c >= policy.hot_busy
      || queue c >= policy.hot_queue
      || qwait c >= policy.hot_queue_wait_us
    in
    let score c =
      busy c
      +. (queue c /. Float.max 1. policy.hot_queue)
      +. (qwait c /. Float.max 1. policy.hot_queue_wait_us)
    in
    (* A bursty domain (hot via queue depth, busy not yet integrated) must
       not read as cold, or the controller would merge into a backlog. *)
    let all_cold =
      let rec go c =
        c >= n || ((busy c < policy.cold_busy && not (hot c)) && go (c + 1))
      in
      go 0
    in
    let pick_best better init range =
      List.fold_left
        (fun acc c -> match acc with
          | Some b when not (better c b) -> acc
          | _ -> Some c)
        init range
    in
    let domains = List.init n Fun.id in
    if not all_cold then begin
      (* Split: hottest splittable domain sheds to the coolest spare one. *)
      let src =
        pick_best
          (fun c b -> score c > score b)
          None
          (List.filter (fun c -> hot c && List.length doms.(c) >= 2) domains)
      in
      match src with
      | None -> []
      | Some s -> (
        let dst =
          pick_best
            (fun c b -> score c < score b)
            None
            (List.filter
               (fun c -> c <> s && busy c <= policy.cold_busy)
               domains)
        in
        match dst with
        | None -> []  (* nowhere idle to split into *)
        | Some d ->
          let movable = List.sort String.compare doms.(s) in
          List.filteri (fun i _ -> i < policy.max_moves
                                   && i < List.length movable - 1)
            movable
          |> List.map (fun r ->
                 { ac_reactor = r; ac_src = s; ac_dst = d; ac_why = `Split }))
    end
    else begin
      (* Merge: everything is cold — empty the smallest non-empty domain
         into the largest other one, so stragglers consolidate first. *)
      let nonempty = List.filter (fun c -> doms.(c) <> []) domains in
      match nonempty with
      | [] | [ _ ] -> []
      | _ ->
        let src =
          pick_best
            (fun c b ->
              let lc = List.length doms.(c) and lb = List.length doms.(b) in
              lc < lb || (lc = lb && busy c < busy b))
            None nonempty
        in
        let dst =
          pick_best
            (fun c b -> List.length doms.(c) > List.length doms.(b))
            None
            (List.filter (fun c -> Some c <> src) nonempty)
        in
        match (src, dst) with
        | Some s, Some d when s <> d ->
          List.filteri (fun i _ -> i < policy.max_moves) doms.(s)
          |> List.map (fun r ->
                 { ac_reactor = r; ac_src = s; ac_dst = d; ac_why = `Merge })
        | _ -> []
    end
  end

let step ?(policy = default) ?obs db =
  let load = Db.load_stats db in
  let placements = Db.placements db in
  let queue_wait =
    match obs with
    | None -> [||]
    | Some c ->
      Array.init (Array.length load) (fun i ->
          Obs.Collector.queue_wait_mean_us c ~container:i)
  in
  let actions = decide ~queue_wait policy ~load ~placements in
  List.iter
    (fun a -> ignore (Db.migrate db ~reactor:a.ac_reactor ~dst:a.ac_dst))
    actions;
  actions

type t = {
  stop_flag : bool Atomic.t;
  splits : int Atomic.t;
  merges : int Atomic.t;
  mutable dom : unit Domain.t option;
}

let start ?(policy = default) ?obs ?(interval_s = 0.05) db =
  let t =
    { stop_flag = Atomic.make false; splits = Atomic.make 0;
      merges = Atomic.make 0; dom = None }
  in
  t.dom <-
    Some
      (Domain.spawn (fun () ->
           while not (Atomic.get t.stop_flag) do
             Unix.sleepf interval_s;
             if not (Atomic.get t.stop_flag) then
               List.iter
                 (fun a ->
                   Atomic.incr
                     (match a.ac_why with
                     | `Split -> t.splits
                     | `Merge -> t.merges))
                 (step ~policy ?obs db)
           done));
  t

let moves t = (Atomic.get t.splits, Atomic.get t.merges)

let stop t =
  Atomic.set t.stop_flag true;
  (match t.dom with Some d -> Domain.join d | None -> ());
  t.dom <- None
