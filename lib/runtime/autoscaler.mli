(** Signal-driven elasticity controller (DESIGN.md §11).

    The autoscaler closes the loop between the runtime's live load signals
    ({!Db.load_stats}: busy fraction, mailbox-depth EWMA, shed counts) and
    the migration protocol ({!Db.migrate}): it {e splits} hot containers by
    moving reactors off a domain that is saturated while another has idle
    capacity, and {e merges} cold ones by consolidating reactors from
    near-idle domains so the rest of the machine can be yielded.

    The policy is split into a {e pure} decision function ({!decide}) over
    a sampled signal snapshot — deterministic and unit-testable with
    synthetic signals — and a thin driver that applies decisions through
    [Db.migrate] either step-by-step ({!step}, for tests and benches) or
    on a background domain ({!start}/{!stop}). Decisions are advisory;
    every applied move pays the migration pause, so the thresholds default
    to conservative values with hysteresis between them. *)

(** Tuning knobs (see docs/OPERATIONS.md for operator guidance). *)
type policy = {
  hot_busy : float;
      (** split when a domain's busy fraction reaches this (default 0.75) *)
  cold_busy : float;
      (** a domain is spare split capacity below this busy fraction, and
          merging engages only while {e every} domain is below it (default
          0.25); keep well under [hot_busy] — the gap is the hysteresis
          band that stops split/merge oscillation *)
  hot_queue : float;
      (** alternatively, split when the mailbox-depth EWMA reaches this
          (default 8.) — catches saturation before busy fractions do under
          bursty arrivals *)
  hot_queue_wait_us : float;
      (** alternatively, split when a domain's {e observed} mean
          queue-wait per attempt (the [Obs] Queue_wait phase signal, in
          µs) reaches this (default 5000.). Busy fraction and queue EWMA
          predict waiting; this one measures it — attempts that actually
          sat in the mailbox. Only live when a collector is wired in
          ([?queue_wait] / [?obs]); otherwise the signal reads 0 and
          never trips. *)
  max_moves : int;
      (** migrations per decision step (default 1); each costs a pause *)
}

val default : policy

(** One decision: move [reactor] from container [src] to [dst], because the
    source was hot (split) or nearly idle (merge). *)
type action = {
  ac_reactor : string;
  ac_src : int;
  ac_dst : int;
  ac_why : [ `Split | `Merge ];
}

(** [decide policy ~load ~placements] is the pure policy core: given one
    snapshot of per-domain signals (indexed by domain id) and the current
    reactor placement, return at most [policy.max_moves] migrations.
    [queue_wait] optionally supplies each domain's observed mean
    queue-wait per attempt in µs ([Obs.Collector.queue_wait_mean_us]);
    missing indexes read as 0.

    Split: the busiest domain with [busy >= hot_busy] (or queue EWMA
    [>= hot_queue], or observed queue-wait [>= hot_queue_wait_us]) that
    hosts at least two reactors sheds its lexicographically first reactor
    to the least-busy domain with [busy <= cold_busy]. Hosting one
    reactor, there is nothing to split — a single reactor is the unit of
    placement.

    Merge: only when every domain is below [cold_busy] and none trips the
    queue or queue-wait triggers (a burst must not merge into a backlog);
    the non-empty domain hosting the fewest reactors donates them (up to
    [max_moves]) to the non-empty domain hosting the most, emptying
    stragglers first.

    Deterministic: equal inputs give equal decisions. *)
val decide :
  ?queue_wait:float array ->
  policy ->
  load:Db.load_stat array ->
  placements:(string * int) list ->
  action list

(** [step ?policy ?obs db] samples {!Db.load_stats} — and, when [obs] is
    given, each domain's mean queue-wait from the collector — runs
    {!decide}, applies each action with [Db.migrate] and returns the
    actions applied. For tests and benches that want scaling decisions at
    controlled instants. Blocks for the migrations' drains — admin
    threads only. *)
val step : ?policy:policy -> ?obs:Obs.Collector.t -> Db.t -> action list

(** Background controller: {!step} every [interval_s] (default 0.05) on a
    dedicated domain until {!stop}. *)
type t

val start :
  ?policy:policy -> ?obs:Obs.Collector.t -> ?interval_s:float -> Db.t -> t

(** Moves applied so far, split/merge. *)
val moves : t -> int * int

(** Stop deciding and join the controller domain. Idempotent. *)
val stop : t -> unit
